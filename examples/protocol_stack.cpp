// The paper's protocol stack (Figures 1-4), end to end.
//
// Feeds three packets through the synchronous composition — one good, one
// with a corrupted CRC, one addressed elsewhere — and prints the observable
// timeline (packet boundaries, CRC verdicts, address matches). Then runs
// the same stimulus through the asynchronous three-task RTOS composition
// and reports the Table 1-style accounting for this short trace.
#include <cstdio>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "src/rtos/rtos.h"

using namespace ecl;

namespace {

std::vector<std::uint8_t> packet(std::uint8_t addr, bool badCrc)
{
    std::vector<std::uint8_t> p(static_cast<std::size_t>(paper::kPktSize), 0);
    for (int i = 0; i < paper::kHdrSize; ++i) p[static_cast<std::size_t>(i)] = addr;
    for (int i = 0; i < 16; ++i)
        p[static_cast<std::size_t>(paper::kHdrSize + i)] =
            static_cast<std::uint8_t>(0x40 + i);
    if (badCrc) p[45] = 0xff;
    return p;
}

} // namespace

int main()
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("toplevel");
    std::printf("toplevel EFSM: %zu states (assemble || checkcrc || prochdr "
                "collapsed)\n\n",
                mod->machine().stats().states);

    auto eng = mod->makeEngine();
    eng->react();

    struct Case {
        const char* label;
        std::vector<std::uint8_t> bytes;
    };
    Case cases[] = {
        {"good packet, our address", packet(paper::kAddrByte, false)},
        {"corrupted CRC", packet(paper::kAddrByte, true)},
        {"foreign address", packet(0x3c, false)},
    };

    for (const Case& c : cases) {
        std::printf("== %s ==\n", c.label);
        int instant = 0;
        for (std::uint8_t b : c.bytes) {
            eng->setInputScalar("in_byte", b);
            eng->react();
            ++instant;
            if (eng->outputPresent("packet"))
                std::printf("  instant %3d: packet assembled\n", instant);
        }
        for (int i = 0; i < paper::kHdrSize + 2; ++i) {
            eng->react();
            ++instant;
            if (eng->outputPresent("crc_ok"))
                std::printf("  instant %3d: crc_ok = %lld\n", instant,
                            static_cast<long long>(
                                eng->outputValue("crc_ok").toInt()));
            if (eng->outputPresent("addr_match"))
                std::printf("  instant %3d: ADDR MATCH\n", instant);
        }
    }

    std::printf("\n== same stimulus, asynchronous 3-task composition ==\n");
    rtos::Network net;
    int a = net.addTask(compiler.compile("assemble"));
    int c = net.addTask(compiler.compile("checkcrc"));
    int h = net.addTask(compiler.compile("prochdr"));
    net.connect(a, "outpkt", c, "inpkt");
    net.connect(a, "outpkt", h, "inpkt");
    net.connect(c, "crc_ok", h, "crc_ok");
    net.onOutput(h, "addr_match",
                 [](const Value*) { std::printf("  ADDR MATCH (async)\n"); });
    net.boot();
    for (const Case& cs : cases)
        for (std::uint8_t b : cs.bytes) {
            net.injectScalar(a, "in_byte", b);
            net.run();
        }

    rtos::MemoryReport m = net.memory();
    std::printf("\n3-task accounting for this trace:\n"
                "  task code %zu B, task data %zu B, RTOS code %zu B, "
                "RTOS data %zu B\n"
                "  task cycles %llu, RTOS cycles %llu\n",
                m.taskCode, m.taskData, m.rtosCode, m.rtosData,
                static_cast<unsigned long long>(net.taskCycles()),
                static_cast<unsigned long long>(net.rtosCycles()));
    return 0;
}
