// Quickstart: compile a ten-line ECL module, run it, inspect the artifacts.
//
//   $ ./examples/quickstart
//
// The module waits for a `click` signal; two clicks within the same
// "double-click window" (3 instants, counted by delta cycles) emit
// `double_click` — a small taste of waiting, pre-emption and counting.
#include <cstdio>

#include "src/codegen/c_gen.h"
#include "src/codegen/esterel_gen.h"
#include "src/core/compiler.h"

static const char* kSource = R"ECL(
module clicker (input pure click, output pure double_click)
{
    while (1) {
        await (click);
        do {
            /* a second click within 3 instants counts as a double click */
            await (click);
            emit (double_click);
        } abort (timeout);
        /* window timer runs in parallel via a local signal */
    }
}

/* The same behaviour, written with an explicit parallel timer. */
module clicker2 (input pure click, output pure double_click)
{
    signal pure timeout;

    while (1) {
        await (click);
        par {
            do {
                await (click);
                emit (double_click);
            } abort (timeout);
            {
                await ();
                await ();
                await ();
                emit (timeout);
            }
        }
    }
}
)ECL";

int main()
{
    // `clicker` references an undeclared signal on purpose — show the
    // compiler's diagnostics, then use the correct version.
    try {
        ecl::Compiler bad(kSource);
        bad.compile("clicker");
    } catch (const ecl::EclError& e) {
        std::printf("diagnostic (expected): %s\n\n", e.what());
    }

    ecl::Compiler compiler(kSource);
    auto mod = compiler.compile("clicker2");
    std::printf("clicker2 compiled: %zu EFSM states\n",
                mod->machine().stats().states);

    auto eng = mod->makeEngine();
    eng->react(); // boot

    auto clickAt = [&](std::initializer_list<int> instantsWithClick,
                       int total) {
        for (int t = 0; t < total; ++t) {
            for (int c : instantsWithClick)
                if (c == t) eng->setInput("click");
            eng->react();
            std::printf("  instant %2d: double_click=%d\n", t,
                        eng->outputPresent("double_click") ? 1 : 0);
        }
    };

    std::printf("\nfast double click (instants 0 and 2):\n");
    clickAt({0, 2}, 4);
    std::printf("\nslow second click (instants 0 and 6): no double click\n");
    clickAt({0, 6}, 8);

    std::printf("\n--- Esterel artifact (phase 1) ---\n%s",
                ecl::codegen::generateEsterel(mod->reactiveProgram(),
                                              mod->moduleSema(), mod->name())
                    .substr(0, 700)
                    .c_str());
    std::printf("...\n\n--- C artifact (software synthesis), first lines ---\n%s...\n",
                ecl::codegen::generateC(*mod).substr(0, 500).c_str());
    return 0;
}
