// Legacy-code migration (paper Section 5, second industrial use case):
// "the ECL communication style is used to re-implement large legacy code
// blocks as smaller blocks that communicate by emitting and awaiting
// interface signals."
//
// A monolithic legacy C filter (pure ANSI C, kept verbatim as an ECL
// function) is wrapped in a reactive module that adds "just enough
// reactivity": requests arrive as signals, the computation stays atomic C,
// the answer leaves as a signal — and the whole wrapper can now be aborted
// by a mode switch, which the legacy code never supported.
#include <cstdio>

#include "src/core/compiler.h"

static const char* kSource = R"ECL(
typedef unsigned char byte;

#define WINDOW 8

typedef struct {
    byte taps[WINDOW];
} window_t;

/* ------- legacy block: untouched ANSI C ------- */
int legacy_fir (window_t w, int scale)
{
    int acc;
    int i;
    acc = 0;
    for (i = 0; i < WINDOW; i++) {
        acc = acc + w.taps[i] * scale;
    }
    if (acc > 10000) acc = 10000;
    return acc;
}

/* ------- the reactive wrapper: just enough ECL ------- */
module fir_service (input pure off,
                    input window_t request, output int response)
{
    while (1) {
        do {
            while (1) {
                await (request);
                emit_v (response, legacy_fir (request, 3));
            }
        } abort (off);
        /* switched off: ignore requests until switched on again */
        await (on);
    }
}

module fir_service_v2 (input pure off, input pure on,
                       input window_t request, output int response)
{
    while (1) {
        do {
            while (1) {
                await (request);
                emit_v (response, legacy_fir (request, 3));
            }
        } abort (off);
        await (on);
    }
}
)ECL";

using namespace ecl;

int main()
{
    // fir_service forgets to declare `on` — show the diagnostic, then use v2.
    try {
        Compiler bad(kSource);
        bad.compile("fir_service");
    } catch (const EclError& e) {
        std::printf("diagnostic (expected): %s\n\n", e.what());
    }

    Compiler compiler(kSource);
    auto mod = compiler.compile("fir_service_v2");
    auto eng = mod->makeEngine();
    eng->react();

    const Type* winType = mod->moduleSema().findSignal("request")->valueType;
    auto ask = [&](std::uint8_t base) {
        Value w(winType);
        for (std::size_t i = 0; i < w.size(); ++i)
            w.data()[i] = static_cast<std::uint8_t>(base + i);
        eng->setInputValue("request", w);
        eng->react();
        if (eng->outputPresent("response"))
            std::printf("  response = %lld\n",
                        static_cast<long long>(
                            eng->outputValue("response").toInt()));
        else
            std::printf("  (no response — service is off)\n");
    };

    std::printf("service on:\n");
    ask(1);
    ask(10);

    std::printf("switch off, request is ignored:\n");
    eng->setInput("off");
    eng->react();
    ask(20);

    std::printf("switch on, service resumes:\n");
    eng->setInput("on");
    eng->react();
    ask(20);
    return 0;
}
