// Fleet demo: a million concurrent protocol-stack sessions on a
// ShardedFleet.
//
// The paper compiles the whole stack into one cheap-per-reaction EFSM;
// the batch runtime turned that into N instances over shared flat
// tables, and src/serve turns THAT into a serving fleet: shards of
// batch engines behind lock-free ingress rings, sessions admitted and
// ended dynamically, live state migrating between shards mid-stream.
// This demo drives the full serving surface at scale:
//  * every session is admitted through admission control and receives a
//    short phase-shifted byte burst (the fleet-wide traffic floor);
//  * a verify cohort receives a complete 64-byte packet whose address
//    matches, so the demo can assert end-to-end protocol behaviour
//    (addr_match) per cohort session;
//  * halfway through the packet, a block of cohort sessions is LIVE
//    MIGRATED to other shards — their packets must still match, which
//    only happens if checkpoint/restore moved the assembly state
//    bit-exactly;
//  * queue-full submissions are handled with the intended backpressure
//    response (step the fleet, retry).
//
// Usage: example_fleet [--sessions N] [--shards S] [--threads T]
//                      [--verify-cohort K] [--migrations M]
//                      [--record-session PATH]
// Defaults: 1,000,000 sessions, 8 shards, hardware_concurrency threads.
// --record-session writes the cohort stimulus/response of one session
// as a replayable input trace (the committed fixture under
// tests/fixtures/ is recorded this way).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "src/runtime/trace.h"
#include "src/serve/fleet.h"

using namespace ecl;

namespace {

/// The cohort packet: an address-matching header, a recognizable data
/// prefix, and a zeroed tail that satisfies the CRC check.
std::vector<std::uint8_t> goodPacket()
{
    std::vector<std::uint8_t> pkt(static_cast<std::size_t>(paper::kPktSize),
                                  0);
    for (int i = 0; i < paper::kHdrSize; ++i)
        pkt[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(paper::kAddrByte);
    for (int i = 0; i < 16; ++i)
        pkt[static_cast<std::size_t>(paper::kHdrSize + i)] =
            static_cast<std::uint8_t>(0x40 + i);
    return pkt;
}

/// Backpressure-aware submit: a full ring means "advance the fleet and
/// retry", which is the contract a real ingress frontend follows.
void submitByte(serve::ShardedFleet& fleet, serve::SessionId id, int sig,
                std::int64_t v)
{
    while (fleet.submitScalar(id, sig, v) ==
           serve::SubmitStatus::QueueFull)
        fleet.step();
}

std::uint64_t parseArg(int argc, char** argv, int& i, const char* flag)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
    }
    return std::strtoull(argv[++i], nullptr, 10);
}

} // namespace

int main(int argc, char** argv)
{
    std::size_t sessions = 1000000;
    int shards = 8;
    int threads = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
    std::size_t cohort = 10000;
    std::size_t migrations = 1000;
    std::string recordPath;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--sessions"))
            sessions = parseArg(argc, argv, i, "--sessions");
        else if (!std::strcmp(argv[i], "--shards"))
            shards = static_cast<int>(parseArg(argc, argv, i, "--shards"));
        else if (!std::strcmp(argv[i], "--threads"))
            threads = static_cast<int>(parseArg(argc, argv, i, "--threads"));
        else if (!std::strcmp(argv[i], "--verify-cohort"))
            cohort = parseArg(argc, argv, i, "--verify-cohort");
        else if (!std::strcmp(argv[i], "--migrations"))
            migrations = parseArg(argc, argv, i, "--migrations");
        else if (!std::strcmp(argv[i], "--record-session")) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--record-session needs a path\n");
                return 2;
            }
            recordPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--sessions N] [--shards S] "
                         "[--threads T] [--verify-cohort K] "
                         "[--migrations M] [--record-session PATH]\n",
                         argv[0]);
            return 2;
        }
    }
    if (sessions == 0) sessions = 1;
    if (cohort > sessions) cohort = sessions;
    if (migrations > cohort) migrations = cohort;

    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("toplevel");
    if (!mod->hasFlatProgram()) {
        std::fprintf(stderr, "flat program unavailable\n");
        return 1;
    }
    const int inByte = mod->moduleSema().findSignal("in_byte")->index;
    const int match = mod->moduleSema().findSignal("addr_match")->index;
    const std::vector<std::uint8_t> pkt = goodPacket();
    constexpr int kBurst = 8;     ///< Bytes every non-cohort session gets.
    constexpr int kPhases = 7;    ///< Cohort packet phase shift (ragged).

    serve::FleetOptions opts;
    opts.shards = shards;
    opts.threads = threads;
    // Size the rings so one whole round of fleet-wide traffic fits; the
    // submit helper still handles QueueFull, this just keeps the hot
    // path retry-free.
    opts.queueCapacity = std::max<std::size_t>(
        1u << 12, sessions / static_cast<std::size_t>(opts.shards) + 1);
    serve::ShardedFleet fleet(mod, opts);

    std::printf("fleet: %zu sessions of '%s' on %zu shard(s) x '%s' "
                "backend, %d thread(s), %zu B arena/session (%zu MiB "
                "fleet state)\n",
                sessions, mod->name().c_str(), fleet.shardCount(),
                fleet.shardEngine(0).backendName(), threads,
                fleet.shardEngine(0).bytesPerInstance(),
                sessions * fleet.shardEngine(0).bytesPerInstance() /
                    (1024 * 1024));

    // Admission: ids are monotonic from 1, placement round-robin.
    std::vector<serve::SessionId> ids;
    ids.reserve(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
        const serve::AdmitResult r = fleet.admit();
        if (r.status != serve::AdmitStatus::Ok) {
            std::fprintf(stderr, "admit %zu failed (status %d)\n", i,
                         static_cast<int>(r.status));
            return 1;
        }
        ids.push_back(r.session);
    }
    std::size_t reactions = fleet.step(); // boot every session
    std::printf("  admitted %zu sessions, boot round: %zu reactions\n",
                sessions, reactions);

    // Traffic: cohort sessions stream the full packet (phase-shifted),
    // everyone else a kBurst-byte burst. Mid-packet, migrate a block of
    // cohort sessions to the next shard — their packets must still
    // match.
    std::uint64_t matches = 0;
    std::vector<serve::SessionEvent> events;
    const int instants = paper::kPktSize + kPhases + 4; // + delta drain
    for (int t = 0; t < instants; ++t) {
        if (t == paper::kPktSize / 2 && migrations > 0) {
            // Live migration of quiesced sessions (no in-flight events:
            // this instant's bytes are submitted AFTER the move, so they
            // route straight to the new shard). Their packets must still
            // match — the checkpointed assembly state moved bit-exactly.
            std::size_t moved = 0;
            for (std::size_t s = 0; s < migrations; ++s) {
                const auto [sh, slot] = fleet.locate(ids[s]);
                const auto target = static_cast<std::uint32_t>(
                    (sh + 1) % fleet.shardCount());
                if (fleet.migrate(ids[s], target) ==
                    serve::MigrateStatus::Ok)
                    ++moved;
            }
            std::printf("  instant %3d: live-migrated %zu/%zu cohort "
                        "sessions mid-packet\n",
                        t, moved, migrations);
        }
        for (std::size_t s = 0; s < cohort; ++s) {
            const int pos = t - static_cast<int>(s % kPhases);
            if (pos >= 0 && pos < paper::kPktSize)
                submitByte(fleet, ids[s], inByte,
                           pkt[static_cast<std::size_t>(pos)]);
        }
        if (t < kBurst)
            for (std::size_t s = cohort; s < sessions; ++s)
                submitByte(fleet, ids[s], inByte,
                           static_cast<std::int64_t>(0x40 + t));

        if (t == 2 && migrations > 0 && sessions > cohort) {
            // A second wave moved WITH events still queued: the old
            // shard's worker re-resolves them at dequeue and forwards
            // them to the new shard's ring (the eventsForwarded counter
            // below). Burst sessions never assemble a packet, so the
            // one-instant merge a non-quiesced move can cause is
            // harmless here.
            const std::size_t n =
                std::min(migrations, sessions - cohort);
            for (std::size_t s = sessions - n; s < sessions; ++s) {
                const auto [sh, slot] = fleet.locate(ids[s]);
                fleet.migrate(ids[s],
                              static_cast<std::uint32_t>(
                                  (sh + 1) % fleet.shardCount()));
            }
        }

        reactions += fleet.step();
        events.clear();
        fleet.collectLastRoundEvents(events);
        for (const serve::SessionEvent& ev : events)
            if (ev.signal == match) ++matches;
        if (t % 16 == 0)
            std::printf("  instant %3d: %llu reactions so far, %llu "
                        "address matches\n",
                        t, static_cast<unsigned long long>(reactions),
                        static_cast<unsigned long long>(matches));
    }
    // Tail drain, still counting: the last packets' CRC/header delta
    // chains emit their matches a few rounds after the final byte.
    while (fleet.hasPendingTraffic()) {
        reactions += fleet.step();
        events.clear();
        fleet.collectLastRoundEvents(events);
        for (const serve::SessionEvent& ev : events)
            if (ev.signal == match) ++matches;
    }

    const serve::FleetStats st = fleet.stats();
    std::printf("fleet done: %llu reactions in %llu rounds, %llu events "
                "applied, %llu forwarded after migration, %llu migrations, "
                "%llu/%zu cohort packets matched\n",
                static_cast<unsigned long long>(reactions),
                static_cast<unsigned long long>(st.rounds),
                static_cast<unsigned long long>(
                    st.total(&serve::ShardStats::eventsApplied)),
                static_cast<unsigned long long>(
                    st.total(&serve::ShardStats::eventsForwarded)),
                static_cast<unsigned long long>(st.migrations),
                static_cast<unsigned long long>(matches), cohort);
    for (std::size_t s = 0; s < st.shards.size(); ++s)
        std::printf("  shard %zu: %llu live, %llu reactions, %llu steps, "
                    "%llu applied, %llu rejected\n",
                    s,
                    static_cast<unsigned long long>(
                        st.shards[s].liveSessions),
                    static_cast<unsigned long long>(st.shards[s].reactions),
                    static_cast<unsigned long long>(st.shards[s].steps),
                    static_cast<unsigned long long>(
                        st.shards[s].eventsApplied),
                    static_cast<unsigned long long>(
                        st.shards[s].rejectedQueueFull));

    // --record-session: the cohort phase-0 stimulus/response recorded on
    // a single engine — a replayable fixture of exactly what one fleet
    // session saw.
    if (!recordPath.empty()) {
        auto eng = mod->makeSyncEngine();
        rt::RecordingEngine rec(*eng, mod->name());
        rec.react(); // boot instant
        for (int t = 0; t < paper::kPktSize; ++t) {
            rec.setInputScalar(inByte,
                               pkt[static_cast<std::size_t>(t)]);
            rec.react();
        }
        // Drain the delta tail exactly as the fleet scheduler would: an
        // instance reacts only while it has auto-resume work pending (an
        // unconditional empty react would take else-branches a dirty-only
        // scheduler never runs, and the recorded final state would stop
        // matching a fleet session's).
        while (rec.needsAutoResume()) rec.react();
        rt::writeTraceFile(rec.trace(), recordPath, rt::TraceFormat::Text);
        std::printf("recorded cohort session trace -> %s (%zu instants)\n",
                    recordPath.c_str(), rec.trace().instants.size());
    }

    return matches == cohort ? 0 : 1;
}
