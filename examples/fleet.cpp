// Fleet demo: 10,000 concurrent protocol-stack sessions on one BatchEngine.
//
// The paper compiles the whole stack into one cheap-per-reaction EFSM; the
// batch runtime turns that into a server-style workload — one session per
// connection, every session an independent instance of the same compiled
// module over shared flat tables and a single structure-of-arrays arena.
// Each session receives its own phase-shifted byte stream (so sessions sit
// in different protocol states at any instant), and the dirty-list
// scheduler reacts only sessions with traffic.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"

using namespace ecl;

int main()
{
    Compiler compiler(paper::protocolStackSource());
    auto mod = compiler.compile("toplevel");
    if (!mod->hasFlatProgram()) {
        std::fprintf(stderr, "flat program unavailable\n");
        return 1;
    }

    constexpr std::size_t kSessions = 10000;
    const int threads = static_cast<int>(
        std::min(4u, std::max(1u, std::thread::hardware_concurrency())));
    auto fleet = mod->makeBatchEngine(kSessions, {.threads = threads});
    std::printf("fleet: %zu sessions of '%s', %d worker thread(s), "
                "%zu B arena/session (%zu KiB total state)\n",
                kSessions, mod->name().c_str(), fleet->threads(),
                fleet->bytesPerInstance(),
                kSessions * fleet->bytesPerInstance() / 1024);

    // One good packet per session, phase-shifted so the fleet is always in
    // a mix of assembly / CRC / header states.
    std::vector<std::uint8_t> pkt(
        static_cast<std::size_t>(paper::kPktSize), 0);
    for (int i = 0; i < paper::kHdrSize; ++i)
        pkt[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(paper::kAddrByte);
    for (int i = 0; i < 16; ++i)
        pkt[static_cast<std::size_t>(paper::kHdrSize + i)] =
            static_cast<std::uint8_t>(0x40 + i);

    const int inByte = mod->moduleSema().findSignal("in_byte")->index;
    const int match = mod->moduleSema().findSignal("addr_match")->index;

    fleet->step(); // boot all sessions
    std::uint64_t reactions = kSessions;
    std::uint64_t matches = 0;
    const int instants = paper::kPktSize + 12; // packet + delta drain
    for (int t = 0; t < instants; ++t) {
        for (std::size_t s = 0; s < kSessions; ++s) {
            // Session s starts its packet at instant s % 7 (ragged fleet).
            int pos = t - static_cast<int>(s % 7);
            if (pos >= 0 && pos < paper::kPktSize)
                fleet->setInputScalar(s, inByte,
                                      pkt[static_cast<std::size_t>(pos)]);
        }
        reactions += fleet->step();
        for (const rt::BatchEngine::StepEvent& ev : fleet->lastStepEvents())
            if (ev.signal == match) ++matches;
        if (t % 16 == 0)
            std::printf("  instant %3d: %7llu reactions so far, %llu "
                        "address matches\n",
                        t, static_cast<unsigned long long>(reactions),
                        static_cast<unsigned long long>(matches));
    }

    std::printf("fleet done: %llu reactions, %llu/%zu sessions matched "
                "their packet\n",
                static_cast<unsigned long long>(reactions),
                static_cast<unsigned long long>(matches), kSessions);
    return matches == kSessions ? 0 : 1;
}
