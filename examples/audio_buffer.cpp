// The voice-mail pager audio buffer controller (Table 1's second design).
//
// Drives a record/playback session through the synchronous composition and
// prints the speaker and LED timeline; then contrasts the collapsed
// automaton's size against the three separate controllers — the
// product-vs-sum effect behind Table 1's Buffer row.
#include <cstdio>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "src/cost/cost.h"

using namespace ecl;

int main()
{
    Compiler compiler(paper::audioBufferSource());
    auto top = compiler.compile("buffer_top");
    auto eng = top->makeEngine();
    eng->react();

    std::printf("session timeline (p=play, s=sample, t=tick, x=stop):\n");
    const char* trace = "p sst s ss t s x t";
    int instant = 0;
    for (const char* ev = trace; *ev; ++ev) {
        if (*ev == ' ') continue;
        switch (*ev) {
        case 'p': eng->setInput("play"); break;
        case 's': eng->setInput("sample"); break;
        case 't': eng->setInput("tick"); break;
        case 'x': eng->setInput("stop"); break;
        }
        eng->react();
        ++instant;
        std::string events;
        for (const char* sig :
             {"frame_ready", "speaker_on", "speaker_off", "led_on", "led_off"})
            if (eng->outputPresent(sig)) events += std::string(" ") + sig;
        std::printf("  %c -> instant %2d:%s\n", *ev, instant,
                    events.empty() ? " -" : events.c_str());
    }

    std::printf("\nsynchronous collapse vs separate controllers:\n");
    cost::CostModel cm;
    std::size_t sumStates = 0;
    std::size_t sumCode = 0;
    for (const char* name : {"producer", "playback", "blinker"}) {
        auto m = compiler.compile(name);
        std::size_t st = m->machine().stats().states;
        std::size_t code = cm.moduleSize(m->machine()).codeBytes;
        std::printf("  %-9s %3zu states, %5zu B code\n", name, st, code);
        sumStates += st;
        sumCode += code;
    }
    std::size_t topStates = top->machine().stats().states;
    std::size_t topCode = cm.moduleSize(top->machine()).codeBytes;
    std::printf("  %-9s %3zu states, %5zu B code  (sum of parts: %zu states,"
                " %zu B)\n",
                "buffer_top", topStates, topCode, sumStates, sumCode);
    std::printf("  product blowup: %.1fx states, %.1fx code — the paper's "
                "Buffer row shape\n",
                static_cast<double>(topStates) / static_cast<double>(sumStates),
                static_cast<double>(topCode) / static_cast<double>(sumCode));
    return 0;
}
