// Hardware/software partitioning: the paper's synthesis rule in action.
//
// "If the data-dominated C part is empty, then the complete ECL
// specification can be implemented either in hardware or in software" —
// the audio-buffer controllers are pure control, so they synthesize to
// Verilog; checkcrc carries the extracted CRC loop, so the hardware path
// rejects it with an explanation (the paper's CRC-in-hardware remark would
// go through high-level synthesis instead).
#include <cstdio>

#include "src/codegen/verilog_gen.h"
#include "src/core/compiler.h"
#include "src/core/paper_sources.h"

using namespace ecl;

int main()
{
    Compiler buffer(paper::audioBufferSource());
    for (const char* name : {"blinker", "producer", "playback"}) {
        auto mod = buffer.compile(name);
        codegen::HwReport hw = codegen::generateVerilog(*mod);
        std::printf("== %s: synthesizable=%s, %zu FFs, ~%zu gates ==\n", name,
                    hw.synthesizable ? "yes" : "no", hw.flipFlops,
                    hw.gateEstimate);
    }

    auto blinker = buffer.compile("blinker");
    codegen::HwReport hw = codegen::generateVerilog(*blinker);
    std::printf("\n--- blinker.v ---\n%s\n", hw.verilog.c_str());

    Compiler stack(paper::protocolStackSource());
    auto crc = stack.compile("checkcrc");
    codegen::HwReport rejected = codegen::generateVerilog(*crc);
    std::printf("== checkcrc: synthesizable=%s ==\n   reason: %s\n",
                rejected.synthesizable ? "yes" : "no",
                rejected.reason.c_str());
    return 0;
}
