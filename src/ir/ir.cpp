#include "src/ir/ir.h"

#include <algorithm>

namespace ecl::ir {

NodePtr makeNode(NodeKind k) { return std::make_unique<Node>(k); }

namespace {

void mergeUnique(std::vector<int>& into, const std::vector<int>& from)
{
    for (int v : from)
        if (std::find(into.begin(), into.end(), v) == into.end())
            into.push_back(v);
}

void collectGuardSigs(const SigGuard& g, std::vector<int>& out)
{
    switch (g.kind) {
    case SigGuard::Kind::Ref:
        if (std::find(out.begin(), out.end(), g.signal) == out.end())
            out.push_back(g.signal);
        return;
    case SigGuard::Kind::Not: collectGuardSigs(*g.lhs, out); return;
    case SigGuard::Kind::And:
    case SigGuard::Kind::Or:
        collectGuardSigs(*g.lhs, out);
        collectGuardSigs(*g.rhs, out);
        return;
    }
}

void analyzeNode(Node& n)
{
    n.pausesInSubtree = PauseSet{};
    n.mayEmit.clear();
    n.testedSigs.clear();
    // Note: n.valueReads of leaves was filled by the lowerer; keep leaf
    // entries and merge children below.

    if (n.kind == NodeKind::Pause)
        n.pausesInSubtree.set(static_cast<std::size_t>(n.pauseId));
    if (n.kind == NodeKind::Emit) n.mayEmit.push_back(n.signal);
    if (n.guard) collectGuardSigs(*n.guard, n.testedSigs);

    for (NodePtr& c : n.children) {
        analyzeNode(*c);
        n.pausesInSubtree |= c->pausesInSubtree;
        mergeUnique(n.mayEmit, c->mayEmit);
        mergeUnique(n.testedSigs, c->testedSigs);
        mergeUnique(n.valueReads, c->valueReads);
    }
}

} // namespace

void ReactiveProgram::analyze()
{
    if (root) analyzeNode(*root);
}

bool evalGuard(const SigGuard& g, const std::vector<bool>& present)
{
    switch (g.kind) {
    case SigGuard::Kind::Ref:
        return present[static_cast<std::size_t>(g.signal)];
    case SigGuard::Kind::Not: return !evalGuard(*g.lhs, present);
    case SigGuard::Kind::And:
        return evalGuard(*g.lhs, present) && evalGuard(*g.rhs, present);
    case SigGuard::Kind::Or:
        return evalGuard(*g.lhs, present) || evalGuard(*g.rhs, present);
    }
    return false;
}

SigGuardPtr cloneGuard(const SigGuard& g)
{
    auto out = std::make_unique<SigGuard>();
    out->kind = g.kind;
    out->signal = g.signal;
    if (g.lhs) out->lhs = cloneGuard(*g.lhs);
    if (g.rhs) out->rhs = cloneGuard(*g.rhs);
    return out;
}

namespace {

std::string guardText(const SigGuard& g)
{
    switch (g.kind) {
    case SigGuard::Kind::Ref: return "s" + std::to_string(g.signal);
    case SigGuard::Kind::Not: return "~" + guardText(*g.lhs);
    case SigGuard::Kind::And:
        return "(" + guardText(*g.lhs) + " & " + guardText(*g.rhs) + ")";
    case SigGuard::Kind::Or:
        return "(" + guardText(*g.lhs) + " | " + guardText(*g.rhs) + ")";
    }
    return "?";
}

} // namespace

std::string printIr(const Node& n, int depth)
{
    std::string pad(2 * static_cast<std::size_t>(depth), ' ');
    std::string out = pad;
    switch (n.kind) {
    case NodeKind::Nothing: out += "nothing"; break;
    case NodeKind::Pause:
        out += "pause #" + std::to_string(n.pauseId);
        if (n.delta) out += " (delta)";
        break;
    case NodeKind::Emit:
        out += "emit s" + std::to_string(n.signal);
        if (n.valueExpr) out += " <value>";
        break;
    case NodeKind::DataStmt:
        out += "data #" + std::to_string(n.dataActionId);
        break;
    case NodeKind::If: out += "if <cond>"; break;
    case NodeKind::Present: out += "present " + guardText(*n.guard); break;
    case NodeKind::Seq: out += "seq"; break;
    case NodeKind::Loop: out += "loop"; break;
    case NodeKind::Par: out += "par"; break;
    case NodeKind::Abort:
        out += n.weak ? "weak_abort " : "abort ";
        out += guardText(*n.guard);
        break;
    case NodeKind::Suspend: out += "suspend " + guardText(*n.guard); break;
    case NodeKind::Trap: out += "trap T" + std::to_string(n.trapId); break;
    case NodeKind::Exit: out += "exit T" + std::to_string(n.trapId); break;
    }
    out += "\n";
    for (const NodePtr& c : n.children) out += printIr(*c, depth + 1);
    return out;
}

} // namespace ecl::ir
