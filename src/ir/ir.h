// Reactive kernel IR — the Esterel kernel statements ECL lowers to.
//
// Kernel constructs: Nothing, Pause, Emit, DataStmt (an extracted C
// statement), If (data-predicate branch), Present (signal-presence branch),
// Seq, Loop, Par, Abort (strong/weak, optional handler), Suspend, Trap/Exit.
// `await`, `halt`, C loops, break/continue are desugared by the lowerer
// (src/ir/lower.cpp) exactly as in Esterel:
//
//   await (e)  =>  trap T { loop { pause; present (e) exit T; } }
//   halt       =>  loop { pause; }
//   while (c) B => trap Tb { loop { if (c) { trap Tc { B } } else exit Tb } }
//
// Pause points carry unique ids; an EFSM control state is the set of pause
// ids where control rests (src/efsm).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/frontend/ast.h"
#include "src/support/bitset.h"
#include "src/support/source_location.h"

namespace ecl::ir {

/// Signal-presence guard with resolved signal indices.
struct SigGuard {
    enum class Kind { Ref, And, Or, Not };
    Kind kind = Kind::Ref;
    int signal = -1; ///< For Ref: SignalInfo::index.
    std::unique_ptr<SigGuard> lhs;
    std::unique_ptr<SigGuard> rhs;
};

using SigGuardPtr = std::unique_ptr<SigGuard>;

enum class NodeKind {
    Nothing,
    Pause,
    Emit,
    DataStmt,
    If,
    Present,
    Seq,
    Loop,
    Par,
    Abort,
    Suspend,
    Trap,
    Exit,
};

/// One extracted data action: a C statement executed atomically within a
/// reaction. `extractedLoop` marks the paper's "data loops" (compiled to
/// separate C functions by codegen); plain assignments stay inline.
struct DataAction {
    int id = -1;
    const ast::Stmt* stmt = nullptr; ///< Either stmt or expr is set.
    const ast::Expr* expr = nullptr; ///< For `for`-step expressions.
    bool extractedLoop = false;
};

struct Node {
    explicit Node(NodeKind k) : kind(k) {}
    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    NodeKind kind;
    SourceLoc loc;

    // Pause
    int pauseId = -1;
    bool delta = false; ///< True for the `await()` delta-cycle pause.

    // Emit
    int signal = -1;
    const ast::Expr* valueExpr = nullptr; ///< Null for pure emit.

    // DataStmt
    int dataActionId = -1;

    // If
    const ast::Expr* condExpr = nullptr;

    // Present / Abort / Suspend
    SigGuardPtr guard;
    bool weak = false; ///< Abort only.

    // Trap / Exit
    int trapId = -1;

    // Children:
    //   Seq: items; Loop: [body]; Par: branches (in causality order);
    //   If/Present: [then, else]; Abort: [body, handler?]; Suspend: [body];
    //   Trap: [body].
    std::vector<std::unique_ptr<Node>> children;

    // Analysis results (filled by analyze() below).
    PauseSet pausesInSubtree;
    std::vector<int> mayEmit;     ///< Signal indices possibly emitted within.
    std::vector<int> testedSigs;  ///< Signal indices tested within.
    std::vector<int> valueReads;  ///< Signals whose *value* data code reads
                                  ///< (filled by the lowerer for causality).
};

using NodePtr = std::unique_ptr<Node>;

NodePtr makeNode(NodeKind k);

/// A lowered reactive program for one module.
struct ReactiveProgram {
    NodePtr root;
    int pauseCount = 0;
    int trapCount = 0;
    std::vector<DataAction> actions;
    /// trap id -> static nesting depth (0 = outermost); used to resolve
    /// concurrent exits (the outermost trap wins).
    std::vector<int> trapDepth;
    /// pause id -> whether it is a delta (await()) pause.
    std::vector<bool> pauseDelta;

    /// Runs subtree analyses (pause sets, may-emit, tested signals).
    void analyze();
};

/// Renders the IR as indented text (tests, debugging).
std::string printIr(const Node& n, int depth = 0);

/// Evaluates the guard against a complete presence assignment.
bool evalGuard(const SigGuard& g, const std::vector<bool>& present);

SigGuardPtr cloneGuard(const SigGuard& g);

} // namespace ecl::ir
