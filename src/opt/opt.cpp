#include "src/opt/opt.h"

#include <sstream>

namespace ecl::opt {

PipelineStats optimize(efsm::FlatProgram& flat, bc::Program& code, int level)
{
    PipelineStats stats;
    stats.level = level;
    if (level <= 0) return stats;
    // Bytecode first (dedup canonicalizes chunk ids), then state
    // minimization (which compares predicates/actions by chunk id).
    stats.bytecodeOptimized = level >= 2;
    stats.bytecode = optimizeBytecode(code, flat, level >= 2);
    stats.minimized = true;
    stats.minimize = minimizeStates(flat);
    return stats;
}

std::string PipelineStats::report() const
{
    std::ostringstream out;
    out << "optimization pipeline (-O" << level << "):\n";
    if (level <= 0) {
        out << "  disabled — flat tables and bytecode emitted verbatim\n";
        return out.str();
    }
    const MinimizeStats& m = minimize;
    const BytecodeStats& b = bytecode;
    out << "  bytecode: " << b.instrsBefore << " -> " << b.instrsAfter
        << " instrs, " << b.chunksBefore << " -> " << b.chunksAfter
        << " chunks (" << b.chunksDeduped << " deduped)\n";
    if (bytecodeOptimized)
        out << "    folded " << b.constantsFolded << " constants, fused "
            << b.instrsFused << " pairs, removed " << b.deadInstrsRemoved
            << " dead instrs, elided " << b.storesElided
            << " dead stores,\n    simplified " << b.branchesSimplified
            << " branches, threaded " << b.jumpsThreaded
            << " jumps, propagated " << b.copiesPropagated << " copies\n";
    out << "  states: " << m.statesBefore << " -> " << m.statesAfter << " ("
        << m.mergedStates << " merged, " << m.unreachableStates
        << " unreachable, " << m.refinementRounds << " refinement rounds)\n"
        << "  nodes: " << m.nodesBefore << " -> " << m.nodesAfter
        << ", actions: " << m.actionsBefore << " -> " << m.actionsAfter
        << ", configs: " << m.configsBefore << " -> " << m.configsAfter
        << "\n";
    return out.str();
}

} // namespace ecl::opt
