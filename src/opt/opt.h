// Post-flatten optimization pipeline.
//
// The paper's Key Features section promises that "logic synthesis and
// optimization can be applied to reduce size or improve speed". The
// pre-flatten stage (src/efsm/optimize.h) cleans up decision trees; this
// module optimizes the shared executable representation every runtime
// consumes — the flattened tables (efsm::FlatProgram) and the compiled
// data bytecode (bc::Program) that drive the SyncEngine hot path, the
// batch multi-instance runtime and the explicit-state verifier at once.
//
// Levels (CompileOptions::optLevel, eclc -O{0,1,2}; default 2):
//  * -O0  emits the flattened tables verbatim.
//  * -O1  structural passes, bit-exact INCLUDING instruction-level
//         ExecCounters: bytecode chunk deduplication (identical
//         predicates/actions share one chunk), flat-state minimization by
//         partition refinement (bisimulation over successor / action /
//         decision-tree signatures plus the pause-config-DERIVED
//         observables, dead and autoResume — raw config identity is
//         deliberately not compared, since the builder gives every state
//         a distinct PauseSet and comparing them would merge nothing;
//         configOf() of a merged state reports the lowest-old-id
//         representative's pause set), with unreachable-state pruning
//         and re-interning of PauseSet configs that become identical or
//         unreferenced after the state remap.
//  * -O2  adds the bytecode optimizer: constant folding, copy
//         propagation, dead-register/dead-store elimination, and a
//         peephole pass (jump threading, unreachable-code removal, and
//         superinstruction fusion — BinaryImm / StoreVarSc / IncDecVar).
//         Observable behavior (outputs, valued emissions, termination,
//         auto-resume, runtime traps) stays bit-exact with -O0; the
//         eliminated instructions' ExecCounters bumps disappear with
//         them, so instruction-level counters are only defined to match
//         at -O0/-O1 (fused superinstructions still bump the exact
//         counter sums of the pair they replace).
//
// Pass ordering: bytecode transforms run first (so chunk dedup sees
// canonical code), then chunk dedup (so the state minimizer compares
// predicates/actions by deduplicated chunk id), then state minimization.
// Every pass is idempotent; the whole pipeline is a fixpoint after one
// run (tests/test_opt.cpp pins optimize(optimize(p)) == optimize(p)).
#pragma once

#include <cstddef>
#include <string>

#include "src/efsm/flatten.h"
#include "src/interp/bytecode.h"

namespace ecl::opt {

struct MinimizeStats {
    std::size_t statesBefore = 0;
    std::size_t statesAfter = 0;
    std::size_t nodesBefore = 0;
    std::size_t nodesAfter = 0;
    std::size_t actionsBefore = 0;
    std::size_t actionsAfter = 0;
    std::size_t configsBefore = 0;
    std::size_t configsAfter = 0;
    std::size_t unreachableStates = 0; ///< Dropped by reachability.
    std::size_t mergedStates = 0;      ///< Reachable states merged away.
    int refinementRounds = 0;
};

struct BytecodeStats {
    std::size_t instrsBefore = 0;
    std::size_t instrsAfter = 0;
    std::size_t chunksBefore = 0;
    std::size_t chunksAfter = 0;
    std::size_t chunksDeduped = 0;
    std::size_t constantsFolded = 0;    ///< Instrs replaced by a constant.
    std::size_t copiesPropagated = 0;   ///< Operand uses redirected.
    std::size_t deadInstrsRemoved = 0;  ///< DCE + unreachable code.
    std::size_t storesElided = 0;       ///< Dead ZeroVar before InitVar.
    std::size_t branchesSimplified = 0; ///< Constant-condition branches.
    std::size_t jumpsThreaded = 0;
    std::size_t instrsFused = 0;        ///< Peephole superinstructions.
};

struct PipelineStats {
    int level = 0;
    bool minimized = false;         ///< State minimization ran (>= -O1).
    bool bytecodeOptimized = false; ///< Chunk transforms ran (>= -O2).
    MinimizeStats minimize;
    BytecodeStats bytecode;

    /// Human-readable multi-line report (eclc --opt-stats).
    [[nodiscard]] std::string report() const;
};

/// Minimizes the flat machine in place: partition-refinement bisimulation
/// over (dead, autoResume, decision-tree structure, action lists, leaf
/// successor blocks), plus unreachable-state pruning and config
/// re-interning via FlatProgram::remapStates. Chunk ids are compared
/// verbatim — run bytecode dedup first for the sharpest partition.
/// Preserves per-reaction behavior AND ExecCounters exactly (merged
/// states execute identical trees).
MinimizeStats minimizeStates(efsm::FlatProgram& flat);

/// Optimizes the bytecode in place and rewrites every chunk reference in
/// `flat` (FlatNode::predChunk, FlatAction::chunk) and in the program's
/// function table. `transform` = false runs chunk deduplication only
/// (counter-exact, -O1); true also runs the intra-chunk optimizer (-O2).
BytecodeStats optimizeBytecode(bc::Program& code, efsm::FlatProgram& flat,
                               bool transform);

/// Runs the whole post-flatten pipeline at `level` (0, 1 or 2) in place.
PipelineStats optimize(efsm::FlatProgram& flat, bc::Program& code,
                       int level);

} // namespace ecl::opt
