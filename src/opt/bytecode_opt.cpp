// Bytecode optimizer over bc::Program chunks.
//
// Intra-chunk transforms (-O2): constant folding and copy propagation
// (forward scan with state reset at join points), constant-condition
// branch simplification, jump threading, unreachable-code removal,
// dead-register elimination (iterative liveness; memory writes, calls
// and possibly-trapping instructions are never removed), dead-store
// elision (a ZeroVar fully overwritten by an InitVar before any read),
// and peephole superinstruction fusion:
//   ConstInt  + Binary         -> BinaryImm
//   AddrVar   + StoreSc        -> StoreVarSc
//   ConstInt  + StoreVarSc     -> StoreVarImm
//   AddrVar   + IncDec         -> IncDecVar
//   AddrVar/Sig + AddrField... -> AddrVarOff / AddrSigOff
//   LoadVarSc + AddrIndex      -> AddrIndexVar
// Fused ops bump the exact counter sums of the pairs they replace
// (fusions absorbing a COUNTED instruction are guarded on single-use
// registers so the absorbed instruction is guaranteed dead);
// folding/DCE/branch simplification remove counted instructions, which
// is why instruction-level ExecCounters are only pinned at -O0/-O1.
// Trap behavior is preserved exactly: Div/Rem (division by zero) and
// AddrIndex (bounds check) are never folded away or eliminated.
//
// Chunk deduplication (-O1 and -O2): identical instruction sequences
// (compared with chunk-relative jump targets, ignoring source
// locations) share one chunk; every reference — FlatNode::predChunk,
// FlatAction::chunk, CompiledFunction::chunk — is rewritten.
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/opt/opt.h"

namespace ecl::opt {

namespace {

using bc::Chunk;
using bc::Instr;
using bc::Op;
using bc::Program;
using bc::normalizeScalar;

constexpr std::uint16_t kNoResult = 0xffff;

bool isJump(Op op)
{
    return op == Op::Jmp || op == Op::BranchFalse || op == Op::BranchTrue;
}

bool isTerminal(Op op)
{
    return op == Op::End || op == Op::Ret || op == Op::RetVoid;
}

/// Register reads of one instruction (Call handled by the caller).
void readRegs(const Instr& i, std::vector<std::uint16_t>& out)
{
    out.clear();
    switch (i.op) {
    case Op::AddrIndex: out = {i.b, i.c}; break;
    case Op::AddrField:
    case Op::AddrIndexVar:
    case Op::LoadInd:
    case Op::Unary:
    case Op::IncDec:
    case Op::Cast:
    case Op::BoolVal:
    case Op::BinaryImm:
    case Op::InitVar: out = {i.b}; break;
    case Op::Binary:
    case Op::StoreSc:
    case Op::StoreCompound:
    case Op::StoreAg: out = {i.b, i.c}; break;
    case Op::StoreVarSc: out = {i.c}; break;
    case Op::BranchFalse:
    case Op::BranchTrue:
    case Op::Ret: out = {i.a}; break;
    case Op::Call:
        for (std::uint16_t k = 0; k < i.c; ++k)
            out.push_back(static_cast<std::uint16_t>(i.b + k));
        break;
    case Op::End:
        if (i.a != kNoResult) out = {i.a};
        break;
    default: break; // ConstInt, loads, AddrVar/Sig, SetBool, ZeroVar, ...
    }
}

/// Does the instruction write register `a`?
bool writesA(Op op)
{
    switch (op) {
    case Op::ZeroVar:
    case Op::InitVar:
    case Op::Jmp:
    case Op::BranchFalse:
    case Op::BranchTrue:
    case Op::Ret:
    case Op::RetVoid:
    case Op::End: return false;
    default: return true;
    }
}

/// May the instruction trap or touch memory/counters in a way that makes
/// it non-removable even when its result register is dead?
bool hasSideEffect(const Instr& i)
{
    switch (i.op) {
    case Op::IncDec:
    case Op::IncDecVar:
    case Op::StoreSc:
    case Op::StoreVarSc:
    case Op::StoreVarImm:
    case Op::StoreCompound:
    case Op::StoreAg:
    case Op::ZeroVar:
    case Op::InitVar:
    case Op::Call:
    case Op::AddrIndex:    // bounds-check trap
    case Op::AddrIndexVar: // bounds-check trap
    case Op::Jmp:
    case Op::BranchFalse:
    case Op::BranchTrue:
    case Op::Ret:
    case Op::RetVoid:
    case Op::End: return true;
    case Op::Binary: {
        auto op = static_cast<ast::BinaryOp>(i.imm);
        return op == ast::BinaryOp::Div || op == ast::BinaryOp::Rem;
    }
    case Op::BinaryImm: {
        auto op = static_cast<ast::BinaryOp>(i.imm);
        return (op == ast::BinaryOp::Div || op == ast::BinaryOp::Rem) &&
               i.imm64 == 0;
    }
    default: return false;
    }
}

/// One chunk extracted for transformation; jump targets are
/// chunk-relative instruction indices.
struct Local {
    std::vector<Instr> code;
    bool isExpr = false;
    std::uint16_t numRegs = 0;
};

Local extractChunk(const Program& prog, std::size_t chunkId)
{
    const Chunk& c = prog.chunks[chunkId];
    Local out;
    out.isExpr = c.isExpr;
    out.numRegs = c.numRegs;
    out.code.assign(prog.code.begin() + c.begin, prog.code.begin() + c.end);
    for (Instr& i : out.code)
        if (isJump(i.op)) i.imm -= static_cast<std::int32_t>(c.begin);
    return out;
}

/// Rebuilds `code` keeping only instructions with keep[i] != 0,
/// retargeting jumps to the first kept instruction at or after the old
/// target. Returns the number removed.
std::size_t compact(std::vector<Instr>& code, std::vector<std::uint8_t>& keep)
{
    const std::size_t n = code.size();
    std::int32_t kept = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (keep[i]) ++kept;
    // newIndex[t] = position among kept of the first kept instr >= t.
    std::vector<std::int32_t> newIndex(n + 1, kept);
    std::int32_t next = kept;
    for (std::size_t i = n; i-- > 0;) {
        if (keep[i]) --next;
        newIndex[i] = next;
    }
    std::vector<Instr> out;
    out.reserve(static_cast<std::size_t>(kept));
    for (std::size_t i = 0; i < n; ++i) {
        if (!keep[i]) continue;
        Instr ins = code[i];
        if (isJump(ins.op)) {
            auto t = static_cast<std::size_t>(ins.imm);
            std::int32_t nt = t <= n ? newIndex[t] : kept;
            // A jump past every kept instruction can only itself be
            // unreachable; park it on the last kept slot.
            if (nt >= kept) nt = kept - 1;
            ins.imm = nt;
        }
        out.push_back(ins);
    }
    std::size_t removed = n - out.size();
    code = std::move(out);
    return removed;
}

class ChunkOptimizer {
public:
    ChunkOptimizer(Local& chunk, const Program& prog, BytecodeStats& stats)
        : c_(chunk), prog_(prog), stats_(stats)
    {
    }

    void run()
    {
        for (int round = 0; round < 4; ++round) {
            bool changed = foldAndFuse();
            changed |= threadJumps();
            changed |= removeUnreachable();
            changed |= elideZeroVars();
            changed |= eliminateDead();
            if (!changed) break;
        }
        recomputeNumRegs();
    }

private:
    // --- forward constant/copy/address tracking + fusion ------------------

    /// What a register is statically known to hold at the current scan
    /// point (valid within one extended basic block; reset at leaders).
    struct RegFact {
        bool isConst = false;
        std::int64_t value = 0;
        const Type* type = nullptr; // Constant's / chain's static type.
        /// Address pedigree, for store/address-chain fusion. VarBase is
        /// a bare AddrVar (full slot, fusable into StoreVarSc /
        /// IncDecVar); VarOff/SigOff are AddrField chains rooted at a
        /// variable/signal, with `value` holding the accumulated byte
        /// offset and `type` the chain's final field type.
        enum class Addr : std::uint8_t { None, VarBase, SigBase, VarOff,
                                         SigOff };
        Addr addr = Addr::None;
        std::int32_t slot = -1; // Variable slot or signal index.
        /// Register holds the value of scalar variable `loadSlot`, read
        /// by a LoadVarSc whose typed load is still current (killed by
        /// any instruction that can write memory).
        std::int32_t loadSlot = -1;
        const Type* loadType = nullptr;
        bool isCopy = false;
        std::uint16_t copyOf = 0;
        std::uint32_t copyVersion = 0;
    };

    void markLeaders(std::vector<std::uint8_t>& leader) const
    {
        leader.assign(c_.code.size(), 0);
        if (!leader.empty()) leader[0] = 1;
        for (const Instr& i : c_.code)
            if (isJump(i.op) &&
                static_cast<std::size_t>(i.imm) < leader.size())
                leader[static_cast<std::size_t>(i.imm)] = 1;
    }

    void clearFacts()
    {
        facts_.assign(c_.numRegs, RegFact{});
    }

    void killReg(std::uint16_t r)
    {
        if (r < facts_.size()) facts_[r] = RegFact{};
        if (r < versions_.size()) ++versions_[r];
    }

    /// Redirects a read operand through a still-valid copy.
    void propagate(std::uint16_t& field)
    {
        if (field >= facts_.size()) return;
        const RegFact& f = facts_[field];
        if (f.isCopy && f.copyOf < versions_.size() &&
            versions_[f.copyOf] == f.copyVersion) {
            // Move the read between the two definitions' span counts so
            // singleUse() stays exact under retargeting.
            if (field < curDef_.size() && curDef_[field] >= 0)
                --spanReads_[static_cast<std::size_t>(curDef_[field])];
            field = f.copyOf;
            if (field < curDef_.size() && curDef_[field] >= 0)
                ++spanReads_[static_cast<std::size_t>(curDef_[field])];
            ++stats_.copiesPropagated;
        }
    }

    bool constOf(std::uint16_t r, std::int64_t& v, const Type*& t) const
    {
        if (r >= facts_.size() || !facts_[r].isConst) return false;
        v = facts_[r].value;
        t = facts_[r].type;
        return true;
    }

    void setConst(std::uint16_t r, std::int64_t v, const Type* t)
    {
        killReg(r);
        if (r >= facts_.size()) return;
        facts_[r].isConst = true;
        facts_[r].value = v;
        facts_[r].type = t;
    }

    /// Mirrors Vm::applyBinary for compile-time evaluation; returns false
    /// when the fold must not happen (trapping Div/Rem by zero — the trap
    /// is observable behavior).
    bool evalBinary(std::int32_t op, std::int64_t a, std::int64_t b,
                    std::int64_t& out, const Type*& type) const
    {
        const Type* it = prog_.intType;
        const Type* bt = prog_.boolType;
        type = it;
        switch (static_cast<ast::BinaryOp>(op)) {
        case ast::BinaryOp::Add: out = normalizeScalar(it, a + b); return true;
        case ast::BinaryOp::Sub: out = normalizeScalar(it, a - b); return true;
        case ast::BinaryOp::Mul: out = normalizeScalar(it, a * b); return true;
        case ast::BinaryOp::Div:
            if (b == 0) return false;
            out = normalizeScalar(it, a / b);
            return true;
        case ast::BinaryOp::Rem:
            if (b == 0) return false;
            out = normalizeScalar(it, a % b);
            return true;
        case ast::BinaryOp::Shl:
            out = normalizeScalar(it, a << (b & 63));
            return true;
        case ast::BinaryOp::Shr:
            out = normalizeScalar(it, a >> (b & 63));
            return true;
        case ast::BinaryOp::Lt: out = a < b; type = bt; return true;
        case ast::BinaryOp::Gt: out = a > b; type = bt; return true;
        case ast::BinaryOp::Le: out = a <= b; type = bt; return true;
        case ast::BinaryOp::Ge: out = a >= b; type = bt; return true;
        case ast::BinaryOp::Eq: out = a == b; type = bt; return true;
        case ast::BinaryOp::Ne: out = a != b; type = bt; return true;
        case ast::BinaryOp::BitAnd:
            out = normalizeScalar(it, a & b);
            return true;
        case ast::BinaryOp::BitOr:
            out = normalizeScalar(it, a | b);
            return true;
        case ast::BinaryOp::BitXor:
            out = normalizeScalar(it, a ^ b);
            return true;
        default: return false;
        }
    }

    /// The mirrored operator for const-on-the-left fusion (k op x ->
    /// x op' k); returns false for non-commutable operators.
    static bool mirrorOp(ast::BinaryOp op, ast::BinaryOp& out)
    {
        switch (op) {
        case ast::BinaryOp::Add:
        case ast::BinaryOp::Mul:
        case ast::BinaryOp::BitAnd:
        case ast::BinaryOp::BitOr:
        case ast::BinaryOp::BitXor:
        case ast::BinaryOp::Eq:
        case ast::BinaryOp::Ne: out = op; return true;
        case ast::BinaryOp::Lt: out = ast::BinaryOp::Gt; return true;
        case ast::BinaryOp::Gt: out = ast::BinaryOp::Lt; return true;
        case ast::BinaryOp::Le: out = ast::BinaryOp::Ge; return true;
        case ast::BinaryOp::Ge: out = ast::BinaryOp::Le; return true;
        default: return false;
        }
    }

    /// Counter-exactness guard for fusions that absorb a COUNTED source
    /// instruction (ConstInt/LoadVarSc): the absorbed definition must
    /// have exactly one read, so DCE removes the source and the fused
    /// op's counter sum replaces it one-for-one — ExecCounters can only
    /// shrink, never grow, at -O2. The builder reuses low register
    /// numbers across statements, so the check is per DEFINITION, not
    /// per register: a definition is absorbed only when its linear span
    /// (def .. next write of the same register) contains exactly one
    /// read and crosses no leader — jumps only target leaders, so no
    /// other control path can observe it and the rewrite provably kills
    /// it.
    bool singleUse(std::uint16_t r) const
    {
        std::int32_t d = r < curDef_.size() ? curDef_[r] : -1;
        return d >= 0 && !spanLeader_[static_cast<std::size_t>(d)] &&
               spanReads_[static_cast<std::size_t>(d)] == 1;
    }

    /// Any instruction that can write memory invalidates every
    /// "register holds variable X" load fact (stores may alias the
    /// loaded slot through pointers).
    void killLoadFacts()
    {
        for (RegFact& f : facts_) {
            f.loadSlot = -1;
            f.loadType = nullptr;
        }
    }

    bool foldAndFuse()
    {
        bool changed = false;
        std::vector<std::uint8_t> leader;
        markLeaders(leader);
        versions_.assign(c_.numRegs, 0);
        clearFacts();

        // Per-definition span analysis for singleUse(): reads landing in
        // each definition's linear span, and whether the span crosses a
        // leader (see singleUse's comment).
        const std::size_t n = c_.code.size();
        spanReads_.assign(n, 0);
        spanLeader_.assign(n, 0);
        curDef_.assign(c_.numRegs, -1);
        {
            std::vector<std::uint16_t> reads;
            for (std::size_t i = 0; i < n; ++i) {
                if (leader[i])
                    for (std::int32_t d : curDef_)
                        if (d >= 0)
                            spanLeader_[static_cast<std::size_t>(d)] = 1;
                readRegs(c_.code[i], reads);
                for (std::uint16_t r : reads)
                    if (r < curDef_.size() && curDef_[r] >= 0)
                        ++spanReads_[static_cast<std::size_t>(curDef_[r])];
                if (writesA(c_.code[i].op) && c_.code[i].a < curDef_.size())
                    curDef_[c_.code[i].a] = static_cast<std::int32_t>(i);
            }
        }
        curDef_.assign(c_.numRegs, -1);

        for (std::size_t idx = 0; idx < c_.code.size(); ++idx) {
            // Track the governing definition of every register at the
            // current scan point (the previous instruction's write;
            // rewrites never change the destination register).
            if (idx > 0 && writesA(c_.code[idx - 1].op) &&
                c_.code[idx - 1].a < curDef_.size())
                curDef_[c_.code[idx - 1].a] =
                    static_cast<std::int32_t>(idx - 1);
            if (leader[idx]) {
                clearFacts();
            }
            if (hasSideEffect(c_.code[idx]) &&
                c_.code[idx].op != Op::AddrIndex &&
                c_.code[idx].op != Op::AddrIndexVar &&
                !isJump(c_.code[idx].op) && !isTerminal(c_.code[idx].op))
                killLoadFacts();
            Instr& I = c_.code[idx];
            std::int64_t va = 0, vb = 0;
            const Type *ta = nullptr, *tb = nullptr;

            switch (I.op) {
            case Op::ConstInt:
                setConst(I.a, I.imm64, I.type);
                continue;
            case Op::SetBool:
                setConst(I.a, I.imm, I.type);
                continue;
            case Op::AddrVar:
                killReg(I.a);
                facts_[I.a].addr = RegFact::Addr::VarBase;
                facts_[I.a].slot = I.imm;
                continue;
            case Op::AddrSig:
                killReg(I.a);
                facts_[I.a].addr = RegFact::Addr::SigBase;
                facts_[I.a].slot = I.imm;
                continue;
            case Op::AddrVarOff:
                killReg(I.a);
                facts_[I.a].addr = RegFact::Addr::VarOff;
                facts_[I.a].slot = I.imm;
                facts_[I.a].value = I.imm64;
                facts_[I.a].type = I.type;
                continue;
            case Op::AddrSigOff:
                killReg(I.a);
                facts_[I.a].addr = RegFact::Addr::SigOff;
                facts_[I.a].slot = I.imm;
                facts_[I.a].value = I.imm64;
                facts_[I.a].type = I.type;
                continue;
            case Op::AddrField: {
                // Collapse an address chain rooted at a variable or
                // signal into one offset op (counter-free: neither
                // AddrVar/AddrSig nor AddrField count anything).
                const RegFact base =
                    I.b < facts_.size() ? facts_[I.b] : RegFact{};
                if (base.addr == RegFact::Addr::VarBase ||
                    base.addr == RegFact::Addr::VarOff ||
                    base.addr == RegFact::Addr::SigBase ||
                    base.addr == RegFact::Addr::SigOff) {
                    bool isVar = base.addr == RegFact::Addr::VarBase ||
                                 base.addr == RegFact::Addr::VarOff;
                    std::int64_t off =
                        (base.addr == RegFact::Addr::VarOff ||
                         base.addr == RegFact::Addr::SigOff)
                            ? base.value + I.imm
                            : I.imm;
                    I = Instr{isVar ? Op::AddrVarOff : Op::AddrSigOff, I.a,
                              0, 0, base.slot, off, I.type, I.loc};
                    ++stats_.instrsFused;
                    changed = true;
                    killReg(I.a);
                    facts_[I.a].addr = isVar ? RegFact::Addr::VarOff
                                             : RegFact::Addr::SigOff;
                    facts_[I.a].slot = I.imm;
                    facts_[I.a].value = off;
                    facts_[I.a].type = I.type;
                    continue;
                }
                killReg(I.a);
                continue;
            }
            case Op::LoadVarSc:
                killReg(I.a);
                facts_[I.a].loadSlot = I.imm;
                facts_[I.a].loadType = I.type;
                continue;
            case Op::AddrIndex: {
                propagate(I.c);
                // Fold a freshly-loaded scalar index into the bounds-
                // checked address computation; singleUse keeps the
                // counter sum exact (the load's loads++ moves into the
                // fused op and DCE removes the load).
                const RegFact idxf =
                    I.c < facts_.size() ? facts_[I.c] : RegFact{};
                if (idxf.loadSlot >= 0 && singleUse(I.c)) {
                    I = Instr{Op::AddrIndexVar, I.a, I.b, 0, idxf.loadSlot,
                              0, idxf.loadType, I.loc};
                    ++stats_.instrsFused;
                    changed = true;
                }
                killReg(I.a);
                continue;
            }
            case Op::Unary: {
                propagate(I.b);
                if (constOf(I.b, va, ta)) {
                    std::int64_t out = 0;
                    const Type* type = nullptr;
                    switch (static_cast<ast::UnaryOp>(I.imm)) {
                    case ast::UnaryOp::Plus:
                        out = va;
                        type = ta;
                        break;
                    case ast::UnaryOp::Minus:
                        out = normalizeScalar(prog_.intType, -va);
                        type = prog_.intType;
                        break;
                    case ast::UnaryOp::Not:
                        out = va != 0 ? 0 : 1;
                        type = prog_.boolType;
                        break;
                    case ast::UnaryOp::BitNot:
                        if (ta->isBool()) {
                            out = va != 0 ? 0 : 1;
                            type = prog_.boolType;
                        } else {
                            out = normalizeScalar(prog_.intType, ~va);
                            type = prog_.intType;
                        }
                        break;
                    default: type = nullptr; break;
                    }
                    if (type) {
                        I = Instr{Op::ConstInt, I.a, 0, 0, 0, out, type,
                                  I.loc};
                        ++stats_.constantsFolded;
                        changed = true;
                        setConst(I.a, out, type);
                        continue;
                    }
                }
                if (static_cast<ast::UnaryOp>(I.imm) == ast::UnaryOp::Plus &&
                    I.a != I.b) {
                    // Unary plus is a pure copy: later reads of a may use
                    // b directly while b is unchanged.
                    killReg(I.a);
                    facts_[I.a].isCopy = true;
                    facts_[I.a].copyOf = I.b;
                    facts_[I.a].copyVersion = versions_[I.b];
                    continue;
                }
                killReg(I.a);
                continue;
            }
            case Op::Binary: {
                propagate(I.b);
                propagate(I.c);
                bool kb = constOf(I.b, va, ta);
                bool kc = constOf(I.c, vb, tb);
                if (kb && kc) {
                    std::int64_t out = 0;
                    const Type* type = nullptr;
                    if (evalBinary(I.imm, va, vb, out, type)) {
                        I = Instr{Op::ConstInt, I.a, 0, 0, 0, out, type,
                                  I.loc};
                        ++stats_.constantsFolded;
                        changed = true;
                        setConst(I.a, out, type);
                        continue;
                    }
                } else if (kc && singleUse(I.c)) {
                    I = Instr{Op::BinaryImm, I.a, I.b, 0, I.imm, vb, nullptr,
                              I.loc};
                    ++stats_.instrsFused;
                    changed = true;
                    killReg(I.a);
                    continue;
                } else if (kb && singleUse(I.b)) {
                    ast::BinaryOp mirrored;
                    if (mirrorOp(static_cast<ast::BinaryOp>(I.imm),
                                 mirrored)) {
                        I = Instr{Op::BinaryImm, I.a, I.c, 0,
                                  static_cast<std::int32_t>(mirrored), va,
                                  nullptr, I.loc};
                        ++stats_.instrsFused;
                        changed = true;
                        killReg(I.a);
                        continue;
                    }
                }
                killReg(I.a);
                continue;
            }
            case Op::BinaryImm: {
                propagate(I.b);
                if (constOf(I.b, va, ta)) {
                    std::int64_t out = 0;
                    const Type* type = nullptr;
                    if (evalBinary(I.imm, va, I.imm64, out, type)) {
                        I = Instr{Op::ConstInt, I.a, 0, 0, 0, out, type,
                                  I.loc};
                        ++stats_.constantsFolded;
                        changed = true;
                        setConst(I.a, out, type);
                        continue;
                    }
                }
                killReg(I.a);
                continue;
            }
            case Op::Cast: {
                propagate(I.b);
                if (constOf(I.b, va, ta)) {
                    std::int64_t out = normalizeScalar(I.type, va);
                    I = Instr{Op::ConstInt, I.a, 0, 0, 0, out, I.type, I.loc};
                    ++stats_.constantsFolded;
                    changed = true;
                    setConst(I.a, out, I.type);
                    continue;
                }
                killReg(I.a);
                continue;
            }
            case Op::BoolVal: {
                propagate(I.b);
                if (constOf(I.b, va, ta)) {
                    std::int64_t out = va != 0 ? 1 : 0;
                    I = Instr{Op::ConstInt, I.a, 0, 0, 0, out, I.type, I.loc};
                    ++stats_.constantsFolded;
                    changed = true;
                    setConst(I.a, out, I.type);
                    continue;
                }
                killReg(I.a);
                continue;
            }
            case Op::BranchFalse:
            case Op::BranchTrue: {
                propagate(I.a);
                if (constOf(I.a, va, ta)) {
                    bool taken = (I.op == Op::BranchTrue) == (va != 0);
                    if (taken) {
                        I = Instr{Op::Jmp, 0, 0, 0, I.imm, 0, nullptr, I.loc};
                    } else {
                        I = Instr{Op::Jmp, 0, 0, 0,
                                  static_cast<std::int32_t>(idx + 1), 0,
                                  nullptr, I.loc};
                    }
                    ++stats_.branchesSimplified;
                    changed = true;
                }
                continue;
            }
            case Op::StoreSc: {
                propagate(I.c);
                if (I.b < facts_.size() &&
                    facts_[I.b].addr == RegFact::Addr::VarBase) {
                    I = Instr{Op::StoreVarSc, I.a, 0, I.c, facts_[I.b].slot,
                              0, nullptr, I.loc};
                    ++stats_.instrsFused;
                    changed = true;
                }
                killReg(I.a);
                continue;
            }
            case Op::StoreVarSc: {
                propagate(I.c);
                std::int64_t vc = 0;
                const Type* tc = nullptr;
                if (constOf(I.c, vc, tc) && singleUse(I.c)) {
                    I = Instr{Op::StoreVarImm, I.a, 0, 0, I.imm, vc,
                              nullptr, I.loc};
                    ++stats_.instrsFused;
                    changed = true;
                }
                killReg(I.a);
                continue;
            }
            case Op::IncDec: {
                if (I.b < facts_.size() &&
                    facts_[I.b].addr == RegFact::Addr::VarBase) {
                    I = Instr{Op::IncDecVar, I.a, 0, 0, I.imm,
                              facts_[I.b].slot, nullptr, I.loc};
                    ++stats_.instrsFused;
                    changed = true;
                }
                killLoadFacts();
                killReg(I.a);
                continue;
            }
            case Op::StoreCompound:
            case Op::StoreAg:
                propagate(I.c);
                killReg(I.a);
                continue;
            case Op::InitVar:
                propagate(I.b);
                continue;
            case Op::Ret:
                propagate(I.a);
                continue;
            case Op::End:
                if (I.a != kNoResult) propagate(I.a);
                continue;
            default:
                // Loads, AddrSig/Index/Field, LoadInd, Call, ZeroVar,
                // Jmp, RetVoid: kill the written register, keep operands
                // as-is (Call argument blocks must stay consecutive).
                if (writesA(I.op)) killReg(I.a);
                continue;
            }
        }
        return changed;
    }

    // --- jump threading ---------------------------------------------------

    bool threadJumps()
    {
        bool changed = false;
        const std::size_t n = c_.code.size();
        std::vector<std::uint8_t> onPath(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
            Instr& I = c_.code[i];
            if (!isJump(I.op)) continue;
            std::fill(onPath.begin(), onPath.end(), 0);
            auto t = static_cast<std::size_t>(I.imm);
            while (t < n && c_.code[t].op == Op::Jmp && !onPath[t]) {
                onPath[t] = 1;
                t = static_cast<std::size_t>(c_.code[t].imm);
            }
            if (t != static_cast<std::size_t>(I.imm)) {
                I.imm = static_cast<std::int32_t>(t);
                ++stats_.jumpsThreaded;
                changed = true;
            }
        }
        // Jumps and branches to the immediately following instruction do
        // nothing; drop them.
        std::vector<std::uint8_t> keep(n, 1);
        bool any = false;
        for (std::size_t i = 0; i < n; ++i) {
            const Instr& I = c_.code[i];
            if (!isJump(I.op) ||
                static_cast<std::size_t>(I.imm) != i + 1)
                continue;
            keep[i] = 0;
            any = true;
            if (I.op == Op::Jmp)
                ++stats_.jumpsThreaded;
            else
                ++stats_.branchesSimplified;
        }
        if (any) changed |= compact(c_.code, keep) > 0;
        return changed;
    }

    // --- unreachable-code removal ----------------------------------------

    bool removeUnreachable()
    {
        const std::size_t n = c_.code.size();
        std::vector<std::uint8_t> seen(n, 0);
        std::vector<std::size_t> stack;
        if (n > 0) {
            stack.push_back(0);
            seen[0] = 1;
        }
        auto visit = [&](std::size_t t) {
            if (t < n && !seen[t]) {
                seen[t] = 1;
                stack.push_back(t);
            }
        };
        while (!stack.empty()) {
            std::size_t i = stack.back();
            stack.pop_back();
            const Instr& I = c_.code[i];
            if (I.op == Op::Jmp) {
                visit(static_cast<std::size_t>(I.imm));
            } else if (I.op == Op::BranchFalse || I.op == Op::BranchTrue) {
                visit(i + 1);
                visit(static_cast<std::size_t>(I.imm));
            } else if (!isTerminal(I.op)) {
                visit(i + 1);
            }
        }
        std::size_t removed = compact(c_.code, seen);
        stats_.deadInstrsRemoved += removed;
        return removed > 0;
    }

    // --- dead ZeroVar elision ---------------------------------------------

    bool elideZeroVars()
    {
        const std::size_t n = c_.code.size();
        std::vector<std::uint8_t> leader;
        markLeaders(leader);
        std::vector<std::uint8_t> keep(n, 1);
        // slot -> index of a ZeroVar not yet read or overwritten.
        std::map<std::int32_t, std::size_t> pending;
        bool any = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (leader[i]) pending.clear();
            const Instr& I = c_.code[i];
            switch (I.op) {
            case Op::ZeroVar: pending[I.imm] = i; break;
            case Op::InitVar: {
                // InitVar fully overwrites the slot (scalar write or
                // whole-size memcpy), so a pending ZeroVar is dead.
                auto it = pending.find(I.imm);
                if (it != pending.end()) {
                    keep[it->second] = 0;
                    pending.erase(it);
                    ++stats_.storesElided;
                    any = true;
                }
                break;
            }
            case Op::LoadVarSc:
            case Op::LoadVarAg:
            case Op::AddrVar:
            case Op::StoreVarSc:
            case Op::StoreVarImm:
            // The fused address ops carry hidden slot accesses that the
            // original AddrVar/LoadVarSc made visible before fusion+DCE:
            // AddrIndexVar READS store[imm] as its index, AddrVarOff
            // takes the slot's address.
            case Op::AddrIndexVar:
            case Op::AddrVarOff: pending.erase(I.imm); break;
            case Op::IncDecVar:
                pending.erase(static_cast<std::int32_t>(I.imm64));
                break;
            default: break; // Calls cannot touch this chunk's store.
            }
        }
        if (!any) return false;
        return compact(c_.code, keep) > 0;
    }

    // --- dead-register elimination ----------------------------------------

    bool eliminateDead()
    {
        const std::size_t n = c_.code.size();
        if (n == 0) return false;
        const std::size_t words =
            (static_cast<std::size_t>(c_.numRegs) + 63) / 64;
        if (words == 0) return false;
        std::vector<std::uint64_t> liveIn(n * words, 0);
        std::vector<std::uint64_t> scratch(words, 0);
        std::vector<std::uint16_t> reads;

        auto setBit = [&](std::vector<std::uint64_t>& bs, std::size_t base,
                          std::uint16_t r) {
            if (r < c_.numRegs) bs[base + r / 64] |= std::uint64_t{1} << (r % 64);
        };
        auto testBit = [&](const std::vector<std::uint64_t>& bs,
                           std::size_t base, std::uint16_t r) {
            return r < c_.numRegs &&
                   (bs[base + r / 64] >> (r % 64)) & 1;
        };

        // Liveness grows monotonically, so a pass bound keeps pathological
        // chunks cheap — but exiting WITHOUT convergence would
        // under-approximate liveness, and removal must then fail safe
        // (skip) rather than delete a live instruction.
        bool changedLive = true;
        for (int pass = 0; pass < 64 && changedLive; ++pass) {
            changedLive = false;
            for (std::size_t i = n; i-- > 0;) {
                const Instr& I = c_.code[i];
                // live-out = union of successors' live-in.
                std::fill(scratch.begin(), scratch.end(), 0);
                auto merge = [&](std::size_t t) {
                    if (t >= n) return;
                    for (std::size_t w = 0; w < words; ++w)
                        scratch[w] |= liveIn[t * words + w];
                };
                if (I.op == Op::Jmp) {
                    merge(static_cast<std::size_t>(I.imm));
                } else if (I.op == Op::BranchFalse ||
                           I.op == Op::BranchTrue) {
                    merge(i + 1);
                    merge(static_cast<std::size_t>(I.imm));
                } else if (!isTerminal(I.op)) {
                    merge(i + 1);
                }
                // live-in = (live-out \ writes) U reads.
                if (writesA(I.op) && I.a < c_.numRegs)
                    scratch[I.a / 64] &=
                        ~(std::uint64_t{1} << (I.a % 64));
                readRegs(I, reads);
                for (std::uint16_t r : reads) setBit(scratch, 0, r);
                for (std::size_t w = 0; w < words; ++w) {
                    if (liveIn[i * words + w] != scratch[w]) {
                        liveIn[i * words + w] = scratch[w];
                        changedLive = true;
                    }
                }
            }
        }
        if (changedLive) return false; // not converged: fail safe

        // An instruction whose only effect is writing a register nobody
        // reads afterwards is dead. live-out(i) is the union of
        // successors' live-in, recomputed here per candidate.
        std::vector<std::uint8_t> keep(n, 1);
        std::size_t removed = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const Instr& I = c_.code[i];
            if (hasSideEffect(I) || !writesA(I.op)) continue;
            bool live = false;
            auto liveAt = [&](std::size_t t) {
                return t < n && testBit(liveIn, t * words, I.a);
            };
            live = liveAt(i + 1); // non-control ops fall through
            if (!live) {
                keep[i] = 0;
                ++removed;
            }
        }
        if (removed == 0) return false;
        stats_.deadInstrsRemoved += removed;
        return compact(c_.code, keep) > 0;
    }

    void recomputeNumRegs()
    {
        std::uint16_t top = 0;
        std::vector<std::uint16_t> reads;
        for (const Instr& i : c_.code) {
            if (writesA(i.op))
                top = std::max<std::uint16_t>(
                    top, static_cast<std::uint16_t>(i.a + 1));
            readRegs(i, reads);
            for (std::uint16_t r : reads)
                top = std::max<std::uint16_t>(
                    top, static_cast<std::uint16_t>(r + 1));
        }
        c_.numRegs = top;
    }

    Local& c_;
    const Program& prog_;
    BytecodeStats& stats_;
    std::vector<RegFact> facts_;
    std::vector<std::uint32_t> versions_;
    // singleUse() span analysis, rebuilt per foldAndFuse round.
    std::vector<std::int32_t> curDef_;     ///< Governing def per register.
    std::vector<std::uint32_t> spanReads_; ///< Reads within a def's span.
    std::vector<std::uint8_t> spanLeader_; ///< Span crosses a leader.
};

/// Byte-serialization of one chunk for deduplication: every semantic
/// field (source locations excluded — merged chunks keep the first
/// occurrence's locs, which only error messages surface).
std::string dedupKey(const Local& c)
{
    std::string key;
    key.push_back(c.isExpr ? 1 : 0);
    auto append = [&key](const void* p, std::size_t bytes) {
        key.append(static_cast<const char*>(p), bytes);
    };
    for (const Instr& i : c.code) {
        append(&i.op, sizeof(i.op));
        append(&i.a, sizeof(i.a));
        append(&i.b, sizeof(i.b));
        append(&i.c, sizeof(i.c));
        append(&i.imm, sizeof(i.imm));
        append(&i.imm64, sizeof(i.imm64));
        append(&i.type, sizeof(i.type)); // interned TypeTable pointer
    }
    return key;
}

} // namespace

BytecodeStats optimizeBytecode(bc::Program& code, efsm::FlatProgram& flat,
                               bool transform)
{
    BytecodeStats stats;
    stats.instrsBefore = code.code.size();
    stats.chunksBefore = code.chunks.size();

    std::vector<Local> locals;
    locals.reserve(code.chunks.size());
    for (std::size_t c = 0; c < code.chunks.size(); ++c) {
        locals.push_back(extractChunk(code, c));
        if (transform) ChunkOptimizer(locals.back(), code, stats).run();
    }

    // Deduplicate and re-emit into one dense instruction array.
    std::map<std::string, std::int32_t> seen;
    std::vector<std::int32_t> remap(locals.size(), -1);
    std::vector<bc::Instr> newCode;
    std::vector<Chunk> newChunks;
    code.maxRegs = 0;
    for (std::size_t c = 0; c < locals.size(); ++c) {
        const Local& lc = locals[c];
        auto [it, isNew] =
            seen.emplace(dedupKey(lc),
                         static_cast<std::int32_t>(newChunks.size()));
        if (!isNew) {
            remap[c] = it->second;
            ++stats.chunksDeduped;
            continue;
        }
        remap[c] = it->second;
        Chunk nc;
        nc.begin = static_cast<std::uint32_t>(newCode.size());
        nc.end = nc.begin + static_cast<std::uint32_t>(lc.code.size());
        nc.numRegs = lc.numRegs;
        nc.isExpr = lc.isExpr;
        for (Instr i : lc.code) {
            if (isJump(i.op)) i.imm += static_cast<std::int32_t>(nc.begin);
            newCode.push_back(i);
        }
        newChunks.push_back(nc);
        if (nc.numRegs > code.maxRegs) code.maxRegs = nc.numRegs;
    }
    code.code = std::move(newCode);
    code.chunks = std::move(newChunks);

    // Rewrite every chunk reference.
    for (bc::CompiledFunction& f : code.functions)
        if (f.chunk >= 0) f.chunk = remap[static_cast<std::size_t>(f.chunk)];
    for (efsm::FlatNode& n : flat.nodes)
        if (n.predChunk >= 0)
            n.predChunk = remap[static_cast<std::size_t>(n.predChunk)];
    for (efsm::FlatAction& a : flat.actions)
        if (a.chunk >= 0)
            a.chunk = remap[static_cast<std::size_t>(a.chunk)];

    stats.instrsAfter = code.code.size();
    stats.chunksAfter = code.chunks.size();
    return stats;
}

} // namespace ecl::opt
