// Flat-state minimization by partition refinement (Moore-style
// bisimulation). Two states are merged when their decision trees are
// structurally identical — same signal tests, same data-predicate chunks,
// same action lists (by deduplicated chunk id), same leaf flags — and
// their leaf successors land in the same partition blocks. Merged states
// execute byte-identical reactions, so engine counters (treeTests,
// actionsRun, emitsRun) and data ExecCounters are preserved exactly;
// what shrinks is the number of distinct control states — which the
// explicit-state verifier multiplies its reachable set by.
//
// The signature compares the pause-config-DERIVED observables (dead,
// autoResume), not raw PauseSet identity: the builder keys states by
// config, so requiring config equality would merge nothing. The merged
// state keeps the lowest-old-id representative's config, which is what
// FlatProgram::configOf then reports (a label, not behavior).
#include <map>
#include <vector>

#include "src/opt/opt.h"

namespace ecl::opt {

namespace {

using efsm::FlatAction;
using efsm::FlatNode;
using efsm::FlatProgram;

/// Appends the partition signature of one node (recursively) to `sig`.
/// Leaf successors contribute their current block id, everything else its
/// structure — so equal signatures mean "bisimilar given the current
/// partition".
void nodeSignature(const FlatProgram& flat,
                   const std::vector<std::int32_t>& block, std::int32_t idx,
                   std::vector<std::int64_t>& sig)
{
    const FlatNode& n = flat.nodes[static_cast<std::size_t>(idx)];
    sig.push_back(n.actionsEnd - n.actionsBegin);
    for (std::int32_t a = n.actionsBegin; a < n.actionsEnd; ++a) {
        const FlatAction& fa = flat.actions[static_cast<std::size_t>(a)];
        sig.push_back(static_cast<std::int64_t>(fa.kind));
        sig.push_back(fa.isOutput ? 1 : 0);
        sig.push_back(fa.signal);
        sig.push_back(fa.chunk);
    }
    if (n.isLeaf()) {
        sig.push_back(-100 - n.flags);
        sig.push_back(n.nextState >= 0
                          ? block[static_cast<std::size_t>(n.nextState)]
                          : -1);
        return;
    }
    sig.push_back(-200);
    sig.push_back(n.testSignal);
    sig.push_back(n.predChunk);
    nodeSignature(flat, block, n.onTrue, sig);
    nodeSignature(flat, block, n.onFalse, sig);
}

} // namespace

MinimizeStats minimizeStates(efsm::FlatProgram& flat)
{
    MinimizeStats stats;
    stats.statesBefore = flat.states.size();
    stats.nodesBefore = flat.nodes.size();
    stats.actionsBefore = flat.actions.size();
    stats.configsBefore = flat.configs.size();

    const std::size_t n = flat.states.size();
    if (n == 0) return stats;

    // Reachability from the initial state over leaf successors.
    std::vector<std::uint8_t> reach(n, 0);
    std::vector<std::int32_t> work{flat.initialState};
    reach[static_cast<std::size_t>(flat.initialState)] = 1;
    std::vector<std::int32_t> stack;
    while (!work.empty()) {
        std::int32_t s = work.back();
        work.pop_back();
        stack.assign(1, flat.states[static_cast<std::size_t>(s)].root);
        while (!stack.empty()) {
            const FlatNode& nd =
                flat.nodes[static_cast<std::size_t>(stack.back())];
            stack.pop_back();
            if (!nd.isLeaf()) {
                stack.push_back(nd.onTrue);
                stack.push_back(nd.onFalse);
                continue;
            }
            if (nd.nextState < 0) continue;
            auto succ = static_cast<std::size_t>(nd.nextState);
            if (!reach[succ]) {
                reach[succ] = 1;
                work.push_back(nd.nextState);
            }
        }
    }
    for (std::size_t s = 0; s < n; ++s)
        if (!reach[s]) ++stats.unreachableStates;

    // Partition refinement. All reachable states start in one block; each
    // round re-partitions by exact signature under the previous blocks
    // (std::map keys keep block numbering deterministic: blocks are
    // ordered by signature, states visited ascending). Splitting is
    // monotone, so a round that does not grow the block count is stable.
    std::vector<std::int32_t> block(n, 0);
    std::size_t blockCount = 1;
    std::vector<std::int64_t> sig;
    for (std::size_t round = 0; round < n + 1; ++round) {
        std::map<std::vector<std::int64_t>, std::int32_t> index;
        std::vector<std::int32_t> next(n, -1);
        for (std::size_t s = 0; s < n; ++s) {
            if (!reach[s]) continue;
            const efsm::FlatState& st = flat.states[s];
            sig.clear();
            sig.push_back(block[s]); // refine: never re-merge split blocks
            sig.push_back((st.dead ? 1 : 0) | (st.autoResume ? 2 : 0));
            nodeSignature(flat, block, st.root, sig);
            auto [it, isNew] =
                index.emplace(sig, static_cast<std::int32_t>(index.size()));
            (void)isNew;
            next[s] = it->second;
        }
        ++stats.refinementRounds;
        bool stable = index.size() == blockCount;
        blockCount = index.size();
        block = std::move(next);
        if (stable) break;
    }

    // New ids in order of first occurrence (ascending old id), so the
    // representative rows FlatProgram::remapStates keeps are exactly the
    // lowest old id per block and numbering is deterministic.
    std::vector<std::int32_t> blockToNew(blockCount, -1);
    std::vector<std::int32_t> old2new(n, -1);
    std::int32_t newCount = 0;
    for (std::size_t s = 0; s < n; ++s) {
        if (!reach[s]) continue;
        std::int32_t& b = blockToNew[static_cast<std::size_t>(block[s])];
        if (b < 0) b = newCount++;
        old2new[s] = b;
    }
    stats.mergedStates =
        n - stats.unreachableStates - static_cast<std::size_t>(newCount);

    // Applied even when nothing merged: the identity remap still
    // re-interns the config pool, keeping the -O1 contract (only configs
    // referenced by surviving states, no duplicates) for hand-built
    // tables too.
    flat.remapStates(old2new);

    stats.statesAfter = flat.states.size();
    stats.nodesAfter = flat.nodes.size();
    stats.actionsAfter = flat.actions.size();
    stats.configsAfter = flat.configs.size();
    return stats;
}

} // namespace ecl::opt
