#include "src/rtos/rtos.h"

#include <algorithm>

namespace ecl::rtos {

Network::Network(cost::CostModel costModel, NetworkOptions options)
    : cost_(std::move(costModel)), options_(options)
{
}

int Network::addTask(std::shared_ptr<const CompiledModule> module,
                     int priority)
{
    Task t;
    t.module = std::move(module);
    if (options_.batchTasks && t.module->hasFlatProgram()) {
        // Same-module tasks share one BatchEngine; this task gets a slot.
        auto [it, inserted] =
            batchByModule_.try_emplace(t.module.get(), batches_.size());
        if (inserted)
            batches_.push_back(t.module->makeBatchEngine(/*instances=*/0));
        t.batch = batches_[it->second].get();
        t.slot = t.batch->addInstance();
    } else {
        t.engine = t.module->makeSyncEngine();
    }
    t.priority = priority;
    t.pending.resize(t.module->moduleSema().signals.size());
    tasks_.push_back(std::move(t));
    return static_cast<int>(tasks_.size() - 1);
}

rt::SyncEngine& Network::engine(int task)
{
    Task& t = tasks_[static_cast<std::size_t>(task)];
    if (!t.engine)
        throw EclError("task " + std::to_string(task) +
                       " is batch-backed and has no private engine");
    return *t.engine;
}

void Network::connect(int from, const std::string& fromSignal, int to,
                      const std::string& toSignal)
{
    const ModuleSema& fromSema =
        tasks_[static_cast<std::size_t>(from)].module->moduleSema();
    const ModuleSema& toSema =
        tasks_[static_cast<std::size_t>(to)].module->moduleSema();
    const SignalInfo* fs = fromSema.findSignal(fromSignal);
    const SignalInfo* ts = toSema.findSignal(toSignal);
    if (!fs) throw EclError("connect: no signal '" + fromSignal + "'");
    if (!ts) throw EclError("connect: no signal '" + toSignal + "'");
    if (fs->dir != SignalDir::Output)
        throw EclError("connect: '" + fromSignal + "' is not an output");
    if (ts->dir != SignalDir::Input)
        throw EclError("connect: '" + toSignal + "' is not an input");
    if (fs->pure != ts->pure)
        throw EclError("connect: pure/valued mismatch on '" + fromSignal +
                       "' -> '" + toSignal + "'");
    connections_.push_back({from, fs->index, to, ts->index});
}

void Network::onOutput(int task, const std::string& signal,
                       std::function<void(const Value*)> callback)
{
    Task& t = tasks_[static_cast<std::size_t>(task)];
    const SignalInfo* s = t.module->moduleSema().findSignal(signal);
    if (!s) throw EclError("onOutput: no signal '" + signal + "'");
    t.hooks.push_back({s->index, std::move(callback)});
}

void Network::deliver(int task, int signal, const Value* value)
{
    Task& t = tasks_[static_cast<std::size_t>(task)];
    PendingEvent& ev = t.pending[static_cast<std::size_t>(signal)];
    if (ev.present) t.stats.eventsOverwritten++; // 1-place buffer overwrite
    ev.present = true;
    if (value) ev.value = *value;
    rtosCycles_ += cost_.params().cycEventDeliver;
    makeReady(task);
}

void Network::makeReady(int task)
{
    Task& t = tasks_[static_cast<std::size_t>(task)];
    if (t.ready) return;
    t.ready = true;
    readyQueue_.push_back(task);
}

void Network::inject(int task, const std::string& signal)
{
    const SignalInfo* s = tasks_[static_cast<std::size_t>(task)]
                              .module->moduleSema()
                              .findSignal(signal);
    if (!s || s->dir != SignalDir::Input)
        throw EclError("inject: '" + signal + "' is not an input");
    deliver(task, s->index, nullptr);
}

void Network::injectScalar(int task, const std::string& signal,
                           std::int64_t v)
{
    const ModuleSema& sema =
        tasks_[static_cast<std::size_t>(task)].module->moduleSema();
    const SignalInfo* s = sema.findSignal(signal);
    if (!s || s->dir != SignalDir::Input)
        throw EclError("inject: '" + signal + "' is not an input");
    if (s->pure) throw EclError("inject: '" + signal + "' is pure");
    Value v2 = Value::fromInt(s->valueType, v);
    deliver(task, s->index, &v2);
}

void Network::injectValue(int task, const std::string& signal, Value v)
{
    const ModuleSema& sema =
        tasks_[static_cast<std::size_t>(task)].module->moduleSema();
    const SignalInfo* s = sema.findSignal(signal);
    if (!s || s->dir != SignalDir::Input)
        throw EclError("inject: '" + signal + "' is not an input");
    deliver(task, s->index, &v);
}

int Network::pickNext()
{
    // FIFO among the highest priority present in the queue.
    int bestIdx = -1;
    int bestPrio = INT_MIN;
    for (std::size_t i = 0; i < readyQueue_.size(); ++i) {
        int task = readyQueue_[i];
        int prio = tasks_[static_cast<std::size_t>(task)].priority;
        if (prio > bestPrio) {
            bestPrio = prio;
            bestIdx = static_cast<int>(i);
        }
    }
    int task = readyQueue_[static_cast<std::size_t>(bestIdx)];
    readyQueue_.erase(readyQueue_.begin() + bestIdx);
    return task;
}

void Network::reactTask(int taskId)
{
    Task& t = tasks_[static_cast<std::size_t>(taskId)];
    t.ready = false;

    rtosCycles_ += cost_.params().cycKernelDispatch;
    if (lastRanTask_ != taskId)
        rtosCycles_ += cost_.params().cycContextSwitch;
    lastRanTask_ = taskId;

    // Latch pending events as this reaction's inputs (index-based fast
    // path: no name lookups per instant).
    const ModuleSema& sema = t.module->moduleSema();
    for (std::size_t i = 0; i < t.pending.size(); ++i) {
        PendingEvent& ev = t.pending[i];
        if (!ev.present) continue;
        ev.present = false;
        t.stats.eventsConsumed++;
        const SignalInfo& info = sema.signals[i];
        if (info.pure) {
            if (t.batch)
                t.batch->setInput(t.slot, static_cast<int>(i));
            else
                t.engine->setInput(static_cast<int>(i));
        } else {
            if (t.batch)
                t.batch->setInputValue(t.slot, static_cast<int>(i),
                                       ev.value);
            else
                t.engine->setInputValue(static_cast<int>(i),
                                        std::move(ev.value));
        }
    }

    rt::ReactionResult r =
        t.batch ? t.batch->reactInstance(t.slot) : t.engine->react();
    t.stats.activations++;
    std::uint64_t cycles = cost_.reactionCycles(r);
    t.stats.taskCycles += cycles;
    taskCycles_ += cycles;

    // Propagate emitted outputs.
    for (int sig : r.emittedOutputs) {
        const SignalInfo& info = sema.signals[static_cast<std::size_t>(sig)];
        const Value* value = nullptr;
        Value copy;
        if (!info.pure) {
            copy = t.batch ? t.batch->outputValue(t.slot, sig)
                           : t.engine->env().signalValue(sig);
            value = &copy;
        }
        for (const Connection& c : connections_) {
            if (c.fromTask != taskId || c.fromSignal != sig) continue;
            deliver(c.toTask, c.toSignal, value);
        }
        for (const OutputHook& h : t.hooks) {
            if (h.signal != sig) continue;
            h.callback(value);
        }
    }

    // Delta pauses keep the task alive without new events.
    bool autoResume = t.batch ? t.batch->needsAutoResume(t.slot)
                              : t.engine->needsAutoResume();
    if (autoResume) makeReady(taskId);
}

void Network::boot()
{
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        Task& t = tasks_[i];
        if (t.booted) continue;
        t.booted = true;
        makeReady(static_cast<int>(i));
    }
    run();
}

std::size_t Network::run(std::size_t maxReactions)
{
    std::size_t reactions = 0;
    while (!readyQueue_.empty()) {
        if (++reactions > maxReactions)
            throw EclError("RTOS: reaction budget exceeded (livelock?)");
        reactTask(pickNext());
    }
    return reactions;
}

MemoryReport Network::memory() const
{
    MemoryReport m;
    const cost::CostParams& p = cost_.params();
    for (const Task& t : tasks_) {
        cost::CodeSize cs = cost_.moduleSize(t.module->machine());
        m.taskCode += cs.codeBytes;
        m.taskData += cs.dataBytes;
    }
    m.rtosCode = p.kernelCodeBytes + tasks_.size() * p.perTaskCodeOverhead;
    m.rtosData = p.kernelDataBytes +
                 tasks_.size() * (p.perTaskTcbBytes + p.perTaskStackBytes);
    for (const Task& t : tasks_) {
        // 1-place buffers: one flag + value slot per input signal.
        for (const SignalInfo& s : t.module->moduleSema().signals) {
            if (s.dir != SignalDir::Input) continue;
            m.rtosData += 1 + (s.pure ? 0 : s.valueType->size());
        }
    }
    m.rtosData += connections_.size() * p.perConnectionBytes;
    return m;
}

} // namespace ecl::rtos
