// RTOS simulator: asynchronous composition of compiled ECL modules.
//
// The paper's asynchronous implementation runs each module as a task under
// "a simple real-time kernel" [1] (the POLIS runtime). This simulator
// models that kernel:
//  * one task per compiled module, each wrapping a SyncEngine;
//  * POLIS/CFSM-style 1-place event buffers per input signal (a newer
//    event overwrites an unconsumed one; overwrites are counted);
//  * run-to-completion reactions, FIFO ready queue with priorities;
//  * cycle accounting split exactly like Table 1: task cycles (reaction
//    work, converted by the cost model) vs RTOS cycles (dispatch, context
//    switch, event delivery);
//  * memory accounting split the same way: task code/data vs kernel
//    code/data (kernel + TCBs + stacks + buffers).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/compiler.h"
#include "src/cost/cost.h"
#include "src/runtime/batch_engine.h"
#include "src/runtime/engine.h"

namespace ecl::rtos {

struct TaskStats {
    std::uint64_t activations = 0;
    std::uint64_t eventsConsumed = 0;
    std::uint64_t eventsOverwritten = 0;
    std::uint64_t taskCycles = 0;
};

struct MemoryReport {
    std::size_t taskCode = 0;
    std::size_t taskData = 0;
    std::size_t rtosCode = 0;
    std::size_t rtosData = 0;
};

struct NetworkOptions {
    /// Back tasks with slots of shared rt::BatchEngines (one per distinct
    /// CompiledModule) instead of one SyncEngine per task: many tasks of
    /// the same module then share the flat tables, the VM scratch and one
    /// SoA arena. Observable behavior (outputs, TaskStats, cycle
    /// accounting) is identical to per-task engines; tasks whose module
    /// lacks a flat program silently fall back to a private SyncEngine.
    bool batchTasks = false;
};

class Network {
public:
    explicit Network(cost::CostModel costModel = cost::CostModel{},
                     NetworkOptions options = {});

    /// Adds a task running `module`. Higher priority runs first among
    /// simultaneously-ready tasks. Returns the task id.
    int addTask(std::shared_ptr<const CompiledModule> module,
                int priority = 0);

    /// Routes emissions of `fromSignal` (output of task `from`) into the
    /// 1-place input buffer of `toSignal` on task `to`. Values are carried
    /// along for valued signals.
    void connect(int from, const std::string& fromSignal, int to,
                 const std::string& toSignal);

    /// Registers a callback for emissions of an output signal (testbench
    /// observation; does not consume the event).
    void onOutput(int task, const std::string& signal,
                  std::function<void(const Value*)> callback);

    // --- external stimulus (the "environment") ---
    void inject(int task, const std::string& signal);
    void injectScalar(int task, const std::string& signal, std::int64_t v);
    void injectValue(int task, const std::string& signal, Value v);

    /// Runs the scheduler until no task is ready. Returns the number of
    /// reactions executed. Throws EclError if `maxReactions` is exceeded
    /// (livelock guard).
    std::size_t run(std::size_t maxReactions = 1 << 20);

    /// Boots every task (first reaction with no inputs), charging kernel
    /// startup costs. Call once before injecting stimulus.
    void boot();

    [[nodiscard]] std::uint64_t taskCycles() const { return taskCycles_; }
    [[nodiscard]] std::uint64_t rtosCycles() const { return rtosCycles_; }
    [[nodiscard]] const TaskStats& stats(int task) const
    {
        return tasks_[static_cast<std::size_t>(task)].stats;
    }
    [[nodiscard]] std::size_t taskCount() const { return tasks_.size(); }

    [[nodiscard]] MemoryReport memory() const;

    /// The task's private SyncEngine; throws EclError for batch-backed
    /// tasks (they share a BatchEngine slot instead).
    [[nodiscard]] rt::SyncEngine& engine(int task);

    /// True when the task runs on a shared BatchEngine slot.
    [[nodiscard]] bool taskIsBatchBacked(int task) const
    {
        return tasks_[static_cast<std::size_t>(task)].batch != nullptr;
    }

private:
    struct PendingEvent {
        bool present = false;
        Value value; ///< Empty for pure signals.
    };

    struct Connection {
        int fromTask;
        int fromSignal; ///< Signal index in the emitter.
        int toTask;
        int toSignal;   ///< Signal index in the receiver.
    };

    struct OutputHook {
        int signal;
        std::function<void(const Value*)> callback;
    };

    struct Task {
        std::shared_ptr<const CompiledModule> module;
        std::unique_ptr<rt::SyncEngine> engine; ///< Null when batch-backed.
        rt::BatchEngine* batch = nullptr; ///< Shared per-module engine.
        std::size_t slot = 0;             ///< This task's batch instance.
        int priority = 0;
        std::vector<PendingEvent> pending; ///< Indexed by signal index.
        bool ready = false;
        bool booted = false;
        TaskStats stats;
        std::vector<OutputHook> hooks;
    };

    void deliver(int task, int signal, const Value* value);
    void makeReady(int task);
    int pickNext();
    void reactTask(int taskId);

    cost::CostModel cost_;
    NetworkOptions options_;
    /// Batch engines shared by same-module tasks (batchTasks mode).
    std::vector<std::unique_ptr<rt::BatchEngine>> batches_;
    std::unordered_map<const CompiledModule*, std::size_t> batchByModule_;
    std::vector<Task> tasks_;
    std::vector<Connection> connections_;
    std::vector<int> readyQueue_;
    std::uint64_t taskCycles_ = 0;
    std::uint64_t rtosCycles_ = 0;
    int lastRanTask_ = -1;
};

} // namespace ecl::rtos
