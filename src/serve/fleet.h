// Sharded million-session serving layer over the batch runtime.
//
// The paper's claim is that compiling the whole specification into one
// EFSM makes a reaction cheap enough to treat a session as the unit of
// serving; rt::BatchEngine turned that into N instances over one set of
// flat tables. ShardedFleet is the layer above: it owns SHARDS of batch
// engines and serves an open population of sessions against them, the
// same shape as an inference-serving stack — sharded engines, admission
// control, live state migration over a packed-state substrate.
//
//  * Sharding. Each shard owns one rt::BatchEngine (VM or AOT-native
//    backend — FleetOptions::kind), a bounded lock-free ingress ring
//    (IngressRing), a slot free-list and a slot -> session reverse map.
//    Shards are pinned to fleet workers (shard s belongs to worker
//    s % threads, forever), so all engine and slot state is
//    single-writer and the only cross-thread traffic is the rings and
//    the session table.
//  * Ingress. submit()/submitScalar() run on ANY thread: resolve the
//    session's shard from the lock-free SessionTable, validate the
//    signal against a precomputed class table, and try-push one POD
//    event onto the shard's ring — no locks, no allocation. A full ring
//    rejects with SubmitStatus::QueueFull (typed backpressure, counted
//    per shard); events for ended sessions are dropped at dequeue.
//  * Scheduling. step() runs one fleet round: every shard with pending
//    traffic (non-empty ring or a dirty instance) — and only those —
//    drains its ring into its engine and advances it by one
//    stepDrain(FleetOptions::drainSteps) epoch. Idle shards cost
//    nothing. drainAll() loops rounds until no traffic remains.
//  * Admission control. admit() assigns monotonically increasing
//    session ids round-robin across shards, reusing parked slots before
//    growing the arena. A fleet-level high-water mark on queued events
//    pauses admission (AdmitStatus::Paused) until the backlog falls
//    under the low-water mark; FleetOptions::maxSessions caps the live
//    population (AdmitStatus::FleetFull).
//  * Checkpoint / migration. checkpointSession() wraps the packed
//    instance record in the versioned, compile-fingerprinted
//    SessionCheckpoint format; restoreSession() admits it back on any
//    fleet running the SAME compile (fingerprint mismatch is a typed
//    rejection). migrate() moves a live session between shards with
//    checkpoint + free-list reuse and one atomic session-table flip;
//    events still queued on the old shard re-resolve at dequeue time
//    and are forwarded to the new shard's ring. rebalance() migrates
//    sessions off the hottest shard onto the coldest.
//
// Threading contract: submit()/submitScalar() and SessionTable lookups
// are safe from any thread at any time, including concurrently with
// step(). Everything else — admit / endSession / migrate / checkpoint /
// restore / step / stats — is control-plane and runs on ONE thread at a
// time (the same thread that steps the fleet), never concurrently with
// an in-flight step().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/compiler.h"
#include "src/runtime/worker_pool.h"
#include "src/serve/checkpoint.h"
#include "src/serve/ingress_queue.h"
#include "src/serve/session_table.h"

namespace ecl::serve {

struct FleetOptions {
    /// Number of shards (one BatchEngine each).
    int shards = 1;
    /// Fleet worker threads; shard s is pinned to worker s % threads.
    /// Clamped to [1, shards].
    int threads = 1;
    /// Per-shard ingress ring capacity (rounded up to a power of two).
    std::size_t queueCapacity = 1u << 16;
    /// Live-session admission cap; 0 = unlimited.
    std::size_t maxSessions = 0;
    /// Queued-event high-water mark pausing admission; 0 = half the
    /// fleet's total ring capacity.
    std::size_t admitHighWater = 0;
    /// Backlog level at which a paused fleet resumes admitting; 0 =
    /// half the (effective) high-water mark.
    std::size_t admitLowWater = 0;
    /// stepDrain sub-step budget per shard per round (>= 1): auto-resume
    /// chains drain inside one round instead of one sub-step per round.
    int drainSteps = 1;
    /// Execution backend per shard engine (EngineKind::Native falls back
    /// to the VM exactly like makeBatchEngine).
    EngineKind kind = EngineKind::Flat;
};

enum class SubmitStatus {
    Ok,
    UnknownSession, ///< Never admitted, or already ended.
    QueueFull,      ///< Shard ring full — backpressure, retry later.
    BadSignal,      ///< Not an input signal of the module.
    NotScalar,      ///< submitScalar on a pure or non-scalar-valued signal.
};

enum class AdmitStatus {
    Ok,
    Paused,           ///< Backlog over the high-water mark.
    FleetFull,        ///< Live population at FleetOptions::maxSessions.
    IdSpaceExhausted, ///< Lifetime session-id capacity spent.
    BadShard,         ///< admitOn() with an out-of-range shard.
};

enum class RestoreStatus {
    Ok,
    Paused,
    FleetFull,
    IdSpaceExhausted,
    BadFormat,           ///< Magic/version/structure rejected.
    FingerprintMismatch, ///< Checkpoint from a different compile.
    BadState,            ///< Packed bytes inconsistent with this compile.
};

enum class MigrateStatus {
    Ok,
    UnknownSession,
    SameShard,
    BadShard,
    StagedInputs, ///< Step the fleet first: inputs staged on the engine.
};

struct AdmitResult {
    AdmitStatus status = AdmitStatus::Ok;
    SessionId session = 0;
    std::uint32_t shard = 0;
    std::uint32_t slot = 0;
};

struct RestoreResult {
    RestoreStatus status = RestoreStatus::Ok;
    SessionId session = 0;
    std::uint32_t shard = 0;
    std::uint32_t slot = 0;
};

/// Per-shard serving counters (monotonic unless noted).
struct ShardStats {
    std::uint64_t liveSessions = 0; ///< Current, not monotonic.
    std::uint64_t admitted = 0;
    std::uint64_t migratedIn = 0;
    std::uint64_t migratedOut = 0;
    std::uint64_t steps = 0;     ///< Rounds in which this shard advanced.
    std::uint64_t reactions = 0; ///< Reactions its engine ran.
    std::uint64_t eventsApplied = 0;
    std::uint64_t eventsForwarded = 0; ///< Re-routed after a migration.
    std::uint64_t eventsDropped = 0;   ///< Ended sessions, full targets.
    std::uint64_t rejectedQueueFull = 0;
    std::uint64_t queueDepth = 0; ///< Snapshot, not monotonic.
};

struct FleetStats {
    std::vector<ShardStats> shards;
    std::uint64_t liveSessions = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejectedPaused = 0; ///< Admissions refused at high water.
    std::uint64_t rejectedFull = 0;   ///< Admissions refused at maxSessions.
    std::uint64_t migrations = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t restores = 0;
    std::uint64_t rounds = 0;    ///< step() calls that advanced something.
    std::uint64_t reactions = 0; ///< Across all shards, all rounds.
    std::uint64_t pendingEvents = 0; ///< Snapshot of queued-event backlog.

    /// Sums a per-shard counter (convenience for tests/benches).
    [[nodiscard]] std::uint64_t
    total(std::uint64_t ShardStats::* field) const
    {
        std::uint64_t sum = 0;
        for (const ShardStats& s : shards) sum += s.*field;
        return sum;
    }
};

/// One output emission of the last round, in session terms.
struct SessionEvent {
    SessionId session = 0;
    std::int32_t signal = 0;
};

class ShardedFleet {
public:
    /// Builds `options.shards` empty shard engines of `mod`. The module
    /// must have a flat program; throws EclError otherwise.
    ShardedFleet(std::shared_ptr<const CompiledModule> mod,
                 FleetOptions options = {});
    ~ShardedFleet();

    ShardedFleet(const ShardedFleet&) = delete;
    ShardedFleet& operator=(const ShardedFleet&) = delete;

    // --- control plane (one thread, never during step()) ---
    /// Admits a new session on the next round-robin shard.
    AdmitResult admit();
    /// Admits on a specific shard (tests, locality-aware callers).
    AdmitResult admitOn(std::uint32_t shard);
    /// Ends a session: parks its slot for reuse and unmaps the id.
    /// Events still queued for it are dropped at dequeue. False when the
    /// session is unknown.
    bool endSession(SessionId id);
    /// Serialized SessionCheckpoint of a live session. Throws EclError
    /// when the session is unknown or has staged (un-stepped) inputs.
    [[nodiscard]] std::vector<std::uint8_t>
    checkpointSession(SessionId id) const;
    /// Admits a checkpointed session back into the fleet (new id, state
    /// restored bit-exactly). Typed rejection on format, fingerprint,
    /// admission-control or state failures.
    RestoreResult restoreSession(const std::uint8_t* data, std::size_t size);
    RestoreResult restoreSession(const std::vector<std::uint8_t>& bytes)
    {
        return restoreSession(bytes.data(), bytes.size());
    }
    /// Moves a live session to `targetShard` (checkpoint bytes + slot
    /// free-list reuse + one atomic table flip); its id is unchanged.
    MigrateStatus migrate(SessionId id, std::uint32_t targetShard);
    /// Migrates up to `maxMoves` sessions from the shard with the most
    /// live sessions to the one with the fewest, stopping when balanced
    /// (difference <= 1). Returns the number moved.
    std::size_t rebalance(std::size_t maxMoves);

    // --- data plane (any thread, any time) ---
    /// Stages presence of a pure or valued input signal for the
    /// session's next reaction.
    SubmitStatus submit(SessionId id, int sigIndex);
    /// Stages a scalar-valued input signal.
    SubmitStatus submitScalar(SessionId id, int sigIndex, std::int64_t v);

    // --- scheduling (control plane) ---
    /// One fleet round: shards with pending traffic drain their rings
    /// and advance their engines; idle shards are skipped. Returns the
    /// reactions run this round (0 = the fleet was idle).
    std::size_t step();
    /// Loops step() until no shard has pending traffic (or `maxRounds`
    /// rounds ran); returns total reactions.
    std::size_t drainAll(int maxRounds = 1 << 30);
    /// True when any shard has queued events or dirty instances.
    [[nodiscard]] bool hasPendingTraffic() const;

    // --- introspection (control plane unless noted) ---
    [[nodiscard]] std::size_t shardCount() const { return shards_.size(); }
    [[nodiscard]] const rt::BatchEngine& shardEngine(std::size_t s) const;
    /// Safe from any thread (lock-free table read).
    [[nodiscard]] bool isLive(SessionId id) const
    {
        return table_.lookup(id) != SessionTable::kInvalid;
    }
    /// (shard, slot) of a live session; throws EclError when unknown.
    [[nodiscard]] std::pair<std::uint32_t, std::uint32_t>
    locate(SessionId id) const;
    /// Session occupying (shard, slot), 0 when the slot is free.
    [[nodiscard]] SessionId sessionAt(std::size_t shard,
                                      std::uint32_t slot) const;
    [[nodiscard]] bool outputPresent(SessionId id, int sigIndex) const;
    [[nodiscard]] Value outputValue(SessionId id, int sigIndex) const;
    [[nodiscard]] bool terminated(SessionId id) const;
    /// True when the session's shard advanced in the last round and the
    /// session reacted in it.
    [[nodiscard]] bool reactedLastRound(SessionId id) const;
    /// Packed state record of a live session (checkpoint payload without
    /// the envelope).
    [[nodiscard]] std::vector<std::uint8_t>
    packSessionState(SessionId id) const;
    /// Appends the last round's output emissions (stepped shards only,
    /// shard-major, each shard's merged deterministic order).
    void collectLastRoundEvents(std::vector<SessionEvent>& out) const;
    [[nodiscard]] bool admissionPaused() const { return paused_; }
    [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }
    [[nodiscard]] const ModuleSema& moduleSema() const
    {
        return mod_->moduleSema();
    }
    [[nodiscard]] FleetStats stats() const;

private:
    enum class EventKind : std::uint8_t { Pure, Scalar };

    /// One POD ingress event (ring cell payload).
    struct IngressEvent {
        SessionId session = 0;
        std::int32_t signal = 0;
        EventKind kind = EventKind::Pure;
        std::int64_t value = 0;
    };

    struct Shard {
        std::unique_ptr<rt::BatchEngine> engine;
        IngressRing<IngressEvent> ring;
        std::vector<std::uint32_t> freeSlots;   ///< Parked, reusable.
        std::vector<SessionId> sessionOfSlot;   ///< 0 = free slot.
        // Owner-worker counters (written only by the pinned worker
        // during an epoch, read by the control thread between epochs).
        std::uint64_t steps = 0;
        std::uint64_t reactions = 0;
        std::uint64_t eventsApplied = 0;
        std::uint64_t eventsForwarded = 0;
        std::uint64_t eventsDropped = 0;
        std::uint64_t lastStepReactions = 0;
        // Control-thread counters.
        std::uint64_t liveSessions = 0;
        std::uint64_t admitted = 0;
        std::uint64_t migratedIn = 0;
        std::uint64_t migratedOut = 0;
        /// Producer-side (any thread): ring-full rejections.
        alignas(64) std::atomic<std::uint64_t> rejectedQueueFull{0};
        std::uint8_t active = 0;  ///< Scheduled this round.
        std::uint8_t stepped = 0; ///< Advanced in the last round.
        std::exception_ptr error;

        Shard(std::unique_ptr<rt::BatchEngine> eng, std::size_t ringCap)
            : engine(std::move(eng)), ring(ringCap)
        {
        }
    };

    [[nodiscard]] int ownerOf(std::size_t shard) const
    {
        return static_cast<int>(shard % static_cast<std::size_t>(threads_));
    }
    /// Admission-control gate shared by admit and restore; nonzero means
    /// rejected with that status.
    AdmitStatus admissionGate();
    std::uint32_t allocSlot(Shard& sh);
    void runWorker(int w);
    void drainRing(Shard& sh, std::uint32_t shardIndex);
    std::uint64_t locatePacked(SessionId id) const; ///< Throws when unknown.
    /// Queued-event backlog summed over the rings (racy estimate; the
    /// data plane shares NO fleet-global mutable state, so backpressure
    /// accounting reads the rings' own cursors instead of maintaining a
    /// contended counter).
    [[nodiscard]] std::uint64_t queuedEvents() const;

    std::shared_ptr<const CompiledModule> mod_;
    FleetOptions opts_;
    int threads_ = 1;
    std::uint64_t fingerprint_ = 0;
    /// Per-signal submit classification: 0 = not an input, 1 = pure,
    /// 2 = scalar-valued, 3 = wide-valued (reference-typed payloads do
    /// not fit a POD ring cell; stage them via the engine directly).
    std::vector<std::uint8_t> signalClass_;

    std::vector<std::unique_ptr<Shard>> shards_;
    std::unique_ptr<rt::WorkerPool> pool_;
    SessionTable table_;
    std::atomic<std::uint64_t> nextId_{1};

    // Control-thread state.
    std::uint64_t liveSessions_ = 0;
    std::uint64_t admitted_ = 0;
    std::uint64_t rejectedPaused_ = 0;
    std::uint64_t rejectedFull_ = 0;
    std::uint64_t migrations_ = 0;
    mutable std::uint64_t checkpoints_ = 0;
    std::uint64_t restores_ = 0;
    std::uint64_t rounds_ = 0;
    std::uint64_t reactions_ = 0;
    std::size_t highWater_ = 0;
    std::size_t lowWater_ = 0;
    bool paused_ = false;
    std::uint32_t rrShard_ = 0; ///< Round-robin admission cursor.
};

} // namespace ecl::serve
