// Session table: external session id -> (shard, slot), lock-free for
// readers.
//
// The fleet assigns session ids monotonically (1, 2, 3, ...), so the
// table is not a hash map at all: it is a two-level array indexed by id
// — an atomic spine of segment pointers, each segment a fixed block of
// atomic packed locations. Readers (producer-side submit resolving a
// session's shard, shard workers re-resolving a queued event after a
// migration) do two loads; they never see a torn entry because the
// location is a single 64-bit atomic and a segment pointer is published
// with a release store only after the segment is fully initialized.
//
// Writes are single-writer by contract: admission, migration and
// session end all run on the fleet's control thread (the same thread
// that calls step()). Migration is one atomic store — a concurrent
// reader sees either the old or the new placement, and the fleet's
// dequeue-time re-resolution + cross-shard forwarding make both
// outcomes correct.
//
// Capacity: kMaxSegments * kSegmentSize = 2^28 session ids per fleet
// lifetime; the spine itself is a flat 2 MiB of null atomic pointers,
// segments allocate lazily as ids grow.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace ecl::serve {

/// Opaque external session handle (0 is never a valid session).
using SessionId = std::uint64_t;

class SessionTable {
public:
    static constexpr std::uint64_t kInvalid = ~0ull; ///< Unknown or ended.

    SessionTable() = default;
    ~SessionTable()
    {
        for (std::size_t i = 0; i < kMaxSegments; ++i)
            delete[] segments_[i].load(std::memory_order_relaxed);
    }

    SessionTable(const SessionTable&) = delete;
    SessionTable& operator=(const SessionTable&) = delete;

    static constexpr std::uint64_t pack(std::uint32_t shard,
                                        std::uint32_t slot)
    {
        return (static_cast<std::uint64_t>(shard) << 32) | slot;
    }
    static constexpr std::uint32_t shardOf(std::uint64_t packed)
    {
        return static_cast<std::uint32_t>(packed >> 32);
    }
    static constexpr std::uint32_t slotOf(std::uint64_t packed)
    {
        return static_cast<std::uint32_t>(packed & 0xffffffffu);
    }

    /// Packed placement of `id`, or kInvalid when the id was never
    /// admitted (or has ended). Safe from any thread.
    [[nodiscard]] std::uint64_t lookup(SessionId id) const
    {
        const std::uint64_t idx = id;
        const std::size_t seg = static_cast<std::size_t>(idx >> kSegmentBits);
        if (seg >= kMaxSegments) return kInvalid;
        const Entry* block = segments_[seg].load(std::memory_order_acquire);
        if (!block) return kInvalid;
        return block[idx & kSegmentMask].load(std::memory_order_acquire);
    }

    /// Control-thread only: places (or re-places, for migration) `id`.
    /// Returns false when the id is beyond the table's lifetime capacity.
    bool set(SessionId id, std::uint32_t shard, std::uint32_t slot)
    {
        Entry* block = segmentFor(id);
        if (!block) return false;
        block[id & kSegmentMask].store(pack(shard, slot),
                                       std::memory_order_release);
        return true;
    }

    /// Control-thread only: marks `id` ended (lookup returns kInvalid).
    void erase(SessionId id)
    {
        const std::size_t seg = static_cast<std::size_t>(id >> kSegmentBits);
        if (seg >= kMaxSegments) return;
        Entry* block = segments_[seg].load(std::memory_order_relaxed);
        if (block)
            block[id & kSegmentMask].store(kInvalid,
                                           std::memory_order_release);
    }

    /// Lifetime id capacity (admissions beyond this fail).
    [[nodiscard]] static constexpr std::uint64_t idCapacity()
    {
        return static_cast<std::uint64_t>(kMaxSegments) << kSegmentBits;
    }

private:
    using Entry = std::atomic<std::uint64_t>;
    static constexpr std::size_t kSegmentBits = 16;
    static constexpr std::size_t kSegmentMask = (1u << kSegmentBits) - 1;
    static constexpr std::size_t kMaxSegments = 1u << 12;

    Entry* segmentFor(SessionId id)
    {
        const std::size_t seg = static_cast<std::size_t>(id >> kSegmentBits);
        if (seg >= kMaxSegments) return nullptr;
        Entry* block = segments_[seg].load(std::memory_order_acquire);
        if (!block) {
            block = new Entry[1u << kSegmentBits];
            for (std::size_t i = 0; i < (1u << kSegmentBits); ++i)
                block[i].store(kInvalid, std::memory_order_relaxed);
            // Single writer: no CAS needed, but publish with release so
            // readers that follow the pointer see initialized entries.
            segments_[seg].store(block, std::memory_order_release);
        }
        return block;
    }

    std::unique_ptr<std::atomic<Entry*>[]> spineStorage_ =
        std::make_unique<std::atomic<Entry*>[]>(kMaxSegments);
    std::atomic<Entry*>* segments_ = spineStorage_.get();
};

} // namespace ecl::serve
