#include "src/serve/checkpoint.h"

#include <cstring>

namespace ecl::serve {

namespace {

constexpr std::uint8_t kMagic[8] = {'E', 'C', 'L', 'C', 'K', 'P', 'T', '1'};

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

class Reader {
public:
    Reader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint32_t u32() { return static_cast<std::uint32_t>(uN(4)); }
    std::uint64_t u64() { return uN(8); }
    std::uint8_t u8() { return static_cast<std::uint8_t>(uN(1)); }

    const std::uint8_t* bytes(std::size_t n)
    {
        need(n);
        const std::uint8_t* p = data_ + pos_;
        pos_ += n;
        return p;
    }

    [[nodiscard]] bool done() const { return pos_ == size_; }

private:
    void need(std::size_t n) const
    {
        if (size_ - pos_ < n)
            throw EclError("checkpoint truncated at byte " +
                           std::to_string(pos_));
    }

    std::uint64_t uN(std::size_t n)
    {
        need(n);
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < n; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += n;
        return v;
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/// Order-sensitive structural hash: every field is length-prefixed or
/// fixed-width, so distinct shapes cannot collide by concatenation.
class Fnv {
public:
    void u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void str(const std::string& s)
    {
        u64(s.size());
        for (char c : s) byte(static_cast<std::uint8_t>(c));
    }
    [[nodiscard]] std::uint64_t hash() const { return h_; }

private:
    void byte(std::uint8_t b)
    {
        h_ ^= b;
        h_ *= 0x100000001b3ull;
    }
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

} // namespace

std::uint64_t compileFingerprint(const CompiledModule& mod)
{
    if (!mod.hasFlatProgram())
        throw EclError("compileFingerprint: module '" + mod.name() +
                       "' has no flat program");
    const efsm::FlatProgram& flat = mod.flatProgram();
    const ModuleSema& sema = mod.moduleSema();
    const rt::InstanceLayout layout = rt::computeInstanceLayout(sema);

    Fnv f;
    f.str(mod.name());
    // Signal table: names, directions and value widths decide which
    // arena offsets exist and what replaying inputs means.
    f.u64(sema.signals.size());
    for (const SignalInfo& s : sema.signals) {
        f.str(s.name);
        f.u64(static_cast<std::uint64_t>(s.dir));
        f.u64(s.pure ? 1 : 0);
        f.u64(s.pure ? 0 : s.valueType->size());
    }
    f.u64(sema.vars.size());
    for (const VarInfo& v : sema.vars) {
        f.str(v.name);
        f.u64(v.type->size());
    }
    // Instance layout: the exact byte interpretation of the data slice.
    f.u64(layout.dataBytes);
    for (std::uint32_t off : layout.varOffsets) f.u64(off);
    for (std::uint32_t off : layout.sigOffsets) f.u64(off);
    // Flat machine shape: control-state ids are indices into these
    // tables, so their sizes (plus the initial state) pin the numbering
    // a snapshot's control id is relative to.
    f.u64(flat.states.size());
    f.u64(flat.nodes.size());
    f.u64(flat.actions.size());
    f.u64(flat.configs.size());
    f.u64(static_cast<std::uint64_t>(flat.initialState));
    return f.hash();
}

std::vector<std::uint8_t> serializeCheckpoint(const SessionCheckpoint& cp)
{
    std::vector<std::uint8_t> out;
    out.reserve(8 + 4 + 8 + 8 + 1 + 4 + cp.state.size());
    for (std::uint8_t b : kMagic) out.push_back(b);
    putU32(out, SessionCheckpoint::kVersion);
    putU64(out, cp.fingerprint);
    putU64(out, cp.sessionId);
    out.push_back(static_cast<std::uint8_t>((cp.terminated ? 1 : 0) |
                                            (cp.autoResume ? 2 : 0)));
    putU32(out, static_cast<std::uint32_t>(cp.state.size()));
    out.insert(out.end(), cp.state.begin(), cp.state.end());
    return out;
}

SessionCheckpoint parseCheckpoint(const std::uint8_t* data, std::size_t size)
{
    Reader r(data, size);
    const std::uint8_t* magic = r.bytes(8);
    if (std::memcmp(magic, kMagic, 8) != 0)
        throw EclError("checkpoint: bad magic (not an ECL checkpoint)");
    const std::uint32_t version = r.u32();
    if (version != SessionCheckpoint::kVersion)
        throw EclError("checkpoint: unknown format version " +
                       std::to_string(version) + " (reader understands " +
                       std::to_string(SessionCheckpoint::kVersion) + ")");
    SessionCheckpoint cp;
    cp.fingerprint = r.u64();
    cp.sessionId = r.u64();
    const std::uint8_t flags = r.u8();
    cp.terminated = (flags & 1) != 0;
    cp.autoResume = (flags & 2) != 0;
    const std::uint32_t n = r.u32();
    if (n < 4)
        throw EclError("checkpoint: packed state shorter than its control "
                       "word");
    const std::uint8_t* p = r.bytes(n);
    cp.state.assign(p, p + n);
    if (!r.done())
        throw EclError("checkpoint: trailing bytes after packed state");
    return cp;
}

} // namespace ecl::serve
