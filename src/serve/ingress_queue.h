// Bounded lock-free ingress ring for the sharded serving layer.
//
// IngressRing is Dmitry Vyukov's bounded MPMC queue: a power-of-two ring
// of cells, each carrying its own sequence number. Producers claim a
// cell by CAS on the enqueue cursor and stamp it ready with a release
// store; consumers mirror the dance on the dequeue cursor. Nothing ever
// blocks, nothing allocates after construction, and a full ring FAILS
// the push instead of overwriting — which is exactly the backpressure
// contract the fleet needs: tryPush() == false is a typed rejection the
// producer surfaces to admission control, not a silent drop.
//
// The fleet uses it MPSC per shard (any thread produces via
// ShardedFleet::submit; only the shard's pinned worker consumes during
// a step), but the algorithm is safe MPMC, so cross-shard forwarding —
// a worker pushing a migrated session's stale events onto another
// shard's ring while that shard's worker drains it — needs no extra
// synchronization.
//
// T must be trivially copyable (cells are raw storage reused forever).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <type_traits>

namespace ecl::serve {

template <typename T> class IngressRing {
    static_assert(std::is_trivially_copyable_v<T>,
                  "IngressRing cells are raw reusable storage");

public:
    /// Capacity is rounded up to a power of two (minimum 2).
    explicit IngressRing(std::size_t capacity)
    {
        std::size_t cap = 2;
        while (cap < capacity) cap <<= 1;
        mask_ = cap - 1;
        cells_ = std::make_unique<Cell[]>(cap);
        for (std::size_t i = 0; i < cap; ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    IngressRing(const IngressRing&) = delete;
    IngressRing& operator=(const IngressRing&) = delete;

    [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

    /// False when the ring is full (the caller's typed-rejection path).
    bool tryPush(const T& v)
    {
        Cell* cell;
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::size_t seq = cell->seq.load(std::memory_order_acquire);
            const std::ptrdiff_t dif = static_cast<std::ptrdiff_t>(seq) -
                                       static_cast<std::ptrdiff_t>(pos);
            if (dif == 0) {
                if (head_.compare_exchange_weak(pos, pos + 1,
                                                std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false; // full
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
        cell->val = v;
        cell->seq.store(pos + 1, std::memory_order_release);
        return true;
    }

    /// False when the ring is empty.
    bool tryPop(T& out)
    {
        Cell* cell;
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::size_t seq = cell->seq.load(std::memory_order_acquire);
            const std::ptrdiff_t dif = static_cast<std::ptrdiff_t>(seq) -
                                       static_cast<std::ptrdiff_t>(pos + 1);
            if (dif == 0) {
                if (tail_.compare_exchange_weak(pos, pos + 1,
                                                std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false; // empty
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
        out = cell->val;
        cell->seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
    }

    /// Racy occupancy estimate (scheduling hint, never a correctness
    /// input): cursors are read independently, so the value can be
    /// momentarily stale in either direction.
    [[nodiscard]] std::size_t approxSize() const
    {
        const std::size_t h = head_.load(std::memory_order_relaxed);
        const std::size_t t = tail_.load(std::memory_order_relaxed);
        return h > t ? h - t : 0;
    }

private:
    /// Sequence-stamped cell; aligned so neighbouring cells of hot rings
    /// do not share a line with the cursors.
    struct Cell {
        std::atomic<std::size_t> seq;
        T val;
    };

    std::unique_ptr<Cell[]> cells_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::size_t> head_{0}; ///< Enqueue cursor.
    alignas(64) std::atomic<std::size_t> tail_{0}; ///< Dequeue cursor.
};

} // namespace ecl::serve
