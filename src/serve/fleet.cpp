#include "src/serve/fleet.h"

#include <algorithm>

namespace ecl::serve {

ShardedFleet::ShardedFleet(std::shared_ptr<const CompiledModule> mod,
                           FleetOptions options)
    : mod_(std::move(mod)), opts_(options)
{
    if (!mod_) throw EclError("ShardedFleet: null module");
    if (!mod_->hasFlatProgram())
        throw EclError("ShardedFleet: module '" + mod_->name() +
                       "' has no flat program (compile with flattening)");
    if (opts_.shards < 1) opts_.shards = 1;
    if (opts_.drainSteps < 1) opts_.drainSteps = 1;
    threads_ = std::clamp(opts_.threads, 1, opts_.shards);
    fingerprint_ = compileFingerprint(*mod_);

    const ModuleSema& sema = mod_->moduleSema();
    signalClass_.resize(sema.signals.size(), 0);
    for (std::size_t i = 0; i < sema.signals.size(); ++i) {
        const SignalInfo& s = sema.signals[i];
        if (s.dir != SignalDir::Input) continue;
        signalClass_[i] = s.pure ? 1 : (s.valueType->isScalar() ? 2u : 3u);
    }

    shards_.reserve(static_cast<std::size_t>(opts_.shards));
    for (int s = 0; s < opts_.shards; ++s) {
        // Each shard engine is single-threaded: parallelism lives at the
        // fleet level (one pinned worker per shard), never nested.
        auto engine = mod_->makeBatchEngine(0, rt::BatchOptions{1}, opts_.kind);
        shards_.push_back(
            std::make_unique<Shard>(std::move(engine), opts_.queueCapacity));
    }

    std::size_t totalRing = 0;
    for (const auto& sh : shards_) totalRing += sh->ring.capacity();
    highWater_ = opts_.admitHighWater ? opts_.admitHighWater : totalRing / 2;
    if (highWater_ == 0) highWater_ = 1;
    lowWater_ = opts_.admitLowWater ? opts_.admitLowWater : highWater_ / 2;
    if (lowWater_ >= highWater_) lowWater_ = highWater_ - 1;

    pool_ = std::make_unique<rt::WorkerPool>(threads_,
                                             [this](int w) { runWorker(w); });
}

ShardedFleet::~ShardedFleet() = default;

// --- admission ---

AdmitStatus ShardedFleet::admissionGate()
{
    const std::uint64_t backlog = queuedEvents();
    if (paused_) {
        if (backlog <= lowWater_) paused_ = false;
    } else if (backlog >= highWater_) {
        paused_ = true;
    }
    if (paused_) {
        ++rejectedPaused_;
        return AdmitStatus::Paused;
    }
    if (opts_.maxSessions && liveSessions_ >= opts_.maxSessions) {
        ++rejectedFull_;
        return AdmitStatus::FleetFull;
    }
    if (nextId_.load(std::memory_order_relaxed) >= SessionTable::idCapacity())
        return AdmitStatus::IdSpaceExhausted;
    return AdmitStatus::Ok;
}

std::uint32_t ShardedFleet::allocSlot(Shard& sh)
{
    if (!sh.freeSlots.empty()) {
        const std::uint32_t slot = sh.freeSlots.back();
        sh.freeSlots.pop_back();
        return slot;
    }
    const std::uint32_t slot =
        static_cast<std::uint32_t>(sh.engine->addInstance());
    sh.sessionOfSlot.resize(slot + 1, 0);
    return slot;
}

AdmitResult ShardedFleet::admit()
{
    AdmitResult r = admitOn(rrShard_);
    rrShard_ = (rrShard_ + 1) % static_cast<std::uint32_t>(shards_.size());
    return r;
}

AdmitResult ShardedFleet::admitOn(std::uint32_t shard)
{
    if (shard >= shards_.size()) return {AdmitStatus::BadShard, 0, 0, 0};
    const AdmitStatus gate = admissionGate();
    if (gate != AdmitStatus::Ok) return {gate, 0, 0, 0};

    Shard& sh = *shards_[shard];
    std::uint32_t slot;
    if (!sh.freeSlots.empty()) {
        // A reused slot carries the previous tenant's bytes — return it
        // to the post-addInstance state (boot pending); a fresh slot
        // already is.
        slot = sh.freeSlots.back();
        sh.freeSlots.pop_back();
        sh.engine->resetInstance(slot);
    } else {
        slot = static_cast<std::uint32_t>(sh.engine->addInstance());
        sh.sessionOfSlot.resize(slot + 1, 0);
    }
    const SessionId id = nextId_.fetch_add(1, std::memory_order_relaxed);
    sh.sessionOfSlot[slot] = id;
    table_.set(id, shard, slot);
    ++sh.liveSessions;
    ++sh.admitted;
    ++liveSessions_;
    ++admitted_;
    return {AdmitStatus::Ok, id, shard, slot};
}

bool ShardedFleet::endSession(SessionId id)
{
    const std::uint64_t packed = table_.lookup(id);
    if (packed == SessionTable::kInvalid) return false;
    Shard& sh = *shards_[SessionTable::shardOf(packed)];
    const std::uint32_t slot = SessionTable::slotOf(packed);
    table_.erase(id); // Unmap first: queued events now drop at dequeue.
    sh.engine->parkInstance(slot);
    sh.sessionOfSlot[slot] = 0;
    sh.freeSlots.push_back(slot);
    --sh.liveSessions;
    --liveSessions_;
    return true;
}

// --- checkpoint / restore / migration ---

std::uint64_t ShardedFleet::locatePacked(SessionId id) const
{
    const std::uint64_t packed = table_.lookup(id);
    if (packed == SessionTable::kInvalid)
        throw EclError("fleet: unknown session " + std::to_string(id));
    return packed;
}

std::vector<std::uint8_t> ShardedFleet::checkpointSession(SessionId id) const
{
    const std::uint64_t packed = locatePacked(id);
    const Shard& sh = *shards_[SessionTable::shardOf(packed)];
    const std::uint32_t slot = SessionTable::slotOf(packed);
    if (sh.engine->hasStagedInputs(slot))
        throw EclError("fleet: session " + std::to_string(id) +
                       " has staged inputs; step the fleet before "
                       "checkpointing");
    SessionCheckpoint cp;
    cp.fingerprint = fingerprint_;
    cp.sessionId = id;
    cp.terminated = sh.engine->terminated(slot);
    cp.autoResume = sh.engine->needsAutoResume(slot);
    cp.state = sh.engine->packInstanceState(slot);
    ++checkpoints_;
    return serializeCheckpoint(cp);
}

RestoreResult ShardedFleet::restoreSession(const std::uint8_t* data,
                                           std::size_t size)
{
    SessionCheckpoint cp;
    try {
        cp = parseCheckpoint(data, size);
    } catch (const EclError&) {
        return {RestoreStatus::BadFormat, 0, 0, 0};
    }
    if (cp.fingerprint != fingerprint_)
        return {RestoreStatus::FingerprintMismatch, 0, 0, 0};

    switch (admissionGate()) {
    case AdmitStatus::Ok: break;
    case AdmitStatus::Paused: return {RestoreStatus::Paused, 0, 0, 0};
    case AdmitStatus::FleetFull: return {RestoreStatus::FleetFull, 0, 0, 0};
    default: return {RestoreStatus::IdSpaceExhausted, 0, 0, 0};
    }

    const std::uint32_t shard = rrShard_;
    rrShard_ = (rrShard_ + 1) % static_cast<std::uint32_t>(shards_.size());
    Shard& sh = *shards_[shard];
    const std::uint32_t slot = allocSlot(sh);
    try {
        sh.engine->restoreInstanceState(slot, cp.state.data(),
                                        cp.state.size());
    } catch (const EclError&) {
        // Structurally valid envelope, inconsistent payload (hand-edited
        // or corrupted past the fingerprint): roll the slot back.
        sh.engine->parkInstance(slot);
        sh.freeSlots.push_back(slot);
        return {RestoreStatus::BadState, 0, 0, 0};
    }
    const SessionId id = nextId_.fetch_add(1, std::memory_order_relaxed);
    sh.sessionOfSlot[slot] = id;
    table_.set(id, shard, slot);
    ++sh.liveSessions;
    ++liveSessions_;
    ++restores_;
    return {RestoreStatus::Ok, id, shard, slot};
}

MigrateStatus ShardedFleet::migrate(SessionId id, std::uint32_t targetShard)
{
    if (targetShard >= shards_.size()) return MigrateStatus::BadShard;
    const std::uint64_t packed = table_.lookup(id);
    if (packed == SessionTable::kInvalid) return MigrateStatus::UnknownSession;
    const std::uint32_t srcShard = SessionTable::shardOf(packed);
    if (srcShard == targetShard) return MigrateStatus::SameShard;
    Shard& src = *shards_[srcShard];
    const std::uint32_t srcSlot = SessionTable::slotOf(packed);
    if (src.engine->hasStagedInputs(srcSlot)) return MigrateStatus::StagedInputs;

    // Checkpoint bytes out of the source, into a reused (or fresh) slot
    // on the target, then ONE atomic table flip. Events already queued on
    // the source shard re-resolve at dequeue and are forwarded.
    const std::vector<std::uint8_t> state =
        src.engine->packInstanceState(srcSlot);
    Shard& tgt = *shards_[targetShard];
    const std::uint32_t tgtSlot = allocSlot(tgt);
    tgt.engine->restoreInstanceState(tgtSlot, state.data(), state.size());
    tgt.sessionOfSlot[tgtSlot] = id;

    src.engine->parkInstance(srcSlot);
    src.sessionOfSlot[srcSlot] = 0;
    src.freeSlots.push_back(srcSlot);

    table_.set(id, targetShard, tgtSlot);
    --src.liveSessions;
    ++src.migratedOut;
    ++tgt.liveSessions;
    ++tgt.migratedIn;
    ++migrations_;
    return MigrateStatus::Ok;
}

std::size_t ShardedFleet::rebalance(std::size_t maxMoves)
{
    if (shards_.size() < 2) return 0;
    std::size_t moved = 0;
    while (moved < maxMoves) {
        // Re-pick the hottest/coldest pair every move so the whole fleet
        // converges, not just the initially most-skewed pair.
        std::size_t hot = 0, cold = 0;
        for (std::size_t s = 1; s < shards_.size(); ++s) {
            if (shards_[s]->liveSessions > shards_[hot]->liveSessions)
                hot = s;
            if (shards_[s]->liveSessions < shards_[cold]->liveSessions)
                cold = s;
        }
        if (shards_[hot]->liveSessions <= shards_[cold]->liveSessions + 1)
            break;
        // Uproot the hot shard's newest live slot (recently admitted
        // sessions are the cheapest to move — cold caches).
        Shard& src = *shards_[hot];
        SessionId victim = 0;
        for (std::size_t i = src.sessionOfSlot.size(); i-- > 0;)
            if (src.sessionOfSlot[i] != 0) {
                victim = src.sessionOfSlot[i];
                break;
            }
        if (victim == 0 ||
            migrate(victim, static_cast<std::uint32_t>(cold)) !=
                MigrateStatus::Ok)
            break;
        ++moved;
    }
    return moved;
}

// --- data plane ---

SubmitStatus ShardedFleet::submit(SessionId id, int sigIndex)
{
    if (sigIndex < 0 ||
        static_cast<std::size_t>(sigIndex) >= signalClass_.size() ||
        signalClass_[static_cast<std::size_t>(sigIndex)] == 0)
        return SubmitStatus::BadSignal;
    const std::uint64_t packed = table_.lookup(id);
    if (packed == SessionTable::kInvalid) return SubmitStatus::UnknownSession;
    Shard& sh = *shards_[SessionTable::shardOf(packed)];
    IngressEvent ev;
    ev.session = id;
    ev.signal = sigIndex;
    ev.kind = EventKind::Pure;
    if (!sh.ring.tryPush(ev)) {
        sh.rejectedQueueFull.fetch_add(1, std::memory_order_relaxed);
        return SubmitStatus::QueueFull;
    }
    return SubmitStatus::Ok;
}

SubmitStatus ShardedFleet::submitScalar(SessionId id, int sigIndex,
                                        std::int64_t v)
{
    if (sigIndex < 0 ||
        static_cast<std::size_t>(sigIndex) >= signalClass_.size() ||
        signalClass_[static_cast<std::size_t>(sigIndex)] == 0)
        return SubmitStatus::BadSignal;
    if (signalClass_[static_cast<std::size_t>(sigIndex)] != 2)
        return SubmitStatus::NotScalar;
    const std::uint64_t packed = table_.lookup(id);
    if (packed == SessionTable::kInvalid) return SubmitStatus::UnknownSession;
    Shard& sh = *shards_[SessionTable::shardOf(packed)];
    IngressEvent ev;
    ev.session = id;
    ev.signal = sigIndex;
    ev.kind = EventKind::Scalar;
    ev.value = v;
    if (!sh.ring.tryPush(ev)) {
        sh.rejectedQueueFull.fetch_add(1, std::memory_order_relaxed);
        return SubmitStatus::QueueFull;
    }
    return SubmitStatus::Ok;
}

// --- scheduling ---

void ShardedFleet::drainRing(Shard& sh, std::uint32_t shardIndex)
{
    // Bounded per round: producers may keep pushing while we drain, so
    // cap the pops at one full ring — leftovers go to the next round.
    std::size_t budget = sh.ring.capacity();
    IngressEvent ev;
    while (budget-- > 0 && sh.ring.tryPop(ev)) {
        const std::uint64_t packed = table_.lookup(ev.session);
        if (packed == SessionTable::kInvalid) {
            // Session ended while the event was in flight.
            ++sh.eventsDropped;
            continue;
        }
        const std::uint32_t owner = SessionTable::shardOf(packed);
        if (owner != shardIndex) {
            // Migrated since enqueue: forward to the current home. The
            // control plane is quiescent during a round, so one hop
            // always lands (the target drains it this round or next).
            if (shards_[owner]->ring.tryPush(ev))
                ++sh.eventsForwarded;
            else
                ++sh.eventsDropped;
            continue;
        }
        const std::uint32_t slot = SessionTable::slotOf(packed);
        if (ev.kind == EventKind::Pure)
            sh.engine->setInput(slot, ev.signal);
        else
            sh.engine->setInputScalar(slot, ev.signal, ev.value);
        ++sh.eventsApplied;
    }
}

void ShardedFleet::runWorker(int w)
{
    for (std::size_t s = static_cast<std::size_t>(w); s < shards_.size();
         s += static_cast<std::size_t>(threads_)) {
        Shard& sh = *shards_[s];
        if (!sh.active) continue;
        try {
            drainRing(sh, static_cast<std::uint32_t>(s));
            const std::size_t n = sh.engine->stepDrain(opts_.drainSteps);
            sh.lastStepReactions = n;
            sh.reactions += n;
            ++sh.steps;
            sh.stepped = 1;
        } catch (...) {
            sh.error = std::current_exception();
        }
    }
}

std::size_t ShardedFleet::step()
{
    int maxOwner = -1;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        Shard& sh = *shards_[s];
        sh.stepped = 0;
        sh.active = (sh.ring.approxSize() > 0 || sh.engine->hasPendingWork())
                        ? 1
                        : 0;
        if (sh.active) maxOwner = std::max(maxOwner, ownerOf(s));
    }
    if (maxOwner < 0) return 0;

    pool_->run(maxOwner + 1);

    std::size_t reactions = 0;
    for (auto& shp : shards_) {
        Shard& sh = *shp;
        if (sh.error) {
            std::exception_ptr e = sh.error;
            sh.error = nullptr;
            std::rethrow_exception(e);
        }
        if (sh.stepped) reactions += sh.lastStepReactions;
    }
    ++rounds_;
    reactions_ += reactions;
    return reactions;
}

std::size_t ShardedFleet::drainAll(int maxRounds)
{
    std::size_t total = 0;
    for (int r = 0; r < maxRounds && hasPendingTraffic(); ++r)
        total += step();
    return total;
}

std::uint64_t ShardedFleet::queuedEvents() const
{
    std::uint64_t backlog = 0;
    for (const auto& sh : shards_) backlog += sh->ring.approxSize();
    return backlog;
}

bool ShardedFleet::hasPendingTraffic() const
{
    for (const auto& sh : shards_)
        if (sh->ring.approxSize() > 0 || sh->engine->hasPendingWork())
            return true;
    return false;
}

// --- introspection ---

const rt::BatchEngine& ShardedFleet::shardEngine(std::size_t s) const
{
    if (s >= shards_.size())
        throw EclError("fleet: shard " + std::to_string(s) + " out of range");
    return *shards_[s]->engine;
}

std::pair<std::uint32_t, std::uint32_t> ShardedFleet::locate(SessionId id) const
{
    const std::uint64_t packed = locatePacked(id);
    return {SessionTable::shardOf(packed), SessionTable::slotOf(packed)};
}

SessionId ShardedFleet::sessionAt(std::size_t shard, std::uint32_t slot) const
{
    if (shard >= shards_.size()) return 0;
    const Shard& sh = *shards_[shard];
    if (slot >= sh.sessionOfSlot.size()) return 0;
    return sh.sessionOfSlot[slot];
}

bool ShardedFleet::outputPresent(SessionId id, int sigIndex) const
{
    const std::uint64_t packed = locatePacked(id);
    return shards_[SessionTable::shardOf(packed)]->engine->outputPresent(
        SessionTable::slotOf(packed), sigIndex);
}

Value ShardedFleet::outputValue(SessionId id, int sigIndex) const
{
    const std::uint64_t packed = locatePacked(id);
    return shards_[SessionTable::shardOf(packed)]->engine->outputValue(
        SessionTable::slotOf(packed), sigIndex);
}

bool ShardedFleet::terminated(SessionId id) const
{
    const std::uint64_t packed = locatePacked(id);
    return shards_[SessionTable::shardOf(packed)]->engine->terminated(
        SessionTable::slotOf(packed));
}

bool ShardedFleet::reactedLastRound(SessionId id) const
{
    const std::uint64_t packed = locatePacked(id);
    const Shard& sh = *shards_[SessionTable::shardOf(packed)];
    // reacted flags persist on a shard that skipped the last round; gate
    // on the shard having actually advanced in it.
    return sh.stepped != 0 &&
           sh.engine->reactedLastStep(SessionTable::slotOf(packed));
}

std::vector<std::uint8_t> ShardedFleet::packSessionState(SessionId id) const
{
    const std::uint64_t packed = locatePacked(id);
    return shards_[SessionTable::shardOf(packed)]->engine->packInstanceState(
        SessionTable::slotOf(packed));
}

void ShardedFleet::collectLastRoundEvents(std::vector<SessionEvent>& out) const
{
    for (const auto& shp : shards_) {
        const Shard& sh = *shp;
        if (!sh.stepped) continue;
        for (const rt::BatchEngine::StepEvent& ev :
             sh.engine->lastStepEvents()) {
            const SessionId id = sh.sessionOfSlot[ev.instance];
            if (id != 0) out.push_back({id, ev.signal});
        }
    }
}

FleetStats ShardedFleet::stats() const
{
    FleetStats st;
    st.shards.reserve(shards_.size());
    for (const auto& shp : shards_) {
        const Shard& sh = *shp;
        ShardStats ss;
        ss.liveSessions = sh.liveSessions;
        ss.admitted = sh.admitted;
        ss.migratedIn = sh.migratedIn;
        ss.migratedOut = sh.migratedOut;
        ss.steps = sh.steps;
        ss.reactions = sh.reactions;
        ss.eventsApplied = sh.eventsApplied;
        ss.eventsForwarded = sh.eventsForwarded;
        ss.eventsDropped = sh.eventsDropped;
        ss.rejectedQueueFull =
            sh.rejectedQueueFull.load(std::memory_order_relaxed);
        ss.queueDepth = sh.ring.approxSize();
        st.shards.push_back(ss);
    }
    st.liveSessions = liveSessions_;
    st.admitted = admitted_;
    st.rejectedPaused = rejectedPaused_;
    st.rejectedFull = rejectedFull_;
    st.migrations = migrations_;
    st.checkpoints = checkpoints_;
    st.restores = restores_;
    st.rounds = rounds_;
    st.reactions = reactions_;
    st.pendingEvents = queuedEvents();
    return st;
}

} // namespace ecl::serve
