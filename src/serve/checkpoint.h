// Versioned per-session checkpoints over the packed instance state.
//
// A session's whole execution state is the shared verification/batch
// record [i32 control state][instance-layout data bytes] — the bytes
// rt::BatchEngine::packInstanceState emits and the verifier's
// encodeEngineState proves round-trip. A checkpoint wraps that record
// with enough metadata to make restoring SAFE across process and fleet
// boundaries:
//
//  * a magic + format version ("ECLCKPT1", kVersion) so readers reject
//    formats they do not know;
//  * a compile fingerprint hashing everything the packed bytes depend
//    on — module name, the signal table, the instance layout offsets,
//    and the flat machine's shape (state/node/action/config counts,
//    initial state). Control-state ids and arena offsets are only
//    meaningful against the exact compile that produced them (state
//    minimization renumbers ids; a different -O level or source
//    revision reshapes both), so restore refuses a fingerprint
//    mismatch instead of silently loading garbage;
//  * the session id and derived flags (terminated / auto-resume) for
//    observability.
//
// Serialization is little-endian and self-contained; parse + validate
// with parseCheckpoint, gate against a receiving compile with
// compileFingerprint.
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/compiler.h"

namespace ecl::serve {

struct SessionCheckpoint {
    static constexpr std::uint32_t kVersion = 1;

    std::uint64_t fingerprint = 0; ///< compileFingerprint of the producer.
    std::uint64_t sessionId = 0;
    bool terminated = false;
    bool autoResume = false;
    /// Packed state: [i32 control state][instance-layout data bytes].
    std::vector<std::uint8_t> state;
};

/// Fingerprint of everything a packed state record depends on. Equal
/// fingerprints mean a checkpoint's bytes are drop-in loadable; the
/// function throws EclError when the module has no flat program.
[[nodiscard]] std::uint64_t compileFingerprint(const CompiledModule& mod);

/// Serializes to the stable binary format (magic "ECLCKPT1").
[[nodiscard]] std::vector<std::uint8_t>
serializeCheckpoint(const SessionCheckpoint& cp);

/// Parses + structurally validates a serialized checkpoint. Throws
/// EclError on a bad magic, unknown version, or truncated payload; the
/// fingerprint is NOT checked here (the receiving fleet compares it
/// against its own compile).
[[nodiscard]] SessionCheckpoint parseCheckpoint(const std::uint8_t* data,
                                                std::size_t size);

} // namespace ecl::serve
