// Reaction tracing: records per-instant signal activity and renders it as
// a VCD (Value Change Dump) waveform or a compact text timeline.
//
// The paper leans on Esterel's "sophisticated graphical source-level
// debugger" for specification-level exploration; this recorder is our
// equivalent: attach it to any engine, run the stimulus, and inspect the
// waves in GTKWave or the textual dump in a terminal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/engine.h"
#include "src/sema/sema.h"

namespace ecl::rt {

class TraceRecorder {
public:
    /// Records signals of `sema` (all of them, or a subset by name).
    explicit TraceRecorder(const ModuleSema& sema,
                           std::vector<std::string> signals = {});

    /// Samples the engine's last reaction (call right after react()).
    void sample(const SyncEngine& engine);

    /// Presence flags can also be provided directly (baseline engine,
    /// RTOS tasks): `present[i]` for recorded signal i, `values[i]` the
    /// scalar value or 0.
    void sampleRaw(const std::vector<bool>& present,
                   const std::vector<std::int64_t>& values);

    [[nodiscard]] std::size_t instants() const { return instants_; }

    /// IEEE-1364 VCD: one time unit per instant, wires for presence, and
    /// integer variables for scalar-valued signals.
    [[nodiscard]] std::string toVcd(const std::string& moduleName) const;

    /// Terminal timeline: one row per signal, one column per instant.
    [[nodiscard]] std::string toTimeline() const;

private:
    struct Track {
        std::string name;
        int signalIndex;
        bool valued;            ///< Scalar-valued (value track emitted).
        std::vector<bool> present;
        std::vector<std::int64_t> values;
    };

    const ModuleSema& sema_;
    std::vector<Track> tracks_;
    std::size_t instants_ = 0;
};

} // namespace ecl::rt
