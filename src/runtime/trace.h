// Reaction tracing: output recording (VCD / timeline) plus full
// input-stream record/replay.
//
// The paper leans on Esterel's "sophisticated graphical source-level
// debugger" for specification-level exploration; TraceRecorder is our
// equivalent of the waveform side: attach it to any engine, run the
// stimulus, and inspect the waves in GTKWave or the textual dump in a
// terminal.
//
// InputTrace / TraceWriter / TraceReader add the other direction: every
// input an engine receives — and every output it produced — is captured
// per instant into a versioned, stable format (binary "ECLTRC01" or a
// line-based text form, sniffed automatically on read). A recorded trace
// is a reproducible fixture: replayTrace() drives a fresh SyncEngine or a
// BatchEngine instance with the identical input stream and checks the
// outputs (presence, value bytes, termination, auto-resume) bit-exactly
// against the recording, returning the replayed engine's packed
// post-state so runs can also be compared across engines and -O levels.
// Signals travel by NAME in the format and are re-resolved on replay, so
// a trace survives signal-index or state renumbering between compiles of
// the same module.
//
// RecordingEngine wraps any ReactiveEngine and records transparently —
// existing drivers (benches, stimulus profiles, tests) become trace
// producers without modification.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/runtime/engine.h"
#include "src/runtime/instance_layout.h"
#include "src/sema/sema.h"

namespace ecl::rt {

class BatchEngine;

class TraceRecorder {
public:
    /// Records signals of `sema` (all of them, or a subset by name).
    explicit TraceRecorder(const ModuleSema& sema,
                           std::vector<std::string> signals = {});

    /// Samples the engine's last reaction (call right after react()).
    void sample(const SyncEngine& engine);

    /// Presence flags can also be provided directly (baseline engine,
    /// RTOS tasks): `present[i]` for recorded signal i, `values[i]` the
    /// scalar value or 0.
    void sampleRaw(const std::vector<bool>& present,
                   const std::vector<std::int64_t>& values);

    [[nodiscard]] std::size_t instants() const { return instants_; }

    /// IEEE-1364 VCD: one time unit per instant, wires for presence, and
    /// integer variables for scalar-valued signals.
    [[nodiscard]] std::string toVcd(const std::string& moduleName) const;

    /// Terminal timeline: one row per signal, one column per instant.
    [[nodiscard]] std::string toTimeline() const;

private:
    struct Track {
        std::string name;
        int signalIndex;
        bool valued;            ///< Scalar-valued (value track emitted).
        std::vector<bool> present;
        std::vector<std::int64_t> values;
    };

    const ModuleSema& sema_;
    std::vector<Track> tracks_;
    std::size_t instants_ = 0;
};

// ---------------------------------------------------------------------------
// Input-stream record/replay
// ---------------------------------------------------------------------------

/// One signal event: presence (empty `value`) or an emission/input with
/// its raw little-endian value bytes.
struct TraceEvent {
    std::uint32_t signal = 0;        ///< Index into InputTrace::signals.
    std::vector<std::uint8_t> value; ///< Empty for pure signals.
};

struct TraceInstant {
    std::vector<TraceEvent> inputs;  ///< Inputs staged before react().
    std::vector<TraceEvent> outputs; ///< Output signals present after it.
    bool terminated = false;
    bool autoResume = false;
};

/// A recorded run: the module's signal table (names, direction, sizes)
/// plus the per-instant input/output stream. Self-describing — replay
/// re-resolves signals by name against the target engine's sema.
struct InputTrace {
    /// Stable format version (bumped on any incompatible change; readers
    /// reject versions they do not know).
    static constexpr std::uint32_t kVersion = 1;

    struct SignalDesc {
        std::string name;
        bool input = false;
        bool output = false;
        bool pure = true;
        std::uint32_t valueSize = 0; ///< Value byte width (0 when pure).
    };

    std::string module;
    std::vector<SignalDesc> signals;
    std::vector<TraceInstant> instants;

    /// Canonical text of the recorded OUTPUT stream (presence + value
    /// bytes + termination/auto-resume per instant); two runs are
    /// output-equivalent iff these strings are equal. Digest it with
    /// fnv1a64 for compact comparison.
    [[nodiscard]] std::string outputLog() const;
};

enum class TraceFormat {
    Binary, ///< "ECLTRC01" magic; compact, little-endian.
    Text,   ///< "eclrtrace" first line; line-based, diff-friendly.
};

/// Builds an InputTrace incrementally. Drivers either call the input
/// methods + endInstant() themselves or wrap their engine in a
/// RecordingEngine which does it for them.
class TraceWriter {
public:
    /// Captures the signal table of the module being recorded.
    explicit TraceWriter(const ModuleSema& sema, std::string moduleName);

    void input(int sigIndex);
    void inputValue(int sigIndex, const Value& v);
    /// Closes the instant: samples every output signal of `eng` (call
    /// right after react()).
    void endInstant(const ReactiveEngine& eng);
    /// Closes the instant with pre-sampled outputs (batch instances).
    void endInstantRaw(std::vector<TraceEvent> outputs, bool terminated,
                       bool autoResume);

    [[nodiscard]] const InputTrace& trace() const { return trace_; }
    [[nodiscard]] InputTrace takeTrace() { return std::move(trace_); }

private:
    const ModuleSema& sema_;
    InputTrace trace_;
    TraceInstant pending_;
};

/// Serializes `trace` (see TraceFormat). Throws EclError on write errors.
void writeTrace(const InputTrace& trace, std::ostream& os, TraceFormat fmt);
void writeTraceFile(const InputTrace& trace, const std::string& path,
                    TraceFormat fmt);

/// Parses either format (sniffed from the first bytes). Throws EclError
/// on malformed input or an unknown version.
InputTrace readTrace(std::istream& is);
InputTrace readTraceFile(const std::string& path);

/// Transparent recording wrapper: forwards every call to `inner` and
/// captures inputs per instant + outputs per reaction into a TraceWriter.
/// The wrapped engine must outlive the wrapper.
class RecordingEngine final : public ReactiveEngine {
public:
    RecordingEngine(ReactiveEngine& inner, std::string moduleName);

    using ReactiveEngine::outputPresent;
    using ReactiveEngine::outputValue;
    using ReactiveEngine::setInput;
    using ReactiveEngine::setInputScalar;
    using ReactiveEngine::setInputValue;

    void setInput(int sigIndex) override;
    void setInputScalar(int sigIndex, std::int64_t v) override;
    void setInputValue(int sigIndex, Value v) override;
    ReactionResult react() override;
    [[nodiscard]] bool outputPresent(int sigIndex) const override;
    [[nodiscard]] Value outputValue(int sigIndex) const override;
    [[nodiscard]] bool terminated() const override;
    [[nodiscard]] bool needsAutoResume() const override;
    [[nodiscard]] const ModuleSema& moduleSema() const override;
    [[nodiscard]] const char* backendName() const override;
    [[nodiscard]] std::vector<std::uint8_t> packState() const override;

    [[nodiscard]] const InputTrace& trace() const { return writer_.trace(); }
    [[nodiscard]] InputTrace takeTrace() { return writer_.takeTrace(); }

private:
    ReactiveEngine& inner_;
    TraceWriter writer_;
};

/// Replay outcome: output equivalence against the recording plus the
/// replayed engine's final packed state and summed counters.
struct TraceReplayResult {
    std::size_t instants = 0;
    /// Outputs (presence, value bytes, termination, auto-resume) matched
    /// the recording at every instant. Always true when the trace holds
    /// no outputs or checking was disabled.
    bool outputsMatch = true;
    std::string mismatch; ///< First divergence, human-readable.
    /// fnv1a64 hex digest of the replayed run's canonical output log —
    /// equal digests mean output-equivalent runs (comparable across
    /// engines and -O levels).
    std::string outputDigest;
    /// Packed post-state [i32 control state][instance-layout data bytes].
    /// The control id is representation-dependent (state minimization
    /// renumbers at -O1+); compare `finalData()` across -O levels and the
    /// full vector between engines of the same compile.
    std::vector<std::uint8_t> finalState;
    [[nodiscard]] std::vector<std::uint8_t> finalData() const
    {
        return {finalState.begin() + 4, finalState.end()};
    }
    // Summed engine-level counters (cross-engine exactness contract:
    // sync vs batch exact at any level; -O0/-O1 exact vs tree walk; -O2
    // data counters may only shrink).
    std::uint64_t treeTests = 0;
    std::uint64_t actionsRun = 0;
    std::uint64_t emitsRun = 0;
    ExecCounters dataCounters;
};

struct TraceReplayOptions {
    /// Check outputs against the recording (when the trace has them).
    bool checkOutputs = true;
};

/// Packs a live SyncEngine into the shared verification/batch state
/// record: [i32 control state][instance-layout data bytes]. Byte-equal
/// strings mean same state (the verify layer's encodeEngineState is this
/// function).
std::vector<std::uint8_t> packEngineState(const SyncEngine& engine,
                                          const InstanceLayout& layout);

/// Replays `trace` on any fresh (pre-boot) ReactiveEngine; the final
/// packed state comes from the engine's packState() virtual, so VM and
/// native engines compare byte-for-byte.
TraceReplayResult replayTrace(ReactiveEngine& engine, const InputTrace& trace,
                              const TraceReplayOptions& opts = {});

/// Replays `trace` on instance `inst` of a BatchEngine; every instant is
/// a stepAll() (strict lockstep, matching SyncEngine reaction-per-instant
/// semantics). Other instances receive no inputs.
TraceReplayResult replayTrace(BatchEngine& batch, std::size_t inst,
                              const InputTrace& trace,
                              const TraceReplayOptions& opts = {});

} // namespace ecl::rt
