#include "src/runtime/batch_engine.h"

#include <algorithm>
#include <cstring>

namespace ecl::rt {

// ---------------------------------------------------------------------------
// Shard: per-worker scratch context
// ---------------------------------------------------------------------------

BatchEngine::Shard::Shard(std::shared_ptr<const bc::Program> code,
                          const ModuleSema& sema,
                          const InstanceLayout& layout,
                          std::uint8_t* scratchBase)
    : vm(std::move(code)), store(sema.vars, scratchBase, layout.varOffsets),
      sigs(sema, layout, scratchBase)
{
}

// ---------------------------------------------------------------------------
// BatchEngine
// ---------------------------------------------------------------------------

BatchEngine::BatchEngine(const efsm::FlatProgram& flat,
                         std::shared_ptr<const bc::Program> code,
                         const ModuleSema& sema, std::size_t instances,
                         BatchOptions options)
    : flat_(flat), code_(std::move(code)), sema_(sema)
{
    if (!code_)
        throw EclError("BatchEngine requires the compiled bytecode program");

    // Fixed per-instance arena layout (shared with the verification
    // explorer's packed states): variables first, then valued-signal
    // slots, each 8-byte aligned; the whole slice padded to 64 bytes.
    layout_ = computeInstanceLayout(sema_);
    scratchSlice_.assign(layout_.stride, 0);

    const int t = std::max(1, options.threads);
    shards_.reserve(static_cast<std::size_t>(t));
    for (int w = 0; w < t; ++w)
        shards_.push_back(std::make_unique<Shard>(code_, sema_, layout_,
                                                  scratchSlice_.data()));
    ranges_.resize(static_cast<std::size_t>(t));
    pool_ = std::make_unique<WorkerPool>(t, [this](int w) { runShard(w); });

    for (std::size_t i = 0; i < instances; ++i) addInstance();
}

std::size_t BatchEngine::addInstance()
{
    const std::size_t id = state_.size();
    const std::size_t S = sema_.signals.size();
    state_.push_back(flat_.initialState);
    instantOpen_.push_back(0);
    dirty_.push_back(0);
    reacted_.push_back(0);
    present_.resize(present_.size() + S, 0);
    lastPresent_.resize(lastPresent_.size() + S, 0);
    dataArena_.resize(dataArena_.size() + layout_.stride, 0);
    last_.emplace_back();
    markDirty(id); // boot reaction pending
    return id;
}

const SignalInfo& BatchEngine::checkSignal(std::size_t inst,
                                           int sigIndex) const
{
    if (inst >= state_.size())
        throw EclError("batch instance " + std::to_string(inst) +
                       " out of range");
    if (sigIndex < 0 ||
        static_cast<std::size_t>(sigIndex) >= sema_.signals.size())
        throw EclError("signal index " + std::to_string(sigIndex) +
                       " out of range");
    return sema_.signals[static_cast<std::size_t>(sigIndex)];
}

const SignalInfo& BatchEngine::checkInput(std::size_t inst,
                                          int sigIndex) const
{
    const SignalInfo& s = checkSignal(inst, sigIndex);
    if (s.dir != SignalDir::Input)
        throw EclError("'" + s.name + "' is not an input signal");
    return s;
}

void BatchEngine::markDirty(std::size_t inst)
{
    if (dirty_[inst]) return;
    dirty_[inst] = 1;
    dirtyList_.push_back(static_cast<std::uint32_t>(inst));
}

void BatchEngine::openInstant(std::size_t inst)
{
    if (instantOpen_[inst]) return;
    instantOpen_[inst] = 1;
    if (const std::size_t S = sema_.signals.size())
        std::memset(presentRow(inst), 0, S);
}

void BatchEngine::storeSignalValue(std::size_t inst, const SignalInfo& info,
                                   const Value& v)
{
    // Normalization identical to SignalEnv::setValue: scalars convert to
    // the signal's value type, aggregates must match it exactly.
    if (info.pure)
        throw EclError("cannot set a value on pure signal '" + info.name +
                       "'");
    std::uint8_t* slot =
        slice(inst) + layout_.sigOffsets[static_cast<std::size_t>(info.index)];
    if (info.valueType->isScalar())
        writeScalar(slot, info.valueType, v.toInt());
    else if (v.type() == info.valueType)
        std::memcpy(slot, v.data(), info.valueType->size());
    else
        throw EclError("signal value type mismatch for '" + info.name + "'");
    presentRow(inst)[static_cast<std::size_t>(info.index)] = 1;
}

void BatchEngine::setInput(std::size_t inst, int sigIndex)
{
    checkInput(inst, sigIndex);
    openInstant(inst);
    presentRow(inst)[static_cast<std::size_t>(sigIndex)] = 1;
    markDirty(inst);
}

void BatchEngine::setInputScalar(std::size_t inst, int sigIndex,
                                 std::int64_t v)
{
    const SignalInfo& info = checkInput(inst, sigIndex);
    if (info.pure)
        throw EclError("'" + info.name + "' is pure; use setInput()");
    openInstant(inst);
    writeScalar(slice(inst) +
                    layout_.sigOffsets[static_cast<std::size_t>(info.index)],
                info.valueType, v);
    presentRow(inst)[static_cast<std::size_t>(sigIndex)] = 1;
    markDirty(inst);
}

void BatchEngine::setInputValue(std::size_t inst, int sigIndex,
                                const Value& v)
{
    const SignalInfo& info = checkInput(inst, sigIndex);
    openInstant(inst);
    storeSignalValue(inst, info, v);
    markDirty(inst);
}

void BatchEngine::reactOne(Shard& shard, std::size_t inst)
{
    const std::size_t S = sema_.signals.size();
    std::uint8_t* base = slice(inst);
    std::uint8_t* present = presentRow(inst);
    shard.store.rebindAll(base, layout_.varOffsets);
    shard.sigs.bind(base);

    if (!instantOpen_[inst] && S != 0) std::memset(present, 0, S);
    instantOpen_[inst] = 0;

    // Reset in place: emittedOutputs keeps its capacity, so steady-state
    // reactions run allocation-free (the header's contract).
    ReactionResult& result = last_[inst];
    result.emittedOutputs.clear();
    result.terminated = false;
    result.treeTests = 0;
    result.actionsRun = 0;
    result.emitsRun = 0;
    result.dataCounters.reset();
    shard.vm.resetCounters();
    shard.vm.resetOpWindow();

    // The walk mirrors SyncEngine::reactFlat exactly (outputs, state
    // update, termination, counters) so the differential tests can demand
    // bit-equality.
    const efsm::FlatNode* nodes = flat_.nodes.data();
    const efsm::FlatAction* actions = flat_.actions.data();
    auto runActions = [&](const efsm::FlatNode& node) {
        for (std::int32_t i = node.actionsBegin; i < node.actionsEnd; ++i) {
            const efsm::FlatAction& a = actions[i];
            ++result.actionsRun;
            if (a.kind == efsm::FlatAction::Kind::Emit) {
                ++result.emitsRun;
                if (a.chunk >= 0) {
                    Value v =
                        shard.vm.runExpr(a.chunk, shard.store, shard.sigs);
                    storeSignalValue(
                        inst,
                        sema_.signals[static_cast<std::size_t>(a.signal)],
                        v);
                } else {
                    present[a.signal] = 1;
                }
                if (a.isOutput) result.emittedOutputs.push_back(a.signal);
            } else if (a.chunk >= 0) {
                shard.vm.runAction(a.chunk, shard.store, shard.sigs);
            }
        }
    };

    const efsm::FlatNode* node =
        &nodes[flat_.states[static_cast<std::size_t>(state_[inst])].root];
    while (!node->isLeaf()) {
        runActions(*node);
        ++result.treeTests;
        bool taken = node->testSignal >= 0
                         ? present[node->testSignal] != 0
                         : shard.vm.runPredicate(node->predChunk,
                                                 shard.store, shard.sigs);
        node = &nodes[taken ? node->onTrue : node->onFalse];
    }
    if (node->runtimeError())
        throw EclError("instantaneous loop detected at runtime (a "
                       "statically-unverifiable loop path was reached)");
    runActions(*node);
    state_[inst] = node->nextState;
    result.terminated =
        node->terminates() ||
        flat_.states[static_cast<std::size_t>(node->nextState)].dead;
    result.dataCounters = shard.vm.counters();

    if (S != 0)
        std::memcpy(lastPresent_.data() + inst * S, present, S);
    reacted_[inst] = 1;
    for (int sig : result.emittedOutputs)
        shard.events.push_back({static_cast<std::uint32_t>(inst), sig});
}

void BatchEngine::runShard(int w)
{
    Shard& s = *shards_[static_cast<std::size_t>(w)];
    const auto [begin, end] = ranges_[static_cast<std::size_t>(w)];
    try {
        for (std::size_t i = begin; i < end; ++i) reactOne(s, work_[i]);
    } catch (...) {
        s.error = std::current_exception();
    }
}

std::size_t BatchEngine::runStep(bool all)
{
    work_.clear();
    if (all) {
        work_.reserve(state_.size());
        for (std::size_t i = 0; i < state_.size(); ++i)
            work_.push_back(static_cast<std::uint32_t>(i));
        std::fill(dirty_.begin(), dirty_.end(), 0);
        dirtyList_.clear();
    } else {
        for (std::uint32_t inst : dirtyList_) {
            if (!dirty_[inst]) continue; // stale (consumed by reactInstance)
            dirty_[inst] = 0;
            work_.push_back(inst);
        }
        dirtyList_.clear();
        std::sort(work_.begin(), work_.end());
    }
    std::fill(reacted_.begin(), reacted_.end(), 0);
    stepEvents_.clear();
    if (work_.empty()) return 0;

    const std::size_t T = shards_.size();
    for (const std::unique_ptr<Shard>& s : shards_) {
        s->events.clear();
        s->error = nullptr;
    }
    const std::size_t chunk = (work_.size() + T - 1) / T;
    for (std::size_t w = 0; w < T; ++w) {
        const std::size_t b = std::min(work_.size(), w * chunk);
        ranges_[w] = {b, std::min(work_.size(), b + chunk)};
    }

    pool_->run();

    for (const std::unique_ptr<Shard>& s : shards_)
        if (s->error) std::rethrow_exception(s->error);
    for (const std::unique_ptr<Shard>& s : shards_)
        stepEvents_.insert(stepEvents_.end(), s->events.begin(),
                           s->events.end());

    // Delta pauses keep instances scheduled without new events (the same
    // rule rtos::Network applies to its tasks).
    for (std::uint32_t inst : work_)
        if (flat_.states[static_cast<std::size_t>(state_[inst])].autoResume)
            markDirty(inst);
    return work_.size();
}

std::size_t BatchEngine::step() { return runStep(/*all=*/false); }

std::size_t BatchEngine::stepAll() { return runStep(/*all=*/true); }

const ReactionResult& BatchEngine::reactInstance(std::size_t inst)
{
    checkInstance(inst);
    // Consume any queued mark, list entry included — a long-lived
    // reactInstance-only driver (the batch-backed rtos::Network) must not
    // accumulate stale entries across auto-resume reactions.
    if (dirty_[inst]) {
        dirty_[inst] = 0;
        auto it = std::find(dirtyList_.begin(), dirtyList_.end(),
                            static_cast<std::uint32_t>(inst));
        if (it != dirtyList_.end()) {
            *it = dirtyList_.back();
            dirtyList_.pop_back();
        }
    }
    // Step-scoped event accumulation is meaningless here; clear so the
    // shard buffer stays bounded by one reaction's emissions.
    shards_[0]->events.clear();
    reactOne(*shards_[0], inst);
    if (flat_.states[static_cast<std::size_t>(state_[inst])].autoResume)
        markDirty(inst);
    return last_[inst];
}

void BatchEngine::checkInstance(std::size_t inst) const
{
    if (inst >= state_.size())
        throw EclError("batch instance " + std::to_string(inst) +
                       " out of range");
}

bool BatchEngine::reactedLastStep(std::size_t inst) const
{
    checkInstance(inst);
    return reacted_[inst] != 0;
}

const ReactionResult& BatchEngine::lastResult(std::size_t inst) const
{
    checkInstance(inst);
    return last_[inst];
}

std::vector<std::uint8_t>
BatchEngine::packInstanceState(std::size_t inst) const
{
    checkInstance(inst);
    std::vector<std::uint8_t> out(4 + layout_.dataBytes, 0);
    const std::int32_t st = state_[inst];
    std::memcpy(out.data(), &st, 4);
    std::memcpy(out.data() + 4, dataArena_.data() + inst * layout_.stride,
                layout_.dataBytes);
    return out;
}

bool BatchEngine::outputPresent(std::size_t inst, int sigIndex) const
{
    checkSignal(inst, sigIndex);
    return lastPresent_[inst * sema_.signals.size() +
                        static_cast<std::size_t>(sigIndex)] != 0;
}

Value BatchEngine::outputValue(std::size_t inst, int sigIndex) const
{
    const SignalInfo& info = checkSignal(inst, sigIndex);
    if (info.pure)
        throw EclError("value read on pure signal '" + info.name + "'");
    return Value::fromBytes(
        info.valueType,
        dataArena_.data() + inst * layout_.stride +
            layout_.sigOffsets[static_cast<std::size_t>(info.index)]);
}

bool BatchEngine::terminated(std::size_t inst) const
{
    checkInstance(inst);
    return flat_.states[static_cast<std::size_t>(state_[inst])].dead;
}

bool BatchEngine::needsAutoResume(std::size_t inst) const
{
    checkInstance(inst);
    return flat_.states[static_cast<std::size_t>(state_[inst])].autoResume;
}

bool BatchEngine::pendingDirty(std::size_t inst) const
{
    checkInstance(inst);
    return dirty_[inst] != 0;
}

} // namespace ecl::rt
