#include "src/runtime/batch_engine.h"

#include <algorithm>
#include <cstring>

namespace ecl::rt {

namespace {

/// Minimum reactions per participating worker: below this, waking a
/// helper (futex + cache handoff) costs more than reacting the
/// instances on the caller. Sized so a sparse step with a handful of
/// dirty instances runs caller-only while CI's dense workload (1000
/// instances / 4 threads) still uses every worker.
constexpr std::size_t kMinShardGrain = 128;

} // namespace

// ---------------------------------------------------------------------------
// Shard: per-worker scratch context
// ---------------------------------------------------------------------------

BatchEngine::Shard::Shard(std::shared_ptr<const bc::Program> code,
                          const ModuleSema& sema,
                          const InstanceLayout& layout,
                          std::uint8_t* scratchBase,
                          std::size_t emitRingSlots)
    : vm(std::move(code)), store(sema.vars, scratchBase, layout.varOffsets),
      sigs(sema, layout, scratchBase), emitRing(emitRingSlots, 0)
{
}

// ---------------------------------------------------------------------------
// BatchEngine
// ---------------------------------------------------------------------------

BatchEngine::BatchEngine(const efsm::FlatProgram& flat,
                         std::shared_ptr<const bc::Program> code,
                         const ModuleSema& sema, std::size_t instances,
                         BatchOptions options,
                         std::shared_ptr<const NativeModule> native)
    : flat_(flat), code_(std::move(code)), sema_(sema),
      native_(std::move(native))
{
    if (!code_)
        throw EclError("BatchEngine requires the compiled bytecode program");

    // Fixed per-instance arena layout (shared with the verification
    // explorer's packed states): variables first, then valued-signal
    // slots, each 8-byte aligned; the whole slice padded to 64 bytes.
    layout_ = computeInstanceLayout(sema_);
    scratchSlice_.assign(layout_.stride, 0);

    std::size_t emitRingSlots = 1;
    if (native_) {
        validateNativeShape(native_->info(), sema_, flat_, layout_);
        nativeReact_ = native_->react();
        emitRingSlots = std::max<std::size_t>(native_->info().max_emits, 1);
    }

    const int t = std::max(1, options.threads);
    shards_.reserve(static_cast<std::size_t>(t));
    for (int w = 0; w < t; ++w)
        shards_.push_back(std::make_unique<Shard>(
            code_, sema_, layout_, scratchSlice_.data(), emitRingSlots));
    ranges_.resize(static_cast<std::size_t>(t));
    pool_ = std::make_unique<WorkerPool>(t, [this](int w) { runShard(w); });

    for (std::size_t i = 0; i < instances; ++i) addInstance();
}

std::size_t BatchEngine::addInstance()
{
    const std::size_t id = state_.size();
    const std::size_t S = sema_.signals.size();
    state_.push_back(flat_.initialState);
    instantOpen_.push_back(0);
    dirty_.push_back(0);
    reacted_.push_back(0);
    present_.resize(present_.size() + S, 0);
    lastPresent_.resize(lastPresent_.size() + S, 0);
    dataArena_.resize(dataArena_.size() + layout_.stride, 0);
    last_.emplace_back();
    markDirty(id); // boot reaction pending
    return id;
}

void BatchEngine::parkInstance(std::size_t inst)
{
    checkInstance(inst);
    // A stale dirtyList_ entry is fine — runStep skips entries whose
    // dirty_ flag is clear (the same rule reactInstance relies on).
    dirty_[inst] = 0;
    instantOpen_[inst] = 0;
}

void BatchEngine::resetInstance(std::size_t inst)
{
    checkInstance(inst);
    const std::size_t S = sema_.signals.size();
    state_[inst] = flat_.initialState;
    instantOpen_[inst] = 0;
    dirty_[inst] = 0;
    if (S != 0) {
        std::memset(presentRow(inst), 0, S);
        std::memset(lastPresent_.data() + inst * S, 0, S);
    }
    std::memset(slice(inst), 0, layout_.stride);
    last_[inst] = ReactionResult{};
    markDirty(inst); // boot reaction pending, exactly like addInstance
}

void BatchEngine::restoreInstanceState(std::size_t inst,
                                       const std::uint8_t* data,
                                       std::size_t size)
{
    checkInstance(inst);
    if (size != 4 + layout_.dataBytes)
        throw EclError("restoreInstanceState: packed state is " +
                       std::to_string(size) + " bytes, expected " +
                       std::to_string(4 + layout_.dataBytes));
    std::int32_t st = 0;
    std::memcpy(&st, data, 4);
    if (st < 0 || static_cast<std::size_t>(st) >= flat_.states.size())
        throw EclError("restoreInstanceState: control state " +
                       std::to_string(st) + " out of range (machine has " +
                       std::to_string(flat_.states.size()) + " states)");
    const std::size_t S = sema_.signals.size();
    state_[inst] = st;
    instantOpen_[inst] = 0;
    dirty_[inst] = 0;
    if (S != 0) {
        std::memset(presentRow(inst), 0, S);
        std::memset(lastPresent_.data() + inst * S, 0, S);
    }
    std::memset(slice(inst), 0, layout_.stride);
    std::memcpy(slice(inst), data + 4, layout_.dataBytes);
    last_[inst] = ReactionResult{};
    // The snapshot is post-boot: only a delta pause re-schedules it.
    if (flat_.states[static_cast<std::size_t>(st)].autoResume)
        markDirty(inst);
}

const SignalInfo& BatchEngine::checkSignal(std::size_t inst,
                                           int sigIndex) const
{
    if (inst >= state_.size())
        throw EclError("batch instance " + std::to_string(inst) +
                       " out of range");
    if (sigIndex < 0 ||
        static_cast<std::size_t>(sigIndex) >= sema_.signals.size())
        throw EclError("signal index " + std::to_string(sigIndex) +
                       " out of range");
    return sema_.signals[static_cast<std::size_t>(sigIndex)];
}

const SignalInfo& BatchEngine::checkInput(std::size_t inst,
                                          int sigIndex) const
{
    const SignalInfo& s = checkSignal(inst, sigIndex);
    if (s.dir != SignalDir::Input)
        throw EclError("'" + s.name + "' is not an input signal");
    return s;
}

void BatchEngine::markDirty(std::size_t inst)
{
    if (dirty_[inst]) return;
    dirty_[inst] = 1;
    dirtyList_.push_back(static_cast<std::uint32_t>(inst));
}

void BatchEngine::openInstant(std::size_t inst)
{
    if (instantOpen_[inst]) return;
    instantOpen_[inst] = 1;
    if (const std::size_t S = sema_.signals.size())
        std::memset(presentRow(inst), 0, S);
}

void BatchEngine::storeSignalValue(std::size_t inst, const SignalInfo& info,
                                   const Value& v)
{
    // Normalization identical to SignalEnv::setValue: scalars convert to
    // the signal's value type, aggregates must match it exactly.
    if (info.pure)
        throw EclError("cannot set a value on pure signal '" + info.name +
                       "'");
    std::uint8_t* slot =
        slice(inst) + layout_.sigOffsets[static_cast<std::size_t>(info.index)];
    if (info.valueType->isScalar())
        writeScalar(slot, info.valueType, v.toInt());
    else if (v.type() == info.valueType)
        std::memcpy(slot, v.data(), info.valueType->size());
    else
        throw EclError("signal value type mismatch for '" + info.name + "'");
    presentRow(inst)[static_cast<std::size_t>(info.index)] = 1;
}

void BatchEngine::setInput(std::size_t inst, int sigIndex)
{
    checkInput(inst, sigIndex);
    openInstant(inst);
    presentRow(inst)[static_cast<std::size_t>(sigIndex)] = 1;
    markDirty(inst);
}

void BatchEngine::setInputScalar(std::size_t inst, int sigIndex,
                                 std::int64_t v)
{
    const SignalInfo& info = checkInput(inst, sigIndex);
    if (info.pure)
        throw EclError("'" + info.name + "' is pure; use setInput()");
    openInstant(inst);
    writeScalar(slice(inst) +
                    layout_.sigOffsets[static_cast<std::size_t>(info.index)],
                info.valueType, v);
    presentRow(inst)[static_cast<std::size_t>(sigIndex)] = 1;
    markDirty(inst);
}

void BatchEngine::setInputValue(std::size_t inst, int sigIndex,
                                const Value& v)
{
    const SignalInfo& info = checkInput(inst, sigIndex);
    openInstant(inst);
    storeSignalValue(inst, info, v);
    markDirty(inst);
}

void BatchEngine::reactOne(Shard& shard, std::size_t inst)
{
    const std::size_t S = sema_.signals.size();
    std::uint8_t* base = slice(inst);
    std::uint8_t* present = presentRow(inst);

    if (!instantOpen_[inst] && S != 0) std::memset(present, 0, S);
    instantOpen_[inst] = 0;

    // Reset in place: emittedOutputs keeps its capacity, so steady-state
    // reactions run allocation-free (the header's contract).
    ReactionResult& result = last_[inst];
    result.emittedOutputs.clear();
    result.terminated = false;
    result.treeTests = 0;
    result.actionsRun = 0;
    result.emitsRun = 0;
    result.dataCounters.reset();
    ++shard.reactions;

    if (nativeReact_) {
        // AOT path: the generated ecl_native_react runs directly on this
        // instance's arena slice and presence row. Fuel reseeds per
        // reaction, mirroring the VM path's resetOpWindow() below;
        // dataCounters stay zero exactly like NativeEngine::react().
        EclNativeCtx ctx{};
        ctx.data = base;
        ctx.present = present;
        ctx.emitted = shard.emitRing.data();
        ctx.state = state_[inst];
        ctx.depth = 1; // Module chunks run at the VM's depth 1.
        ctx.fuel = kNativeReactFuel;
        const int rc = nativeReact_(&ctx);
        if (rc != 0)
            throw EclError(ctx.error ? ctx.error
                                     : "native reaction failed without a "
                                       "message");
        state_[inst] = ctx.state;
        result.emittedOutputs.assign(
            shard.emitRing.begin(),
            shard.emitRing.begin() + ctx.emitted_count);
        result.terminated = ctx.terminated != 0;
        result.treeTests = ctx.tree_tests;
        result.actionsRun = ctx.actions_run;
        result.emitsRun = ctx.emits_run;
    } else {
        shard.store.rebindAll(base, layout_.varOffsets);
        shard.sigs.bind(base);
        shard.vm.resetCounters();
        shard.vm.resetOpWindow();

        // The walk mirrors SyncEngine::reactFlat exactly (outputs, state
        // update, termination, counters) so the differential tests can
        // demand bit-equality.
        const efsm::FlatNode* nodes = flat_.nodes.data();
        const efsm::FlatAction* actions = flat_.actions.data();
        auto runActions = [&](const efsm::FlatNode& node) {
            for (std::int32_t i = node.actionsBegin; i < node.actionsEnd;
                 ++i) {
                const efsm::FlatAction& a = actions[i];
                ++result.actionsRun;
                if (a.kind == efsm::FlatAction::Kind::Emit) {
                    ++result.emitsRun;
                    if (a.chunk >= 0) {
                        Value v = shard.vm.runExpr(a.chunk, shard.store,
                                                   shard.sigs);
                        storeSignalValue(
                            inst,
                            sema_.signals[static_cast<std::size_t>(a.signal)],
                            v);
                    } else {
                        present[a.signal] = 1;
                    }
                    if (a.isOutput) result.emittedOutputs.push_back(a.signal);
                } else if (a.chunk >= 0) {
                    shard.vm.runAction(a.chunk, shard.store, shard.sigs);
                }
            }
        };

        const efsm::FlatNode* node =
            &nodes[flat_.states[static_cast<std::size_t>(state_[inst])].root];
        while (!node->isLeaf()) {
            runActions(*node);
            ++result.treeTests;
            bool taken = node->testSignal >= 0
                             ? present[node->testSignal] != 0
                             : shard.vm.runPredicate(node->predChunk,
                                                     shard.store, shard.sigs);
            node = &nodes[taken ? node->onTrue : node->onFalse];
        }
        if (node->runtimeError())
            throw EclError("instantaneous loop detected at runtime (a "
                           "statically-unverifiable loop path was reached)");
        runActions(*node);
        state_[inst] = node->nextState;
        result.terminated =
            node->terminates() ||
            flat_.states[static_cast<std::size_t>(node->nextState)].dead;
        result.dataCounters = shard.vm.counters();
    }

    if (S != 0)
        std::memcpy(lastPresent_.data() + inst * S, present, S);
    reacted_[inst] = 1;
    for (int sig : result.emittedOutputs)
        shard.events.push_back({static_cast<std::uint32_t>(inst), sig});
}

void BatchEngine::runShard(int w)
{
    Shard& s = *shards_[static_cast<std::size_t>(w)];
    const auto [begin, end] = ranges_[static_cast<std::size_t>(w)];
    try {
        // Sub-step 0: the shard's contiguous slice of work_. When the
        // epoch drains more than one step, collect the auto-resume
        // survivors (ascending, since the slice is) for re-reaction
        // without another pool wakeup.
        s.active.clear();
        for (std::size_t i = begin; i < end; ++i) {
            const std::uint32_t inst = work_[i];
            reactOne(s, inst);
            if (drainSteps_ > 1 &&
                flat_.states[static_cast<std::size_t>(state_[inst])]
                    .autoResume)
                s.active.push_back(inst);
        }
        s.substepEnds.push_back(static_cast<std::uint32_t>(s.events.size()));
        for (int sub = 1; sub < drainSteps_; ++sub) {
            // Pad the boundary even when this shard has nothing left so
            // the merged stream stays sub-step aligned across shards.
            s.nextActive.clear();
            for (const std::uint32_t inst : s.active) {
                reactOne(s, inst);
                if (flat_.states[static_cast<std::size_t>(state_[inst])]
                        .autoResume)
                    s.nextActive.push_back(inst);
            }
            s.active.swap(s.nextActive);
            s.substepEnds.push_back(
                static_cast<std::uint32_t>(s.events.size()));
        }
    } catch (...) {
        s.error = std::current_exception();
    }
}

std::size_t BatchEngine::runStep(bool all, int drainSteps)
{
    // Clear the reacted flags of exactly the instances the previous step
    // (and any reactInstance calls since) touched. The sparse path must
    // never pay an O(instances) fill for a handful of dirty instances —
    // that fill alone dominated the old per-dispatched-reaction cost.
    for (const std::uint32_t inst : work_) reacted_[inst] = 0;
    for (const std::uint32_t inst : extraReacted_) reacted_[inst] = 0;
    extraReacted_.clear();

    work_.clear();
    if (all) {
        work_.reserve(state_.size());
        for (std::size_t i = 0; i < state_.size(); ++i)
            work_.push_back(static_cast<std::uint32_t>(i));
        std::fill(dirty_.begin(), dirty_.end(), 0);
        dirtyList_.clear();
    } else {
        for (std::uint32_t inst : dirtyList_) {
            if (!dirty_[inst]) continue; // stale (consumed by reactInstance)
            dirty_[inst] = 0;
            work_.push_back(inst);
        }
        dirtyList_.clear();
        std::sort(work_.begin(), work_.end());
    }
    stepEvents_.clear();
    eventsMerged_ = true;
    participants_ = 0;
    drainSteps_ = drainSteps;
    if (work_.empty()) return 0;

    // Small epochs run on fewer workers (down to the caller alone):
    // below kMinShardGrain reactions per worker the wakeup costs more
    // than the work, and the contiguous partition keeps the merged
    // event order identical however many participate.
    std::size_t parts = work_.size() / kMinShardGrain;
    if (parts < 1) parts = 1;
    if (parts > shards_.size()) parts = shards_.size();
    for (std::size_t w = 0; w < parts; ++w) {
        Shard& s = *shards_[w];
        s.events.clear();
        s.substepEnds.clear();
        s.reactions = 0;
        s.error = nullptr;
    }
    const std::size_t chunk = (work_.size() + parts - 1) / parts;
    for (std::size_t w = 0; w < parts; ++w) {
        const std::size_t b = std::min(work_.size(), w * chunk);
        ranges_[w] = {b, std::min(work_.size(), b + chunk)};
    }
    participants_ = parts;
    eventsMerged_ = false;

    pool_->run(static_cast<int>(parts));

    std::size_t reactions = 0;
    for (std::size_t w = 0; w < parts; ++w) {
        if (shards_[w]->error) std::rethrow_exception(shards_[w]->error);
        reactions += shards_[w]->reactions;
    }

    // Delta pauses keep instances scheduled without new events (the same
    // rule rtos::Network applies to its tasks). For a drain epoch the
    // final state decides: survivors the sub-step budget cut off resume
    // next step, chains that settled do not.
    for (std::uint32_t inst : work_)
        if (flat_.states[static_cast<std::size_t>(state_[inst])].autoResume)
            markDirty(inst);
    return reactions;
}

void BatchEngine::mergeStepEvents() const
{
    if (eventsMerged_) return;
    eventsMerged_ = true;
    stepEvents_.clear();
    std::size_t total = 0;
    for (std::size_t w = 0; w < participants_; ++w)
        total += shards_[w]->events.size();
    stepEvents_.reserve(total);
    // Sub-step major, shard minor: each shard's [prev, end) slice holds
    // that sub-step's events in ascending instance order, and the shard
    // ranges partition work_ contiguously — so the concatenation equals
    // the event stream of the equivalent sequential step() loop. The
    // bounds fall back to events.size() so a shard that faulted mid-epoch
    // (short substepEnds) still merges what it produced.
    for (int sub = 0; sub < drainSteps_; ++sub) {
        for (std::size_t w = 0; w < participants_; ++w) {
            const Shard& s = *shards_[w];
            const std::size_t e =
                static_cast<std::size_t>(sub) < s.substepEnds.size()
                    ? s.substepEnds[static_cast<std::size_t>(sub)]
                    : s.events.size();
            std::size_t b = 0;
            if (sub > 0)
                b = static_cast<std::size_t>(sub - 1) < s.substepEnds.size()
                        ? s.substepEnds[static_cast<std::size_t>(sub - 1)]
                        : s.events.size();
            if (b > e) b = e;
            stepEvents_.insert(stepEvents_.end(), s.events.begin() + b,
                               s.events.begin() + e);
        }
    }
}

std::size_t BatchEngine::step() { return runStep(/*all=*/false, 1); }

std::size_t BatchEngine::stepAll() { return runStep(/*all=*/true, 1); }

std::size_t BatchEngine::stepDrain(int maxSteps)
{
    if (maxSteps < 1) return 0;
    return runStep(/*all=*/false, maxSteps);
}

const ReactionResult& BatchEngine::reactInstance(std::size_t inst)
{
    checkInstance(inst);
    // Consume any queued mark, list entry included — a long-lived
    // reactInstance-only driver (the batch-backed rtos::Network) must not
    // accumulate stale entries across auto-resume reactions.
    if (dirty_[inst]) {
        dirty_[inst] = 0;
        auto it = std::find(dirtyList_.begin(), dirtyList_.end(),
                            static_cast<std::uint32_t>(inst));
        if (it != dirtyList_.end()) {
            *it = dirtyList_.back();
            dirtyList_.pop_back();
        }
    }
    // The last step's events merge lazily from the shard buffers; force
    // the merge before this reaction clobbers shard 0's buffer.
    mergeStepEvents();
    // Step-scoped event accumulation is meaningless here; clear so the
    // shard buffer stays bounded by one reaction's emissions.
    shards_[0]->events.clear();
    // Queue the reacted flag for the next step's incremental clear (at
    // most once per instance — the flag gates the push).
    if (!reacted_[inst])
        extraReacted_.push_back(static_cast<std::uint32_t>(inst));
    reactOne(*shards_[0], inst);
    if (flat_.states[static_cast<std::size_t>(state_[inst])].autoResume)
        markDirty(inst);
    return last_[inst];
}

void BatchEngine::checkInstance(std::size_t inst) const
{
    if (inst >= state_.size())
        throw EclError("batch instance " + std::to_string(inst) +
                       " out of range");
}

bool BatchEngine::reactedLastStep(std::size_t inst) const
{
    checkInstance(inst);
    return reacted_[inst] != 0;
}

const ReactionResult& BatchEngine::lastResult(std::size_t inst) const
{
    checkInstance(inst);
    return last_[inst];
}

std::vector<std::uint8_t>
BatchEngine::packInstanceState(std::size_t inst) const
{
    checkInstance(inst);
    std::vector<std::uint8_t> out(4 + layout_.dataBytes, 0);
    const std::int32_t st = state_[inst];
    std::memcpy(out.data(), &st, 4);
    std::memcpy(out.data() + 4, dataArena_.data() + inst * layout_.stride,
                layout_.dataBytes);
    return out;
}

bool BatchEngine::outputPresent(std::size_t inst, int sigIndex) const
{
    checkSignal(inst, sigIndex);
    return lastPresent_[inst * sema_.signals.size() +
                        static_cast<std::size_t>(sigIndex)] != 0;
}

Value BatchEngine::outputValue(std::size_t inst, int sigIndex) const
{
    const SignalInfo& info = checkSignal(inst, sigIndex);
    if (info.pure)
        throw EclError("value read on pure signal '" + info.name + "'");
    return Value::fromBytes(
        info.valueType,
        dataArena_.data() + inst * layout_.stride +
            layout_.sigOffsets[static_cast<std::size_t>(info.index)]);
}

bool BatchEngine::terminated(std::size_t inst) const
{
    checkInstance(inst);
    return flat_.states[static_cast<std::size_t>(state_[inst])].dead;
}

bool BatchEngine::needsAutoResume(std::size_t inst) const
{
    checkInstance(inst);
    return flat_.states[static_cast<std::size_t>(state_[inst])].autoResume;
}

bool BatchEngine::pendingDirty(std::size_t inst) const
{
    checkInstance(inst);
    return dirty_[inst] != 0;
}

bool BatchEngine::hasStagedInputs(std::size_t inst) const
{
    checkInstance(inst);
    return instantOpen_[inst] != 0;
}

bool BatchEngine::hasPendingWork() const
{
    // dirtyList_ may hold stale entries (consumed by reactInstance or a
    // park); the dirty_ flags rule.
    for (const std::uint32_t inst : dirtyList_)
        if (dirty_[inst]) return true;
    return false;
}

} // namespace ecl::rt
