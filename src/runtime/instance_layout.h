// Shared fixed arena layout for one instance of a compiled module.
//
// The batch runtime (src/runtime/batch_engine.h) and the verification
// explorer (src/verify/explorer.h) both keep per-instance data —
// module variables plus valued-signal slots — as raw bytes in
// caller-managed arenas, executed through view Stores and view
// SignalReaders rebased per instance. This header owns the one layout
// both agree on, so a state snapshot taken by one (the explorer's
// packed states) is byte-compatible with the other (a batch instance's
// arena slice):
//  * variables first, in VarInfo order, each 8-byte aligned;
//  * then valued-signal slots, ascending signal index, 8-byte aligned;
//  * dataBytes is the used extent, stride pads it to a 64-byte boundary
//    (anti-false-sharing when instances sit side by side in one arena).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/interp/eval.h"
#include "src/sema/sema.h"

namespace ecl::rt {

struct InstanceLayout {
    std::vector<std::uint32_t> varOffsets; ///< Per VarInfo index.
    std::vector<std::uint32_t> sigOffsets; ///< Per signal (0 for pure).
    std::size_t dataBytes = 0; ///< Used bytes (variables + valued slots).
    std::size_t stride = 0;    ///< dataBytes padded to 64 (>= 64).
};

inline InstanceLayout computeInstanceLayout(const ModuleSema& sema)
{
    constexpr std::size_t kInstanceAlign = 64;
    constexpr std::size_t kSlotAlign = 8;
    auto alignUp = [](std::size_t n, std::size_t a) {
        return (n + a - 1) / a * a;
    };

    InstanceLayout layout;
    std::size_t cursor = 0;
    layout.varOffsets.reserve(sema.vars.size());
    for (const VarInfo& v : sema.vars) {
        cursor = alignUp(cursor, kSlotAlign);
        layout.varOffsets.push_back(static_cast<std::uint32_t>(cursor));
        cursor += v.type->size();
    }
    layout.sigOffsets.assign(sema.signals.size(), 0);
    for (const SignalInfo& s : sema.signals) {
        if (s.pure) continue;
        cursor = alignUp(cursor, kSlotAlign);
        layout.sigOffsets[static_cast<std::size_t>(s.index)] =
            static_cast<std::uint32_t>(cursor);
        cursor += s.valueType->size();
    }
    layout.dataBytes = cursor;
    layout.stride = alignUp(std::max<std::size_t>(cursor, 1), kInstanceAlign);
    return layout;
}

/// One instance's per-instant signal values, exposed to the VM as view
/// Values over the instance's arena slice; rebase with bind() per
/// instance.
class ArenaSigView final : public SignalReader {
public:
    ArenaSigView(const ModuleSema& sema, const InstanceLayout& layout,
                 std::uint8_t* base)
        : sema_(&sema), layout_(&layout)
    {
        views_.reserve(sema.signals.size());
        for (const SignalInfo& s : sema.signals) {
            if (s.pure) {
                views_.emplace_back(); // empty, like SignalEnv's pure slots
            } else {
                valued_.push_back(s.index);
                views_.push_back(Value::view(
                    s.valueType,
                    base +
                        layout.sigOffsets[static_cast<std::size_t>(s.index)]));
            }
        }
    }

    void bind(std::uint8_t* base)
    {
        for (int idx : valued_)
            views_[static_cast<std::size_t>(idx)].rebind(
                base + layout_->sigOffsets[static_cast<std::size_t>(idx)]);
    }

    const Value& signalValue(int idx) const override
    {
        const Value& v = views_[static_cast<std::size_t>(idx)];
        if (v.empty())
            throw EclError("value read on pure signal '" +
                           sema_->signals[static_cast<std::size_t>(idx)].name +
                           "'");
        return v;
    }

private:
    const ModuleSema* sema_;
    const InstanceLayout* layout_;
    std::vector<int> valued_;  ///< Indices of valued signals.
    std::vector<Value> views_; ///< Empty Value for pure signals.
};

} // namespace ecl::rt
