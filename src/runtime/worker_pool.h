// Persistent epoch-handshake worker pool, shared by the batch runtime
// (src/runtime/batch_engine.cpp) and the verification explorer
// (src/verify/explorer.cpp).
//
// `threads - 1` helper threads park on a condition variable; run() bumps
// an epoch, wakes them, executes worker 0's share on the caller and
// returns once every helper has finished — one synchronization round
// trip per epoch, no work queue. Callers pre-stage each worker's input
// (e.g. a contiguous range) in their own state before run() and harvest
// results after; the callback must not throw (capture failures into an
// exception_ptr and rethrow after run(), as both users do).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecl::rt {

class WorkerPool {
public:
    /// Spawns `threads - 1` helpers. work(w) runs with w in
    /// [1, threads) on helpers and w == 0 on the caller inside run().
    WorkerPool(int threads, std::function<void(int)> work)
        : work_(std::move(work))
    {
        for (int w = 1; w < threads; ++w)
            helpers_.emplace_back([this, w] { loop(w); });
    }

    ~WorkerPool()
    {
        {
            std::lock_guard<std::mutex> lk(mx_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread& t : helpers_) t.join();
    }

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    [[nodiscard]] int threads() const
    {
        return static_cast<int>(helpers_.size()) + 1;
    }

    /// Runs one epoch: work(0) on the caller, work(w) on every helper;
    /// returns when all are done.
    void run()
    {
        if (helpers_.empty()) {
            work_(0);
            return;
        }
        {
            std::lock_guard<std::mutex> lk(mx_);
            ++epoch_;
            running_ = static_cast<int>(helpers_.size());
        }
        cv_.notify_all();
        work_(0);
        std::unique_lock<std::mutex> lk(mx_);
        doneCv_.wait(lk, [&] { return running_ == 0; });
    }

private:
    void loop(int w)
    {
        std::uint64_t seen = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lk(mx_);
                cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
                if (stop_) return;
                seen = epoch_;
            }
            work_(w);
            {
                std::lock_guard<std::mutex> lk(mx_);
                --running_;
            }
            doneCv_.notify_one();
        }
    }

    std::function<void(int)> work_;
    std::vector<std::thread> helpers_;
    std::mutex mx_;
    std::condition_variable cv_;
    std::condition_variable doneCv_;
    std::uint64_t epoch_ = 0;
    int running_ = 0;
    bool stop_ = false;
};

} // namespace ecl::rt
