// Persistent spin-then-park worker pool, shared by the batch runtime
// (src/runtime/batch_engine.cpp) and the verification explorer
// (src/verify/explorer.cpp).
//
// `threads - 1` helper threads each watch their own cache-line-padded
// atomic epoch slot; run() bumps the slots of the helpers it wants this
// epoch, executes worker 0's share on the caller, and returns once the
// shared pending counter drains to zero. Both sides spin briefly before
// parking on a C++20 atomic wait (a futex on Linux), so back-to-back
// epochs — the batch runtime's step loop — never pay a mutex/condvar
// round trip, while idle pools still sleep. When the pool has more
// threads than the machine has cores the spin is skipped entirely:
// spinning would only steal the timeslice the working thread needs.
//
// run(participants) wakes only the first `participants - 1` helpers —
// small epochs (a sparse batch step with a handful of dirty instances)
// must not pay threads-1 wakeups for work one core finishes faster.
// Callers pre-stage each worker's input (e.g. a contiguous range) in
// their own state before run() and harvest results after; the callback
// must not throw (capture failures into an exception_ptr and rethrow
// after run(), as both users do). Amortizing several engine steps into
// one epoch is likewise the caller's job — see BatchEngine::stepDrain().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace ecl::rt {

class WorkerPool {
public:
    /// Spawns `threads - 1` helpers. work(w) runs with w in
    /// [1, participants) on helpers and w == 0 on the caller inside
    /// run().
    WorkerPool(int threads, std::function<void(int)> work)
        : work_(std::move(work))
    {
        const int helperCount = threads > 1 ? threads - 1 : 0;
        slots_ = std::make_unique<Slot[]>(
            static_cast<std::size_t>(helperCount > 0 ? helperCount : 1));
        const unsigned hw = std::thread::hardware_concurrency();
        spinIters_ = (hw == 0 || static_cast<unsigned>(threads) <= hw)
                         ? kSpinIters
                         : 1;
        helpers_.reserve(static_cast<std::size_t>(helperCount));
        for (int w = 1; w < threads; ++w)
            helpers_.emplace_back([this, w] { loop(w); });
    }

    ~WorkerPool()
    {
        stop_.store(true, std::memory_order_release);
        for (std::size_t i = 0; i < helpers_.size(); ++i) {
            slots_[i].go.fetch_add(1, std::memory_order_release);
            slots_[i].go.notify_one();
        }
        for (std::thread& t : helpers_) t.join();
    }

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    [[nodiscard]] int threads() const
    {
        return static_cast<int>(helpers_.size()) + 1;
    }

    /// Runs one epoch: work(0) on the caller and work(w) for w in
    /// [1, participants) on helpers; returns when all are done.
    /// participants <= 0 (the default) means every thread; sleeping
    /// helpers beyond `participants` are not woken.
    void run(int participants = 0)
    {
        const int total = threads();
        if (participants <= 0 || participants > total) participants = total;
        const int wake = participants - 1;
        if (wake == 0) {
            work_(0);
            return;
        }
        pending_.store(wake, std::memory_order_relaxed);
        for (int i = 0; i < wake; ++i) {
            slots_[i].go.fetch_add(1, std::memory_order_release);
            slots_[i].go.notify_one();
        }
        work_(0);
        for (int spins = 0;;) {
            const int p = pending_.load(std::memory_order_acquire);
            if (p == 0) break;
            if (++spins < spinIters_) {
                cpuRelax();
                continue;
            }
            pending_.wait(p, std::memory_order_acquire);
        }
    }

private:
    /// One epoch slot per helper, alone on its cache line so spinning
    /// helpers never bounce each other's lines.
    struct alignas(64) Slot {
        std::atomic<std::uint64_t> go{0};
    };

    static constexpr int kSpinIters = 1 << 12;

    static void cpuRelax()
    {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#elif defined(__aarch64__)
        asm volatile("yield");
#endif
    }

    void loop(int w)
    {
        Slot& slot = slots_[static_cast<std::size_t>(w - 1)];
        std::uint64_t seen = 0;
        for (;;) {
            std::uint64_t e;
            int spins = 0;
            while ((e = slot.go.load(std::memory_order_acquire)) == seen) {
                if (stop_.load(std::memory_order_acquire)) return;
                if (++spins < spinIters_) {
                    cpuRelax();
                    continue;
                }
                slot.go.wait(seen, std::memory_order_acquire);
            }
            if (stop_.load(std::memory_order_acquire)) return;
            seen = e;
            work_(w);
            if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
                pending_.notify_one();
        }
    }

    std::function<void(int)> work_;
    std::vector<std::thread> helpers_;
    std::unique_ptr<Slot[]> slots_;
    alignas(64) std::atomic<int> pending_{0};
    std::atomic<bool> stop_{false};
    int spinIters_ = kSpinIters;
};

} // namespace ecl::rt
