// Batch multi-instance runtime: N instances of one compiled module over
// shared flat tables.
//
// A SyncEngine owns one instance's whole execution stack (signal env,
// store, VM). Serving thousands of concurrent sessions of the *same*
// compiled module that way costs one heap-allocated engine + VM per
// session. BatchEngine instead keeps ONE shared efsm::FlatProgram +
// bc::Program and stores all per-instance state structure-of-arrays in
// contiguous arenas:
//  * control state ids, instant-open flags, dirty flags: one byte/int row
//    per instance in plain vectors,
//  * signal presence and last-reaction presence: N x S byte matrices,
//  * variables and valued-signal bytes: one fixed-layout slice per
//    instance in a single arena (offsets computed once from ModuleSema),
//    64-byte instance stride to keep worker threads off shared lines.
// Execution state that is scratch rather than per-instance — VM register
// files and function-call frames — lives in per-WORKER contexts shared by
// every instance the worker serves, so a reaction still runs without heap
// allocation no matter how many instances exist.
//
// Scheduling is dirty-list driven: step() reacts only instances that have
// pending inputs or auto-resume (an await() delta pause), the same
// event-driven contract as rtos::Network tasks. stepAll() reacts every
// instance — exact lockstep with N independent SyncEngines, including
// empty-instant reactions. Both are bit-exact with SyncEngine per reacted
// instance: outputs, termination, auto-resume and ExecCounters
// (tests/test_properties.cpp proves it differentially).
//
// With BatchOptions::threads > 1 the reacting instances are partitioned
// into contiguous shards over a persistent worker pool. Instances are
// independent (no instant-level communication), every worker writes only
// its instances' rows, and the merged per-step output events are
// concatenated in shard order — so results and event order are identical
// for any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/efsm/flatten.h"
#include "src/interp/eval.h"
#include "src/interp/vm.h"
#include "src/runtime/engine.h"
#include "src/runtime/instance_layout.h"
#include "src/runtime/worker_pool.h"
#include "src/sema/sema.h"

namespace ecl::rt {

struct BatchOptions {
    /// Worker threads for step()/stepAll(). 1 = run on the caller.
    int threads = 1;
};

class BatchEngine {
public:
    /// `flat`, `sema` and the structures behind `code` must outlive the
    /// engine (retain() the CompiledModule). Starts with `instances`
    /// slots, all marked dirty so the first step() boots them.
    BatchEngine(const efsm::FlatProgram& flat,
                std::shared_ptr<const bc::Program> code,
                const ModuleSema& sema, std::size_t instances,
                BatchOptions options = {});

    BatchEngine(const BatchEngine&) = delete;
    BatchEngine& operator=(const BatchEngine&) = delete;

    /// Keeps the owning CompiledModule alive (same contract as
    /// ReactiveEngine::retain).
    void retain(std::shared_ptr<const void> owner) { owner_ = std::move(owner); }

    [[nodiscard]] std::size_t instanceCount() const { return state_.size(); }
    /// Appends one fresh (dirty, unbooted) instance; returns its id. Only
    /// between steps.
    std::size_t addInstance();

    // --- input phase (between steps; single-threaded) ---
    void setInput(std::size_t inst, int sigIndex);
    void setInputScalar(std::size_t inst, int sigIndex, std::int64_t v);
    void setInputValue(std::size_t inst, int sigIndex, const Value& v);

    // --- stepping ---
    /// Reacts every instance with pending inputs or auto-resume; returns
    /// the number of reactions run.
    std::size_t step();
    /// Reacts every instance (lockstep with N independent SyncEngines).
    std::size_t stepAll();
    /// Immediate single-instance reaction on the calling thread (the
    /// rtos::Network batch backing); clears the instance's dirty mark.
    const ReactionResult& reactInstance(std::size_t inst);

    // --- per-instance queries (post-step) ---
    [[nodiscard]] bool reactedLastStep(std::size_t inst) const;
    /// Full last reaction record, ExecCounters included; instance must
    /// have reacted at least once.
    [[nodiscard]] const ReactionResult& lastResult(std::size_t inst) const;
    [[nodiscard]] bool outputPresent(std::size_t inst, int sigIndex) const;
    /// Materialized (owning) copy of a valued signal's current value.
    [[nodiscard]] Value outputValue(std::size_t inst, int sigIndex) const;
    [[nodiscard]] bool terminated(std::size_t inst) const;
    [[nodiscard]] bool needsAutoResume(std::size_t inst) const;
    /// True when the instance is queued for the next step() (pending
    /// inputs, auto-resume, or not yet booted).
    [[nodiscard]] bool pendingDirty(std::size_t inst) const;

    /// One output emission of the last step()/stepAll().
    struct StepEvent {
        std::uint32_t instance;
        std::int32_t signal;
    };
    /// Merged outputs of the last step, ascending instance id, per-instance
    /// emission order preserved; identical for any thread count.
    [[nodiscard]] const std::vector<StepEvent>& lastStepEvents() const
    {
        return stepEvents_;
    }

    /// Packs instance `inst` into the shared verification state record
    /// [i32 control state][instance-layout data bytes] — byte-compatible
    /// with packEngineState (src/runtime/trace.h) and the explorer's
    /// interned states: equal byte strings mean same state.
    [[nodiscard]] std::vector<std::uint8_t>
    packInstanceState(std::size_t inst) const;

    [[nodiscard]] const ModuleSema& moduleSema() const { return sema_; }
    [[nodiscard]] int threads() const
    {
        return static_cast<int>(shards_.size());
    }
    /// Arena stride: variables + valued-signal bytes per instance, padded
    /// to a 64-byte boundary (memory model / capacity planning).
    [[nodiscard]] std::size_t bytesPerInstance() const
    {
        return layout_.stride;
    }

private:
    /// Per-worker execution context: scratch shared by all instances the
    /// worker reacts (never by two workers at once).
    struct Shard {
        bc::Vm vm;
        Store store;        ///< View store, rebased per instance.
        ArenaSigView sigs;  ///< View signal reader, rebased per instance.
        std::vector<StepEvent> events; ///< This step, processing order.
        std::exception_ptr error;

        Shard(std::shared_ptr<const bc::Program> code,
              const ModuleSema& sema, const InstanceLayout& layout,
              std::uint8_t* scratchBase);
    };

    void checkInstance(std::size_t inst) const;
    const SignalInfo& checkSignal(std::size_t inst, int sigIndex) const;
    const SignalInfo& checkInput(std::size_t inst, int sigIndex) const;
    std::uint8_t* slice(std::size_t inst)
    {
        return dataArena_.data() + inst * layout_.stride;
    }
    std::uint8_t* presentRow(std::size_t inst)
    {
        return present_.data() + inst * sema_.signals.size();
    }
    void markDirty(std::size_t inst);
    void openInstant(std::size_t inst);
    void storeSignalValue(std::size_t inst, const SignalInfo& info,
                          const Value& v);
    void reactOne(Shard& shard, std::size_t inst);
    std::size_t runStep(bool all);
    void runShard(int w);

    const efsm::FlatProgram& flat_;
    std::shared_ptr<const bc::Program> code_;
    const ModuleSema& sema_;
    std::shared_ptr<const void> owner_;

    /// Shared fixed layout of one instance's arena slice (the same layout
    /// the verification explorer packs states with — see
    /// src/runtime/instance_layout.h).
    InstanceLayout layout_;
    /// One zeroed slice views point at before their first bind (keeps all
    /// pointer arithmetic inside a live object, even with 0 instances).
    std::vector<std::uint8_t> scratchSlice_;

    // Structure-of-arrays per-instance state.
    std::vector<std::int32_t> state_;        ///< Current EFSM state id.
    std::vector<std::uint8_t> instantOpen_;  ///< Inputs staged this instant.
    std::vector<std::uint8_t> dirty_;        ///< Queued for next step.
    std::vector<std::uint8_t> reacted_;      ///< Reacted in the last step.
    std::vector<std::uint8_t> present_;      ///< N x S, current instant.
    std::vector<std::uint8_t> lastPresent_;  ///< N x S, post-reaction.
    std::vector<std::uint8_t> dataArena_;    ///< N x stride_ value bytes.
    std::vector<ReactionResult> last_;       ///< Last reaction per instance.

    std::vector<std::uint32_t> dirtyList_; ///< Marked instances (may hold
                                           ///< stale entries; dirty_ rules).
    std::vector<std::uint32_t> work_;      ///< This step, sorted ascending.
    std::vector<StepEvent> stepEvents_;

    // Worker pool (threads > 1): one epoch per step, contiguous ranges
    // over work_ per shard. All per-instance rows a worker touches are
    // disjoint byte ranges, so the only synchronization is the pool's
    // step handshake.
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::pair<std::size_t, std::size_t>> ranges_;
    std::unique_ptr<WorkerPool> pool_;
};

} // namespace ecl::rt
