// Batch multi-instance runtime: N instances of one compiled module over
// shared flat tables.
//
// A SyncEngine owns one instance's whole execution stack (signal env,
// store, VM). Serving thousands of concurrent sessions of the *same*
// compiled module that way costs one heap-allocated engine + VM per
// session. BatchEngine instead keeps ONE shared efsm::FlatProgram +
// bc::Program and stores all per-instance state structure-of-arrays in
// contiguous arenas:
//  * control state ids, instant-open flags, dirty flags: one byte/int row
//    per instance in plain vectors,
//  * signal presence and last-reaction presence: N x S byte matrices,
//  * variables and valued-signal bytes: one fixed-layout slice per
//    instance in a single arena (offsets computed once from ModuleSema),
//    64-byte instance stride to keep worker threads off shared lines.
// Execution state that is scratch rather than per-instance — VM register
// files and function-call frames — lives in per-WORKER contexts shared by
// every instance the worker serves, so a reaction still runs without heap
// allocation no matter how many instances exist.
//
// Two execution backends run over the same arenas. The default reacts
// each instance through the reentrant bytecode VM. When constructed with
// a loaded rt::NativeModule (CompiledModule::makeBatchEngine with
// EngineKind::Native), every reaction instead calls the AOT-compiled
// `ecl_native_react` — the generated C operates on the exact
// computeInstanceLayout arena bytes, so the instance slice is passed
// straight through an EclNativeCtx with no marshalling. Both backends
// are bit-exact per reacted instance with the corresponding single
// engine (SyncEngine / NativeEngine): outputs, packed state, termination,
// auto-resume and counters (the native backend reports the ctx counters
// and zero VM dataCounters, exactly like NativeEngine::react). The
// native fuel window resets per reaction, mirroring the VM backend's
// per-reaction resetOpWindow().
//
// Scheduling is dirty-list driven: step() reacts only instances that have
// pending inputs or auto-resume (an await() delta pause), the same
// event-driven contract as rtos::Network tasks. stepAll() reacts every
// instance — exact lockstep with N independent SyncEngines, including
// empty-instant reactions. stepDrain(k) runs up to k consecutive
// input-free steps inside ONE worker-pool epoch (auto-resume chains
// drain without per-step wakeups); it is output- and state-equivalent to
// k step() calls with no input staging in between, except that
// reactedLastStep() reports "reacted in ANY drained sub-step".
//
// With BatchOptions::threads > 1 the reacting instances are partitioned
// into contiguous shards over a persistent worker pool. Instances are
// independent (no instant-level communication), every worker writes only
// its instances' rows, and the merged per-step output events are
// concatenated in shard order — so results and event order are identical
// for any thread count. Steps whose work list is small run on fewer
// workers (down to the caller alone): waking a helper costs more than a
// handful of reactions, and the contiguous partition keeps the merged
// order identical regardless of how many workers participate. The merge
// itself is lazy — step() returns without touching the event buffers,
// and lastStepEvents() concatenates on first use.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/efsm/flatten.h"
#include "src/interp/eval.h"
#include "src/interp/vm.h"
#include "src/runtime/engine.h"
#include "src/runtime/instance_layout.h"
#include "src/runtime/native_module.h"
#include "src/runtime/worker_pool.h"
#include "src/sema/sema.h"

namespace ecl::rt {

struct BatchOptions {
    /// Worker threads for step()/stepAll(). 1 = run on the caller.
    int threads = 1;
};

class BatchEngine {
public:
    /// `flat`, `sema` and the structures behind `code` must outlive the
    /// engine (retain() the CompiledModule). Starts with `instances`
    /// slots, all marked dirty so the first step() boots them. When
    /// `native` is non-null its reaction function replaces the VM for
    /// every reaction (the caller — normally makeBatchEngine — is
    /// responsible for the fall-back-to-VM policy); the module shape is
    /// validated against `flat` and the instance layout.
    BatchEngine(const efsm::FlatProgram& flat,
                std::shared_ptr<const bc::Program> code,
                const ModuleSema& sema, std::size_t instances,
                BatchOptions options = {},
                std::shared_ptr<const NativeModule> native = nullptr);

    BatchEngine(const BatchEngine&) = delete;
    BatchEngine& operator=(const BatchEngine&) = delete;

    /// Keeps the owning CompiledModule alive (same contract as
    /// ReactiveEngine::retain).
    void retain(std::shared_ptr<const void> owner) { owner_ = std::move(owner); }

    [[nodiscard]] std::size_t instanceCount() const { return state_.size(); }
    /// Appends one fresh (dirty, unbooted) instance; returns its id. Only
    /// between steps.
    std::size_t addInstance();

    // --- slot lifecycle (between steps; single-threaded) ---
    // Instances can never be removed (ids are stable arena offsets), but a
    // serving layer reuses slots: park a slot when its session leaves,
    // then reset (fresh session) or restore (migrated-in session) it.
    /// Makes the slot inert: clears its dirty mark and any staged inputs
    /// so no future step reacts it until reset/restored. State bytes are
    /// left in place (checkpoint first if they matter).
    void parkInstance(std::size_t inst);
    /// Returns the slot to the exact post-addInstance state: initial
    /// control state, zeroed arena slice and presence rows, boot reaction
    /// pending.
    void resetInstance(std::size_t inst);
    /// Loads a packed state record [i32 control state][instance-layout
    /// data bytes] (the packInstanceState / packEngineState format) into
    /// the slot: control + data restored, presence/staged inputs cleared,
    /// no boot (the record is a post-boot snapshot). The slot is re-marked
    /// dirty only when the restored control state auto-resumes. Throws
    /// EclError on a size mismatch or an out-of-range control state.
    void restoreInstanceState(std::size_t inst, const std::uint8_t* data,
                              std::size_t size);

    // --- input phase (between steps; single-threaded) ---
    void setInput(std::size_t inst, int sigIndex);
    void setInputScalar(std::size_t inst, int sigIndex, std::int64_t v);
    void setInputValue(std::size_t inst, int sigIndex, const Value& v);

    // --- stepping ---
    /// Reacts every instance with pending inputs or auto-resume; returns
    /// the number of reactions run.
    std::size_t step();
    /// Reacts every instance (lockstep with N independent SyncEngines).
    std::size_t stepAll();
    /// Up to `maxSteps` consecutive input-free step()s amortized into one
    /// worker-pool epoch: sub-step 0 reacts the dirty set, later
    /// sub-steps only the auto-resume survivors, stopping early when no
    /// instance resumes. Returns total reactions across all sub-steps;
    /// lastStepEvents() is the concatenation of the per-sub-step merges
    /// (identical to the step()-loop event stream for any thread count).
    std::size_t stepDrain(int maxSteps);
    /// Immediate single-instance reaction on the calling thread (the
    /// rtos::Network batch backing); clears the instance's dirty mark.
    const ReactionResult& reactInstance(std::size_t inst);

    // --- per-instance queries (post-step) ---
    [[nodiscard]] bool reactedLastStep(std::size_t inst) const;
    /// Full last reaction record, ExecCounters included; instance must
    /// have reacted at least once.
    [[nodiscard]] const ReactionResult& lastResult(std::size_t inst) const;
    [[nodiscard]] bool outputPresent(std::size_t inst, int sigIndex) const;
    /// Materialized (owning) copy of a valued signal's current value.
    [[nodiscard]] Value outputValue(std::size_t inst, int sigIndex) const;
    [[nodiscard]] bool terminated(std::size_t inst) const;
    [[nodiscard]] bool needsAutoResume(std::size_t inst) const;
    /// True when the instance is queued for the next step() (pending
    /// inputs, auto-resume, or not yet booted).
    [[nodiscard]] bool pendingDirty(std::size_t inst) const;
    /// True when inputs have been staged on the instance since its last
    /// reaction (the instant is open).
    [[nodiscard]] bool hasStagedInputs(std::size_t inst) const;
    /// True when any instance is queued for the next step() — the
    /// scheduler probe a serving layer uses to skip idle engines.
    [[nodiscard]] bool hasPendingWork() const;

    /// One output emission of the last step()/stepAll()/stepDrain().
    struct StepEvent {
        std::uint32_t instance;
        std::int32_t signal;
    };
    /// Merged outputs of the last step, ascending instance id, per-instance
    /// emission order preserved; identical for any thread count. Merged
    /// lazily from the per-worker buffers on first call after a step.
    [[nodiscard]] const std::vector<StepEvent>& lastStepEvents() const
    {
        mergeStepEvents();
        return stepEvents_;
    }

    /// Packs instance `inst` into the shared verification state record
    /// [i32 control state][instance-layout data bytes] — byte-compatible
    /// with packEngineState (src/runtime/trace.h) and the explorer's
    /// interned states: equal byte strings mean same state.
    [[nodiscard]] std::vector<std::uint8_t>
    packInstanceState(std::size_t inst) const;

    [[nodiscard]] const ModuleSema& moduleSema() const { return sema_; }
    [[nodiscard]] int threads() const
    {
        return static_cast<int>(shards_.size());
    }
    /// "native" when reactions run the AOT-compiled function, else
    /// "flat" (the bytecode VM) — the same names the single engines use.
    [[nodiscard]] const char* backendName() const
    {
        return native_ ? "native" : "flat";
    }
    /// Arena stride: variables + valued-signal bytes per instance, padded
    /// to a 64-byte boundary (memory model / capacity planning).
    [[nodiscard]] std::size_t bytesPerInstance() const
    {
        return layout_.stride;
    }

private:
    /// Per-worker execution context: scratch shared by all instances the
    /// worker reacts (never by two workers at once).
    struct Shard {
        bc::Vm vm;
        Store store;        ///< View store, rebased per instance.
        ArenaSigView sigs;  ///< View signal reader, rebased per instance.
        std::vector<std::int32_t> emitRing; ///< Native output ring.
        std::vector<StepEvent> events; ///< This epoch, processing order.
        /// Event count at each sub-step boundary (stepDrain merge keys).
        std::vector<std::uint32_t> substepEnds;
        std::vector<std::uint32_t> active;     ///< Drain survivors.
        std::vector<std::uint32_t> nextActive; ///< Drain scratch.
        std::size_t reactions = 0; ///< Reactions run this epoch.
        std::exception_ptr error;

        Shard(std::shared_ptr<const bc::Program> code,
              const ModuleSema& sema, const InstanceLayout& layout,
              std::uint8_t* scratchBase, std::size_t emitRingSlots);
    };

    void checkInstance(std::size_t inst) const;
    const SignalInfo& checkSignal(std::size_t inst, int sigIndex) const;
    const SignalInfo& checkInput(std::size_t inst, int sigIndex) const;
    std::uint8_t* slice(std::size_t inst)
    {
        return dataArena_.data() + inst * layout_.stride;
    }
    std::uint8_t* presentRow(std::size_t inst)
    {
        return present_.data() + inst * sema_.signals.size();
    }
    void markDirty(std::size_t inst);
    void openInstant(std::size_t inst);
    void storeSignalValue(std::size_t inst, const SignalInfo& info,
                          const Value& v);
    void reactOne(Shard& shard, std::size_t inst);
    std::size_t runStep(bool all, int drainSteps);
    void runShard(int w);
    void mergeStepEvents() const;

    const efsm::FlatProgram& flat_;
    std::shared_ptr<const bc::Program> code_;
    const ModuleSema& sema_;
    std::shared_ptr<const void> owner_;
    /// AOT backend; null = bytecode VM.
    std::shared_ptr<const NativeModule> native_;
    EclNativeReactFn nativeReact_ = nullptr;

    /// Shared fixed layout of one instance's arena slice (the same layout
    /// the verification explorer packs states with — see
    /// src/runtime/instance_layout.h).
    InstanceLayout layout_;
    /// One zeroed slice views point at before their first bind (keeps all
    /// pointer arithmetic inside a live object, even with 0 instances).
    std::vector<std::uint8_t> scratchSlice_;

    // Structure-of-arrays per-instance state.
    std::vector<std::int32_t> state_;        ///< Current EFSM state id.
    std::vector<std::uint8_t> instantOpen_;  ///< Inputs staged this instant.
    std::vector<std::uint8_t> dirty_;        ///< Queued for next step.
    std::vector<std::uint8_t> reacted_;      ///< Reacted in the last step.
    std::vector<std::uint8_t> present_;      ///< N x S, current instant.
    std::vector<std::uint8_t> lastPresent_;  ///< N x S, post-reaction.
    std::vector<std::uint8_t> dataArena_;    ///< N x stride_ value bytes.
    std::vector<ReactionResult> last_;       ///< Last reaction per instance.

    std::vector<std::uint32_t> dirtyList_; ///< Marked instances (may hold
                                           ///< stale entries; dirty_ rules).
    std::vector<std::uint32_t> work_;      ///< This step, sorted ascending.
    /// reactInstance() ids whose reacted_ flag the next step must clear
    /// (step-reacted ids are cleared via the previous work_ list — the
    /// sparse path must not pay an O(instances) fill per step).
    std::vector<std::uint32_t> extraReacted_;
    /// Lazily merged event stream of the last step (mergeStepEvents).
    mutable std::vector<StepEvent> stepEvents_;
    mutable bool eventsMerged_ = true;

    // Worker pool (threads > 1): one epoch per step, contiguous ranges
    // over work_ per shard. All per-instance rows a worker touches are
    // disjoint byte ranges, so the only synchronization is the pool's
    // epoch barrier.
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::pair<std::size_t, std::size_t>> ranges_;
    std::unique_ptr<WorkerPool> pool_;
    std::size_t participants_ = 1; ///< Shards used by the last epoch.
    int drainSteps_ = 1;           ///< Sub-step budget of the epoch.
};

} // namespace ecl::rt
