#include "src/runtime/engine.h"

namespace ecl::rt {

// ---------------------------------------------------------------------------
// ReactiveEngine: name resolution + string wrappers
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> ReactiveEngine::packState() const
{
    throw EclError(std::string("engine backend '") + backendName() +
                   "' does not support packed state snapshots");
}

int ReactiveEngine::signalIndex(const std::string& name) const
{
    const SignalInfo* s = moduleSema().findSignal(name);
    if (!s) throw EclError("no signal named '" + name + "'");
    return s->index;
}

int ReactiveEngine::inputIndex(const std::string& name) const
{
    const SignalInfo* s = moduleSema().findSignal(name);
    if (!s) throw EclError("no signal named '" + name + "'");
    if (s->dir != SignalDir::Input)
        throw EclError("'" + name + "' is not an input signal");
    return s->index;
}

void ReactiveEngine::setInput(const std::string& name)
{
    setInput(inputIndex(name));
}

void ReactiveEngine::setInputScalar(const std::string& name, std::int64_t v)
{
    setInputScalar(inputIndex(name), v);
}

void ReactiveEngine::setInputValue(const std::string& name, Value v)
{
    setInputValue(inputIndex(name), std::move(v));
}

bool ReactiveEngine::outputPresent(const std::string& name) const
{
    return outputPresent(signalIndex(name));
}

Value ReactiveEngine::outputValue(const std::string& name) const
{
    return outputValue(signalIndex(name));
}

namespace {

const SignalInfo& checkedSignal(const ModuleSema& sema, int sigIndex)
{
    if (sigIndex < 0 ||
        static_cast<std::size_t>(sigIndex) >= sema.signals.size())
        throw EclError("signal index " + std::to_string(sigIndex) +
                       " out of range");
    return sema.signals[static_cast<std::size_t>(sigIndex)];
}

const SignalInfo& checkedInput(const ModuleSema& sema, int sigIndex)
{
    const SignalInfo& s = checkedSignal(sema, sigIndex);
    if (s.dir != SignalDir::Input)
        throw EclError("'" + s.name + "' is not an input signal");
    return s;
}

} // namespace

// ---------------------------------------------------------------------------
// SyncEngine
// ---------------------------------------------------------------------------

SyncEngine::SyncEngine(const efsm::Efsm& machine, const ModuleSema& sema,
                       const ProgramSema& program,
                       const FunctionSemaMap& functions,
                       const efsm::FlatProgram* flat,
                       std::shared_ptr<const bc::Program> code)
    : machine_(machine), sema_(sema), env_(sema), store_(sema.vars),
      eval_(program, functions, &sema, &store_, &env_),
      state_(machine.initialState)
{
    lastPresent_.assign(sema.signals.size(), false);
    if (flat && code) {
        flat_ = flat;
        code_ = std::move(code);
        vm_ = std::make_unique<bc::Vm>(code_, &store_, &env_);
        // Post-flatten minimization renumbers flat states, so flat ids
        // need not equal the Efsm's; in flat mode every state read goes
        // through the flat tables.
        state_ = flat_->initialState;
    }
}

const SignalInfo& SyncEngine::checkInput(int sigIndex) const
{
    return checkedInput(sema_, sigIndex);
}

void SyncEngine::beginInput()
{
    if (!instantOpen_) {
        env_.beginInstant();
        instantOpen_ = true;
    }
}

void SyncEngine::setInput(int sigIndex)
{
    checkInput(sigIndex);
    beginInput();
    env_.setPresent(sigIndex);
}

void SyncEngine::setInputScalar(int sigIndex, std::int64_t v)
{
    const SignalInfo& info = checkInput(sigIndex);
    if (info.pure)
        throw EclError("'" + info.name + "' is pure; use setInput()");
    beginInput();
    env_.setValue(sigIndex, Value::fromInt(info.valueType, v));
}

void SyncEngine::setInputValue(int sigIndex, Value v)
{
    checkInput(sigIndex);
    beginInput();
    env_.setValue(sigIndex, std::move(v));
}

void SyncEngine::runActions(const std::vector<efsm::Action>& actions,
                            ReactionResult& result)
{
    for (const efsm::Action& a : actions) {
        ++result.actionsRun;
        if (a.kind == efsm::Action::Kind::Emit) {
            ++result.emitsRun;
            const SignalInfo& info =
                sema_.signals[static_cast<std::size_t>(a.signal)];
            if (a.valueExpr) {
                env_.setValue(a.signal, eval_.evalExpr(*a.valueExpr));
            } else {
                env_.setPresent(a.signal);
            }
            if (info.dir == SignalDir::Output)
                result.emittedOutputs.push_back(a.signal);
        } else {
            const ir::DataAction& da =
                machine_.program->actions[static_cast<std::size_t>(
                    a.dataActionId)];
            if (da.stmt)
                eval_.execStmt(*da.stmt);
            else if (da.expr)
                eval_.evalExpr(*da.expr);
        }
    }
}

void SyncEngine::runFlatActions(const efsm::FlatNode& node,
                                ReactionResult& result)
{
    const efsm::FlatAction* actions = flat_->actions.data();
    for (std::int32_t i = node.actionsBegin; i < node.actionsEnd; ++i) {
        const efsm::FlatAction& a = actions[i];
        ++result.actionsRun;
        if (a.kind == efsm::FlatAction::Kind::Emit) {
            ++result.emitsRun;
            if (a.chunk >= 0)
                env_.setValue(a.signal, vm_->runExpr(a.chunk));
            else
                env_.setPresent(a.signal);
            if (a.isOutput) result.emittedOutputs.push_back(a.signal);
        } else if (a.chunk >= 0) {
            vm_->runAction(a.chunk);
        }
    }
}

void SyncEngine::reactFlat(ReactionResult& result)
{
    vm_->resetCounters();
    const efsm::FlatNode* nodes = flat_->nodes.data();
    const efsm::FlatNode* node =
        &nodes[flat_->states[static_cast<std::size_t>(state_)].root];
    while (!node->isLeaf()) {
        runFlatActions(*node, result);
        ++result.treeTests;
        bool taken = node->testSignal >= 0
                         ? env_.isPresent(node->testSignal)
                         : vm_->runPredicate(node->predChunk);
        node = &nodes[taken ? node->onTrue : node->onFalse];
    }
    if (node->runtimeError())
        throw EclError("instantaneous loop detected at runtime (a "
                       "statically-unverifiable loop path was reached)");
    runFlatActions(*node, result);
    state_ = node->nextState;
    result.terminated =
        node->terminates() ||
        flat_->states[static_cast<std::size_t>(state_)].dead;
    result.dataCounters = vm_->counters();
}

void SyncEngine::reactTree(ReactionResult& result)
{
    eval_.resetCounters();
    const efsm::State& st = machine_.states[static_cast<std::size_t>(state_)];
    const efsm::TransNode* node = st.tree.get();
    if (!node) throw EclError("state without transition tree");
    while (!node->isLeaf) {
        runActions(node->prefixActions, result);
        ++result.treeTests;
        bool taken;
        if (node->testsSignal)
            taken = env_.isPresent(node->signal);
        else
            taken = eval_.evalCondition(*node->dataCond);
        node = taken ? node->onTrue.get() : node->onFalse.get();
    }
    if (node->runtimeError)
        throw EclError("instantaneous loop detected at runtime (a "
                       "statically-unverifiable loop path was reached)");
    runActions(node->prefixActions, result);
    state_ = node->nextState;
    result.terminated = node->terminates ||
                        machine_.states[static_cast<std::size_t>(state_)].dead;
    result.dataCounters = eval_.counters();
}

ReactionResult SyncEngine::react()
{
    if (!instantOpen_) env_.beginInstant();
    instantOpen_ = false;

    ReactionResult result;
    if (flat_)
        reactFlat(result);
    else
        reactTree(result);

    // Snapshot presence for output queries, then close the instant.
    for (std::size_t i = 0; i < lastPresent_.size(); ++i)
        lastPresent_[i] = env_.isPresent(static_cast<int>(i));
    return result;
}

bool SyncEngine::outputPresent(int sigIndex) const
{
    checkedSignal(sema_, sigIndex);
    return lastPresent_[static_cast<std::size_t>(sigIndex)];
}

Value SyncEngine::outputValue(int sigIndex) const
{
    checkedSignal(sema_, sigIndex);
    return env_.signalValue(sigIndex);
}

bool SyncEngine::terminated() const
{
    if (flat_) return flat_->states[static_cast<std::size_t>(state_)].dead;
    return machine_.states[static_cast<std::size_t>(state_)].dead;
}

bool SyncEngine::needsAutoResume() const
{
    if (flat_)
        return flat_->states[static_cast<std::size_t>(state_)].autoResume;
    return machine_.states[static_cast<std::size_t>(state_)].autoResume;
}

std::size_t SyncEngine::dataBytes() const
{
    return store_.totalBytes() + env_.valueBytes();
}

// ---------------------------------------------------------------------------
// RcEngine (Reactive-C-style baseline and semantic oracle)
// ---------------------------------------------------------------------------

RcEngine::RcEngine(const ir::ReactiveProgram& program, const ModuleSema& sema,
                   const ProgramSema& programSema,
                   const FunctionSemaMap& functions)
    : prog_(program), sema_(sema), env_(sema), store_(sema.vars),
      eval_(programSema, functions, &sema, &store_, &env_)
{
    lastPresent_.assign(sema.signals.size(), false);
}

const SignalInfo& RcEngine::checkInput(int sigIndex) const
{
    return checkedInput(sema_, sigIndex);
}

void RcEngine::setInput(int sigIndex)
{
    checkInput(sigIndex);
    env_.setPresent(sigIndex);
}

void RcEngine::setInputScalar(int sigIndex, std::int64_t v)
{
    const SignalInfo& info = checkInput(sigIndex);
    if (info.pure)
        throw EclError("'" + info.name + "' is pure; use setInput()");
    env_.setValue(sigIndex, Value::fromInt(info.valueType, v));
}

void RcEngine::setInputValue(int sigIndex, Value v)
{
    checkInput(sigIndex);
    env_.setValue(sigIndex, std::move(v));
}

bool RcEngine::guardValue(const ir::SigGuard& g)
{
    switch (g.kind) {
    case ir::SigGuard::Kind::Ref: return env_.isPresent(g.signal);
    case ir::SigGuard::Kind::Not: return !guardValue(*g.lhs);
    case ir::SigGuard::Kind::And:
        return guardValue(*g.lhs) && guardValue(*g.rhs);
    case ir::SigGuard::Kind::Or:
        return guardValue(*g.lhs) || guardValue(*g.rhs);
    }
    return false;
}

void RcEngine::doEmit(const ir::Node& n, ReactionResult& result)
{
    ++result.emitsRun;
    const SignalInfo& info = sema_.signals[static_cast<std::size_t>(n.signal)];
    if (n.valueExpr)
        env_.setValue(n.signal, eval_.evalExpr(*n.valueExpr));
    else
        env_.setPresent(n.signal);
    if (info.dir == SignalDir::Output)
        result.emittedOutputs.push_back(n.signal);
}

RcEngine::WalkResult RcEngine::walk(const ir::Node& n, Mode mode,
                                    ReactionResult& result)
{
    ++result.treeTests; // every visited IR node costs interpretation work
    using ir::NodeKind;

    if (mode == Mode::Resume) {
        switch (n.kind) {
        case NodeKind::Pause: return {Comp::Term, -1, 0, {}};
        case NodeKind::Seq: {
            std::size_t idx = n.children.size();
            for (std::size_t i = 0; i < n.children.size(); ++i)
                if (n.children[i]->pausesInSubtree.intersects(config_)) {
                    idx = i;
                    break;
                }
            WalkResult r = walk(*n.children[idx], Mode::Resume, result);
            for (std::size_t i = idx + 1;
                 i < n.children.size() && r.comp == Comp::Term; ++i)
                r = walk(*n.children[i], Mode::Start, result);
            return r;
        }
        case NodeKind::Loop: {
            WalkResult r = walk(*n.children[0], Mode::Resume, result);
            int guard = 0;
            while (r.comp == Comp::Term) {
                if (++guard > 64)
                    throw EclError(n.loc, "instantaneous loop at runtime");
                r = walk(*n.children[0], Mode::Start, result);
            }
            return r;
        }
        case NodeKind::If:
        case NodeKind::Present: {
            const ir::Node& active =
                n.children[0]->pausesInSubtree.intersects(config_)
                    ? *n.children[0]
                    : *n.children[1];
            return walk(active, Mode::Resume, result);
        }
        case NodeKind::Par: {
            WalkResult agg{Comp::Term, -1, 0, {}};
            bool anyPause = false;
            bool anyExit = false;
            WalkResult bestExit;
            for (const ir::NodePtr& b : n.children) {
                if (!b->pausesInSubtree.intersects(config_)) continue;
                WalkResult r = walk(*b, Mode::Resume, result);
                if (r.comp == Comp::Pause) {
                    anyPause = true;
                    agg.pauses |= r.pauses;
                } else if (r.comp == Comp::Exit) {
                    if (!anyExit || r.trapDepth < bestExit.trapDepth)
                        bestExit = r;
                    anyExit = true;
                }
            }
            if (anyExit) return {Comp::Exit, bestExit.trapId,
                                 bestExit.trapDepth, {}};
            if (anyPause) {
                agg.comp = Comp::Pause;
                return agg;
            }
            return {Comp::Term, -1, 0, {}};
        }
        case NodeKind::Abort: {
            const ir::Node& body = *n.children[0];
            const ir::Node* handler =
                n.children.size() > 1 ? n.children[1].get() : nullptr;
            if (handler && handler->pausesInSubtree.intersects(config_) &&
                !body.pausesInSubtree.intersects(config_))
                return walk(*handler, Mode::Resume, result);
            if (!n.weak) {
                if (guardValue(*n.guard)) {
                    if (handler) return walk(*handler, Mode::Start, result);
                    return {Comp::Term, -1, 0, {}};
                }
                return walk(body, Mode::Resume, result);
            }
            WalkResult r = walk(body, Mode::Resume, result);
            if (guardValue(*n.guard) && r.comp == Comp::Pause) {
                if (handler) return walk(*handler, Mode::Start, result);
                return {Comp::Term, -1, 0, {}};
            }
            return r;
        }
        case NodeKind::Suspend: {
            if (guardValue(*n.guard)) {
                WalkResult r;
                r.comp = Comp::Pause;
                r.pauses = n.pausesInSubtree;
                r.pauses &= config_;
                return r;
            }
            return walk(*n.children[0], Mode::Resume, result);
        }
        case NodeKind::Trap: {
            WalkResult r = walk(*n.children[0], Mode::Resume, result);
            if (r.comp == Comp::Exit && r.trapId == n.trapId)
                return {Comp::Term, -1, 0, {}};
            return r;
        }
        default:
            throw EclError(n.loc, "baseline: resume on pause-free node");
        }
    }

    switch (n.kind) {
    case NodeKind::Nothing: return {Comp::Term, -1, 0, {}};
    case NodeKind::Pause: {
        WalkResult r;
        r.comp = Comp::Pause;
        r.pauses.set(static_cast<std::size_t>(n.pauseId));
        return r;
    }
    case NodeKind::Emit:
        doEmit(n, result);
        return {Comp::Term, -1, 0, {}};
    case NodeKind::DataStmt: {
        ++result.actionsRun;
        const ir::DataAction& da =
            prog_.actions[static_cast<std::size_t>(n.dataActionId)];
        if (da.stmt)
            eval_.execStmt(*da.stmt);
        else if (da.expr)
            eval_.evalExpr(*da.expr);
        return {Comp::Term, -1, 0, {}};
    }
    case NodeKind::If: {
        bool taken = eval_.evalCondition(*n.condExpr);
        return walk(*n.children[taken ? 0 : 1], Mode::Start, result);
    }
    case NodeKind::Present: {
        bool taken = guardValue(*n.guard);
        return walk(*n.children[taken ? 0 : 1], Mode::Start, result);
    }
    case NodeKind::Seq: {
        WalkResult r{Comp::Term, -1, 0, {}};
        for (const ir::NodePtr& c : n.children) {
            r = walk(*c, Mode::Start, result);
            if (r.comp != Comp::Term) break;
        }
        return r;
    }
    case NodeKind::Loop: {
        int guard = 0;
        while (true) {
            WalkResult r = walk(*n.children[0], Mode::Start, result);
            if (r.comp != Comp::Term) return r;
            if (++guard > 64)
                throw EclError(n.loc, "instantaneous loop at runtime");
        }
    }
    case NodeKind::Par: {
        WalkResult agg{Comp::Term, -1, 0, {}};
        bool anyPause = false;
        bool anyExit = false;
        WalkResult bestExit;
        for (const ir::NodePtr& b : n.children) {
            WalkResult r = walk(*b, Mode::Start, result);
            if (r.comp == Comp::Pause) {
                anyPause = true;
                agg.pauses |= r.pauses;
            } else if (r.comp == Comp::Exit) {
                if (!anyExit || r.trapDepth < bestExit.trapDepth) bestExit = r;
                anyExit = true;
            }
        }
        if (anyExit)
            return {Comp::Exit, bestExit.trapId, bestExit.trapDepth, {}};
        if (anyPause) {
            agg.comp = Comp::Pause;
            return agg;
        }
        return {Comp::Term, -1, 0, {}};
    }
    case NodeKind::Abort:
    case NodeKind::Suspend:
        // Non-immediate: no guard test in the starting instant.
        return walk(*n.children[0], Mode::Start, result);
    case NodeKind::Trap: {
        WalkResult r = walk(*n.children[0], Mode::Start, result);
        if (r.comp == Comp::Exit && r.trapId == n.trapId)
            return {Comp::Term, -1, 0, {}};
        return r;
    }
    case NodeKind::Exit:
        return {Comp::Exit, n.trapId,
                prog_.trapDepth[static_cast<std::size_t>(n.trapId)], {}};
    }
    throw EclError(n.loc, "baseline: bad node kind");
}

ReactionResult RcEngine::react()
{
    ReactionResult result;
    eval_.resetCounters();

    if (dead_) {
        for (std::size_t i = 0; i < lastPresent_.size(); ++i)
            lastPresent_[i] = env_.isPresent(static_cast<int>(i));
        env_.beginInstant();
        result.terminated = true;
        return result;
    }

    WalkResult r;
    if (!started_) {
        started_ = true;
        r = walk(*prog_.root, Mode::Start, result);
    } else {
        r = walk(*prog_.root, Mode::Resume, result);
    }
    if (r.comp == Comp::Pause) {
        config_ = r.pauses;
    } else {
        config_ = PauseSet{};
        dead_ = true;
        result.terminated = true;
    }
    result.dataCounters = eval_.counters();

    for (std::size_t i = 0; i < lastPresent_.size(); ++i)
        lastPresent_[i] = env_.isPresent(static_cast<int>(i));
    env_.beginInstant();
    return result;
}

bool RcEngine::outputPresent(int sigIndex) const
{
    checkedSignal(sema_, sigIndex);
    return lastPresent_[static_cast<std::size_t>(sigIndex)];
}

Value RcEngine::outputValue(int sigIndex) const
{
    checkedSignal(sema_, sigIndex);
    return env_.signalValue(sigIndex);
}

bool RcEngine::terminated() const { return dead_; }

bool RcEngine::needsAutoResume() const
{
    bool delta = false;
    config_.forEach([&](std::size_t p) {
        if (p < prog_.pauseDelta.size() && prog_.pauseDelta[p]) delta = true;
    });
    return delta;
}

} // namespace ecl::rt
