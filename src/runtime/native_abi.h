// The C ABI between the host runtime and AOT-compiled reaction code.
//
// src/codegen/c_gen.cpp emits a textual mirror of these structs into
// every generated translation unit (the generated C is self-contained —
// it cannot include this header), and NativeModule validates
// `ecl_module_info.abi_version` against kEclNativeAbiVersion at dlopen
// time, so any layout change here MUST bump the version and update the
// emitter in lockstep.
//
// One EclNativeCtx is stack-built per react() call: persistent instance
// state (the arena and presence bytes) is pointed to, per-reaction
// results (emitted outputs, counters, the next control state) are
// written back. Runtime traps set `error` and longjmp through `jb`;
// ecl_native_react then returns nonzero and the host raises EclError.
#pragma once

#include <cstdint>

namespace ecl::rt {

inline constexpr std::uint32_t kEclNativeAbiVersion = 1;

extern "C" {

/// Mirrors the generated `ecl_nat_ctx` (see c_gen.cpp, emitPrelude).
struct EclNativeCtx {
    std::uint8_t* data;     ///< Instance arena (computeInstanceLayout).
    std::uint8_t* present;  ///< One byte per signal, 1 = present.
    std::int32_t* emitted;  ///< Output ring, capacity info.max_emits.
    std::int32_t state;     ///< In: current flat state. Out: next state.
    std::int32_t terminated;    ///< Out: this reaction terminated.
    std::int32_t emitted_count; ///< Out: outputs pushed this reaction.
    std::int32_t depth;         ///< Call depth (host seeds 1).
    std::int64_t fuel;      ///< Backward-branch budget (runaway guard).
    std::uint64_t tree_tests;   ///< Out: decision nodes tested.
    std::uint64_t actions_run;  ///< Out: flat actions executed.
    std::uint64_t emits_run;    ///< Out: emissions (locals included).
    const char* error;      ///< Out: trap message (trap path only).
    void* jb;               ///< jmp_buf* owned by ecl_native_react.
};

/// Mirrors the generated `ecl_nat_info`; exported as `ecl_module_info`.
struct EclNativeInfo {
    std::uint32_t abi_version; ///< kEclNativeAbiVersion at generation.
    std::uint32_t data_bytes;  ///< InstanceLayout::dataBytes.
    std::uint32_t signals;     ///< ModuleSema::signals.size().
    std::uint32_t states;      ///< FlatProgram::states.size().
    std::int32_t initial_state;
    std::uint32_t max_emits;   ///< Output-ring capacity required.
    const char* module_name;
};

} // extern "C"

using EclNativeReactFn = int (*)(EclNativeCtx*);

} // namespace ecl::rt
