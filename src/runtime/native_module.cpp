#include "src/runtime/native_module.h"

#include <dlfcn.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/interp/value.h"
#include "src/support/strings.h"

namespace ecl::rt {

namespace fs = std::filesystem;

namespace {

std::string hex16(std::uint64_t v)
{
    static const char* digits = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i, v >>= 4) s[i] = digits[v & 0xf];
    return s;
}

/// Mirrors engine.cpp's checkedSignal (same error text).
const SignalInfo& checkedSignal(const ModuleSema& sema, int sigIndex)
{
    if (sigIndex < 0 ||
        static_cast<std::size_t>(sigIndex) >= sema.signals.size())
        throw EclError("signal index " + std::to_string(sigIndex) +
                       " out of range");
    return sema.signals[static_cast<std::size_t>(sigIndex)];
}

std::string readLogTail(const fs::path& log)
{
    std::ifstream is(log);
    if (!is) return {};
    std::stringstream ss;
    ss << is.rdbuf();
    std::string text = ss.str();
    if (text.size() > 512) text = "..." + text.substr(text.size() - 512);
    return text;
}

} // namespace

// ---------------------------------------------------------------------------
// NativeModule
// ---------------------------------------------------------------------------

std::shared_ptr<const NativeModule>
NativeModule::build(const std::string& cSource, const std::string& moduleName)
{
    if (const char* off = std::getenv("ECL_NATIVE_DISABLE");
        off && *off)
        throw EclError("native backend disabled via ECL_NATIVE_DISABLE");

    std::vector<std::string> candidates;
    if (const char* cc = std::getenv("CC"); cc && *cc)
        candidates = {cc}; // $CC is authoritative: no silent substitute.
    else
        candidates = {"cc", "gcc", "clang"};

    fs::path cacheDir;
    if (const char* dir = std::getenv("ECL_NATIVE_CACHE_DIR"); dir && *dir)
        cacheDir = dir;
    else
        cacheDir = fs::temp_directory_path() / "ecl-native-cache";
    std::error_code ec;
    fs::create_directories(cacheDir, ec);
    if (ec)
        throw EclError("native backend: cannot create cache dir '" +
                       cacheDir.string() + "': " + ec.message());

    auto mod = std::shared_ptr<NativeModule>(new NativeModule());
    std::string firstError;
    fs::path soPath;
    for (const std::string& compiler : candidates) {
        // The compiler is part of the cache key: different compilers may
        // produce ABI-identical but byte-different objects, and a failed
        // $CC must never hit a cache entry a working cc produced.
        std::uint64_t h = fnv1a64(cSource + '\0' + compiler);
        fs::path base =
            cacheDir / ("ecl_" + moduleName + "_" + hex16(h));
        soPath = base;
        soPath += ".so";
        if (fs::exists(soPath)) {
            mod->compiler_.clear(); // Cache hit.
            break;
        }

        fs::path cPath = base;
        cPath += ".c";
        fs::path logPath = base;
        logPath += ".log";
        {
            std::ofstream os(cPath, std::ios::binary | std::ios::trunc);
            os << cSource;
            if (!os)
                throw EclError("native backend: cannot write '" +
                               cPath.string() + "'");
        }
        // Write-then-rename: concurrent builders race benignly.
        fs::path tmp = soPath;
        tmp += ".tmp" + std::to_string(static_cast<long>(::getpid()));
        std::string cmd = compiler + " -std=c99 -O2 -fPIC -shared -o '" +
                          tmp.string() + "' '" + cPath.string() + "' 2>'" +
                          logPath.string() + "'";
        int rc = std::system(cmd.c_str());
        if (rc == 0 && fs::exists(tmp)) {
            fs::rename(tmp, soPath, ec);
            if (ec && !fs::exists(soPath))
                throw EclError("native backend: rename failed: " +
                               ec.message());
            mod->compiler_ = compiler;
            break;
        }
        fs::remove(tmp, ec);
        if (firstError.empty()) {
            firstError = "'" + compiler + "' failed (exit " +
                         std::to_string(rc) + ")";
            std::string tail = readLogTail(logPath);
            if (!tail.empty()) firstError += ": " + tail;
        }
        soPath.clear();
    }
    if (soPath.empty())
        throw EclError("native backend: no working C compiler for module '" +
                       moduleName + "': " + firstError);

    mod->soPath_ = soPath.string();
    mod->handle_ = ::dlopen(mod->soPath_.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!mod->handle_) {
        const char* err = ::dlerror();
        throw EclError("native backend: dlopen('" + mod->soPath_ +
                       "') failed: " + (err ? err : "unknown error"));
    }
    mod->info_ = static_cast<const EclNativeInfo*>(
        ::dlsym(mod->handle_, "ecl_module_info"));
    mod->react_ = reinterpret_cast<EclNativeReactFn>(
        ::dlsym(mod->handle_, "ecl_native_react"));
    if (!mod->info_ || !mod->react_)
        throw EclError("native backend: '" + mod->soPath_ +
                       "' lacks the ecl_module_info/ecl_native_react "
                       "symbols");
    if (mod->info_->abi_version != kEclNativeAbiVersion)
        throw EclError("native backend: ABI version " +
                       std::to_string(mod->info_->abi_version) +
                       " in '" + mod->soPath_ + "', host expects " +
                       std::to_string(kEclNativeAbiVersion));
    return mod;
}

NativeModule::~NativeModule()
{
    if (handle_) ::dlclose(handle_);
}

void validateNativeShape(const EclNativeInfo& info, const ModuleSema& sema,
                         const efsm::FlatProgram& flat,
                         const InstanceLayout& layout)
{
    if (info.data_bytes != layout.dataBytes ||
        info.signals != sema.signals.size() ||
        info.states != flat.states.size() ||
        info.initial_state != flat.initialState)
        throw EclError(std::string("native backend: module '") +
                       (info.module_name ? info.module_name : "?") +
                       "' shape does not match this compile (stale cache "
                       "or wrong flat tables)");
}

// ---------------------------------------------------------------------------
// NativeEngine
// ---------------------------------------------------------------------------

NativeEngine::NativeEngine(const ModuleSema& sema,
                           const efsm::FlatProgram& flat,
                           std::shared_ptr<const NativeModule> module)
    : sema_(sema), flat_(flat), module_(std::move(module)),
      layout_(computeInstanceLayout(sema)), fuel_(kNativeReactFuel)
{
    const EclNativeInfo& info = module_->info();
    validateNativeShape(info, sema_, flat_, layout_);
    arena_.assign(std::max<std::size_t>(layout_.dataBytes, 1), 0);
    present_.assign(sema_.signals.size(), 0);
    lastPresent_.assign(sema_.signals.size(), 0);
    emitted_.assign(std::max<std::uint32_t>(info.max_emits, 1), 0);
    state_ = flat_.initialState;
}

const SignalInfo& NativeEngine::checkInput(int sigIndex) const
{
    const SignalInfo& s = checkedSignal(sema_, sigIndex);
    if (s.dir != SignalDir::Input)
        throw EclError("'" + s.name + "' is not an input signal");
    return s;
}

void NativeEngine::beginInput()
{
    if (!instantOpen_) {
        std::fill(present_.begin(), present_.end(), 0);
        instantOpen_ = true;
    }
}

void NativeEngine::setInput(int sigIndex)
{
    checkInput(sigIndex);
    beginInput();
    present_[static_cast<std::size_t>(sigIndex)] = 1;
}

void NativeEngine::setInputScalar(int sigIndex, std::int64_t v)
{
    const SignalInfo& info = checkInput(sigIndex);
    if (info.pure)
        throw EclError("'" + info.name + "' is pure; use setInput()");
    beginInput();
    writeScalar(arena_.data() +
                    layout_.sigOffsets[static_cast<std::size_t>(sigIndex)],
                info.valueType, v);
    present_[static_cast<std::size_t>(sigIndex)] = 1;
}

void NativeEngine::setInputValue(int sigIndex, Value v)
{
    const SignalInfo& info = checkInput(sigIndex);
    beginInput();
    // SignalEnv::setValue semantics, writing straight into the arena.
    if (info.pure)
        throw EclError("cannot set a value on pure signal '" + info.name +
                       "'");
    std::uint8_t* slot =
        arena_.data() +
        layout_.sigOffsets[static_cast<std::size_t>(sigIndex)];
    if (info.valueType->isScalar())
        writeScalar(slot, info.valueType, v.toInt());
    else if (v.type() == info.valueType)
        std::memcpy(slot, v.data(), info.valueType->size());
    else
        throw EclError("signal value type mismatch for '" + info.name +
                       "'");
    present_[static_cast<std::size_t>(sigIndex)] = 1;
}

ReactionResult NativeEngine::react()
{
    if (!instantOpen_) std::fill(present_.begin(), present_.end(), 0);
    instantOpen_ = false;

    EclNativeCtx ctx{};
    ctx.data = arena_.data();
    ctx.present = present_.data();
    ctx.emitted = emitted_.data();
    ctx.state = state_;
    ctx.depth = 1; // Module chunks run at the VM's depth 1.
    ctx.fuel = fuel_;
    int rc = module_->react()(&ctx);
    fuel_ = ctx.fuel; // Lifetime budget, like the VM's op budget.
    if (rc != 0)
        throw EclError(ctx.error ? ctx.error
                                 : "native reaction failed without a "
                                   "message");
    state_ = ctx.state;

    ReactionResult result;
    result.emittedOutputs.assign(
        emitted_.begin(), emitted_.begin() + ctx.emitted_count);
    result.terminated = ctx.terminated != 0;
    result.treeTests = ctx.tree_tests;
    result.actionsRun = ctx.actions_run;
    result.emitsRun = ctx.emits_run;
    lastPresent_ = present_;
    return result;
}

bool NativeEngine::outputPresent(int sigIndex) const
{
    checkedSignal(sema_, sigIndex);
    return lastPresent_[static_cast<std::size_t>(sigIndex)] != 0;
}

Value NativeEngine::outputValue(int sigIndex) const
{
    const SignalInfo& s = checkedSignal(sema_, sigIndex);
    if (s.pure)
        throw EclError("value read on pure signal '" + s.name + "'");
    return Value::fromBytes(
        s.valueType,
        arena_.data() +
            layout_.sigOffsets[static_cast<std::size_t>(sigIndex)]);
}

bool NativeEngine::terminated() const
{
    return flat_.states[static_cast<std::size_t>(state_)].dead;
}

bool NativeEngine::needsAutoResume() const
{
    return flat_.states[static_cast<std::size_t>(state_)].autoResume;
}

std::vector<std::uint8_t> NativeEngine::packState() const
{
    std::vector<std::uint8_t> out(4 + layout_.dataBytes, 0);
    const std::int32_t st = state_;
    std::memcpy(out.data(), &st, 4);
    std::memcpy(out.data() + 4, arena_.data(), layout_.dataBytes);
    return out;
}

} // namespace ecl::rt
