// Synchronous reactive engines.
//
// SyncEngine executes the compiled EFSM: one decision-tree walk per instant
// — the paper's fast path ("the Esterel compiler does case analysis much
// better than a human designer").
//
// RcEngine is the Reactive-C-style baseline of the related-work section:
// it re-walks the whole reactive program structure every instant, keeping
// an explicit set of active pause points. Semantically equivalent (used as
// a differential-testing oracle) but with interpretive overhead per
// reaction, like RC's direct compilation to C.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/efsm/efsm.h"
#include "src/interp/eval.h"
#include "src/ir/ir.h"
#include "src/runtime/signal_env.h"
#include "src/sema/sema.h"

namespace ecl::rt {

using FunctionSemaMap = std::unordered_map<std::string, FunctionSema>;

struct ReactionResult {
    std::vector<int> emittedOutputs; ///< Output-signal indices, in order.
    bool terminated = false;
    std::uint64_t treeTests = 0;  ///< Decision nodes walked (EFSM) or IR
                                  ///< nodes visited (baseline).
    std::uint64_t actionsRun = 0;
    std::uint64_t emitsRun = 0;   ///< All emissions (incl. local signals).
    ExecCounters dataCounters;    ///< From the data evaluator.
};

/// Common interface so tests and benches can drive both engines uniformly.
class ReactiveEngine {
public:
    virtual ~ReactiveEngine() = default;

    /// Keeps an owner (typically the CompiledModule) alive for the
    /// engine's lifetime — engines hold references into compiled
    /// structures.
    void retain(std::shared_ptr<const void> owner) { owner_ = std::move(owner); }

    virtual void setInput(const std::string& name) = 0;
    virtual void setInputScalar(const std::string& name, std::int64_t v) = 0;
    virtual void setInputValue(const std::string& name, Value v) = 0;
    virtual ReactionResult react() = 0;

    [[nodiscard]] virtual bool outputPresent(const std::string& name) const = 0;
    [[nodiscard]] virtual Value outputValue(const std::string& name) const = 0;
    [[nodiscard]] virtual bool terminated() const = 0;
    /// True when the engine must react next instant even with no inputs
    /// (an await() delta pause is pending).
    [[nodiscard]] virtual bool needsAutoResume() const = 0;

private:
    std::shared_ptr<const void> owner_;
};

class SyncEngine final : public ReactiveEngine {
public:
    SyncEngine(const efsm::Efsm& machine, const ModuleSema& sema,
               const ProgramSema& program, const FunctionSemaMap& functions);

    void setInput(const std::string& name) override;
    void setInputScalar(const std::string& name, std::int64_t v) override;
    void setInputValue(const std::string& name, Value v) override;
    ReactionResult react() override;

    [[nodiscard]] bool outputPresent(const std::string& name) const override;
    [[nodiscard]] Value outputValue(const std::string& name) const override;
    [[nodiscard]] bool terminated() const override;
    [[nodiscard]] bool needsAutoResume() const override;

    [[nodiscard]] int currentState() const { return state_; }
    [[nodiscard]] Store& store() { return store_; }
    [[nodiscard]] SignalEnv& env() { return env_; }
    [[nodiscard]] const SignalEnv& env() const { return env_; }
    [[nodiscard]] const ModuleSema& sema() const { return sema_; }

    /// Data memory footprint: variables + signal values (memory model).
    [[nodiscard]] std::size_t dataBytes() const;

private:
    int signalIndex(const std::string& name, bool wantInput) const;
    void runActions(const std::vector<efsm::Action>& actions,
                    ReactionResult& result);

    const efsm::Efsm& machine_;
    const ModuleSema& sema_;
    SignalEnv env_;
    Store store_;
    Evaluator eval_;
    int state_ = 0;
    std::vector<bool> lastPresent_;
    bool instantOpen_ = false;
};

class RcEngine final : public ReactiveEngine {
public:
    RcEngine(const ir::ReactiveProgram& program, const ModuleSema& sema,
             const ProgramSema& programSema, const FunctionSemaMap& functions);

    void setInput(const std::string& name) override;
    void setInputScalar(const std::string& name, std::int64_t v) override;
    void setInputValue(const std::string& name, Value v) override;
    ReactionResult react() override;

    [[nodiscard]] bool outputPresent(const std::string& name) const override;
    [[nodiscard]] Value outputValue(const std::string& name) const override;
    [[nodiscard]] bool terminated() const override;
    [[nodiscard]] bool needsAutoResume() const override;

    [[nodiscard]] Store& store() { return store_; }

private:
    enum class Comp { Term, Pause, Exit };
    struct WalkResult {
        Comp comp = Comp::Term;
        int trapId = -1;
        int trapDepth = 0;
        PauseSet pauses;
    };
    enum class Mode { Start, Resume };

    int signalIndex(const std::string& name, bool wantInput) const;
    WalkResult walk(const ir::Node& n, Mode mode, ReactionResult& result);
    bool guardValue(const ir::SigGuard& g);
    void doEmit(const ir::Node& n, ReactionResult& result);

    const ir::ReactiveProgram& prog_;
    const ModuleSema& sema_;
    SignalEnv env_;
    Store store_;
    Evaluator eval_;
    PauseSet config_;
    bool started_ = false;
    bool dead_ = false;
    std::vector<bool> lastPresent_;
};

} // namespace ecl::rt
