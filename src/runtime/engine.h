// Synchronous reactive engines.
//
// SyncEngine executes the compiled EFSM: one decision-tree walk per instant
// — the paper's fast path ("the Esterel compiler does case analysis much
// better than a human designer"). When the CompiledModule provides a
// flattened machine (efsm::FlatProgram) and compiled data bytecode
// (bc::Program), the walk runs over dense integer-indexed tables and a
// register VM; otherwise it falls back to the original unique_ptr
// decision-tree walk with the tree-walking Evaluator. Both paths produce
// identical outputs and ExecCounters (the tree walk is kept as the
// differential-testing oracle for the bytecode path).
//
// RcEngine is the Reactive-C-style baseline of the related-work section:
// it re-walks the whole reactive program structure every instant, keeping
// an explicit set of active pause points. Semantically equivalent (used as
// a differential-testing oracle) but with interpretive overhead per
// reaction, like RC's direct compilation to C.
//
// Input/output APIs come in two flavors: index-based (the fast path —
// signal indices from ModuleSema, no hash lookups; used by the RTOS
// simulator and benches) and string-based convenience wrappers that
// resolve the name once and delegate.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/efsm/efsm.h"
#include "src/efsm/flatten.h"
#include "src/interp/eval.h"
#include "src/interp/vm.h"
#include "src/ir/ir.h"
#include "src/runtime/signal_env.h"
#include "src/sema/sema.h"

namespace ecl::rt {

using FunctionSemaMap = std::unordered_map<std::string, FunctionSema>;

struct ReactionResult {
    std::vector<int> emittedOutputs; ///< Output-signal indices, in order.
    bool terminated = false;
    std::uint64_t treeTests = 0;  ///< Decision nodes walked (EFSM) or IR
                                  ///< nodes visited (baseline).
    std::uint64_t actionsRun = 0;
    std::uint64_t emitsRun = 0;   ///< All emissions (incl. local signals).
    ExecCounters dataCounters;    ///< From the data evaluator.
};

/// Common interface so tests and benches can drive both engines uniformly.
class ReactiveEngine {
public:
    virtual ~ReactiveEngine() = default;

    /// Keeps an owner (typically the CompiledModule) alive for the
    /// engine's lifetime — engines hold references into compiled
    /// structures.
    void retain(std::shared_ptr<const void> owner) { owner_ = std::move(owner); }

    // --- index-based fast path (indices are SignalInfo::index) ---
    virtual void setInput(int sigIndex) = 0;
    virtual void setInputScalar(int sigIndex, std::int64_t v) = 0;
    virtual void setInputValue(int sigIndex, Value v) = 0;
    virtual ReactionResult react() = 0;
    /// Presence of any signal in the last reaction (observability API —
    /// internal signals included, not only outputs).
    [[nodiscard]] virtual bool outputPresent(int sigIndex) const = 0;
    [[nodiscard]] virtual Value outputValue(int sigIndex) const = 0;

    [[nodiscard]] virtual bool terminated() const = 0;
    /// True when the engine must react next instant even with no inputs
    /// (an await() delta pause is pending).
    [[nodiscard]] virtual bool needsAutoResume() const = 0;
    /// Signal table of the module this engine runs (name resolution).
    [[nodiscard]] virtual const ModuleSema& moduleSema() const = 0;

    /// Short stable name of the execution backend: "flat", "tree", "rc"
    /// or "native". Lets callers of makeEngine(EngineKind::Native) tell a
    /// real native engine from a VM fallback.
    [[nodiscard]] virtual const char* backendName() const = 0;
    /// Packed snapshot [i32 control state][instance-layout data bytes] —
    /// the shared verification/batch state record, byte-comparable across
    /// backends of the same compile. Throws EclError when the engine
    /// cannot snapshot (the default).
    [[nodiscard]] virtual std::vector<std::uint8_t> packState() const;

    // --- string convenience wrappers (resolve the name, then delegate) ---
    void setInput(const std::string& name);
    void setInputScalar(const std::string& name, std::int64_t v);
    void setInputValue(const std::string& name, Value v);
    [[nodiscard]] bool outputPresent(const std::string& name) const;
    [[nodiscard]] Value outputValue(const std::string& name) const;

    /// Index of any signal by name; throws EclError when unknown.
    [[nodiscard]] int signalIndex(const std::string& name) const;
    /// Index of an input signal by name; throws when unknown or not input.
    [[nodiscard]] int inputIndex(const std::string& name) const;

private:
    std::shared_ptr<const void> owner_;
};

class SyncEngine final : public ReactiveEngine {
public:
    /// When `flat` and `code` are provided (the CompiledModule's flattened
    /// tables + bytecode) the engine executes them; otherwise it walks
    /// `machine`'s decision trees with the tree-walking Evaluator.
    SyncEngine(const efsm::Efsm& machine, const ModuleSema& sema,
               const ProgramSema& program, const FunctionSemaMap& functions,
               const efsm::FlatProgram* flat = nullptr,
               std::shared_ptr<const bc::Program> code = nullptr);

    using ReactiveEngine::outputPresent;
    using ReactiveEngine::outputValue;
    using ReactiveEngine::setInput;
    using ReactiveEngine::setInputScalar;
    using ReactiveEngine::setInputValue;

    void setInput(int sigIndex) override;
    void setInputScalar(int sigIndex, std::int64_t v) override;
    void setInputValue(int sigIndex, Value v) override;
    ReactionResult react() override;

    [[nodiscard]] bool outputPresent(int sigIndex) const override;
    [[nodiscard]] Value outputValue(int sigIndex) const override;
    [[nodiscard]] bool terminated() const override;
    [[nodiscard]] bool needsAutoResume() const override;
    [[nodiscard]] const ModuleSema& moduleSema() const override
    {
        return sema_;
    }
    [[nodiscard]] const char* backendName() const override
    {
        return flat_ ? "flat" : "tree";
    }
    [[nodiscard]] std::vector<std::uint8_t> packState() const override;

    /// Current control state id — a FlatProgram id in flat mode (which
    /// post-flatten minimization may have renumbered), an Efsm id on the
    /// tree-walking path.
    [[nodiscard]] int currentState() const { return state_; }
    [[nodiscard]] Store& store() { return store_; }
    [[nodiscard]] const Store& store() const { return store_; }
    [[nodiscard]] SignalEnv& env() { return env_; }
    [[nodiscard]] const SignalEnv& env() const { return env_; }
    [[nodiscard]] const ModuleSema& sema() const { return sema_; }
    /// True when reactions execute flat tables + bytecode (the fast path).
    [[nodiscard]] bool usesFlatExecution() const { return flat_ != nullptr; }

    /// Data memory footprint: variables + signal values (memory model).
    [[nodiscard]] std::size_t dataBytes() const;

private:
    const SignalInfo& checkInput(int sigIndex) const;
    void beginInput();
    void runActions(const std::vector<efsm::Action>& actions,
                    ReactionResult& result);
    void runFlatActions(const efsm::FlatNode& node, ReactionResult& result);
    void reactTree(ReactionResult& result);
    void reactFlat(ReactionResult& result);

    const efsm::Efsm& machine_;
    const ModuleSema& sema_;
    SignalEnv env_;
    Store store_;
    Evaluator eval_;
    const efsm::FlatProgram* flat_ = nullptr;
    std::shared_ptr<const bc::Program> code_;
    std::unique_ptr<bc::Vm> vm_;
    int state_ = 0;
    std::vector<bool> lastPresent_;
    bool instantOpen_ = false;
};

class RcEngine final : public ReactiveEngine {
public:
    RcEngine(const ir::ReactiveProgram& program, const ModuleSema& sema,
             const ProgramSema& programSema, const FunctionSemaMap& functions);

    using ReactiveEngine::outputPresent;
    using ReactiveEngine::outputValue;
    using ReactiveEngine::setInput;
    using ReactiveEngine::setInputScalar;
    using ReactiveEngine::setInputValue;

    void setInput(int sigIndex) override;
    void setInputScalar(int sigIndex, std::int64_t v) override;
    void setInputValue(int sigIndex, Value v) override;
    ReactionResult react() override;

    [[nodiscard]] bool outputPresent(int sigIndex) const override;
    [[nodiscard]] Value outputValue(int sigIndex) const override;
    [[nodiscard]] bool terminated() const override;
    [[nodiscard]] bool needsAutoResume() const override;
    [[nodiscard]] const ModuleSema& moduleSema() const override
    {
        return sema_;
    }
    [[nodiscard]] const char* backendName() const override { return "rc"; }

    [[nodiscard]] Store& store() { return store_; }

private:
    enum class Comp { Term, Pause, Exit };
    struct WalkResult {
        Comp comp = Comp::Term;
        int trapId = -1;
        int trapDepth = 0;
        PauseSet pauses;
    };
    enum class Mode { Start, Resume };

    const SignalInfo& checkInput(int sigIndex) const;
    WalkResult walk(const ir::Node& n, Mode mode, ReactionResult& result);
    bool guardValue(const ir::SigGuard& g);
    void doEmit(const ir::Node& n, ReactionResult& result);

    const ir::ReactiveProgram& prog_;
    const ModuleSema& sema_;
    SignalEnv env_;
    Store store_;
    Evaluator eval_;
    PauseSet config_;
    bool started_ = false;
    bool dead_ = false;
    std::vector<bool> lastPresent_;
};

} // namespace ecl::rt
