#include "src/runtime/trace.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "src/runtime/batch_engine.h"
#include "src/support/strings.h"

namespace ecl::rt {

TraceRecorder::TraceRecorder(const ModuleSema& sema,
                             std::vector<std::string> signals)
    : sema_(sema)
{
    auto wanted = [&](const std::string& name) {
        return signals.empty() ||
               std::find(signals.begin(), signals.end(), name) !=
                   signals.end();
    };
    for (const SignalInfo& s : sema.signals) {
        if (!wanted(s.name)) continue;
        Track t;
        t.name = s.name;
        t.signalIndex = s.index;
        t.valued = !s.pure && s.valueType->isScalar();
        tracks_.push_back(std::move(t));
    }
}

void TraceRecorder::sample(const SyncEngine& engine)
{
    for (Track& t : tracks_) {
        bool present = false;
        // outputPresent works for any signal by name (observability API).
        present = engine.outputPresent(t.name);
        t.present.push_back(present);
        if (t.valued) {
            std::int64_t v = engine.env().signalValue(t.signalIndex).toInt();
            t.values.push_back(v);
        }
    }
    ++instants_;
}

void TraceRecorder::sampleRaw(const std::vector<bool>& present,
                              const std::vector<std::int64_t>& values)
{
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        Track& t = tracks_[i];
        t.present.push_back(i < present.size() && present[i]);
        if (t.valued)
            t.values.push_back(i < values.size() ? values[i] : 0);
    }
    ++instants_;
}

namespace {

/// VCD identifier characters start at '!' (33).
std::string vcdId(std::size_t n)
{
    std::string id;
    do {
        id += static_cast<char>('!' + n % 94);
        n /= 94;
    } while (n);
    return id;
}

} // namespace

std::string TraceRecorder::toVcd(const std::string& moduleName) const
{
    std::string out;
    out += "$date ecl trace $end\n";
    out += "$version ecl reactive runtime $end\n";
    out += "$timescale 1ns $end\n";
    out += "$scope module " + moduleName + " $end\n";
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        const Track& t = tracks_[i];
        out += "$var wire 1 " + vcdId(2 * i) + " " + t.name + " $end\n";
        if (t.valued)
            out += "$var integer 64 " + vcdId(2 * i + 1) + " " + t.name +
                   "_val $end\n";
    }
    out += "$upscope $end\n$enddefinitions $end\n";

    std::vector<signed char> lastPresent(tracks_.size(), -1);
    std::vector<std::int64_t> lastValue(tracks_.size(),
                                        std::int64_t{0x7fffffffffffffff});
    for (std::size_t inst = 0; inst < instants_; ++inst) {
        std::string changes;
        for (std::size_t i = 0; i < tracks_.size(); ++i) {
            const Track& t = tracks_[i];
            signed char p = t.present[inst] ? 1 : 0;
            if (p != lastPresent[i]) {
                changes += std::string(p ? "1" : "0") + vcdId(2 * i) + "\n";
                lastPresent[i] = p;
            }
            if (t.valued && t.values[inst] != lastValue[i]) {
                // Binary value dump.
                std::uint64_t raw =
                    static_cast<std::uint64_t>(t.values[inst]);
                std::string bits;
                if (raw == 0) bits = "0";
                while (raw) {
                    bits += (raw & 1) ? '1' : '0';
                    raw >>= 1;
                }
                std::reverse(bits.begin(), bits.end());
                changes += "b" + bits + " " + vcdId(2 * i + 1) + "\n";
                lastValue[i] = t.values[inst];
            }
        }
        if (!changes.empty() || inst == 0)
            out += "#" + std::to_string(inst) + "\n" + changes;
    }
    out += "#" + std::to_string(instants_) + "\n";
    return out;
}

std::string TraceRecorder::toTimeline() const
{
    std::size_t nameWidth = 0;
    for (const Track& t : tracks_)
        nameWidth = std::max(nameWidth, t.name.size());
    std::string out;
    for (const Track& t : tracks_) {
        out += t.name;
        out.append(nameWidth - t.name.size() + 1, ' ');
        for (std::size_t i = 0; i < instants_; ++i)
            out += t.present[i] ? '#' : '.';
        out += '\n';
    }
    return out;
}

// ---------------------------------------------------------------------------
// Input-stream record/replay
// ---------------------------------------------------------------------------

namespace {

constexpr char kBinaryMagic[8] = {'E', 'C', 'L', 'T', 'R', 'C', '0', '1'};
constexpr const char* kTextMagic = "eclrtrace";

std::string hexBytes(const std::vector<std::uint8_t>& bytes)
{
    static const char* digits = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (std::uint8_t b : bytes) {
        out += digits[b >> 4];
        out += digits[b & 0xf];
    }
    return out;
}

std::vector<std::uint8_t> parseHexBytes(const std::string& hex)
{
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
    };
    if (hex.size() % 2 != 0)
        throw EclError("trace: odd-length hex value '" + hex + "'");
    std::vector<std::uint8_t> out(hex.size() / 2);
    for (std::size_t i = 0; i < out.size(); ++i) {
        int hi = nibble(hex[2 * i]), lo = nibble(hex[2 * i + 1]);
        if (hi < 0 || lo < 0)
            throw EclError("trace: bad hex value '" + hex + "'");
        out[i] = static_cast<std::uint8_t>(hi << 4 | lo);
    }
    return out;
}

void putU32(std::ostream& os, std::uint32_t v)
{
    std::uint8_t b[4] = {static_cast<std::uint8_t>(v),
                         static_cast<std::uint8_t>(v >> 8),
                         static_cast<std::uint8_t>(v >> 16),
                         static_cast<std::uint8_t>(v >> 24)};
    os.write(reinterpret_cast<const char*>(b), 4);
}

std::uint32_t getU32(std::istream& is)
{
    std::uint8_t b[4];
    if (!is.read(reinterpret_cast<char*>(b), 4))
        throw EclError("trace: truncated binary trace");
    return static_cast<std::uint32_t>(b[0]) |
           static_cast<std::uint32_t>(b[1]) << 8 |
           static_cast<std::uint32_t>(b[2]) << 16 |
           static_cast<std::uint32_t>(b[3]) << 24;
}

void putString(std::ostream& os, const std::string& s)
{
    putU32(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string getString(std::istream& is)
{
    std::uint32_t n = getU32(is);
    if (n > (1u << 20))
        throw EclError("trace: implausible string length in binary trace");
    std::string s(n, '\0');
    if (n && !is.read(s.data(), n))
        throw EclError("trace: truncated binary trace");
    return s;
}

void putEvent(std::ostream& os, const TraceEvent& ev)
{
    putU32(os, ev.signal);
    os.put(ev.value.empty() ? 0 : 1);
    if (!ev.value.empty()) {
        putU32(os, static_cast<std::uint32_t>(ev.value.size()));
        os.write(reinterpret_cast<const char*>(ev.value.data()),
                 static_cast<std::streamsize>(ev.value.size()));
    }
}

TraceEvent getEvent(std::istream& is, std::size_t signalCount)
{
    TraceEvent ev;
    ev.signal = getU32(is);
    if (ev.signal >= signalCount)
        throw EclError("trace: event signal index out of range");
    int kind = is.get();
    if (kind != 0 && kind != 1)
        throw EclError("trace: bad event kind in binary trace");
    if (kind == 1) {
        std::uint32_t n = getU32(is);
        if (n > (1u << 20))
            throw EclError("trace: implausible value size in binary trace");
        ev.value.resize(n);
        if (n && !is.read(reinterpret_cast<char*>(ev.value.data()), n))
            throw EclError("trace: truncated binary trace");
    }
    return ev;
}

} // namespace

std::string InputTrace::outputLog() const
{
    std::ostringstream out;
    for (std::size_t t = 0; t < instants.size(); ++t) {
        const TraceInstant& in = instants[t];
        out << 't' << t << ':';
        for (const TraceEvent& ev : in.outputs) {
            out << signals[ev.signal].name;
            if (!ev.value.empty()) out << '=' << hexBytes(ev.value);
            out << ';';
        }
        out << (in.terminated ? 'T' : '.') << (in.autoResume ? 'a' : '.')
            << '\n';
    }
    return out.str();
}

TraceWriter::TraceWriter(const ModuleSema& sema, std::string moduleName)
    : sema_(sema)
{
    trace_.module = std::move(moduleName);
    trace_.signals.reserve(sema.signals.size());
    for (const SignalInfo& s : sema.signals) {
        InputTrace::SignalDesc d;
        d.name = s.name;
        d.input = s.dir == SignalDir::Input;
        d.output = s.dir == SignalDir::Output;
        d.pure = s.pure;
        d.valueSize = s.pure ? 0
                             : static_cast<std::uint32_t>(s.valueType->size());
        trace_.signals.push_back(std::move(d));
    }
}

void TraceWriter::input(int sigIndex)
{
    TraceEvent ev;
    ev.signal = static_cast<std::uint32_t>(sigIndex);
    pending_.inputs.push_back(std::move(ev));
}

void TraceWriter::inputValue(int sigIndex, const Value& v)
{
    TraceEvent ev;
    ev.signal = static_cast<std::uint32_t>(sigIndex);
    ev.value.assign(v.data(), v.data() + v.size());
    pending_.inputs.push_back(std::move(ev));
}

void TraceWriter::endInstant(const ReactiveEngine& eng)
{
    std::vector<TraceEvent> outputs;
    for (const SignalInfo& s : sema_.signals) {
        if (s.dir != SignalDir::Output) continue;
        if (!eng.outputPresent(s.index)) continue;
        TraceEvent ev;
        ev.signal = static_cast<std::uint32_t>(s.index);
        if (!s.pure) {
            Value v = eng.outputValue(s.index);
            ev.value.assign(v.data(), v.data() + v.size());
        }
        outputs.push_back(std::move(ev));
    }
    endInstantRaw(std::move(outputs), eng.terminated(),
                  eng.needsAutoResume());
}

void TraceWriter::endInstantRaw(std::vector<TraceEvent> outputs,
                                bool terminated, bool autoResume)
{
    pending_.outputs = std::move(outputs);
    pending_.terminated = terminated;
    pending_.autoResume = autoResume;
    trace_.instants.push_back(std::move(pending_));
    pending_ = TraceInstant{};
}

void writeTrace(const InputTrace& trace, std::ostream& os, TraceFormat fmt)
{
    if (fmt == TraceFormat::Binary) {
        os.write(kBinaryMagic, sizeof kBinaryMagic);
        putU32(os, InputTrace::kVersion);
        putString(os, trace.module);
        putU32(os, static_cast<std::uint32_t>(trace.signals.size()));
        for (const InputTrace::SignalDesc& d : trace.signals) {
            putString(os, d.name);
            std::uint8_t flags = (d.input ? 1 : 0) | (d.output ? 2 : 0) |
                                 (d.pure ? 4 : 0);
            os.put(static_cast<char>(flags));
            putU32(os, d.valueSize);
        }
        putU32(os, static_cast<std::uint32_t>(trace.instants.size()));
        for (const TraceInstant& in : trace.instants) {
            putU32(os, static_cast<std::uint32_t>(in.inputs.size()));
            for (const TraceEvent& ev : in.inputs) putEvent(os, ev);
            putU32(os, static_cast<std::uint32_t>(in.outputs.size()));
            for (const TraceEvent& ev : in.outputs) putEvent(os, ev);
            os.put(static_cast<char>((in.terminated ? 1 : 0) |
                                     (in.autoResume ? 2 : 0)));
        }
    } else {
        os << kTextMagic << ' ' << InputTrace::kVersion << '\n';
        os << "module " << trace.module << '\n';
        for (const InputTrace::SignalDesc& d : trace.signals) {
            os << "signal " << d.name << ' '
               << (d.input ? "in" : d.output ? "out" : "local") << ' ';
            if (d.pure)
                os << "pure";
            else
                os << 'v' << d.valueSize;
            os << '\n';
        }
        os << "instants " << trace.instants.size() << '\n';
        for (std::size_t t = 0; t < trace.instants.size(); ++t) {
            const TraceInstant& in = trace.instants[t];
            os << '@' << t << '\n';
            for (const TraceEvent& ev : in.inputs) {
                os << "in " << trace.signals[ev.signal].name;
                if (!ev.value.empty()) os << ' ' << hexBytes(ev.value);
                os << '\n';
            }
            for (const TraceEvent& ev : in.outputs) {
                os << "out " << trace.signals[ev.signal].name;
                if (!ev.value.empty()) os << ' ' << hexBytes(ev.value);
                os << '\n';
            }
            os << "end " << (in.terminated ? 'T' : '-') << ' '
               << (in.autoResume ? 'a' : '-') << '\n';
        }
    }
    if (!os) throw EclError("trace: write failed");
}

void writeTraceFile(const InputTrace& trace, const std::string& path,
                    TraceFormat fmt)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) throw EclError("trace: cannot open '" + path + "' for write");
    writeTrace(trace, os, fmt);
}

namespace {

InputTrace readBinaryTrace(std::istream& is)
{
    // Magic already consumed by the sniffing caller.
    InputTrace trace;
    std::uint32_t version = getU32(is);
    if (version != InputTrace::kVersion)
        throw EclError("trace: unsupported binary trace version " +
                       std::to_string(version));
    trace.module = getString(is);
    std::uint32_t nsig = getU32(is);
    if (nsig > (1u << 20)) throw EclError("trace: implausible signal count");
    trace.signals.resize(nsig);
    for (InputTrace::SignalDesc& d : trace.signals) {
        d.name = getString(is);
        int flags = is.get();
        if (flags < 0) throw EclError("trace: truncated binary trace");
        d.input = (flags & 1) != 0;
        d.output = (flags & 2) != 0;
        d.pure = (flags & 4) != 0;
        d.valueSize = getU32(is);
    }
    std::uint32_t ninst = getU32(is);
    if (ninst > (1u << 26))
        throw EclError("trace: implausible instant count");
    trace.instants.resize(ninst);
    for (TraceInstant& in : trace.instants) {
        std::uint32_t nin = getU32(is);
        if (nin > nsig * 2 + 16)
            throw EclError("trace: implausible input-event count");
        in.inputs.reserve(nin);
        for (std::uint32_t i = 0; i < nin; ++i)
            in.inputs.push_back(getEvent(is, nsig));
        std::uint32_t nout = getU32(is);
        if (nout > nsig * 2 + 16)
            throw EclError("trace: implausible output-event count");
        in.outputs.reserve(nout);
        for (std::uint32_t i = 0; i < nout; ++i)
            in.outputs.push_back(getEvent(is, nsig));
        int flags = is.get();
        if (flags < 0) throw EclError("trace: truncated binary trace");
        in.terminated = (flags & 1) != 0;
        in.autoResume = (flags & 2) != 0;
    }
    return trace;
}

InputTrace readTextTrace(std::istream& is, const std::string& firstLine)
{
    InputTrace trace;
    {
        std::istringstream head(firstLine);
        std::string magic;
        std::uint32_t version = 0;
        head >> magic >> version;
        if (magic != kTextMagic || version != InputTrace::kVersion)
            throw EclError("trace: unsupported text trace header '" +
                           firstLine + "'");
    }
    std::unordered_map<std::string, std::uint32_t> byName;
    std::string line;
    TraceInstant* cur = nullptr;
    auto resolve = [&](const std::string& name) -> std::uint32_t {
        auto it = byName.find(name);
        if (it == byName.end())
            throw EclError("trace: event on undeclared signal '" + name +
                           "'");
        return it->second;
    };
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        std::string tok;
        ls >> tok;
        if (tok == "module") {
            ls >> trace.module;
        } else if (tok == "signal") {
            InputTrace::SignalDesc d;
            std::string dir, kind;
            ls >> d.name >> dir >> kind;
            if (d.name.empty() || kind.empty())
                throw EclError("trace: malformed signal line '" + line + "'");
            d.input = dir == "in";
            d.output = dir == "out";
            if (kind == "pure") {
                d.pure = true;
            } else if (kind[0] == 'v') {
                d.pure = false;
                d.valueSize = static_cast<std::uint32_t>(
                    std::stoul(kind.substr(1)));
            } else {
                throw EclError("trace: bad signal kind '" + kind + "'");
            }
            byName.emplace(d.name, trace.signals.size());
            trace.signals.push_back(std::move(d));
        } else if (tok == "instants") {
            std::size_t n = 0;
            ls >> n;
            trace.instants.reserve(n);
        } else if (!tok.empty() && tok[0] == '@') {
            trace.instants.emplace_back();
            cur = &trace.instants.back();
        } else if (tok == "in" || tok == "out") {
            if (!cur)
                throw EclError("trace: event before first '@' instant");
            std::string name, hex;
            ls >> name >> hex;
            TraceEvent ev;
            ev.signal = resolve(name);
            if (!hex.empty()) ev.value = parseHexBytes(hex);
            (tok == "in" ? cur->inputs : cur->outputs)
                .push_back(std::move(ev));
        } else if (tok == "end") {
            if (!cur) throw EclError("trace: 'end' before first instant");
            std::string t, a;
            ls >> t >> a;
            cur->terminated = t == "T";
            cur->autoResume = a == "a";
        } else {
            throw EclError("trace: unknown line '" + line + "'");
        }
    }
    return trace;
}

} // namespace

InputTrace readTrace(std::istream& is)
{
    char magic[8] = {};
    is.read(magic, sizeof magic);
    if (is.gcount() == 8 &&
        std::memcmp(magic, kBinaryMagic, sizeof kBinaryMagic) == 0)
        return readBinaryTrace(is);
    // Not binary: re-assemble the first line and parse as text.
    is.clear();
    std::string first(magic, magic + is.gcount());
    std::string rest;
    if (std::getline(is, rest)) first += rest;
    if (first.rfind(kTextMagic, 0) != 0)
        throw EclError("trace: unrecognized trace format");
    return readTextTrace(is, first);
}

InputTrace readTraceFile(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) throw EclError("trace: cannot open '" + path + "'");
    return readTrace(is);
}

RecordingEngine::RecordingEngine(ReactiveEngine& inner,
                                 std::string moduleName)
    : inner_(inner), writer_(inner.moduleSema(), std::move(moduleName))
{
}

void RecordingEngine::setInput(int sigIndex)
{
    inner_.setInput(sigIndex);
    writer_.input(sigIndex);
}

void RecordingEngine::setInputScalar(int sigIndex, std::int64_t v)
{
    inner_.setInputScalar(sigIndex, v);
    const SignalInfo& s =
        inner_.moduleSema().signals[static_cast<std::size_t>(sigIndex)];
    writer_.inputValue(sigIndex, Value::fromInt(s.valueType, v));
}

void RecordingEngine::setInputValue(int sigIndex, Value v)
{
    writer_.inputValue(sigIndex, v);
    inner_.setInputValue(sigIndex, std::move(v));
}

ReactionResult RecordingEngine::react()
{
    ReactionResult r = inner_.react();
    writer_.endInstant(inner_);
    return r;
}

bool RecordingEngine::outputPresent(int sigIndex) const
{
    return inner_.outputPresent(sigIndex);
}

Value RecordingEngine::outputValue(int sigIndex) const
{
    return inner_.outputValue(sigIndex);
}

bool RecordingEngine::terminated() const { return inner_.terminated(); }

bool RecordingEngine::needsAutoResume() const
{
    return inner_.needsAutoResume();
}

const ModuleSema& RecordingEngine::moduleSema() const
{
    return inner_.moduleSema();
}

const char* RecordingEngine::backendName() const
{
    return inner_.backendName();
}

std::vector<std::uint8_t> RecordingEngine::packState() const
{
    return inner_.packState();
}

std::vector<std::uint8_t> packEngineState(const SyncEngine& engine,
                                          const InstanceLayout& layout)
{
    const ModuleSema& sema = engine.moduleSema();
    std::vector<std::uint8_t> out(4 + layout.dataBytes, 0);
    const std::int32_t st = engine.currentState();
    std::memcpy(out.data(), &st, 4);
    std::uint8_t* data = out.data() + 4;
    for (std::size_t i = 0; i < sema.vars.size(); ++i) {
        const Value& v = engine.store().at(static_cast<int>(i));
        std::memcpy(data + layout.varOffsets[i], v.data(), v.size());
    }
    for (const SignalInfo& s : sema.signals) {
        if (s.pure) continue;
        const Value& v = engine.env().signalValue(s.index);
        std::memcpy(data +
                        layout.sigOffsets[static_cast<std::size_t>(s.index)],
                    v.data(), v.size());
    }
    return out;
}

std::vector<std::uint8_t> SyncEngine::packState() const
{
    return packEngineState(*this, computeInstanceLayout(moduleSema()));
}

namespace {

/// Maps trace signal indices onto the target module's signal table by
/// name, validating direction/shape so replay fails loudly on a module
/// mismatch instead of silently dropping events.
std::vector<int> mapTraceSignals(const InputTrace& trace,
                                 const ModuleSema& sema)
{
    std::vector<int> map(trace.signals.size(), -1);
    for (std::size_t i = 0; i < trace.signals.size(); ++i) {
        const InputTrace::SignalDesc& d = trace.signals[i];
        const SignalInfo* s = sema.findSignal(d.name);
        if (!s) {
            // Only signals that actually carry events must resolve.
            continue;
        }
        if (s->pure != d.pure ||
            (!s->pure && s->valueType->size() != d.valueSize))
            throw EclError("trace: signal '" + d.name +
                           "' shape differs from the recording");
        map[i] = s->index;
    }
    return map;
}

int mappedSignal(const std::vector<int>& map, const InputTrace& trace,
                 std::uint32_t idx)
{
    int s = map[idx];
    if (s < 0)
        throw EclError("trace: signal '" + trace.signals[idx].name +
                       "' missing from the replay module");
    return s;
}

/// Engine-shape adapter so any ReactiveEngine (sync VM, native) and a
/// BatchEngine instance replay through one loop.
struct SyncDriver {
    ReactiveEngine& eng;
    const ModuleSema& sema() const { return eng.moduleSema(); }
    void setPure(int idx) { eng.setInput(idx); }
    void setValue(int idx, Value v) { eng.setInputValue(idx, std::move(v)); }
    ReactionResult react() { return eng.react(); }
    bool outputPresent(int idx) const { return eng.outputPresent(idx); }
    Value outputValue(int idx) const { return eng.outputValue(idx); }
    bool terminated() const { return eng.terminated(); }
    bool autoResume() const { return eng.needsAutoResume(); }
    std::vector<std::uint8_t> packState() const { return eng.packState(); }
};

struct BatchDriver {
    BatchEngine& batch;
    std::size_t inst;
    const ModuleSema& sema() const { return batch.moduleSema(); }
    void setPure(int idx) { batch.setInput(inst, idx); }
    void setValue(int idx, Value v) { batch.setInputValue(inst, idx, v); }
    ReactionResult react()
    {
        batch.stepAll();
        return batch.lastResult(inst);
    }
    bool outputPresent(int idx) const
    {
        return batch.outputPresent(inst, idx);
    }
    Value outputValue(int idx) const { return batch.outputValue(inst, idx); }
    bool terminated() const { return batch.terminated(inst); }
    bool autoResume() const { return batch.needsAutoResume(inst); }
    std::vector<std::uint8_t> packState() const
    {
        return batch.packInstanceState(inst);
    }
};

template <typename Driver>
TraceReplayResult replayCore(Driver drv, const InputTrace& trace,
                             const TraceReplayOptions& opts)
{
    const ModuleSema& sema = drv.sema();
    const std::vector<int> map = mapTraceSignals(trace, sema);
    TraceReplayResult res;
    std::ostringstream log;

    for (std::size_t t = 0; t < trace.instants.size(); ++t) {
        const TraceInstant& in = trace.instants[t];
        for (const TraceEvent& ev : in.inputs) {
            int idx = mappedSignal(map, trace, ev.signal);
            if (ev.value.empty()) {
                drv.setPure(idx);
            } else {
                const SignalInfo& s =
                    sema.signals[static_cast<std::size_t>(idx)];
                drv.setValue(idx,
                             Value::fromBytes(s.valueType, ev.value.data()));
            }
        }
        ReactionResult r;
        try {
            r = drv.react();
        } catch (const EclError& e) {
            res.outputsMatch = false;
            res.mismatch = "runtime trap at instant " + std::to_string(t) +
                           ": " + e.what();
            res.outputDigest = hex64(fnv1a64(log.str()));
            return res;
        }
        res.treeTests += r.treeTests;
        res.actionsRun += r.actionsRun;
        res.emitsRun += r.emitsRun;
        res.dataCounters += r.dataCounters;
        ++res.instants;

        // Canonical output sampling: ascending output-signal index — the
        // same order TraceWriter::endInstant records.
        std::vector<TraceEvent> outputs;
        for (const SignalInfo& s : sema.signals) {
            if (s.dir != SignalDir::Output) continue;
            if (!drv.outputPresent(s.index)) continue;
            TraceEvent ev;
            ev.signal = static_cast<std::uint32_t>(s.index);
            if (!s.pure) {
                Value v = drv.outputValue(s.index);
                ev.value.assign(v.data(), v.data() + v.size());
            }
            outputs.push_back(std::move(ev));
        }
        const bool term = drv.terminated();
        const bool resume = drv.autoResume();

        log << 't' << t << ':';
        for (const TraceEvent& ev : outputs) {
            log << sema.signals[static_cast<std::size_t>(ev.signal)].name;
            if (!ev.value.empty()) log << '=' << hexBytes(ev.value);
            log << ';';
        }
        log << (term ? 'T' : '.') << (resume ? 'a' : '.') << '\n';

        if (opts.checkOutputs && res.outputsMatch) {
            auto mismatchAt = [&](const std::string& what) {
                res.outputsMatch = false;
                res.mismatch =
                    "instant " + std::to_string(t) + ": " + what;
            };
            if (outputs.size() != in.outputs.size()) {
                mismatchAt("output count " +
                           std::to_string(outputs.size()) + " vs recorded " +
                           std::to_string(in.outputs.size()));
            } else {
                for (std::size_t i = 0; i < outputs.size(); ++i) {
                    const std::string& recName =
                        trace.signals[in.outputs[i].signal].name;
                    const std::string& curName =
                        sema.signals[static_cast<std::size_t>(
                                         outputs[i].signal)]
                            .name;
                    if (recName != curName) {
                        mismatchAt("output '" + curName +
                                   "' vs recorded '" + recName + "'");
                        break;
                    }
                    if (outputs[i].value != in.outputs[i].value) {
                        mismatchAt("value of '" + curName + "' differs");
                        break;
                    }
                }
                if (res.outputsMatch && (term != in.terminated ||
                                         resume != in.autoResume))
                    mismatchAt("termination/auto-resume flags differ");
            }
        }
    }
    res.outputDigest = hex64(fnv1a64(log.str()));
    res.finalState = drv.packState();
    return res;
}

} // namespace

TraceReplayResult replayTrace(ReactiveEngine& engine, const InputTrace& trace,
                              const TraceReplayOptions& opts)
{
    return replayCore(SyncDriver{engine}, trace, opts);
}

TraceReplayResult replayTrace(BatchEngine& batch, std::size_t inst,
                              const InputTrace& trace,
                              const TraceReplayOptions& opts)
{
    return replayCore(BatchDriver{batch, inst}, trace, opts);
}

} // namespace ecl::rt
