#include "src/runtime/trace.h"

#include <algorithm>

namespace ecl::rt {

TraceRecorder::TraceRecorder(const ModuleSema& sema,
                             std::vector<std::string> signals)
    : sema_(sema)
{
    auto wanted = [&](const std::string& name) {
        return signals.empty() ||
               std::find(signals.begin(), signals.end(), name) !=
                   signals.end();
    };
    for (const SignalInfo& s : sema.signals) {
        if (!wanted(s.name)) continue;
        Track t;
        t.name = s.name;
        t.signalIndex = s.index;
        t.valued = !s.pure && s.valueType->isScalar();
        tracks_.push_back(std::move(t));
    }
}

void TraceRecorder::sample(const SyncEngine& engine)
{
    for (Track& t : tracks_) {
        bool present = false;
        // outputPresent works for any signal by name (observability API).
        present = engine.outputPresent(t.name);
        t.present.push_back(present);
        if (t.valued) {
            std::int64_t v = engine.env().signalValue(t.signalIndex).toInt();
            t.values.push_back(v);
        }
    }
    ++instants_;
}

void TraceRecorder::sampleRaw(const std::vector<bool>& present,
                              const std::vector<std::int64_t>& values)
{
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        Track& t = tracks_[i];
        t.present.push_back(i < present.size() && present[i]);
        if (t.valued)
            t.values.push_back(i < values.size() ? values[i] : 0);
    }
    ++instants_;
}

namespace {

/// VCD identifier characters start at '!' (33).
std::string vcdId(std::size_t n)
{
    std::string id;
    do {
        id += static_cast<char>('!' + n % 94);
        n /= 94;
    } while (n);
    return id;
}

} // namespace

std::string TraceRecorder::toVcd(const std::string& moduleName) const
{
    std::string out;
    out += "$date ecl trace $end\n";
    out += "$version ecl reactive runtime $end\n";
    out += "$timescale 1ns $end\n";
    out += "$scope module " + moduleName + " $end\n";
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        const Track& t = tracks_[i];
        out += "$var wire 1 " + vcdId(2 * i) + " " + t.name + " $end\n";
        if (t.valued)
            out += "$var integer 64 " + vcdId(2 * i + 1) + " " + t.name +
                   "_val $end\n";
    }
    out += "$upscope $end\n$enddefinitions $end\n";

    std::vector<signed char> lastPresent(tracks_.size(), -1);
    std::vector<std::int64_t> lastValue(tracks_.size(),
                                        std::int64_t{0x7fffffffffffffff});
    for (std::size_t inst = 0; inst < instants_; ++inst) {
        std::string changes;
        for (std::size_t i = 0; i < tracks_.size(); ++i) {
            const Track& t = tracks_[i];
            signed char p = t.present[inst] ? 1 : 0;
            if (p != lastPresent[i]) {
                changes += std::string(p ? "1" : "0") + vcdId(2 * i) + "\n";
                lastPresent[i] = p;
            }
            if (t.valued && t.values[inst] != lastValue[i]) {
                // Binary value dump.
                std::uint64_t raw =
                    static_cast<std::uint64_t>(t.values[inst]);
                std::string bits;
                if (raw == 0) bits = "0";
                while (raw) {
                    bits += (raw & 1) ? '1' : '0';
                    raw >>= 1;
                }
                std::reverse(bits.begin(), bits.end());
                changes += "b" + bits + " " + vcdId(2 * i + 1) + "\n";
                lastValue[i] = t.values[inst];
            }
        }
        if (!changes.empty() || inst == 0)
            out += "#" + std::to_string(inst) + "\n" + changes;
    }
    out += "#" + std::to_string(instants_) + "\n";
    return out;
}

std::string TraceRecorder::toTimeline() const
{
    std::size_t nameWidth = 0;
    for (const Track& t : tracks_)
        nameWidth = std::max(nameWidth, t.name.size());
    std::string out;
    for (const Track& t : tracks_) {
        out += t.name;
        out.append(nameWidth - t.name.size() + 1, ' ');
        for (std::size_t i = 0; i < instants_; ++i)
            out += t.present[i] ? '#' : '.';
        out += '\n';
    }
    return out;
}

} // namespace ecl::rt
