#include "src/runtime/signal_env.h"

namespace ecl::rt {

SignalEnv::SignalEnv(const ModuleSema& sema) : sema_(sema)
{
    present_.assign(sema.signals.size(), false);
    values_.reserve(sema.signals.size());
    for (const SignalInfo& s : sema.signals)
        values_.emplace_back(s.pure ? Value{} : Value(s.valueType));
}

void SignalEnv::beginInstant()
{
    present_.assign(present_.size(), false);
}

void SignalEnv::setPresent(int idx)
{
    present_[static_cast<std::size_t>(idx)] = true;
}

void SignalEnv::setValue(int idx, Value v)
{
    const SignalInfo& info = sema_.signals[static_cast<std::size_t>(idx)];
    if (info.pure)
        throw EclError("cannot set a value on pure signal '" + info.name +
                       "'");
    present_[static_cast<std::size_t>(idx)] = true;
    Value& slot = values_[static_cast<std::size_t>(idx)];
    if (info.valueType->isScalar())
        slot = Value::fromInt(info.valueType, v.toInt());
    else if (v.type() == info.valueType)
        slot = std::move(v);
    else
        throw EclError("signal value type mismatch for '" + info.name + "'");
}

const Value& SignalEnv::signalValue(int idx) const
{
    const Value& v = values_[static_cast<std::size_t>(idx)];
    if (v.empty())
        throw EclError("value read on pure signal '" +
                       sema_.signals[static_cast<std::size_t>(idx)].name +
                       "'");
    return v;
}

std::vector<int> SignalEnv::presentWithDir(SignalDir dir) const
{
    std::vector<int> out;
    for (std::size_t i = 0; i < present_.size(); ++i)
        if (present_[i] && sema_.signals[i].dir == dir)
            out.push_back(static_cast<int>(i));
    return out;
}

std::size_t SignalEnv::valueBytes() const
{
    std::size_t n = 0;
    for (const Value& v : values_) n += v.size();
    return n;
}

} // namespace ecl::rt
