// AOT native backend harness: compile the generated C, dlopen it, and
// run it behind the common ReactiveEngine interface.
//
// NativeModule::build() takes the translation unit emitted by
// codegen::generateC(), invokes a host C compiler on it ($CC if set,
// else the first of cc/gcc/clang that works), caches the shared object
// by source+compiler hash (ECL_NATIVE_CACHE_DIR, default a directory
// under the system temp dir, write-then-rename so concurrent builds are
// safe), loads it with dlopen and resolves `ecl_module_info` +
// `ecl_native_react`. Every failure mode — ECL_NATIVE_DISABLE set, no
// working compiler, compile error, ABI version mismatch — throws
// EclError; CompiledModule::makeEngine(EngineKind::Native) catches that
// and falls back to the bytecode VM.
//
// NativeEngine is the drop-in SyncEngine replacement over a loaded
// module: instance state lives in one arena laid out by
// computeInstanceLayout() (byte-compatible with packEngineState / batch
// arenas / the verifier), presence is one byte per signal, and each
// react() stack-builds an EclNativeCtx for the compiled reaction
// function. Input staging, instant open/close, presence snapshots and
// every error string mirror SyncEngine exactly so the two are
// differentially testable down to trap messages.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/efsm/flatten.h"
#include "src/runtime/engine.h"
#include "src/runtime/instance_layout.h"
#include "src/runtime/native_abi.h"
#include "src/sema/sema.h"

namespace ecl::rt {

class NativeModule {
public:
    /// Compiles + loads `cSource`; throws EclError when the native
    /// backend is unavailable (see file comment). `moduleName` only
    /// names cache artifacts and error messages.
    static std::shared_ptr<const NativeModule>
    build(const std::string& cSource, const std::string& moduleName);

    NativeModule(const NativeModule&) = delete;
    NativeModule& operator=(const NativeModule&) = delete;
    ~NativeModule();

    [[nodiscard]] const EclNativeInfo& info() const { return *info_; }
    [[nodiscard]] EclNativeReactFn react() const { return react_; }
    /// The cached shared object backing this module (diagnostics).
    [[nodiscard]] const std::string& objectPath() const { return soPath_; }
    /// The compiler command that produced it ("" on a cache hit).
    [[nodiscard]] const std::string& compiler() const { return compiler_; }

private:
    NativeModule() = default;

    void* handle_ = nullptr;
    const EclNativeInfo* info_ = nullptr;
    EclNativeReactFn react_ = nullptr;
    std::string soPath_;
    std::string compiler_;
};

/// Backward-branch budget a fresh reaction starts from — the native
/// analogue of bc::Vm's op budget (see c_gen.h on the approximation).
/// NativeEngine spends it across the engine's lifetime exactly like the
/// VM's lifetime op budget; BatchEngine reseeds it per reaction,
/// mirroring the batch VM path's per-reaction resetOpWindow().
inline constexpr std::int64_t kNativeReactFuel = 500'000'000;

/// Validates a loaded module's shape record against the host tables it
/// is about to run over (data layout, signal/state counts, initial
/// state); throws EclError on any mismatch (stale cache, wrong flat
/// tables). Shared by NativeEngine, BatchEngine and makeBatchEngine so
/// every native entry point rejects a mismatched module the same way.
void validateNativeShape(const EclNativeInfo& info, const ModuleSema& sema,
                         const efsm::FlatProgram& flat,
                         const InstanceLayout& layout);

class NativeEngine final : public ReactiveEngine {
public:
    /// The flat tables must be the ones the module was generated from
    /// (state attributes are read from them); the constructor validates
    /// the module's shape record against them and the instance layout.
    NativeEngine(const ModuleSema& sema, const efsm::FlatProgram& flat,
                 std::shared_ptr<const NativeModule> module);

    using ReactiveEngine::outputPresent;
    using ReactiveEngine::outputValue;
    using ReactiveEngine::setInput;
    using ReactiveEngine::setInputScalar;
    using ReactiveEngine::setInputValue;

    void setInput(int sigIndex) override;
    void setInputScalar(int sigIndex, std::int64_t v) override;
    void setInputValue(int sigIndex, Value v) override;
    ReactionResult react() override;

    [[nodiscard]] bool outputPresent(int sigIndex) const override;
    [[nodiscard]] Value outputValue(int sigIndex) const override;
    [[nodiscard]] bool terminated() const override;
    [[nodiscard]] bool needsAutoResume() const override;
    [[nodiscard]] const ModuleSema& moduleSema() const override
    {
        return sema_;
    }
    [[nodiscard]] const char* backendName() const override
    {
        return "native";
    }
    [[nodiscard]] std::vector<std::uint8_t> packState() const override;

    [[nodiscard]] int currentState() const { return state_; }
    [[nodiscard]] const NativeModule& nativeModule() const
    {
        return *module_;
    }

private:
    const SignalInfo& checkInput(int sigIndex) const;
    void beginInput();

    const ModuleSema& sema_;
    const efsm::FlatProgram& flat_;
    std::shared_ptr<const NativeModule> module_;
    InstanceLayout layout_;
    std::vector<std::uint8_t> arena_;
    std::vector<std::uint8_t> present_;
    std::vector<std::uint8_t> lastPresent_;
    std::vector<std::int32_t> emitted_;
    int state_ = 0;
    std::int64_t fuel_ = 0;
    bool instantOpen_ = false;
};

} // namespace ecl::rt
