// Signal environment: per-instant presence flags plus persistent values.
//
// Esterel rules implemented here (docs/LANGUAGE.md, "Reactive statements"):
//  * presence is per instant (cleared between reactions),
//  * a valued signal keeps its value until the next emission,
//  * a never-emitted valued signal reads as zero (defined for determinism).
#pragma once

#include <string>
#include <vector>

#include "src/interp/eval.h"
#include "src/interp/value.h"
#include "src/sema/sema.h"

namespace ecl::rt {

class SignalEnv final : public SignalReader {
public:
    explicit SignalEnv(const ModuleSema& sema);

    /// Clears all presence flags (start of a new instant).
    void beginInstant();

    void setPresent(int idx);
    void setValue(int idx, Value v); ///< Emits: marks present + stores value.

    [[nodiscard]] bool isPresent(int idx) const
    {
        return present_[static_cast<std::size_t>(idx)];
    }

    const Value& signalValue(int idx) const override;

    /// Indices of currently-present signals with the given direction.
    [[nodiscard]] std::vector<int> presentWithDir(SignalDir dir) const;

    [[nodiscard]] std::size_t signalCount() const { return present_.size(); }

    /// Total bytes of value storage (for the memory model).
    [[nodiscard]] std::size_t valueBytes() const;

private:
    const ModuleSema& sema_;
    std::vector<bool> present_;
    std::vector<Value> values_; ///< Empty Value for pure signals.
};

} // namespace ecl::rt
