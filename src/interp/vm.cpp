#include "src/interp/vm.h"

#include <cstring>

namespace ecl::bc {

namespace {

[[noreturn]] void fail(SourceLoc loc, const std::string& msg)
{
    throw EclError(loc, "runtime: " + msg);
}

/// Copies an aggregate into the register's owned scratch buffer (grows
/// once; steady-state reactions reuse the capacity).
void setAggregate(auto& reg, const Type* t, const std::uint8_t* src)
{
    reg.type = t;
    reg.buf.resize(t->size());
    std::memcpy(reg.buf.data(), src, t->size());
    reg.ptr = reg.buf.data();
}

} // namespace

Vm::Vm(std::shared_ptr<const Program> prog, Store* moduleStore,
       const SignalReader* signals)
    : prog_(std::move(prog)), moduleStore_(moduleStore), signals_(signals)
{
}

Vm::Vm(std::shared_ptr<const Program> prog)
    : prog_(std::move(prog)), moduleStore_(nullptr), signals_(nullptr)
{
}

Vm::RegFile& Vm::fileForDepth(int depth)
{
    auto d = static_cast<std::size_t>(depth);
    while (regPool_.size() <= d)
        regPool_.push_back(std::make_unique<RegFile>(prog_->maxRegs));
    return *regPool_[d];
}

std::unique_ptr<Store> Vm::acquireStore(int fnIndex)
{
    auto f = static_cast<std::size_t>(fnIndex);
    if (storePool_.size() <= f) storePool_.resize(f + 1);
    if (!storePool_[f].empty()) {
        std::unique_ptr<Store> s = std::move(storePool_[f].back());
        storePool_[f].pop_back();
        // The Evaluator builds a fresh zero-initialized frame per call.
        for (std::size_t i = 0; i < s->count(); ++i)
            s->at(static_cast<int>(i)).zero();
        return s;
    }
    return std::make_unique<Store>(
        *prog_->functions[f].vars);
}

void Vm::releaseStore(int fnIndex, std::unique_ptr<Store> store)
{
    storePool_[static_cast<std::size_t>(fnIndex)].push_back(std::move(store));
}

Value Vm::runExpr(int chunk)
{
    return runExpr(chunk, *moduleStore_, *signals_);
}

bool Vm::runPredicate(int chunk)
{
    return runPredicate(chunk, *moduleStore_, *signals_);
}

void Vm::runAction(int chunk) { runAction(chunk, *moduleStore_, *signals_); }

Value Vm::runExpr(int chunk, Store& store, const SignalReader& signals)
{
    activeSignals_ = &signals;
    RegFile& regs = fileForDepth(1);
    ChunkResult r = execChunk(chunk, store, regs, 1);
    const Reg& v = regs[r.reg];
    if (v.type->isScalar()) return Value::fromInt(v.type, v.i);
    return Value::fromBytes(v.type, v.ptr);
}

bool Vm::runPredicate(int chunk, Store& store, const SignalReader& signals)
{
    activeSignals_ = &signals;
    RegFile& regs = fileForDepth(1);
    ChunkResult r = execChunk(chunk, store, regs, 1);
    return regs[r.reg].i != 0;
}

void Vm::runAction(int chunk, Store& store, const SignalReader& signals)
{
    activeSignals_ = &signals;
    execChunk(chunk, store, fileForDepth(1), 1);
}

Vm::ChunkResult Vm::execChunk(int chunk, Store& store, RegFile& regs,
                              int depth)
{
    const Instr* code = prog_->code.data();
    std::uint32_t pc = prog_->chunks[static_cast<std::size_t>(chunk)].begin;

    while (true) {
        const Instr& I = code[pc];
        if (++opsUsed_ > opBudget_)
            throw EclError(
                "runtime: op budget exceeded (runaway data loop?)");
        switch (I.op) {
        case Op::ConstInt: {
            Reg& r = regs[I.a];
            counters_.exprOps++;
            r.i = I.imm64;
            r.type = I.type;
            break;
        }
        case Op::LoadVarSc: {
            Reg& r = regs[I.a];
            counters_.loads++;
            r.i = readScalar(store.at(I.imm).data(), I.type);
            r.type = I.type;
            break;
        }
        case Op::LoadVarAg: {
            counters_.loads++;
            setAggregate(regs[I.a], I.type, store.at(I.imm).data());
            break;
        }
        case Op::LoadSig: {
            counters_.loads++;
            const Value& v = activeSignals_->signalValue(I.imm);
            Reg& r = regs[I.a];
            if (v.type()->isScalar()) {
                r.i = readScalar(v.data(), v.type());
                r.type = v.type();
            } else {
                setAggregate(r, v.type(), v.data());
            }
            break;
        }
        case Op::AddrVar: {
            Reg& r = regs[I.a];
            Value& v = store.at(I.imm);
            r.ptr = v.data();
            r.type = v.type();
            break;
        }
        case Op::AddrSig: {
            Reg& r = regs[I.a];
            // Read-only path; sema rejects writes through signal values
            // (same const_cast contract as Evaluator::evalLValue).
            const Value& v = activeSignals_->signalValue(I.imm);
            r.ptr = const_cast<std::uint8_t*>(v.data());
            r.type = v.type();
            break;
        }
        case Op::AddrIndex: {
            std::uint8_t* basePtr = regs[I.b].ptr;
            const Type* baseType = regs[I.b].type;
            std::int64_t idx = regs[I.c].i;
            counters_.exprOps++;
            if (baseType->kind() != TypeKind::Array)
                fail(I.loc, "indexing non-array");
            if (idx < 0 ||
                static_cast<std::size_t>(idx) >= baseType->count())
                fail(I.loc, "array index " + std::to_string(idx) +
                                " out of bounds [0," +
                                std::to_string(baseType->count()) + ")");
            const Type* elem = baseType->element();
            Reg& r = regs[I.a];
            r.ptr = basePtr + static_cast<std::size_t>(idx) * elem->size();
            r.type = elem;
            break;
        }
        case Op::AddrField: {
            std::uint8_t* basePtr = regs[I.b].ptr;
            Reg& r = regs[I.a];
            r.ptr = basePtr + I.imm;
            r.type = I.type;
            break;
        }
        case Op::LoadInd: {
            std::uint8_t* p = regs[I.b].ptr;
            const Type* t = regs[I.b].type;
            counters_.loads++;
            Reg& r = regs[I.a];
            if (t->isScalar()) {
                r.i = readScalar(p, t);
                r.type = t;
            } else {
                setAggregate(r, t, p);
            }
            break;
        }
        case Op::Unary: {
            std::int64_t v = regs[I.b].i;
            const Type* vt = regs[I.b].type;
            counters_.exprOps++;
            Reg& r = regs[I.a];
            switch (static_cast<ast::UnaryOp>(I.imm)) {
            case ast::UnaryOp::Plus:
                r.i = v;
                r.type = vt;
                break;
            case ast::UnaryOp::Minus:
                r.i = normalizeScalar(prog_->intType, -v);
                r.type = prog_->intType;
                break;
            case ast::UnaryOp::Not:
                r.i = v != 0 ? 0 : 1;
                r.type = prog_->boolType;
                break;
            case ast::UnaryOp::BitNot:
                if (vt->isBool()) { // `if (~crc_ok)` means logical not
                    r.i = v != 0 ? 0 : 1;
                    r.type = prog_->boolType;
                } else {
                    r.i = normalizeScalar(prog_->intType, ~v);
                    r.type = prog_->intType;
                }
                break;
            default: fail(I.loc, "bad unary op");
            }
            break;
        }
        case Op::IncDec: {
            counters_.exprOps++;
            counters_.loads++;
            counters_.stores++;
            applyIncDec(regs[I.a], I.imm, regs[I.b].ptr, regs[I.b].type);
            break;
        }
        case Op::Binary: {
            counters_.exprOps++;
            applyBinary(regs[I.a], I.imm, regs[I.b].i, regs[I.c].i, I.loc);
            break;
        }
        case Op::BinaryImm: {
            counters_.exprOps += 2; // the fused ConstInt + the binop
            applyBinary(regs[I.a], I.imm, regs[I.b].i, I.imm64, I.loc);
            break;
        }
        case Op::Cast: {
            const Reg& src = regs[I.b];
            counters_.exprOps++;
            std::int64_t raw =
                src.type->isScalar()
                    ? src.i
                    // Array reinterpretation (paper Figure 2): LE bytes.
                    : readBytesLE(src.ptr, src.type->size());
            Reg& r = regs[I.a];
            r.i = normalizeScalar(I.type, raw);
            r.type = I.type;
            break;
        }
        case Op::BoolVal: {
            std::int64_t v = regs[I.b].i;
            Reg& r = regs[I.a];
            r.i = v != 0 ? 1 : 0;
            r.type = I.type;
            break;
        }
        case Op::SetBool: {
            Reg& r = regs[I.a];
            r.i = I.imm;
            r.type = I.type;
            break;
        }
        case Op::StoreSc: {
            std::uint8_t* p = regs[I.b].ptr;
            const Type* t = regs[I.b].type;
            std::int64_t v = regs[I.c].i;
            counters_.stores++;
            writeScalar(p, t, v);
            Reg& r = regs[I.a];
            r.i = normalizeScalar(t, v);
            r.type = t;
            break;
        }
        case Op::StoreVarSc: {
            Value& slot = store.at(I.imm);
            std::int64_t v = regs[I.c].i;
            counters_.stores++;
            writeScalar(slot.data(), slot.type(), v);
            Reg& r = regs[I.a];
            r.i = normalizeScalar(slot.type(), v);
            r.type = slot.type();
            break;
        }
        case Op::IncDecVar: {
            Value& slot = store.at(static_cast<int>(I.imm64));
            counters_.exprOps++;
            counters_.loads++;
            counters_.stores++;
            applyIncDec(regs[I.a], I.imm, slot.data(), slot.type());
            break;
        }
        case Op::AddrVarOff: {
            Reg& r = regs[I.a];
            Value& v = store.at(I.imm);
            r.ptr = v.data() + I.imm64;
            r.type = I.type;
            break;
        }
        case Op::AddrSigOff: {
            Reg& r = regs[I.a];
            const Value& v = activeSignals_->signalValue(I.imm);
            // Read-only path, same const_cast contract as AddrSig.
            r.ptr = const_cast<std::uint8_t*>(v.data()) + I.imm64;
            r.type = I.type;
            break;
        }
        case Op::AddrIndexVar: {
            counters_.loads++; // the fused index LoadVarSc
            std::int64_t idx = readScalar(store.at(I.imm).data(), I.type);
            std::uint8_t* basePtr = regs[I.b].ptr;
            const Type* baseType = regs[I.b].type;
            counters_.exprOps++;
            if (baseType->kind() != TypeKind::Array)
                fail(I.loc, "indexing non-array");
            if (idx < 0 ||
                static_cast<std::size_t>(idx) >= baseType->count())
                fail(I.loc, "array index " + std::to_string(idx) +
                                " out of bounds [0," +
                                std::to_string(baseType->count()) + ")");
            const Type* elem = baseType->element();
            Reg& r = regs[I.a];
            r.ptr = basePtr + static_cast<std::size_t>(idx) * elem->size();
            r.type = elem;
            break;
        }
        case Op::StoreVarImm: {
            Value& slot = store.at(I.imm);
            counters_.exprOps++; // the fused ConstInt
            counters_.stores++;
            writeScalar(slot.data(), slot.type(), I.imm64);
            Reg& r = regs[I.a];
            r.i = normalizeScalar(slot.type(), I.imm64);
            r.type = slot.type();
            break;
        }
        case Op::StoreCompound: {
            std::uint8_t* p = regs[I.b].ptr;
            const Type* t = regs[I.b].type;
            std::int64_t b = regs[I.c].i;
            counters_.loads++;
            std::int64_t a = readScalar(p, t);
            std::int64_t v = 0;
            switch (static_cast<ast::AssignOp>(I.imm)) {
            case ast::AssignOp::Add: v = a + b; break;
            case ast::AssignOp::Sub: v = a - b; break;
            case ast::AssignOp::Mul: v = a * b; break;
            case ast::AssignOp::Div:
                if (b == 0) fail(I.loc, "division by zero");
                v = a / b;
                break;
            case ast::AssignOp::Rem:
                if (b == 0) fail(I.loc, "remainder by zero");
                v = a % b;
                break;
            case ast::AssignOp::Shl: v = a << (b & 63); break;
            case ast::AssignOp::Shr: v = a >> (b & 63); break;
            case ast::AssignOp::And: v = a & b; break;
            case ast::AssignOp::Or: v = a | b; break;
            case ast::AssignOp::Xor: v = a ^ b; break;
            case ast::AssignOp::Plain: break;
            }
            counters_.exprOps++;
            counters_.stores++;
            writeScalar(p, t, v);
            Reg& r = regs[I.a];
            r.i = normalizeScalar(t, v);
            r.type = t;
            break;
        }
        case Op::StoreAg: {
            std::uint8_t* p = regs[I.b].ptr;
            const Type* t = regs[I.b].type;
            counters_.stores++;
            counters_.aggBytes += t->size();
            // The rhs register owns a copied buffer (Evaluator semantics),
            // so overlapping union views stay well-defined.
            std::memcpy(p, regs[I.c].ptr, t->size());
            if (I.a != I.c) setAggregate(regs[I.a], t, regs[I.c].ptr);
            break;
        }
        case Op::ZeroVar: {
            store.at(I.imm).zero();
            break;
        }
        case Op::InitVar: {
            counters_.stores++;
            Value& slot = store.at(I.imm);
            const Reg& src = regs[I.b];
            if (slot.type()->isScalar())
                writeScalar(slot.data(), slot.type(), src.i);
            else
                std::memcpy(slot.data(), src.ptr, slot.size());
            break;
        }
        case Op::Jmp:
            pc = static_cast<std::uint32_t>(I.imm);
            continue;
        case Op::BranchFalse:
            counters_.branches++;
            if (!regs[I.a].i) {
                pc = static_cast<std::uint32_t>(I.imm);
                continue;
            }
            break;
        case Op::BranchTrue:
            counters_.branches++;
            if (regs[I.a].i) {
                pc = static_cast<std::uint32_t>(I.imm);
                continue;
            }
            break;
        case Op::Call: {
            const CompiledFunction& f =
                prog_->functions[static_cast<std::size_t>(I.imm)];
            counters_.calls++;
            opsUsed_ += 4;
            if (depth > 64) fail(I.loc, "call depth limit exceeded");

            std::unique_ptr<Store> frameStore = acquireStore(I.imm);
            for (std::size_t i = 0; i < f.paramCount; ++i) {
                Value& slot = frameStore->at(static_cast<int>(i));
                const Type* pt = (*f.vars)[i].type;
                const Reg& arg = regs[I.b + i];
                if (pt->isScalar())
                    writeScalar(slot.data(), pt, arg.i);
                else
                    std::memcpy(slot.data(), arg.ptr, pt->size());
            }
            RegFile& inner = fileForDepth(depth + 1);
            ChunkResult res =
                execChunk(f.chunk, *frameStore, inner, depth + 1);

            Reg& r = regs[I.a];
            if (res.returned && res.hasValue) {
                const Reg& rv = inner[res.reg];
                if (f.returnType->isScalar()) {
                    r.i = normalizeScalar(f.returnType, rv.i);
                    r.type = f.returnType;
                } else {
                    setAggregate(r, rv.type, rv.ptr);
                }
            } else if (!f.returnType->isVoid() && !res.returned) {
                fail(I.loc, "function '" + f.name +
                                "' fell off the end without return");
            } else {
                r.i = 0; // void (or value-less return): dummy zero
                r.type = prog_->intType;
            }
            releaseStore(I.imm, std::move(frameStore));
            break;
        }
        case Op::Ret:
            return {true, true, I.a};
        case Op::RetVoid:
            return {true, false, 0};
        case Op::End:
            return {false, I.a != 0xffff, I.a};
        }
        ++pc;
    }
}

void Vm::applyBinary(Reg& r, std::int32_t op, std::int64_t a, std::int64_t b,
                     SourceLoc loc)
{
    const Type* it = prog_->intType;
    const Type* bt = prog_->boolType;
    switch (static_cast<ast::BinaryOp>(op)) {
    case ast::BinaryOp::Add:
        r.i = normalizeScalar(it, a + b); r.type = it; break;
    case ast::BinaryOp::Sub:
        r.i = normalizeScalar(it, a - b); r.type = it; break;
    case ast::BinaryOp::Mul:
        r.i = normalizeScalar(it, a * b); r.type = it; break;
    case ast::BinaryOp::Div:
        if (b == 0) fail(loc, "division by zero");
        r.i = normalizeScalar(it, a / b); r.type = it; break;
    case ast::BinaryOp::Rem:
        if (b == 0) fail(loc, "remainder by zero");
        r.i = normalizeScalar(it, a % b); r.type = it; break;
    case ast::BinaryOp::Shl:
        r.i = normalizeScalar(it, a << (b & 63)); r.type = it; break;
    case ast::BinaryOp::Shr:
        r.i = normalizeScalar(it, a >> (b & 63)); r.type = it; break;
    case ast::BinaryOp::Lt: r.i = a < b; r.type = bt; break;
    case ast::BinaryOp::Gt: r.i = a > b; r.type = bt; break;
    case ast::BinaryOp::Le: r.i = a <= b; r.type = bt; break;
    case ast::BinaryOp::Ge: r.i = a >= b; r.type = bt; break;
    case ast::BinaryOp::Eq: r.i = a == b; r.type = bt; break;
    case ast::BinaryOp::Ne: r.i = a != b; r.type = bt; break;
    case ast::BinaryOp::BitAnd:
        r.i = normalizeScalar(it, a & b); r.type = it; break;
    case ast::BinaryOp::BitOr:
        r.i = normalizeScalar(it, a | b); r.type = it; break;
    case ast::BinaryOp::BitXor:
        r.i = normalizeScalar(it, a ^ b); r.type = it; break;
    default: fail(loc, "bad binary op");
    }
}

void Vm::applyIncDec(Reg& r, std::int32_t op, std::uint8_t* p, const Type* t)
{
    std::int64_t old = readScalar(p, t);
    auto uop = static_cast<ast::UnaryOp>(op);
    std::int64_t delta =
        (uop == ast::UnaryOp::PreInc || uop == ast::UnaryOp::PostInc) ? 1
                                                                      : -1;
    writeScalar(p, t, old + delta);
    bool post = uop == ast::UnaryOp::PostInc || uop == ast::UnaryOp::PostDec;
    r.i = post ? old : normalizeScalar(t, old + delta);
    r.type = t;
}

} // namespace ecl::bc
