// Register-based bytecode for the data (C) part of ECL.
//
// The tree-walking Evaluator (src/interp/eval.h) resolves names, types and
// field offsets through hash maps on every visit. This module compiles each
// data action, data predicate and emit-value expression ONCE into a flat
// instruction stream over slot-indexed variable/signal stores; the VM
// (src/interp/vm.h) then executes reactions without any per-node lookups or
// allocations. The instruction semantics mirror the Evaluator exactly —
// including the ExecCounters bumps per operation — so the cost model
// (src/cost) sees identical counter streams and the tree walker remains a
// drop-in differential-testing oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/frontend/ast.h"
#include "src/interp/eval.h"
#include "src/sema/sema.h"
#include "src/support/diagnostics.h"
#include "src/support/source_location.h"

namespace ecl::bc {

enum class Op : std::uint8_t {
    // Constants and loads (dst = a).
    ConstInt,   ///< r[a] = imm64 (pre-normalized), type; exprOps++
    LoadVarSc,  ///< r[a] = scalar store[imm]; loads++
    LoadVarAg,  ///< r[a] = bytes of store[imm] (copy); loads++
    LoadSig,    ///< r[a] = copy of signalValue(imm); loads++

    // Address computation (lvalues; dst holds ptr+type, no counters
    // except where the Evaluator counts them).
    AddrVar,    ///< r[a] = address of store[imm]
    AddrSig,    ///< r[a] = address of signalValue(imm) (read-only path)
    AddrIndex,  ///< r[a] = r[b].ptr + r[c].i * elemsize; bounds; exprOps++
    AddrField,  ///< r[a] = r[b].ptr + imm, type = field type
    LoadInd,    ///< r[a] = rvalue at address r[b]; loads++

    // Operators.
    Unary,      ///< r[a] = unop<imm>(r[b]); exprOps++
    IncDec,     ///< r[a] = ++/--/r[b]++/-- at address r[b]; exprOps,loads,stores
    Binary,     ///< r[a] = binop<imm>(r[b], r[c]); exprOps++
    Cast,       ///< r[a] = (type) r[b]; exprOps++
    BoolVal,    ///< r[a] = r[b] != 0, bool type (short-circuit tail)
    SetBool,    ///< r[a] = imm (0/1), bool type (short-circuit shortcut)

    // Stores.
    StoreSc,       ///< *r[b] = r[c] (scalar); stores++; r[a] = readback
    StoreCompound, ///< *r[b] op<imm>= r[c]; loads,exprOps,stores; r[a] = readback
    StoreAg,       ///< *r[b] = r[c] (aggregate); stores++, aggBytes; r[a] = r[c]
    ZeroVar,       ///< store[imm].zero() (declaration reset)
    InitVar,       ///< decl init: store[imm] = r[b]; stores++

    // Control flow. Branch* count ExecCounters::branches; Jmp does not.
    Jmp,         ///< pc = imm
    BranchFalse, ///< branches++; if (!r[a].i) pc = imm
    BranchTrue,  ///< branches++; if (r[a].i) pc = imm

    // Calls.
    Call,    ///< r[a] = functions[imm](r[b] .. r[b+c-1]); calls++
    Ret,     ///< return r[a] from the current chunk
    RetVoid, ///< return (no value)

    // Fused superinstructions emitted by the -O2 peephole pass
    // (src/opt/bytecode_opt.cpp); the ProgramBuilder never produces
    // them. Each bumps the EXACT counter sums of the pair it replaces,
    // so fusion alone keeps ExecCounters bit-identical.
    BinaryImm,  ///< r[a] = binop<imm>(r[b], imm64); exprOps += 2
                ///< (ConstInt + Binary fusion)
    StoreVarSc, ///< store[imm] = r[c] (scalar); stores++; r[a] = readback
                ///< (AddrVar + StoreSc fusion)
    IncDecVar,  ///< r[a] = op<imm> on scalar store[imm64];
                ///< exprOps,loads,stores (AddrVar + IncDec fusion)
    AddrVarOff, ///< r[a] = address of store[imm] + imm64, type; no
                ///< counters (AddrVar + AddrField-chain fusion)
    AddrSigOff, ///< r[a] = address of signalValue(imm) + imm64, type; no
                ///< counters (AddrSig + AddrField-chain fusion)
    AddrIndexVar, ///< r[a] = r[b].ptr + store[imm] * elemsize; bounds;
                  ///< loads++, exprOps++ (LoadVarSc + AddrIndex fusion;
                  ///< `type` is the index variable's type)
    StoreVarImm,  ///< store[imm] = imm64 (scalar); exprOps++, stores++;
                  ///< r[a] = readback (ConstInt + StoreVarSc fusion)

    End, ///< end of chunk; r[a] is the chunk result when the chunk is an
         ///< expression (a == 0xffff for statement chunks)
};

/// One instruction. `a`, `b`, `c` are register indices; `imm` carries slot
/// indices, signal indices, jump targets, operator codes or field offsets;
/// `imm64` carries literal values; `type` is the statically-known result
/// (or operand) type where the operation needs one.
struct Instr {
    Op op = Op::End;
    std::uint16_t a = 0;
    std::uint16_t b = 0;
    std::uint16_t c = 0;
    std::int32_t imm = 0;
    std::int64_t imm64 = 0;
    const Type* type = nullptr;
    SourceLoc loc{};
};

/// Half-open instruction range plus the register count the chunk needs.
struct Chunk {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::uint16_t numRegs = 0;
    bool isExpr = false; ///< Chunk produces a result value at End.
};

/// A compiled C helper function: its body chunk plus the frame layout
/// needed to build a call frame (the FunctionSemaMap must outlive this).
struct CompiledFunction {
    int chunk = -1;
    const std::vector<VarInfo>* vars = nullptr; ///< Params first.
    std::size_t paramCount = 0;
    const Type* returnType = nullptr;
    std::string name;
};

/// An immutable compiled bytecode module: every chunk shares one dense
/// instruction array (cache-friendly; no pointer chasing).
struct Program {
    std::vector<Instr> code;
    std::vector<Chunk> chunks;
    std::vector<CompiledFunction> functions;
    std::uint16_t maxRegs = 0; ///< Max numRegs over all chunks.
    const Type* intType = nullptr;
    const Type* boolType = nullptr;
};

/// Mirrors Value::fromInt's store/reload round trip without touching
/// memory: truncate to the type's byte width, then sign-/zero-extend
/// (bools normalize to 0/1).
inline std::int64_t normalizeScalar(const Type* t, std::int64_t v)
{
    if (t->isBool()) return v != 0 ? 1 : 0;
    std::size_t sz = t->size();
    if (sz >= 8) return v;
    std::uint64_t raw =
        static_cast<std::uint64_t>(v) & ((std::uint64_t{1} << (8 * sz)) - 1);
    if (t->isSigned()) {
        std::uint64_t signBit = std::uint64_t{1} << (8 * sz - 1);
        if (raw & signBit) raw |= ~((signBit << 1) - 1);
    }
    return static_cast<std::int64_t>(raw);
}

/// Compiles expressions and statements of one module (and, transitively,
/// every C helper function they call) into a Program. Chunks are memoized
/// by AST node, so the same extracted action shared by many EFSM edges
/// compiles once.
class ProgramBuilder {
public:
    ProgramBuilder(const ProgramSema& program,
                   const std::unordered_map<std::string, FunctionSema>&
                       functionSemas,
                   const ModuleSema& module);
    ~ProgramBuilder();

    /// Compiles an rvalue expression in module context; returns a chunk id.
    int compileExpr(const ast::Expr& e);

    /// Compiles a data statement in module context; returns a chunk id.
    int compileStmt(const ast::Stmt& s);

    /// Finalizes and returns the program (mutable so the post-flatten
    /// optimizer in src/opt can rewrite it before it is shared as
    /// const). The builder must not be used afterwards.
    std::shared_ptr<Program> finish();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Human-readable disassembly of one chunk (tests, debugging).
std::string disassemble(const Program& prog, int chunk);

} // namespace ecl::bc
