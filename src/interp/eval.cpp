#include "src/interp/eval.h"

#include <cstring>

namespace ecl {

using namespace ast;

Evaluator::Evaluator(
    const ProgramSema& program,
    const std::unordered_map<std::string, FunctionSema>& functionSemas,
    const ModuleSema* module, Store* moduleStore, const SignalReader* signals)
    : prog_(program), functionSemas_(functionSemas), module_(module),
      signals_(signals)
{
    if (module_) {
        Frame f;
        f.exprTypes = &module_->exprType;
        f.refKinds = &module_->refKind;
        f.vars = &module_->vars;
        f.varIndex = &module_->varIndex;
        f.store = moduleStore;
        f.isModule = true;
        frames_.push_back(f);
    }
}

void Evaluator::fail(SourceLoc loc, const std::string& msg) const
{
    throw EclError(loc, "runtime: " + msg);
}

void Evaluator::charge(std::uint64_t n)
{
    opsUsed_ += n;
    if (opsUsed_ > opBudget_)
        throw EclError("runtime: op budget exceeded (runaway data loop?)");
}

const Type* Evaluator::typeOf(const Expr& e) const
{
    const Frame& f = frames_.back();
    auto it = f.exprTypes->find(&e);
    if (it == f.exprTypes->end())
        fail(e.loc, "expression was not typed by sema (internal error)");
    return it->second;
}

RefKind Evaluator::refKindOf(const Expr& e) const
{
    const Frame& f = frames_.back();
    auto it = f.refKinds->find(&e);
    if (it == f.refKinds->end())
        fail(e.loc, "identifier was not resolved by sema (internal error)");
    return it->second;
}

Value Evaluator::convertScalar(const Value& v, const Type* target)
{
    if (v.type() == target) return v;
    return Value::fromInt(target, v.toInt());
}

Value Evaluator::evalExpr(const Expr& e) { return evalExprIn(e); }

Value Evaluator::evalExprIn(const Expr& e)
{
    charge(1);
    switch (e.kind) {
    case ExprKind::IntLit:
        counters_.exprOps++;
        return Value::fromInt(prog_.types.intType(),
                              static_cast<const IntLitExpr&>(e).value);
    case ExprKind::BoolLit:
        counters_.exprOps++;
        return Value::fromInt(prog_.types.boolType(),
                              static_cast<const BoolLitExpr&>(e).value ? 1 : 0);
    case ExprKind::Ident: {
        const auto& x = static_cast<const IdentExpr&>(e);
        switch (refKindOf(e)) {
        case RefKind::Var: {
            counters_.loads++;
            LValue lv = evalLValue(e);
            if (lv.type->isScalar())
                return Value::fromInt(lv.type, readScalar(lv.ptr, lv.type));
            return Value::fromBytes(lv.type, lv.ptr);
        }
        case RefKind::SignalValue: {
            counters_.loads++;
            if (!signals_ || !module_)
                fail(e.loc, "signal value read outside module context");
            const SignalInfo* sig = module_->findSignal(x.name);
            return signals_->signalValue(sig->index);
        }
        case RefKind::Constant: {
            counters_.exprOps++;
            return Value::fromInt(prog_.types.intType(),
                                  prog_.constants.at(x.name));
        }
        default: fail(e.loc, "bad identifier kind");
        }
    }
    case ExprKind::Unary: return evalUnary(static_cast<const UnaryExpr&>(e));
    case ExprKind::Binary: return evalBinary(static_cast<const BinaryExpr&>(e));
    case ExprKind::Assign: {
        const auto& x = static_cast<const AssignExpr&>(e);
        LValue dst = evalLValue(*x.lhs);
        Value rhs = evalExprIn(*x.rhs);
        if (x.op != AssignOp::Plain) {
            counters_.loads++;
            std::int64_t a = readScalar(dst.ptr, dst.type);
            std::int64_t b = rhs.toInt();
            std::int64_t r = 0;
            switch (x.op) {
            case AssignOp::Add: r = a + b; break;
            case AssignOp::Sub: r = a - b; break;
            case AssignOp::Mul: r = a * b; break;
            case AssignOp::Div:
                if (b == 0) fail(e.loc, "division by zero");
                r = a / b;
                break;
            case AssignOp::Rem:
                if (b == 0) fail(e.loc, "remainder by zero");
                r = a % b;
                break;
            case AssignOp::Shl: r = a << (b & 63); break;
            case AssignOp::Shr: r = a >> (b & 63); break;
            case AssignOp::And: r = a & b; break;
            case AssignOp::Or: r = a | b; break;
            case AssignOp::Xor: r = a ^ b; break;
            case AssignOp::Plain: break;
            }
            counters_.exprOps++;
            counters_.stores++;
            writeScalar(dst.ptr, dst.type, r);
            return Value::fromInt(dst.type, readScalar(dst.ptr, dst.type));
        }
        if (dst.type->isScalar()) {
            counters_.stores++;
            writeScalar(dst.ptr, dst.type, rhs.toInt());
            return Value::fromInt(dst.type, readScalar(dst.ptr, dst.type));
        }
        // Aggregate copy (same type enforced by sema).
        counters_.stores++;
        counters_.aggBytes += dst.type->size();
        std::memcpy(dst.ptr, rhs.data(), dst.type->size());
        return rhs;
    }
    case ExprKind::Cond: {
        const auto& x = static_cast<const CondExpr&>(e);
        counters_.branches++;
        return evalExprIn(*x.cond).toBool() ? evalExprIn(*x.thenExpr)
                                            : evalExprIn(*x.elseExpr);
    }
    case ExprKind::Index:
    case ExprKind::Member: {
        // May be an rvalue path into a signal value or variable.
        LValue lv = evalLValue(e);
        counters_.loads++;
        if (lv.type->isScalar())
            return Value::fromInt(lv.type, readScalar(lv.ptr, lv.type));
        return Value::fromBytes(lv.type, lv.ptr);
    }
    case ExprKind::Call: return evalCall(static_cast<const CallExpr&>(e));
    case ExprKind::Cast: {
        const auto& x = static_cast<const CastExpr&>(e);
        const Type* target = typeOf(e);
        Value v = evalExprIn(*x.operand);
        counters_.exprOps++;
        if (v.type()->isScalar()) return convertScalar(v, target);
        // Array reinterpretation (paper Figure 2): little-endian bytes.
        return Value::fromInt(target,
                              readBytesLE(v.data(), v.size()));
    }
    case ExprKind::SizeofType: {
        const auto& x = static_cast<const SizeofTypeExpr&>(e);
        const Type* t = prog_.types.lookup(x.typeName);
        counters_.exprOps++;
        return Value::fromInt(prog_.types.intType(),
                              static_cast<std::int64_t>(t->size()));
    }
    }
    fail(e.loc, "unknown expression kind");
}

LValue Evaluator::evalLValue(const Expr& e)
{
    switch (e.kind) {
    case ExprKind::Ident: {
        const auto& x = static_cast<const IdentExpr&>(e);
        RefKind rk = refKindOf(e);
        Frame& f = frames_.back();
        if (rk == RefKind::Var) {
            auto it = f.varIndex->find(x.name);
            if (it == f.varIndex->end())
                fail(e.loc, "unbound variable '" + x.name + "'");
            Value& v = f.store->at(it->second);
            return {v.data(), v.type()};
        }
        if (rk == RefKind::SignalValue) {
            // Signal values can be *read* through member/index paths:
            // `inpkt.raw.packet[i]`. Writing is rejected by sema, so a
            // const_cast-free read path would need a parallel ConstLValue;
            // we keep one LValue type and trust sema's lvalue check.
            if (!signals_ || !module_)
                fail(e.loc, "signal access outside module context");
            const SignalInfo* sig = module_->findSignal(x.name);
            const Value& v = signals_->signalValue(sig->index);
            return {const_cast<std::uint8_t*>(v.data()), v.type()};
        }
        fail(e.loc, "cannot take the address of '" + x.name + "'");
    }
    case ExprKind::Index: {
        const auto& x = static_cast<const IndexExpr&>(e);
        LValue base = evalLValue(*x.base);
        std::int64_t idx = evalExprIn(*x.index).toInt();
        counters_.exprOps++;
        if (base.type->kind() != TypeKind::Array)
            fail(e.loc, "indexing non-array");
        if (idx < 0 || static_cast<std::size_t>(idx) >= base.type->count())
            fail(e.loc, "array index " + std::to_string(idx) +
                            " out of bounds [0," +
                            std::to_string(base.type->count()) + ")");
        const Type* elem = base.type->element();
        return {base.ptr + static_cast<std::size_t>(idx) * elem->size(), elem};
    }
    case ExprKind::Member: {
        const auto& x = static_cast<const MemberExpr&>(e);
        LValue base = evalLValue(*x.base);
        const Type::Field* f = base.type->findField(x.field);
        if (!f) fail(e.loc, "no field '" + x.field + "'");
        return {base.ptr + f->offset, f->type};
    }
    default: fail(e.loc, "expression is not an lvalue");
    }
}

Value Evaluator::evalUnary(const UnaryExpr& e)
{
    counters_.exprOps++;
    switch (e.op) {
    case UnaryOp::Plus: return evalExprIn(*e.operand);
    case UnaryOp::Minus: {
        Value v = evalExprIn(*e.operand);
        return Value::fromInt(prog_.types.intType(), -v.toInt());
    }
    case UnaryOp::Not: {
        Value v = evalExprIn(*e.operand);
        return Value::fromInt(prog_.types.boolType(), v.toBool() ? 0 : 1);
    }
    case UnaryOp::BitNot: {
        Value v = evalExprIn(*e.operand);
        if (v.type()->isBool()) // paper: `if (~crc_ok)` means logical not
            return Value::fromInt(prog_.types.boolType(), v.toBool() ? 0 : 1);
        return Value::fromInt(prog_.types.intType(), ~v.toInt());
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec: {
        LValue lv = evalLValue(*e.operand);
        counters_.loads++;
        counters_.stores++;
        std::int64_t old = readScalar(lv.ptr, lv.type);
        std::int64_t delta =
            (e.op == UnaryOp::PreInc || e.op == UnaryOp::PostInc) ? 1 : -1;
        writeScalar(lv.ptr, lv.type, old + delta);
        bool post = e.op == UnaryOp::PostInc || e.op == UnaryOp::PostDec;
        return Value::fromInt(lv.type,
                              post ? old : readScalar(lv.ptr, lv.type));
    }
    }
    fail(e.loc, "bad unary op");
}

Value Evaluator::evalBinary(const BinaryExpr& e)
{
    // Short-circuit forms first.
    if (e.op == BinaryOp::LogAnd) {
        counters_.branches++;
        if (!evalExprIn(*e.lhs).toBool())
            return Value::fromInt(prog_.types.boolType(), 0);
        return Value::fromInt(prog_.types.boolType(),
                              evalExprIn(*e.rhs).toBool() ? 1 : 0);
    }
    if (e.op == BinaryOp::LogOr) {
        counters_.branches++;
        if (evalExprIn(*e.lhs).toBool())
            return Value::fromInt(prog_.types.boolType(), 1);
        return Value::fromInt(prog_.types.boolType(),
                              evalExprIn(*e.rhs).toBool() ? 1 : 0);
    }

    Value av = evalExprIn(*e.lhs);
    Value bv = evalExprIn(*e.rhs);
    std::int64_t a = av.toInt();
    std::int64_t b = bv.toInt();
    counters_.exprOps++;

    auto boolRes = [&](bool r) {
        return Value::fromInt(prog_.types.boolType(), r ? 1 : 0);
    };
    auto intRes = [&](std::int64_t r) {
        return Value::fromInt(prog_.types.intType(), r);
    };

    switch (e.op) {
    case BinaryOp::Add: return intRes(a + b);
    case BinaryOp::Sub: return intRes(a - b);
    case BinaryOp::Mul: return intRes(a * b);
    case BinaryOp::Div:
        if (b == 0) fail(e.loc, "division by zero");
        return intRes(a / b);
    case BinaryOp::Rem:
        if (b == 0) fail(e.loc, "remainder by zero");
        return intRes(a % b);
    case BinaryOp::Shl: return intRes(a << (b & 63));
    case BinaryOp::Shr: return intRes(a >> (b & 63));
    case BinaryOp::Lt: return boolRes(a < b);
    case BinaryOp::Gt: return boolRes(a > b);
    case BinaryOp::Le: return boolRes(a <= b);
    case BinaryOp::Ge: return boolRes(a >= b);
    case BinaryOp::Eq: return boolRes(a == b);
    case BinaryOp::Ne: return boolRes(a != b);
    case BinaryOp::BitAnd: return intRes(a & b);
    case BinaryOp::BitOr: return intRes(a | b);
    case BinaryOp::BitXor: return intRes(a ^ b);
    default: fail(e.loc, "bad binary op");
    }
}

Value Evaluator::evalCall(const CallExpr& e)
{
    if (e.callee == "__sizeof_expr") {
        // sizeof(expr): type is static; no evaluation of the operand.
        const Frame& f = frames_.back();
        auto it = f.exprTypes->find(e.args[0].get());
        if (it == f.exprTypes->end()) fail(e.loc, "untyped sizeof operand");
        counters_.exprOps++;
        return Value::fromInt(prog_.types.intType(),
                              static_cast<std::int64_t>(it->second->size()));
    }
    std::vector<Value> args;
    args.reserve(e.args.size());
    for (const ExprPtr& a : e.args) args.push_back(evalExprIn(*a));
    return callFunction(e.callee, std::move(args), e.loc);
}

Value Evaluator::callFunction(const std::string& name,
                              std::vector<Value> args, SourceLoc loc)
{
    counters_.calls++;
    charge(4);
    auto semaIt = functionSemas_.find(name);
    const FunctionInfo* info = prog_.findFunction(name);
    if (semaIt == functionSemas_.end() || !info)
        fail(loc, "call to unknown function '" + name + "'");
    const FunctionSema& fs = semaIt->second;

    if (frames_.size() > 64) fail(loc, "call depth limit exceeded");

    Store frameStore(fs.vars);
    // Bind parameters (by value; scalars converted).
    for (std::size_t i = 0; i < info->params.size(); ++i) {
        Value& slot = frameStore.at(static_cast<int>(i));
        const Type* pt = info->params[i].second;
        if (pt->isScalar())
            slot = convertScalar(args[i], pt);
        else
            slot = args[i];
    }

    Frame f;
    f.exprTypes = &fs.exprType;
    f.refKinds = &fs.refKind;
    f.vars = &fs.vars;
    f.varIndex = &fs.varIndex;
    f.store = &frameStore;
    f.isModule = false;
    frames_.push_back(f);

    ExecResult r;
    try {
        r = execStmtIn(*fs.decl->body);
    } catch (...) {
        frames_.pop_back();
        throw;
    }
    frames_.pop_back();

    if (r.status == ExecStatus::Return && !r.returnValue.empty())
        return info->returnType->isScalar()
                   ? convertScalar(r.returnValue, info->returnType)
                   : r.returnValue;
    if (!info->returnType->isVoid() && r.status != ExecStatus::Return)
        fail(loc, "function '" + name + "' fell off the end without return");
    return Value(prog_.types.intType()); // void: dummy zero
}

ExecResult Evaluator::execStmt(const Stmt& s) { return execStmtIn(s); }

ExecResult Evaluator::execStmtIn(const Stmt& s)
{
    charge(1);
    switch (s.kind) {
    case StmtKind::Block: {
        const auto& x = static_cast<const BlockStmt&>(s);
        for (const StmtPtr& st : x.body) {
            ExecResult r = execStmtIn(*st);
            if (r.status != ExecStatus::Normal) return r;
        }
        return {};
    }
    case StmtKind::Decl: {
        const auto& x = static_cast<const DeclStmt&>(s);
        Frame& f = frames_.back();
        for (const Declarator& d : x.decls) {
            auto it = f.varIndex->find(d.name);
            if (it == f.varIndex->end()) continue;
            Value& slot = f.store->at(it->second);
            slot.zero();
            if (d.init) {
                Value v = evalExprIn(*d.init);
                counters_.stores++;
                if (slot.type()->isScalar())
                    writeScalar(slot.data(), slot.type(), v.toInt());
                else
                    std::memcpy(slot.data(), v.data(), slot.size());
            }
        }
        return {};
    }
    case StmtKind::ExprStmt:
        evalExprIn(*static_cast<const ExprStmt&>(s).expr);
        return {};
    case StmtKind::If: {
        const auto& x = static_cast<const IfStmt&>(s);
        counters_.branches++;
        if (evalExprIn(*x.cond).toBool()) return execStmtIn(*x.thenStmt);
        if (x.elseStmt) return execStmtIn(*x.elseStmt);
        return {};
    }
    case StmtKind::While: {
        const auto& x = static_cast<const WhileStmt&>(s);
        while (true) {
            counters_.branches++;
            if (!evalExprIn(*x.cond).toBool()) break;
            ExecResult r = execStmtIn(*x.body);
            if (r.status == ExecStatus::Break) break;
            if (r.status == ExecStatus::Return) return r;
        }
        return {};
    }
    case StmtKind::DoWhile: {
        const auto& x = static_cast<const DoWhileStmt&>(s);
        while (true) {
            ExecResult r = execStmtIn(*x.body);
            if (r.status == ExecStatus::Break) break;
            if (r.status == ExecStatus::Return) return r;
            counters_.branches++;
            if (!evalExprIn(*x.cond).toBool()) break;
        }
        return {};
    }
    case StmtKind::For: {
        const auto& x = static_cast<const ForStmt&>(s);
        if (x.init) execStmtIn(*x.init);
        while (true) {
            if (x.cond) {
                counters_.branches++;
                if (!evalExprIn(*x.cond).toBool()) break;
            }
            ExecResult r = execStmtIn(*x.body);
            if (r.status == ExecStatus::Break) break;
            if (r.status == ExecStatus::Return) return r;
            if (x.step) evalExprIn(*x.step);
        }
        return {};
    }
    case StmtKind::Break: return {ExecStatus::Break, {}};
    case StmtKind::Continue: return {ExecStatus::Continue, {}};
    case StmtKind::Return: {
        const auto& x = static_cast<const ReturnStmt&>(s);
        ExecResult r;
        r.status = ExecStatus::Return;
        if (x.value) r.returnValue = evalExprIn(*x.value);
        return r;
    }
    case StmtKind::Empty: return {};
    default:
        fail(s.loc, "reactive statement reached the data evaluator "
                    "(internal error: partitioner should have split it)");
    }
}

} // namespace ecl
