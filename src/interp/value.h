// Byte-backed runtime values.
//
// Every ECL value is a typed byte buffer with little-endian scalar encoding
// and the packed layout computed by TypeTable. This gives C semantics for
// structs, arrays and — crucially for the paper's packet example — unions:
// writing `pkt.raw.packet[3]` and reading `pkt.cooked.header[3]` touch the
// same bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/sema/types.h"
#include "src/support/diagnostics.h"

namespace ecl {

/// Reads a scalar of type `t` from `p` (little-endian, sign-extended for
/// signed types; bool reads as 0/1).
std::int64_t readScalar(const std::uint8_t* p, const Type* t);

/// Writes `v` as a scalar of type `t` at `p` (little-endian, truncating).
void writeScalar(std::uint8_t* p, const Type* t, std::int64_t v);

/// Reads up to 8 bytes little-endian, zero-extended — the semantics of the
/// paper's `(int) pkt.cooked.crc` array reinterpretation cast.
std::int64_t readBytesLE(const std::uint8_t* p, std::size_t n);

/// A typed value. Normally self-contained (owns its bytes); `view()`
/// builds a non-owning alias into caller-managed storage — the batch
/// runtime keeps per-instance variable/signal bytes in contiguous arenas
/// and rebinds a small set of view Values per instance, so the VM and the
/// SignalReader interface stay unchanged. Views alias on copy: never let
/// one escape the scope that owns the storage (materialize with
/// fromBytes() instead).
class Value {
public:
    Value() = default;
    explicit Value(const Type* t) : type_(t), bytes_(t ? t->size() : 0, 0) {}

    /// Non-owning view of `t->size()` bytes at `p` (see class comment).
    static Value view(const Type* t, std::uint8_t* p)
    {
        Value out;
        out.type_ = t;
        out.ptr_ = p;
        return out;
    }

    // Moves leave the source empty (type_ cleared): size() derives from
    // the type, so a moved-from value must not keep claiming its old
    // extent over the emptied byte storage.
    Value(const Value&) = default;
    Value& operator=(const Value&) = default;
    Value(Value&& o) noexcept
        : type_(o.type_), ptr_(o.ptr_), bytes_(std::move(o.bytes_))
    {
        o.type_ = nullptr;
        o.ptr_ = nullptr;
    }
    Value& operator=(Value&& o) noexcept
    {
        if (this == &o) return *this;
        type_ = o.type_;
        ptr_ = o.ptr_;
        bytes_ = std::move(o.bytes_);
        o.type_ = nullptr;
        o.ptr_ = nullptr;
        return *this;
    }

    static Value fromInt(const Type* t, std::int64_t v)
    {
        Value out(t);
        if (!t->isScalar())
            throw EclError("Value::fromInt on non-scalar type " + t->name());
        writeScalar(out.data(), t, v);
        return out;
    }

    static Value fromBytes(const Type* t, const std::uint8_t* p)
    {
        Value out(t);
        std::memcpy(out.data(), p, t->size());
        return out;
    }

    [[nodiscard]] const Type* type() const { return type_; }
    [[nodiscard]] std::size_t size() const
    {
        return type_ ? type_->size() : 0;
    }
    [[nodiscard]] std::uint8_t* data()
    {
        return ptr_ ? ptr_ : bytes_.data();
    }
    [[nodiscard]] const std::uint8_t* data() const
    {
        return ptr_ ? ptr_ : bytes_.data();
    }
    [[nodiscard]] bool empty() const { return type_ == nullptr; }
    [[nodiscard]] bool isView() const { return ptr_ != nullptr; }

    /// Repoints a view at new storage (batch-engine instance rebasing).
    void rebind(std::uint8_t* p)
    {
        if (!ptr_) throw EclError("Value::rebind on an owning value");
        ptr_ = p;
    }

    [[nodiscard]] std::int64_t toInt() const
    {
        if (!type_ || !type_->isScalar())
            throw EclError("Value::toInt on non-scalar value");
        return readScalar(data(), type_);
    }

    [[nodiscard]] bool toBool() const { return toInt() != 0; }

    void zero()
    {
        if (std::size_t n = size()) std::memset(data(), 0, n);
    }

    friend bool operator==(const Value& a, const Value& b)
    {
        if (a.type_ != b.type_) return false;
        std::size_t n = a.size();
        return n == 0 || std::memcmp(a.data(), b.data(), n) == 0;
    }

    /// Debug rendering: scalars as numbers, aggregates as hex bytes.
    [[nodiscard]] std::string toString() const;

private:
    const Type* type_ = nullptr;
    std::uint8_t* ptr_ = nullptr; ///< View storage; null for owning values.
    std::vector<std::uint8_t> bytes_;
};

/// A reference into some value's storage: the write target of assignments.
struct LValue {
    std::uint8_t* ptr = nullptr;
    const Type* type = nullptr;
};

} // namespace ecl
