// Byte-backed runtime values.
//
// Every ECL value is a typed byte buffer with little-endian scalar encoding
// and the packed layout computed by TypeTable. This gives C semantics for
// structs, arrays and — crucially for the paper's packet example — unions:
// writing `pkt.raw.packet[3]` and reading `pkt.cooked.header[3]` touch the
// same bytes.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/sema/types.h"
#include "src/support/diagnostics.h"

namespace ecl {

/// Reads a scalar of type `t` from `p` (little-endian, sign-extended for
/// signed types; bool reads as 0/1).
std::int64_t readScalar(const std::uint8_t* p, const Type* t);

/// Writes `v` as a scalar of type `t` at `p` (little-endian, truncating).
void writeScalar(std::uint8_t* p, const Type* t, std::int64_t v);

/// Reads up to 8 bytes little-endian, zero-extended — the semantics of the
/// paper's `(int) pkt.cooked.crc` array reinterpretation cast.
std::int64_t readBytesLE(const std::uint8_t* p, std::size_t n);

/// A self-contained typed value.
class Value {
public:
    Value() = default;
    explicit Value(const Type* t) : type_(t), bytes_(t ? t->size() : 0, 0) {}

    static Value fromInt(const Type* t, std::int64_t v)
    {
        Value out(t);
        if (!t->isScalar())
            throw EclError("Value::fromInt on non-scalar type " + t->name());
        writeScalar(out.data(), t, v);
        return out;
    }

    static Value fromBytes(const Type* t, const std::uint8_t* p)
    {
        Value out(t);
        std::memcpy(out.data(), p, t->size());
        return out;
    }

    [[nodiscard]] const Type* type() const { return type_; }
    [[nodiscard]] std::size_t size() const { return bytes_.size(); }
    [[nodiscard]] std::uint8_t* data() { return bytes_.data(); }
    [[nodiscard]] const std::uint8_t* data() const { return bytes_.data(); }
    [[nodiscard]] bool empty() const { return type_ == nullptr; }

    [[nodiscard]] std::int64_t toInt() const
    {
        if (!type_ || !type_->isScalar())
            throw EclError("Value::toInt on non-scalar value");
        return readScalar(data(), type_);
    }

    [[nodiscard]] bool toBool() const { return toInt() != 0; }

    void zero() { std::fill(bytes_.begin(), bytes_.end(), 0); }

    friend bool operator==(const Value& a, const Value& b)
    {
        return a.type_ == b.type_ && a.bytes_ == b.bytes_;
    }

    /// Debug rendering: scalars as numbers, aggregates as hex bytes.
    [[nodiscard]] std::string toString() const;

private:
    const Type* type_ = nullptr;
    std::vector<std::uint8_t> bytes_;
};

/// A reference into some value's storage: the write target of assignments.
struct LValue {
    std::uint8_t* ptr = nullptr;
    const Type* type = nullptr;
};

} // namespace ecl
