#include "src/interp/bytecode.h"

namespace ecl::bc {

using namespace ast;

namespace {

constexpr std::uint16_t kNoResult = 0xffff;
constexpr std::uint16_t kMaxRegs = 60000;

} // namespace

// ---------------------------------------------------------------------------
// ProgramBuilder::Impl
// ---------------------------------------------------------------------------

struct ProgramBuilder::Impl {
    /// Name-resolution context of the chunk being compiled: the module
    /// frame or one C helper function frame (mirrors Evaluator::Frame).
    struct FrameCtx {
        const std::unordered_map<const ast::Expr*, const Type*>* exprTypes;
        const std::unordered_map<const ast::Expr*, RefKind>* refKinds;
        const std::unordered_map<std::string, int>* varIndex;
        bool isModule;
    };

    struct LoopCtx {
        std::vector<std::size_t> breakJumps;
        std::vector<std::size_t> continueJumps;
        std::size_t continueTarget = 0; ///< Valid when continueResolved.
        bool continueResolved = false;
    };

    const ProgramSema& prog;
    const std::unordered_map<std::string, FunctionSema>& functionSemas;
    const ModuleSema& module;

    Program out;
    std::unordered_map<const void*, int> chunkByNode; ///< Memoization.
    std::unordered_map<std::string, int> functionIndex;
    std::vector<std::string> pendingFunctions; ///< Bodies still to compile.
    bool finished = false;

    // --- per-chunk build state ---
    std::vector<Instr> buf;
    std::uint16_t regTop = 0;
    std::uint16_t maxReg = 0;
    FrameCtx frame{};
    std::vector<LoopCtx> loops;
    std::vector<std::size_t> endJumps; ///< Jumps to the chunk's End.
    bool inFunction = false;

    Impl(const ProgramSema& p,
         const std::unordered_map<std::string, FunctionSema>& f,
         const ModuleSema& m)
        : prog(p), functionSemas(f), module(m)
    {
        out.intType = prog.types.intType();
        out.boolType = prog.types.boolType();
    }

    [[noreturn]] void fail(SourceLoc loc, const std::string& msg) const
    {
        throw EclError(loc, "bytecode: " + msg);
    }

    // --- frame helpers (mirror Evaluator::typeOf/refKindOf) ---

    const Type* typeOf(const Expr& e) const
    {
        auto it = frame.exprTypes->find(&e);
        if (it == frame.exprTypes->end())
            fail(e.loc, "expression was not typed by sema (internal error)");
        return it->second;
    }

    RefKind refKindOf(const Expr& e) const
    {
        auto it = frame.refKinds->find(&e);
        if (it == frame.refKinds->end())
            fail(e.loc,
                 "identifier was not resolved by sema (internal error)");
        return it->second;
    }

    int varSlot(const std::string& name, SourceLoc loc) const
    {
        auto it = frame.varIndex->find(name);
        if (it == frame.varIndex->end())
            fail(loc, "unbound variable '" + name + "'");
        return it->second;
    }

    // --- emission helpers ---

    std::uint16_t alloc(SourceLoc loc)
    {
        if (regTop >= kMaxRegs) fail(loc, "register limit exceeded");
        std::uint16_t r = regTop++;
        if (regTop > maxReg) maxReg = regTop;
        return r;
    }

    std::size_t emit(Instr i)
    {
        buf.push_back(i);
        return buf.size() - 1;
    }

    std::size_t emitJmp(Op op, std::uint16_t a, SourceLoc loc)
    {
        return emit({op, a, 0, 0, -1, 0, nullptr, loc});
    }

    void patch(std::size_t at, std::size_t target)
    {
        buf[at].imm = static_cast<std::int32_t>(target);
    }

    std::size_t here() const { return buf.size(); }

    static bool isJumpOp(Op op)
    {
        return op == Op::Jmp || op == Op::BranchFalse || op == Op::BranchTrue;
    }

    // -----------------------------------------------------------------------
    // Expressions. Each genExpr deposits its result in a fresh register at
    // the current regTop and returns that index; callers reset regTop to
    // reclaim operand registers (values are dead once consumed).
    // -----------------------------------------------------------------------

    std::uint16_t genExpr(const Expr& e)
    {
        switch (e.kind) {
        case ExprKind::IntLit:
            return genConst(prog.types.intType(),
                            static_cast<const IntLitExpr&>(e).value, e.loc);
        case ExprKind::BoolLit:
            return genConst(prog.types.boolType(),
                            static_cast<const BoolLitExpr&>(e).value ? 1 : 0,
                            e.loc);
        case ExprKind::Ident: {
            const auto& x = static_cast<const IdentExpr&>(e);
            switch (refKindOf(e)) {
            case RefKind::Var: {
                const Type* t = typeOf(e);
                std::uint16_t dst = alloc(e.loc);
                emit({t->isScalar() ? Op::LoadVarSc : Op::LoadVarAg, dst, 0,
                      0, varSlot(x.name, e.loc), 0, t, e.loc});
                return dst;
            }
            case RefKind::SignalValue: {
                if (!frame.isModule)
                    fail(e.loc, "signal value read outside module context");
                const SignalInfo* sig = module.findSignal(x.name);
                if (!sig) fail(e.loc, "unknown signal '" + x.name + "'");
                std::uint16_t dst = alloc(e.loc);
                emit({Op::LoadSig, dst, 0, 0, sig->index, 0, nullptr, e.loc});
                return dst;
            }
            case RefKind::Constant:
                return genConst(prog.types.intType(),
                                prog.constants.at(x.name), e.loc);
            default: fail(e.loc, "bad identifier kind");
            }
        }
        case ExprKind::Unary: return genUnary(static_cast<const UnaryExpr&>(e));
        case ExprKind::Binary:
            return genBinary(static_cast<const BinaryExpr&>(e));
        case ExprKind::Assign:
            return genAssign(static_cast<const AssignExpr&>(e));
        case ExprKind::Cond: {
            const auto& x = static_cast<const CondExpr&>(e);
            std::uint16_t save = regTop;
            std::uint16_t rc = genExpr(*x.cond);
            std::size_t jElse = emitJmp(Op::BranchFalse, rc, e.loc);
            regTop = save;
            genExpr(*x.thenExpr); // lands in register `save`
            std::size_t jEnd = emitJmp(Op::Jmp, 0, e.loc);
            patch(jElse, here());
            regTop = save;
            genExpr(*x.elseExpr); // also lands in register `save`
            patch(jEnd, here());
            regTop = static_cast<std::uint16_t>(save + 1);
            return save;
        }
        case ExprKind::Index:
        case ExprKind::Member: {
            // Rvalue path into a variable or signal value.
            std::uint16_t save = regTop;
            std::uint16_t ra = genAddr(e);
            regTop = save;
            std::uint16_t dst = alloc(e.loc);
            emit({Op::LoadInd, dst, ra, 0, 0, 0, nullptr, e.loc});
            return dst;
        }
        case ExprKind::Call: return genCall(static_cast<const CallExpr&>(e));
        case ExprKind::Cast: {
            const auto& x = static_cast<const CastExpr&>(e);
            const Type* target = typeOf(e);
            std::uint16_t save = regTop;
            std::uint16_t rv = genExpr(*x.operand);
            regTop = save;
            std::uint16_t dst = alloc(e.loc);
            emit({Op::Cast, dst, rv, 0, 0, 0, target, e.loc});
            return dst;
        }
        case ExprKind::SizeofType: {
            const auto& x = static_cast<const SizeofTypeExpr&>(e);
            const Type* t = prog.types.lookup(x.typeName);
            if (!t) fail(e.loc, "unknown type '" + x.typeName + "'");
            return genConst(prog.types.intType(),
                            static_cast<std::int64_t>(t->size()), e.loc);
        }
        }
        fail(e.loc, "unknown expression kind");
    }

    std::uint16_t genConst(const Type* t, std::int64_t v, SourceLoc loc)
    {
        std::uint16_t dst = alloc(loc);
        emit({Op::ConstInt, dst, 0, 0, 0, normalizeScalar(t, v), t, loc});
        return dst;
    }

    /// Lvalue path: deposits {ptr, type} in a fresh register.
    std::uint16_t genAddr(const Expr& e)
    {
        switch (e.kind) {
        case ExprKind::Ident: {
            const auto& x = static_cast<const IdentExpr&>(e);
            RefKind rk = refKindOf(e);
            if (rk == RefKind::Var) {
                std::uint16_t dst = alloc(e.loc);
                emit({Op::AddrVar, dst, 0, 0, varSlot(x.name, e.loc), 0,
                      nullptr, e.loc});
                return dst;
            }
            if (rk == RefKind::SignalValue) {
                if (!frame.isModule)
                    fail(e.loc, "signal access outside module context");
                const SignalInfo* sig = module.findSignal(x.name);
                if (!sig) fail(e.loc, "unknown signal '" + x.name + "'");
                std::uint16_t dst = alloc(e.loc);
                emit({Op::AddrSig, dst, 0, 0, sig->index, 0, nullptr, e.loc});
                return dst;
            }
            fail(e.loc, "cannot take the address of '" + x.name + "'");
        }
        case ExprKind::Index: {
            const auto& x = static_cast<const IndexExpr&>(e);
            std::uint16_t save = regTop;
            std::uint16_t rb = genAddr(*x.base);
            std::uint16_t ri = genExpr(*x.index);
            regTop = save;
            std::uint16_t dst = alloc(e.loc);
            emit({Op::AddrIndex, dst, rb, ri, 0, 0, nullptr, e.loc});
            return dst;
        }
        case ExprKind::Member: {
            const auto& x = static_cast<const MemberExpr&>(e);
            std::uint16_t save = regTop;
            std::uint16_t rb = genAddr(*x.base);
            // Resolve the field offset at compile time; the Evaluator does
            // this linear search on every visit.
            const Type* baseType = typeOf(*x.base);
            const Type::Field* f = baseType->findField(x.field);
            if (!f) fail(e.loc, "no field '" + x.field + "'");
            regTop = save;
            std::uint16_t dst = alloc(e.loc);
            emit({Op::AddrField, dst, rb, 0,
                  static_cast<std::int32_t>(f->offset), 0, f->type, e.loc});
            return dst;
        }
        default: fail(e.loc, "expression is not an lvalue");
        }
    }

    std::uint16_t genUnary(const UnaryExpr& e)
    {
        switch (e.op) {
        case UnaryOp::Plus:
        case UnaryOp::Minus:
        case UnaryOp::Not:
        case UnaryOp::BitNot: {
            std::uint16_t save = regTop;
            std::uint16_t rv = genExpr(*e.operand);
            regTop = save;
            std::uint16_t dst = alloc(e.loc);
            emit({Op::Unary, dst, rv, 0, static_cast<std::int32_t>(e.op), 0,
                  nullptr, e.loc});
            return dst;
        }
        case UnaryOp::PreInc:
        case UnaryOp::PreDec:
        case UnaryOp::PostInc:
        case UnaryOp::PostDec: {
            std::uint16_t save = regTop;
            std::uint16_t ra = genAddr(*e.operand);
            regTop = save;
            std::uint16_t dst = alloc(e.loc);
            emit({Op::IncDec, dst, ra, 0, static_cast<std::int32_t>(e.op), 0,
                  nullptr, e.loc});
            return dst;
        }
        }
        fail(e.loc, "bad unary op");
    }

    std::uint16_t genBinary(const BinaryExpr& e)
    {
        if (e.op == BinaryOp::LogAnd || e.op == BinaryOp::LogOr) {
            bool isAnd = e.op == BinaryOp::LogAnd;
            std::uint16_t save = regTop;
            std::uint16_t rl = genExpr(*e.lhs);
            std::size_t jShort = emitJmp(
                isAnd ? Op::BranchFalse : Op::BranchTrue, rl, e.loc);
            regTop = save;
            std::uint16_t rr = genExpr(*e.rhs);
            regTop = save;
            std::uint16_t dst = alloc(e.loc);
            emit({Op::BoolVal, dst, rr, 0, 0, 0, prog.types.boolType(),
                  e.loc});
            std::size_t jEnd = emitJmp(Op::Jmp, 0, e.loc);
            patch(jShort, here());
            emit({Op::SetBool, dst, 0, 0, isAnd ? 0 : 1, 0,
                  prog.types.boolType(), e.loc});
            patch(jEnd, here());
            return dst;
        }
        std::uint16_t save = regTop;
        std::uint16_t ra = genExpr(*e.lhs);
        std::uint16_t rb = genExpr(*e.rhs);
        regTop = save;
        std::uint16_t dst = alloc(e.loc);
        emit({Op::Binary, dst, ra, rb, static_cast<std::int32_t>(e.op), 0,
              nullptr, e.loc});
        return dst;
    }

    std::uint16_t genAssign(const AssignExpr& e)
    {
        std::uint16_t save = regTop;
        std::uint16_t ra = genAddr(*e.lhs);
        std::uint16_t rv = genExpr(*e.rhs);
        regTop = save;
        std::uint16_t dst = alloc(e.loc);
        if (e.op != AssignOp::Plain) {
            emit({Op::StoreCompound, dst, ra, rv,
                  static_cast<std::int32_t>(e.op), 0, nullptr, e.loc});
        } else if (typeOf(*e.lhs)->isScalar()) {
            emit({Op::StoreSc, dst, ra, rv, 0, 0, nullptr, e.loc});
        } else {
            emit({Op::StoreAg, dst, ra, rv, 0, 0, nullptr, e.loc});
        }
        return dst;
    }

    std::uint16_t genCall(const CallExpr& e)
    {
        if (e.callee == "__sizeof_expr") {
            // sizeof(expr): static type, operand not evaluated.
            auto it = frame.exprTypes->find(e.args[0].get());
            if (it == frame.exprTypes->end())
                fail(e.loc, "untyped sizeof operand");
            return genConst(prog.types.intType(),
                            static_cast<std::int64_t>(it->second->size()),
                            e.loc);
        }
        std::uint16_t save = regTop;
        for (const ExprPtr& a : e.args) genExpr(*a); // consecutive registers
        int fnIdx = functionRef(e.callee, e.loc);
        regTop = save;
        std::uint16_t dst = alloc(e.loc);
        emit({Op::Call, dst, save, static_cast<std::uint16_t>(e.args.size()),
              fnIdx, 0, nullptr, e.loc});
        return dst;
    }

    /// Assigns a function index, queueing the body for compilation.
    int functionRef(const std::string& name, SourceLoc loc)
    {
        auto it = functionIndex.find(name);
        if (it != functionIndex.end()) return it->second;
        auto semaIt = functionSemas.find(name);
        const FunctionInfo* info = prog.findFunction(name);
        if (semaIt == functionSemas.end() || !info)
            fail(loc, "call to unknown function '" + name + "'");
        CompiledFunction f;
        f.vars = &semaIt->second.vars;
        f.paramCount = info->params.size();
        f.returnType = info->returnType;
        f.name = name;
        int idx = static_cast<int>(out.functions.size());
        out.functions.push_back(std::move(f));
        functionIndex.emplace(name, idx);
        pendingFunctions.push_back(name);
        return idx;
    }

    // -----------------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------------

    void genStmt(const Stmt& s)
    {
        switch (s.kind) {
        case StmtKind::Block: {
            const auto& x = static_cast<const BlockStmt&>(s);
            for (const StmtPtr& st : x.body) genStmt(*st);
            return;
        }
        case StmtKind::Decl: {
            const auto& x = static_cast<const DeclStmt&>(s);
            for (const Declarator& d : x.decls) {
                auto it = frame.varIndex->find(d.name);
                if (it == frame.varIndex->end()) continue;
                emit({Op::ZeroVar, 0, 0, 0, it->second, 0, nullptr, d.loc});
                if (d.init) {
                    std::uint16_t save = regTop;
                    std::uint16_t rv = genExpr(*d.init);
                    regTop = save;
                    emit({Op::InitVar, 0, rv, 0, it->second, 0, nullptr,
                          d.loc});
                }
            }
            return;
        }
        case StmtKind::ExprStmt: {
            std::uint16_t save = regTop;
            genExpr(*static_cast<const ExprStmt&>(s).expr);
            regTop = save;
            return;
        }
        case StmtKind::If: {
            const auto& x = static_cast<const IfStmt&>(s);
            std::uint16_t save = regTop;
            std::uint16_t rc = genExpr(*x.cond);
            regTop = save;
            std::size_t jElse = emitJmp(Op::BranchFalse, rc, s.loc);
            genStmt(*x.thenStmt);
            if (x.elseStmt) {
                std::size_t jEnd = emitJmp(Op::Jmp, 0, s.loc);
                patch(jElse, here());
                genStmt(*x.elseStmt);
                patch(jEnd, here());
            } else {
                patch(jElse, here());
            }
            return;
        }
        case StmtKind::While: {
            const auto& x = static_cast<const WhileStmt&>(s);
            std::size_t top = here();
            std::uint16_t save = regTop;
            std::uint16_t rc = genExpr(*x.cond);
            regTop = save;
            std::size_t jExit = emitJmp(Op::BranchFalse, rc, s.loc);
            loops.push_back({{}, {}, top, true});
            genStmt(*x.body);
            emit({Op::Jmp, 0, 0, 0, static_cast<std::int32_t>(top), 0,
                  nullptr, s.loc});
            patch(jExit, here());
            closeLoop(here());
            return;
        }
        case StmtKind::DoWhile: {
            const auto& x = static_cast<const DoWhileStmt&>(s);
            std::size_t top = here();
            loops.push_back({}); // continue target patched below
            genStmt(*x.body);
            std::size_t condAt = here();
            std::uint16_t save = regTop;
            std::uint16_t rc = genExpr(*x.cond);
            regTop = save;
            emit({Op::BranchTrue, rc, 0, 0, static_cast<std::int32_t>(top), 0,
                  nullptr, s.loc});
            loops.back().continueTarget = condAt;
            loops.back().continueResolved = true;
            closeLoop(here());
            return;
        }
        case StmtKind::For: {
            const auto& x = static_cast<const ForStmt&>(s);
            if (x.init) genStmt(*x.init);
            std::size_t condAt = here();
            std::size_t jExit = static_cast<std::size_t>(-1);
            if (x.cond) {
                std::uint16_t save = regTop;
                std::uint16_t rc = genExpr(*x.cond);
                regTop = save;
                jExit = emitJmp(Op::BranchFalse, rc, s.loc);
            }
            loops.push_back({}); // continue target = step, patched below
            genStmt(*x.body);
            std::size_t stepAt = here();
            if (x.step) {
                std::uint16_t save = regTop;
                genExpr(*x.step);
                regTop = save;
            }
            emit({Op::Jmp, 0, 0, 0, static_cast<std::int32_t>(condAt), 0,
                  nullptr, s.loc});
            if (jExit != static_cast<std::size_t>(-1)) patch(jExit, here());
            loops.back().continueTarget = stepAt;
            loops.back().continueResolved = true;
            closeLoop(here());
            return;
        }
        case StmtKind::Break: {
            std::size_t j = emitJmp(Op::Jmp, 0, s.loc);
            if (loops.empty())
                endJumps.push_back(j); // stray break ends the chunk
            else
                loops.back().breakJumps.push_back(j);
            return;
        }
        case StmtKind::Continue: {
            std::size_t j = emitJmp(Op::Jmp, 0, s.loc);
            if (loops.empty())
                endJumps.push_back(j);
            else
                loops.back().continueJumps.push_back(j);
            return;
        }
        case StmtKind::Return: {
            const auto& x = static_cast<const ReturnStmt&>(s);
            if (inFunction) {
                if (x.value) {
                    std::uint16_t save = regTop;
                    std::uint16_t rv = genExpr(*x.value);
                    regTop = save;
                    emit({Op::Ret, rv, 0, 0, 0, 0, nullptr, s.loc});
                } else {
                    emit({Op::RetVoid, 0, 0, 0, 0, 0, nullptr, s.loc});
                }
            } else {
                // Module-level data action: a Return just ends the action
                // (the engine discards the ExecResult), but the value's
                // side effects still run.
                if (x.value) {
                    std::uint16_t save = regTop;
                    genExpr(*x.value);
                    regTop = save;
                }
                endJumps.push_back(emitJmp(Op::Jmp, 0, s.loc));
            }
            return;
        }
        case StmtKind::Empty: return;
        default:
            fail(s.loc, "reactive statement reached the data compiler "
                        "(internal error: partitioner should have split it)");
        }
    }

    void closeLoop(std::size_t exitTarget)
    {
        LoopCtx& l = loops.back();
        for (std::size_t j : l.breakJumps) patch(j, exitTarget);
        for (std::size_t j : l.continueJumps) patch(j, l.continueTarget);
        loops.pop_back();
    }

    // -----------------------------------------------------------------------
    // Chunk lifecycle
    // -----------------------------------------------------------------------

    void beginChunk(FrameCtx ctx, bool asFunction)
    {
        buf.clear();
        regTop = 0;
        maxReg = 0;
        loops.clear();
        endJumps.clear();
        frame = ctx;
        inFunction = asFunction;
    }

    int commitChunk(std::uint16_t resultReg, bool isExpr)
    {
        for (std::size_t j : endJumps) patch(j, here());
        emit({Op::End, resultReg, 0, 0, 0, 0, nullptr, {}});

        auto base = static_cast<std::uint32_t>(out.code.size());
        Chunk c;
        c.begin = base;
        c.end = base + static_cast<std::uint32_t>(buf.size());
        c.numRegs = maxReg;
        c.isExpr = isExpr;
        for (Instr& i : buf) {
            if (isJumpOp(i.op)) i.imm += static_cast<std::int32_t>(base);
            out.code.push_back(i);
        }
        if (maxReg > out.maxRegs) out.maxRegs = maxReg;
        out.chunks.push_back(c);
        return static_cast<int>(out.chunks.size() - 1);
    }

    FrameCtx moduleCtx() const
    {
        return {&module.exprType, &module.refKind, &module.varIndex, true};
    }

    int doCompileExpr(const Expr& e)
    {
        auto it = chunkByNode.find(&e);
        if (it != chunkByNode.end()) return it->second;
        beginChunk(moduleCtx(), false);
        std::uint16_t r = genExpr(e);
        int chunk = commitChunk(r, true);
        chunkByNode.emplace(&e, chunk);
        return chunk;
    }

    int doCompileStmt(const Stmt& s)
    {
        auto it = chunkByNode.find(&s);
        if (it != chunkByNode.end()) return it->second;
        beginChunk(moduleCtx(), false);
        genStmt(s);
        int chunk = commitChunk(kNoResult, false);
        chunkByNode.emplace(&s, chunk);
        return chunk;
    }

    /// Compiles every function body queued by Call sites (transitively).
    void drainPending()
    {
        while (!pendingFunctions.empty()) {
            std::string name = std::move(pendingFunctions.back());
            pendingFunctions.pop_back();
            const FunctionSema& fs = functionSemas.at(name);
            beginChunk({&fs.exprType, &fs.refKind, &fs.varIndex, false},
                       true);
            genStmt(*fs.decl->body);
            int chunk = commitChunk(kNoResult, false);
            out.functions[static_cast<std::size_t>(functionIndex.at(name))]
                .chunk = chunk;
        }
    }
};

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

ProgramBuilder::ProgramBuilder(
    const ProgramSema& program,
    const std::unordered_map<std::string, FunctionSema>& functionSemas,
    const ModuleSema& module)
    : impl_(std::make_unique<Impl>(program, functionSemas, module))
{
}

ProgramBuilder::~ProgramBuilder() = default;

int ProgramBuilder::compileExpr(const ast::Expr& e)
{
    if (impl_->finished)
        impl_->fail(e.loc, "compileExpr after finish()");
    int chunk = impl_->doCompileExpr(e);
    impl_->drainPending();
    return chunk;
}

int ProgramBuilder::compileStmt(const ast::Stmt& s)
{
    if (impl_->finished)
        impl_->fail(s.loc, "compileStmt after finish()");
    int chunk = impl_->doCompileStmt(s);
    impl_->drainPending();
    return chunk;
}

std::shared_ptr<Program> ProgramBuilder::finish()
{
    impl_->drainPending();
    impl_->finished = true;
    auto prog = std::make_shared<Program>(std::move(impl_->out));
    return prog;
}

// ---------------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------------

std::string disassemble(const Program& prog, int chunk)
{
    static const char* names[] = {
        "const",    "ldv",   "ldva",  "ldsig",  "adrv",  "adrs", "adri",
        "adrf",     "ldind", "unary", "incdec", "bin",   "cast", "bool",
        "setb",     "stsc",  "stcmp", "stag",   "zero",  "init", "jmp",
        "brf",      "brt",   "call",  "ret",    "retv",  "binimm",
        "stvsc",    "incdv", "adrvo", "adrso",  "adriv", "stvimm", "end"};
    const Chunk& c = prog.chunks[static_cast<std::size_t>(chunk)];
    std::string s;
    for (std::uint32_t pc = c.begin; pc < c.end; ++pc) {
        const Instr& i = prog.code[pc];
        s += std::to_string(pc) + ": ";
        s += names[static_cast<std::size_t>(i.op)];
        s += " a=" + std::to_string(i.a) + " b=" + std::to_string(i.b) +
             " c=" + std::to_string(i.c) + " imm=" + std::to_string(i.imm);
        if (i.imm64) s += " imm64=" + std::to_string(i.imm64);
        if (i.type) s += " type=" + i.type->name();
        s += "\n";
    }
    return s;
}

} // namespace ecl::bc
