// Register VM executing compiled data bytecode (src/interp/bytecode.h).
//
// One Vm instance lives inside each flat-mode SyncEngine. Registers hold
// scalars unboxed (a normalized int64 plus its static Type) and aggregates
// in per-register scratch buffers that are allocated once and reused, so a
// steady-state reaction runs without heap allocation — unlike the
// tree-walking Evaluator, which builds a fresh Value per AST node. Counter
// semantics (ExecCounters) are bit-identical to the Evaluator's; the op
// budget is approximated per instruction (it is a runaway guard, not a
// metered quantity).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/interp/bytecode.h"
#include "src/interp/eval.h"
#include "src/interp/value.h"

namespace ecl::bc {

class Vm {
public:
    /// `moduleStore` and `signals` must outlive the Vm; `prog` is shared
    /// with the CompiledModule that produced it.
    Vm(std::shared_ptr<const Program> prog, Store* moduleStore,
       const SignalReader* signals);

    /// Unbound Vm: no default store/signals. Only the explicit-context
    /// entry points below may be used. The batch runtime creates one such
    /// Vm per worker thread and lends it a different instance's
    /// store/signal slice on every call, so the allocation-free scratch
    /// (register files, function frames) is shared across all instances a
    /// worker serves.
    explicit Vm(std::shared_ptr<const Program> prog);

    /// Runs an expression chunk and materializes the result as a Value
    /// (emit-value path).
    Value runExpr(int chunk);

    /// Runs an expression chunk as a condition (data-predicate path).
    bool runPredicate(int chunk);

    /// Runs a statement chunk (data-action path).
    void runAction(int chunk);

    // --- reentrant entry points: execute against caller-provided state ---
    // `store` and `signals` are borrowed for this call only; the Vm itself
    // is still single-threaded (per-worker scratch), but holds no pointer
    // to them afterwards.
    Value runExpr(int chunk, Store& store, const SignalReader& signals);
    bool runPredicate(int chunk, Store& store, const SignalReader& signals);
    void runAction(int chunk, Store& store, const SignalReader& signals);

    [[nodiscard]] const ExecCounters& counters() const { return counters_; }
    void resetCounters() { counters_.reset(); }

    /// Mirrors Evaluator::setOpBudget (runaway-loop guard over the Vm's
    /// lifetime).
    void setOpBudget(std::uint64_t budget) { opBudget_ = budget; }

    /// Restarts the op-budget window. The budget is a per-engine runaway
    /// guard; a batch worker Vm outlives thousands of instances, so the
    /// batch engine opens a fresh window per instance reaction to keep the
    /// guard's scope equivalent to one SyncEngine's.
    void resetOpWindow() { opsUsed_ = 0; }

private:
    struct Reg {
        std::int64_t i = 0;
        const Type* type = nullptr;
        std::uint8_t* ptr = nullptr;            ///< Lvalue or aggregate bytes.
        std::vector<std::uint8_t> buf;          ///< Owned aggregate scratch.
    };
    using RegFile = std::vector<Reg>;

    struct ChunkResult {
        bool returned = false; ///< Hit Ret/RetVoid (function bodies only).
        bool hasValue = false;
        std::uint16_t reg = 0;
    };

    ChunkResult execChunk(int chunk, Store& store, RegFile& regs, int depth);
    /// Shared Binary/BinaryImm arithmetic (operands already fetched).
    void applyBinary(Reg& r, std::int32_t op, std::int64_t a, std::int64_t b,
                     SourceLoc loc);
    /// Shared IncDec/IncDecVar read-modify-write on a scalar location.
    void applyIncDec(Reg& r, std::int32_t op, std::uint8_t* p, const Type* t);
    RegFile& fileForDepth(int depth);
    std::unique_ptr<Store> acquireStore(int fnIndex);
    void releaseStore(int fnIndex, std::unique_ptr<Store> store);

    std::shared_ptr<const Program> prog_;
    Store* moduleStore_;
    const SignalReader* signals_;       ///< Bound default (may be null).
    const SignalReader* activeSignals_ = nullptr; ///< This call's reader.
    ExecCounters counters_;
    std::uint64_t opBudget_ = 500'000'000;
    std::uint64_t opsUsed_ = 0;
    std::vector<std::unique_ptr<RegFile>> regPool_; ///< Indexed by depth.
    std::vector<std::vector<std::unique_ptr<Store>>> storePool_; ///< By fn.
};

} // namespace ecl::bc
