// Register VM executing compiled data bytecode (src/interp/bytecode.h).
//
// One Vm instance lives inside each flat-mode SyncEngine. Registers hold
// scalars unboxed (a normalized int64 plus its static Type) and aggregates
// in per-register scratch buffers that are allocated once and reused, so a
// steady-state reaction runs without heap allocation — unlike the
// tree-walking Evaluator, which builds a fresh Value per AST node. Counter
// semantics (ExecCounters) are bit-identical to the Evaluator's; the op
// budget is approximated per instruction (it is a runaway guard, not a
// metered quantity).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/interp/bytecode.h"
#include "src/interp/eval.h"
#include "src/interp/value.h"

namespace ecl::bc {

class Vm {
public:
    /// `moduleStore` and `signals` must outlive the Vm; `prog` is shared
    /// with the CompiledModule that produced it.
    Vm(std::shared_ptr<const Program> prog, Store* moduleStore,
       const SignalReader* signals);

    /// Runs an expression chunk and materializes the result as a Value
    /// (emit-value path).
    Value runExpr(int chunk);

    /// Runs an expression chunk as a condition (data-predicate path).
    bool runPredicate(int chunk);

    /// Runs a statement chunk (data-action path).
    void runAction(int chunk);

    [[nodiscard]] const ExecCounters& counters() const { return counters_; }
    void resetCounters() { counters_.reset(); }

    /// Mirrors Evaluator::setOpBudget (runaway-loop guard over the Vm's
    /// lifetime).
    void setOpBudget(std::uint64_t budget) { opBudget_ = budget; }

private:
    struct Reg {
        std::int64_t i = 0;
        const Type* type = nullptr;
        std::uint8_t* ptr = nullptr;            ///< Lvalue or aggregate bytes.
        std::vector<std::uint8_t> buf;          ///< Owned aggregate scratch.
    };
    using RegFile = std::vector<Reg>;

    struct ChunkResult {
        bool returned = false; ///< Hit Ret/RetVoid (function bodies only).
        bool hasValue = false;
        std::uint16_t reg = 0;
    };

    ChunkResult execChunk(int chunk, Store& store, RegFile& regs, int depth);
    RegFile& fileForDepth(int depth);
    std::unique_ptr<Store> acquireStore(int fnIndex);
    void releaseStore(int fnIndex, std::unique_ptr<Store> store);

    std::shared_ptr<const Program> prog_;
    Store* moduleStore_;
    const SignalReader* signals_;
    ExecCounters counters_;
    std::uint64_t opBudget_ = 500'000'000;
    std::uint64_t opsUsed_ = 0;
    std::vector<std::unique_ptr<RegFile>> regPool_; ///< Indexed by depth.
    std::vector<std::vector<std::unique_ptr<Store>>> storePool_; ///< By fn.
};

} // namespace ecl::bc
