// Tree-walking evaluator for the data (C) part of ECL.
//
// Executes extracted data statements, EFSM transition actions, data-predicate
// guards and emit-value expressions against a module variable store, with
// read access to signal values through the SignalReader interface. C helper
// functions are called with their own frames (arguments by value — ECL has
// no pointers; docs/LANGUAGE.md documents the deviation).
//
// The evaluator counts abstract operations (ExecCounters) which the cost
// model (src/cost) converts to MIPS-R3000-style cycles.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/frontend/ast.h"
#include "src/interp/value.h"
#include "src/sema/sema.h"
#include "src/support/diagnostics.h"

namespace ecl {

/// Read access to the current instant's signal values, provided by the
/// reactive runtime. Indexed by SignalInfo::index of the active module.
class SignalReader {
public:
    virtual ~SignalReader() = default;
    /// Returns the value buffer of a (valued) signal. Never null; a signal
    /// that was never emitted reads as zero-initialized (Esterel leaves it
    /// unspecified; we define it for determinism).
    virtual const Value& signalValue(int sigIndex) const = 0;
};

/// Abstract operation counters (converted to cycles by src/cost).
struct ExecCounters {
    std::uint64_t exprOps = 0;   ///< arithmetic/logic node evaluations
    std::uint64_t loads = 0;     ///< scalar reads (vars, signal values)
    std::uint64_t stores = 0;    ///< scalar/aggregate writes
    std::uint64_t branches = 0;  ///< if/loop/cond decisions
    std::uint64_t calls = 0;     ///< function calls
    std::uint64_t aggBytes = 0;  ///< bytes copied in aggregate moves

    void reset() { *this = ExecCounters{}; }
    ExecCounters& operator+=(const ExecCounters& o)
    {
        exprOps += o.exprOps;
        loads += o.loads;
        stores += o.stores;
        branches += o.branches;
        calls += o.calls;
        aggBytes += o.aggBytes;
        return *this;
    }
    [[nodiscard]] std::uint64_t total() const
    {
        return exprOps + loads + stores + branches + calls;
    }
};

/// Variable storage: one Value per VarInfo index. The owning form holds
/// each variable's bytes itself; the view form (arena constructor) aliases
/// caller-managed storage at fixed offsets and can be rebased cheaply per
/// batch instance with rebindAll().
class Store {
public:
    Store() = default;
    explicit Store(const std::vector<VarInfo>& vars)
    {
        values_.reserve(vars.size());
        for (const VarInfo& v : vars) values_.emplace_back(v.type);
    }

    /// View store over an external arena: variable i lives at
    /// `base + offsets[i]`. The arena must outlive every use.
    Store(const std::vector<VarInfo>& vars, std::uint8_t* base,
          const std::vector<std::uint32_t>& offsets)
    {
        values_.reserve(vars.size());
        for (std::size_t i = 0; i < vars.size(); ++i)
            values_.push_back(
                Value::view(vars[i].type, base + offsets[i]));
    }

    /// Rebases every view onto a new arena slice (same layout).
    void rebindAll(std::uint8_t* base,
                   const std::vector<std::uint32_t>& offsets)
    {
        for (std::size_t i = 0; i < values_.size(); ++i)
            values_[i].rebind(base + offsets[i]);
    }

    [[nodiscard]] Value& at(int index) { return values_[static_cast<std::size_t>(index)]; }
    [[nodiscard]] const Value& at(int index) const
    {
        return values_[static_cast<std::size_t>(index)];
    }
    [[nodiscard]] std::size_t count() const { return values_.size(); }

    /// Total data bytes held (for the memory model).
    [[nodiscard]] std::size_t totalBytes() const
    {
        std::size_t n = 0;
        for (const Value& v : values_) n += v.size();
        return n;
    }

private:
    std::vector<Value> values_;
};

/// Statement completion for the C subset.
enum class ExecStatus { Normal, Break, Continue, Return };

struct ExecResult {
    ExecStatus status = ExecStatus::Normal;
    Value returnValue;
};

/// Evaluates expressions/statements of the data part.
class Evaluator {
public:
    /// `module` may be null when evaluating inside plain C functions only.
    /// `functionSemas` must outlive the evaluator.
    Evaluator(const ProgramSema& program,
              const std::unordered_map<std::string, FunctionSema>& functionSemas,
              const ModuleSema* module, Store* moduleStore,
              const SignalReader* signals);

    /// Evaluates an rvalue in module context.
    Value evalExpr(const ast::Expr& e);

    /// Evaluates a scalar condition (data predicate guard).
    bool evalCondition(const ast::Expr& e) { return evalExpr(e).toBool(); }

    /// Executes a data statement (no reactive constructs allowed).
    ExecResult execStmt(const ast::Stmt& s);

    /// Calls a C function by name with the given arguments.
    Value callFunction(const std::string& name, std::vector<Value> args,
                       SourceLoc loc);

    [[nodiscard]] const ExecCounters& counters() const { return counters_; }
    void resetCounters() { counters_.reset(); }

    /// Abort evaluation if more than this many abstract ops run in one
    /// call tree (guards against runaway extracted loops).
    void setOpBudget(std::uint64_t budget) { opBudget_ = budget; }

private:
    struct Frame {
        const std::unordered_map<const ast::Expr*, const Type*>* exprTypes;
        const std::unordered_map<const ast::Expr*, RefKind>* refKinds;
        const std::vector<VarInfo>* vars;
        const std::unordered_map<std::string, int>* varIndex;
        Store* store;
        bool isModule;
    };

    [[noreturn]] void fail(SourceLoc loc, const std::string& msg) const;
    void charge(std::uint64_t n);

    const Type* typeOf(const ast::Expr& e) const;
    RefKind refKindOf(const ast::Expr& e) const;

    Value evalExprIn(const ast::Expr& e);
    LValue evalLValue(const ast::Expr& e);
    Value evalBinary(const ast::BinaryExpr& e);
    Value evalUnary(const ast::UnaryExpr& e);
    Value evalCall(const ast::CallExpr& e);
    Value convertScalar(const Value& v, const Type* target);

    ExecResult execStmtIn(const ast::Stmt& s);

    const ProgramSema& prog_;
    const std::unordered_map<std::string, FunctionSema>& functionSemas_;
    const ModuleSema* module_;
    const SignalReader* signals_;
    std::vector<Frame> frames_;
    ExecCounters counters_;
    std::uint64_t opBudget_ = 500'000'000;
    std::uint64_t opsUsed_ = 0;
};

} // namespace ecl
