#include "src/interp/value.h"

namespace ecl {

std::int64_t readScalar(const std::uint8_t* p, const Type* t)
{
    std::uint64_t raw = 0;
    for (std::size_t i = 0; i < t->size(); ++i)
        raw |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    if (t->isBool()) return raw != 0 ? 1 : 0;
    if (t->isSigned() && t->size() < 8) {
        std::uint64_t signBit = std::uint64_t{1} << (8 * t->size() - 1);
        if (raw & signBit) raw |= ~((signBit << 1) - 1);
    }
    return static_cast<std::int64_t>(raw);
}

void writeScalar(std::uint8_t* p, const Type* t, std::int64_t v)
{
    if (t->isBool()) {
        p[0] = v != 0 ? 1 : 0;
        return;
    }
    auto raw = static_cast<std::uint64_t>(v);
    for (std::size_t i = 0; i < t->size(); ++i)
        p[i] = static_cast<std::uint8_t>(raw >> (8 * i));
}

std::int64_t readBytesLE(const std::uint8_t* p, std::size_t n)
{
    std::uint64_t raw = 0;
    for (std::size_t i = 0; i < n && i < 8; ++i)
        raw |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return static_cast<std::int64_t>(raw);
}

std::string Value::toString() const
{
    if (!type_) return "<empty>";
    if (type_->isScalar()) return std::to_string(toInt());
    static const char* hex = "0123456789abcdef";
    std::string out = type_->name() + "{";
    const std::uint8_t* p = data();
    for (std::size_t i = 0; i < size(); ++i) {
        if (i) out += ' ';
        out += hex[p[i] >> 4];
        out += hex[p[i] & 15];
    }
    out += '}';
    return out;
}

} // namespace ecl
