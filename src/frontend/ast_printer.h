// Pretty-printer producing canonical ECL-like text from the AST.
// Used by tests (round-trip / golden checks) and by the code generators
// (printing extracted data statements as C).
#pragma once

#include <string>

#include "src/frontend/ast.h"

namespace ecl {

std::string printExpr(const ast::Expr& e);
std::string printSigExpr(const ast::SigExpr& e);

/// Prints a statement with the given indentation depth (4 spaces per level).
std::string printStmt(const ast::Stmt& s, int depth = 0);

std::string printProgram(const ast::Program& p);

} // namespace ecl
