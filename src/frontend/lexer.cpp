#include "src/frontend/lexer.h"

#include <cctype>
#include <unordered_map>

namespace ecl {

namespace {

const std::unordered_map<std::string_view, Tok>& keywordTable()
{
    static const std::unordered_map<std::string_view, Tok> table = {
        {"if", Tok::KwIf},
        {"else", Tok::KwElse},
        {"while", Tok::KwWhile},
        {"for", Tok::KwFor},
        {"do", Tok::KwDo},
        {"break", Tok::KwBreak},
        {"continue", Tok::KwContinue},
        {"return", Tok::KwReturn},
        {"typedef", Tok::KwTypedef},
        {"struct", Tok::KwStruct},
        {"union", Tok::KwUnion},
        {"unsigned", Tok::KwUnsigned},
        {"signed", Tok::KwSigned},
        {"int", Tok::KwInt},
        {"char", Tok::KwChar},
        {"short", Tok::KwShort},
        {"long", Tok::KwLong},
        {"void", Tok::KwVoid},
        {"bool", Tok::KwBool},
        {"true", Tok::KwTrue},
        {"false", Tok::KwFalse},
        {"const", Tok::KwConst},
        {"sizeof", Tok::KwSizeof},
        {"module", Tok::KwModule},
        {"input", Tok::KwInput},
        {"output", Tok::KwOutput},
        {"pure", Tok::KwPure},
        {"signal", Tok::KwSignal},
        {"emit", Tok::KwEmit},
        {"emit_v", Tok::KwEmitV},
        {"await", Tok::KwAwait},
        {"halt", Tok::KwHalt},
        {"present", Tok::KwPresent},
        {"abort", Tok::KwAbort},
        {"weak_abort", Tok::KwWeakAbort},
        {"suspend", Tok::KwSuspend},
        {"handle", Tok::KwHandle},
        {"par", Tok::KwPar},
    };
    return table;
}

} // namespace

const char* tokName(Tok t)
{
    switch (t) {
    case Tok::End: return "end of input";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::CharLit: return "character literal";
    case Tok::StringLit: return "string literal";
    case Tok::KwIf: return "'if'";
    case Tok::KwElse: return "'else'";
    case Tok::KwWhile: return "'while'";
    case Tok::KwFor: return "'for'";
    case Tok::KwDo: return "'do'";
    case Tok::KwBreak: return "'break'";
    case Tok::KwContinue: return "'continue'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwTypedef: return "'typedef'";
    case Tok::KwStruct: return "'struct'";
    case Tok::KwUnion: return "'union'";
    case Tok::KwUnsigned: return "'unsigned'";
    case Tok::KwSigned: return "'signed'";
    case Tok::KwInt: return "'int'";
    case Tok::KwChar: return "'char'";
    case Tok::KwShort: return "'short'";
    case Tok::KwLong: return "'long'";
    case Tok::KwVoid: return "'void'";
    case Tok::KwBool: return "'bool'";
    case Tok::KwTrue: return "'true'";
    case Tok::KwFalse: return "'false'";
    case Tok::KwConst: return "'const'";
    case Tok::KwSizeof: return "'sizeof'";
    case Tok::KwModule: return "'module'";
    case Tok::KwInput: return "'input'";
    case Tok::KwOutput: return "'output'";
    case Tok::KwPure: return "'pure'";
    case Tok::KwSignal: return "'signal'";
    case Tok::KwEmit: return "'emit'";
    case Tok::KwEmitV: return "'emit_v'";
    case Tok::KwAwait: return "'await'";
    case Tok::KwHalt: return "'halt'";
    case Tok::KwPresent: return "'present'";
    case Tok::KwAbort: return "'abort'";
    case Tok::KwWeakAbort: return "'weak_abort'";
    case Tok::KwSuspend: return "'suspend'";
    case Tok::KwHandle: return "'handle'";
    case Tok::KwPar: return "'par'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Semi: return "';'";
    case Tok::Comma: return "','";
    case Tok::Dot: return "'.'";
    case Tok::Question: return "'?'";
    case Tok::Colon: return "':'";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Amp: return "'&'";
    case Tok::Pipe: return "'|'";
    case Tok::Caret: return "'^'";
    case Tok::Tilde: return "'~'";
    case Tok::Bang: return "'!'";
    case Tok::AmpAmp: return "'&&'";
    case Tok::PipePipe: return "'||'";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::Lt: return "'<'";
    case Tok::Gt: return "'>'";
    case Tok::Le: return "'<='";
    case Tok::Ge: return "'>='";
    case Tok::EqEq: return "'=='";
    case Tok::BangEq: return "'!='";
    case Tok::Assign: return "'='";
    case Tok::PlusAssign: return "'+='";
    case Tok::MinusAssign: return "'-='";
    case Tok::StarAssign: return "'*='";
    case Tok::SlashAssign: return "'/='";
    case Tok::PercentAssign: return "'%='";
    case Tok::AmpAssign: return "'&='";
    case Tok::PipeAssign: return "'|='";
    case Tok::CaretAssign: return "'^='";
    case Tok::ShlAssign: return "'<<='";
    case Tok::ShrAssign: return "'>>='";
    case Tok::PlusPlus: return "'++'";
    case Tok::MinusMinus: return "'--'";
    }
    return "?";
}

Lexer::Lexer(std::string_view source, Diagnostics& diags)
    : src_(source), diags_(diags)
{
}

char Lexer::peek(std::size_t ahead) const
{
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::advance()
{
    char c = src_[pos_++];
    if (c == '\n') {
        ++line_;
        col_ = 1;
    } else {
        ++col_;
    }
    return c;
}

void Lexer::skipWhitespaceAndComments()
{
    while (!atEnd()) {
        char c = peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (!atEnd() && peek() != '\n') advance();
        } else if (c == '/' && peek(1) == '*') {
            SourceLoc start = here();
            advance();
            advance();
            bool closed = false;
            while (!atEnd()) {
                if (peek() == '*' && peek(1) == '/') {
                    advance();
                    advance();
                    closed = true;
                    break;
                }
                advance();
            }
            if (!closed) diags_.error(start, "unterminated block comment");
        } else {
            return;
        }
    }
}

Token Lexer::nextRawToken()
{
    skipWhitespaceAndComments();
    Token tok;
    tok.loc = here();
    if (atEnd()) {
        tok.kind = Tok::End;
        return tok;
    }
    char c = advance();

    auto two = [&](char second, Tok ifTwo, Tok ifOne) {
        if (peek() == second) {
            advance();
            tok.kind = ifTwo;
        } else {
            tok.kind = ifOne;
        }
        return tok;
    };

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string ident(1, c);
        while (std::isalnum(static_cast<unsigned char>(peek())) ||
               peek() == '_')
            ident += advance();
        auto it = keywordTable().find(ident);
        if (it != keywordTable().end()) {
            tok.kind = it->second;
            tok.text = ident;
        } else {
            tok.kind = Tok::Ident;
            tok.text = std::move(ident);
        }
        return tok;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
        std::string num(1, c);
        bool hex = false;
        if (c == '0' && (peek() == 'x' || peek() == 'X')) {
            num += advance();
            hex = true;
        }
        while (std::isalnum(static_cast<unsigned char>(peek())))
            num += advance();
        tok.kind = Tok::IntLit;
        tok.text = num;
        // Strip C integer suffixes (u, l, ul, ...).
        std::string digits = num;
        while (!digits.empty() &&
               (std::tolower(static_cast<unsigned char>(digits.back())) ==
                    'u' ||
                std::tolower(static_cast<unsigned char>(digits.back())) ==
                    'l'))
            digits.pop_back();
        try {
            tok.intValue = std::stoll(digits, nullptr, hex ? 16 : 0);
        } catch (const std::exception&) {
            diags_.error(tok.loc, "invalid integer literal '" + num + "'");
            tok.intValue = 0;
        }
        return tok;
    }

    if (c == '\'') {
        std::string spelling;
        std::int64_t value = 0;
        if (peek() == '\\') {
            advance();
            char esc = atEnd() ? '\0' : advance();
            switch (esc) {
            case 'n': value = '\n'; break;
            case 't': value = '\t'; break;
            case 'r': value = '\r'; break;
            case '0': value = '\0'; break;
            case '\\': value = '\\'; break;
            case '\'': value = '\''; break;
            default:
                diags_.error(tok.loc, "unknown escape in character literal");
            }
        } else if (!atEnd()) {
            value = static_cast<unsigned char>(advance());
        }
        if (peek() == '\'')
            advance();
        else
            diags_.error(tok.loc, "unterminated character literal");
        tok.kind = Tok::CharLit;
        tok.intValue = value;
        return tok;
    }

    if (c == '"') {
        std::string str;
        while (!atEnd() && peek() != '"') {
            char ch = advance();
            if (ch == '\\' && !atEnd()) {
                char esc = advance();
                switch (esc) {
                case 'n': str += '\n'; break;
                case 't': str += '\t'; break;
                case '\\': str += '\\'; break;
                case '"': str += '"'; break;
                default: str += esc;
                }
            } else {
                str += ch;
            }
        }
        if (!atEnd())
            advance();
        else
            diags_.error(tok.loc, "unterminated string literal");
        tok.kind = Tok::StringLit;
        tok.text = std::move(str);
        return tok;
    }

    switch (c) {
    case '(': tok.kind = Tok::LParen; return tok;
    case ')': tok.kind = Tok::RParen; return tok;
    case '{': tok.kind = Tok::LBrace; return tok;
    case '}': tok.kind = Tok::RBrace; return tok;
    case '[': tok.kind = Tok::LBracket; return tok;
    case ']': tok.kind = Tok::RBracket; return tok;
    case ';': tok.kind = Tok::Semi; return tok;
    case ',': tok.kind = Tok::Comma; return tok;
    case '.': tok.kind = Tok::Dot; return tok;
    case '?': tok.kind = Tok::Question; return tok;
    case ':': tok.kind = Tok::Colon; return tok;
    case '~': tok.kind = Tok::Tilde; return tok;
    case '+':
        if (peek() == '+') {
            advance();
            tok.kind = Tok::PlusPlus;
            return tok;
        }
        return two('=', Tok::PlusAssign, Tok::Plus);
    case '-':
        if (peek() == '-') {
            advance();
            tok.kind = Tok::MinusMinus;
            return tok;
        }
        return two('=', Tok::MinusAssign, Tok::Minus);
    case '*': return two('=', Tok::StarAssign, Tok::Star);
    case '/': return two('=', Tok::SlashAssign, Tok::Slash);
    case '%': return two('=', Tok::PercentAssign, Tok::Percent);
    case '^': return two('=', Tok::CaretAssign, Tok::Caret);
    case '!': return two('=', Tok::BangEq, Tok::Bang);
    case '=': return two('=', Tok::EqEq, Tok::Assign);
    case '&':
        if (peek() == '&') {
            advance();
            tok.kind = Tok::AmpAmp;
            return tok;
        }
        return two('=', Tok::AmpAssign, Tok::Amp);
    case '|':
        if (peek() == '|') {
            advance();
            tok.kind = Tok::PipePipe;
            return tok;
        }
        return two('=', Tok::PipeAssign, Tok::Pipe);
    case '<':
        if (peek() == '<') {
            advance();
            return two('=', Tok::ShlAssign, Tok::Shl);
        }
        return two('=', Tok::Le, Tok::Lt);
    case '>':
        if (peek() == '>') {
            advance();
            return two('=', Tok::ShrAssign, Tok::Shr);
        }
        return two('=', Tok::Ge, Tok::Gt);
    default:
        diags_.error(tok.loc,
                     std::string("unexpected character '") + c + "'");
        // Produce something so the parser can continue.
        tok.kind = Tok::Semi;
        return tok;
    }
}

void Lexer::handleDirective()
{
    // `pos_` sits just past the '#'. Read the directive name.
    SourceLoc loc = here();
    std::string name;
    while (std::isalpha(static_cast<unsigned char>(peek()))) name += advance();

    if (name != "define") {
        if (name != "include" && name != "pragma")
            diags_.warning(loc, "ignoring unsupported directive '#" + name +
                                    "'");
        while (!atEnd() && peek() != '\n') advance();
        return;
    }

    // #define NAME replacement...  (object-like only)
    while (peek() == ' ' || peek() == '\t') advance();
    std::string macroName;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        macroName += advance();
    if (macroName.empty()) {
        diags_.error(loc, "#define without a macro name");
        while (!atEnd() && peek() != '\n') advance();
        return;
    }
    if (peek() == '(') {
        diags_.error(loc, "function-like macros are not supported");
        while (!atEnd() && peek() != '\n') advance();
        return;
    }

    // Tokenize the rest of the line as the replacement list.
    std::vector<Token> replacement;
    int defLine = line_;
    while (true) {
        // Stop at end of the directive line (backslash continuations are
        // not supported; the paper's examples do not use them).
        skipWhitespaceAndComments();
        if (atEnd() || line_ != defLine) break;
        std::size_t save = pos_;
        Token t = nextRawToken();
        if (t.kind == Tok::End) break;
        if (t.loc.line != defLine) {
            // Token started on a following line: rewind is impossible with
            // our streaming design, so push it to the main output instead.
            emitExpanded(t, 0);
            break;
        }
        (void)save;
        replacement.push_back(std::move(t));
    }
    if (macros_.count(macroName))
        diags_.warning(loc, "redefinition of macro '" + macroName + "'");
    macros_[macroName] = std::move(replacement);
}

void Lexer::emitExpanded(const Token& tok, int depth)
{
    if (depth > 32) {
        diags_.error(tok.loc, "macro expansion too deep (recursive #define?)");
        return;
    }
    if (tok.kind == Tok::Ident) {
        auto it = macros_.find(tok.text);
        if (it != macros_.end()) {
            for (const Token& rep : it->second) {
                Token copy = rep;
                copy.loc = tok.loc; // report at the use site
                emitExpanded(copy, depth + 1);
            }
            return;
        }
    }
    out_.push_back(tok);
}

std::vector<Token> Lexer::run()
{
    while (true) {
        skipWhitespaceAndComments();
        if (atEnd()) break;
        if (peek() == '#' && col_ == 1) {
            advance();
            handleDirective();
            continue;
        }
        if (peek() == '#') {
            // Directives not at the start of a line: still treat as one.
            advance();
            handleDirective();
            continue;
        }
        Token t = nextRawToken();
        if (t.kind == Tok::End) break;
        emitExpanded(t, 0);
    }
    Token end;
    end.kind = Tok::End;
    end.loc = here();
    out_.push_back(end);
    return std::move(out_);
}

std::vector<Token> lex(std::string_view source, Diagnostics& diags)
{
    return Lexer(source, diags).run();
}

} // namespace ecl
