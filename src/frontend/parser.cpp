#include "src/frontend/parser.h"

#include "src/frontend/lexer.h"

namespace ecl {

using namespace ast;

Parser::Parser(std::vector<Token> tokens, Diagnostics& diags)
    : toks_(std::move(tokens)), diags_(diags)
{
    // `byte` and `bool` style names that arrive via typedef are registered
    // as they are parsed; nothing is pre-registered.
}

const Token& Parser::peek(std::size_t ahead) const
{
    std::size_t i = pos_ + ahead;
    if (i >= toks_.size()) i = toks_.size() - 1; // End token
    return toks_[i];
}

const Token& Parser::advance()
{
    const Token& t = toks_[pos_];
    if (pos_ + 1 < toks_.size()) ++pos_;
    return t;
}

bool Parser::accept(Tok kind)
{
    if (check(kind)) {
        advance();
        return true;
    }
    return false;
}

const Token& Parser::expect(Tok kind, std::string_view context)
{
    if (!check(kind)) {
        fail(peek(), std::string("expected ") + tokName(kind) + " " +
                         std::string(context) + ", found " +
                         tokName(peek().kind));
    }
    return advance();
}

void Parser::fail(const Token& at, const std::string& message)
{
    diags_.error(at.loc, message);
    throw EclError(at.loc, message);
}

// ---------------------------------------------------------------------------
// Type specifiers
// ---------------------------------------------------------------------------

bool Parser::startsTypeSpec(std::size_t ahead) const
{
    switch (peek(ahead).kind) {
    case Tok::KwInt:
    case Tok::KwChar:
    case Tok::KwShort:
    case Tok::KwLong:
    case Tok::KwUnsigned:
    case Tok::KwSigned:
    case Tok::KwVoid:
    case Tok::KwBool:
    case Tok::KwStruct:
    case Tok::KwUnion:
        return true;
    case Tok::Ident: return typeNames_.count(peek(ahead).text) > 0;
    default: return false;
    }
}

ast::TypeSpec Parser::parseTypeSpec()
{
    SourceLoc loc = peek().loc;
    switch (peek().kind) {
    case Tok::KwVoid: advance(); return {"void", loc};
    case Tok::KwBool: advance(); return {"bool", loc};
    case Tok::KwChar: advance(); return {"char", loc};
    case Tok::KwShort:
        advance();
        accept(Tok::KwInt);
        return {"short", loc};
    case Tok::KwLong:
        advance();
        accept(Tok::KwInt);
        return {"long", loc};
    case Tok::KwInt: advance(); return {"int", loc};
    case Tok::KwSigned:
        advance();
        if (accept(Tok::KwChar)) return {"char", loc};
        accept(Tok::KwInt);
        return {"int", loc};
    case Tok::KwUnsigned:
        advance();
        if (accept(Tok::KwChar)) return {"unsigned char", loc};
        if (accept(Tok::KwShort)) return {"unsigned short", loc};
        if (accept(Tok::KwLong)) return {"unsigned long", loc};
        accept(Tok::KwInt);
        return {"unsigned int", loc};
    case Tok::KwStruct: {
        advance();
        const Token& tag = expect(Tok::Ident, "after 'struct'");
        return {"struct " + tag.text, loc};
    }
    case Tok::KwUnion: {
        advance();
        const Token& tag = expect(Tok::Ident, "after 'union'");
        return {"union " + tag.text, loc};
    }
    case Tok::Ident:
        if (typeNames_.count(peek().text)) {
            std::string name = advance().text;
            return {name, loc};
        }
        [[fallthrough]];
    default:
        fail(peek(), std::string("expected a type, found ") +
                         tokName(peek().kind));
    }
}

ast::Declarator Parser::parseDeclarator(bool allowInit)
{
    Declarator d;
    const Token& name = expect(Tok::Ident, "in declarator");
    d.name = name.text;
    d.loc = name.loc;
    while (accept(Tok::LBracket)) {
        d.arrayDims.push_back(parseExpr());
        expect(Tok::RBracket, "to close array dimension");
    }
    if (allowInit && accept(Tok::Assign)) d.init = parseAssignment();
    return d;
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

ast::Program Parser::parseProgram()
{
    Program prog;
    while (!check(Tok::End)) prog.decls.push_back(parseTopDecl());
    return prog;
}

ast::TopDeclPtr Parser::parseTopDecl()
{
    switch (peek().kind) {
    case Tok::KwTypedef: return parseTypedef();
    case Tok::KwModule: return parseModule();
    case Tok::KwStruct:
    case Tok::KwUnion:
        // `struct Tag { ... };` definition vs `struct Tag name ...` object.
        if (peek(1).kind == Tok::Ident && peek(2).kind == Tok::LBrace) {
            auto out = std::make_unique<AggregateDecl>(peek().loc);
            bool isUnion = peek().kind == Tok::KwUnion;
            advance();
            std::string tag = advance().text;
            auto def = parseAggregateDef();
            out->def = std::move(*def);
            out->def.isUnion = isUnion;
            out->def.tag = tag;
            typeNames_.insert((isUnion ? "union " : "struct ") + tag);
            expect(Tok::Semi, "after aggregate definition");
            return out;
        }
        return parseFunctionOrGlobal(false);
    case Tok::KwConst: advance(); return parseFunctionOrGlobal(true);
    default: return parseFunctionOrGlobal(false);
    }
}

std::unique_ptr<ast::AggregateDef> Parser::parseAggregateDef()
{
    auto def = std::make_unique<AggregateDef>();
    def->loc = peek().loc;
    expect(Tok::LBrace, "to open aggregate body");
    while (!check(Tok::RBrace)) {
        TypeSpec fieldType = parseTypeSpec();
        do {
            FieldDecl field;
            field.type = fieldType;
            field.decl = parseDeclarator(/*allowInit=*/false);
            def->fields.push_back(std::move(field));
        } while (accept(Tok::Comma));
        expect(Tok::Semi, "after field declaration");
    }
    expect(Tok::RBrace, "to close aggregate body");
    return def;
}

ast::TopDeclPtr Parser::parseTypedef()
{
    auto out = std::make_unique<TypedefDecl>(peek().loc);
    expect(Tok::KwTypedef, "");
    if ((check(Tok::KwStruct) || check(Tok::KwUnion)) &&
        (peek(1).kind == Tok::LBrace ||
         (peek(1).kind == Tok::Ident && peek(2).kind == Tok::LBrace))) {
        bool isUnion = check(Tok::KwUnion);
        advance();
        std::string tag;
        if (check(Tok::Ident)) tag = advance().text;
        out->aggregate = parseAggregateDef();
        out->aggregate->isUnion = isUnion;
        out->aggregate->tag = tag;
        if (!tag.empty())
            typeNames_.insert((isUnion ? "union " : "struct ") + tag);
    } else {
        out->underlying = parseTypeSpec();
    }
    const Token& name = expect(Tok::Ident, "as typedef name");
    out->name = name.text;
    while (accept(Tok::LBracket)) {
        out->arrayDims.push_back(parseExpr());
        expect(Tok::RBracket, "to close array dimension");
    }
    expect(Tok::Semi, "after typedef");
    typeNames_.insert(out->name);
    return out;
}

ast::TopDeclPtr Parser::parseModule()
{
    auto out = std::make_unique<ModuleDecl>(peek().loc);
    expect(Tok::KwModule, "");
    out->name = expect(Tok::Ident, "as module name").text;
    expect(Tok::LParen, "to open module parameter list");
    if (!check(Tok::RParen)) {
        do {
            SignalParam p;
            p.loc = peek().loc;
            if (accept(Tok::KwInput))
                p.dir = SignalDir::Input;
            else if (accept(Tok::KwOutput))
                p.dir = SignalDir::Output;
            else
                fail(peek(), "module parameter must start with "
                             "'input' or 'output'");
            if (accept(Tok::KwPure)) {
                p.pure = true;
            } else {
                p.type = parseTypeSpec();
            }
            p.name = expect(Tok::Ident, "as signal parameter name").text;
            out->params.push_back(std::move(p));
        } while (accept(Tok::Comma));
    }
    expect(Tok::RParen, "to close module parameter list");
    out->body = parseBlock();
    return out;
}

ast::TopDeclPtr Parser::parseFunctionOrGlobal(bool isConst)
{
    SourceLoc loc = peek().loc;
    TypeSpec type = parseTypeSpec();
    const Token& name = expect(Tok::Ident, "as declaration name");

    if (check(Tok::LParen)) {
        auto fn = std::make_unique<FunctionDecl>(loc);
        fn->returnType = type;
        fn->name = name.text;
        advance(); // '('
        if (!check(Tok::RParen)) {
            if (check(Tok::KwVoid) && peek(1).kind == Tok::RParen) {
                advance();
            } else {
                do {
                    ParamDecl p;
                    p.loc = peek().loc;
                    p.type = parseTypeSpec();
                    p.name = expect(Tok::Ident, "as parameter name").text;
                    while (accept(Tok::LBracket)) {
                        p.arrayDims.push_back(parseExpr());
                        expect(Tok::RBracket, "to close array dimension");
                    }
                    fn->params.push_back(std::move(p));
                } while (accept(Tok::Comma));
            }
        }
        expect(Tok::RParen, "to close parameter list");
        fn->body = parseBlock();
        return fn;
    }

    auto gv = std::make_unique<GlobalVarDecl>(loc);
    gv->isConst = isConst;
    gv->type = type;
    // First declarator already has its name consumed.
    Declarator first;
    first.name = name.text;
    first.loc = name.loc;
    while (accept(Tok::LBracket)) {
        first.arrayDims.push_back(parseExpr());
        expect(Tok::RBracket, "to close array dimension");
    }
    if (accept(Tok::Assign)) first.init = parseAssignment();
    gv->decls.push_back(std::move(first));
    while (accept(Tok::Comma)) gv->decls.push_back(parseDeclarator(true));
    expect(Tok::Semi, "after global variable declaration");
    return gv;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

std::unique_ptr<ast::BlockStmt> Parser::parseBlock()
{
    auto block = std::make_unique<BlockStmt>(peek().loc);
    expect(Tok::LBrace, "to open block");
    while (!check(Tok::RBrace) && !check(Tok::End))
        block->body.push_back(parseStatement());
    expect(Tok::RBrace, "to close block");
    return block;
}

ast::StmtPtr Parser::parseStatement()
{
    switch (peek().kind) {
    case Tok::LBrace: return parseBlock();
    case Tok::Semi: {
        SourceLoc loc = advance().loc;
        return std::make_unique<EmptyStmt>(loc);
    }
    case Tok::KwIf: return parseIf();
    case Tok::KwWhile: return parseWhile();
    case Tok::KwDo: return parseDoFamily();
    case Tok::KwFor: return parseFor();
    case Tok::KwBreak: {
        SourceLoc loc = advance().loc;
        expect(Tok::Semi, "after 'break'");
        return std::make_unique<BreakStmt>(loc);
    }
    case Tok::KwContinue: {
        SourceLoc loc = advance().loc;
        expect(Tok::Semi, "after 'continue'");
        return std::make_unique<ContinueStmt>(loc);
    }
    case Tok::KwReturn: {
        SourceLoc loc = advance().loc;
        ExprPtr value;
        if (!check(Tok::Semi)) value = parseExpr();
        expect(Tok::Semi, "after 'return'");
        return std::make_unique<ReturnStmt>(std::move(value), loc);
    }
    case Tok::KwSignal: return parseSignalDecl();
    case Tok::KwAwait: return parseAwait();
    case Tok::KwEmit: return parseEmit(/*valued=*/false);
    case Tok::KwEmitV: return parseEmit(/*valued=*/true);
    case Tok::KwHalt: {
        SourceLoc loc = advance().loc;
        if (accept(Tok::LParen)) expect(Tok::RParen, "in 'halt()'");
        expect(Tok::Semi, "after 'halt'");
        return std::make_unique<HaltStmt>(loc);
    }
    case Tok::KwPresent: return parsePresent();
    case Tok::KwPar: return parsePar();
    default:
        if (startsTypeSpec()) return parseDeclStatement();
        // Expression statement.
        {
            SourceLoc loc = peek().loc;
            ExprPtr e = parseExpr();
            expect(Tok::Semi, "after expression statement");
            return std::make_unique<ExprStmt>(std::move(e), loc);
        }
    }
}

ast::StmtPtr Parser::parseIf()
{
    SourceLoc loc = advance().loc; // 'if'
    expect(Tok::LParen, "after 'if'");
    ExprPtr cond = parseExpr();
    expect(Tok::RParen, "to close 'if' condition");
    // Tolerate the Pascal-style 'then' keyword used in the paper's Figure 1
    // snippet (`if (A) then emit(OUT);`) — the prototype accepted it.
    if (check(Tok::Ident) && peek().text == "then") advance();
    StmtPtr thenStmt = parseStatement();
    StmtPtr elseStmt;
    if (accept(Tok::KwElse)) elseStmt = parseStatement();
    return std::make_unique<IfStmt>(std::move(cond), std::move(thenStmt),
                                    std::move(elseStmt), loc);
}

ast::StmtPtr Parser::parseWhile()
{
    SourceLoc loc = advance().loc;
    expect(Tok::LParen, "after 'while'");
    ExprPtr cond = parseExpr();
    expect(Tok::RParen, "to close 'while' condition");
    StmtPtr body = parseStatement();
    return std::make_unique<WhileStmt>(std::move(cond), std::move(body), loc);
}

ast::StmtPtr Parser::parseDoFamily()
{
    SourceLoc loc = advance().loc; // 'do'
    StmtPtr body = parseStatement();
    switch (peek().kind) {
    case Tok::KwWhile: {
        advance();
        expect(Tok::LParen, "after 'while'");
        ExprPtr cond = parseExpr();
        expect(Tok::RParen, "to close 'do-while' condition");
        expect(Tok::Semi, "after 'do-while'");
        return std::make_unique<DoWhileStmt>(std::move(body), std::move(cond),
                                             loc);
    }
    case Tok::KwAbort:
    case Tok::KwWeakAbort: {
        bool weak = peek().kind == Tok::KwWeakAbort;
        advance();
        expect(Tok::LParen, "after 'abort'");
        SigExprPtr cond = parseSigExpr();
        expect(Tok::RParen, "to close abort condition");
        StmtPtr handler;
        if (accept(Tok::KwHandle)) handler = parseStatement();
        accept(Tok::Semi); // trailing ';' is conventional, not required
        return std::make_unique<AbortStmt>(std::move(body), std::move(cond),
                                           weak, std::move(handler), loc);
    }
    case Tok::KwSuspend: {
        advance();
        expect(Tok::LParen, "after 'suspend'");
        SigExprPtr cond = parseSigExpr();
        expect(Tok::RParen, "to close suspend condition");
        accept(Tok::Semi);
        return std::make_unique<SuspendStmt>(std::move(body), std::move(cond),
                                             loc);
    }
    default:
        fail(peek(), "expected 'while', 'abort', 'weak_abort' or 'suspend' "
                     "after 'do' body");
    }
}

ast::StmtPtr Parser::parseFor()
{
    SourceLoc loc = advance().loc;
    auto out = std::make_unique<ForStmt>(loc);
    expect(Tok::LParen, "after 'for'");
    if (!check(Tok::Semi)) {
        if (startsTypeSpec()) {
            out->init = parseDeclStatement(); // consumes ';'
        } else {
            // C comma operator in the init clause (the paper's Figure 2:
            // `for (i = 0, crc = 0; ...)`) becomes a block of statements.
            ExprPtr e = parseExpr();
            if (check(Tok::Comma)) {
                auto block = std::make_unique<BlockStmt>(loc);
                block->body.push_back(
                    std::make_unique<ExprStmt>(std::move(e), loc));
                while (accept(Tok::Comma)) {
                    ExprPtr next = parseExpr();
                    block->body.push_back(
                        std::make_unique<ExprStmt>(std::move(next), loc));
                }
                out->init = std::move(block);
            } else {
                out->init = std::make_unique<ExprStmt>(std::move(e), loc);
            }
            expect(Tok::Semi, "after 'for' initializer");
        }
    } else {
        advance();
    }
    if (!check(Tok::Semi)) out->cond = parseExpr();
    expect(Tok::Semi, "after 'for' condition");
    if (!check(Tok::RParen)) out->step = parseExpr();
    expect(Tok::RParen, "to close 'for' header");
    out->body = parseStatement();
    return out;
}

ast::StmtPtr Parser::parseDeclStatement()
{
    SourceLoc loc = peek().loc;
    TypeSpec type = parseTypeSpec();
    auto out = std::make_unique<DeclStmt>(type, loc);
    do {
        out->decls.push_back(parseDeclarator(/*allowInit=*/true));
    } while (accept(Tok::Comma));
    expect(Tok::Semi, "after declaration");
    return out;
}

ast::StmtPtr Parser::parseSignalDecl()
{
    SourceLoc loc = advance().loc; // 'signal'
    auto out = std::make_unique<SignalDeclStmt>(loc);
    if (accept(Tok::KwPure)) {
        out->pure = true;
    } else {
        out->type = parseTypeSpec();
    }
    do {
        out->names.push_back(expect(Tok::Ident, "as signal name").text);
    } while (accept(Tok::Comma));
    expect(Tok::Semi, "after signal declaration");
    return out;
}

ast::StmtPtr Parser::parseAwait()
{
    SourceLoc loc = advance().loc;
    expect(Tok::LParen, "after 'await'");
    SigExprPtr cond;
    if (!check(Tok::RParen)) cond = parseSigExpr();
    expect(Tok::RParen, "to close 'await'");
    expect(Tok::Semi, "after 'await'");
    return std::make_unique<AwaitStmt>(std::move(cond), loc);
}

ast::StmtPtr Parser::parseEmit(bool valued)
{
    SourceLoc loc = advance().loc;
    expect(Tok::LParen, "after 'emit'");
    std::string sig = expect(Tok::Ident, "as signal to emit").text;
    ExprPtr value;
    if (valued) {
        expect(Tok::Comma, "between signal and value in 'emit_v'");
        value = parseAssignment();
    }
    expect(Tok::RParen, "to close 'emit'");
    expect(Tok::Semi, "after 'emit'");
    return std::make_unique<EmitStmt>(std::move(sig), std::move(value), loc);
}

ast::StmtPtr Parser::parsePresent()
{
    SourceLoc loc = advance().loc;
    expect(Tok::LParen, "after 'present'");
    SigExprPtr cond = parseSigExpr();
    expect(Tok::RParen, "to close 'present' condition");
    StmtPtr thenStmt = parseStatement();
    StmtPtr elseStmt;
    if (accept(Tok::KwElse)) elseStmt = parseStatement();
    return std::make_unique<PresentStmt>(std::move(cond), std::move(thenStmt),
                                         std::move(elseStmt), loc);
}

ast::StmtPtr Parser::parsePar()
{
    SourceLoc loc = advance().loc;
    auto out = std::make_unique<ParStmt>(loc);
    expect(Tok::LBrace, "to open 'par' block");
    while (!check(Tok::RBrace) && !check(Tok::End))
        out->branches.push_back(parseStatement());
    expect(Tok::RBrace, "to close 'par' block");
    return out;
}

// ---------------------------------------------------------------------------
// Signal expressions
// ---------------------------------------------------------------------------

ast::SigExprPtr Parser::parseSigExpr() { return parseSigOr(); }

ast::SigExprPtr Parser::parseSigOr()
{
    SigExprPtr lhs = parseSigAnd();
    while (check(Tok::Pipe) || check(Tok::PipePipe)) {
        SourceLoc loc = advance().loc;
        SigExprPtr rhs = parseSigAnd();
        lhs = makeSigOr(std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
}

ast::SigExprPtr Parser::parseSigAnd()
{
    SigExprPtr lhs = parseSigUnary();
    while (check(Tok::Amp) || check(Tok::AmpAmp)) {
        SourceLoc loc = advance().loc;
        SigExprPtr rhs = parseSigUnary();
        lhs = makeSigAnd(std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
}

ast::SigExprPtr Parser::parseSigUnary()
{
    if (check(Tok::Tilde) || check(Tok::Bang)) {
        SourceLoc loc = advance().loc;
        return makeSigNot(parseSigUnary(), loc);
    }
    if (accept(Tok::LParen)) {
        SigExprPtr inner = parseSigOr();
        expect(Tok::RParen, "in signal expression");
        return inner;
    }
    const Token& name = expect(Tok::Ident, "as signal name");
    return makeSigRef(name.text, name.loc);
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ast::ExprPtr Parser::parseExpr() { return parseAssignment(); }

ast::ExprPtr Parser::parseExpressionOnly()
{
    ExprPtr e = parseExpr();
    if (!check(Tok::End)) fail(peek(), "trailing tokens after expression");
    return e;
}

ast::ExprPtr Parser::parseAssignment()
{
    ExprPtr lhs = parseConditional();
    AssignOp op;
    switch (peek().kind) {
    case Tok::Assign: op = AssignOp::Plain; break;
    case Tok::PlusAssign: op = AssignOp::Add; break;
    case Tok::MinusAssign: op = AssignOp::Sub; break;
    case Tok::StarAssign: op = AssignOp::Mul; break;
    case Tok::SlashAssign: op = AssignOp::Div; break;
    case Tok::PercentAssign: op = AssignOp::Rem; break;
    case Tok::ShlAssign: op = AssignOp::Shl; break;
    case Tok::ShrAssign: op = AssignOp::Shr; break;
    case Tok::AmpAssign: op = AssignOp::And; break;
    case Tok::PipeAssign: op = AssignOp::Or; break;
    case Tok::CaretAssign: op = AssignOp::Xor; break;
    default: return lhs;
    }
    SourceLoc loc = advance().loc;
    ExprPtr rhs = parseAssignment();
    return std::make_unique<AssignExpr>(op, std::move(lhs), std::move(rhs),
                                        loc);
}

ast::ExprPtr Parser::parseConditional()
{
    ExprPtr cond = parseBinary(0);
    if (!check(Tok::Question)) return cond;
    SourceLoc loc = advance().loc;
    ExprPtr thenExpr = parseExpr();
    expect(Tok::Colon, "in conditional expression");
    ExprPtr elseExpr = parseConditional();
    return std::make_unique<CondExpr>(std::move(cond), std::move(thenExpr),
                                      std::move(elseExpr), loc);
}

namespace {

struct BinOpInfo {
    BinaryOp op;
    int prec;
};

/// Returns the binary operator for a token, or prec < 0 when not binary.
BinOpInfo binOp(Tok t)
{
    switch (t) {
    case Tok::PipePipe: return {BinaryOp::LogOr, 1};
    case Tok::AmpAmp: return {BinaryOp::LogAnd, 2};
    case Tok::Pipe: return {BinaryOp::BitOr, 3};
    case Tok::Caret: return {BinaryOp::BitXor, 4};
    case Tok::Amp: return {BinaryOp::BitAnd, 5};
    case Tok::EqEq: return {BinaryOp::Eq, 6};
    case Tok::BangEq: return {BinaryOp::Ne, 6};
    case Tok::Lt: return {BinaryOp::Lt, 7};
    case Tok::Gt: return {BinaryOp::Gt, 7};
    case Tok::Le: return {BinaryOp::Le, 7};
    case Tok::Ge: return {BinaryOp::Ge, 7};
    case Tok::Shl: return {BinaryOp::Shl, 8};
    case Tok::Shr: return {BinaryOp::Shr, 8};
    case Tok::Plus: return {BinaryOp::Add, 9};
    case Tok::Minus: return {BinaryOp::Sub, 9};
    case Tok::Star: return {BinaryOp::Mul, 10};
    case Tok::Slash: return {BinaryOp::Div, 10};
    case Tok::Percent: return {BinaryOp::Rem, 10};
    default: return {BinaryOp::Add, -1};
    }
}

} // namespace

ast::ExprPtr Parser::parseBinary(int minPrec)
{
    ExprPtr lhs = parseUnary();
    while (true) {
        BinOpInfo info = binOp(peek().kind);
        if (info.prec < 0 || info.prec < minPrec) return lhs;
        SourceLoc loc = advance().loc;
        ExprPtr rhs = parseBinary(info.prec + 1);
        lhs = std::make_unique<BinaryExpr>(info.op, std::move(lhs),
                                           std::move(rhs), loc);
    }
}

ast::ExprPtr Parser::parseUnary()
{
    switch (peek().kind) {
    case Tok::Plus: {
        SourceLoc loc = advance().loc;
        return std::make_unique<UnaryExpr>(UnaryOp::Plus, parseUnary(), loc);
    }
    case Tok::Minus: {
        SourceLoc loc = advance().loc;
        return std::make_unique<UnaryExpr>(UnaryOp::Minus, parseUnary(), loc);
    }
    case Tok::Bang: {
        SourceLoc loc = advance().loc;
        return std::make_unique<UnaryExpr>(UnaryOp::Not, parseUnary(), loc);
    }
    case Tok::Tilde: {
        SourceLoc loc = advance().loc;
        return std::make_unique<UnaryExpr>(UnaryOp::BitNot, parseUnary(), loc);
    }
    case Tok::PlusPlus: {
        SourceLoc loc = advance().loc;
        return std::make_unique<UnaryExpr>(UnaryOp::PreInc, parseUnary(), loc);
    }
    case Tok::MinusMinus: {
        SourceLoc loc = advance().loc;
        return std::make_unique<UnaryExpr>(UnaryOp::PreDec, parseUnary(), loc);
    }
    case Tok::KwSizeof: {
        SourceLoc loc = advance().loc;
        expect(Tok::LParen, "after 'sizeof'");
        if (startsTypeSpec()) {
            TypeSpec ts = parseTypeSpec();
            expect(Tok::RParen, "to close 'sizeof'");
            return std::make_unique<SizeofTypeExpr>(ts.name, loc);
        }
        ExprPtr e = parseExpr();
        expect(Tok::RParen, "to close 'sizeof'");
        // sizeof(expr) is resolved in sema via the expression's type; model
        // it as a cast-like wrapper. Representing as SizeofType of the
        // expression's type requires sema, so keep the expression.
        // We encode it as a call to the builtin __sizeof_expr.
        std::vector<ExprPtr> args;
        args.push_back(std::move(e));
        return std::make_unique<CallExpr>("__sizeof_expr", std::move(args),
                                          loc);
    }
    case Tok::LParen:
        // Possible cast: '(' type ')' unary
        if (startsTypeSpec(1)) {
            // Look ahead for ')' after the type name. Builtin multi-token
            // specs handled by parseTypeSpec; simplest is to snapshot.
            std::size_t save = pos_;
            SourceLoc loc = advance().loc; // '('
            try {
                TypeSpec ts = parseTypeSpec();
                if (accept(Tok::RParen)) {
                    ExprPtr inner = parseUnary();
                    return std::make_unique<CastExpr>(ts.name,
                                                      std::move(inner), loc);
                }
            } catch (const EclError&) {
                // fall through to expression parse
            }
            pos_ = save;
        }
        return parsePostfix();
    default: return parsePostfix();
    }
}

ast::ExprPtr Parser::parsePostfix()
{
    ExprPtr e = parsePrimary();
    while (true) {
        switch (peek().kind) {
        case Tok::LBracket: {
            SourceLoc loc = advance().loc;
            ExprPtr idx = parseExpr();
            expect(Tok::RBracket, "to close index");
            e = std::make_unique<IndexExpr>(std::move(e), std::move(idx), loc);
            break;
        }
        case Tok::Dot: {
            SourceLoc loc = advance().loc;
            const Token& f = expect(Tok::Ident, "as member name");
            e = std::make_unique<MemberExpr>(std::move(e), f.text, loc);
            break;
        }
        case Tok::PlusPlus: {
            SourceLoc loc = advance().loc;
            e = std::make_unique<UnaryExpr>(UnaryOp::PostInc, std::move(e),
                                            loc);
            break;
        }
        case Tok::MinusMinus: {
            SourceLoc loc = advance().loc;
            e = std::make_unique<UnaryExpr>(UnaryOp::PostDec, std::move(e),
                                            loc);
            break;
        }
        default: return e;
        }
    }
}

ast::ExprPtr Parser::parsePrimary()
{
    switch (peek().kind) {
    case Tok::IntLit: {
        const Token& t = advance();
        return std::make_unique<IntLitExpr>(t.intValue, t.loc);
    }
    case Tok::CharLit: {
        const Token& t = advance();
        return std::make_unique<IntLitExpr>(t.intValue, t.loc);
    }
    case Tok::KwTrue: {
        const Token& t = advance();
        return std::make_unique<BoolLitExpr>(true, t.loc);
    }
    case Tok::KwFalse: {
        const Token& t = advance();
        return std::make_unique<BoolLitExpr>(false, t.loc);
    }
    case Tok::Ident: {
        const Token& t = advance();
        if (check(Tok::LParen)) {
            advance();
            std::vector<ExprPtr> args;
            if (!check(Tok::RParen)) {
                do {
                    args.push_back(parseAssignment());
                } while (accept(Tok::Comma));
            }
            expect(Tok::RParen, "to close call");
            return std::make_unique<CallExpr>(t.text, std::move(args), t.loc);
        }
        return std::make_unique<IdentExpr>(t.text, t.loc);
    }
    case Tok::LParen: {
        advance();
        ExprPtr e = parseExpr();
        expect(Tok::RParen, "to close parenthesized expression");
        return e;
    }
    default:
        fail(peek(), std::string("expected an expression, found ") +
                         tokName(peek().kind));
    }
}

ast::Program parseEcl(std::string_view source, Diagnostics& diags)
{
    std::vector<Token> toks = lex(source, diags);
    if (diags.hasErrors()) throw EclError("lexical errors:\n" + diags.formatAll());
    Parser parser(std::move(toks), diags);
    ast::Program prog = parser.parseProgram();
    if (diags.hasErrors()) throw EclError("syntax errors:\n" + diags.formatAll());
    return prog;
}

} // namespace ecl
