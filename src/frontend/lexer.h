// The ECL lexer: converts source text into a token stream.
//
// Handles:
//  * all tokens of the supported C subset plus the ECL reactive keywords,
//  * // and /* */ comments,
//  * object-like `#define NAME replacement-tokens` macros with recursive
//    expansion (the paper's Figure 1 relies on `#define PKTSIZE
//    HDRSIZE+DATASIZE+CRCSIZE`),
//  * other preprocessor lines (`#include`, `#ifdef`, ...) are skipped with a
//    warning — ECL programs are self-contained compilation units.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/frontend/token.h"
#include "src/support/diagnostics.h"

namespace ecl {

/// Tokenizes `source`. Macro expansion is performed eagerly, so the returned
/// stream contains no preprocessor artifacts. Errors (bad characters,
/// unterminated comments/literals, recursive macros) are reported to `diags`;
/// lexing continues where possible so later phases can report more issues.
std::vector<Token> lex(std::string_view source, Diagnostics& diags);

/// Internal lexer class, exposed for unit testing of macro tables.
class Lexer {
public:
    Lexer(std::string_view source, Diagnostics& diags);

    std::vector<Token> run();

    /// Macro table built from #define lines (name -> replacement tokens).
    [[nodiscard]] const std::unordered_map<std::string, std::vector<Token>>&
    macros() const
    {
        return macros_;
    }

private:
    void lexLine();
    void handleDirective();
    Token nextRawToken();
    void skipWhitespaceAndComments();
    [[nodiscard]] char peek(std::size_t ahead = 0) const;
    char advance();
    [[nodiscard]] bool atEnd() const { return pos_ >= src_.size(); }
    [[nodiscard]] SourceLoc here() const { return {line_, col_}; }
    void emitExpanded(const Token& tok, int depth);

    std::string_view src_;
    Diagnostics& diags_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    std::vector<Token> out_;
    std::unordered_map<std::string, std::vector<Token>> macros_;
};

} // namespace ecl
