#include "src/frontend/ast_printer.h"

#include "src/support/diagnostics.h"

namespace ecl {

using namespace ast;

namespace {

const char* binOpText(BinaryOp op)
{
    switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Rem: return "%";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::BitAnd: return "&";
    case BinaryOp::BitOr: return "|";
    case BinaryOp::BitXor: return "^";
    case BinaryOp::LogAnd: return "&&";
    case BinaryOp::LogOr: return "||";
    }
    return "?";
}

const char* assignOpText(AssignOp op)
{
    switch (op) {
    case AssignOp::Plain: return "=";
    case AssignOp::Add: return "+=";
    case AssignOp::Sub: return "-=";
    case AssignOp::Mul: return "*=";
    case AssignOp::Div: return "/=";
    case AssignOp::Rem: return "%=";
    case AssignOp::Shl: return "<<=";
    case AssignOp::Shr: return ">>=";
    case AssignOp::And: return "&=";
    case AssignOp::Or: return "|=";
    case AssignOp::Xor: return "^=";
    }
    return "?";
}

std::string ind(int depth) { return std::string(4 * static_cast<std::size_t>(depth), ' '); }

std::string printDeclarator(const Declarator& d)
{
    std::string out = d.name;
    for (const ExprPtr& dim : d.arrayDims) out += "[" + printExpr(*dim) + "]";
    if (d.init) out += " = " + printExpr(*d.init);
    return out;
}

} // namespace

std::string printExpr(const Expr& e)
{
    switch (e.kind) {
    case ExprKind::IntLit:
        return std::to_string(static_cast<const IntLitExpr&>(e).value);
    case ExprKind::BoolLit:
        return static_cast<const BoolLitExpr&>(e).value ? "true" : "false";
    case ExprKind::Ident: return static_cast<const IdentExpr&>(e).name;
    case ExprKind::Unary: {
        const auto& x = static_cast<const UnaryExpr&>(e);
        std::string inner = printExpr(*x.operand);
        switch (x.op) {
        case UnaryOp::Plus: return "(+" + inner + ")";
        case UnaryOp::Minus: return "(-" + inner + ")";
        case UnaryOp::Not: return "(!" + inner + ")";
        case UnaryOp::BitNot: return "(~" + inner + ")";
        case UnaryOp::PreInc: return "(++" + inner + ")";
        case UnaryOp::PreDec: return "(--" + inner + ")";
        case UnaryOp::PostInc: return "(" + inner + "++)";
        case UnaryOp::PostDec: return "(" + inner + "--)";
        }
        return "?";
    }
    case ExprKind::Binary: {
        const auto& x = static_cast<const BinaryExpr&>(e);
        return "(" + printExpr(*x.lhs) + " " + binOpText(x.op) + " " +
               printExpr(*x.rhs) + ")";
    }
    case ExprKind::Assign: {
        const auto& x = static_cast<const AssignExpr&>(e);
        return printExpr(*x.lhs) + " " + assignOpText(x.op) + " " +
               printExpr(*x.rhs);
    }
    case ExprKind::Cond: {
        const auto& x = static_cast<const CondExpr&>(e);
        return "(" + printExpr(*x.cond) + " ? " + printExpr(*x.thenExpr) +
               " : " + printExpr(*x.elseExpr) + ")";
    }
    case ExprKind::Index: {
        const auto& x = static_cast<const IndexExpr&>(e);
        return printExpr(*x.base) + "[" + printExpr(*x.index) + "]";
    }
    case ExprKind::Member: {
        const auto& x = static_cast<const MemberExpr&>(e);
        return printExpr(*x.base) + "." + x.field;
    }
    case ExprKind::Call: {
        const auto& x = static_cast<const CallExpr&>(e);
        std::string out = x.callee + "(";
        for (std::size_t i = 0; i < x.args.size(); ++i) {
            if (i) out += ", ";
            out += printExpr(*x.args[i]);
        }
        return out + ")";
    }
    case ExprKind::Cast: {
        const auto& x = static_cast<const CastExpr&>(e);
        return "(" + x.typeName + ") " + printExpr(*x.operand);
    }
    case ExprKind::SizeofType:
        return "sizeof(" + static_cast<const SizeofTypeExpr&>(e).typeName +
               ")";
    }
    return "?";
}

std::string printSigExpr(const SigExpr& e)
{
    switch (e.kind) {
    case SigExprKind::Ref: return e.name;
    case SigExprKind::Not: return "~" + printSigExpr(*e.lhs);
    case SigExprKind::And:
        return "(" + printSigExpr(*e.lhs) + " & " + printSigExpr(*e.rhs) + ")";
    case SigExprKind::Or:
        return "(" + printSigExpr(*e.lhs) + " | " + printSigExpr(*e.rhs) + ")";
    }
    return "?";
}

std::string printStmt(const Stmt& s, int depth)
{
    const std::string pad = ind(depth);
    switch (s.kind) {
    case StmtKind::Block: {
        const auto& x = static_cast<const BlockStmt&>(s);
        std::string out = pad + "{\n";
        for (const StmtPtr& st : x.body) out += printStmt(*st, depth + 1);
        out += pad + "}\n";
        return out;
    }
    case StmtKind::Decl: {
        const auto& x = static_cast<const DeclStmt&>(s);
        std::string out = pad + x.type.name + " ";
        for (std::size_t i = 0; i < x.decls.size(); ++i) {
            if (i) out += ", ";
            out += printDeclarator(x.decls[i]);
        }
        return out + ";\n";
    }
    case StmtKind::ExprStmt:
        return pad + printExpr(*static_cast<const ExprStmt&>(s).expr) + ";\n";
    case StmtKind::If: {
        const auto& x = static_cast<const IfStmt&>(s);
        std::string out = pad + "if (" + printExpr(*x.cond) + ")\n";
        out += printStmt(*x.thenStmt, depth + 1);
        if (x.elseStmt) {
            out += pad + "else\n";
            out += printStmt(*x.elseStmt, depth + 1);
        }
        return out;
    }
    case StmtKind::While: {
        const auto& x = static_cast<const WhileStmt&>(s);
        return pad + "while (" + printExpr(*x.cond) + ")\n" +
               printStmt(*x.body, depth + 1);
    }
    case StmtKind::DoWhile: {
        const auto& x = static_cast<const DoWhileStmt&>(s);
        return pad + "do\n" + printStmt(*x.body, depth + 1) + pad +
               "while (" + printExpr(*x.cond) + ");\n";
    }
    case StmtKind::For: {
        const auto& x = static_cast<const ForStmt&>(s);
        std::string head = pad + "for (";
        if (x.init) {
            std::string initStr = printStmt(*x.init, 0);
            // Strip trailing newline; keep the ';'.
            while (!initStr.empty() &&
                   (initStr.back() == '\n' || initStr.back() == ' '))
                initStr.pop_back();
            head += initStr;
        } else {
            head += ";";
        }
        head += " ";
        if (x.cond) head += printExpr(*x.cond);
        head += "; ";
        if (x.step) head += printExpr(*x.step);
        head += ")\n";
        return head + printStmt(*x.body, depth + 1);
    }
    case StmtKind::Break: return pad + "break;\n";
    case StmtKind::Continue: return pad + "continue;\n";
    case StmtKind::Return: {
        const auto& x = static_cast<const ReturnStmt&>(s);
        if (x.value) return pad + "return " + printExpr(*x.value) + ";\n";
        return pad + "return;\n";
    }
    case StmtKind::Empty: return pad + ";\n";
    case StmtKind::Await: {
        const auto& x = static_cast<const AwaitStmt&>(s);
        if (x.cond) return pad + "await (" + printSigExpr(*x.cond) + ");\n";
        return pad + "await ();\n";
    }
    case StmtKind::Emit: {
        const auto& x = static_cast<const EmitStmt&>(s);
        if (x.value)
            return pad + "emit_v (" + x.signal + ", " + printExpr(*x.value) +
                   ");\n";
        return pad + "emit (" + x.signal + ");\n";
    }
    case StmtKind::Halt: return pad + "halt ();\n";
    case StmtKind::Present: {
        const auto& x = static_cast<const PresentStmt&>(s);
        std::string out =
            pad + "present (" + printSigExpr(*x.cond) + ")\n" +
            printStmt(*x.thenStmt, depth + 1);
        if (x.elseStmt) {
            out += pad + "else\n";
            out += printStmt(*x.elseStmt, depth + 1);
        }
        return out;
    }
    case StmtKind::Abort: {
        const auto& x = static_cast<const AbortStmt&>(s);
        std::string out = pad + "do\n" + printStmt(*x.body, depth + 1);
        out += pad + (x.weak ? "weak_abort (" : "abort (") +
               printSigExpr(*x.cond) + ")";
        if (x.handler) {
            out += " handle\n" + printStmt(*x.handler, depth + 1);
        } else {
            out += ";\n";
        }
        return out;
    }
    case StmtKind::Suspend: {
        const auto& x = static_cast<const SuspendStmt&>(s);
        return pad + "do\n" + printStmt(*x.body, depth + 1) + pad +
               "suspend (" + printSigExpr(*x.cond) + ");\n";
    }
    case StmtKind::Par: {
        const auto& x = static_cast<const ParStmt&>(s);
        std::string out = pad + "par {\n";
        for (const StmtPtr& b : x.branches) out += printStmt(*b, depth + 1);
        out += pad + "}\n";
        return out;
    }
    case StmtKind::SignalDecl: {
        const auto& x = static_cast<const SignalDeclStmt&>(s);
        std::string out = pad + "signal ";
        out += x.pure ? "pure" : x.type.name;
        out += " ";
        for (std::size_t i = 0; i < x.names.size(); ++i) {
            if (i) out += ", ";
            out += x.names[i];
        }
        return out + ";\n";
    }
    }
    throw EclError("printStmt: unknown statement kind");
}

std::string printProgram(const Program& p)
{
    std::string out;
    for (const TopDeclPtr& d : p.decls) {
        switch (d->kind) {
        case DeclKind::Typedef: {
            const auto& x = static_cast<const TypedefDecl&>(*d);
            out += "typedef ";
            if (x.aggregate) {
                out += x.aggregate->isUnion ? "union" : "struct";
                if (!x.aggregate->tag.empty()) out += " " + x.aggregate->tag;
                out += " {\n";
                for (const FieldDecl& f : x.aggregate->fields)
                    out += "    " + f.type.name + " " +
                           printDeclarator(f.decl) + ";\n";
                out += "}";
            } else {
                out += x.underlying.name;
            }
            out += " " + x.name;
            for (const ExprPtr& dim : x.arrayDims)
                out += "[" + printExpr(*dim) + "]";
            out += ";\n\n";
            break;
        }
        case DeclKind::Aggregate: {
            const auto& x = static_cast<const AggregateDecl&>(*d);
            out += x.def.isUnion ? "union " : "struct ";
            out += x.def.tag + " {\n";
            for (const FieldDecl& f : x.def.fields)
                out += "    " + f.type.name + " " + printDeclarator(f.decl) +
                       ";\n";
            out += "};\n\n";
            break;
        }
        case DeclKind::Function: {
            const auto& x = static_cast<const FunctionDecl&>(*d);
            out += x.returnType.name + " " + x.name + "(";
            for (std::size_t i = 0; i < x.params.size(); ++i) {
                if (i) out += ", ";
                out += x.params[i].type.name + " " + x.params[i].name;
                for (const ExprPtr& dim : x.params[i].arrayDims)
                    out += "[" + printExpr(*dim) + "]";
            }
            out += ")\n";
            out += printStmt(*x.body, 0);
            out += "\n";
            break;
        }
        case DeclKind::Module: {
            const auto& x = static_cast<const ModuleDecl&>(*d);
            out += "module " + x.name + " (";
            for (std::size_t i = 0; i < x.params.size(); ++i) {
                if (i) out += ", ";
                const SignalParam& p = x.params[i];
                out += p.dir == SignalDir::Input ? "input " : "output ";
                out += p.pure ? "pure" : p.type.name;
                out += " " + p.name;
            }
            out += ")\n";
            out += printStmt(*x.body, 0);
            out += "\n";
            break;
        }
        case DeclKind::GlobalVar: {
            const auto& x = static_cast<const GlobalVarDecl&>(*d);
            if (x.isConst) out += "const ";
            out += x.type.name + " ";
            for (std::size_t i = 0; i < x.decls.size(); ++i) {
                if (i) out += ", ";
                out += printDeclarator(x.decls[i]);
            }
            out += ";\n\n";
            break;
        }
        }
    }
    return out;
}

} // namespace ecl
