#include "src/frontend/ast.h"

#include "src/support/diagnostics.h"

namespace ecl::ast {

SigExprPtr makeSigRef(std::string name, SourceLoc loc)
{
    auto e = std::make_unique<SigExpr>();
    e->kind = SigExprKind::Ref;
    e->name = std::move(name);
    e->loc = loc;
    return e;
}

SigExprPtr makeSigNot(SigExprPtr inner, SourceLoc loc)
{
    auto e = std::make_unique<SigExpr>();
    e->kind = SigExprKind::Not;
    e->lhs = std::move(inner);
    e->loc = loc;
    return e;
}

SigExprPtr makeSigAnd(SigExprPtr a, SigExprPtr b, SourceLoc loc)
{
    auto e = std::make_unique<SigExpr>();
    e->kind = SigExprKind::And;
    e->lhs = std::move(a);
    e->rhs = std::move(b);
    e->loc = loc;
    return e;
}

SigExprPtr makeSigOr(SigExprPtr a, SigExprPtr b, SourceLoc loc)
{
    auto e = std::make_unique<SigExpr>();
    e->kind = SigExprKind::Or;
    e->lhs = std::move(a);
    e->rhs = std::move(b);
    e->loc = loc;
    return e;
}

SigExprPtr cloneSigExpr(const SigExpr& e)
{
    auto out = std::make_unique<SigExpr>();
    out->kind = e.kind;
    out->loc = e.loc;
    out->name = e.name;
    if (e.lhs) out->lhs = cloneSigExpr(*e.lhs);
    if (e.rhs) out->rhs = cloneSigExpr(*e.rhs);
    return out;
}

void collectSigRefs(const SigExpr& e, std::vector<std::string>& out)
{
    switch (e.kind) {
    case SigExprKind::Ref: {
        for (const std::string& s : out)
            if (s == e.name) return;
        out.push_back(e.name);
        return;
    }
    case SigExprKind::Not: collectSigRefs(*e.lhs, out); return;
    case SigExprKind::And:
    case SigExprKind::Or:
        collectSigRefs(*e.lhs, out);
        collectSigRefs(*e.rhs, out);
        return;
    }
}

const ModuleDecl* Program::findModule(std::string_view name) const
{
    for (const TopDeclPtr& d : decls)
        if (d->kind == DeclKind::Module) {
            const auto* m = static_cast<const ModuleDecl*>(d.get());
            if (m->name == name) return m;
        }
    return nullptr;
}

const FunctionDecl* Program::findFunction(std::string_view name) const
{
    for (const TopDeclPtr& d : decls)
        if (d->kind == DeclKind::Function) {
            const auto* f = static_cast<const FunctionDecl*>(d.get());
            if (f->name == name) return f;
        }
    return nullptr;
}

// ---------------------------------------------------------------------------
// Cloning
// ---------------------------------------------------------------------------

ExprPtr cloneExpr(const Expr& e)
{
    switch (e.kind) {
    case ExprKind::IntLit: {
        const auto& x = static_cast<const IntLitExpr&>(e);
        return std::make_unique<IntLitExpr>(x.value, x.loc);
    }
    case ExprKind::BoolLit: {
        const auto& x = static_cast<const BoolLitExpr&>(e);
        return std::make_unique<BoolLitExpr>(x.value, x.loc);
    }
    case ExprKind::Ident: {
        const auto& x = static_cast<const IdentExpr&>(e);
        return std::make_unique<IdentExpr>(x.name, x.loc);
    }
    case ExprKind::Unary: {
        const auto& x = static_cast<const UnaryExpr&>(e);
        return std::make_unique<UnaryExpr>(x.op, cloneExpr(*x.operand), x.loc);
    }
    case ExprKind::Binary: {
        const auto& x = static_cast<const BinaryExpr&>(e);
        return std::make_unique<BinaryExpr>(x.op, cloneExpr(*x.lhs),
                                            cloneExpr(*x.rhs), x.loc);
    }
    case ExprKind::Assign: {
        const auto& x = static_cast<const AssignExpr&>(e);
        return std::make_unique<AssignExpr>(x.op, cloneExpr(*x.lhs),
                                            cloneExpr(*x.rhs), x.loc);
    }
    case ExprKind::Cond: {
        const auto& x = static_cast<const CondExpr&>(e);
        return std::make_unique<CondExpr>(cloneExpr(*x.cond),
                                          cloneExpr(*x.thenExpr),
                                          cloneExpr(*x.elseExpr), x.loc);
    }
    case ExprKind::Index: {
        const auto& x = static_cast<const IndexExpr&>(e);
        return std::make_unique<IndexExpr>(cloneExpr(*x.base),
                                           cloneExpr(*x.index), x.loc);
    }
    case ExprKind::Member: {
        const auto& x = static_cast<const MemberExpr&>(e);
        return std::make_unique<MemberExpr>(cloneExpr(*x.base), x.field, x.loc);
    }
    case ExprKind::Call: {
        const auto& x = static_cast<const CallExpr&>(e);
        std::vector<ExprPtr> args;
        args.reserve(x.args.size());
        for (const ExprPtr& a : x.args) args.push_back(cloneExpr(*a));
        return std::make_unique<CallExpr>(x.callee, std::move(args), x.loc);
    }
    case ExprKind::Cast: {
        const auto& x = static_cast<const CastExpr&>(e);
        return std::make_unique<CastExpr>(x.typeName, cloneExpr(*x.operand),
                                          x.loc);
    }
    case ExprKind::SizeofType: {
        const auto& x = static_cast<const SizeofTypeExpr&>(e);
        return std::make_unique<SizeofTypeExpr>(x.typeName, x.loc);
    }
    }
    throw EclError("cloneExpr: unknown expression kind");
}

namespace {

Declarator cloneDeclarator(const Declarator& d)
{
    Declarator out;
    out.name = d.name;
    out.loc = d.loc;
    for (const ExprPtr& dim : d.arrayDims) out.arrayDims.push_back(cloneExpr(*dim));
    if (d.init) out.init = cloneExpr(*d.init);
    return out;
}

} // namespace

StmtPtr cloneStmt(const Stmt& s)
{
    switch (s.kind) {
    case StmtKind::Block: {
        const auto& x = static_cast<const BlockStmt&>(s);
        auto out = std::make_unique<BlockStmt>(x.loc);
        for (const StmtPtr& st : x.body) out->body.push_back(cloneStmt(*st));
        return out;
    }
    case StmtKind::Decl: {
        const auto& x = static_cast<const DeclStmt&>(s);
        auto out = std::make_unique<DeclStmt>(x.type, x.loc);
        for (const Declarator& d : x.decls) out->decls.push_back(cloneDeclarator(d));
        return out;
    }
    case StmtKind::ExprStmt: {
        const auto& x = static_cast<const ExprStmt&>(s);
        return std::make_unique<ExprStmt>(cloneExpr(*x.expr), x.loc);
    }
    case StmtKind::If: {
        const auto& x = static_cast<const IfStmt&>(s);
        return std::make_unique<IfStmt>(
            cloneExpr(*x.cond), cloneStmt(*x.thenStmt),
            x.elseStmt ? cloneStmt(*x.elseStmt) : nullptr, x.loc);
    }
    case StmtKind::While: {
        const auto& x = static_cast<const WhileStmt&>(s);
        return std::make_unique<WhileStmt>(cloneExpr(*x.cond),
                                           cloneStmt(*x.body), x.loc);
    }
    case StmtKind::DoWhile: {
        const auto& x = static_cast<const DoWhileStmt&>(s);
        return std::make_unique<DoWhileStmt>(cloneStmt(*x.body),
                                             cloneExpr(*x.cond), x.loc);
    }
    case StmtKind::For: {
        const auto& x = static_cast<const ForStmt&>(s);
        auto out = std::make_unique<ForStmt>(x.loc);
        if (x.init) out->init = cloneStmt(*x.init);
        if (x.cond) out->cond = cloneExpr(*x.cond);
        if (x.step) out->step = cloneExpr(*x.step);
        out->body = cloneStmt(*x.body);
        return out;
    }
    case StmtKind::Break: return std::make_unique<BreakStmt>(s.loc);
    case StmtKind::Continue: return std::make_unique<ContinueStmt>(s.loc);
    case StmtKind::Return: {
        const auto& x = static_cast<const ReturnStmt&>(s);
        return std::make_unique<ReturnStmt>(
            x.value ? cloneExpr(*x.value) : nullptr, x.loc);
    }
    case StmtKind::Empty: return std::make_unique<EmptyStmt>(s.loc);
    case StmtKind::Await: {
        const auto& x = static_cast<const AwaitStmt&>(s);
        return std::make_unique<AwaitStmt>(
            x.cond ? cloneSigExpr(*x.cond) : nullptr, x.loc);
    }
    case StmtKind::Emit: {
        const auto& x = static_cast<const EmitStmt&>(s);
        return std::make_unique<EmitStmt>(
            x.signal, x.value ? cloneExpr(*x.value) : nullptr, x.loc);
    }
    case StmtKind::Halt: return std::make_unique<HaltStmt>(s.loc);
    case StmtKind::Present: {
        const auto& x = static_cast<const PresentStmt&>(s);
        return std::make_unique<PresentStmt>(
            cloneSigExpr(*x.cond), cloneStmt(*x.thenStmt),
            x.elseStmt ? cloneStmt(*x.elseStmt) : nullptr, x.loc);
    }
    case StmtKind::Abort: {
        const auto& x = static_cast<const AbortStmt&>(s);
        return std::make_unique<AbortStmt>(
            cloneStmt(*x.body), cloneSigExpr(*x.cond), x.weak,
            x.handler ? cloneStmt(*x.handler) : nullptr, x.loc);
    }
    case StmtKind::Suspend: {
        const auto& x = static_cast<const SuspendStmt&>(s);
        return std::make_unique<SuspendStmt>(cloneStmt(*x.body),
                                             cloneSigExpr(*x.cond), x.loc);
    }
    case StmtKind::Par: {
        const auto& x = static_cast<const ParStmt&>(s);
        auto out = std::make_unique<ParStmt>(x.loc);
        for (const StmtPtr& b : x.branches) out->branches.push_back(cloneStmt(*b));
        return out;
    }
    case StmtKind::SignalDecl: {
        const auto& x = static_cast<const SignalDeclStmt&>(s);
        auto out = std::make_unique<SignalDeclStmt>(x.loc);
        out->pure = x.pure;
        out->type = x.type;
        out->names = x.names;
        return out;
    }
    }
    throw EclError("cloneStmt: unknown statement kind");
}

} // namespace ecl::ast
