// Token definitions for the ECL language (a C subset plus reactive keywords).
#pragma once

#include <cstdint>
#include <string>

#include "src/support/source_location.h"

namespace ecl {

enum class Tok {
    End,
    Ident,
    IntLit,
    CharLit,
    StringLit,

    // C keywords (the supported subset).
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwDo,
    KwBreak,
    KwContinue,
    KwReturn,
    KwTypedef,
    KwStruct,
    KwUnion,
    KwUnsigned,
    KwSigned,
    KwInt,
    KwChar,
    KwShort,
    KwLong,
    KwVoid,
    KwBool,
    KwTrue,
    KwFalse,
    KwConst,
    KwSizeof,

    // ECL reactive keywords.
    KwModule,
    KwInput,
    KwOutput,
    KwPure,
    KwSignal,
    KwEmit,
    KwEmitV,
    KwAwait,
    KwHalt,
    KwPresent,
    KwAbort,
    KwWeakAbort,
    KwSuspend,
    KwHandle,
    KwPar,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Question,
    Colon,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    BangEq,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    PlusPlus,
    MinusMinus,
};

/// Printable name of a token kind, for diagnostics.
const char* tokName(Tok t);

struct Token {
    Tok kind = Tok::End;
    std::string text;          ///< Identifier spelling / literal spelling.
    std::int64_t intValue = 0; ///< Value for IntLit / CharLit.
    SourceLoc loc;
};

} // namespace ecl
