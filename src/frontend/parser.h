// Recursive-descent parser for ECL.
//
// The grammar is the C subset described in docs/LANGUAGE.md plus the reactive
// statements of the paper. Typedef names are tracked during parsing to
// disambiguate declarations from expressions (classic C lexer feedback,
// kept inside the parser here since ECL forbids local typedefs).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/frontend/ast.h"
#include "src/frontend/token.h"
#include "src/support/diagnostics.h"

namespace ecl {

class Parser {
public:
    Parser(std::vector<Token> tokens, Diagnostics& diags);

    /// Parses a whole translation unit. Throws EclError on unrecoverable
    /// syntax errors (after recording them in the diagnostics).
    ast::Program parseProgram();

    /// Parses a single expression (used by tests and by tools).
    ast::ExprPtr parseExpressionOnly();

private:
    // Token helpers.
    [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
    const Token& advance();
    bool check(Tok kind) const { return peek().kind == kind; }
    bool accept(Tok kind);
    const Token& expect(Tok kind, std::string_view context);
    [[noreturn]] void fail(const Token& at, const std::string& message);

    // Type specifiers.
    [[nodiscard]] bool startsTypeSpec(std::size_t ahead = 0) const;
    ast::TypeSpec parseTypeSpec();
    ast::Declarator parseDeclarator(bool allowInit);

    // Top level.
    ast::TopDeclPtr parseTopDecl();
    ast::TopDeclPtr parseTypedef();
    std::unique_ptr<ast::AggregateDef> parseAggregateDef();
    ast::TopDeclPtr parseModule();
    ast::TopDeclPtr parseFunctionOrGlobal(bool isConst);

    // Statements.
    ast::StmtPtr parseStatement();
    std::unique_ptr<ast::BlockStmt> parseBlock();
    ast::StmtPtr parseIf();
    ast::StmtPtr parseWhile();
    ast::StmtPtr parseDoFamily();
    ast::StmtPtr parseFor();
    ast::StmtPtr parseDeclStatement();
    ast::StmtPtr parseSignalDecl();
    ast::StmtPtr parseAwait();
    ast::StmtPtr parseEmit(bool valued);
    ast::StmtPtr parsePresent();
    ast::StmtPtr parsePar();

    // Signal expressions.
    ast::SigExprPtr parseSigExpr();
    ast::SigExprPtr parseSigOr();
    ast::SigExprPtr parseSigAnd();
    ast::SigExprPtr parseSigUnary();

    // Expressions (C precedence).
    ast::ExprPtr parseExpr();
    ast::ExprPtr parseAssignment();
    ast::ExprPtr parseConditional();
    ast::ExprPtr parseBinary(int minPrec);
    ast::ExprPtr parseUnary();
    ast::ExprPtr parsePostfix();
    ast::ExprPtr parsePrimary();

    std::vector<Token> toks_;
    std::size_t pos_ = 0;
    Diagnostics& diags_;
    std::set<std::string> typeNames_;
};

/// Convenience wrapper: lex + parse. Throws EclError (with diagnostics
/// recorded in `diags`) if the source does not parse.
ast::Program parseEcl(std::string_view source, Diagnostics& diags);

} // namespace ecl
