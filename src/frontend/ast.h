// Abstract syntax tree for ECL programs.
//
// ECL is ANSI-C-like (the supported subset: scalar types, arrays, structs,
// unions, typedefs, functions — no pointers, per the Esterel value
// discipline) plus the reactive constructs of the paper: modules, signals,
// emit/emit_v, await, halt, present, do..abort/weak_abort/suspend (with
// handle), and par.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/support/source_location.h"

namespace ecl::ast {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
    IntLit,
    BoolLit,
    Ident,
    Unary,
    Binary,
    Assign,
    Cond,
    Index,
    Member,
    Call,
    Cast,
    SizeofType,
};

enum class UnaryOp { Plus, Minus, Not, BitNot, PreInc, PreDec, PostInc, PostDec };

enum class BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitOr,
    BitXor,
    LogAnd,
    LogOr,
};

/// Compound-assignment flavor; Plain is '='.
enum class AssignOp { Plain, Add, Sub, Mul, Div, Rem, Shl, Shr, And, Or, Xor };

struct Expr {
    explicit Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}
    virtual ~Expr() = default;
    Expr(const Expr&) = delete;
    Expr& operator=(const Expr&) = delete;

    ExprKind kind;
    SourceLoc loc;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr final : Expr {
    IntLitExpr(std::int64_t v, SourceLoc l) : Expr(ExprKind::IntLit, l), value(v) {}
    std::int64_t value;
};

struct BoolLitExpr final : Expr {
    BoolLitExpr(bool v, SourceLoc l) : Expr(ExprKind::BoolLit, l), value(v) {}
    bool value;
};

/// A name: a variable, a constant, or — in value position — a valued signal.
struct IdentExpr final : Expr {
    IdentExpr(std::string n, SourceLoc l)
        : Expr(ExprKind::Ident, l), name(std::move(n))
    {
    }
    std::string name;
};

struct UnaryExpr final : Expr {
    UnaryExpr(UnaryOp o, ExprPtr e, SourceLoc l)
        : Expr(ExprKind::Unary, l), op(o), operand(std::move(e))
    {
    }
    UnaryOp op;
    ExprPtr operand;
};

struct BinaryExpr final : Expr {
    BinaryExpr(BinaryOp o, ExprPtr a, ExprPtr b, SourceLoc l)
        : Expr(ExprKind::Binary, l), op(o), lhs(std::move(a)), rhs(std::move(b))
    {
    }
    BinaryOp op;
    ExprPtr lhs;
    ExprPtr rhs;
};

struct AssignExpr final : Expr {
    AssignExpr(AssignOp o, ExprPtr a, ExprPtr b, SourceLoc l)
        : Expr(ExprKind::Assign, l), op(o), lhs(std::move(a)), rhs(std::move(b))
    {
    }
    AssignOp op;
    ExprPtr lhs;
    ExprPtr rhs;
};

struct CondExpr final : Expr {
    CondExpr(ExprPtr c, ExprPtr t, ExprPtr f, SourceLoc l)
        : Expr(ExprKind::Cond, l), cond(std::move(c)), thenExpr(std::move(t)),
          elseExpr(std::move(f))
    {
    }
    ExprPtr cond;
    ExprPtr thenExpr;
    ExprPtr elseExpr;
};

struct IndexExpr final : Expr {
    IndexExpr(ExprPtr b, ExprPtr i, SourceLoc l)
        : Expr(ExprKind::Index, l), base(std::move(b)), index(std::move(i))
    {
    }
    ExprPtr base;
    ExprPtr index;
};

struct MemberExpr final : Expr {
    MemberExpr(ExprPtr b, std::string f, SourceLoc l)
        : Expr(ExprKind::Member, l), base(std::move(b)), field(std::move(f))
    {
    }
    ExprPtr base;
    std::string field;
};

/// Function call; module instantiation shares this syntax and is
/// distinguished during semantic analysis.
struct CallExpr final : Expr {
    CallExpr(std::string c, std::vector<ExprPtr> a, SourceLoc l)
        : Expr(ExprKind::Call, l), callee(std::move(c)), args(std::move(a))
    {
    }
    std::string callee;
    std::vector<ExprPtr> args;
};

/// `(type) expr` — types referenced by name (e.g. `(int) x`).
struct CastExpr final : Expr {
    CastExpr(std::string t, ExprPtr e, SourceLoc l)
        : Expr(ExprKind::Cast, l), typeName(std::move(t)), operand(std::move(e))
    {
    }
    std::string typeName;
    ExprPtr operand;
};

struct SizeofTypeExpr final : Expr {
    SizeofTypeExpr(std::string t, SourceLoc l)
        : Expr(ExprKind::SizeofType, l), typeName(std::move(t))
    {
    }
    std::string typeName;
};

// ---------------------------------------------------------------------------
// Signal expressions (presence tests: names combined with & | ~)
// ---------------------------------------------------------------------------

enum class SigExprKind { Ref, And, Or, Not };

struct SigExpr {
    SigExprKind kind = SigExprKind::Ref;
    SourceLoc loc;
    std::string name;              ///< For Ref.
    std::unique_ptr<SigExpr> lhs;  ///< For And/Or/Not.
    std::unique_ptr<SigExpr> rhs;  ///< For And/Or.
};

using SigExprPtr = std::unique_ptr<SigExpr>;

SigExprPtr makeSigRef(std::string name, SourceLoc loc);
SigExprPtr makeSigNot(SigExprPtr e, SourceLoc loc);
SigExprPtr makeSigAnd(SigExprPtr a, SigExprPtr b, SourceLoc loc);
SigExprPtr makeSigOr(SigExprPtr a, SigExprPtr b, SourceLoc loc);

/// Deep copy (used when modules are inlined).
SigExprPtr cloneSigExpr(const SigExpr& e);

/// Collects the distinct signal names referenced by `e` into `out`.
void collectSigRefs(const SigExpr& e, std::vector<std::string>& out);

// ---------------------------------------------------------------------------
// Type specifiers and declarators (pre-semantic)
// ---------------------------------------------------------------------------

/// Reference to a type by spelling: builtin names ("int", "unsigned char",
/// "bool", ...), a typedef name, or "struct Tag"/"union Tag".
struct TypeSpec {
    std::string name;
    SourceLoc loc;
};

/// One declared entity: `name dims...` with optional initializer
/// (e.g. `buffer[PKTSIZE]`, `crc = 0`).
struct Declarator {
    std::string name;
    std::vector<ExprPtr> arrayDims; ///< Outermost dimension first.
    ExprPtr init;                   ///< May be null.
    SourceLoc loc;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
    Block,
    Decl,
    ExprStmt,
    If,
    While,
    DoWhile,
    For,
    Break,
    Continue,
    Return,
    Empty,
    // Reactive statements.
    Await,
    Emit,
    Halt,
    Present,
    Abort,
    Suspend,
    Par,
    SignalDecl,
};

struct Stmt {
    explicit Stmt(StmtKind k, SourceLoc l) : kind(k), loc(l) {}
    virtual ~Stmt() = default;
    Stmt(const Stmt&) = delete;
    Stmt& operator=(const Stmt&) = delete;

    StmtKind kind;
    SourceLoc loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt final : Stmt {
    explicit BlockStmt(SourceLoc l) : Stmt(StmtKind::Block, l) {}
    std::vector<StmtPtr> body;
};

struct DeclStmt final : Stmt {
    DeclStmt(TypeSpec t, SourceLoc l) : Stmt(StmtKind::Decl, l), type(std::move(t)) {}
    TypeSpec type;
    std::vector<Declarator> decls;
};

struct ExprStmt final : Stmt {
    ExprStmt(ExprPtr e, SourceLoc l) : Stmt(StmtKind::ExprStmt, l), expr(std::move(e)) {}
    ExprPtr expr;
};

struct IfStmt final : Stmt {
    IfStmt(ExprPtr c, StmtPtr t, StmtPtr e, SourceLoc l)
        : Stmt(StmtKind::If, l), cond(std::move(c)), thenStmt(std::move(t)),
          elseStmt(std::move(e))
    {
    }
    ExprPtr cond;
    StmtPtr thenStmt;
    StmtPtr elseStmt; ///< May be null.
};

struct WhileStmt final : Stmt {
    WhileStmt(ExprPtr c, StmtPtr b, SourceLoc l)
        : Stmt(StmtKind::While, l), cond(std::move(c)), body(std::move(b))
    {
    }
    ExprPtr cond;
    StmtPtr body;
};

struct DoWhileStmt final : Stmt {
    DoWhileStmt(StmtPtr b, ExprPtr c, SourceLoc l)
        : Stmt(StmtKind::DoWhile, l), body(std::move(b)), cond(std::move(c))
    {
    }
    StmtPtr body;
    ExprPtr cond;
};

struct ForStmt final : Stmt {
    explicit ForStmt(SourceLoc l) : Stmt(StmtKind::For, l) {}
    StmtPtr init;  ///< DeclStmt or ExprStmt; may be null.
    ExprPtr cond;  ///< May be null (infinite).
    ExprPtr step;  ///< May be null.
    StmtPtr body;
};

struct BreakStmt final : Stmt {
    explicit BreakStmt(SourceLoc l) : Stmt(StmtKind::Break, l) {}
};

struct ContinueStmt final : Stmt {
    explicit ContinueStmt(SourceLoc l) : Stmt(StmtKind::Continue, l) {}
};

struct ReturnStmt final : Stmt {
    ReturnStmt(ExprPtr e, SourceLoc l) : Stmt(StmtKind::Return, l), value(std::move(e)) {}
    ExprPtr value; ///< May be null.
};

struct EmptyStmt final : Stmt {
    explicit EmptyStmt(SourceLoc l) : Stmt(StmtKind::Empty, l) {}
};

/// `await(sigexpr);` — `cond == nullptr` is the delta-cycle `await()`.
struct AwaitStmt final : Stmt {
    AwaitStmt(SigExprPtr c, SourceLoc l) : Stmt(StmtKind::Await, l), cond(std::move(c)) {}
    SigExprPtr cond;
};

/// `emit(sig);` or `emit_v(sig, value);`
struct EmitStmt final : Stmt {
    EmitStmt(std::string s, ExprPtr v, SourceLoc l)
        : Stmt(StmtKind::Emit, l), signal(std::move(s)), value(std::move(v))
    {
    }
    std::string signal;
    ExprPtr value; ///< Null for pure emit.
};

struct HaltStmt final : Stmt {
    explicit HaltStmt(SourceLoc l) : Stmt(StmtKind::Halt, l) {}
};

struct PresentStmt final : Stmt {
    PresentStmt(SigExprPtr c, StmtPtr t, StmtPtr e, SourceLoc l)
        : Stmt(StmtKind::Present, l), cond(std::move(c)), thenStmt(std::move(t)),
          elseStmt(std::move(e))
    {
    }
    SigExprPtr cond;
    StmtPtr thenStmt;
    StmtPtr elseStmt; ///< May be null.
};

/// `do body abort(sigexpr) [handle handler]` — strong or weak.
struct AbortStmt final : Stmt {
    AbortStmt(StmtPtr b, SigExprPtr c, bool w, StmtPtr h, SourceLoc l)
        : Stmt(StmtKind::Abort, l), body(std::move(b)), cond(std::move(c)),
          weak(w), handler(std::move(h))
    {
    }
    StmtPtr body;
    SigExprPtr cond;
    bool weak;
    StmtPtr handler; ///< May be null.
};

struct SuspendStmt final : Stmt {
    SuspendStmt(StmtPtr b, SigExprPtr c, SourceLoc l)
        : Stmt(StmtKind::Suspend, l), body(std::move(b)), cond(std::move(c))
    {
    }
    StmtPtr body;
    SigExprPtr cond;
};

struct ParStmt final : Stmt {
    explicit ParStmt(SourceLoc l) : Stmt(StmtKind::Par, l) {}
    std::vector<StmtPtr> branches;
};

/// `signal [pure] type name, name... ;` — module-local signals.
struct SignalDeclStmt final : Stmt {
    explicit SignalDeclStmt(SourceLoc l) : Stmt(StmtKind::SignalDecl, l) {}
    bool pure = false;
    TypeSpec type;                  ///< Unused when pure.
    std::vector<std::string> names;
};

// ---------------------------------------------------------------------------
// Top-level declarations
// ---------------------------------------------------------------------------

struct FieldDecl {
    TypeSpec type;
    Declarator decl;
};

/// struct/union body, possibly anonymous (inside a typedef).
struct AggregateDef {
    bool isUnion = false;
    std::string tag; ///< Empty for anonymous aggregates.
    std::vector<FieldDecl> fields;
    SourceLoc loc;
};

enum class DeclKind { Typedef, Aggregate, Function, Module, GlobalVar };

struct TopDecl {
    explicit TopDecl(DeclKind k, SourceLoc l) : kind(k), loc(l) {}
    virtual ~TopDecl() = default;
    TopDecl(const TopDecl&) = delete;
    TopDecl& operator=(const TopDecl&) = delete;

    DeclKind kind;
    SourceLoc loc;
};

using TopDeclPtr = std::unique_ptr<TopDecl>;

/// `typedef <spec|aggregate> name dims;`
struct TypedefDecl final : TopDecl {
    explicit TypedefDecl(SourceLoc l) : TopDecl(DeclKind::Typedef, l) {}
    TypeSpec underlying;                    ///< Used when aggregate is null.
    std::unique_ptr<AggregateDef> aggregate; ///< Inline struct/union def.
    std::string name;
    std::vector<ExprPtr> arrayDims;
};

/// `struct Tag { ... };` at file scope.
struct AggregateDecl final : TopDecl {
    explicit AggregateDecl(SourceLoc l) : TopDecl(DeclKind::Aggregate, l) {}
    AggregateDef def;
};

struct ParamDecl {
    TypeSpec type;
    std::string name;
    std::vector<ExprPtr> arrayDims;
    SourceLoc loc;
};

/// A pure-C helper function.
struct FunctionDecl final : TopDecl {
    explicit FunctionDecl(SourceLoc l) : TopDecl(DeclKind::Function, l) {}
    TypeSpec returnType;
    std::string name;
    std::vector<ParamDecl> params;
    std::unique_ptr<BlockStmt> body;
};

enum class SignalDir { Input, Output };

struct SignalParam {
    SignalDir dir = SignalDir::Input;
    bool pure = false;
    TypeSpec type; ///< Unused when pure.
    std::string name;
    SourceLoc loc;
};

struct ModuleDecl final : TopDecl {
    explicit ModuleDecl(SourceLoc l) : TopDecl(DeclKind::Module, l) {}
    std::string name;
    std::vector<SignalParam> params;
    std::unique_ptr<BlockStmt> body;
};

/// File-scope variable (only `const` ones are accepted by sema; the paper
/// notes plain globals clash with Esterel scoping).
struct GlobalVarDecl final : TopDecl {
    explicit GlobalVarDecl(SourceLoc l) : TopDecl(DeclKind::GlobalVar, l) {}
    bool isConst = false;
    TypeSpec type;
    std::vector<Declarator> decls;
};

struct Program {
    std::vector<TopDeclPtr> decls;

    /// Returns the module with the given name, or nullptr.
    [[nodiscard]] const ModuleDecl* findModule(std::string_view name) const;
    [[nodiscard]] const FunctionDecl* findFunction(std::string_view name) const;
};

// ---------------------------------------------------------------------------
// Deep cloning (module inlining duplicates bodies)
// ---------------------------------------------------------------------------

ExprPtr cloneExpr(const Expr& e);
StmtPtr cloneStmt(const Stmt& s);

} // namespace ecl::ast
