#include "src/verify/explorer.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <map>

#include "src/runtime/native_module.h"

namespace ecl::verify {

namespace {

void writeI32(std::uint8_t* p, std::int32_t v) { std::memcpy(p, &v, 4); }

std::int32_t readI32(const std::uint8_t* p)
{
    std::int32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

/// Writes an emitted/injected value into a signal's arena slot with the
/// same normalization as SignalEnv::setValue and the batch engine.
void storeSigValue(std::uint8_t* slice, const rt::InstanceLayout& layout,
                   const SignalInfo& info, const Value& v)
{
    std::uint8_t* slot =
        slice + layout.sigOffsets[static_cast<std::size_t>(info.index)];
    if (info.valueType->isScalar())
        writeScalar(slot, info.valueType, v.toInt());
    else if (v.type() == info.valueType)
        std::memcpy(slot, v.data(), info.valueType->size());
    else
        throw EclError("signal value type mismatch for '" + info.name + "'");
}

std::string lowercase(const std::string& s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// StateView
// ---------------------------------------------------------------------------

std::int64_t StateView::var(const std::string& name) const
{
    const VarInfo* v = sema_->findVar(name);
    if (!v) throw EclError("StateView: no variable named '" + name + "'");
    return var(v->index);
}

std::int64_t StateView::signal(int idx) const
{
    return signalValue(idx).toInt();
}

Value StateView::signalValue(int idx) const
{
    const SignalInfo& s = sema_->signals[static_cast<std::size_t>(idx)];
    if (s.pure)
        throw EclError("StateView: value read on pure signal '" + s.name +
                       "'");
    return Value::fromBytes(
        s.valueType,
        data_ + layout_->sigOffsets[static_cast<std::size_t>(idx)]);
}

// ---------------------------------------------------------------------------
// Monitor wiring
// ---------------------------------------------------------------------------

std::vector<MonitorWire> wireMonitor(const ModuleSema& design,
                                     const ModuleSema& monitor)
{
    std::vector<MonitorWire> wires;
    for (const SignalInfo& m : monitor.signals) {
        if (m.dir != SignalDir::Input) continue;
        const SignalInfo* d = design.findSignal(m.name);
        if (!d)
            throw EclError("monitor input '" + m.name +
                           "' matches no design signal");
        MonitorWire w;
        w.monitorSig = m.index;
        w.designSig = d->index;
        if (!m.pure) {
            if (d->pure)
                throw EclError("monitor input '" + m.name +
                               "' is valued but design signal '" + d->name +
                               "' is pure");
            // Cross-compiler types: scalars normalize through int64,
            // aggregates transfer raw bytes — sizes must agree.
            if (!m.valueType->isScalar() &&
                m.valueType->size() != d->valueType->size())
                throw EclError(
                    "monitor input '" + m.name + "' value size (" +
                    std::to_string(m.valueType->size()) +
                    ") differs from design signal's (" +
                    std::to_string(d->valueType->size()) + ")");
            w.valued = true;
        }
        wires.push_back(w);
    }
    if (wires.empty())
        throw EclError("monitor module has no input signals to wire");
    return wires;
}

// ---------------------------------------------------------------------------
// Worker scratch
// ---------------------------------------------------------------------------

Explorer::ModuleCtx::ModuleCtx(const ModuleSema& sema,
                               const rt::InstanceLayout& layout,
                               std::shared_ptr<const bc::Program> code)
    : slice(layout.stride, 0), present(sema.signals.size(), 0),
      store(sema.vars, slice.data(), layout.varOffsets),
      sigs(sema, layout, slice.data()), vm(std::move(code))
{
}

Explorer::Worker::Worker(const Explorer& ex)
    : design(ex.sema_, ex.layout_, ex.code_), emitRing(ex.nativeEmitSlots_, 0)
{
    if (ex.monSema_)
        monitor.emplace(*ex.monSema_, ex.monLayout_, ex.monCode_);
}

// ---------------------------------------------------------------------------
// Explorer: setup
// ---------------------------------------------------------------------------

Explorer::Explorer(const efsm::FlatProgram& flat,
                   std::shared_ptr<const bc::Program> code,
                   const ModuleSema& sema, ExplorerOptions options)
    : flat_(flat), code_(std::move(code)), sema_(sema),
      layout_(rt::computeInstanceLayout(sema)), options_(std::move(options))
{
    if (!code_)
        throw EclError("Explorer requires the compiled bytecode program");
    if (options_.maxStates == 0 || options_.maxLettersPerState == 0)
        throw EclError("Explorer: maxStates and maxLettersPerState must be "
                       "non-zero");
}

void Explorer::attachMonitor(const efsm::FlatProgram& flat,
                             std::shared_ptr<const bc::Program> code,
                             const ModuleSema& sema,
                             std::shared_ptr<const void> owner)
{
    if (ran_) throw EclError("attachMonitor after run()");
    if (monSema_) throw EclError("only one monitor is supported");
    if (!code)
        throw EclError("monitor module has no compiled bytecode program");
    wires_ = wireMonitor(sema_, sema);
    monFlat_ = &flat;
    monCode_ = std::move(code);
    monSema_ = &sema;
    monLayout_ = rt::computeInstanceLayout(sema);
    if (owner) owners_.push_back(std::move(owner));
}

void Explorer::attachNative(std::shared_ptr<const rt::NativeModule> native)
{
    if (ran_) throw EclError("attachNative after run()");
    if (!native) throw EclError("attachNative: null native module");
    // Same gate as every other native entry point: a module generated
    // from different flat tables must not run over these arenas.
    rt::validateNativeShape(native->info(), sema_, flat_, layout_);
    nativeEmitSlots_ = std::max<std::size_t>(native->info().max_emits, 1);
    nativeReact_ = native->react();
    native_ = std::move(native);
}

void Explorer::addPredicate(std::string name, Predicate fn)
{
    if (ran_) throw EclError("addPredicate after run()");
    if (!fn) throw EclError("addPredicate: empty predicate");
    predicates_.emplace_back(std::move(name), std::move(fn));
}

void Explorer::buildAlphabet()
{
    // Value domains per valued input: configured scalars, the zero value
    // for aggregates (finite-alphabet requirement).
    domains_.assign(sema_.signals.size(), {});
    for (const SignalInfo& sig : sema_.signals) {
        if (sig.dir != SignalDir::Input || sig.pure) continue;
        std::vector<Value>& dom =
            domains_[static_cast<std::size_t>(sig.index)];
        if (!sig.valueType->isScalar()) {
            dom.emplace_back(sig.valueType); // zeroed aggregate
            continue;
        }
        auto it = options_.scalarDomains.find(sig.name);
        const std::vector<std::int64_t>& vals =
            it != options_.scalarDomains.end() ? it->second
                                               : options_.scalarDomain;
        if (vals.empty())
            throw EclError("empty value domain for input '" + sig.name + "'");
        dom.reserve(vals.size());
        for (std::int64_t v : vals)
            dom.push_back(Value::fromInt(sig.valueType, v));
    }

    // Pure design inputs the monitor observes must never be pruned: the
    // design's decision tree may ignore them, but the monitor's awaits
    // do not.
    std::vector<std::uint8_t> monitorWired(sema_.signals.size(), 0);
    for (const MonitorWire& w : wires_)
        monitorWired[static_cast<std::size_t>(w.designSig)] = 1;

    // Canonical letter list per design control state: mixed-radix
    // enumeration over the state's relevant inputs, lowest signal index
    // least significant, digit 0 = absent. Letter 0 is always the empty
    // instant.
    alphabet_.assign(flat_.states.size(), {});
    std::vector<std::uint8_t> tested(sema_.signals.size(), 0);
    std::vector<std::int32_t> stack;
    for (std::size_t st = 0; st < flat_.states.size(); ++st) {
        std::fill(tested.begin(), tested.end(), 0);
        if (options_.pruneInputs) {
            stack.clear();
            if (flat_.states[st].root >= 0)
                stack.push_back(flat_.states[st].root);
            while (!stack.empty()) {
                const efsm::FlatNode& n =
                    flat_.nodes[static_cast<std::size_t>(stack.back())];
                stack.pop_back();
                if (n.isLeaf()) continue;
                if (n.testSignal >= 0)
                    tested[static_cast<std::size_t>(n.testSignal)] = 1;
                stack.push_back(n.onTrue);
                stack.push_back(n.onFalse);
            }
        }

        std::vector<int> rel;
        std::vector<std::uint64_t> radix;
        std::uint64_t total = 1;
        bool overflow = false;
        for (const SignalInfo& sig : sema_.signals) {
            if (sig.dir != SignalDir::Input) continue;
            // Dirty-set pruning: an untested pure input cannot influence
            // this state's reaction — unless the monitor observes it.
            // Valued inputs always can (their value write persists in
            // the state bytes).
            if (options_.pruneInputs && sig.pure &&
                !tested[static_cast<std::size_t>(sig.index)] &&
                !monitorWired[static_cast<std::size_t>(sig.index)])
                continue;
            rel.push_back(sig.index);
            std::uint64_t r =
                sig.pure
                    ? 2
                    : 1 + domains_[static_cast<std::size_t>(sig.index)].size();
            radix.push_back(r);
            if (total > std::numeric_limits<std::uint64_t>::max() / r)
                overflow = true;
            else
                total *= r;
        }

        std::uint64_t count = total;
        StateAlphabet& sa = alphabet_[st];
        if (overflow || count > options_.maxLettersPerState) {
            count = options_.maxLettersPerState;
            sa.truncated = true;
        }
        sa.letters.reserve(static_cast<std::size_t>(count));
        std::vector<std::uint32_t> digits(rel.size(), 0);
        for (std::uint64_t code = 0; code < count; ++code) {
            Letter letter;
            for (std::size_t k = 0; k < rel.size(); ++k) {
                if (digits[k] == 0) continue;
                const SignalInfo& sig =
                    sema_.signals[static_cast<std::size_t>(rel[k])];
                letter.sets.emplace_back(
                    rel[k],
                    sig.pure ? -1 : static_cast<std::int32_t>(digits[k] - 1));
            }
            sa.letters.push_back(std::move(letter));
            for (std::size_t k = 0; k < rel.size(); ++k) {
                if (++digits[k] < radix[k]) break;
                digits[k] = 0;
            }
        }
    }
}

void Explorer::resolveChecks()
{
    checks_.clear();
    const ModuleSema& checked = monSema_ ? *monSema_ : sema_;
    const Violation::Kind kind = monSema_ ? Violation::Kind::MonitorSignal
                                          : Violation::Kind::DesignSignal;
    if (!options_.violationSignals.empty()) {
        for (const std::string& name : options_.violationSignals) {
            const SignalInfo* s = checked.findSignal(name);
            if (!s)
                throw EclError("violation signal '" + name +
                               "' not found in the " +
                               (monSema_ ? "monitor" : "design") +
                               std::string(" module"));
            checks_.push_back({kind, s->index, 0, s->name});
        }
    } else {
        for (const SignalInfo& s : checked.signals) {
            if (s.dir == SignalDir::Input) continue;
            if (lowercase(s.name).find("violation") == std::string::npos)
                continue;
            checks_.push_back({kind, s.index, 0, s.name});
        }
    }
    if (monSema_ && checks_.empty() && predicates_.empty())
        throw EclError(
            "monitor flags nothing: no signal named *violation* and no "
            "registered predicate (name one in "
            "ExplorerOptions::violationSignals)");
    for (std::size_t i = 0; i < predicates_.size(); ++i)
        checks_.push_back(
            {Violation::Kind::Predicate, -1, i, predicates_[i].first});
}

// ---------------------------------------------------------------------------
// Explorer: partial-order reduction
// ---------------------------------------------------------------------------

bool Explorer::isCommutativeChunk(std::int32_t chunk) const
{
    // Accepts exactly the shapes a state-independent constant increment
    // of one scalar variable compiles to — at -O0 (discrete
    // AddrVar/Binary sequences) and after the -O2 peephole pass (fused
    // superinstructions). Scalar adds wrap through normalizeScalar /
    // writeScalar truncation (never trap), so any multiset of such
    // updates produces the same slot bytes in any execution order —
    // the property the POR chain decomposition relies on.
    const bc::Chunk& ck = code_->chunks[static_cast<std::size_t>(chunk)];
    if (ck.isExpr) return false;
    const bc::Instr* ins = code_->code.data() + ck.begin;
    const std::size_t n = ck.end - ck.begin;
    auto isAddSub = [](std::int32_t imm) {
        const auto op = static_cast<ast::BinaryOp>(imm);
        return op == ast::BinaryOp::Add || op == ast::BinaryOp::Sub;
    };
    auto isAssignAddSub = [](std::int32_t imm) {
        const auto op = static_cast<ast::AssignOp>(imm);
        return op == ast::AssignOp::Add || op == ast::AssignOp::Sub;
    };
    switch (n) {
    case 2:
        // x++ / x-- fused: [IncDecVar][End] (imm = UnaryOp, always ±1).
        return ins[0].op == bc::Op::IncDecVar && ins[1].op == bc::Op::End;
    case 3:
        // x++ / x--: [AddrVar][IncDec][End].
        return ins[0].op == bc::Op::AddrVar && ins[1].op == bc::Op::IncDec &&
               ins[1].b == ins[0].a && ins[2].op == bc::Op::End;
    case 4:
        // x = x + k fused: [LoadVarSc][BinaryImm][StoreVarSc same slot].
        if (ins[0].op == bc::Op::LoadVarSc &&
            ins[1].op == bc::Op::BinaryImm && ins[1].b == ins[0].a &&
            isAddSub(ins[1].imm) && ins[2].op == bc::Op::StoreVarSc &&
            ins[2].c == ins[1].a && ins[2].imm == ins[0].imm &&
            ins[3].op == bc::Op::End)
            return true;
        // x += k: [AddrVar][ConstInt][StoreCompound][End].
        if (ins[0].op == bc::Op::AddrVar && ins[1].op == bc::Op::ConstInt &&
            ins[2].op == bc::Op::StoreCompound && ins[2].b == ins[0].a &&
            ins[2].c == ins[1].a && isAssignAddSub(ins[2].imm) &&
            ins[3].op == bc::Op::End)
            return true;
        return false;
    case 5:
        // x = x + k / x = k + x / x = x - k:
        // [LoadVarSc][ConstInt][Binary][StoreVarSc same slot][End].
        if (!(ins[0].op == bc::Op::LoadVarSc &&
              ins[1].op == bc::Op::ConstInt && ins[2].op == bc::Op::Binary &&
              isAddSub(ins[2].imm) && ins[3].op == bc::Op::StoreVarSc &&
              ins[3].c == ins[2].a && ins[3].imm == ins[0].imm &&
              ins[4].op == bc::Op::End))
            return false;
        if (ins[2].b == ins[0].a && ins[2].c == ins[1].a) return true;
        // k + x commutes too; k - x does not.
        return ins[2].b == ins[1].a && ins[2].c == ins[0].a &&
               static_cast<ast::BinaryOp>(ins[2].imm) == ast::BinaryOp::Add;
    default:
        return false;
    }
}

bool Explorer::simPure(int state, const std::vector<std::uint8_t>& presentIn,
                       SimResult& out) const
{
    // Presence-only twin of reactModule: walks the decision tree with
    // the given input presence (emissions feed back into it exactly as
    // the real reaction's present[] does) WITHOUT executing data code.
    // Fails — conservatively disqualifying the letter — on anything
    // whose effect presence alone cannot predict: a data-dependent
    // branch, a valued emission, a runtime-error leaf, or a data action
    // outside the commutative-increment whitelist.
    out.endState = -1;
    out.emitted.clear();
    out.chunks.clear();
    std::vector<std::uint8_t> present = presentIn;
    const efsm::FlatNode* nodes = flat_.nodes.data();
    const efsm::FlatAction* actions = flat_.actions.data();
    auto runActs = [&](const efsm::FlatNode& node) -> bool {
        for (std::int32_t i = node.actionsBegin; i < node.actionsEnd; ++i) {
            const efsm::FlatAction& a = actions[i];
            if (a.kind == efsm::FlatAction::Kind::Emit) {
                if (a.chunk >= 0) return false; // valued emission
                present[a.signal] = 1;
                out.emitted.push_back(a.signal);
            } else if (a.chunk >= 0) {
                if (!isCommutativeChunk(a.chunk)) return false;
                out.chunks.push_back(a.chunk);
            }
        }
        return true;
    };
    const std::int32_t root =
        flat_.states[static_cast<std::size_t>(state)].root;
    if (root < 0) return false;
    const efsm::FlatNode* node = &nodes[root];
    while (!node->isLeaf()) {
        if (!runActs(*node)) return false;
        if (node->testSignal < 0) return false; // data-dependent branch
        node = &nodes[present[node->testSignal] != 0 ? node->onTrue
                                                     : node->onFalse];
    }
    if (node->runtimeError()) return false;
    if (!runActs(*node)) return false;
    out.endState = node->nextState;
    return true;
}

void Explorer::computePartialOrder()
{
    // Decides, per (control state, letter), whether a composite pure
    // letter {s1 < s2 < ... < sm} is redundant: the ascending singleton
    // chain s1-then-s2-... reaches the identical packed state, and the
    // singletons (and the empty letter) are never dropped — so removing
    // the composite loses no reachable state and no violation. The
    // chain comparison demands: the same end control state, the same
    // emitted-signal set, and the same multiset of executed data
    // chunks, every chunk a commutative constant increment (simPure
    // enforces that). Letters that emit a checked violation signal stay
    // (the direct transition is the shortest counterexample), and a
    // monitor disables the reduction wholesale: the monitor observes
    // instants, and the decomposition multiplies them.
    if (monSema_) return;

    std::vector<std::uint8_t> checkedSig(sema_.signals.size(), 0);
    for (const Check& ck : checks_)
        if (ck.kind == Violation::Kind::DesignSignal && ck.signal >= 0)
            checkedSig[static_cast<std::size_t>(ck.signal)] = 1;

    auto signalSet = [](std::vector<std::int32_t> v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
        return v;
    };

    // Chains revisit the same (state, signal) steps across the letters
    // of one state — and across states that share successors.
    std::map<std::pair<int, int>, std::optional<SimResult>> singles;
    std::vector<std::uint8_t> present(sema_.signals.size(), 0);
    SimResult combined;

    for (std::size_t st = 0; st < flat_.states.size(); ++st) {
        if (flat_.states[st].dead || flat_.states[st].root < 0) continue;
        StateAlphabet& sa = alphabet_[st];
        std::vector<std::uint8_t> reduced(sa.letters.size(), 0);
        bool any = false;
        for (std::size_t L = 0; L < sa.letters.size(); ++L) {
            const Letter& letter = sa.letters[L];
            if (letter.sets.size() < 2) continue;
            bool allPure = true;
            for (const auto& [sig, dom] : letter.sets)
                if (dom >= 0) {
                    allPure = false;
                    break;
                }
            if (!allPure) continue;

            std::fill(present.begin(), present.end(), 0);
            for (const auto& [sig, dom] : letter.sets)
                present[static_cast<std::size_t>(sig)] = 1;
            if (!simPure(static_cast<int>(st), present, combined)) continue;

            bool emitsChecked = false;
            for (std::int32_t e : combined.emitted)
                if (checkedSig[static_cast<std::size_t>(e)]) {
                    emitsChecked = true;
                    break;
                }
            if (emitsChecked) continue;

            // Ascending singleton chain (letter.sets is built ascending
            // by the mixed-radix enumeration).
            int cur = static_cast<int>(st);
            std::vector<std::int32_t> chainEmits;
            std::vector<std::int32_t> chainChunks;
            bool ok = true;
            for (const auto& [sig, dom] : letter.sets) {
                // An intermediate dead state cannot take further
                // instants; the chain breaks.
                if (cur < 0 ||
                    flat_.states[static_cast<std::size_t>(cur)].dead) {
                    ok = false;
                    break;
                }
                const auto key = std::make_pair(cur, static_cast<int>(sig));
                auto it = singles.find(key);
                if (it == singles.end()) {
                    std::fill(present.begin(), present.end(), 0);
                    present[static_cast<std::size_t>(sig)] = 1;
                    std::optional<SimResult> r;
                    SimResult one;
                    if (simPure(cur, present, one)) r = std::move(one);
                    it = singles.emplace(key, std::move(r)).first;
                }
                if (!it->second) {
                    ok = false;
                    break;
                }
                const SimResult& one = *it->second;
                chainEmits.insert(chainEmits.end(), one.emitted.begin(),
                                  one.emitted.end());
                chainChunks.insert(chainChunks.end(), one.chunks.begin(),
                                   one.chunks.end());
                cur = one.endState;
            }
            if (!ok || cur != combined.endState) continue;
            if (signalSet(combined.emitted) != signalSet(chainEmits))
                continue;
            std::vector<std::int32_t> a = combined.chunks;
            std::vector<std::int32_t> b = std::move(chainChunks);
            std::sort(a.begin(), a.end());
            std::sort(b.begin(), b.end());
            if (a != b) continue;

            reduced[L] = 1;
            any = true;
        }
        if (any) sa.reduced = std::move(reduced);
    }
}

// ---------------------------------------------------------------------------
// Explorer: successor computation
// ---------------------------------------------------------------------------

int Explorer::reactModule(ModuleCtx& ctx, const efsm::FlatProgram& flat,
                          const ModuleSema& sema,
                          const rt::InstanceLayout& layout, int state) const
{
    // The lean twin of SyncEngine::reactFlat / BatchEngine::reactOne:
    // same successor state, emissions and value writes, no counter or
    // event bookkeeping (throughput is states/sec here).
    ctx.vm.resetOpWindow();
    const efsm::FlatNode* nodes = flat.nodes.data();
    const efsm::FlatAction* actions = flat.actions.data();
    std::uint8_t* present = ctx.present.data();
    auto runActs = [&](const efsm::FlatNode& node) {
        for (std::int32_t i = node.actionsBegin; i < node.actionsEnd; ++i) {
            const efsm::FlatAction& a = actions[i];
            if (a.kind == efsm::FlatAction::Kind::Emit) {
                if (a.chunk >= 0) {
                    Value v = ctx.vm.runExpr(a.chunk, ctx.store, ctx.sigs);
                    storeSigValue(
                        ctx.slice.data(), layout,
                        sema.signals[static_cast<std::size_t>(a.signal)], v);
                }
                present[a.signal] = 1;
            } else if (a.chunk >= 0) {
                ctx.vm.runAction(a.chunk, ctx.store, ctx.sigs);
            }
        }
    };

    const efsm::FlatNode* node =
        &nodes[flat.states[static_cast<std::size_t>(state)].root];
    while (!node->isLeaf()) {
        runActs(*node);
        bool taken = node->testSignal >= 0
                         ? present[node->testSignal] != 0
                         : ctx.vm.runPredicate(node->predChunk, ctx.store,
                                               ctx.sigs);
        node = &nodes[taken ? node->onTrue : node->onFalse];
    }
    if (node->runtimeError())
        throw EclError("instantaneous loop detected at runtime (a "
                       "statically-unverifiable loop path was reached)");
    runActs(*node);
    return node->nextState;
}

void Explorer::expandOne(Worker& w, const std::uint8_t* rec, std::uint32_t id,
                         std::uint32_t letterIdx)
{
    const int ds = readI32(rec);
    const Letter& letter =
        alphabet_[static_cast<std::size_t>(ds)].letters[letterIdx];

    Succ s;
    s.parent = id;
    s.letter = letterIdx;

    // Load the design instance and apply the letter (presence + values).
    std::memcpy(w.design.slice.data(), rec + headerBytes_, layout_.dataBytes);
    std::memset(w.design.present.data(), 0, w.design.present.size());
    for (const auto& [sig, dom] : letter.sets) {
        w.design.present[static_cast<std::size_t>(sig)] = 1;
        if (dom >= 0)
            storeSigValue(
                w.design.slice.data(), layout_,
                sema_.signals[static_cast<std::size_t>(sig)],
                domains_[static_cast<std::size_t>(sig)]
                        [static_cast<std::size_t>(dom)]);
    }

    int newDs = ds;
    int newMs = -1;
    try {
        if (nativeReact_) {
            // AOT path: the generated ecl_native_react runs directly on
            // the worker's slice and presence row (the generated code
            // marks every emission present, locals included, so monitor
            // wiring and signal checks below see the VM's exact
            // instant). Fuel reseeds per reaction like the batch
            // engine's native path; a nonzero return carries the same
            // trap message the VM path throws.
            rt::EclNativeCtx ctx{};
            ctx.data = w.design.slice.data();
            ctx.present = w.design.present.data();
            ctx.emitted = w.emitRing.data();
            ctx.state = ds;
            ctx.depth = 1;
            ctx.fuel = rt::kNativeReactFuel;
            const int rc = nativeReact_(&ctx);
            if (rc != 0)
                throw EclError(ctx.error ? ctx.error
                                         : "native reaction failed without "
                                           "a message");
            newDs = ctx.state;
        } else {
            newDs = reactModule(w.design, flat_, sema_, layout_, ds);
        }
        if (monSema_) {
            const int ms = readI32(rec + 4);
            std::memcpy(w.monitor->slice.data(),
                        rec + headerBytes_ + layout_.dataBytes,
                        monLayout_.dataBytes);
            std::memset(w.monitor->present.data(), 0,
                        w.monitor->present.size());
            newMs = ms;
            if (!monFlat_->states[static_cast<std::size_t>(ms)].dead) {
                // Feed the monitor the design's instant: presence (and
                // value) of every wired signal, inputs and emissions
                // alike.
                for (const MonitorWire& wire : wires_) {
                    if (!w.design.present[static_cast<std::size_t>(
                            wire.designSig)])
                        continue;
                    w.monitor
                        ->present[static_cast<std::size_t>(wire.monitorSig)] =
                        1;
                    if (wire.valued) {
                        const SignalInfo& dsig =
                            sema_.signals[static_cast<std::size_t>(
                                wire.designSig)];
                        const SignalInfo& msig =
                            monSema_->signals[static_cast<std::size_t>(
                                wire.monitorSig)];
                        const std::uint8_t* src =
                            w.design.slice.data() +
                            layout_.sigOffsets[static_cast<std::size_t>(
                                wire.designSig)];
                        std::uint8_t* dst =
                            w.monitor->slice.data() +
                            monLayout_.sigOffsets[static_cast<std::size_t>(
                                wire.monitorSig)];
                        if (msig.valueType->isScalar())
                            writeScalar(dst, msig.valueType,
                                        readScalar(src, dsig.valueType));
                        else
                            std::memcpy(dst, src, msig.valueType->size());
                    }
                }
                newMs = reactModule(*w.monitor, *monFlat_, *monSema_,
                                    monLayout_, ms);
            }
        }
    } catch (const EclError& e) {
        // A trapped reaction is itself a verification result: the trace
        // to it demonstrates a runtime error (instantaneous-loop leaf,
        // data runtime failure) is reachable.
        s.runtimeError = true;
        s.errorText = e.what();
        w.packed.resize(w.packed.size() + packedSize_); // placeholder
        w.succs.push_back(std::move(s));
        return;
    }

    // Violation checks run per transition: emissions are per-instant and
    // deliberately not part of the packed state.
    for (std::size_t c = 0; c < checks_.size(); ++c) {
        const Check& ck = checks_[c];
        if (ck.kind == Violation::Kind::Predicate) {
            StateView view(sema_, layout_, newDs, w.design.slice.data());
            if (predicates_[ck.predicate].second(view)) {
                s.check = static_cast<std::int32_t>(c);
                break;
            }
        } else {
            const ModuleCtx& ctx = ck.kind == Violation::Kind::MonitorSignal
                                       ? *w.monitor
                                       : w.design;
            if (ctx.present[static_cast<std::size_t>(ck.signal)]) {
                s.check = static_cast<std::int32_t>(c);
                break;
            }
        }
    }

    const std::size_t off = w.packed.size();
    w.packed.resize(off + packedSize_);
    std::uint8_t* out = w.packed.data() + off;
    writeI32(out, newDs);
    if (monSema_) writeI32(out + 4, newMs);
    std::memcpy(out + headerBytes_, w.design.slice.data(), layout_.dataBytes);
    if (monSema_)
        std::memcpy(out + headerBytes_ + layout_.dataBytes,
                    w.monitor->slice.data(), monLayout_.dataBytes);
    w.succs.push_back(std::move(s));
}

void Explorer::expandRange(Worker& w, std::uint32_t begin, std::uint32_t end)
{
    try {
        for (std::uint32_t id = begin; id < end; ++id) {
            // Frontier records travel in the level buffer — workers
            // never touch the store (its at() pointers are invalidated
            // by the merge phase's interning, and a bitstate store has
            // no records at all).
            const std::uint8_t* rec =
                levelRecs_.data() +
                static_cast<std::size_t>(id - levelBase_) * packedSize_;
            const int ds = readI32(rec);
            if (flat_.states[static_cast<std::size_t>(ds)].dead)
                continue; // terminated: no future instants
            const StateAlphabet& sa =
                alphabet_[static_cast<std::size_t>(ds)];
            if (sa.truncated) w.sawTruncation = true;
            for (std::uint32_t L = 0;
                 L < static_cast<std::uint32_t>(sa.letters.size()); ++L) {
                if (!sa.reduced.empty() && sa.reduced[L]) {
                    ++w.lettersReduced;
                    continue;
                }
                expandOne(w, rec, id, L);
            }
        }
    } catch (...) {
        w.fatal = std::current_exception();
    }
}

// ---------------------------------------------------------------------------
// Explorer: merge, violations, traces
// ---------------------------------------------------------------------------

bool Explorer::mergeWorker(Worker& w, ExploreResult& out)
{
    const bool budgeted =
        options_.storeBudgetBytes != 0 && !store_->lossy();
    const std::uint8_t* bytes = w.packed.data();
    for (std::size_t i = 0; i < w.succs.size();
         ++i, bytes += packedSize_) {
        const Succ& s = w.succs[i];
        ++out.stats.transitions;
        if (s.runtimeError || s.check >= 0) {
            recordViolation(s, bytes, out);
            return true;
        }
        // The state cap (and the store memory budget) stops interning
        // deterministically — merge order is canonical — but the
        // remaining transitions of the level are still scanned for
        // violations.
        if (store_->size() >= options_.maxStates) continue;
        if (budgeted && store_->memoryBytes() > options_.storeBudgetBytes)
            continue;
        auto [newId, isNew] = store_->intern(bytes);
        (void)newId;
        if (isNew) {
            parents_.push_back({s.parent, s.letter});
            depths_.push_back(depths_[s.parent] + 1);
            designStates_.push_back(readI32(bytes));
            nextRecs_.insert(nextRecs_.end(), bytes, bytes + packedSize_);
        }
    }
    return false;
}

void Explorer::recordViolation(const Succ& s, const std::uint8_t* packed,
                               ExploreResult& out)
{
    out.violated = true;
    Violation v;
    if (s.runtimeError) {
        v.kind = Violation::Kind::RuntimeError;
        v.what = s.errorText;
    } else {
        const Check& ck = checks_[static_cast<std::size_t>(s.check)];
        v.kind = ck.kind;
        v.what = ck.name;
        v.signal = ck.signal;
        v.state.assign(packed, packed + packedSize_);
        if (ck.kind != Violation::Kind::Predicate) {
            const bool onMonitor = ck.kind == Violation::Kind::MonitorSignal;
            const ModuleSema& sema = onMonitor ? *monSema_ : sema_;
            const rt::InstanceLayout& layout =
                onMonitor ? monLayout_ : layout_;
            const SignalInfo& sig =
                sema.signals[static_cast<std::size_t>(ck.signal)];
            if (!sig.pure) {
                const std::uint8_t* data =
                    packed + headerBytes_ +
                    (onMonitor ? layout_.dataBytes : 0);
                v.value = Value::fromBytes(
                    sig.valueType,
                    data +
                        layout.sigOffsets[static_cast<std::size_t>(
                            ck.signal)]);
            }
        }
    }
    out.trace = buildTrace(s.parent, s.letter);
    v.depth = static_cast<int>(out.trace.size());
    out.violation = std::move(v);
}

TraceStep Explorer::letterToStep(std::uint32_t stateId,
                                 std::uint32_t letterIdx) const
{
    // designStates_ carries every id's control state: trace rebuilding
    // must not read the store (bitstate retains no records).
    const int ds = designStates_[stateId];
    const Letter& letter =
        alphabet_[static_cast<std::size_t>(ds)].letters[letterIdx];
    TraceStep step;
    step.inputs.reserve(letter.sets.size());
    for (const auto& [sig, dom] : letter.sets) {
        InputEvent ev;
        ev.signal = sig;
        if (dom >= 0)
            ev.value = domains_[static_cast<std::size_t>(sig)]
                               [static_cast<std::size_t>(dom)];
        step.inputs.push_back(std::move(ev));
    }
    return step;
}

std::vector<TraceStep> Explorer::buildTrace(std::uint32_t parent,
                                            std::uint32_t letterIdx) const
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> chain;
    chain.emplace_back(parent, letterIdx);
    std::uint32_t cur = parent;
    while (cur != 0) {
        const ParentLink& pl = parents_[cur];
        chain.emplace_back(pl.parent, pl.letter);
        cur = pl.parent;
    }
    std::reverse(chain.begin(), chain.end());
    std::vector<TraceStep> steps;
    steps.reserve(chain.size());
    for (const auto& [stateId, letter] : chain)
        steps.push_back(letterToStep(stateId, letter));
    return steps;
}

// ---------------------------------------------------------------------------
// Explorer: worker pool + main loops
// ---------------------------------------------------------------------------

ExploreResult Explorer::run()
{
    if (ran_)
        throw EclError("Explorer::run is single-shot; build a fresh "
                       "explorer per run");
    ran_ = true;

    headerBytes_ = monSema_ ? 8 : 4;
    packedSize_ = headerBytes_ + layout_.dataBytes +
                  (monSema_ ? monLayout_.dataBytes : 0);
    StoreConfig cfg;
    cfg.memoryBudgetBytes = options_.storeBudgetBytes;
    cfg.componentSizes = {headerBytes_, layout_.dataBytes};
    if (monSema_) cfg.componentSizes.push_back(monLayout_.dataBytes);
    store_ = StateStore::make(options_.storeKind, packedSize_, cfg);
    buildAlphabet();
    resolveChecks();
    if (options_.partialOrder) computePartialOrder();

    // Root: pre-boot — initial control states, all data zero. The first
    // explored instant is the boot reaction (which may consume inputs).
    std::vector<std::uint8_t> root(packedSize_, 0);
    writeI32(root.data(), flat_.initialState);
    if (monSema_) writeI32(root.data() + 4, monFlat_->initialState);
    store_->intern(root.data());
    designStates_.push_back(flat_.initialState);
    parents_.push_back({std::numeric_limits<std::uint32_t>::max(), 0});
    depths_.push_back(0);
    levelRecs_ = root;
    levelBase_ = 0;

    const auto t0 = std::chrono::steady_clock::now();
    ExploreResult out = options_.strategy == Strategy::Dfs ? runDfs()
                                                           : runBfs();
    const auto t1 = std::chrono::steady_clock::now();

    out.stats.states = store_->size();
    out.stats.controlStates = flat_.states.size();
    out.stats.storeKind = store_->kind();
    out.stats.lossyStore = store_->lossy();
    out.stats.storeMemoryBytes = store_->memoryBytes();
    out.stats.usedNativeSuccessors = nativeReact_ != nullptr;
    for (const auto& w : workers_)
        out.stats.lettersReduced += w->lettersReduced;
    out.stats.seconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.stats.statesPerSec =
        out.stats.seconds > 0
            ? static_cast<double>(out.stats.states) / out.stats.seconds
            : 0;
    return out;
}

ExploreResult Explorer::runBfs()
{
    const int T = std::max(1, options_.threads);
    workers_.clear();
    for (int i = 0; i < T; ++i)
        workers_.push_back(std::make_unique<Worker>(*this));
    ranges_.assign(static_cast<std::size_t>(T), {0, 0});
    // Expansion is the callback's only job; failures land in the
    // worker's exception_ptr, rethrown after each epoch.
    rt::WorkerPool pool(T, [this](int w) {
        const std::size_t i = static_cast<std::size_t>(w);
        expandRange(*workers_[i], ranges_[i].first, ranges_[i].second);
    });

    ExploreResult out;
    std::uint32_t levelBegin = 0;
    std::uint32_t levelEnd = 1;
    int depth = 0;
    bool capped = false;
    bool stopped = false;

    out.stats.peakFrontier = 1;
    while (levelBegin < levelEnd && depth < options_.maxDepth && !stopped &&
           !capped) {
        for (const auto& w : workers_) {
            w->packed.clear();
            w->succs.clear();
            w->fatal = nullptr;
        }
        const std::uint32_t n = levelEnd - levelBegin;
        const std::uint32_t chunk = (n + static_cast<std::uint32_t>(T) - 1) /
                                    static_cast<std::uint32_t>(T);
        for (std::size_t w = 0; w < static_cast<std::size_t>(T); ++w) {
            const std::uint32_t b =
                std::min(n, static_cast<std::uint32_t>(w) * chunk);
            ranges_[w] = {levelBegin + b, levelBegin + std::min(n, b + chunk)};
        }

        pool.run();
        for (const auto& w : workers_)
            if (w->fatal) std::rethrow_exception(w->fatal);

        ++depth;
        // Canonical merge: worker chunks are contiguous ascending
        // frontier ranges, so concatenation in worker order IS
        // frontier x letter order — ids and the first violation are
        // thread-count independent. New records accumulate in
        // nextRecs_, becoming the next level's frontier buffer.
        nextRecs_.clear();
        for (const auto& w : workers_) {
            if (mergeWorker(*w, out)) {
                stopped = true;
                break;
            }
        }
        levelBegin = levelEnd;
        levelEnd = store_->size();
        levelBase_ = levelBegin;
        levelRecs_.swap(nextRecs_);
        out.stats.peakFrontier =
            std::max(out.stats.peakFrontier,
                     static_cast<std::uint64_t>(levelEnd - levelBegin));
        out.stats.depthReached = depth;
        if (store_->size() >= options_.maxStates) capped = true;
        if (options_.storeBudgetBytes != 0 && !store_->lossy() &&
            store_->memoryBytes() > options_.storeBudgetBytes)
            capped = true;
    }

    for (const auto& w : workers_)
        if (w->sawTruncation) out.stats.alphabetTruncated = true;
    out.stats.complete = !stopped && !capped &&
                         !out.stats.alphabetTruncated &&
                         levelBegin == levelEnd;
    return out;
}

ExploreResult Explorer::runDfs()
{
    workers_.clear();
    workers_.push_back(std::make_unique<Worker>(*this));
    Worker& w = *workers_[0];

    ExploreResult out;
    // Parallel stacks: ids plus their packed records (entry i's record
    // at byte offset i * packedSize_) — DFS re-expansion must not read
    // the store either.
    std::vector<std::uint32_t> stack{0};
    std::vector<std::uint8_t> recStack = levelRecs_;
    std::vector<std::uint8_t> cur(packedSize_);
    out.stats.peakFrontier = 1;
    bool capped = false;
    bool depthBounded = false;
    bool stopped = false;

    while (!stack.empty() && !stopped && !capped) {
        const std::uint32_t id = stack.back();
        stack.pop_back();
        std::memcpy(cur.data(), recStack.data() + stack.size() * packedSize_,
                    packedSize_);
        recStack.resize(stack.size() * packedSize_);
        const int ds = readI32(cur.data());
        if (flat_.states[static_cast<std::size_t>(ds)].dead) continue;
        if (depths_[id] >=
            static_cast<std::uint32_t>(options_.maxDepth)) {
            depthBounded = true;
            continue;
        }
        out.stats.depthReached =
            std::max(out.stats.depthReached,
                     static_cast<int>(depths_[id]) + 1);

        w.packed.clear();
        w.succs.clear();
        const StateAlphabet& sa = alphabet_[static_cast<std::size_t>(ds)];
        if (sa.truncated) w.sawTruncation = true;
        for (std::uint32_t L = 0;
             L < static_cast<std::uint32_t>(sa.letters.size()); ++L) {
            if (!sa.reduced.empty() && sa.reduced[L]) {
                ++w.lettersReduced;
                continue;
            }
            expandOne(w, cur.data(), id, L);
        }

        const std::uint32_t before = store_->size();
        nextRecs_.clear();
        if (mergeWorker(w, out)) {
            stopped = true;
            break;
        }
        // Push in reverse so the letter-0 successor is explored first.
        const std::uint32_t added = store_->size() - before;
        for (std::uint32_t k = added; k > 0;) {
            --k;
            stack.push_back(before + k);
            recStack.insert(recStack.end(),
                            nextRecs_.data() +
                                static_cast<std::size_t>(k) * packedSize_,
                            nextRecs_.data() +
                                static_cast<std::size_t>(k + 1) *
                                    packedSize_);
        }
        out.stats.peakFrontier = std::max(
            out.stats.peakFrontier,
            static_cast<std::uint64_t>(stack.size()));
        if (store_->size() >= options_.maxStates) capped = true;
        if (options_.storeBudgetBytes != 0 && !store_->lossy() &&
            store_->memoryBytes() > options_.storeBudgetBytes)
            capped = true;
    }

    if (w.sawTruncation) out.stats.alphabetTruncated = true;
    out.stats.complete = !stopped && !capped && !depthBounded &&
                         !out.stats.alphabetTruncated && stack.empty();
    return out;
}

std::uint64_t Explorer::stateDigest() const
{
    if (!store_) throw EclError("stateDigest before run()");
    return store_->digest();
}

const StateStore& Explorer::stateStore() const
{
    if (!store_) throw EclError("stateStore before run()");
    return *store_;
}

} // namespace ecl::verify
