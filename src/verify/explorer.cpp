#include "src/verify/explorer.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>

namespace ecl::verify {

namespace {

void writeI32(std::uint8_t* p, std::int32_t v) { std::memcpy(p, &v, 4); }

std::int32_t readI32(const std::uint8_t* p)
{
    std::int32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

/// Writes an emitted/injected value into a signal's arena slot with the
/// same normalization as SignalEnv::setValue and the batch engine.
void storeSigValue(std::uint8_t* slice, const rt::InstanceLayout& layout,
                   const SignalInfo& info, const Value& v)
{
    std::uint8_t* slot =
        slice + layout.sigOffsets[static_cast<std::size_t>(info.index)];
    if (info.valueType->isScalar())
        writeScalar(slot, info.valueType, v.toInt());
    else if (v.type() == info.valueType)
        std::memcpy(slot, v.data(), info.valueType->size());
    else
        throw EclError("signal value type mismatch for '" + info.name + "'");
}

std::string lowercase(const std::string& s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// StateView
// ---------------------------------------------------------------------------

std::int64_t StateView::var(const std::string& name) const
{
    const VarInfo* v = sema_->findVar(name);
    if (!v) throw EclError("StateView: no variable named '" + name + "'");
    return var(v->index);
}

std::int64_t StateView::signal(int idx) const
{
    return signalValue(idx).toInt();
}

Value StateView::signalValue(int idx) const
{
    const SignalInfo& s = sema_->signals[static_cast<std::size_t>(idx)];
    if (s.pure)
        throw EclError("StateView: value read on pure signal '" + s.name +
                       "'");
    return Value::fromBytes(
        s.valueType,
        data_ + layout_->sigOffsets[static_cast<std::size_t>(idx)]);
}

// ---------------------------------------------------------------------------
// Monitor wiring
// ---------------------------------------------------------------------------

std::vector<MonitorWire> wireMonitor(const ModuleSema& design,
                                     const ModuleSema& monitor)
{
    std::vector<MonitorWire> wires;
    for (const SignalInfo& m : monitor.signals) {
        if (m.dir != SignalDir::Input) continue;
        const SignalInfo* d = design.findSignal(m.name);
        if (!d)
            throw EclError("monitor input '" + m.name +
                           "' matches no design signal");
        MonitorWire w;
        w.monitorSig = m.index;
        w.designSig = d->index;
        if (!m.pure) {
            if (d->pure)
                throw EclError("monitor input '" + m.name +
                               "' is valued but design signal '" + d->name +
                               "' is pure");
            // Cross-compiler types: scalars normalize through int64,
            // aggregates transfer raw bytes — sizes must agree.
            if (!m.valueType->isScalar() &&
                m.valueType->size() != d->valueType->size())
                throw EclError(
                    "monitor input '" + m.name + "' value size (" +
                    std::to_string(m.valueType->size()) +
                    ") differs from design signal's (" +
                    std::to_string(d->valueType->size()) + ")");
            w.valued = true;
        }
        wires.push_back(w);
    }
    if (wires.empty())
        throw EclError("monitor module has no input signals to wire");
    return wires;
}

// ---------------------------------------------------------------------------
// Worker scratch
// ---------------------------------------------------------------------------

Explorer::ModuleCtx::ModuleCtx(const ModuleSema& sema,
                               const rt::InstanceLayout& layout,
                               std::shared_ptr<const bc::Program> code)
    : slice(layout.stride, 0), present(sema.signals.size(), 0),
      store(sema.vars, slice.data(), layout.varOffsets),
      sigs(sema, layout, slice.data()), vm(std::move(code))
{
}

Explorer::Worker::Worker(const Explorer& ex)
    : design(ex.sema_, ex.layout_, ex.code_)
{
    if (ex.monSema_)
        monitor.emplace(*ex.monSema_, ex.monLayout_, ex.monCode_);
}

// ---------------------------------------------------------------------------
// Explorer: setup
// ---------------------------------------------------------------------------

Explorer::Explorer(const efsm::FlatProgram& flat,
                   std::shared_ptr<const bc::Program> code,
                   const ModuleSema& sema, ExplorerOptions options)
    : flat_(flat), code_(std::move(code)), sema_(sema),
      layout_(rt::computeInstanceLayout(sema)), options_(std::move(options))
{
    if (!code_)
        throw EclError("Explorer requires the compiled bytecode program");
    if (options_.maxStates == 0 || options_.maxLettersPerState == 0)
        throw EclError("Explorer: maxStates and maxLettersPerState must be "
                       "non-zero");
}

void Explorer::attachMonitor(const efsm::FlatProgram& flat,
                             std::shared_ptr<const bc::Program> code,
                             const ModuleSema& sema,
                             std::shared_ptr<const void> owner)
{
    if (ran_) throw EclError("attachMonitor after run()");
    if (monSema_) throw EclError("only one monitor is supported");
    if (!code)
        throw EclError("monitor module has no compiled bytecode program");
    wires_ = wireMonitor(sema_, sema);
    monFlat_ = &flat;
    monCode_ = std::move(code);
    monSema_ = &sema;
    monLayout_ = rt::computeInstanceLayout(sema);
    if (owner) owners_.push_back(std::move(owner));
}

void Explorer::addPredicate(std::string name, Predicate fn)
{
    if (ran_) throw EclError("addPredicate after run()");
    if (!fn) throw EclError("addPredicate: empty predicate");
    predicates_.emplace_back(std::move(name), std::move(fn));
}

void Explorer::buildAlphabet()
{
    // Value domains per valued input: configured scalars, the zero value
    // for aggregates (finite-alphabet requirement).
    domains_.assign(sema_.signals.size(), {});
    for (const SignalInfo& sig : sema_.signals) {
        if (sig.dir != SignalDir::Input || sig.pure) continue;
        std::vector<Value>& dom =
            domains_[static_cast<std::size_t>(sig.index)];
        if (!sig.valueType->isScalar()) {
            dom.emplace_back(sig.valueType); // zeroed aggregate
            continue;
        }
        auto it = options_.scalarDomains.find(sig.name);
        const std::vector<std::int64_t>& vals =
            it != options_.scalarDomains.end() ? it->second
                                               : options_.scalarDomain;
        if (vals.empty())
            throw EclError("empty value domain for input '" + sig.name + "'");
        dom.reserve(vals.size());
        for (std::int64_t v : vals)
            dom.push_back(Value::fromInt(sig.valueType, v));
    }

    // Pure design inputs the monitor observes must never be pruned: the
    // design's decision tree may ignore them, but the monitor's awaits
    // do not.
    std::vector<std::uint8_t> monitorWired(sema_.signals.size(), 0);
    for (const MonitorWire& w : wires_)
        monitorWired[static_cast<std::size_t>(w.designSig)] = 1;

    // Canonical letter list per design control state: mixed-radix
    // enumeration over the state's relevant inputs, lowest signal index
    // least significant, digit 0 = absent. Letter 0 is always the empty
    // instant.
    alphabet_.assign(flat_.states.size(), {});
    std::vector<std::uint8_t> tested(sema_.signals.size(), 0);
    std::vector<std::int32_t> stack;
    for (std::size_t st = 0; st < flat_.states.size(); ++st) {
        std::fill(tested.begin(), tested.end(), 0);
        if (options_.pruneInputs) {
            stack.clear();
            if (flat_.states[st].root >= 0)
                stack.push_back(flat_.states[st].root);
            while (!stack.empty()) {
                const efsm::FlatNode& n =
                    flat_.nodes[static_cast<std::size_t>(stack.back())];
                stack.pop_back();
                if (n.isLeaf()) continue;
                if (n.testSignal >= 0)
                    tested[static_cast<std::size_t>(n.testSignal)] = 1;
                stack.push_back(n.onTrue);
                stack.push_back(n.onFalse);
            }
        }

        std::vector<int> rel;
        std::vector<std::uint64_t> radix;
        std::uint64_t total = 1;
        bool overflow = false;
        for (const SignalInfo& sig : sema_.signals) {
            if (sig.dir != SignalDir::Input) continue;
            // Dirty-set pruning: an untested pure input cannot influence
            // this state's reaction — unless the monitor observes it.
            // Valued inputs always can (their value write persists in
            // the state bytes).
            if (options_.pruneInputs && sig.pure &&
                !tested[static_cast<std::size_t>(sig.index)] &&
                !monitorWired[static_cast<std::size_t>(sig.index)])
                continue;
            rel.push_back(sig.index);
            std::uint64_t r =
                sig.pure
                    ? 2
                    : 1 + domains_[static_cast<std::size_t>(sig.index)].size();
            radix.push_back(r);
            if (total > std::numeric_limits<std::uint64_t>::max() / r)
                overflow = true;
            else
                total *= r;
        }

        std::uint64_t count = total;
        StateAlphabet& sa = alphabet_[st];
        if (overflow || count > options_.maxLettersPerState) {
            count = options_.maxLettersPerState;
            sa.truncated = true;
        }
        sa.letters.reserve(static_cast<std::size_t>(count));
        std::vector<std::uint32_t> digits(rel.size(), 0);
        for (std::uint64_t code = 0; code < count; ++code) {
            Letter letter;
            for (std::size_t k = 0; k < rel.size(); ++k) {
                if (digits[k] == 0) continue;
                const SignalInfo& sig =
                    sema_.signals[static_cast<std::size_t>(rel[k])];
                letter.sets.emplace_back(
                    rel[k],
                    sig.pure ? -1 : static_cast<std::int32_t>(digits[k] - 1));
            }
            sa.letters.push_back(std::move(letter));
            for (std::size_t k = 0; k < rel.size(); ++k) {
                if (++digits[k] < radix[k]) break;
                digits[k] = 0;
            }
        }
    }
}

void Explorer::resolveChecks()
{
    checks_.clear();
    const ModuleSema& checked = monSema_ ? *monSema_ : sema_;
    const Violation::Kind kind = monSema_ ? Violation::Kind::MonitorSignal
                                          : Violation::Kind::DesignSignal;
    if (!options_.violationSignals.empty()) {
        for (const std::string& name : options_.violationSignals) {
            const SignalInfo* s = checked.findSignal(name);
            if (!s)
                throw EclError("violation signal '" + name +
                               "' not found in the " +
                               (monSema_ ? "monitor" : "design") +
                               std::string(" module"));
            checks_.push_back({kind, s->index, 0, s->name});
        }
    } else {
        for (const SignalInfo& s : checked.signals) {
            if (s.dir == SignalDir::Input) continue;
            if (lowercase(s.name).find("violation") == std::string::npos)
                continue;
            checks_.push_back({kind, s.index, 0, s.name});
        }
    }
    if (monSema_ && checks_.empty() && predicates_.empty())
        throw EclError(
            "monitor flags nothing: no signal named *violation* and no "
            "registered predicate (name one in "
            "ExplorerOptions::violationSignals)");
    for (std::size_t i = 0; i < predicates_.size(); ++i)
        checks_.push_back(
            {Violation::Kind::Predicate, -1, i, predicates_[i].first});
}

// ---------------------------------------------------------------------------
// Explorer: successor computation
// ---------------------------------------------------------------------------

int Explorer::reactModule(ModuleCtx& ctx, const efsm::FlatProgram& flat,
                          const ModuleSema& sema,
                          const rt::InstanceLayout& layout, int state) const
{
    // The lean twin of SyncEngine::reactFlat / BatchEngine::reactOne:
    // same successor state, emissions and value writes, no counter or
    // event bookkeeping (throughput is states/sec here).
    ctx.vm.resetOpWindow();
    const efsm::FlatNode* nodes = flat.nodes.data();
    const efsm::FlatAction* actions = flat.actions.data();
    std::uint8_t* present = ctx.present.data();
    auto runActs = [&](const efsm::FlatNode& node) {
        for (std::int32_t i = node.actionsBegin; i < node.actionsEnd; ++i) {
            const efsm::FlatAction& a = actions[i];
            if (a.kind == efsm::FlatAction::Kind::Emit) {
                if (a.chunk >= 0) {
                    Value v = ctx.vm.runExpr(a.chunk, ctx.store, ctx.sigs);
                    storeSigValue(
                        ctx.slice.data(), layout,
                        sema.signals[static_cast<std::size_t>(a.signal)], v);
                }
                present[a.signal] = 1;
            } else if (a.chunk >= 0) {
                ctx.vm.runAction(a.chunk, ctx.store, ctx.sigs);
            }
        }
    };

    const efsm::FlatNode* node =
        &nodes[flat.states[static_cast<std::size_t>(state)].root];
    while (!node->isLeaf()) {
        runActs(*node);
        bool taken = node->testSignal >= 0
                         ? present[node->testSignal] != 0
                         : ctx.vm.runPredicate(node->predChunk, ctx.store,
                                               ctx.sigs);
        node = &nodes[taken ? node->onTrue : node->onFalse];
    }
    if (node->runtimeError())
        throw EclError("instantaneous loop detected at runtime (a "
                       "statically-unverifiable loop path was reached)");
    runActs(*node);
    return node->nextState;
}

std::int32_t Explorer::designStateOf(const std::uint8_t* rec) const
{
    return readI32(rec);
}

void Explorer::expandOne(Worker& w, std::uint32_t id, std::uint32_t letterIdx)
{
    const std::uint8_t* rec = store_->at(id);
    const int ds = designStateOf(rec);
    const Letter& letter =
        alphabet_[static_cast<std::size_t>(ds)].letters[letterIdx];

    Succ s;
    s.parent = id;
    s.letter = letterIdx;

    // Load the design instance and apply the letter (presence + values).
    std::memcpy(w.design.slice.data(), rec + headerBytes_, layout_.dataBytes);
    std::memset(w.design.present.data(), 0, w.design.present.size());
    for (const auto& [sig, dom] : letter.sets) {
        w.design.present[static_cast<std::size_t>(sig)] = 1;
        if (dom >= 0)
            storeSigValue(
                w.design.slice.data(), layout_,
                sema_.signals[static_cast<std::size_t>(sig)],
                domains_[static_cast<std::size_t>(sig)]
                        [static_cast<std::size_t>(dom)]);
    }

    int newDs = ds;
    int newMs = -1;
    try {
        newDs = reactModule(w.design, flat_, sema_, layout_, ds);
        if (monSema_) {
            const int ms = readI32(rec + 4);
            std::memcpy(w.monitor->slice.data(),
                        rec + headerBytes_ + layout_.dataBytes,
                        monLayout_.dataBytes);
            std::memset(w.monitor->present.data(), 0,
                        w.monitor->present.size());
            newMs = ms;
            if (!monFlat_->states[static_cast<std::size_t>(ms)].dead) {
                // Feed the monitor the design's instant: presence (and
                // value) of every wired signal, inputs and emissions
                // alike.
                for (const MonitorWire& wire : wires_) {
                    if (!w.design.present[static_cast<std::size_t>(
                            wire.designSig)])
                        continue;
                    w.monitor
                        ->present[static_cast<std::size_t>(wire.monitorSig)] =
                        1;
                    if (wire.valued) {
                        const SignalInfo& dsig =
                            sema_.signals[static_cast<std::size_t>(
                                wire.designSig)];
                        const SignalInfo& msig =
                            monSema_->signals[static_cast<std::size_t>(
                                wire.monitorSig)];
                        const std::uint8_t* src =
                            w.design.slice.data() +
                            layout_.sigOffsets[static_cast<std::size_t>(
                                wire.designSig)];
                        std::uint8_t* dst =
                            w.monitor->slice.data() +
                            monLayout_.sigOffsets[static_cast<std::size_t>(
                                wire.monitorSig)];
                        if (msig.valueType->isScalar())
                            writeScalar(dst, msig.valueType,
                                        readScalar(src, dsig.valueType));
                        else
                            std::memcpy(dst, src, msig.valueType->size());
                    }
                }
                newMs = reactModule(*w.monitor, *monFlat_, *monSema_,
                                    monLayout_, ms);
            }
        }
    } catch (const EclError& e) {
        // A trapped reaction is itself a verification result: the trace
        // to it demonstrates a runtime error (instantaneous-loop leaf,
        // data runtime failure) is reachable.
        s.runtimeError = true;
        s.errorText = e.what();
        w.packed.resize(w.packed.size() + packedSize_); // placeholder
        w.succs.push_back(std::move(s));
        return;
    }

    // Violation checks run per transition: emissions are per-instant and
    // deliberately not part of the packed state.
    for (std::size_t c = 0; c < checks_.size(); ++c) {
        const Check& ck = checks_[c];
        if (ck.kind == Violation::Kind::Predicate) {
            StateView view(sema_, layout_, newDs, w.design.slice.data());
            if (predicates_[ck.predicate].second(view)) {
                s.check = static_cast<std::int32_t>(c);
                break;
            }
        } else {
            const ModuleCtx& ctx = ck.kind == Violation::Kind::MonitorSignal
                                       ? *w.monitor
                                       : w.design;
            if (ctx.present[static_cast<std::size_t>(ck.signal)]) {
                s.check = static_cast<std::int32_t>(c);
                break;
            }
        }
    }

    const std::size_t off = w.packed.size();
    w.packed.resize(off + packedSize_);
    std::uint8_t* out = w.packed.data() + off;
    writeI32(out, newDs);
    if (monSema_) writeI32(out + 4, newMs);
    std::memcpy(out + headerBytes_, w.design.slice.data(), layout_.dataBytes);
    if (monSema_)
        std::memcpy(out + headerBytes_ + layout_.dataBytes,
                    w.monitor->slice.data(), monLayout_.dataBytes);
    w.succs.push_back(std::move(s));
}

void Explorer::expandRange(Worker& w, std::uint32_t begin, std::uint32_t end)
{
    try {
        for (std::uint32_t id = begin; id < end; ++id) {
            const int ds = designStateOf(store_->at(id));
            if (flat_.states[static_cast<std::size_t>(ds)].dead)
                continue; // terminated: no future instants
            const StateAlphabet& sa =
                alphabet_[static_cast<std::size_t>(ds)];
            if (sa.truncated) w.sawTruncation = true;
            for (std::uint32_t L = 0;
                 L < static_cast<std::uint32_t>(sa.letters.size()); ++L)
                expandOne(w, id, L);
        }
    } catch (...) {
        w.fatal = std::current_exception();
    }
}

// ---------------------------------------------------------------------------
// Explorer: merge, violations, traces
// ---------------------------------------------------------------------------

bool Explorer::mergeWorker(Worker& w, ExploreResult& out)
{
    const std::uint8_t* bytes = w.packed.data();
    for (std::size_t i = 0; i < w.succs.size();
         ++i, bytes += packedSize_) {
        const Succ& s = w.succs[i];
        ++out.stats.transitions;
        if (s.runtimeError || s.check >= 0) {
            recordViolation(s, bytes, out);
            return true;
        }
        // The state cap stops interning (deterministically: merge order
        // is canonical) but the remaining transitions of the level are
        // still scanned for violations.
        if (store_->size() >= options_.maxStates) continue;
        auto [newId, isNew] = store_->intern(bytes);
        if (isNew) {
            parents_.push_back({s.parent, s.letter});
            depths_.push_back(depths_[s.parent] + 1);
        }
    }
    return false;
}

void Explorer::recordViolation(const Succ& s, const std::uint8_t* packed,
                               ExploreResult& out)
{
    out.violated = true;
    Violation v;
    if (s.runtimeError) {
        v.kind = Violation::Kind::RuntimeError;
        v.what = s.errorText;
    } else {
        const Check& ck = checks_[static_cast<std::size_t>(s.check)];
        v.kind = ck.kind;
        v.what = ck.name;
        v.signal = ck.signal;
        v.state.assign(packed, packed + packedSize_);
        if (ck.kind != Violation::Kind::Predicate) {
            const bool onMonitor = ck.kind == Violation::Kind::MonitorSignal;
            const ModuleSema& sema = onMonitor ? *monSema_ : sema_;
            const rt::InstanceLayout& layout =
                onMonitor ? monLayout_ : layout_;
            const SignalInfo& sig =
                sema.signals[static_cast<std::size_t>(ck.signal)];
            if (!sig.pure) {
                const std::uint8_t* data =
                    packed + headerBytes_ +
                    (onMonitor ? layout_.dataBytes : 0);
                v.value = Value::fromBytes(
                    sig.valueType,
                    data +
                        layout.sigOffsets[static_cast<std::size_t>(
                            ck.signal)]);
            }
        }
    }
    out.trace = buildTrace(s.parent, s.letter);
    v.depth = static_cast<int>(out.trace.size());
    out.violation = std::move(v);
}

TraceStep Explorer::letterToStep(std::uint32_t stateId,
                                 std::uint32_t letterIdx) const
{
    const int ds = designStateOf(store_->at(stateId));
    const Letter& letter =
        alphabet_[static_cast<std::size_t>(ds)].letters[letterIdx];
    TraceStep step;
    step.inputs.reserve(letter.sets.size());
    for (const auto& [sig, dom] : letter.sets) {
        InputEvent ev;
        ev.signal = sig;
        if (dom >= 0)
            ev.value = domains_[static_cast<std::size_t>(sig)]
                               [static_cast<std::size_t>(dom)];
        step.inputs.push_back(std::move(ev));
    }
    return step;
}

std::vector<TraceStep> Explorer::buildTrace(std::uint32_t parent,
                                            std::uint32_t letterIdx) const
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> chain;
    chain.emplace_back(parent, letterIdx);
    std::uint32_t cur = parent;
    while (cur != 0) {
        const ParentLink& pl = parents_[cur];
        chain.emplace_back(pl.parent, pl.letter);
        cur = pl.parent;
    }
    std::reverse(chain.begin(), chain.end());
    std::vector<TraceStep> steps;
    steps.reserve(chain.size());
    for (const auto& [stateId, letter] : chain)
        steps.push_back(letterToStep(stateId, letter));
    return steps;
}

// ---------------------------------------------------------------------------
// Explorer: worker pool + main loops
// ---------------------------------------------------------------------------

ExploreResult Explorer::run()
{
    if (ran_)
        throw EclError("Explorer::run is single-shot; build a fresh "
                       "explorer per run");
    ran_ = true;

    headerBytes_ = monSema_ ? 8 : 4;
    packedSize_ = headerBytes_ + layout_.dataBytes +
                  (monSema_ ? monLayout_.dataBytes : 0);
    store_ = std::make_unique<StateStore>(packedSize_);
    buildAlphabet();
    resolveChecks();

    // Root: pre-boot — initial control states, all data zero. The first
    // explored instant is the boot reaction (which may consume inputs).
    std::vector<std::uint8_t> root(packedSize_, 0);
    writeI32(root.data(), flat_.initialState);
    if (monSema_) writeI32(root.data() + 4, monFlat_->initialState);
    store_->intern(root.data());
    parents_.push_back({std::numeric_limits<std::uint32_t>::max(), 0});
    depths_.push_back(0);

    const auto t0 = std::chrono::steady_clock::now();
    ExploreResult out = options_.strategy == Strategy::Dfs ? runDfs()
                                                           : runBfs();
    const auto t1 = std::chrono::steady_clock::now();

    out.stats.states = store_->size();
    out.stats.controlStates = flat_.states.size();
    out.stats.seconds =
        std::chrono::duration<double>(t1 - t0).count();
    out.stats.statesPerSec =
        out.stats.seconds > 0
            ? static_cast<double>(out.stats.states) / out.stats.seconds
            : 0;
    return out;
}

ExploreResult Explorer::runBfs()
{
    const int T = std::max(1, options_.threads);
    workers_.clear();
    for (int i = 0; i < T; ++i)
        workers_.push_back(std::make_unique<Worker>(*this));
    ranges_.assign(static_cast<std::size_t>(T), {0, 0});
    // Expansion is the callback's only job; failures land in the
    // worker's exception_ptr, rethrown after each epoch.
    rt::WorkerPool pool(T, [this](int w) {
        const std::size_t i = static_cast<std::size_t>(w);
        expandRange(*workers_[i], ranges_[i].first, ranges_[i].second);
    });

    ExploreResult out;
    std::uint32_t levelBegin = 0;
    std::uint32_t levelEnd = 1;
    int depth = 0;
    bool capped = false;
    bool stopped = false;

    out.stats.peakFrontier = 1;
    while (levelBegin < levelEnd && depth < options_.maxDepth && !stopped &&
           !capped) {
        for (const auto& w : workers_) {
            w->packed.clear();
            w->succs.clear();
            w->fatal = nullptr;
        }
        const std::uint32_t n = levelEnd - levelBegin;
        const std::uint32_t chunk = (n + static_cast<std::uint32_t>(T) - 1) /
                                    static_cast<std::uint32_t>(T);
        for (std::size_t w = 0; w < static_cast<std::size_t>(T); ++w) {
            const std::uint32_t b =
                std::min(n, static_cast<std::uint32_t>(w) * chunk);
            ranges_[w] = {levelBegin + b, levelBegin + std::min(n, b + chunk)};
        }

        pool.run();
        for (const auto& w : workers_)
            if (w->fatal) std::rethrow_exception(w->fatal);

        ++depth;
        // Canonical merge: worker chunks are contiguous ascending
        // frontier ranges, so concatenation in worker order IS
        // frontier x letter order — ids and the first violation are
        // thread-count independent.
        for (const auto& w : workers_) {
            if (mergeWorker(*w, out)) {
                stopped = true;
                break;
            }
        }
        levelBegin = levelEnd;
        levelEnd = store_->size();
        out.stats.peakFrontier =
            std::max(out.stats.peakFrontier,
                     static_cast<std::uint64_t>(levelEnd - levelBegin));
        out.stats.depthReached = depth;
        if (store_->size() >= options_.maxStates) capped = true;
    }

    for (const auto& w : workers_)
        if (w->sawTruncation) out.stats.alphabetTruncated = true;
    out.stats.complete = !stopped && !capped &&
                         !out.stats.alphabetTruncated &&
                         levelBegin == levelEnd;
    return out;
}

ExploreResult Explorer::runDfs()
{
    workers_.clear();
    workers_.push_back(std::make_unique<Worker>(*this));
    Worker& w = *workers_[0];

    ExploreResult out;
    std::vector<std::uint32_t> stack{0};
    out.stats.peakFrontier = 1;
    bool capped = false;
    bool depthBounded = false;
    bool stopped = false;

    while (!stack.empty() && !stopped && !capped) {
        const std::uint32_t id = stack.back();
        stack.pop_back();
        const int ds = designStateOf(store_->at(id));
        if (flat_.states[static_cast<std::size_t>(ds)].dead) continue;
        if (depths_[id] >=
            static_cast<std::uint32_t>(options_.maxDepth)) {
            depthBounded = true;
            continue;
        }
        out.stats.depthReached =
            std::max(out.stats.depthReached,
                     static_cast<int>(depths_[id]) + 1);

        w.packed.clear();
        w.succs.clear();
        const StateAlphabet& sa = alphabet_[static_cast<std::size_t>(ds)];
        if (sa.truncated) w.sawTruncation = true;
        for (std::uint32_t L = 0;
             L < static_cast<std::uint32_t>(sa.letters.size()); ++L)
            expandOne(w, id, L);

        const std::uint32_t before = store_->size();
        if (mergeWorker(w, out)) {
            stopped = true;
            break;
        }
        // Push in reverse so the letter-0 successor is explored first.
        for (std::uint32_t newId = store_->size(); newId > before;)
            stack.push_back(--newId);
        out.stats.peakFrontier = std::max(
            out.stats.peakFrontier,
            static_cast<std::uint64_t>(stack.size()));
        if (store_->size() >= options_.maxStates) capped = true;
    }

    if (w.sawTruncation) out.stats.alphabetTruncated = true;
    out.stats.complete = !stopped && !capped && !depthBounded &&
                         !out.stats.alphabetTruncated && stack.empty();
    return out;
}

std::uint64_t Explorer::stateDigest() const
{
    if (!store_) throw EclError("stateDigest before run()");
    return store_->digest();
}

const StateStore& Explorer::stateStore() const
{
    if (!store_) throw EclError("stateStore before run()");
    return *store_;
}

} // namespace ecl::verify
