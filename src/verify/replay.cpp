#include "src/verify/replay.h"

#include <cstring>
#include <sstream>

namespace ecl::verify {

std::vector<std::uint8_t> encodeEngineState(const rt::SyncEngine& engine,
                                            const rt::InstanceLayout& layout)
{
    // The packing lives with the runtime's shared instance layout (the
    // trace replay oracle uses it too); this is the verify-facing name.
    return rt::packEngineState(engine, layout);
}

namespace {

bool bytesEqual(const std::uint8_t* a, const std::uint8_t* b, std::size_t n)
{
    return n == 0 || std::memcmp(a, b, n) == 0;
}

} // namespace

ReplayOutcome replayCounterexample(rt::SyncEngine& design,
                                   rt::SyncEngine* monitor,
                                   const ExploreResult& result,
                                   rt::TraceRecorder* designRec,
                                   rt::TraceRecorder* monitorRec)
{
    ReplayOutcome out;
    if (!result.violated || result.trace.empty()) {
        out.detail = "no violation to replay";
        return out;
    }
    const Violation& v = result.violation;
    const ModuleSema& dsema = design.moduleSema();
    std::vector<MonitorWire> wires;
    if (monitor) wires = wireMonitor(dsema, monitor->moduleSema());

    const std::size_t steps = result.trace.size();
    for (std::size_t t = 0; t < steps; ++t) {
        for (const InputEvent& ev : result.trace[t].inputs) {
            if (ev.value.empty())
                design.setInput(ev.signal);
            else
                design.setInputValue(ev.signal, ev.value);
        }
        // A trap in either engine's reaction mirrors the explorer's
        // RuntimeError violations (the design's AND the monitor's
        // reactions both run inside its per-transition try block).
        try {
            design.react();
            if (designRec) designRec->sample(design);

            // Feed the monitor this instant exactly as the explorer
            // did: presence (and value) of every wired design signal; a
            // terminated monitor stops reacting.
            if (monitor && !monitor->terminated()) {
                for (const MonitorWire& w : wires) {
                    if (!design.outputPresent(w.designSig)) continue;
                    if (!w.valued) {
                        monitor->setInput(w.monitorSig);
                        continue;
                    }
                    Value dv = design.outputValue(w.designSig);
                    const SignalInfo& msig =
                        monitor->moduleSema()
                            .signals[static_cast<std::size_t>(w.monitorSig)];
                    if (msig.valueType->isScalar())
                        monitor->setInputScalar(w.monitorSig, dv.toInt());
                    else
                        monitor->setInputValue(
                            w.monitorSig,
                            Value::fromBytes(msig.valueType, dv.data()));
                }
                monitor->react();
                if (monitorRec) monitorRec->sample(*monitor);
            }
        } catch (const EclError& e) {
            if (v.kind == Violation::Kind::RuntimeError && t + 1 == steps) {
                out.reproduced = true;
                out.detail = "runtime error reproduced at instant " +
                             std::to_string(t) + ": " + e.what();
            } else {
                out.detail = "unexpected runtime error at instant " +
                             std::to_string(t) + ": " + e.what();
            }
            return out;
        }
    }

    if (v.kind == Violation::Kind::RuntimeError) {
        out.detail = "trace completed without the recorded runtime error";
        return out;
    }

    // 1. The violating emission must be present on the monitored engine,
    //    with bit-identical value bytes when the signal is valued.
    if (v.kind != Violation::Kind::Predicate) {
        rt::SyncEngine* checked =
            v.kind == Violation::Kind::MonitorSignal ? monitor : &design;
        if (!checked) {
            out.detail = "monitor violation recorded but no monitor engine "
                         "given";
            return out;
        }
        if (!checked->outputPresent(v.signal)) {
            out.detail = "violation signal '" + v.what +
                         "' not emitted in the final instant";
            return out;
        }
        if (!v.value.empty()) {
            Value rv = checked->outputValue(v.signal);
            if (rv.size() != v.value.size() ||
                !bytesEqual(rv.data(), v.value.data(), rv.size())) {
                out.detail = "violation value mismatch on '" + v.what +
                             "': explorer " + v.value.toString() +
                             " vs replay " + rv.toString();
                return out;
            }
        }
    }

    // 2. The engines must land in the explorer's packed post-state,
    //    byte for byte.
    const rt::InstanceLayout dlayout = rt::computeInstanceLayout(dsema);
    const std::size_t header = monitor ? 8 : 4;
    const std::size_t mdata =
        monitor ? rt::computeInstanceLayout(monitor->moduleSema()).dataBytes
                : 0;
    if (v.state.size() != header + dlayout.dataBytes + mdata) {
        out.detail = "packed-state size mismatch (explored with a "
                     "different monitor setup?)";
        return out;
    }
    const std::uint8_t* rec = v.state.data();
    const std::vector<std::uint8_t> denc = encodeEngineState(design, dlayout);
    if (!bytesEqual(rec, denc.data(), 4) ||
        !bytesEqual(rec + header, denc.data() + 4, dlayout.dataBytes)) {
        out.detail = "design post-state differs from the explorer's record";
        return out;
    }
    if (monitor) {
        const std::vector<std::uint8_t> menc = encodeEngineState(
            *monitor, rt::computeInstanceLayout(monitor->moduleSema()));
        if (!bytesEqual(rec + 4, menc.data(), 4) ||
            !bytesEqual(rec + header + dlayout.dataBytes, menc.data() + 4,
                        mdata)) {
            out.detail =
                "monitor post-state differs from the explorer's record";
            return out;
        }
    }

    out.reproduced = true;
    out.detail = "violation '" + v.what + "' reproduced bit-exactly at "
                 "instant " +
                 std::to_string(steps - 1);
    return out;
}

std::string formatTrace(const ModuleSema& designSema,
                        const std::vector<TraceStep>& trace)
{
    std::ostringstream out;
    for (std::size_t t = 0; t < trace.size(); ++t) {
        out << "  instant " << t << ":";
        if (trace[t].inputs.empty()) out << " (no inputs)";
        for (const InputEvent& ev : trace[t].inputs) {
            out << ' '
                << designSema.signals[static_cast<std::size_t>(ev.signal)]
                       .name;
            if (!ev.value.empty()) out << '=' << ev.value.toString();
        }
        out << '\n';
    }
    return out.str();
}

} // namespace ecl::verify
