// Pluggable stores of packed exploration states.
//
// Every state the explorer reaches is one fixed-size byte record (the
// packed encoding built in src/verify/explorer.h: control state ids
// followed by the instance-layout data bytes of the design and, when a
// monitor is attached, the monitor). A store deduplicates records and
// assigns dense ids in interning order — the explorer interns strictly
// in canonical frontier x letter order, so ids are deterministic for
// any worker-thread count, and BFS parent links over these ids yield
// shortest counterexample traces.
//
// Three implementations live behind the StateStore interface
// (selected by StoreKind / ExplorerOptions::storeKind):
//
//  * ExactStore — the baseline: records back-to-back in one arena (no
//    per-state allocation), open-addressing index with power-of-two
//    capacity storing id + 1 (0 = empty slot).
//  * CompressedStore — Spin-COLLAPSE-style component compression: the
//    record is split into components (control header / design data /
//    monitor data), each component interned in its own byte pool, and
//    the state becomes a tuple of 32-bit component ids. States that
//    share data valuations (the common case: many control states over
//    few distinct data states, or vice versa) pay 4 bytes per
//    component instead of the full slice. Exact — same dedup, ids and
//    digest as ExactStore.
//  * BitstateStore — supertrace-style lossy membership: a bit table
//    sized from a byte budget, k independent probe bits per record
//    hash. A hash collision silently merges two distinct states, so a
//    run can only ever report "no violation found", never "verified"
//    — but the memory per state is a few BITS, so the same budget
//    covers orders of magnitude more states. at() throws (records are
//    not retained): the explorer carries frontier records out-of-band.
//
// Interning is single-threaded by design: workers expand in parallel,
// the merge phase interns sequentially.
//
// Pointer-stability contract: a pointer returned by at() is valid only
// until the next intern() or at() call on the same store. In debug
// builds every at() materializes through one per-store scratch buffer
// that intern() poisons (0xDD) — a caller holding a record pointer
// across an intern reads poison instead of silently-stale arena bytes,
// and generation() gives callers a counter to assert against.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ecl::verify {

enum class StoreKind {
    Exact,      ///< Hash-interned arena (default; canonical behavior).
    Compressed, ///< Component-collapsed exact store (less memory).
    Bitstate,   ///< Lossy supertrace bit table (coverage sweeps).
};

/// CLI/JSON name of a store kind ("exact", "compressed", "bitstate").
const char* storeKindName(StoreKind kind);
/// Parses a store-kind name; returns false on unknown names.
bool parseStoreKind(const std::string& name, StoreKind& out);

struct StoreConfig {
    /// Byte budget. BitstateStore sizes its bit table from it (0 = the
    /// 4 MiB default); exact/compressed stores ignore it (the explorer
    /// enforces the budget against memoryBytes() instead).
    std::uint64_t memoryBudgetBytes = 0;
    /// CompressedStore: record split, in record order; must sum to the
    /// packed size (zero-width components are dropped). Empty = one
    /// component spanning the whole record.
    std::vector<std::size_t> componentSizes;
};

class StateStore {
public:
    virtual ~StateStore() = default;

    /// Interns one record of exactly packedSize() bytes. Returns
    /// (id, isNew); ids are dense in interning order. A lossy store
    /// returns (kNoId, false) for a record it considers already seen.
    /// Invalidates every pointer previously returned by at().
    virtual std::pair<std::uint32_t, bool>
    intern(const std::uint8_t* bytes) = 0;

    /// The interned record bytes. Valid until the next intern() or
    /// at() call; calls with the same id between interns return
    /// identical bytes (but not necessarily the same pointer is
    /// guaranteed — treat the result as a read-once view). Throws
    /// EclError when !canRead() (bitstate does not retain records).
    [[nodiscard]] virtual const std::uint8_t* at(std::uint32_t id) const = 0;

    /// Bytes held live by the store (arenas + index tables). The
    /// explorer gates exploration on this against its memory budget.
    [[nodiscard]] virtual std::uint64_t memoryBytes() const = 0;

    [[nodiscard]] virtual StoreKind kind() const = 0;

    /// True when distinct records can silently merge (bitstate): a
    /// clean run means "no violation found", never "verified".
    [[nodiscard]] bool lossy() const { return kind() == StoreKind::Bitstate; }
    /// True when at() can return interned record bytes.
    [[nodiscard]] bool canRead() const
    {
        return kind() != StoreKind::Bitstate;
    }

    [[nodiscard]] std::uint32_t size() const { return count_; }
    [[nodiscard]] std::size_t packedSize() const { return packedSize_; }

    /// Order-sensitive digest over all interned records, accumulated
    /// incrementally at intern time (determinism fingerprint: equal iff
    /// the same records were accepted in the same order — comparable
    /// across store kinds).
    [[nodiscard]] std::uint64_t digest() const { return digest_; }

    /// Bumped by every intern() that mutates the store. Debug aid for
    /// the at() contract: capture before a read, assert unchanged at
    /// the last dereference.
    [[nodiscard]] std::uint64_t generation() const { return generation_; }

    /// Sentinel id returned by lossy stores for already-seen records.
    static constexpr std::uint32_t kNoId = 0xffffffffu;

    static std::uint64_t hashBytes(const std::uint8_t* p, std::size_t n);

    /// Builds a store of the requested kind.
    static std::unique_ptr<StateStore>
    make(StoreKind kind, std::size_t packedSize, StoreConfig config = {});

protected:
    explicit StateStore(std::size_t packedSize);

    /// Folds a newly-accepted record into the digest and invalidates
    /// outstanding at() pointers (generation bump + debug poison).
    /// Every implementation calls this exactly once per new id.
    void noteNewRecord(const std::uint8_t* bytes);

    /// Debug-build scratch all at() results materialize through (the
    /// poison target). Sized packedSize(); unused in release builds by
    /// ExactStore, always used by CompressedStore.
    [[nodiscard]] std::uint8_t* scratch() const { return scratch_.data(); }

    std::size_t packedSize_;
    std::uint32_t count_ = 0;

private:
    std::uint64_t digest_ = 0x9e3779b97f4a7c15ull;
    std::uint64_t generation_ = 0;
    mutable std::vector<std::uint8_t> scratch_;
};

/// The baseline hash-interned arena store.
class ExactStore final : public StateStore {
public:
    /// All records have exactly `packedSize` bytes (> 0).
    explicit ExactStore(std::size_t packedSize);

    std::pair<std::uint32_t, bool> intern(const std::uint8_t* bytes) override;
    [[nodiscard]] const std::uint8_t* at(std::uint32_t id) const override;
    [[nodiscard]] std::uint64_t memoryBytes() const override;
    [[nodiscard]] StoreKind kind() const override { return StoreKind::Exact; }

    [[nodiscard]] std::size_t arenaBytes() const { return arena_.size(); }

private:
    /// Raw arena pointer (internal: bypasses the debug scratch copy).
    [[nodiscard]] const std::uint8_t* arenaPtr(std::uint32_t id) const
    {
        return arena_.data() + static_cast<std::size_t>(id) * packedSize_;
    }
    void grow();

    std::vector<std::uint8_t> arena_;
    std::vector<std::uint32_t> table_; ///< id + 1; 0 = empty.
    std::size_t mask_ = 0;
};

/// Component-collapsed store: each record component interned in its own
/// pool, states stored as tuples of component ids. Exact dedup.
class CompressedStore final : public StateStore {
public:
    CompressedStore(std::size_t packedSize, std::vector<std::size_t> split);

    std::pair<std::uint32_t, bool> intern(const std::uint8_t* bytes) override;
    [[nodiscard]] const std::uint8_t* at(std::uint32_t id) const override;
    [[nodiscard]] std::uint64_t memoryBytes() const override;
    [[nodiscard]] StoreKind kind() const override
    {
        return StoreKind::Compressed;
    }

private:
    /// One component pool: unique byte strings of one fixed width.
    struct Pool {
        std::size_t width = 0;
        std::size_t offset = 0; ///< Component offset in the record.
        std::vector<std::uint8_t> arena;
        std::vector<std::uint32_t> table; ///< id + 1; 0 = empty.
        std::size_t mask = 0;
        std::uint32_t count = 0;

        std::uint32_t intern(const std::uint8_t* bytes);
        [[nodiscard]] const std::uint8_t* at(std::uint32_t id) const
        {
            return arena.data() + static_cast<std::size_t>(id) * width;
        }
        void grow();
    };

    [[nodiscard]] const std::uint32_t* tupleOf(std::uint32_t id) const
    {
        return tuples_.data() + static_cast<std::size_t>(id) * pools_.size();
    }
    void growTuples();

    std::vector<Pool> pools_;
    std::vector<std::uint32_t> tuples_; ///< count_ * pools_.size() ids.
    std::vector<std::uint32_t> table_;  ///< id + 1; 0 = empty.
    std::size_t mask_ = 0;
    std::vector<std::uint32_t> probe_; ///< Scratch tuple being interned.
};

/// Supertrace-style lossy bit table: a few probe bits per state hash.
class BitstateStore final : public StateStore {
public:
    /// Table sized to the largest power-of-two bit count fitting
    /// `budgetBytes` (>= 64 bytes enforced; 0 = 4 MiB default).
    BitstateStore(std::size_t packedSize, std::uint64_t budgetBytes);

    std::pair<std::uint32_t, bool> intern(const std::uint8_t* bytes) override;
    /// Always throws: records are not retained.
    [[nodiscard]] const std::uint8_t* at(std::uint32_t id) const override;
    [[nodiscard]] std::uint64_t memoryBytes() const override;
    [[nodiscard]] StoreKind kind() const override
    {
        return StoreKind::Bitstate;
    }

    /// Fraction of table bits set (coverage-saturation diagnostic).
    [[nodiscard]] double fillRatio() const;

private:
    std::vector<std::uint64_t> bits_;
    std::uint64_t bitMask_ = 0;
};

} // namespace ecl::verify
