// Hash-interned store of packed exploration states.
//
// Every state the explorer reaches is one fixed-size byte record (the
// packed encoding built in src/verify/explorer.h: control state ids
// followed by the instance-layout data bytes of the design and, when a
// monitor is attached, the monitor). The store deduplicates records and
// assigns dense ids in interning order — the explorer interns strictly
// in canonical frontier x letter order, so ids are deterministic for
// any worker-thread count, and BFS parent links over these ids yield
// shortest counterexample traces.
//
// Records live back-to-back in one arena (no per-state allocation); the
// index is open-addressing with power-of-two capacity, storing id + 1
// (0 = empty slot). Interning is single-threaded by design: workers
// expand in parallel, the merge phase interns sequentially.
#pragma once

#include <cstdint>
#include <vector>

namespace ecl::verify {

class StateStore {
public:
    /// All records have exactly `packedSize` bytes (> 0).
    explicit StateStore(std::size_t packedSize);

    /// Interns one record. Returns (id, isNew); the bytes are copied into
    /// the arena only when new.
    std::pair<std::uint32_t, bool> intern(const std::uint8_t* bytes);

    /// Stable pointer valid until the next intern().
    [[nodiscard]] const std::uint8_t* at(std::uint32_t id) const
    {
        return arena_.data() + static_cast<std::size_t>(id) * packedSize_;
    }

    [[nodiscard]] std::uint32_t size() const { return count_; }
    [[nodiscard]] std::size_t packedSize() const { return packedSize_; }
    [[nodiscard]] std::size_t arenaBytes() const { return arena_.size(); }

    /// Order-sensitive digest over all interned records (determinism
    /// fingerprint: equal iff same records in the same order).
    [[nodiscard]] std::uint64_t digest() const;

    static std::uint64_t hashBytes(const std::uint8_t* p, std::size_t n);

private:
    void grow();

    std::size_t packedSize_;
    std::vector<std::uint8_t> arena_;
    std::vector<std::uint32_t> table_; ///< id + 1; 0 = empty.
    std::size_t mask_ = 0;
    std::uint32_t count_ = 0;
};

} // namespace ecl::verify
