#include "src/verify/state_store.h"

#include <cstring>

#include "src/support/diagnostics.h"

namespace ecl::verify {

namespace {
constexpr std::size_t kInitialCapacity = 1u << 12;
} // namespace

StateStore::StateStore(std::size_t packedSize) : packedSize_(packedSize)
{
    if (packedSize_ == 0)
        throw EclError("StateStore: packed state size must be non-zero");
    table_.assign(kInitialCapacity, 0);
    mask_ = kInitialCapacity - 1;
}

std::uint64_t StateStore::hashBytes(const std::uint8_t* p, std::size_t n)
{
    // FNV-1a with a 64-bit fold; fast enough for packed records of tens
    // to hundreds of bytes and stable across platforms (determinism
    // fingerprints land in test expectations and bench JSON).
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return h;
}

std::pair<std::uint32_t, bool> StateStore::intern(const std::uint8_t* bytes)
{
    // Load factor 3/4 (size_t arithmetic: count_ * 4 would wrap uint32).
    if ((static_cast<std::size_t>(count_) + 1) * 4 > table_.size() * 3)
        grow();
    std::size_t slot = hashBytes(bytes, packedSize_) & mask_;
    for (;; slot = (slot + 1) & mask_) {
        std::uint32_t entry = table_[slot];
        if (entry == 0) {
            arena_.insert(arena_.end(), bytes, bytes + packedSize_);
            table_[slot] = ++count_;
            return {count_ - 1, true};
        }
        if (std::memcmp(at(entry - 1), bytes, packedSize_) == 0)
            return {entry - 1, false};
    }
}

void StateStore::grow()
{
    std::vector<std::uint32_t> old = std::move(table_);
    table_.assign(old.size() * 2, 0);
    mask_ = table_.size() - 1;
    for (std::uint32_t entry : old) {
        if (entry == 0) continue;
        std::size_t slot = hashBytes(at(entry - 1), packedSize_) & mask_;
        while (table_[slot] != 0) slot = (slot + 1) & mask_;
        table_[slot] = entry;
    }
}

std::uint64_t StateStore::digest() const
{
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (std::uint32_t id = 0; id < count_; ++id)
        h = h * 0x100000001b3ull ^ hashBytes(at(id), packedSize_);
    return h;
}

} // namespace ecl::verify
