#include "src/verify/state_store.h"

#include <cstring>

#include "src/support/diagnostics.h"

namespace ecl::verify {

namespace {
constexpr std::size_t kInitialCapacity = 1u << 12;
constexpr std::uint64_t kDefaultBitstateBytes = 1ull << 22; // 4 MiB

/// splitmix64 finalizer: derives independent probe hashes from one
/// record hash (bitstate probes must not be linearly related or the
/// probes collide together and the effective filter degrades to one
/// bit per state).
std::uint64_t remix(std::uint64_t h)
{
    h += 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
}
} // namespace

// ---------------------------------------------------------------------------
// StateStore base
// ---------------------------------------------------------------------------

const char* storeKindName(StoreKind kind)
{
    switch (kind) {
    case StoreKind::Exact: return "exact";
    case StoreKind::Compressed: return "compressed";
    case StoreKind::Bitstate: return "bitstate";
    }
    return "?";
}

bool parseStoreKind(const std::string& name, StoreKind& out)
{
    if (name == "exact") out = StoreKind::Exact;
    else if (name == "compressed") out = StoreKind::Compressed;
    else if (name == "bitstate") out = StoreKind::Bitstate;
    else return false;
    return true;
}

StateStore::StateStore(std::size_t packedSize) : packedSize_(packedSize)
{
    if (packedSize_ == 0)
        throw EclError("StateStore: packed state size must be non-zero");
    scratch_.assign(packedSize_, 0);
}

std::uint64_t StateStore::hashBytes(const std::uint8_t* p, std::size_t n)
{
    // FNV-1a with a 64-bit fold; fast enough for packed records of tens
    // to hundreds of bytes and stable across platforms (determinism
    // fingerprints land in test expectations and bench JSON).
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return h;
}

void StateStore::noteNewRecord(const std::uint8_t* bytes)
{
    // Same fold the pre-pluggable store computed after the fact, so
    // digests are directly comparable across store kinds and with
    // historical fingerprints.
    digest_ = digest_ * 0x100000001b3ull ^ hashBytes(bytes, packedSize_);
    ++generation_;
#ifndef NDEBUG
    // Poison the scratch every at() result materializes through: a
    // caller that held the pointer across this intern now reads 0xDD
    // bytes instead of silently-stale state (see the header contract).
    std::memset(scratch_.data(), 0xDD, scratch_.size());
#endif
}

std::unique_ptr<StateStore> StateStore::make(StoreKind kind,
                                             std::size_t packedSize,
                                             StoreConfig config)
{
    switch (kind) {
    case StoreKind::Exact:
        return std::make_unique<ExactStore>(packedSize);
    case StoreKind::Compressed:
        return std::make_unique<CompressedStore>(
            packedSize, std::move(config.componentSizes));
    case StoreKind::Bitstate:
        return std::make_unique<BitstateStore>(packedSize,
                                               config.memoryBudgetBytes);
    }
    throw EclError("StateStore::make: unknown store kind");
}

// ---------------------------------------------------------------------------
// ExactStore
// ---------------------------------------------------------------------------

ExactStore::ExactStore(std::size_t packedSize) : StateStore(packedSize)
{
    table_.assign(kInitialCapacity, 0);
    mask_ = kInitialCapacity - 1;
}

const std::uint8_t* ExactStore::at(std::uint32_t id) const
{
    if (id >= count_)
        throw EclError("StateStore::at: id out of range");
#ifndef NDEBUG
    std::memcpy(scratch(), arenaPtr(id), packedSize_);
    return scratch();
#else
    return arenaPtr(id);
#endif
}

std::pair<std::uint32_t, bool> ExactStore::intern(const std::uint8_t* bytes)
{
    // Load factor 3/4 (size_t arithmetic: count_ * 4 would wrap uint32).
    if ((static_cast<std::size_t>(count_) + 1) * 4 > table_.size() * 3)
        grow();
    std::size_t slot = hashBytes(bytes, packedSize_) & mask_;
    for (;; slot = (slot + 1) & mask_) {
        std::uint32_t entry = table_[slot];
        if (entry == 0) {
            arena_.insert(arena_.end(), bytes, bytes + packedSize_);
            table_[slot] = ++count_;
            noteNewRecord(bytes);
            return {count_ - 1, true};
        }
        if (std::memcmp(arenaPtr(entry - 1), bytes, packedSize_) == 0)
            return {entry - 1, false};
    }
}

void ExactStore::grow()
{
    std::vector<std::uint32_t> old = std::move(table_);
    table_.assign(old.size() * 2, 0);
    mask_ = table_.size() - 1;
    for (std::uint32_t entry : old) {
        if (entry == 0) continue;
        std::size_t slot =
            hashBytes(arenaPtr(entry - 1), packedSize_) & mask_;
        while (table_[slot] != 0) slot = (slot + 1) & mask_;
        table_[slot] = entry;
    }
}

std::uint64_t ExactStore::memoryBytes() const
{
    return arena_.size() + table_.size() * sizeof(std::uint32_t);
}

// ---------------------------------------------------------------------------
// CompressedStore
// ---------------------------------------------------------------------------

CompressedStore::CompressedStore(std::size_t packedSize,
                                 std::vector<std::size_t> split)
    : StateStore(packedSize)
{
    if (split.empty()) split.push_back(packedSize);
    std::size_t offset = 0;
    for (std::size_t w : split) {
        if (w == 0) continue; // monitor-less runs pass a zero third slice
        Pool p;
        p.width = w;
        p.offset = offset;
        p.table.assign(kInitialCapacity, 0);
        p.mask = kInitialCapacity - 1;
        pools_.push_back(std::move(p));
        offset += w;
    }
    if (offset != packedSize)
        throw EclError("CompressedStore: component sizes must sum to the "
                       "packed record size");
    table_.assign(kInitialCapacity, 0);
    mask_ = kInitialCapacity - 1;
    probe_.assign(pools_.size(), 0);
}

std::uint32_t CompressedStore::Pool::intern(const std::uint8_t* bytes)
{
    if ((static_cast<std::size_t>(count) + 1) * 4 > table.size() * 3) grow();
    std::size_t slot = hashBytes(bytes, width) & mask;
    for (;; slot = (slot + 1) & mask) {
        std::uint32_t entry = table[slot];
        if (entry == 0) {
            arena.insert(arena.end(), bytes, bytes + width);
            table[slot] = ++count;
            return count - 1;
        }
        if (std::memcmp(at(entry - 1), bytes, width) == 0) return entry - 1;
    }
}

void CompressedStore::Pool::grow()
{
    std::vector<std::uint32_t> old = std::move(table);
    table.assign(old.size() * 2, 0);
    mask = table.size() - 1;
    for (std::uint32_t entry : old) {
        if (entry == 0) continue;
        std::size_t slot = hashBytes(at(entry - 1), width) & mask;
        while (table[slot] != 0) slot = (slot + 1) & mask;
        table[slot] = entry;
    }
}

std::pair<std::uint32_t, bool>
CompressedStore::intern(const std::uint8_t* bytes)
{
    // Collapse: every component through its pool first. Components of a
    // record that turns out to be a duplicate are interned too — they
    // are duplicates in their pools by construction, so no bytes leak.
    for (std::size_t k = 0; k < pools_.size(); ++k)
        probe_[k] = pools_[k].intern(bytes + pools_[k].offset);

    if ((static_cast<std::size_t>(count_) + 1) * 4 > table_.size() * 3)
        growTuples();
    const std::size_t tupleBytes = pools_.size() * sizeof(std::uint32_t);
    std::size_t slot =
        hashBytes(reinterpret_cast<const std::uint8_t*>(probe_.data()),
                  tupleBytes) &
        mask_;
    for (;; slot = (slot + 1) & mask_) {
        std::uint32_t entry = table_[slot];
        if (entry == 0) {
            tuples_.insert(tuples_.end(), probe_.begin(), probe_.end());
            table_[slot] = ++count_;
            noteNewRecord(bytes);
            return {count_ - 1, true};
        }
        if (std::memcmp(tupleOf(entry - 1), probe_.data(), tupleBytes) == 0)
            return {entry - 1, false};
    }
}

void CompressedStore::growTuples()
{
    const std::size_t tupleBytes = pools_.size() * sizeof(std::uint32_t);
    std::vector<std::uint32_t> old = std::move(table_);
    table_.assign(old.size() * 2, 0);
    mask_ = table_.size() - 1;
    for (std::uint32_t entry : old) {
        if (entry == 0) continue;
        std::size_t slot =
            hashBytes(reinterpret_cast<const std::uint8_t*>(
                          tupleOf(entry - 1)),
                      tupleBytes) &
            mask_;
        while (table_[slot] != 0) slot = (slot + 1) & mask_;
        table_[slot] = entry;
    }
}

const std::uint8_t* CompressedStore::at(std::uint32_t id) const
{
    if (id >= count_)
        throw EclError("StateStore::at: id out of range");
    // Materialize the record from its components into the shared
    // scratch (both build types: the components are not contiguous).
    const std::uint32_t* tuple = tupleOf(id);
    for (std::size_t k = 0; k < pools_.size(); ++k)
        std::memcpy(scratch() + pools_[k].offset, pools_[k].at(tuple[k]),
                    pools_[k].width);
    return scratch();
}

std::uint64_t CompressedStore::memoryBytes() const
{
    std::uint64_t total = tuples_.size() * sizeof(std::uint32_t) +
                          table_.size() * sizeof(std::uint32_t);
    for (const Pool& p : pools_)
        total += p.arena.size() + p.table.size() * sizeof(std::uint32_t);
    return total;
}

// ---------------------------------------------------------------------------
// BitstateStore
// ---------------------------------------------------------------------------

BitstateStore::BitstateStore(std::size_t packedSize,
                             std::uint64_t budgetBytes)
    : StateStore(packedSize)
{
    if (budgetBytes == 0) budgetBytes = kDefaultBitstateBytes;
    if (budgetBytes < 64) budgetBytes = 64;
    // Largest power-of-two bit count fitting the budget (mask probing).
    std::uint64_t bits = 64;
    while (bits * 2 <= budgetBytes * 8) bits *= 2;
    bits_.assign(static_cast<std::size_t>(bits / 64), 0);
    bitMask_ = bits - 1;
}

std::pair<std::uint32_t, bool>
BitstateStore::intern(const std::uint8_t* bytes)
{
    // Supertrace membership: three independent probe bits per record.
    // "Seen" = all three set; a fresh record sets them. False positives
    // (distinct states mapping to three already-set bits) silently drop
    // states — hence lossy(), hence "no violation found" only.
    const std::uint64_t h = hashBytes(bytes, packedSize_);
    const std::uint64_t h2 = remix(h);
    const std::uint64_t probes[3] = {h & bitMask_, h2 & bitMask_,
                                     remix(h2) & bitMask_};
    bool seen = true;
    for (std::uint64_t p : probes)
        if (!(bits_[static_cast<std::size_t>(p >> 6)] &
              (1ull << (p & 63))))
            seen = false;
    if (seen) return {kNoId, false};
    for (std::uint64_t p : probes)
        bits_[static_cast<std::size_t>(p >> 6)] |= 1ull << (p & 63);
    ++count_;
    noteNewRecord(bytes);
    return {count_ - 1, true};
}

const std::uint8_t* BitstateStore::at(std::uint32_t) const
{
    throw EclError("BitstateStore::at: bitstate stores membership bits "
                   "only — interned records cannot be read back");
}

std::uint64_t BitstateStore::memoryBytes() const
{
    return bits_.size() * sizeof(std::uint64_t);
}

double BitstateStore::fillRatio() const
{
    std::uint64_t set = 0;
    for (std::uint64_t w : bits_) set += __builtin_popcountll(w);
    return static_cast<double>(set) /
           static_cast<double>(bits_.size() * 64);
}

} // namespace ecl::verify
