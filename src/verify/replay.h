// Counterexample replay: runs an explorer trace on real engines.
//
// The explorer's successor function is a lean re-implementation of the
// flat reaction (no counters, arena state). A counterexample is only
// trustworthy if the *production* engine agrees — so every trace can be
// replayed bit-exactly on rt::SyncEngine: the same inputs per instant,
// the monitor wired off the design's reactions exactly as during
// exploration, and the final instant checked against the recorded
// violation (signal presence, emitted value bytes, and the packed
// post-state via encodeEngineState). Optional rt::TraceRecorders
// capture the run for VCD / timeline dumps (runtime/trace).
//
// Replay is store- and reduction-agnostic: the trace carries the full
// input letters, so a counterexample found through a lossy bitstate
// store, under partial-order reduction, or via native-successor
// expansion replays on the same production engines — the lossy store
// can miss violations, but any violation it reports is replayed and
// real.
#pragma once

#include <string>
#include <vector>

#include "src/runtime/engine.h"
#include "src/runtime/instance_layout.h"
#include "src/runtime/trace.h"
#include "src/verify/explorer.h"

namespace ecl::verify {

struct ReplayOutcome {
    /// The engines reproduced the recorded violation bit-exactly.
    bool reproduced = false;
    std::string detail; ///< Human-readable confirmation or mismatch.
};

/// Packs a SyncEngine's live state exactly like the explorer's per-module
/// record: [control state : i32][instance-layout data bytes]. Two engines
/// (or an engine and an explorer state) are in the same verification
/// state iff these byte strings are equal.
std::vector<std::uint8_t> encodeEngineState(const rt::SyncEngine& engine,
                                            const rt::InstanceLayout& layout);

/// Replays `result.trace` on a fresh pair of engines. `monitor` may be
/// null when the exploration ran without one. The recorders, when given,
/// are sampled after every design / monitor reaction. Engines must be
/// freshly created (pre-boot) SyncEngines of the modules the exploration
/// ran on.
ReplayOutcome replayCounterexample(rt::SyncEngine& design,
                                   rt::SyncEngine* monitor,
                                   const ExploreResult& result,
                                   rt::TraceRecorder* designRec = nullptr,
                                   rt::TraceRecorder* monitorRec = nullptr);

/// Renders a trace as text, one instant per line (CLI + logs).
std::string formatTrace(const ModuleSema& designSema,
                        const std::vector<TraceStep>& trace);

} // namespace ecl::verify
