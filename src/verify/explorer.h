// Explicit-state verification: parallel reachability + safety checking
// over the shared flat tables.
//
// The ECL paper's pitch is that the Esterel-derived reactive part has a
// formal synchronous semantics, so system-level specs can be *verified*,
// not just executed. This layer exploits that: a compiled module's
// reaction function (efsm::FlatProgram + bc::Program, the same read-only
// tables the SyncEngine and the batch runtime execute) is a total
// function  (control state, data bytes, inputs) -> (control state, data
// bytes, emissions),  so the reachable state space can be enumerated
// exactly.
//
// State encoding — one packed fixed-size record per reached state:
//   [design control state : i32][monitor control state : i32, if any]
//   [design data bytes][monitor data bytes]
// where "data bytes" is the module's rt::InstanceLayout slice (variables
// + valued-signal slots) — byte-compatible with a batch-engine arena
// slice, and with rt::SyncEngine state via verify::encodeEngineState
// (src/verify/replay.h). Records are interned in a pluggable StateStore
// (ExplorerOptions::storeKind — exact arena, collapse-compressed, or
// lossy supertrace bitstate; see src/verify/state_store.h); the
// interned pause-set configuration behind a control state id is
// available through FlatProgram::configOf.
//
// Input alphabet — per instant the environment may set any subset of the
// input signals, valued inputs carrying one value from a finite domain
// (ExplorerOptions: {0,1} for scalars by default, the zero value for
// aggregates). Letters are enumerated in a canonical mixed-radix order
// (lowest signal index = least significant digit, absent < domain
// values), capped by maxLettersPerState. Dirty-set pruning: a *pure*
// input whose presence is never tested by the current control state's
// decision tree cannot affect the reaction, so it is held absent —
// valued inputs always stay in the alphabet because their value write
// persists in the state bytes. Pruning is sound for reachability and
// for minimal counterexamples (the minimal trace never sets an
// untested pure input).
//
// Partial-order reduction (ExplorerOptions::partialOrder, default off) —
// a composite letter {a, b, ...} of pure inputs commutes with its
// singleton decomposition when the per-signal reactions are independent:
// the same end control state, the same emitted-signal set and the same
// multiset of executed data actions, every executed action a
// state-independent commutative update (constant increment/decrement of
// a scalar variable). Such letters are dropped: the canonical
// interleaving a-then-b-then-... reaches the identical packed state
// through singleton letters that are ALWAYS kept, so every reachable
// state stays reachable (reduced set == unreduced set on complete runs;
// under a depth bound the reduced frontier is narrower, which is where
// the state-count reduction shows up). Soundness of the check is
// decided by a presence-only simulation of the decision tree: any
// data-dependent branch, valued emission, runtime-error leaf or
// non-commutative action disqualifies the letter. Letters that emit a
// checked violation signal are kept (shortest-counterexample quality),
// and the reduction is disabled entirely when a monitor is attached
// (the monitor observes instants, which the decomposition multiplies).
//
// Frontier expansion — BFS by default: each depth level is a contiguous
// id range; worker threads expand disjoint contiguous chunks of it
// through per-worker scratch (view Store + ArenaSigView + reentrant
// bc::Vm, exactly the batch runtime's shard discipline), then a
// sequential merge interns successors in canonical frontier x letter
// order. State numbering, state count, and the reported counterexample
// are therefore identical for any thread count, and BFS parent links
// give shortest traces. Workers never read the state store: the current
// level's records travel in an explicit frontier buffer (which is also
// what makes the write-only bitstate store possible, and removes the
// at()-across-intern() stale-pointer hazard by construction).
// Strategy::Dfs explores depth-first on the calling thread instead
// (lower memory for deep narrow spaces; traces not minimal).
//
// Native successors — when an AOT-compiled module is attached
// (attachNative / ExplorerOptions::nativeSuccessors via
// CompiledModule::makeExplorer), workers call the generated
// ecl_native_react for the DESIGN successor computation instead of the
// bytecode VM: same arena slice, same presence bytes, same trap
// messages, bit-exact states (differentially tested). The monitor, when
// attached, always reacts through the VM.
//
// Violations — three sources, checked per *transition* (emissions are
// per-instant and not part of the packed state):
//  * a monitor module attached with attachMonitor(): its inputs are
//    wired by name to design signals, it reacts synchronously on the
//    design's every instant, and emitting any violation signal
//    (ExplorerOptions::violationSignals, default any signal whose name
//    contains "violation") flags the transition;
//  * the same signal check on the design itself when no monitor is
//    attached;
//  * registered predicates over the post-reaction design state bytes.
// A reaction that traps at runtime (instantaneous-loop leaf, data
// runtime error) is reported as Violation::Kind::RuntimeError with the
// trace that reaches it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/efsm/flatten.h"
#include "src/interp/vm.h"
#include "src/runtime/instance_layout.h"
#include "src/runtime/native_abi.h"
#include "src/runtime/worker_pool.h"
#include "src/sema/sema.h"
#include "src/verify/state_store.h"

namespace ecl::rt {
class NativeModule;
}

namespace ecl::verify {

/// One present input in one instant of a counterexample trace.
struct InputEvent {
    int signal = -1; ///< SignalInfo::index in the design module.
    Value value;     ///< Empty for pure signals.
};

/// One instant of a counterexample: inputs to apply, then react().
struct TraceStep {
    std::vector<InputEvent> inputs;
};

struct Violation {
    enum class Kind {
        MonitorSignal, ///< Violation signal emitted by the monitor.
        DesignSignal,  ///< Violation signal emitted by the design.
        Predicate,     ///< A registered predicate returned true.
        RuntimeError,  ///< The reaction trapped (instantaneous loop, ...).
    };
    Kind kind = Kind::DesignSignal;
    std::string what; ///< Signal name, predicate name, or error text.
    int signal = -1;  ///< Signal kinds: index in the monitored module.
    Value value;      ///< Emitted value when the signal is valued.
    int depth = 0;    ///< Instants from boot up to the violating reaction.
    /// Packed post-reaction record (design [+ monitor]); empty for
    /// RuntimeError (the reaction never completed).
    std::vector<std::uint8_t> state;
};

struct ExploreStats {
    std::uint64_t states = 0;      ///< Distinct states interned (root incl.).
    /// Control states of the explored flat machine (post-flatten
    /// minimization already applied when the module was compiled at
    /// -O1/-O2); the packed reachable set is bounded by
    /// controlStates x data valuations.
    std::uint64_t controlStates = 0;
    std::uint64_t transitions = 0; ///< (state, letter) expansions executed.
    std::uint64_t peakFrontier = 0;
    int depthReached = 0; ///< Deepest instant expanded into.
    /// Frontier exhausted within every bound. NOTE: with a lossy store
    /// (lossyStore below) this is a coverage statement only — hash
    /// collisions may have merged distinct states, so a complete lossy
    /// run means "no violation found", never "verified".
    bool complete = false;
    bool alphabetTruncated = false; ///< maxLettersPerState hit somewhere.
    StoreKind storeKind = StoreKind::Exact;
    bool lossyStore = false;          ///< stateStore().lossy().
    std::uint64_t storeMemoryBytes = 0; ///< stateStore().memoryBytes().
    /// (state, letter) expansions skipped by partial-order reduction.
    std::uint64_t lettersReduced = 0;
    /// Design successors were computed by the AOT native reaction (an
    /// attached module that failed validation falls back to the VM and
    /// leaves this false — honest reporting over silent assumptions).
    bool usedNativeSuccessors = false;
    double seconds = 0;
    double statesPerSec = 0;
};

struct ExploreResult {
    ExploreStats stats;
    bool violated = false;
    Violation violation;          ///< Valid when violated.
    std::vector<TraceStep> trace; ///< Counterexample inputs, instant 0 first.
};

enum class Strategy {
    Bfs, ///< Level-parallel, deterministic ids, shortest counterexamples.
    Dfs, ///< Sequential depth-first; lower frontier memory, traces not
         ///< minimal.
};

struct ExplorerOptions {
    int threads = 1; ///< Worker threads for BFS level expansion.
    Strategy strategy = Strategy::Bfs;
    /// Maximum instants from boot (exploration depth). States beyond the
    /// bound stay unexpanded and the result is marked incomplete.
    int maxDepth = 1 << 20;
    /// Hard cap on interned states; hitting it marks the result
    /// incomplete (deterministically — interning order is canonical).
    std::uint32_t maxStates = 1u << 20;
    /// Input-alphabet cap per state (letters beyond it are dropped and
    /// stats.alphabetTruncated is set).
    std::size_t maxLettersPerState = 4096;
    /// Hold pure inputs absent in states whose decision tree never tests
    /// them (sound; see the header comment). Off = full alphabet.
    bool pruneInputs = true;
    /// Which StateStore implementation holds the reachable set.
    StoreKind storeKind = StoreKind::Exact;
    /// State-store byte budget. Bitstate sizes its bit table from it
    /// (0 = its 4 MiB default); exact/compressed runs stop — marked
    /// incomplete — once memoryBytes() exceeds it (0 = unlimited).
    std::uint64_t storeBudgetBytes = 0;
    /// Partial-order reduction over independent pure input letters
    /// (see the header comment for the exact commutation check).
    bool partialOrder = false;
    /// Ask CompiledModule::makeExplorer to attach the module's AOT
    /// native reaction for design successor computation (silently
    /// falls back to the VM when the backend is unavailable — check
    /// ExploreStats::usedNativeSuccessors).
    bool nativeSuccessors = false;
    /// Candidate values for scalar-valued inputs, smallest set that can
    /// drive both branches of most predicates by default.
    std::vector<std::int64_t> scalarDomain = {0, 1};
    /// Per-signal overrides of scalarDomain, keyed by input-signal name.
    std::map<std::string, std::vector<std::int64_t>> scalarDomains;
    /// Names of violation signals in the monitored module (monitor when
    /// attached, else the design). Empty = any signal whose lowercase
    /// name contains "violation".
    std::vector<std::string> violationSignals;
};

/// The name the ISSUE-facing docs use; same type.
using ExploreOptions = ExplorerOptions;

/// Read-only view of one packed design state (predicate interface).
class StateView {
public:
    StateView(const ModuleSema& sema, const rt::InstanceLayout& layout,
              int controlState, const std::uint8_t* data)
        : sema_(&sema), layout_(&layout), control_(controlState), data_(data)
    {
    }

    [[nodiscard]] int controlState() const { return control_; }

    /// Scalar variable by VarInfo index / by name.
    [[nodiscard]] std::int64_t var(int idx) const
    {
        const VarInfo& v = sema_->vars[static_cast<std::size_t>(idx)];
        return readScalar(
            data_ + layout_->varOffsets[static_cast<std::size_t>(idx)],
            v.type);
    }
    [[nodiscard]] std::int64_t var(const std::string& name) const;

    /// Materialized copy of any variable (aggregates included).
    [[nodiscard]] Value varValue(int idx) const
    {
        const VarInfo& v = sema_->vars[static_cast<std::size_t>(idx)];
        return Value::fromBytes(
            v.type, data_ + layout_->varOffsets[static_cast<std::size_t>(idx)]);
    }

    /// Persistent value slot of a valued signal.
    [[nodiscard]] std::int64_t signal(int idx) const;
    [[nodiscard]] Value signalValue(int idx) const;

private:
    const ModuleSema* sema_;
    const rt::InstanceLayout* layout_;
    int control_;
    const std::uint8_t* data_;
};

using Predicate = std::function<bool(const StateView&)>;

/// One name-wire between a monitor input and a design signal.
struct MonitorWire {
    int monitorSig = -1;
    int designSig = -1;
    bool valued = false; ///< Value transferred along with presence.
};

/// Resolves every monitor input against the design's signal table by
/// name (any direction — inputs, outputs and locals are observable).
/// Throws EclError on unknown names or value-type size mismatches.
std::vector<MonitorWire> wireMonitor(const ModuleSema& design,
                                     const ModuleSema& monitor);

class Explorer {
public:
    /// `flat`, `sema` and the structures behind `code` must outlive the
    /// explorer (retain() the CompiledModule, or use
    /// CompiledModule::makeExplorer which does).
    Explorer(const efsm::FlatProgram& flat,
             std::shared_ptr<const bc::Program> code, const ModuleSema& sema,
             ExplorerOptions options = {});

    Explorer(const Explorer&) = delete;
    Explorer& operator=(const Explorer&) = delete;

    /// Keeps an owner (typically a CompiledModule) alive.
    void retain(std::shared_ptr<const void> owner)
    {
        owners_.push_back(std::move(owner));
    }

    /// Attaches an observer module: inputs wired by name to design
    /// signals (wireMonitor rules), reacting on every explored instant.
    /// Must be called before run(); only one monitor is supported.
    void attachMonitor(const efsm::FlatProgram& flat,
                       std::shared_ptr<const bc::Program> code,
                       const ModuleSema& sema,
                       std::shared_ptr<const void> owner = nullptr);

    /// Attaches the design's AOT-compiled reaction function: workers
    /// call it for design successor computation (bit-exact with the VM
    /// path). Validates the module's shape record against the design
    /// tables; throws EclError on mismatch. Must be called before
    /// run().
    void attachNative(std::shared_ptr<const rt::NativeModule> native);

    /// Registers a safety predicate over post-reaction design states;
    /// returning true flags the transition as a violation.
    void addPredicate(std::string name, Predicate fn);

    /// Explores the reachable state space. Single-shot: a second call
    /// throws (build a fresh Explorer per run).
    ExploreResult run();

    [[nodiscard]] const ModuleSema& designSema() const { return sema_; }
    [[nodiscard]] const rt::InstanceLayout& designLayout() const
    {
        return layout_;
    }
    /// Order-sensitive digest over all interned states (determinism
    /// fingerprint for tests; comparable across store kinds). Valid
    /// after run().
    [[nodiscard]] std::uint64_t stateDigest() const;
    /// The interned packed records (reachable-set introspection; tests
    /// cross-check it against brute-force enumeration). Valid after
    /// run().
    [[nodiscard]] const StateStore& stateStore() const;
    [[nodiscard]] std::size_t packedSize() const { return packedSize_; }

private:
    /// One input letter: the present inputs of an instant.
    struct Letter {
        /// (design signal index, domain index) — domain index -1 for
        /// pure signals.
        std::vector<std::pair<std::int32_t, std::int32_t>> sets;
    };
    struct StateAlphabet {
        std::vector<Letter> letters;
        /// Partial-order reduction verdicts, empty when none dropped
        /// (1 = skip the expansion; see computePartialOrder).
        std::vector<std::uint8_t> reduced;
        bool truncated = false;
    };

    /// Per-module execution scratch of one worker (design or monitor).
    struct ModuleCtx {
        std::vector<std::uint8_t> slice;   ///< stride bytes, zeroed.
        std::vector<std::uint8_t> present; ///< One byte per signal.
        Store store;
        rt::ArenaSigView sigs;
        bc::Vm vm;

        ModuleCtx(const ModuleSema& sema, const rt::InstanceLayout& layout,
                  std::shared_ptr<const bc::Program> code);
    };

    /// One expanded successor, recorded by a worker for the merge phase.
    struct Succ {
        std::uint32_t parent = 0;
        std::uint32_t letter = 0;
        std::int32_t check = -1; ///< Violation-check index, -1 = none.
        bool runtimeError = false;
        std::string errorText; ///< Set when runtimeError.
    };

    struct Worker {
        ModuleCtx design;
        std::optional<ModuleCtx> monitor;
        std::vector<std::int32_t> emitRing; ///< Native-successor scratch.
        std::vector<std::uint8_t> packed; ///< Successors, packedSize each.
        std::vector<Succ> succs;
        std::uint64_t lettersReduced = 0; ///< POR-skipped expansions.
        bool sawTruncation = false; ///< Expanded a truncated-alphabet state.
        std::exception_ptr fatal;

        Worker(const Explorer& ex);
    };

    struct ParentLink {
        std::uint32_t parent = 0;
        std::uint32_t letter = 0;
    };

    /// Resolved violation check (signal checks first, then predicates).
    struct Check {
        Violation::Kind kind = Violation::Kind::DesignSignal;
        int signal = -1; ///< Signal checks.
        std::size_t predicate = 0; ///< Index into predicates_.
        std::string name;
    };

    /// Presence-only decision-tree simulation result (POR).
    struct SimResult {
        int endState = -1;
        std::vector<std::int32_t> emitted; ///< Signals, walk order.
        std::vector<std::int32_t> chunks;  ///< Executed action chunks.
    };

    void buildAlphabet();
    void resolveChecks();
    void computePartialOrder();
    bool simPure(int state, const std::vector<std::uint8_t>& present,
                 SimResult& out) const;
    [[nodiscard]] bool isCommutativeChunk(std::int32_t chunk) const;
    int reactModule(ModuleCtx& ctx, const efsm::FlatProgram& flat,
                    const ModuleSema& sema, const rt::InstanceLayout& layout,
                    int state) const;
    /// Expands one (state, letter) from the packed record `rec`.
    void expandOne(Worker& w, const std::uint8_t* rec, std::uint32_t id,
                   std::uint32_t letterIdx);
    /// Expands frontier ids [begin, end); records are read from the
    /// level buffer (levelRecs_ at levelBase_), never from the store.
    void expandRange(Worker& w, std::uint32_t begin, std::uint32_t end);
    ExploreResult runBfs();
    ExploreResult runDfs();
    /// Merges one worker buffer in canonical order; appends new records
    /// to nextRecs_. Returns true when a violation stops exploration.
    bool mergeWorker(Worker& w, ExploreResult& out);
    void recordViolation(const Succ& s, const std::uint8_t* packed,
                         ExploreResult& out);
    std::vector<TraceStep> buildTrace(std::uint32_t parent,
                                      std::uint32_t letterIdx) const;
    TraceStep letterToStep(std::uint32_t stateId,
                           std::uint32_t letterIdx) const;

    const efsm::FlatProgram& flat_;
    std::shared_ptr<const bc::Program> code_;
    const ModuleSema& sema_;
    rt::InstanceLayout layout_;
    ExplorerOptions options_;
    std::vector<std::shared_ptr<const void>> owners_;

    // Monitor (optional).
    const efsm::FlatProgram* monFlat_ = nullptr;
    std::shared_ptr<const bc::Program> monCode_;
    const ModuleSema* monSema_ = nullptr;
    rt::InstanceLayout monLayout_;
    std::vector<MonitorWire> wires_;

    // Native successor function (optional).
    std::shared_ptr<const rt::NativeModule> native_;
    rt::EclNativeReactFn nativeReact_ = nullptr;
    std::size_t nativeEmitSlots_ = 1;

    // Packed-record geometry.
    std::size_t headerBytes_ = 4;
    std::size_t packedSize_ = 0;

    // Canonical per-design-state input alphabet.
    std::vector<std::vector<Value>> domains_; ///< Per design signal index.
    std::vector<StateAlphabet> alphabet_;     ///< Per design flat state.

    // Violation checks.
    std::vector<Check> checks_;
    std::vector<std::pair<std::string, Predicate>> predicates_;

    // Exploration state. Workers never read store_: the current BFS
    // level's records live in levelRecs_ (id i at offset
    // (i - levelBase_) * packedSize_), the merge appends newly interned
    // records to nextRecs_, and designStates_ carries each id's design
    // control state for dead-state checks and trace reconstruction —
    // which is what lets the bitstate store drop the records entirely,
    // and removes every at()-across-intern() stale-pointer site.
    std::unique_ptr<StateStore> store_;
    std::vector<std::uint8_t> levelRecs_;
    std::vector<std::uint8_t> nextRecs_;
    std::uint32_t levelBase_ = 0;
    std::vector<std::int32_t> designStates_; ///< Per interned id.
    std::vector<ParentLink> parents_; ///< Per interned id.
    std::vector<std::uint32_t> depths_;
    bool ran_ = false;

    // BFS worker pool (threads > 1): one rt::WorkerPool epoch per level
    // over contiguous frontier chunks — the batch runtime's discipline,
    // now literally the same code.
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges_;
};

} // namespace ecl::verify
