// AOT C synthesis from the optimized flat tables — the paper's software
// back end [1], retargeted at the same representation the VM executes.
//
// generateC() emits one self-contained C99 translation unit from the
// CompiledModule's efsm::FlatProgram + bc::Program (the post-`-O`
// pipeline output, NOT the tree walk), so whatever level the module was
// compiled at is what the native code runs:
//  * control: `int ecl_native_react(ecl_nat_ctx *)` dispatches on the
//    flat state id (computed goto under GNU C, dense switch otherwise)
//    and walks each state's decision tree as labeled straight-line code;
//  * data: every bytecode chunk the flat tables reference (predicates,
//    data actions, emit values, called C helpers) is lowered to a static
//    C function with VM-exact semantics — normalizeScalar casts, `& 63`
//    shift masks, division/remainder-by-zero and array-bounds traps,
//    little-endian scalar encoding, zeroed per-call function frames and
//    the 64-frame call-depth limit;
//  * state: module variables and valued-signal slots live in the caller's
//    instance arena at the exact offsets of computeInstanceLayout()
//    (src/runtime/instance_layout.h), so a native instance's bytes are
//    drop-in compatible with the VM's packed state (packState(),
//    BatchEngine arenas, the verifier's encodeEngineState).
//
// The caller-provided context struct (`ecl_nat_ctx`) and the exported
// metadata record (`ecl_module_info`) mirror src/runtime/native_abi.h —
// keep the two in lockstep (kEclNativeAbiVersion guards drift at dlopen
// time). Runtime traps longjmp out of the reaction with `ctx->error` set;
// they never call into the host.
//
// Divergence from the VM, by design: ExecCounters are not metered (the
// whole point of compiling is that data instructions stop being
// countable events) and the op budget is approximated by a backward-
// branch fuel counter (`ctx->fuel`). Engine-level counters (tree_tests,
// actions_run, emits_run) ARE maintained exactly.
//
// Throws EclError when the module has no flat program or a chunk uses a
// shape the lowering cannot type statically; callers treat that as
// "native backend unavailable" and fall back to the VM
// (CompiledModule::makeEngine(EngineKind::Native)).
#pragma once

#include <string>

#include "src/core/compiler.h"

namespace ecl::codegen {

std::string generateC(const CompiledModule& module);

} // namespace ecl::codegen
