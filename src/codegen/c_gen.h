// C software synthesis from the EFSM — the paper's software back end [1].
//
// Emits a self-contained, compilable C file:
//  * the user's type declarations and C helper functions,
//  * one file-scope variable per module variable and per signal (a valued
//    signal's value variable carries the signal's own name, so extracted
//    data statements compile verbatim; presence is `<name>_present`),
//  * one function per extracted data loop,
//  * `void <module>_react(void)`: switch over states, nested-if decision
//    trees with actions interleaved, state update, input-flag clearing,
//  * input setters (`<module>_set_<sig>`) for the environment.
//
// Tests validate the output with `gcc -fsyntax-only`.
#pragma once

#include <string>

#include "src/core/compiler.h"

namespace ecl::codegen {

std::string generateC(const CompiledModule& module);

} // namespace ecl::codegen
