// Esterel source generation — the paper's phase-1 artifact.
//
// The ECL compiler's first phase splits an ECL file into an Esterel file
// (the reactive skeleton), a C file (extracted data code) and glue. This
// generator prints the reactive IR in Esterel-v5-style syntax, with data
// statements appearing as host-language procedure calls (`call ecl_data_N`)
// and data predicates as host-function tests — exactly the boundary the
// paper describes.
#pragma once

#include <string>

#include "src/ir/ir.h"
#include "src/sema/sema.h"

namespace ecl::codegen {

/// Prints the reactive part of `program` as an Esterel module named
/// `moduleName`, with interface and local signal declarations from `sema`.
std::string generateEsterel(const ir::ReactiveProgram& program,
                            const ModuleSema& sema,
                            const std::string& moduleName);

/// Prints the companion C file: one procedure per data action, operating on
/// the module's variables and signal values (the paper's "glue logic" that
/// lets Esterel code reach fields of ECL non-scalar data types).
std::string generateEsterelDataFile(const ir::ReactiveProgram& program,
                                    const ModuleSema& sema,
                                    const std::string& moduleName);

} // namespace ecl::codegen
