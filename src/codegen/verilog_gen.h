// Verilog hardware synthesis from the EFSM.
//
// The paper (Section 1/3): "If the data-dominated C part is empty, then the
// complete ECL specification can be implemented either in hardware or in
// software." This generator implements that rule: modules whose reaction
// contains no data actions and only pure signals synthesize to a clocked
// Verilog FSM (one clock tick = one instant; inputs are presence wires,
// outputs are registered presence pulses). Modules with a data part are
// rejected with an explanation, matching the paper's software-only fallback.
#pragma once

#include <string>

#include "src/core/compiler.h"

namespace ecl::codegen {

struct HwReport {
    bool synthesizable = false;
    std::string reason;     ///< Why not, when !synthesizable.
    std::string verilog;    ///< The RTL, when synthesizable.
    std::size_t stateBits = 0;
    std::size_t flipFlops = 0;
    std::size_t gateEstimate = 0;
};

HwReport generateVerilog(const CompiledModule& module);

} // namespace ecl::codegen
