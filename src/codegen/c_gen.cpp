#include "src/codegen/c_gen.h"

#include "src/frontend/ast_printer.h"
#include "src/support/strings.h"

namespace ecl::codegen {

using namespace ast;

namespace {

/// C declarator for a possibly-array type: `byte m[2][3]`.
std::string cDecl(const Type* t, const std::string& name)
{
    std::string dims;
    while (t->kind() == TypeKind::Array) {
        dims += "[" + std::to_string(t->count()) + "]";
        t = t->element();
    }
    return t->name() + " " + name + dims;
}

/// C expression printer with type-aware fixes relative to the AST printer:
///  * `~` on a bool operand prints as `!` (ECL's logical-not rule),
///  * casts of byte arrays to scalars print as ecl_le_bytes(...) calls.
class CPrinter {
public:
    explicit CPrinter(
        const std::unordered_map<const Expr*, const Type*>* types)
        : types_(types)
    {
    }

    std::string expr(const Expr& e) const
    {
        switch (e.kind) {
        case ExprKind::Unary: {
            const auto& x = static_cast<const UnaryExpr&>(e);
            if (x.op == UnaryOp::BitNot && types_) {
                auto it = types_->find(x.operand.get());
                if (it != types_->end() && it->second->isBool())
                    return "(!" + expr(*x.operand) + ")";
            }
            std::string inner = expr(*x.operand);
            switch (x.op) {
            case UnaryOp::Plus: return "(+" + inner + ")";
            case UnaryOp::Minus: return "(-" + inner + ")";
            case UnaryOp::Not: return "(!" + inner + ")";
            case UnaryOp::BitNot: return "(~" + inner + ")";
            case UnaryOp::PreInc: return "(++" + inner + ")";
            case UnaryOp::PreDec: return "(--" + inner + ")";
            case UnaryOp::PostInc: return "(" + inner + "++)";
            case UnaryOp::PostDec: return "(" + inner + "--)";
            }
            return "?";
        }
        case ExprKind::Cast: {
            const auto& x = static_cast<const CastExpr&>(e);
            if (types_) {
                auto it = types_->find(x.operand.get());
                if (it != types_->end() &&
                    it->second->kind() == TypeKind::Array) {
                    std::string inner = expr(*x.operand);
                    return "((" + x.typeName + ")ecl_le_bytes(" + inner +
                           ", sizeof(" + inner + ")))";
                }
            }
            return "((" + x.typeName + ")" + expr(*x.operand) + ")";
        }
        case ExprKind::Binary: {
            const auto& x = static_cast<const BinaryExpr&>(e);
            // Reuse the shared printer's operator spellings via printExpr
            // on a shallow basis: print children with this printer.
            static const char* names[] = {"+", "-",  "*",  "/",  "%",  "<<",
                                          ">>", "<",  ">",  "<=", ">=", "==",
                                          "!=", "&",  "|",  "^",  "&&", "||"};
            return "(" + expr(*x.lhs) + " " +
                   names[static_cast<int>(x.op)] + " " + expr(*x.rhs) + ")";
        }
        case ExprKind::Assign: {
            const auto& x = static_cast<const AssignExpr&>(e);
            static const char* names[] = {"=",  "+=", "-=", "*=",  "/=", "%=",
                                          "<<=", ">>=", "&=", "|=", "^="};
            return expr(*x.lhs) + " " + names[static_cast<int>(x.op)] + " " +
                   expr(*x.rhs);
        }
        case ExprKind::Cond: {
            const auto& x = static_cast<const CondExpr&>(e);
            return "(" + expr(*x.cond) + " ? " + expr(*x.thenExpr) + " : " +
                   expr(*x.elseExpr) + ")";
        }
        case ExprKind::Index: {
            const auto& x = static_cast<const IndexExpr&>(e);
            return expr(*x.base) + "[" + expr(*x.index) + "]";
        }
        case ExprKind::Member: {
            const auto& x = static_cast<const MemberExpr&>(e);
            return expr(*x.base) + "." + x.field;
        }
        case ExprKind::Call: {
            const auto& x = static_cast<const CallExpr&>(e);
            if (x.callee == "__sizeof_expr")
                return "sizeof(" + expr(*x.args[0]) + ")";
            std::string out = x.callee + "(";
            for (std::size_t i = 0; i < x.args.size(); ++i) {
                if (i) out += ", ";
                out += expr(*x.args[i]);
            }
            return out + ")";
        }
        default: return printExpr(e);
        }
    }

    std::string stmt(const Stmt& s, int depth) const
    {
        const std::string pad(4 * static_cast<std::size_t>(depth), ' ');
        switch (s.kind) {
        case StmtKind::Block: {
            const auto& x = static_cast<const BlockStmt&>(s);
            std::string out = pad + "{\n";
            for (const StmtPtr& st : x.body) out += stmt(*st, depth + 1);
            return out + pad + "}\n";
        }
        case StmtKind::Decl: {
            // Module variables are file-scope; re-executing a declaration
            // re-initializes them.
            const auto& x = static_cast<const DeclStmt&>(s);
            std::string out;
            for (const Declarator& d : x.decls) {
                out += pad + "memset(&" + d.name + ", 0, sizeof(" + d.name +
                       "));\n";
                if (d.init)
                    out += pad + d.name + " = " + expr(*d.init) + ";\n";
            }
            return out;
        }
        case StmtKind::ExprStmt:
            return pad + expr(*static_cast<const ExprStmt&>(s).expr) + ";\n";
        case StmtKind::If: {
            const auto& x = static_cast<const IfStmt&>(s);
            std::string out = pad + "if (" + expr(*x.cond) + ")\n" +
                              stmt(*x.thenStmt, depth + 1);
            if (x.elseStmt) out += pad + "else\n" + stmt(*x.elseStmt, depth + 1);
            return out;
        }
        case StmtKind::While: {
            const auto& x = static_cast<const WhileStmt&>(s);
            return pad + "while (" + expr(*x.cond) + ")\n" +
                   stmt(*x.body, depth + 1);
        }
        case StmtKind::DoWhile: {
            const auto& x = static_cast<const DoWhileStmt&>(s);
            return pad + "do\n" + stmt(*x.body, depth + 1) + pad + "while (" +
                   expr(*x.cond) + ");\n";
        }
        case StmtKind::For: {
            const auto& x = static_cast<const ForStmt&>(s);
            // The init may be a Decl/Block (comma form); hoist it above.
            std::string out;
            if (x.init) out += stmt(*x.init, depth);
            out += pad + "for (; ";
            if (x.cond) out += expr(*x.cond);
            out += "; ";
            if (x.step) out += expr(*x.step);
            out += ")\n" + stmt(*x.body, depth + 1);
            return out;
        }
        case StmtKind::Break: return pad + "break;\n";
        case StmtKind::Continue: return pad + "continue;\n";
        case StmtKind::Return: {
            const auto& x = static_cast<const ReturnStmt&>(s);
            if (x.value) return pad + "return " + expr(*x.value) + ";\n";
            return pad + "return;\n";
        }
        case StmtKind::Empty: return pad + ";\n";
        default:
            return pad + "/* reactive statement (unreachable in data) */;\n";
        }
    }

private:
    const std::unordered_map<const Expr*, const Type*>* types_;
};

void printTree(const efsm::TransNode& t, const CompiledModule& mod,
               const CPrinter& printer, int depth, std::string& out)
{
    const ModuleSema& sema = mod.moduleSema();
    const std::string pad(4 * static_cast<std::size_t>(depth), ' ');

    for (const efsm::Action& a : t.prefixActions) {
        if (a.kind == efsm::Action::Kind::Emit) {
            const SignalInfo& sig =
                sema.signals[static_cast<std::size_t>(a.signal)];
            if (a.valueExpr)
                out += pad + sig.name + " = " + printer.expr(*a.valueExpr) +
                       ";\n";
            out += pad + sig.name + "_present = 1;\n";
        } else {
            const ir::DataAction& da =
                mod.reactiveProgram().actions[static_cast<std::size_t>(
                    a.dataActionId)];
            if (da.extractedLoop) {
                out += pad + "ecl_data_" + std::to_string(da.id) + "();\n";
            } else if (da.stmt) {
                out += printer.stmt(*da.stmt, depth);
            } else if (da.expr) {
                out += pad + printer.expr(*da.expr) + ";\n";
            }
        }
    }

    if (t.isLeaf) {
        if (t.runtimeError)
            out += pad + "ecl_runtime_error(\"instantaneous loop\");\n";
        out += pad + "ecl_state = " + std::to_string(t.nextState) + ";\n";
        out += pad + "goto ecl_done;\n";
        return;
    }

    std::string cond;
    if (t.testsSignal)
        cond = sema.signals[static_cast<std::size_t>(t.signal)].name +
               "_present";
    else
        cond = printer.expr(*t.dataCond);
    out += pad + "if (" + cond + ") {\n";
    printTree(*t.onTrue, mod, printer, depth + 1, out);
    out += pad + "} else {\n";
    printTree(*t.onFalse, mod, printer, depth + 1, out);
    out += pad + "}\n";
}

} // namespace

std::string generateC(const CompiledModule& mod)
{
    const ModuleSema& sema = mod.moduleSema();
    const ProgramSema& prog = mod.programSema();
    CPrinter printer(&sema.exprType);

    std::string out;
    out += "/* Generated by the ECL compiler: software synthesis of module '" +
           mod.name() + "'.\n";
    out += " * One reaction = one call to " + mod.name() + "_react().\n */\n";
    out += "#include <string.h>\n#include <stdbool.h>\n\n";
    out += "static long ecl_le_bytes(const void *p, unsigned n)\n"
           "{\n"
           "    const unsigned char *b = (const unsigned char *)p;\n"
           "    long v = 0;\n"
           "    unsigned i;\n"
           "    for (i = 0; i < n && i < 8; i++)\n"
           "        v |= (long)b[i] << (8 * i);\n"
           "    return v;\n"
           "}\n\n"
           "extern void ecl_runtime_error(const char *msg);\n\n";

    // User type declarations, constants and helper functions, in order.
    for (const TopDeclPtr& d : prog.program->decls) {
        switch (d->kind) {
        case DeclKind::Typedef: {
            const auto& x = static_cast<const TypedefDecl&>(*d);
            const Type* t = prog.types.lookup(x.name);
            if (t->isAggregate()) {
                out += "typedef ";
                out += t->kind() == TypeKind::Union ? "union" : "struct";
                out += " {\n";
                for (const Type::Field& f : t->fields())
                    out += "    " + cDecl(f.type, f.name) + ";\n";
                out += "} " + x.name + ";\n\n";
            } else {
                out += "typedef " + cDecl(t, x.name) + ";\n";
                // cDecl puts dims after the name, which is correct for
                // array typedefs too.
                out += "\n";
            }
            break;
        }
        case DeclKind::Aggregate: {
            const auto& x = static_cast<const AggregateDecl&>(*d);
            std::string key =
                (x.def.isUnion ? "union " : "struct ") + x.def.tag;
            const Type* t = prog.types.lookup(key);
            out += (x.def.isUnion ? "union " : "struct ") + x.def.tag +
                   " {\n";
            for (const Type::Field& f : t->fields())
                out += "    " + cDecl(f.type, f.name) + ";\n";
            out += "};\n\n";
            break;
        }
        case DeclKind::GlobalVar: {
            const auto& x = static_cast<const GlobalVarDecl&>(*d);
            for (const Declarator& decl : x.decls) {
                auto it = prog.constants.find(decl.name);
                if (it != prog.constants.end())
                    out += "enum { " + decl.name + " = " +
                           std::to_string(it->second) + " };\n";
            }
            out += "\n";
            break;
        }
        case DeclKind::Function: {
            const auto& x = static_cast<const FunctionDecl&>(*d);
            const FunctionInfo* info = prog.findFunction(x.name);
            auto fsIt = mod.functions().find(x.name);
            const CPrinter fnPrinter(
                fsIt != mod.functions().end() ? &fsIt->second.exprType
                                              : nullptr);
            out += info->returnType->name() + " " + x.name + "(";
            if (info->params.empty()) out += "void";
            for (std::size_t i = 0; i < info->params.size(); ++i) {
                if (i) out += ", ";
                out += cDecl(info->params[i].second, info->params[i].first);
            }
            out += ")\n";
            out += fnPrinter.stmt(*x.body, 0);
            out += "\n";
            break;
        }
        case DeclKind::Module: break;
        }
    }

    // Signals: value variable named like the signal + presence flag.
    out += "/* --- signals --- */\n";
    for (const SignalInfo& s : sema.signals) {
        if (!s.pure) out += "static " + cDecl(s.valueType, s.name) + ";\n";
        out += "static unsigned char " + s.name + "_present;\n";
    }
    out += "\n/* --- module variables --- */\n";
    for (const VarInfo& v : sema.vars)
        out += "static " + cDecl(v.type, v.name) + ";\n";
    out += "\nstatic int ecl_state = 0;\n\n";

    // Extracted data-loop functions.
    for (const ir::DataAction& a : mod.reactiveProgram().actions) {
        if (!a.extractedLoop) continue;
        out += "/* extracted data loop */\n";
        out += "static void ecl_data_" + std::to_string(a.id) + "(void)\n";
        out += "{\n";
        if (a.stmt) out += printer.stmt(*a.stmt, 1);
        out += "}\n\n";
    }

    // Input setters.
    for (const SignalInfo& s : sema.signals) {
        if (s.dir != ecl::SignalDir::Input) continue;
        if (s.pure) {
            out += "void " + mod.name() + "_set_" + s.name +
                   "(void) { " + s.name + "_present = 1; }\n";
        } else {
            out += "void " + mod.name() + "_set_" + s.name + "(" +
                   cDecl(s.valueType, "v") + ") { " + s.name +
                   (s.valueType->kind() == TypeKind::Array
                        ? "; /* array copy */ memcpy(&" + s.name +
                              ", &v, sizeof(" + s.name + ")); "
                        : " = v; ") +
                   s.name + "_present = 1; }\n";
        }
    }
    out += "\n";

    // The reaction function.
    out += "void " + mod.name() + "_react(void)\n{\n";
    out += "    /* local and output presence is per-instant */\n";
    for (const SignalInfo& s : sema.signals)
        if (s.dir != ecl::SignalDir::Input)
            out += "    " + s.name + "_present = 0;\n";
    out += "\n    switch (ecl_state) {\n";
    for (const efsm::State& st : mod.machine().states) {
        out += "    case " + std::to_string(st.id) + ":";
        out += st.boot ? " /* boot */\n" : (st.dead ? " /* dead */\n" : "\n");
        if (st.tree) printTree(*st.tree, mod, printer, 2, out);
        out += "        break;\n";
    }
    out += "    }\n";
    out += "ecl_done:\n";
    for (const SignalInfo& s : sema.signals)
        if (s.dir == ecl::SignalDir::Input)
            out += "    " + s.name + "_present = 0;\n";
    out += "    return;\n";
    out += "}\n";
    return out;
}

} // namespace ecl::codegen
