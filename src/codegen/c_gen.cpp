// Flat-table AOT C generator: FlatProgram + bc::Program -> one C99 TU.
// See c_gen.h for the contract and src/runtime/native_abi.h for the ABI
// the emitted structs mirror.
//
// Structure of the lowering:
//  * generateC() plans the set of referenced chunks (node predicates,
//    data actions, emit values) with their use kind (statement / scalar
//    expression / aggregate expression), discovers transitively-called C
//    helper functions, lowers each to a static C function, and finally
//    emits ecl_native_react()'s state dispatch + per-node code.
//  * Each chunk lowering first runs a forward dataflow over the chunk's
//    instruction range assigning every register a static kind+type at
//    every program point (the VM carries these dynamically in Reg::type;
//    straight-line C needs them at generation time). Join points merge;
//    an unresolvable merge that an instruction actually depends on
//    aborts generation with EclError — the caller falls back to the VM.
//  * Registers become C locals: `rN` (int64_t scalar), `pN` (byte
//    pointer: lvalue address or aggregate-value cursor), `bN` (owned
//    aggregate scratch, mirroring Reg::buf's copy semantics so union
//    views and call-by-value stay well-defined).
#include "src/codegen/c_gen.h"

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/runtime/instance_layout.h"
#include "src/runtime/native_abi.h"

namespace ecl::codegen {

namespace {

using bc::Instr;
using bc::Op;

[[noreturn]] void unsupported(const std::string& what)
{
    throw EclError("native codegen: unsupported: " + what);
}

std::string i64Lit(std::int64_t v)
{
    if (v == INT64_MIN) return "(-9223372036854775807LL - 1)";
    return std::to_string(v) + "LL";
}

// ---------------------------------------------------------------------------
// Register dataflow lattice
// ---------------------------------------------------------------------------

struct Lat {
    enum Kind : std::uint8_t {
        Unknown,     ///< Never written on this path (bottom).
        Scalar,      ///< int64 value of `type`.
        MixedScalar, ///< Scalar of >1 merged non-identical types.
        Ptr,         ///< Address; `type` is the pointee.
        Agg,         ///< Owned aggregate value of `type` (exact).
        Conflict,    ///< Irreconcilable merge (top).
    };
    Kind kind = Unknown;
    const Type* type = nullptr;

    bool operator==(const Lat& o) const
    {
        return kind == o.kind && type == o.type;
    }
};

Lat mergeLat(const Lat& a, const Lat& b)
{
    if (a.kind == Lat::Unknown) return b;
    if (b.kind == Lat::Unknown) return a;
    if (a == b) return a;
    bool aScalar = a.kind == Lat::Scalar || a.kind == Lat::MixedScalar;
    bool bScalar = b.kind == Lat::Scalar || b.kind == Lat::MixedScalar;
    if (aScalar && bScalar) return {Lat::MixedScalar, nullptr};
    return {Lat::Conflict, nullptr};
}

// ---------------------------------------------------------------------------
// Scalar memory access / normalization (VM value.h semantics)
// ---------------------------------------------------------------------------

/// readScalar(p, t) as a C expression (little-endian, sign-extended).
std::string rdExpr(const Type* t, const std::string& p)
{
    if (t->isBool()) return "((int64_t)((" + p + ")[0] != 0))";
    switch (t->size()) {
    case 1:
        return t->isSigned() ? "((int64_t)(int8_t)(" + p + ")[0])"
                             : "((int64_t)(" + p + ")[0])";
    case 2:
        return t->isSigned() ? "((int64_t)(int16_t)ecl_ld2(" + p + "))"
                             : "((int64_t)ecl_ld2(" + p + "))";
    case 4:
        return t->isSigned() ? "((int64_t)(int32_t)ecl_ld4(" + p + "))"
                             : "((int64_t)ecl_ld4(" + p + "))";
    case 8:
        return "((int64_t)ecl_ld8(" + p + "))";
    default:
        unsupported("scalar load of size " + std::to_string(t->size()));
    }
}

/// writeScalar(p, t, v) as a C statement (truncating LE store).
std::string stStmt(const Type* t, const std::string& p, const std::string& v)
{
    if (t->isBool())
        return "(" + p + ")[0] = (uint8_t)((" + v + ") != 0);";
    switch (t->size()) {
    case 1: return "(" + p + ")[0] = (uint8_t)(" + v + ");";
    case 2: return "ecl_st2(" + p + ", (uint16_t)(" + v + "));";
    case 4: return "ecl_st4(" + p + ", (uint32_t)(" + v + "));";
    case 8: return "ecl_st8(" + p + ", (uint64_t)(" + v + "));";
    default:
        unsupported("scalar store of size " + std::to_string(t->size()));
    }
}

/// bc::normalizeScalar(t, v) as a C expression.
std::string normExpr(const Type* t, const std::string& v)
{
    if (t->isBool()) return "((int64_t)((" + v + ") != 0))";
    std::size_t sz = t->size();
    if (sz >= 8) return "(" + v + ")";
    std::string w = std::to_string(sz * 8);
    return t->isSigned() ? "((int64_t)(int" + w + "_t)(" + v + "))"
                         : "((int64_t)(uint" + w + "_t)(" + v + "))";
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

/// How a module-context chunk is consumed by the flat tables.
enum class ChunkUse : std::uint8_t { Stmt, Scalar, Agg };

struct ChunkPlan {
    ChunkUse use = ChunkUse::Stmt;
    const Type* aggType = nullptr; ///< Out-buffer type for ChunkUse::Agg.
};

class Gen {
public:
    explicit Gen(const CompiledModule& mod)
        : mod_(mod), flat_(mod.flatProgram()), prog_(mod.byteCode()),
          sema_(mod.moduleSema()), layout_(rt::computeInstanceLayout(sema_))
    {
    }

    std::string run();

private:
    /// Slot-store context a chunk executes against: the module arena or a
    /// C-helper call frame.
    struct Frame {
        bool isModule = true;
        const std::vector<VarInfo>* vars = nullptr;
        std::vector<std::size_t> offsets; ///< Function-frame slot offsets.
        std::size_t frameBytes = 0;
    };

    // Planning.
    void planModuleChunks();
    void addChunkUse(int chunk, ChunkUse use, const Type* aggType);
    void discoverFunctions();

    // Lowering.
    std::string chunkSig(int chunk, bool forwardDecl) const;
    std::string fnSig(int fnIndex, bool forwardDecl) const;
    std::string lowerModuleChunk(int chunk);
    std::string lowerFunction(int fnIndex);
    std::string lowerBody(const bc::Chunk& ck, const Frame& frame,
                          int fnIndex);
    std::vector<std::vector<Lat>> typeFlow(const bc::Chunk& ck,
                                           const Frame& frame,
                                           std::vector<char>& reachable)
        const;
    Lat transferDest(const Instr& I, const std::vector<Lat>& in,
                     const Frame& frame) const;

    const Type* slotType(const Frame& f, int slot) const
    {
        return (*f.vars)[static_cast<std::size_t>(slot)].type;
    }
    std::string slotAddr(const Frame& f, int slot) const
    {
        if (f.isModule)
            return "(c->data + " +
                   std::to_string(
                       layout_.varOffsets[static_cast<std::size_t>(slot)]) +
                   ")";
        return "(fr + " +
               std::to_string(f.offsets[static_cast<std::size_t>(slot)]) +
               ")";
    }
    const SignalInfo& valuedSignal(int idx) const
    {
        const SignalInfo& s = sema_.signals[static_cast<std::size_t>(idx)];
        if (s.pure) unsupported("value access on pure signal '" + s.name + "'");
        return s;
    }
    std::string sigAddr(int idx) const
    {
        return "(c->data + " +
               std::to_string(
                   layout_.sigOffsets[static_cast<std::size_t>(idx)]) +
               ")";
    }

    // React emission.
    void emitPrelude(std::ostringstream& os) const;
    void emitInfo(std::ostringstream& os) const;
    void emitActions(std::ostringstream& os, const efsm::FlatNode& node)
        const;
    void emitReact(std::ostringstream& os) const;

    const CompiledModule& mod_;
    const efsm::FlatProgram& flat_;
    const bc::Program& prog_;
    const ModuleSema& sema_;
    rt::InstanceLayout layout_;

    std::map<int, ChunkPlan> chunks_;   ///< Module-context chunks.
    std::set<int> functions_;           ///< Referenced C helper functions.
    /// Non-void functions whose bytecode can fall off the end: they take
    /// the call site's source location so the trap message matches the
    /// VM's (which fails at the Call instruction's loc).
    std::set<int> mayFallOff_;
    std::uint32_t maxEmits_ = 1;
    bool needOobHelper_ = false; ///< Emitted an ecl_fail_oob call.
    bool needRetHelper_ = false; ///< Emitted an ecl_fail_ret call.
};

/// The VM raises data traps as EclError(loc, "runtime: ..."); mirror the
/// formatted prefix in the generated message literals.
std::string locMsg(const SourceLoc& loc, const std::string& msg)
{
    return to_string(loc) + ": runtime: " + msg;
}

void Gen::addChunkUse(int chunk, ChunkUse use, const Type* aggType)
{
    auto [it, inserted] = chunks_.try_emplace(chunk, ChunkPlan{use, aggType});
    if (inserted) return;
    ChunkPlan& plan = it->second;
    if (plan.use == use && plan.aggType == aggType) return;
    // Stmt and Scalar uses can share one scalar-returning lowering; any
    // aggregate mixing cannot.
    if (plan.use == ChunkUse::Agg || use == ChunkUse::Agg)
        unsupported("chunk with mixed aggregate/scalar uses");
    plan.use = ChunkUse::Scalar;
}

void Gen::planModuleChunks()
{
    for (const efsm::FlatNode& n : flat_.nodes)
        if (!n.isLeaf() && n.testSignal < 0) {
            if (n.predChunk < 0) unsupported("test node without predicate");
            addChunkUse(n.predChunk, ChunkUse::Scalar, nullptr);
        }
    std::uint32_t outEmits = 0;
    for (const efsm::FlatAction& a : flat_.actions) {
        if (a.kind == efsm::FlatAction::Kind::Emit) {
            if (a.isOutput) ++outEmits;
            if (a.chunk < 0) continue;
            const SignalInfo& s = valuedSignal(a.signal);
            if (s.valueType->isScalar())
                addChunkUse(a.chunk, ChunkUse::Scalar, nullptr);
            else
                addChunkUse(a.chunk, ChunkUse::Agg, s.valueType);
        } else if (a.chunk >= 0) {
            addChunkUse(a.chunk, ChunkUse::Stmt, nullptr);
        }
    }
    maxEmits_ = outEmits > 0 ? outEmits : 1;
}

void Gen::discoverFunctions()
{
    std::vector<int> work;
    auto scan = [&](int chunk) {
        const bc::Chunk& ck =
            prog_.chunks[static_cast<std::size_t>(chunk)];
        for (std::uint32_t pc = ck.begin; pc < ck.end; ++pc) {
            const Instr& I = prog_.code[pc];
            if (I.op == Op::Call && functions_.insert(I.imm).second)
                work.push_back(I.imm);
        }
    };
    for (const auto& [chunk, plan] : chunks_) scan(chunk);
    while (!work.empty()) {
        int fn = work.back();
        work.pop_back();
        scan(prog_.functions[static_cast<std::size_t>(fn)].chunk);
    }
    // Conservative fall-off detection: any End terminator in a non-void
    // function body can be the fell-off-without-return trap.
    for (int fn : functions_) {
        const bc::CompiledFunction& f =
            prog_.functions[static_cast<std::size_t>(fn)];
        if (f.returnType->isVoid()) continue;
        const bc::Chunk& ck =
            prog_.chunks[static_cast<std::size_t>(f.chunk)];
        for (std::uint32_t pc = ck.begin; pc < ck.end; ++pc)
            if (prog_.code[pc].op == Op::End) {
                mayFallOff_.insert(fn);
                break;
            }
    }
}

// ---------------------------------------------------------------------------
// Dataflow
// ---------------------------------------------------------------------------

Lat Gen::transferDest(const Instr& I, const std::vector<Lat>& in,
                      const Frame& frame) const
{
    auto scalar = [](const Type* t) { return Lat{Lat::Scalar, t}; };
    auto ptr = [](const Type* t) { return Lat{Lat::Ptr, t}; };
    auto agg = [](const Type* t) { return Lat{Lat::Agg, t}; };
    auto fromPointee = [&](const Lat& base) -> Lat {
        if (base.kind == Lat::Unknown) return {};
        if ((base.kind == Lat::Ptr || base.kind == Lat::Agg) && base.type)
            return base.type->isScalar() ? scalar(base.type)
                                         : agg(base.type);
        return {Lat::Conflict, nullptr};
    };
    switch (I.op) {
    case Op::ConstInt: return scalar(I.type);
    case Op::LoadVarSc: return scalar(I.type);
    case Op::LoadVarAg: return agg(I.type);
    case Op::LoadSig: {
        const Type* t = valuedSignal(I.imm).valueType;
        return t->isScalar() ? scalar(t) : agg(t);
    }
    case Op::AddrVar: return ptr(slotType(frame, I.imm));
    case Op::AddrSig: return ptr(valuedSignal(I.imm).valueType);
    case Op::AddrVarOff:
    case Op::AddrSigOff:
    case Op::AddrField: return ptr(I.type);
    case Op::AddrIndex:
    case Op::AddrIndexVar: {
        const Lat& base = in[I.b];
        if (base.kind == Lat::Unknown) return {};
        if ((base.kind == Lat::Ptr || base.kind == Lat::Agg) && base.type &&
            base.type->kind() == TypeKind::Array)
            return ptr(base.type->element());
        return {Lat::Conflict, nullptr};
    }
    case Op::LoadInd: return fromPointee(in[I.b]);
    case Op::Unary:
        switch (static_cast<ast::UnaryOp>(I.imm)) {
        case ast::UnaryOp::Plus: return in[I.b];
        case ast::UnaryOp::Minus: return scalar(prog_.intType);
        case ast::UnaryOp::Not: return scalar(prog_.boolType);
        case ast::UnaryOp::BitNot: {
            const Lat& v = in[I.b];
            if (v.kind == Lat::Unknown) return {};
            if (v.kind == Lat::Scalar && v.type)
                return scalar(v.type->isBool() ? prog_.boolType
                                               : prog_.intType);
            return {Lat::Conflict, nullptr};
        }
        default: return {Lat::Conflict, nullptr};
        }
    case Op::IncDec: {
        const Lat& b = in[I.b];
        if (b.kind == Lat::Unknown) return {};
        if (b.kind == Lat::Ptr && b.type) return scalar(b.type);
        return {Lat::Conflict, nullptr};
    }
    case Op::Binary:
    case Op::BinaryImm:
        switch (static_cast<ast::BinaryOp>(I.imm)) {
        case ast::BinaryOp::Lt:
        case ast::BinaryOp::Gt:
        case ast::BinaryOp::Le:
        case ast::BinaryOp::Ge:
        case ast::BinaryOp::Eq:
        case ast::BinaryOp::Ne: return scalar(prog_.boolType);
        default: return scalar(prog_.intType);
        }
    case Op::Cast: return scalar(I.type);
    case Op::BoolVal:
    case Op::SetBool: return scalar(I.type);
    case Op::StoreSc:
    case Op::StoreCompound: {
        const Lat& b = in[I.b];
        if (b.kind == Lat::Unknown) return {};
        if (b.kind == Lat::Ptr && b.type) return scalar(b.type);
        return {Lat::Conflict, nullptr};
    }
    case Op::StoreVarSc:
    case Op::StoreVarImm: return scalar(slotType(frame, I.imm));
    case Op::IncDecVar:
        return scalar(slotType(frame, static_cast<int>(I.imm64)));
    case Op::StoreAg: {
        const Lat& b = in[I.b];
        if (b.kind == Lat::Unknown) return {};
        if (b.kind == Lat::Ptr && b.type) return agg(b.type);
        return {Lat::Conflict, nullptr};
    }
    case Op::Call: {
        const bc::CompiledFunction& f =
            prog_.functions[static_cast<std::size_t>(I.imm)];
        if (f.returnType->isVoid()) return scalar(prog_.intType);
        return f.returnType->isScalar() ? scalar(f.returnType)
                                        : agg(f.returnType);
    }
    default: return {Lat::Unknown, nullptr}; // No destination write.
    }
}

std::vector<std::vector<Lat>> Gen::typeFlow(const bc::Chunk& ck,
                                            const Frame& frame,
                                            std::vector<char>& reachable)
    const
{
    std::size_t n = ck.end - ck.begin;
    std::vector<std::vector<Lat>> in(
        n, std::vector<Lat>(prog_.maxRegs));
    reachable.assign(n, 0);
    std::vector<int> work{0};
    reachable[0] = 1;
    auto join = [&](std::size_t succ, const std::vector<Lat>& state) {
        if (succ >= n) unsupported("jump out of chunk range");
        if (!reachable[succ]) {
            reachable[succ] = 1;
            in[succ] = state;
            work.push_back(static_cast<int>(succ));
            return;
        }
        bool changed = false;
        for (std::size_t r = 0; r < state.size(); ++r) {
            Lat m = mergeLat(in[succ][r], state[r]);
            if (!(m == in[succ][r])) {
                in[succ][r] = m;
                changed = true;
            }
        }
        if (changed) work.push_back(static_cast<int>(succ));
    };
    while (!work.empty()) {
        std::size_t k = static_cast<std::size_t>(work.back());
        work.pop_back();
        const Instr& I = prog_.code[ck.begin + k];
        std::vector<Lat> out = in[k];
        Lat dest = transferDest(I, in[k], frame);
        bool writes = dest.kind != Lat::Unknown ||
                      (I.op != Op::Jmp && I.op != Op::BranchFalse &&
                       I.op != Op::BranchTrue && I.op != Op::Ret &&
                       I.op != Op::RetVoid && I.op != Op::End &&
                       I.op != Op::ZeroVar && I.op != Op::InitVar);
        if (writes &&
            !(I.op == Op::StoreAg && I.a == I.c)) // a==c: reg unchanged
            out[I.a] = dest;
        switch (I.op) {
        case Op::Jmp:
            join(static_cast<std::size_t>(I.imm) - ck.begin, out);
            break;
        case Op::BranchFalse:
        case Op::BranchTrue:
            join(k + 1, out);
            join(static_cast<std::size_t>(I.imm) - ck.begin, out);
            break;
        case Op::Ret:
        case Op::RetVoid:
        case Op::End:
            break;
        default:
            join(k + 1, out);
            break;
        }
    }
    return in;
}

// ---------------------------------------------------------------------------
// Chunk lowering
// ---------------------------------------------------------------------------

std::string Gen::chunkSig(int chunk, bool forwardDecl) const
{
    const ChunkPlan& plan = chunks_.at(chunk);
    std::string name = "ecl_c" + std::to_string(chunk);
    std::string sig;
    switch (plan.use) {
    case ChunkUse::Stmt:
        sig = "static void " + name + "(ecl_nat_ctx *c)";
        break;
    case ChunkUse::Scalar:
        sig = "static int64_t " + name + "(ecl_nat_ctx *c)";
        break;
    case ChunkUse::Agg:
        sig = "static void " + name + "(ecl_nat_ctx *c, uint8_t *out)";
        break;
    }
    return forwardDecl ? sig + ";" : sig;
}

std::string Gen::fnSig(int fnIndex, bool forwardDecl) const
{
    const bc::CompiledFunction& f =
        prog_.functions[static_cast<std::size_t>(fnIndex)];
    std::string ret = "static void ";
    if (!f.returnType->isVoid() && f.returnType->isScalar())
        ret = "static int64_t ";
    std::string sig =
        ret + "ecl_f" + std::to_string(fnIndex) + "(ecl_nat_ctx *c";
    if (!f.returnType->isVoid() && !f.returnType->isScalar())
        sig += ", uint8_t *ret";
    for (std::size_t i = 0; i < f.paramCount; ++i) {
        const Type* pt = (*f.vars)[i].type;
        sig += pt->isScalar() ? ", int64_t a" + std::to_string(i)
                              : ", const uint8_t *a" + std::to_string(i);
    }
    if (mayFallOff_.count(fnIndex)) sig += ", const char *ecl_loc";
    sig += ")";
    return forwardDecl ? sig + ";" : sig;
}

std::string Gen::lowerModuleChunk(int chunk)
{
    Frame frame;
    frame.isModule = true;
    frame.vars = &sema_.vars;
    std::ostringstream os;
    os << chunkSig(chunk, false) << "\n{\n"
       << "    (void)c;\n"
       << lowerBody(prog_.chunks[static_cast<std::size_t>(chunk)], frame,
                    -1)
       << "}\n\n";
    return os.str();
}

std::string Gen::lowerFunction(int fnIndex)
{
    const bc::CompiledFunction& f =
        prog_.functions[static_cast<std::size_t>(fnIndex)];
    Frame frame;
    frame.isModule = false;
    frame.vars = f.vars;
    std::size_t cursor = 0;
    for (const VarInfo& v : *f.vars) {
        cursor = (cursor + 7) / 8 * 8;
        frame.offsets.push_back(cursor);
        cursor += v.type->size();
    }
    frame.frameBytes = cursor;

    std::ostringstream os;
    os << "/* C helper '" << f.name << "' */\n"
       << fnSig(fnIndex, false) << "\n{\n"
       << "    (void)c;\n";
    if (mayFallOff_.count(fnIndex)) os << "    (void)ecl_loc;\n";
    if (frame.frameBytes > 0) {
        // Zero-initialized call frame (Evaluator/VM acquireStore
        // semantics); params are truncating scalar writes / aggregate
        // copies into their slots.
        os << "    uint8_t fr[" << frame.frameBytes << "];\n"
           << "    memset(fr, 0, sizeof fr);\n";
        for (std::size_t i = 0; i < f.paramCount; ++i) {
            const Type* pt = (*f.vars)[i].type;
            std::string slot = slotAddr(frame, static_cast<int>(i));
            if (pt->isScalar())
                os << "    "
                   << stStmt(pt, slot, "a" + std::to_string(i)) << "\n";
            else
                os << "    memcpy(" << slot << ", a" << i << ", "
                   << pt->size() << ");\n";
        }
    }
    os << lowerBody(prog_.chunks[static_cast<std::size_t>(f.chunk)], frame,
                    fnIndex)
       << "}\n\n";
    return os.str();
}

std::string Gen::lowerBody(const bc::Chunk& ck, const Frame& frame,
                           int fnIndex)
{
    const bc::CompiledFunction* fn =
        fnIndex >= 0 ? &prog_.functions[static_cast<std::size_t>(fnIndex)]
                     : nullptr;
    std::size_t n = ck.end - ck.begin;
    if (n == 0) unsupported("empty chunk");
    std::vector<char> reachable;
    std::vector<std::vector<Lat>> in = typeFlow(ck, frame, reachable);

    // Jump targets need labels; backward edges get the fuel guard.
    std::vector<char> isTarget(n, 0);
    for (std::size_t k = 0; k < n; ++k) {
        if (!reachable[k]) continue;
        const Instr& I = prog_.code[ck.begin + k];
        if (I.op == Op::Jmp || I.op == Op::BranchFalse ||
            I.op == Op::BranchTrue)
            isTarget[static_cast<std::size_t>(I.imm) - ck.begin] = 1;
    }

    // Declaration scan: which registers need which locals.
    std::vector<char> needScalar(prog_.maxRegs, 0), needPtr(prog_.maxRegs, 0);
    std::vector<std::size_t> bufBytes(prog_.maxRegs, 0);
    auto needAgg = [&](std::uint16_t r, const Type* t) {
        needPtr[r] = 1;
        if (t->size() > bufBytes[r]) bufBytes[r] = t->size();
    };
    for (std::size_t k = 0; k < n; ++k) {
        if (!reachable[k]) continue;
        const Instr& I = prog_.code[ck.begin + k];
        Lat dest = transferDest(I, in[k], frame);
        switch (dest.kind) {
        case Lat::Scalar:
        case Lat::MixedScalar: needScalar[I.a] = 1; break;
        case Lat::Ptr: needPtr[I.a] = 1; break;
        case Lat::Agg: needAgg(I.a, dest.type); break;
        default: break;
        }
    }

    auto R = [](std::uint16_t r) { return "r" + std::to_string(r); };
    auto P = [](std::uint16_t r) { return "p" + std::to_string(r); };
    auto B = [](std::uint16_t r) { return "b" + std::to_string(r); };
    auto L = [&](std::int32_t absPc) {
        return "L" + std::to_string(absPc - static_cast<std::int32_t>(
                                                ck.begin));
    };
    /// The pointer expression for a register read as `.ptr` (Ptr lvalue
    /// or Agg value — both live in pN).
    auto ptrOf = [&](std::size_t k, std::uint16_t r) -> std::string {
        const Lat& l = in[k][r];
        if (l.kind != Lat::Ptr && l.kind != Lat::Agg)
            unsupported("untyped pointer register");
        return P(r);
    };
    auto pointee = [&](std::size_t k, std::uint16_t r) -> const Type* {
        const Lat& l = in[k][r];
        if (l.kind != Lat::Ptr || !l.type)
            unsupported("untyped store/load-through register");
        return l.type;
    };
    auto aggSrc = [&](std::size_t k, std::uint16_t r) -> const Type* {
        const Lat& l = in[k][r];
        if ((l.kind != Lat::Agg && l.kind != Lat::Ptr) || !l.type)
            unsupported("untyped aggregate register");
        return l.type;
    };

    const Type* intT = prog_.intType;
    std::ostringstream body;
    auto fuelGuard = [&](std::int32_t absTarget, std::size_t k,
                         const char* pad) {
        if (static_cast<std::size_t>(absTarget) - ck.begin <= k)
            body << pad
                 << "if (--c->fuel < 0) ecl_fail(c, \"runtime: op budget "
                    "exceeded (runaway data loop?)\");\n";
    };

    for (std::size_t k = 0; k < n; ++k) {
        if (isTarget[k]) body << L(static_cast<std::int32_t>(ck.begin + k))
                              << ": ;\n";
        if (!reachable[k]) continue;
        const Instr& I = prog_.code[ck.begin + k];
        body << "    ";
        switch (I.op) {
        case Op::ConstInt:
            body << R(I.a) << " = " << i64Lit(I.imm64) << ";\n";
            break;
        case Op::LoadVarSc:
            body << R(I.a) << " = " << rdExpr(I.type, slotAddr(frame, I.imm))
                 << ";\n";
            break;
        case Op::LoadVarAg:
            body << "memcpy(" << B(I.a) << ", " << slotAddr(frame, I.imm)
                 << ", " << I.type->size() << "); " << P(I.a) << " = "
                 << B(I.a) << ";\n";
            break;
        case Op::LoadSig: {
            const Type* t = valuedSignal(I.imm).valueType;
            if (t->isScalar())
                body << R(I.a) << " = " << rdExpr(t, sigAddr(I.imm))
                     << ";\n";
            else
                body << "memcpy(" << B(I.a) << ", " << sigAddr(I.imm)
                     << ", " << t->size() << "); " << P(I.a) << " = "
                     << B(I.a) << ";\n";
            break;
        }
        case Op::AddrVar:
            body << P(I.a) << " = " << slotAddr(frame, I.imm) << ";\n";
            break;
        case Op::AddrSig:
            body << P(I.a) << " = " << sigAddr(I.imm) << ";\n";
            break;
        case Op::AddrVarOff:
            body << P(I.a) << " = " << slotAddr(frame, I.imm) << " + "
                 << I.imm64 << ";\n";
            break;
        case Op::AddrSigOff:
            body << P(I.a) << " = " << sigAddr(I.imm) << " + " << I.imm64
                 << ";\n";
            break;
        case Op::AddrField:
            body << P(I.a) << " = " << ptrOf(k, I.b) << " + " << I.imm
                 << ";\n";
            break;
        case Op::AddrIndex: {
            const Lat& base = in[k][I.b];
            if ((base.kind != Lat::Ptr && base.kind != Lat::Agg) ||
                !base.type || base.type->kind() != TypeKind::Array)
                unsupported("indexing a register without static array type");
            const Type* elem = base.type->element();
            needOobHelper_ = true;
            body << "if ((uint64_t)" << R(I.c) << " >= "
                 << base.type->count() << "u) ecl_fail_oob(c, \""
                 << to_string(I.loc) << "\", (long long)" << R(I.c) << ", "
                 << base.type->count() << "u);\n"
                 << "    " << P(I.a) << " = " << ptrOf(k, I.b)
                 << " + (size_t)" << R(I.c) << " * " << elem->size()
                 << ";\n";
            break;
        }
        case Op::AddrIndexVar: {
            const Lat& base = in[k][I.b];
            if ((base.kind != Lat::Ptr && base.kind != Lat::Agg) ||
                !base.type || base.type->kind() != TypeKind::Array)
                unsupported("indexing a register without static array type");
            const Type* elem = base.type->element();
            needOobHelper_ = true;
            body << "{ int64_t ecl_idx = "
                 << rdExpr(I.type, slotAddr(frame, I.imm)) << "; "
                 << "if ((uint64_t)ecl_idx >= " << base.type->count()
                 << "u) ecl_fail_oob(c, \"" << to_string(I.loc)
                 << "\", (long long)ecl_idx, " << base.type->count()
                 << "u); " << P(I.a) << " = " << ptrOf(k, I.b)
                 << " + (size_t)ecl_idx * " << elem->size() << "; }\n";
            break;
        }
        case Op::LoadInd: {
            const Type* t = pointee(k, I.b);
            if (t->isScalar())
                body << R(I.a) << " = " << rdExpr(t, P(I.b)) << ";\n";
            else
                body << "memcpy(" << B(I.a) << ", " << P(I.b) << ", "
                     << t->size() << "); " << P(I.a) << " = " << B(I.a)
                     << ";\n";
            break;
        }
        case Op::Unary:
            switch (static_cast<ast::UnaryOp>(I.imm)) {
            case ast::UnaryOp::Plus:
                body << R(I.a) << " = " << R(I.b) << ";\n";
                break;
            case ast::UnaryOp::Minus:
                body << R(I.a) << " = " << normExpr(intT, "-" + R(I.b))
                     << ";\n";
                break;
            case ast::UnaryOp::Not:
                body << R(I.a) << " = (" << R(I.b) << " == 0);\n";
                break;
            case ast::UnaryOp::BitNot: {
                const Lat& v = in[k][I.b];
                if (v.kind != Lat::Scalar || !v.type)
                    unsupported("~ on a register without static type");
                if (v.type->isBool()) // `if (~crc_ok)` = logical not
                    body << R(I.a) << " = (" << R(I.b) << " == 0);\n";
                else
                    body << R(I.a) << " = "
                         << normExpr(intT, "~" + R(I.b)) << ";\n";
                break;
            }
            default: unsupported("unary operator");
            }
            break;
        case Op::IncDec: {
            const Type* t = pointee(k, I.b);
            auto uop = static_cast<ast::UnaryOp>(I.imm);
            bool inc = uop == ast::UnaryOp::PreInc ||
                       uop == ast::UnaryOp::PostInc;
            bool post = uop == ast::UnaryOp::PostInc ||
                        uop == ast::UnaryOp::PostDec;
            std::string d = inc ? " + 1" : " - 1";
            body << "{ int64_t ecl_old = " << rdExpr(t, P(I.b)) << "; "
                 << stStmt(t, P(I.b), "ecl_old" + d) << " " << R(I.a)
                 << " = "
                 << (post ? "ecl_old" : normExpr(t, "ecl_old" + d))
                 << "; }\n";
            break;
        }
        case Op::IncDecVar: {
            const Type* t = slotType(frame, static_cast<int>(I.imm64));
            std::string slot = slotAddr(frame, static_cast<int>(I.imm64));
            auto uop = static_cast<ast::UnaryOp>(I.imm);
            bool inc = uop == ast::UnaryOp::PreInc ||
                       uop == ast::UnaryOp::PostInc;
            bool post = uop == ast::UnaryOp::PostInc ||
                        uop == ast::UnaryOp::PostDec;
            std::string d = inc ? " + 1" : " - 1";
            body << "{ int64_t ecl_old = " << rdExpr(t, slot) << "; "
                 << stStmt(t, slot, "ecl_old" + d) << " " << R(I.a)
                 << " = "
                 << (post ? "ecl_old" : normExpr(t, "ecl_old" + d))
                 << "; }\n";
            break;
        }
        case Op::Binary:
        case Op::BinaryImm: {
            std::string a = R(I.b);
            std::string b =
                I.op == Op::Binary ? R(I.c) : i64Lit(I.imm64);
            bool bIsZero = I.op == Op::BinaryImm && I.imm64 == 0;
            auto arith = [&](const std::string& e) {
                body << R(I.a) << " = " << normExpr(intT, e) << ";\n";
            };
            auto cmp = [&](const char* op) {
                body << R(I.a) << " = (" << a << " " << op << " " << b
                     << ");\n";
            };
            switch (static_cast<ast::BinaryOp>(I.imm)) {
            case ast::BinaryOp::Add: arith(a + " + " + b); break;
            case ast::BinaryOp::Sub: arith(a + " - " + b); break;
            case ast::BinaryOp::Mul: arith(a + " * " + b); break;
            case ast::BinaryOp::Div:
                if (bIsZero) {
                    body << "ecl_fail(c, \""
                         << locMsg(I.loc, "division by zero") << "\");\n";
                    break;
                }
                if (I.op == Op::Binary)
                    body << "if (" << b << " == 0) ecl_fail(c, \""
                         << locMsg(I.loc, "division by zero")
                         << "\");\n    ";
                arith(a + " / " + b);
                break;
            case ast::BinaryOp::Rem:
                if (bIsZero) {
                    body << "ecl_fail(c, \""
                         << locMsg(I.loc, "remainder by zero") << "\");\n";
                    break;
                }
                if (I.op == Op::Binary)
                    body << "if (" << b << " == 0) ecl_fail(c, \""
                         << locMsg(I.loc, "remainder by zero")
                         << "\");\n    ";
                arith(a + " % " + b);
                break;
            case ast::BinaryOp::Shl:
                arith("(int64_t)((uint64_t)" + a + " << (" + b +
                      " & 63))");
                break;
            case ast::BinaryOp::Shr:
                arith(a + " >> (" + b + " & 63)");
                break;
            case ast::BinaryOp::Lt: cmp("<"); break;
            case ast::BinaryOp::Gt: cmp(">"); break;
            case ast::BinaryOp::Le: cmp("<="); break;
            case ast::BinaryOp::Ge: cmp(">="); break;
            case ast::BinaryOp::Eq: cmp("=="); break;
            case ast::BinaryOp::Ne: cmp("!="); break;
            case ast::BinaryOp::BitAnd: arith(a + " & " + b); break;
            case ast::BinaryOp::BitOr: arith(a + " | " + b); break;
            case ast::BinaryOp::BitXor: arith(a + " ^ " + b); break;
            default: unsupported("binary operator");
            }
            break;
        }
        case Op::Cast: {
            const Lat& src = in[k][I.b];
            if (src.kind == Lat::Scalar || src.kind == Lat::MixedScalar) {
                body << R(I.a) << " = " << normExpr(I.type, R(I.b))
                     << ";\n";
            } else {
                const Type* st = aggSrc(k, I.b);
                body << R(I.a) << " = "
                     << normExpr(I.type, "ecl_ldle(" + P(I.b) + ", " +
                                             std::to_string(st->size()) +
                                             ")")
                     << ";\n";
            }
            break;
        }
        case Op::BoolVal:
            body << R(I.a) << " = (" << R(I.b) << " != 0);\n";
            break;
        case Op::SetBool:
            body << R(I.a) << " = " << I.imm << ";\n";
            break;
        case Op::StoreSc: {
            const Type* t = pointee(k, I.b);
            body << stStmt(t, P(I.b), R(I.c)) << " " << R(I.a) << " = "
                 << normExpr(t, R(I.c)) << ";\n";
            break;
        }
        case Op::StoreVarSc: {
            const Type* t = slotType(frame, I.imm);
            body << stStmt(t, slotAddr(frame, I.imm), R(I.c)) << " "
                 << R(I.a) << " = " << normExpr(t, R(I.c)) << ";\n";
            break;
        }
        case Op::StoreVarImm: {
            const Type* t = slotType(frame, I.imm);
            body << stStmt(t, slotAddr(frame, I.imm), i64Lit(I.imm64))
                 << " " << R(I.a) << " = "
                 << i64Lit(bc::normalizeScalar(t, I.imm64)) << ";\n";
            break;
        }
        case Op::StoreCompound: {
            const Type* t = pointee(k, I.b);
            std::string a0 = "ecl_a";
            std::string b = R(I.c);
            body << "{ int64_t ecl_a = " << rdExpr(t, P(I.b))
                 << "; int64_t ecl_v;\n      ";
            switch (static_cast<ast::AssignOp>(I.imm)) {
            case ast::AssignOp::Add: body << "ecl_v = ecl_a + " << b << ";"; break;
            case ast::AssignOp::Sub: body << "ecl_v = ecl_a - " << b << ";"; break;
            case ast::AssignOp::Mul: body << "ecl_v = ecl_a * " << b << ";"; break;
            case ast::AssignOp::Div:
                body << "if (" << b << " == 0) ecl_fail(c, \""
                     << locMsg(I.loc, "division by zero")
                     << "\"); ecl_v = ecl_a / " << b << ";";
                break;
            case ast::AssignOp::Rem:
                body << "if (" << b << " == 0) ecl_fail(c, \""
                     << locMsg(I.loc, "remainder by zero")
                     << "\"); ecl_v = ecl_a % " << b << ";";
                break;
            case ast::AssignOp::Shl:
                body << "ecl_v = (int64_t)((uint64_t)ecl_a << (" << b
                     << " & 63));";
                break;
            case ast::AssignOp::Shr:
                body << "ecl_v = ecl_a >> (" << b << " & 63);";
                break;
            case ast::AssignOp::And: body << "ecl_v = ecl_a & " << b << ";"; break;
            case ast::AssignOp::Or: body << "ecl_v = ecl_a | " << b << ";"; break;
            case ast::AssignOp::Xor: body << "ecl_v = ecl_a ^ " << b << ";"; break;
            case ast::AssignOp::Plain: body << "ecl_v = ecl_a;"; break;
            default: unsupported("compound assignment operator");
            }
            body << "\n      " << stStmt(t, P(I.b), "ecl_v") << " "
                 << R(I.a) << " = " << normExpr(t, "ecl_v") << "; }\n";
            break;
        }
        case Op::StoreAg: {
            const Type* t = pointee(k, I.b);
            body << "memcpy(" << P(I.b) << ", " << ptrOf(k, I.c) << ", "
                 << t->size() << ");";
            if (I.a != I.c)
                body << " memcpy(" << B(I.a) << ", " << ptrOf(k, I.c)
                     << ", " << t->size() << "); " << P(I.a) << " = "
                     << B(I.a) << ";";
            body << "\n";
            break;
        }
        case Op::ZeroVar: {
            const Type* t = slotType(frame, I.imm);
            body << "memset(" << slotAddr(frame, I.imm) << ", 0, "
                 << t->size() << ");\n";
            break;
        }
        case Op::InitVar: {
            const Type* t = slotType(frame, I.imm);
            if (t->isScalar())
                body << stStmt(t, slotAddr(frame, I.imm), R(I.b)) << "\n";
            else
                body << "memcpy(" << slotAddr(frame, I.imm) << ", "
                     << ptrOf(k, I.b) << ", " << t->size() << ");\n";
            break;
        }
        case Op::Jmp:
            body << "{\n";
            fuelGuard(I.imm, k, "      ");
            body << "      goto " << L(I.imm) << ";\n    }\n";
            break;
        case Op::BranchFalse:
            body << "if (!" << R(I.a) << ") {\n";
            fuelGuard(I.imm, k, "      ");
            body << "      goto " << L(I.imm) << ";\n    }\n";
            break;
        case Op::BranchTrue:
            body << "if (" << R(I.a) << ") {\n";
            fuelGuard(I.imm, k, "      ");
            body << "      goto " << L(I.imm) << ";\n    }\n";
            break;
        case Op::Call: {
            const bc::CompiledFunction& f =
                prog_.functions[static_cast<std::size_t>(I.imm)];
            std::string call = "ecl_f" + std::to_string(I.imm) + "(c";
            if (!f.returnType->isVoid() && !f.returnType->isScalar())
                call += ", " + B(I.a);
            for (std::size_t i = 0; i < f.paramCount; ++i) {
                const Type* pt = (*f.vars)[i].type;
                std::uint16_t arg =
                    static_cast<std::uint16_t>(I.b + i);
                call += ", ";
                call += pt->isScalar() ? R(arg) : ptrOf(k, arg);
            }
            if (mayFallOff_.count(I.imm))
                call += ", \"" + to_string(I.loc) + "\"";
            call += ")";
            body << "if (c->depth > 64) ecl_fail(c, \""
                 << locMsg(I.loc, "call depth limit exceeded")
                 << "\");\n    c->depth++;\n    ";
            if (f.returnType->isVoid())
                body << call << "; " << R(I.a) << " = 0;";
            else if (f.returnType->isScalar())
                body << R(I.a) << " = "
                     << normExpr(f.returnType, call) << ";";
            else
                body << call << "; " << P(I.a) << " = " << B(I.a) << ";";
            body << "\n    c->depth--;\n";
            break;
        }
        case Op::Ret:
            if (!fn) unsupported("return outside a function chunk");
            if (fn->returnType->isVoid()) {
                body << "return;\n";
            } else if (fn->returnType->isScalar()) {
                body << "return " << R(I.a) << ";\n";
            } else {
                body << "memcpy(ret, " << ptrOf(k, I.a) << ", "
                     << fn->returnType->size() << "); return;\n";
            }
            break;
        case Op::RetVoid:
            if (!fn) unsupported("return outside a function chunk");
            if (fn->returnType->isVoid()) {
                body << "return;\n";
            } else if (fn->returnType->isScalar()) {
                body << "return 0;\n"; // VM dummy-zero result.
            } else {
                body << "memset(ret, 0, " << fn->returnType->size()
                     << "); return;\n";
            }
            break;
        case Op::End:
            if (fn) {
                // Falling off the end of a function body. The VM traps
                // at the Call instruction's loc, threaded in as ecl_loc.
                if (fn->returnType->isVoid()) {
                    body << "return;\n";
                } else {
                    needRetHelper_ = true;
                    body << "ecl_fail_ret(c, ecl_loc, \"" << fn->name
                         << "\");\n";
                    if (fn->returnType->isScalar())
                        body << "    return 0;\n";
                    else
                        body << "    return;\n";
                }
            } else {
                const ChunkPlan& plan = chunks_.at(
                    static_cast<int>(&ck - prog_.chunks.data()));
                switch (plan.use) {
                case ChunkUse::Stmt: body << "return;\n"; break;
                case ChunkUse::Scalar:
                    if (I.a == 0xffff)
                        unsupported("statement chunk used as expression");
                    body << "return " << R(I.a) << ";\n";
                    break;
                case ChunkUse::Agg:
                    if (I.a == 0xffff)
                        unsupported("statement chunk used as expression");
                    body << "memcpy(out, " << ptrOf(k, I.a) << ", "
                         << plan.aggType->size() << "); return;\n";
                    break;
                }
            }
            break;
        }
    }

    // Declarations (initialized: joins may reach a use before gcc can
    // prove a dominating write). The (void) reads keep statement chunks
    // — whose final register value is discarded — warning-clean.
    std::ostringstream decls;
    std::ostringstream uses;
    for (std::uint16_t r = 0; r < ck.numRegs; ++r) {
        if (needScalar[r]) {
            decls << "    int64_t r" << r << " = 0;\n";
            uses << "    (void)r" << r << ";\n";
        }
        if (needPtr[r]) {
            decls << "    uint8_t *p" << r << " = 0;\n";
            uses << "    (void)p" << r << ";\n";
        }
        if (bufBytes[r] > 0)
            decls << "    uint8_t b" << r << "[" << bufBytes[r] << "];\n";
    }
    return decls.str() + uses.str() + body.str();
}

// ---------------------------------------------------------------------------
// TU prelude / metadata / react
// ---------------------------------------------------------------------------

void Gen::emitPrelude(std::ostringstream& os) const
{
    os << "/* Generated by the ECL compiler: AOT native reaction backend.\n"
       << " * Module '" << mod_.name() << "' lowered from the optimized\n"
       << " * flat tables + bytecode; instance state lives in the host\n"
       << " * arena at computeInstanceLayout() offsets. Do not edit. */\n"
       << "#include <setjmp.h>\n"
       << "#include <stddef.h>\n"
       << "#include <stdint.h>\n";
    if (needOobHelper_ || needRetHelper_) os << "#include <stdio.h>\n";
    os << "#include <string.h>\n"
       << "\n"
       << "/* ABI mirror of src/runtime/native_abi.h (version "
       << rt::kEclNativeAbiVersion << "). */\n"
       << "typedef struct ecl_nat_ctx {\n"
       << "    uint8_t *data;\n"
       << "    uint8_t *present;\n"
       << "    int32_t *emitted;\n"
       << "    int32_t state;\n"
       << "    int32_t terminated;\n"
       << "    int32_t emitted_count;\n"
       << "    int32_t depth;\n"
       << "    int64_t fuel;\n"
       << "    uint64_t tree_tests;\n"
       << "    uint64_t actions_run;\n"
       << "    uint64_t emits_run;\n"
       << "    const char *error;\n"
       << "    void *jb;\n"
       << "} ecl_nat_ctx;\n"
       << "\n"
       << "typedef struct ecl_nat_info {\n"
       << "    uint32_t abi_version;\n"
       << "    uint32_t data_bytes;\n"
       << "    uint32_t signals;\n"
       << "    uint32_t states;\n"
       << "    int32_t initial_state;\n"
       << "    uint32_t max_emits;\n"
       << "    const char *module_name;\n"
       << "} ecl_nat_info;\n"
       << "\n"
       << "#if defined(__GNUC__)\n"
       << "__attribute__((noreturn))\n"
       << "#endif\n"
       << "static void ecl_fail(ecl_nat_ctx *c, const char *msg)\n"
       << "{\n"
       << "    c->error = msg;\n"
       << "    longjmp(*(jmp_buf *)c->jb, 1);\n"
       << "}\n"
       << "\n";
    // Traps whose message embeds runtime values format into a static
    // buffer (engines are single-threaded, like the VM).
    if (needOobHelper_ || needRetHelper_)
        os << "static char ecl_msgbuf[160];\n\n";
    if (needOobHelper_)
        os << "#if defined(__GNUC__)\n"
           << "__attribute__((noreturn))\n"
           << "#endif\n"
           << "static void ecl_fail_oob(ecl_nat_ctx *c, const char *loc,\n"
           << "                         long long idx, unsigned long n)\n"
           << "{\n"
           << "    snprintf(ecl_msgbuf, sizeof ecl_msgbuf,\n"
           << "             \"%s: runtime: array index %lld out of bounds "
              "[0,%lu)\",\n"
           << "             loc, idx, n);\n"
           << "    ecl_fail(c, ecl_msgbuf);\n"
           << "}\n\n";
    if (needRetHelper_)
        os << "#if defined(__GNUC__)\n"
           << "__attribute__((noreturn))\n"
           << "#endif\n"
           << "static void ecl_fail_ret(ecl_nat_ctx *c, const char *loc,\n"
           << "                         const char *fn)\n"
           << "{\n"
           << "    snprintf(ecl_msgbuf, sizeof ecl_msgbuf,\n"
           << "             \"%s: runtime: function '%s' fell off the end "
              "without return\",\n"
           << "             loc, fn);\n"
           << "    ecl_fail(c, ecl_msgbuf);\n"
           << "}\n\n";
    os
       << "/* Little-endian scalar encoding (value.h readScalar/"
          "writeScalar). */\n"
       << "static inline uint16_t ecl_ld2(const uint8_t *p)\n"
       << "{ return (uint16_t)((uint16_t)p[0] | ((uint16_t)p[1] << 8)); }\n"
       << "static inline uint32_t ecl_ld4(const uint8_t *p)\n"
       << "{ return (uint32_t)p[0] | ((uint32_t)p[1] << 8) |\n"
       << "         ((uint32_t)p[2] << 16) | ((uint32_t)p[3] << 24); }\n"
       << "static inline uint64_t ecl_ld8(const uint8_t *p)\n"
       << "{ return (uint64_t)ecl_ld4(p) | ((uint64_t)ecl_ld4(p + 4) << 32);"
          " }\n"
       << "static inline void ecl_st2(uint8_t *p, uint16_t v)\n"
       << "{ p[0] = (uint8_t)v; p[1] = (uint8_t)(v >> 8); }\n"
       << "static inline void ecl_st4(uint8_t *p, uint32_t v)\n"
       << "{ p[0] = (uint8_t)v; p[1] = (uint8_t)(v >> 8);\n"
       << "  p[2] = (uint8_t)(v >> 16); p[3] = (uint8_t)(v >> 24); }\n"
       << "static inline void ecl_st8(uint8_t *p, uint64_t v)\n"
       << "{ ecl_st4(p, (uint32_t)v); ecl_st4(p + 4, (uint32_t)(v >> 32)); "
          "}\n"
       << "/* readBytesLE: aggregate reinterpretation (paper Figure 2). */\n"
       << "static inline int64_t ecl_ldle(const uint8_t *p, size_t n)\n"
       << "{\n"
       << "    uint64_t r = 0;\n"
       << "    size_t i;\n"
       << "    for (i = 0; i < n && i < 8; i++)\n"
       << "        r |= (uint64_t)p[i] << (8 * i);\n"
       << "    return (int64_t)r;\n"
       << "}\n\n";
}

void Gen::emitInfo(std::ostringstream& os) const
{
    os << "const ecl_nat_info ecl_module_info = {\n"
       << "    " << rt::kEclNativeAbiVersion << "u, /* abi_version */\n"
       << "    " << layout_.dataBytes << "u, /* data_bytes */\n"
       << "    " << sema_.signals.size() << "u, /* signals */\n"
       << "    " << flat_.states.size() << "u, /* states */\n"
       << "    " << flat_.initialState << ", /* initial_state */\n"
       << "    " << maxEmits_ << "u, /* max_emits */\n"
       << "    \"" << mod_.name() << "\"\n"
       << "};\n\n";
}

void Gen::emitActions(std::ostringstream& os,
                      const efsm::FlatNode& node) const
{
    for (std::int32_t i = node.actionsBegin; i < node.actionsEnd; ++i) {
        const efsm::FlatAction& a =
            flat_.actions[static_cast<std::size_t>(i)];
        os << "    c->actions_run++;\n";
        if (a.kind == efsm::FlatAction::Kind::Emit) {
            os << "    c->emits_run++;\n";
            if (a.chunk >= 0) {
                const SignalInfo& s = valuedSignal(a.signal);
                if (s.valueType->isScalar()) {
                    os << "    "
                       << stStmt(s.valueType, sigAddr(a.signal),
                                 "ecl_c" + std::to_string(a.chunk) + "(c)")
                       << "\n";
                } else {
                    os << "    { uint8_t ecl_tmp["
                       << s.valueType->size() << "]; ecl_c" << a.chunk
                       << "(c, ecl_tmp); memcpy(" << sigAddr(a.signal)
                       << ", ecl_tmp, " << s.valueType->size()
                       << "); }\n";
                }
            }
            os << "    c->present[" << a.signal << "] = 1;\n";
            if (a.isOutput)
                os << "    c->emitted[c->emitted_count++] = " << a.signal
                   << ";\n";
        } else if (a.chunk >= 0) {
            os << "    ecl_c" << a.chunk << "(c);\n";
        }
    }
}

void Gen::emitReact(std::ostringstream& os) const
{
    std::size_t nStates = flat_.states.size();
    os << "int ecl_native_react(ecl_nat_ctx *c)\n"
       << "{\n"
       << "    jmp_buf jb;\n"
       << "    c->jb = (void *)&jb;\n"
       << "    if (setjmp(jb)) return 1;\n"
       << "    if ((uint32_t)c->state >= " << nStates
       << "u) ecl_fail(c, \"runtime: invalid control state\");\n";
    // Dense dispatch on the flat state id: computed goto where the
    // compiler has labels-as-values, a switch elsewhere.
    os << "#if defined(__GNUC__) && !defined(ECL_NO_COMPUTED_GOTO)\n"
       << "    {\n"
       << "        static const void *const ecl_roots[" << nStates
       << "] = {\n";
    for (std::size_t s = 0; s < nStates; ++s)
        os << "            &&N" << flat_.states[s].root
           << (s + 1 < nStates ? "," : "") << "\n";
    os << "        };\n"
       << "        goto *ecl_roots[c->state];\n"
       << "    }\n"
       << "#else\n"
       << "    switch (c->state) {\n";
    for (std::size_t s = 0; s < nStates; ++s)
        os << "    case " << s << ": goto N" << flat_.states[s].root
           << ";\n";
    os << "    }\n"
       << "    return 0;\n"
       << "#endif\n";

    for (std::size_t ni = 0; ni < flat_.nodes.size(); ++ni) {
        const efsm::FlatNode& node = flat_.nodes[ni];
        os << "N" << ni << ": ;\n";
        if (!node.isLeaf()) {
            emitActions(os, node);
            os << "    c->tree_tests++;\n";
            if (node.testSignal >= 0)
                os << "    if (c->present[" << node.testSignal
                   << "]) goto N" << node.onTrue << "; else goto N"
                   << node.onFalse << ";\n";
            else
                os << "    if (ecl_c" << node.predChunk
                   << "(c) != 0) goto N" << node.onTrue << "; else goto N"
                   << node.onFalse << ";\n";
            continue;
        }
        if (node.runtimeError())
            os << "    ecl_fail(c, \"instantaneous loop detected at "
               << "runtime (a statically-unverifiable loop path was "
               << "reached)\");\n";
        emitActions(os, node);
        bool dead =
            flat_.states[static_cast<std::size_t>(node.nextState)].dead;
        os << "    c->state = " << node.nextState << ";\n"
           << "    c->terminated = "
           << ((node.terminates() || dead) ? 1 : 0) << ";\n"
           << "    return 0;\n";
    }
    os << "}\n";
}

std::string Gen::run()
{
    planModuleChunks();
    discoverFunctions();

    std::ostringstream chunkDefs;
    for (int fn : functions_) chunkDefs << lowerFunction(fn);
    for (const auto& [chunk, plan] : chunks_)
        chunkDefs << lowerModuleChunk(chunk);

    std::ostringstream os;
    emitPrelude(os);
    emitInfo(os);
    for (int fn : functions_) os << fnSig(fn, true) << "\n";
    for (const auto& [chunk, plan] : chunks_)
        os << chunkSig(chunk, true) << "\n";
    os << "int ecl_native_react(ecl_nat_ctx *c);\n\n";
    os << chunkDefs.str();
    emitReact(os);
    return os.str();
}

} // namespace

std::string generateC(const CompiledModule& module)
{
    if (!module.hasFlatProgram())
        throw EclError("native codegen: module '" + module.name() +
                       "' has no flat program (compiled with "
                       "flatten=false, or flattening was degraded)");
    Gen gen(module);
    return gen.run();
}

} // namespace ecl::codegen
