// Diagnostic collection and the fatal-error exception used by all phases.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "src/support/source_location.h"

namespace ecl {

enum class Severity { Note, Warning, Error };

/// One diagnostic message, tagged with severity and source position.
struct Diagnostic {
    Severity severity = Severity::Error;
    SourceLoc loc;
    std::string message;
};

/// Accumulates diagnostics for a compilation. Phases append; the driver
/// decides when accumulated errors abort the pipeline.
class Diagnostics {
public:
    void error(SourceLoc loc, std::string message);
    void warning(SourceLoc loc, std::string message);
    void note(SourceLoc loc, std::string message);

    [[nodiscard]] bool hasErrors() const { return errorCount_ > 0; }
    [[nodiscard]] int errorCount() const { return errorCount_; }
    [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

    /// All diagnostics, one per line, "<sev> <line:col>: <msg>".
    [[nodiscard]] std::string formatAll() const;

    void clear();

private:
    std::vector<Diagnostic> diags_;
    int errorCount_ = 0;
};

/// Thrown for unrecoverable conditions (parser cannot resync, internal
/// invariant broken, user program rejected). Carries the formatted message.
class EclError : public std::runtime_error {
public:
    explicit EclError(const std::string& what) : std::runtime_error(what) {}
    EclError(SourceLoc loc, const std::string& what)
        : std::runtime_error(to_string(loc) + ": " + what)
    {
    }
};

} // namespace ecl
