// A small dynamic bitset used for EFSM control configurations
// (sets of active pause points). Header-only for inlining in hot loops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ecl {

/// Set of small non-negative integers, packed into 64-bit words.
/// Word count grows on demand; trailing zero words are canonicalized away
/// so that equality and hashing are well-defined across histories.
class PauseSet {
public:
    PauseSet() = default;

    void set(std::size_t bit)
    {
        std::size_t w = bit / 64;
        if (w >= words_.size()) words_.resize(w + 1, 0);
        words_[w] |= std::uint64_t{1} << (bit % 64);
    }

    void clear(std::size_t bit)
    {
        std::size_t w = bit / 64;
        if (w < words_.size()) {
            words_[w] &= ~(std::uint64_t{1} << (bit % 64));
            shrink();
        }
    }

    [[nodiscard]] bool test(std::size_t bit) const
    {
        std::size_t w = bit / 64;
        return w < words_.size() &&
               (words_[w] >> (bit % 64)) & std::uint64_t{1};
    }

    [[nodiscard]] bool empty() const { return words_.empty(); }

    [[nodiscard]] std::size_t count() const
    {
        std::size_t n = 0;
        for (std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
        return n;
    }

    PauseSet& operator|=(const PauseSet& other)
    {
        if (other.words_.size() > words_.size())
            words_.resize(other.words_.size(), 0);
        for (std::size_t i = 0; i < other.words_.size(); ++i)
            words_[i] |= other.words_[i];
        return *this;
    }

    PauseSet& operator&=(const PauseSet& other)
    {
        if (words_.size() > other.words_.size())
            words_.resize(other.words_.size());
        for (std::size_t i = 0; i < words_.size(); ++i)
            words_[i] &= other.words_[i];
        shrink();
        return *this;
    }

    /// Removes all bits present in `other`.
    PauseSet& subtract(const PauseSet& other)
    {
        std::size_t n = std::min(words_.size(), other.words_.size());
        for (std::size_t i = 0; i < n; ++i) words_[i] &= ~other.words_[i];
        shrink();
        return *this;
    }

    [[nodiscard]] bool intersects(const PauseSet& other) const
    {
        std::size_t n = std::min(words_.size(), other.words_.size());
        for (std::size_t i = 0; i < n; ++i)
            if (words_[i] & other.words_[i]) return true;
        return false;
    }

    /// Calls fn(bit) for every set bit, in increasing order.
    template <typename Fn>
    void forEach(Fn&& fn) const
    {
        for (std::size_t i = 0; i < words_.size(); ++i) {
            std::uint64_t w = words_[i];
            while (w) {
                int b = __builtin_ctzll(w);
                fn(i * 64 + static_cast<std::size_t>(b));
                w &= w - 1;
            }
        }
    }

    [[nodiscard]] std::string toString() const
    {
        std::string s = "{";
        bool first = true;
        forEach([&](std::size_t b) {
            if (!first) s += ',';
            s += std::to_string(b);
            first = false;
        });
        s += '}';
        return s;
    }

    friend bool operator==(const PauseSet& a, const PauseSet& b)
    {
        return a.words_ == b.words_;
    }

    [[nodiscard]] std::size_t hash() const
    {
        std::size_t h = 0x9e3779b97f4a7c15ull;
        for (std::uint64_t w : words_)
            h = h * 0x100000001b3ull ^ static_cast<std::size_t>(w);
        return h;
    }

private:
    void shrink()
    {
        while (!words_.empty() && words_.back() == 0) words_.pop_back();
    }

    std::vector<std::uint64_t> words_;
};

struct PauseSetHash {
    std::size_t operator()(const PauseSet& s) const { return s.hash(); }
};

} // namespace ecl
