// String helpers shared by printers and code generators.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ecl {

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Prefixes every non-empty line of `text` with `prefix`.
std::string indent(std::string_view text, std::string_view prefix);

/// True if `s` is a valid C identifier.
bool isIdentifier(std::string_view s);

/// Escapes a string for inclusion in generated C source (quotes added).
std::string cStringLiteral(std::string_view s);

/// Left-pads `s` with spaces to at least `width` columns.
std::string padLeft(std::string_view s, std::size_t width);

/// Right-pads `s` with spaces to at least `width` columns.
std::string padRight(std::string_view s, std::size_t width);

/// FNV-1a 64-bit digest — the stability fingerprint used by the corpus
/// scenarios, the trace replay oracle, and the generator seed-stability
/// tests. The constants are fixed by the format (corpus files pin hex
/// digests), so this must never change.
std::uint64_t fnv1a64(std::string_view data);

/// Lower-case 16-digit hex rendering of a 64-bit digest.
std::string hex64(std::uint64_t v);

} // namespace ecl
