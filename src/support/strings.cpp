#include "src/support/strings.h"

#include <cctype>

namespace ecl {

std::string join(const std::vector<std::string>& parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i) out += sep;
        out += parts[i];
    }
    return out;
}

std::string indent(std::string_view text, std::string_view prefix)
{
    std::string out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        std::string_view line = (end == std::string_view::npos)
                                    ? text.substr(start)
                                    : text.substr(start, end - start);
        if (!line.empty()) out += std::string(prefix);
        out += line;
        if (end == std::string_view::npos) break;
        out += '\n';
        start = end + 1;
    }
    return out;
}

bool isIdentifier(std::string_view s)
{
    if (s.empty()) return false;
    if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_'))
        return false;
    for (char c : s.substr(1))
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_'))
            return false;
    return true;
}

std::string cStringLiteral(std::string_view s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
        }
    }
    out += '"';
    return out;
}

std::string padLeft(std::string_view s, std::size_t width)
{
    std::string out;
    if (s.size() < width) out.assign(width - s.size(), ' ');
    out += s;
    return out;
}

std::string padRight(std::string_view s, std::size_t width)
{
    std::string out(s);
    if (out.size() < width) out.append(width - out.size(), ' ');
    return out;
}

std::uint64_t fnv1a64(std::string_view data)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : data) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string hex64(std::uint64_t v)
{
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

} // namespace ecl
