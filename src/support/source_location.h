// Source locations for diagnostics across the ECL tool chain.
#pragma once

#include <string>

namespace ecl {

/// A position in an ECL source buffer. Lines and columns are 1-based;
/// a default-constructed location (line 0) means "unknown".
struct SourceLoc {
    int line = 0;
    int col = 0;

    [[nodiscard]] bool valid() const { return line > 0; }

    friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Renders "line:col" or "<unknown>".
inline std::string to_string(const SourceLoc& loc)
{
    if (!loc.valid()) return "<unknown>";
    return std::to_string(loc.line) + ":" + std::to_string(loc.col);
}

} // namespace ecl
