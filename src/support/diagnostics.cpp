#include "src/support/diagnostics.h"

namespace ecl {

namespace {

const char* severityName(Severity s)
{
    switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
    }
    return "?";
}

} // namespace

void Diagnostics::error(SourceLoc loc, std::string message)
{
    diags_.push_back({Severity::Error, loc, std::move(message)});
    ++errorCount_;
}

void Diagnostics::warning(SourceLoc loc, std::string message)
{
    diags_.push_back({Severity::Warning, loc, std::move(message)});
}

void Diagnostics::note(SourceLoc loc, std::string message)
{
    diags_.push_back({Severity::Note, loc, std::move(message)});
}

std::string Diagnostics::formatAll() const
{
    std::string out;
    for (const Diagnostic& d : diags_) {
        out += severityName(d.severity);
        out += ' ';
        out += to_string(d.loc);
        out += ": ";
        out += d.message;
        out += '\n';
    }
    return out;
}

void Diagnostics::clear()
{
    diags_.clear();
    errorCount_ = 0;
}

} // namespace ecl
