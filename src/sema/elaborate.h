// Elaboration: synchronous composition by module inlining.
//
// The paper's toplevel (Figure 4) instantiates three modules inside `par`.
// For the synchronous (single-EFSM) implementation, instantiations are
// inlined: the callee body is cloned, formal signals are substituted by the
// actual signal names, and callee-local names (variables and local signals)
// are renamed with a unique per-instance prefix. The result is one flat
// module that sema/IR/EFSM operate on.
//
// The asynchronous implementation (one task per module) does NOT use this
// path: each module is elaborated separately and composed by the RTOS
// network (src/rtos).
#pragma once

#include <memory>
#include <string>

#include "src/frontend/ast.h"
#include "src/sema/sema.h"
#include "src/support/diagnostics.h"

namespace ecl {

/// Returns a flattened clone of module `topName` with every module
/// instantiation recursively inlined. Checks instantiation arity, signal
/// direction and value-type compatibility. Throws EclError on errors
/// (unknown module, recursive instantiation, bad actuals).
std::unique_ptr<ast::ModuleDecl> elaborate(const ast::Program& program,
                                           const ProgramSema& programSema,
                                           const std::string& topName,
                                           Diagnostics& diags);

} // namespace ecl
