#include "src/sema/sema.h"

#include <functional>

namespace ecl {

using namespace ast;

// ---------------------------------------------------------------------------
// Constant expressions
// ---------------------------------------------------------------------------

std::int64_t evalConstExpr(const Expr& e, const ProgramSema& sema,
                           Diagnostics& diags)
{
    auto fail = [&](const std::string& msg) -> std::int64_t {
        diags.error(e.loc, msg);
        throw EclError(e.loc, msg);
    };

    switch (e.kind) {
    case ExprKind::IntLit: return static_cast<const IntLitExpr&>(e).value;
    case ExprKind::BoolLit:
        return static_cast<const BoolLitExpr&>(e).value ? 1 : 0;
    case ExprKind::Ident: {
        const auto& x = static_cast<const IdentExpr&>(e);
        auto it = sema.constants.find(x.name);
        if (it == sema.constants.end())
            return fail("'" + x.name + "' is not a compile-time constant");
        return it->second;
    }
    case ExprKind::Unary: {
        const auto& x = static_cast<const UnaryExpr&>(e);
        std::int64_t v = evalConstExpr(*x.operand, sema, diags);
        switch (x.op) {
        case UnaryOp::Plus: return v;
        case UnaryOp::Minus: return -v;
        case UnaryOp::Not: return v == 0 ? 1 : 0;
        case UnaryOp::BitNot: return ~v;
        default: return fail("operator not allowed in constant expression");
        }
    }
    case ExprKind::Binary: {
        const auto& x = static_cast<const BinaryExpr&>(e);
        std::int64_t a = evalConstExpr(*x.lhs, sema, diags);
        std::int64_t b = evalConstExpr(*x.rhs, sema, diags);
        switch (x.op) {
        case BinaryOp::Add: return a + b;
        case BinaryOp::Sub: return a - b;
        case BinaryOp::Mul: return a * b;
        case BinaryOp::Div:
            if (b == 0) return fail("division by zero in constant expression");
            return a / b;
        case BinaryOp::Rem:
            if (b == 0) return fail("division by zero in constant expression");
            return a % b;
        case BinaryOp::Shl: return a << (b & 63);
        case BinaryOp::Shr: return a >> (b & 63);
        case BinaryOp::Lt: return a < b;
        case BinaryOp::Gt: return a > b;
        case BinaryOp::Le: return a <= b;
        case BinaryOp::Ge: return a >= b;
        case BinaryOp::Eq: return a == b;
        case BinaryOp::Ne: return a != b;
        case BinaryOp::BitAnd: return a & b;
        case BinaryOp::BitOr: return a | b;
        case BinaryOp::BitXor: return a ^ b;
        case BinaryOp::LogAnd: return (a != 0 && b != 0) ? 1 : 0;
        case BinaryOp::LogOr: return (a != 0 || b != 0) ? 1 : 0;
        }
        return fail("bad binary operator in constant expression");
    }
    case ExprKind::Cond: {
        const auto& x = static_cast<const CondExpr&>(e);
        return evalConstExpr(*x.cond, sema, diags)
                   ? evalConstExpr(*x.thenExpr, sema, diags)
                   : evalConstExpr(*x.elseExpr, sema, diags);
    }
    case ExprKind::SizeofType: {
        const auto& x = static_cast<const SizeofTypeExpr&>(e);
        const Type* t = sema.types.lookup(x.typeName);
        if (!t) return fail("unknown type in sizeof: '" + x.typeName + "'");
        return static_cast<std::int64_t>(t->size());
    }
    case ExprKind::Cast: {
        const auto& x = static_cast<const CastExpr&>(e);
        return evalConstExpr(*x.operand, sema, diags);
    }
    default: return fail("not a constant expression");
    }
}

// ---------------------------------------------------------------------------
// Program-level analysis
// ---------------------------------------------------------------------------

namespace {

const Type* resolveFieldType(const TypeSpec& spec,
                             const std::vector<ExprPtr>& dims,
                             ProgramSema& sema, Diagnostics& diags)
{
    const Type* t = sema.types.require(spec.name, spec.loc, diags);
    // Dimensions apply outermost-first: `byte m[2][3]` is 2 rows of 3.
    for (std::size_t i = dims.size(); i-- > 0;) {
        std::int64_t n = evalConstExpr(*dims[i], sema, diags);
        if (n <= 0) {
            diags.error(dims[i]->loc, "array dimension must be positive");
            throw EclError(dims[i]->loc, "array dimension must be positive");
        }
        t = sema.types.arrayOf(t, static_cast<std::size_t>(n));
    }
    return t;
}

const Type* buildAggregate(const AggregateDef& def, const std::string& name,
                           ProgramSema& sema, Diagnostics& diags)
{
    std::vector<std::pair<std::string, const Type*>> fields;
    for (const FieldDecl& f : def.fields) {
        const Type* ft =
            resolveFieldType(f.type, f.decl.arrayDims, sema, diags);
        if (ft->isVoid()) {
            diags.error(f.decl.loc, "field cannot have void type");
            throw EclError(f.decl.loc, "field cannot have void type");
        }
        fields.emplace_back(f.decl.name, ft);
    }
    return sema.types.makeAggregate(def.isUnion, name, std::move(fields),
                                    def.loc);
}

} // namespace

ProgramSema analyzeProgramDecls(const Program& program, Diagnostics& diags)
{
    ProgramSema sema;
    sema.program = &program;

    for (const TopDeclPtr& d : program.decls) {
        switch (d->kind) {
        case DeclKind::Typedef: {
            const auto& x = static_cast<const TypedefDecl&>(*d);
            const Type* base;
            if (x.aggregate) {
                std::string aggName = x.aggregate->tag.empty()
                                          ? x.name
                                          : ((x.aggregate->isUnion
                                                  ? "union "
                                                  : "struct ") +
                                             x.aggregate->tag);
                base = buildAggregate(*x.aggregate, aggName, sema, diags);
                if (!x.aggregate->tag.empty())
                    sema.types.registerName(aggName, base, x.loc);
            } else {
                base = sema.types.require(x.underlying.name, x.loc, diags);
            }
            for (std::size_t i = x.arrayDims.size(); i-- > 0;) {
                std::int64_t n = evalConstExpr(*x.arrayDims[i], sema, diags);
                base = sema.types.arrayOf(base, static_cast<std::size_t>(n));
            }
            sema.types.registerName(x.name, base, x.loc);
            break;
        }
        case DeclKind::Aggregate: {
            const auto& x = static_cast<const AggregateDecl&>(*d);
            std::string name =
                (x.def.isUnion ? "union " : "struct ") + x.def.tag;
            const Type* t = buildAggregate(x.def, name, sema, diags);
            sema.types.registerName(name, t, x.loc);
            break;
        }
        case DeclKind::Function: {
            const auto& x = static_cast<const FunctionDecl&>(*d);
            if (sema.functions.count(x.name)) {
                diags.error(x.loc, "redefinition of function '" + x.name + "'");
                throw EclError(x.loc, "redefinition of function");
            }
            FunctionInfo info;
            info.decl = &x;
            info.returnType =
                sema.types.require(x.returnType.name, x.loc, diags);
            for (const ParamDecl& p : x.params) {
                const Type* pt =
                    resolveFieldType(p.type, p.arrayDims, sema, diags);
                info.params.emplace_back(p.name, pt);
            }
            sema.functions.emplace(x.name, std::move(info));
            break;
        }
        case DeclKind::Module:
            // Modules are analyzed on demand (after elaboration).
            break;
        case DeclKind::GlobalVar: {
            const auto& x = static_cast<const GlobalVarDecl&>(*d);
            if (!x.isConst) {
                diags.error(x.loc,
                            "file-scope variables must be 'const' in ECL "
                            "(Esterel scoping; see paper Section 3)");
                throw EclError(x.loc, "file-scope variables must be 'const' in ECL");
            }
            for (const Declarator& decl : x.decls) {
                if (!decl.arrayDims.empty()) {
                    diags.error(decl.loc,
                                "const arrays at file scope are not "
                                "supported; use #define tables or locals");
                    throw EclError(decl.loc, "const array global");
                }
                if (!decl.init) {
                    diags.error(decl.loc, "const '" + decl.name +
                                              "' needs an initializer");
                    throw EclError(decl.loc, "const without initializer");
                }
                sema.constants[decl.name] =
                    evalConstExpr(*decl.init, sema, diags);
            }
            break;
        }
        }
    }
    if (diags.hasErrors())
        throw EclError("semantic errors:\n" + diags.formatAll());
    return sema;
}

// ---------------------------------------------------------------------------
// Body checking (shared by modules and functions)
// ---------------------------------------------------------------------------

namespace {

class BodyChecker {
public:
    BodyChecker(const ProgramSema& prog, Diagnostics& diags, ModuleSema* mod,
                FunctionSema* fn)
        : prog_(prog), diags_(diags), mod_(mod), fn_(fn)
    {
    }

    void collectModule(const ModuleDecl& m)
    {
        int sigIdx = 0;
        for (const SignalParam& p : m.params) {
            SignalInfo info;
            info.name = p.name;
            info.dir = p.dir == ast::SignalDir::Input
                           ? ecl::SignalDir::Input
                           : ecl::SignalDir::Output;
            info.pure = p.pure;
            if (!p.pure)
                info.valueType = prog_.types.require(p.type.name, p.loc, diags_);
            info.index = sigIdx++;
            addSignal(std::move(info), p.loc);
        }
        collectStmt(*m.body);
    }

    void collectFunction(const FunctionDecl& f, const FunctionInfo& info)
    {
        for (std::size_t i = 0; i < f.params.size(); ++i)
            addVar(f.params[i].name, info.params[i].second, f.params[i].loc);
        collectStmt(*f.body);
    }

    void checkModuleBody(const ModuleDecl& m) { checkStmt(*m.body); }

    void checkFunctionBody(const FunctionDecl& f) { checkStmt(*f.body); }

private:
    // --- symbol collection -------------------------------------------------

    void addSignal(SignalInfo info, SourceLoc loc)
    {
        if (mod_->signalIndex.count(info.name) ||
            mod_->varIndex.count(info.name))
            error(loc, "duplicate name '" + info.name + "' in module");
        info.index = static_cast<int>(mod_->signals.size());
        mod_->signalIndex[info.name] = info.index;
        mod_->signals.push_back(std::move(info));
    }

    void addVar(const std::string& name, const Type* type, SourceLoc loc)
    {
        auto& vars = mod_ ? mod_->vars : fn_->vars;
        auto& index = mod_ ? mod_->varIndex : fn_->varIndex;
        if (index.count(name) || (mod_ && mod_->signalIndex.count(name)))
            error(loc, "duplicate declaration of '" + name +
                           "' (ECL forbids shadowing within a module)");
        if (type->isVoid()) error(loc, "variable cannot have void type");
        VarInfo v;
        v.name = name;
        v.type = type;
        v.index = static_cast<int>(vars.size());
        index[name] = v.index;
        vars.push_back(std::move(v));
    }

    void collectStmt(const Stmt& s)
    {
        switch (s.kind) {
        case StmtKind::Block:
            for (const StmtPtr& st : static_cast<const BlockStmt&>(s).body)
                collectStmt(*st);
            return;
        case StmtKind::Decl: {
            const auto& x = static_cast<const DeclStmt&>(s);
            for (const Declarator& d : x.decls) {
                const Type* t = prog_.types.require(x.type.name, x.loc, diags_);
                for (std::size_t i = d.arrayDims.size(); i-- > 0;) {
                    std::int64_t n =
                        evalConstExpr(*d.arrayDims[i], prog_, diags_);
                    if (n <= 0)
                        error(d.loc, "array dimension must be positive");
                    t = const_cast<TypeTable&>(prog_.types)
                            .arrayOf(t, static_cast<std::size_t>(n));
                }
                addVar(d.name, t, d.loc);
            }
            return;
        }
        case StmtKind::SignalDecl: {
            const auto& x = static_cast<const SignalDeclStmt&>(s);
            if (!mod_) {
                error(s.loc, "signal declarations are only allowed in modules");
                return;
            }
            for (const std::string& n : x.names) {
                SignalInfo info;
                info.name = n;
                info.dir = ecl::SignalDir::Local;
                info.pure = x.pure;
                if (!x.pure)
                    info.valueType =
                        prog_.types.require(x.type.name, x.loc, diags_);
                addSignal(std::move(info), x.loc);
            }
            return;
        }
        case StmtKind::If: {
            const auto& x = static_cast<const IfStmt&>(s);
            collectStmt(*x.thenStmt);
            if (x.elseStmt) collectStmt(*x.elseStmt);
            return;
        }
        case StmtKind::While: collectStmt(*static_cast<const WhileStmt&>(s).body); return;
        case StmtKind::DoWhile: collectStmt(*static_cast<const DoWhileStmt&>(s).body); return;
        case StmtKind::For: {
            const auto& x = static_cast<const ForStmt&>(s);
            if (x.init) collectStmt(*x.init);
            collectStmt(*x.body);
            return;
        }
        case StmtKind::Present: {
            const auto& x = static_cast<const PresentStmt&>(s);
            collectStmt(*x.thenStmt);
            if (x.elseStmt) collectStmt(*x.elseStmt);
            return;
        }
        case StmtKind::Abort: {
            const auto& x = static_cast<const AbortStmt&>(s);
            collectStmt(*x.body);
            if (x.handler) collectStmt(*x.handler);
            return;
        }
        case StmtKind::Suspend: collectStmt(*static_cast<const SuspendStmt&>(s).body); return;
        case StmtKind::Par:
            for (const StmtPtr& b : static_cast<const ParStmt&>(s).branches)
                collectStmt(*b);
            return;
        default: return;
        }
    }

    // --- expression typing --------------------------------------------------

    [[noreturn]] void error(SourceLoc loc, const std::string& msg)
    {
        diags_.error(loc, msg);
        throw EclError(loc, msg);
    }

    void setType(const Expr& e, const Type* t)
    {
        (mod_ ? mod_->exprType : fn_->exprType)[&e] = t;
    }

    void setRef(const Expr& e, RefKind k)
    {
        (mod_ ? mod_->refKind : fn_->refKind)[&e] = k;
    }

    const VarInfo* lookupVar(const std::string& n)
    {
        auto& index = mod_ ? mod_->varIndex : fn_->varIndex;
        auto& vars = mod_ ? mod_->vars : fn_->vars;
        auto it = index.find(n);
        return it == index.end() ? nullptr : &vars[static_cast<std::size_t>(it->second)];
    }

    bool isLvalue(const Expr& e)
    {
        switch (e.kind) {
        case ExprKind::Ident: {
            auto& refs = mod_ ? mod_->refKind : fn_->refKind;
            auto it = refs.find(&e);
            return it != refs.end() && it->second == RefKind::Var;
        }
        case ExprKind::Index:
            return isLvalue(*static_cast<const IndexExpr&>(e).base);
        case ExprKind::Member:
            return isLvalue(*static_cast<const MemberExpr&>(e).base);
        default: return false;
        }
    }

    void checkAssignable(const Type* dst, const Type* src, SourceLoc loc)
    {
        if (dst->isScalar() && src->isScalar()) return;
        if (dst == src && dst->isAggregate()) return;
        if (dst->kind() == TypeKind::Array)
            error(loc, "array assignment is not supported; wrap the array "
                       "in a struct");
        error(loc, "incompatible types in assignment ('" + dst->name() +
                       "' from '" + src->name() + "')");
    }

    const Type* typeExpr(const Expr& e)
    {
        const Type* t = typeExprImpl(e);
        setType(e, t);
        return t;
    }

    const Type* typeExprImpl(const Expr& e)
    {
        switch (e.kind) {
        case ExprKind::IntLit: return prog_.types.intType();
        case ExprKind::BoolLit: return prog_.types.boolType();
        case ExprKind::Ident: {
            const auto& x = static_cast<const IdentExpr&>(e);
            if (const VarInfo* v = lookupVar(x.name)) {
                setRef(e, RefKind::Var);
                return v->type;
            }
            if (mod_) {
                if (const SignalInfo* s = mod_->findSignal(x.name)) {
                    if (s->pure)
                        error(e.loc, "pure signal '" + x.name +
                                         "' has no value; test it with "
                                         "present() instead");
                    setRef(e, RefKind::SignalValue);
                    return s->valueType;
                }
            }
            if (prog_.constants.count(x.name)) {
                setRef(e, RefKind::Constant);
                return prog_.types.intType();
            }
            error(e.loc, "unknown identifier '" + x.name + "'");
        }
        case ExprKind::Unary: {
            const auto& x = static_cast<const UnaryExpr&>(e);
            const Type* t = typeExpr(*x.operand);
            switch (x.op) {
            case UnaryOp::Plus:
            case UnaryOp::Minus:
                if (!t->isScalar())
                    error(e.loc, "unary +/- requires a scalar operand");
                return prog_.types.intType();
            case UnaryOp::Not:
                if (!t->isScalar())
                    error(e.loc, "'!' requires a scalar operand");
                return prog_.types.boolType();
            case UnaryOp::BitNot:
                if (!t->isScalar())
                    error(e.loc, "'~' requires a scalar operand");
                // The paper writes `if (~crc_ok)` on a bool: '~' on bool is
                // logical negation in ECL.
                return t->isBool() ? prog_.types.boolType()
                                   : prog_.types.intType();
            case UnaryOp::PreInc:
            case UnaryOp::PreDec:
            case UnaryOp::PostInc:
            case UnaryOp::PostDec:
                if (!isLvalue(*x.operand) || !t->isScalar())
                    error(e.loc, "++/-- requires a scalar variable");
                return t;
            }
            error(e.loc, "bad unary operator");
        }
        case ExprKind::Binary: {
            const auto& x = static_cast<const BinaryExpr&>(e);
            const Type* a = typeExpr(*x.lhs);
            const Type* b = typeExpr(*x.rhs);
            if (!a->isScalar() || !b->isScalar())
                error(e.loc, "binary operator requires scalar operands");
            switch (x.op) {
            case BinaryOp::Lt:
            case BinaryOp::Gt:
            case BinaryOp::Le:
            case BinaryOp::Ge:
            case BinaryOp::Eq:
            case BinaryOp::Ne:
            case BinaryOp::LogAnd:
            case BinaryOp::LogOr: return prog_.types.boolType();
            default: return prog_.types.intType();
            }
        }
        case ExprKind::Assign: {
            const auto& x = static_cast<const AssignExpr&>(e);
            const Type* dst = typeExpr(*x.lhs);
            const Type* src = typeExpr(*x.rhs);
            if (!isLvalue(*x.lhs))
                error(e.loc, "left side of assignment is not assignable "
                             "(signals are written with emit_v)");
            if (x.op != AssignOp::Plain &&
                (!dst->isScalar() || !src->isScalar()))
                error(e.loc, "compound assignment requires scalars");
            checkAssignable(dst, src, e.loc);
            return dst;
        }
        case ExprKind::Cond: {
            const auto& x = static_cast<const CondExpr&>(e);
            const Type* c = typeExpr(*x.cond);
            if (!c->isScalar()) error(e.loc, "condition must be scalar");
            const Type* a = typeExpr(*x.thenExpr);
            const Type* b = typeExpr(*x.elseExpr);
            if (a->isScalar() && b->isScalar()) return a;
            if (a == b) return a;
            error(e.loc, "incompatible branches in conditional expression");
        }
        case ExprKind::Index: {
            const auto& x = static_cast<const IndexExpr&>(e);
            const Type* base = typeExpr(*x.base);
            const Type* idx = typeExpr(*x.index);
            if (base->kind() != TypeKind::Array)
                error(e.loc, "indexing a non-array of type '" + base->name() +
                                 "'");
            if (!idx->isScalar()) error(e.loc, "array index must be scalar");
            return base->element();
        }
        case ExprKind::Member: {
            const auto& x = static_cast<const MemberExpr&>(e);
            const Type* base = typeExpr(*x.base);
            if (!base->isAggregate())
                error(e.loc, "member access on non-struct type '" +
                                 base->name() + "'");
            const Type::Field* f = base->findField(x.field);
            if (!f)
                error(e.loc, "no field '" + x.field + "' in '" +
                                 base->name() + "'");
            return f->type;
        }
        case ExprKind::Call: {
            const auto& x = static_cast<const CallExpr&>(e);
            if (x.callee == "__sizeof_expr") {
                typeExpr(*x.args[0]);
                setRef(e, RefKind::SizeofBuiltin);
                return prog_.types.intType();
            }
            if (const FunctionInfo* f = prog_.findFunction(x.callee)) {
                if (x.args.size() != f->params.size())
                    error(e.loc, "call to '" + x.callee + "' expects " +
                                     std::to_string(f->params.size()) +
                                     " arguments, got " +
                                     std::to_string(x.args.size()));
                for (std::size_t i = 0; i < x.args.size(); ++i) {
                    const Type* at = typeExpr(*x.args[i]);
                    const Type* pt = f->params[i].second;
                    if (at->isScalar() && pt->isScalar()) continue;
                    if (at == pt) continue;
                    error(x.args[i]->loc,
                          "argument " + std::to_string(i + 1) + " of '" +
                              x.callee + "' has incompatible type");
                }
                setRef(e, RefKind::FunctionCall);
                return f->returnType;
            }
            if (mod_ && prog_.program &&
                prog_.program->findModule(x.callee)) {
                // Module instantiations should have been inlined by the
                // elaborator before sema runs on a flat module.
                error(e.loc, "module instantiation '" + x.callee +
                                 "' survived elaboration (internal error or "
                                 "instantiation in expression position)");
            }
            error(e.loc, "call to unknown function '" + x.callee + "'");
        }
        case ExprKind::Cast: {
            const auto& x = static_cast<const CastExpr&>(e);
            const Type* dst = prog_.types.require(x.typeName, e.loc, diags_);
            const Type* src = typeExpr(*x.operand);
            if (dst->isScalar() && src->isScalar()) return dst;
            if (dst->isScalar() && src->kind() == TypeKind::Array &&
                src->size() <= 8 && src->element()->isScalar())
                return dst; // reinterpret little-endian (paper Figure 2)
            error(e.loc, "unsupported cast from '" + src->name() + "' to '" +
                             dst->name() + "'");
        }
        case ExprKind::SizeofType: {
            const auto& x = static_cast<const SizeofTypeExpr&>(e);
            prog_.types.require(x.typeName, e.loc, diags_);
            return prog_.types.intType();
        }
        }
        error(e.loc, "unknown expression kind");
    }

    // --- signal expressions --------------------------------------------------

    void checkSigExpr(const SigExpr& se)
    {
        if (!mod_) {
            error(se.loc, "signal expressions are only allowed in modules");
            return;
        }
        switch (se.kind) {
        case SigExprKind::Ref:
            if (!mod_->findSignal(se.name))
                error(se.loc, "unknown signal '" + se.name +
                                  "' in signal expression");
            return;
        case SigExprKind::Not: checkSigExpr(*se.lhs); return;
        case SigExprKind::And:
        case SigExprKind::Or:
            checkSigExpr(*se.lhs);
            checkSigExpr(*se.rhs);
            return;
        }
    }

    // --- statements ------------------------------------------------------------

    void requireModule(const Stmt& s, const char* what)
    {
        if (!mod_)
            error(s.loc, std::string(what) +
                             " is a reactive statement; it is not allowed "
                             "in C functions");
    }

    void checkStmt(const Stmt& s)
    {
        switch (s.kind) {
        case StmtKind::Block:
            for (const StmtPtr& st : static_cast<const BlockStmt&>(s).body)
                checkStmt(*st);
            return;
        case StmtKind::Decl: {
            const auto& x = static_cast<const DeclStmt&>(s);
            for (const Declarator& d : x.decls) {
                if (d.init) {
                    const Type* src = typeExpr(*d.init);
                    const VarInfo* v = lookupVar(d.name);
                    checkAssignable(v->type, src, d.loc);
                }
            }
            return;
        }
        case StmtKind::ExprStmt:
            typeExpr(*static_cast<const ExprStmt&>(s).expr);
            return;
        case StmtKind::If: {
            const auto& x = static_cast<const IfStmt&>(s);
            const Type* c = typeExpr(*x.cond);
            if (!c->isScalar()) error(s.loc, "if condition must be scalar");
            checkStmt(*x.thenStmt);
            if (x.elseStmt) checkStmt(*x.elseStmt);
            return;
        }
        case StmtKind::While: {
            const auto& x = static_cast<const WhileStmt&>(s);
            if (!typeExpr(*x.cond)->isScalar())
                error(s.loc, "while condition must be scalar");
            ++loopDepth_;
            checkStmt(*x.body);
            --loopDepth_;
            return;
        }
        case StmtKind::DoWhile: {
            const auto& x = static_cast<const DoWhileStmt&>(s);
            ++loopDepth_;
            checkStmt(*x.body);
            --loopDepth_;
            if (!typeExpr(*x.cond)->isScalar())
                error(s.loc, "do-while condition must be scalar");
            return;
        }
        case StmtKind::For: {
            const auto& x = static_cast<const ForStmt&>(s);
            if (x.init) checkStmt(*x.init);
            if (x.cond && !typeExpr(*x.cond)->isScalar())
                error(s.loc, "for condition must be scalar");
            if (x.step) typeExpr(*x.step);
            ++loopDepth_;
            checkStmt(*x.body);
            --loopDepth_;
            return;
        }
        case StmtKind::Break:
            if (loopDepth_ == 0)
                error(s.loc, "'break' outside of a loop (note: break cannot "
                             "cross a par boundary)");
            return;
        case StmtKind::Continue:
            if (loopDepth_ == 0)
                error(s.loc, "'continue' outside of a loop (note: continue "
                             "cannot cross a par boundary)");
            return;
        case StmtKind::Return: {
            const auto& x = static_cast<const ReturnStmt&>(s);
            if (mod_) error(s.loc, "'return' is not allowed in a module body");
            const Type* want = prog_.findFunction(fn_->decl->name)->returnType;
            if (x.value) {
                const Type* got = typeExpr(*x.value);
                checkAssignable(want, got, s.loc);
            } else if (!want->isVoid()) {
                error(s.loc, "non-void function must return a value");
            }
            return;
        }
        case StmtKind::Empty: return;
        case StmtKind::Await: {
            requireModule(s, "'await'");
            const auto& x = static_cast<const AwaitStmt&>(s);
            if (x.cond) checkSigExpr(*x.cond);
            return;
        }
        case StmtKind::Emit: {
            requireModule(s, "'emit'");
            const auto& x = static_cast<const EmitStmt&>(s);
            const SignalInfo* sig = mod_->findSignal(x.signal);
            if (!sig) error(s.loc, "emit of unknown signal '" + x.signal + "'");
            if (sig->dir == ecl::SignalDir::Input)
                error(s.loc, "cannot emit input signal '" + x.signal + "'");
            if (x.value) {
                if (sig->pure)
                    error(s.loc, "emit_v on pure signal '" + x.signal + "'");
                const Type* vt = typeExpr(*x.value);
                checkAssignable(sig->valueType, vt, s.loc);
            } else if (!sig->pure) {
                error(s.loc, "valued signal '" + x.signal +
                                 "' must be emitted with emit_v(sig, value)");
            }
            return;
        }
        case StmtKind::Halt: requireModule(s, "'halt'"); return;
        case StmtKind::Present: {
            requireModule(s, "'present'");
            const auto& x = static_cast<const PresentStmt&>(s);
            checkSigExpr(*x.cond);
            checkStmt(*x.thenStmt);
            if (x.elseStmt) checkStmt(*x.elseStmt);
            return;
        }
        case StmtKind::Abort: {
            requireModule(s, "'abort'");
            const auto& x = static_cast<const AbortStmt&>(s);
            checkSigExpr(*x.cond);
            checkStmt(*x.body);
            if (x.handler) checkStmt(*x.handler);
            return;
        }
        case StmtKind::Suspend: {
            requireModule(s, "'suspend'");
            const auto& x = static_cast<const SuspendStmt&>(s);
            checkSigExpr(*x.cond);
            checkStmt(*x.body);
            return;
        }
        case StmtKind::Par: {
            requireModule(s, "'par'");
            const auto& x = static_cast<const ParStmt&>(s);
            int save = loopDepth_;
            loopDepth_ = 0;
            for (const StmtPtr& b : x.branches) checkStmt(*b);
            loopDepth_ = save;
            return;
        }
        case StmtKind::SignalDecl: return; // collected earlier
        }
        error(s.loc, "unknown statement kind");
    }

    const ProgramSema& prog_;
    Diagnostics& diags_;
    ModuleSema* mod_;
    FunctionSema* fn_;
    int loopDepth_ = 0;
};

} // namespace

ModuleSema analyzeModule(const ModuleDecl& module,
                         const ProgramSema& programSema, Diagnostics& diags)
{
    ModuleSema sema;
    sema.name = module.name;
    sema.decl = &module;
    BodyChecker checker(programSema, diags, &sema, nullptr);
    checker.collectModule(module);
    checker.checkModuleBody(module);
    if (diags.hasErrors())
        throw EclError("semantic errors in module '" + module.name + "':\n" +
                       diags.formatAll());
    return sema;
}

FunctionSema analyzeFunction(const FunctionDecl& fn,
                             const ProgramSema& programSema,
                             Diagnostics& diags)
{
    FunctionSema sema;
    sema.decl = &fn;
    const FunctionInfo* info = programSema.findFunction(fn.name);
    if (!info) throw EclError(fn.loc, "function not registered: " + fn.name);
    BodyChecker checker(programSema, diags, nullptr, &sema);
    checker.collectFunction(fn, *info);
    checker.checkFunctionBody(fn);
    if (diags.hasErrors())
        throw EclError("semantic errors in function '" + fn.name + "':\n" +
                       diags.formatAll());
    return sema;
}

} // namespace ecl
