#include "src/sema/elaborate.h"

#include <algorithm>
#include <unordered_map>

namespace ecl {

using namespace ast;

namespace {

/// A signal visible in some module scope, as needed for instantiation
/// checking (pre-sema, so types are still spellings).
struct ScopeSignal {
    bool pure = false;
    std::string typeName;  ///< Empty when pure.
    bool isInput = false;  ///< True only for the enclosing module's inputs.
};

using SignalScope = std::unordered_map<std::string, ScopeSignal>;
using RenameMap = std::unordered_map<std::string, std::string>;

void collectScopeSignalsFromStmt(const Stmt& s, SignalScope& scope)
{
    switch (s.kind) {
    case StmtKind::Block:
        for (const StmtPtr& st : static_cast<const BlockStmt&>(s).body)
            collectScopeSignalsFromStmt(*st, scope);
        return;
    case StmtKind::SignalDecl: {
        const auto& x = static_cast<const SignalDeclStmt&>(s);
        for (const std::string& n : x.names)
            scope[n] = {x.pure, x.pure ? "" : x.type.name, false};
        return;
    }
    case StmtKind::If: {
        const auto& x = static_cast<const IfStmt&>(s);
        collectScopeSignalsFromStmt(*x.thenStmt, scope);
        if (x.elseStmt) collectScopeSignalsFromStmt(*x.elseStmt, scope);
        return;
    }
    case StmtKind::While:
        collectScopeSignalsFromStmt(*static_cast<const WhileStmt&>(s).body,
                                    scope);
        return;
    case StmtKind::DoWhile:
        collectScopeSignalsFromStmt(*static_cast<const DoWhileStmt&>(s).body,
                                    scope);
        return;
    case StmtKind::For:
        collectScopeSignalsFromStmt(*static_cast<const ForStmt&>(s).body,
                                    scope);
        return;
    case StmtKind::Present: {
        const auto& x = static_cast<const PresentStmt&>(s);
        collectScopeSignalsFromStmt(*x.thenStmt, scope);
        if (x.elseStmt) collectScopeSignalsFromStmt(*x.elseStmt, scope);
        return;
    }
    case StmtKind::Abort: {
        const auto& x = static_cast<const AbortStmt&>(s);
        collectScopeSignalsFromStmt(*x.body, scope);
        if (x.handler) collectScopeSignalsFromStmt(*x.handler, scope);
        return;
    }
    case StmtKind::Suspend:
        collectScopeSignalsFromStmt(*static_cast<const SuspendStmt&>(s).body,
                                    scope);
        return;
    case StmtKind::Par:
        for (const StmtPtr& b : static_cast<const ParStmt&>(s).branches)
            collectScopeSignalsFromStmt(*b, scope);
        return;
    default: return;
    }
}

SignalScope collectScopeSignals(const ModuleDecl& m)
{
    SignalScope scope;
    for (const SignalParam& p : m.params)
        scope[p.name] = {p.pure, p.pure ? "" : p.type.name,
                         p.dir == ast::SignalDir::Input};
    collectScopeSignalsFromStmt(*m.body, scope);
    return scope;
}

class Elaborator {
public:
    Elaborator(const Program& prog, const ProgramSema& sema,
               Diagnostics& diags)
        : prog_(prog), sema_(sema), diags_(diags)
    {
    }

    std::unique_ptr<ModuleDecl> run(const std::string& topName)
    {
        const ModuleDecl* top = prog_.findModule(topName);
        if (!top) {
            diags_.error({}, "no module named '" + topName + "'");
            throw EclError("no module named '" + topName + "'");
        }
        auto flat = std::make_unique<ModuleDecl>(top->loc);
        flat->name = top->name;
        for (const SignalParam& p : top->params) flat->params.push_back(p);
        stack_.push_back(topName);
        SignalScope scope = collectScopeSignals(*top);
        StmtPtr body = transform(cloneStmt(*top->body), scope);
        stack_.pop_back();
        // transform() preserves the Block at the root.
        flat->body.reset(static_cast<BlockStmt*>(body.release()));
        return flat;
    }

private:
    [[noreturn]] void fail(SourceLoc loc, const std::string& msg)
    {
        diags_.error(loc, msg);
        throw EclError(loc, msg);
    }

    /// Rewrites identifiers/signal names per `map`, recursively.
    void renameExpr(Expr& e, const RenameMap& map)
    {
        switch (e.kind) {
        case ExprKind::Ident: {
            auto& x = static_cast<IdentExpr&>(e);
            auto it = map.find(x.name);
            if (it != map.end()) x.name = it->second;
            return;
        }
        case ExprKind::Unary:
            renameExpr(*static_cast<UnaryExpr&>(e).operand, map);
            return;
        case ExprKind::Binary: {
            auto& x = static_cast<BinaryExpr&>(e);
            renameExpr(*x.lhs, map);
            renameExpr(*x.rhs, map);
            return;
        }
        case ExprKind::Assign: {
            auto& x = static_cast<AssignExpr&>(e);
            renameExpr(*x.lhs, map);
            renameExpr(*x.rhs, map);
            return;
        }
        case ExprKind::Cond: {
            auto& x = static_cast<CondExpr&>(e);
            renameExpr(*x.cond, map);
            renameExpr(*x.thenExpr, map);
            renameExpr(*x.elseExpr, map);
            return;
        }
        case ExprKind::Index: {
            auto& x = static_cast<IndexExpr&>(e);
            renameExpr(*x.base, map);
            renameExpr(*x.index, map);
            return;
        }
        case ExprKind::Member:
            renameExpr(*static_cast<MemberExpr&>(e).base, map);
            return;
        case ExprKind::Call: {
            auto& x = static_cast<CallExpr&>(e);
            for (ExprPtr& a : x.args) renameExpr(*a, map);
            return;
        }
        case ExprKind::Cast:
            renameExpr(*static_cast<CastExpr&>(e).operand, map);
            return;
        default: return;
        }
    }

    void renameSigExpr(SigExpr& se, const RenameMap& map)
    {
        switch (se.kind) {
        case SigExprKind::Ref: {
            auto it = map.find(se.name);
            if (it != map.end()) se.name = it->second;
            return;
        }
        case SigExprKind::Not: renameSigExpr(*se.lhs, map); return;
        case SigExprKind::And:
        case SigExprKind::Or:
            renameSigExpr(*se.lhs, map);
            renameSigExpr(*se.rhs, map);
            return;
        }
    }

    void renameStmt(Stmt& s, const RenameMap& map)
    {
        switch (s.kind) {
        case StmtKind::Block:
            for (StmtPtr& st : static_cast<BlockStmt&>(s).body)
                renameStmt(*st, map);
            return;
        case StmtKind::Decl: {
            auto& x = static_cast<DeclStmt&>(s);
            for (Declarator& d : x.decls) {
                auto it = map.find(d.name);
                if (it != map.end()) d.name = it->second;
                for (ExprPtr& dim : d.arrayDims) renameExpr(*dim, map);
                if (d.init) renameExpr(*d.init, map);
            }
            return;
        }
        case StmtKind::ExprStmt:
            renameExpr(*static_cast<ExprStmt&>(s).expr, map);
            return;
        case StmtKind::If: {
            auto& x = static_cast<IfStmt&>(s);
            renameExpr(*x.cond, map);
            renameStmt(*x.thenStmt, map);
            if (x.elseStmt) renameStmt(*x.elseStmt, map);
            return;
        }
        case StmtKind::While: {
            auto& x = static_cast<WhileStmt&>(s);
            renameExpr(*x.cond, map);
            renameStmt(*x.body, map);
            return;
        }
        case StmtKind::DoWhile: {
            auto& x = static_cast<DoWhileStmt&>(s);
            renameStmt(*x.body, map);
            renameExpr(*x.cond, map);
            return;
        }
        case StmtKind::For: {
            auto& x = static_cast<ForStmt&>(s);
            if (x.init) renameStmt(*x.init, map);
            if (x.cond) renameExpr(*x.cond, map);
            if (x.step) renameExpr(*x.step, map);
            renameStmt(*x.body, map);
            return;
        }
        case StmtKind::Return: {
            auto& x = static_cast<ReturnStmt&>(s);
            if (x.value) renameExpr(*x.value, map);
            return;
        }
        case StmtKind::Await: {
            auto& x = static_cast<AwaitStmt&>(s);
            if (x.cond) renameSigExpr(*x.cond, map);
            return;
        }
        case StmtKind::Emit: {
            auto& x = static_cast<EmitStmt&>(s);
            auto it = map.find(x.signal);
            if (it != map.end()) x.signal = it->second;
            if (x.value) renameExpr(*x.value, map);
            return;
        }
        case StmtKind::Present: {
            auto& x = static_cast<PresentStmt&>(s);
            renameSigExpr(*x.cond, map);
            renameStmt(*x.thenStmt, map);
            if (x.elseStmt) renameStmt(*x.elseStmt, map);
            return;
        }
        case StmtKind::Abort: {
            auto& x = static_cast<AbortStmt&>(s);
            renameStmt(*x.body, map);
            renameSigExpr(*x.cond, map);
            if (x.handler) renameStmt(*x.handler, map);
            return;
        }
        case StmtKind::Suspend: {
            auto& x = static_cast<SuspendStmt&>(s);
            renameStmt(*x.body, map);
            renameSigExpr(*x.cond, map);
            return;
        }
        case StmtKind::Par:
            for (StmtPtr& b : static_cast<ParStmt&>(s).branches)
                renameStmt(*b, map);
            return;
        case StmtKind::SignalDecl: {
            auto& x = static_cast<SignalDeclStmt&>(s);
            for (std::string& n : x.names) {
                auto it = map.find(n);
                if (it != map.end()) n = it->second;
            }
            return;
        }
        default: return;
        }
    }

    /// Recursively replaces module instantiations within `s`.
    /// `scope` lists the signals visible at this point (for checking).
    StmtPtr transform(StmtPtr s, const SignalScope& scope)
    {
        switch (s->kind) {
        case StmtKind::Block: {
            auto& x = static_cast<BlockStmt&>(*s);
            for (StmtPtr& st : x.body) st = transform(std::move(st), scope);
            return s;
        }
        case StmtKind::ExprStmt: {
            auto& x = static_cast<ExprStmt&>(*s);
            if (x.expr->kind == ExprKind::Call) {
                const auto& call = static_cast<const CallExpr&>(*x.expr);
                if (prog_.findModule(call.callee))
                    return inlineInstance(call, scope);
            }
            return s;
        }
        case StmtKind::If: {
            auto& x = static_cast<IfStmt&>(*s);
            x.thenStmt = transform(std::move(x.thenStmt), scope);
            if (x.elseStmt) x.elseStmt = transform(std::move(x.elseStmt), scope);
            return s;
        }
        case StmtKind::While: {
            auto& x = static_cast<WhileStmt&>(*s);
            x.body = transform(std::move(x.body), scope);
            return s;
        }
        case StmtKind::DoWhile: {
            auto& x = static_cast<DoWhileStmt&>(*s);
            x.body = transform(std::move(x.body), scope);
            return s;
        }
        case StmtKind::For: {
            auto& x = static_cast<ForStmt&>(*s);
            x.body = transform(std::move(x.body), scope);
            return s;
        }
        case StmtKind::Present: {
            auto& x = static_cast<PresentStmt&>(*s);
            x.thenStmt = transform(std::move(x.thenStmt), scope);
            if (x.elseStmt) x.elseStmt = transform(std::move(x.elseStmt), scope);
            return s;
        }
        case StmtKind::Abort: {
            auto& x = static_cast<AbortStmt&>(*s);
            x.body = transform(std::move(x.body), scope);
            if (x.handler) x.handler = transform(std::move(x.handler), scope);
            return s;
        }
        case StmtKind::Suspend: {
            auto& x = static_cast<SuspendStmt&>(*s);
            x.body = transform(std::move(x.body), scope);
            return s;
        }
        case StmtKind::Par: {
            auto& x = static_cast<ParStmt&>(*s);
            for (StmtPtr& b : x.branches) b = transform(std::move(b), scope);
            return s;
        }
        default: return s;
        }
    }

    StmtPtr inlineInstance(const CallExpr& call, const SignalScope& scope)
    {
        const ModuleDecl* callee = prog_.findModule(call.callee);
        if (std::find(stack_.begin(), stack_.end(), call.callee) !=
            stack_.end())
            fail(call.loc, "recursive instantiation of module '" +
                               call.callee + "'");

        if (call.args.size() != callee->params.size())
            fail(call.loc, "module '" + call.callee + "' expects " +
                               std::to_string(callee->params.size()) +
                               " signals, got " +
                               std::to_string(call.args.size()));

        RenameMap map;
        for (std::size_t i = 0; i < call.args.size(); ++i) {
            const SignalParam& formal = callee->params[i];
            const Expr& actual = *call.args[i];
            if (actual.kind != ExprKind::Ident)
                fail(actual.loc, "module actuals must be signal names");
            const std::string& actualName =
                static_cast<const IdentExpr&>(actual).name;
            auto it = scope.find(actualName);
            if (it == scope.end())
                fail(actual.loc, "'" + actualName +
                                     "' is not a signal in this scope");
            const ScopeSignal& sig = it->second;
            if (formal.dir == ast::SignalDir::Output && sig.isInput)
                fail(actual.loc, "module output '" + formal.name +
                                     "' cannot drive enclosing input '" +
                                     actualName + "'");
            if (formal.pure != sig.pure)
                fail(actual.loc,
                     "pure/valued mismatch binding '" + actualName +
                         "' to '" + formal.name + "'");
            if (!formal.pure) {
                const Type* ft =
                    sema_.types.lookup(formal.type.name);
                const Type* at = sema_.types.lookup(sig.typeName);
                if (!ft || !at || ft != at)
                    fail(actual.loc,
                         "signal type mismatch binding '" + actualName +
                             "' (" + sig.typeName + ") to '" + formal.name +
                             "' (" + formal.type.name + ")");
            }
            map[formal.name] = actualName;
        }

        // Rename callee-local names with a unique instance prefix.
        std::string prefix =
            call.callee + "_" + std::to_string(++instanceCounter_) + "__";
        SignalScope calleeScope = collectScopeSignals(*callee);
        for (const auto& [name, sig] : calleeScope) {
            if (map.count(name)) continue; // formal, already mapped
            map[name] = prefix + name;
        }
        collectLocalVarNames(*callee->body, prefix, map);

        StmtPtr body = cloneStmt(*callee->body);
        renameStmt(*body, map);

        // The inlined scope: enclosing signals plus renamed callee locals.
        SignalScope inner = scope;
        for (const auto& [name, sig] : calleeScope) {
            if (scope.count(name) && !map.count(name)) continue;
            auto it = map.find(name);
            std::string newName = it != map.end() ? it->second : name;
            ScopeSignal copy = sig;
            copy.isInput = false; // locals of the instance
            inner[newName] = copy;
        }

        stack_.push_back(call.callee);
        body = transform(std::move(body), inner);
        stack_.pop_back();
        return body;
    }

    /// Adds `prefix` renames for every variable declared in the body.
    void collectLocalVarNames(const Stmt& s, const std::string& prefix,
                              RenameMap& map)
    {
        switch (s.kind) {
        case StmtKind::Block:
            for (const StmtPtr& st : static_cast<const BlockStmt&>(s).body)
                collectLocalVarNames(*st, prefix, map);
            return;
        case StmtKind::Decl: {
            const auto& x = static_cast<const DeclStmt&>(s);
            for (const Declarator& d : x.decls)
                if (!map.count(d.name)) map[d.name] = prefix + d.name;
            return;
        }
        case StmtKind::If: {
            const auto& x = static_cast<const IfStmt&>(s);
            collectLocalVarNames(*x.thenStmt, prefix, map);
            if (x.elseStmt) collectLocalVarNames(*x.elseStmt, prefix, map);
            return;
        }
        case StmtKind::While:
            collectLocalVarNames(*static_cast<const WhileStmt&>(s).body,
                                 prefix, map);
            return;
        case StmtKind::DoWhile:
            collectLocalVarNames(*static_cast<const DoWhileStmt&>(s).body,
                                 prefix, map);
            return;
        case StmtKind::For: {
            const auto& x = static_cast<const ForStmt&>(s);
            if (x.init) collectLocalVarNames(*x.init, prefix, map);
            collectLocalVarNames(*x.body, prefix, map);
            return;
        }
        case StmtKind::Present: {
            const auto& x = static_cast<const PresentStmt&>(s);
            collectLocalVarNames(*x.thenStmt, prefix, map);
            if (x.elseStmt) collectLocalVarNames(*x.elseStmt, prefix, map);
            return;
        }
        case StmtKind::Abort: {
            const auto& x = static_cast<const AbortStmt&>(s);
            collectLocalVarNames(*x.body, prefix, map);
            if (x.handler) collectLocalVarNames(*x.handler, prefix, map);
            return;
        }
        case StmtKind::Suspend:
            collectLocalVarNames(*static_cast<const SuspendStmt&>(s).body,
                                 prefix, map);
            return;
        case StmtKind::Par:
            for (const StmtPtr& b : static_cast<const ParStmt&>(s).branches)
                collectLocalVarNames(*b, prefix, map);
            return;
        default: return;
        }
    }

    const Program& prog_;
    const ProgramSema& sema_;
    Diagnostics& diags_;
    std::vector<std::string> stack_;
    int instanceCounter_ = 0;
};

} // namespace

std::unique_ptr<ModuleDecl> elaborate(const Program& program,
                                      const ProgramSema& programSema,
                                      const std::string& topName,
                                      Diagnostics& diags)
{
    return Elaborator(program, programSema, diags).run(topName);
}

} // namespace ecl
