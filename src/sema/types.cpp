#include "src/sema/types.h"

#include <algorithm>

namespace ecl {

const Type::Field* Type::findField(const std::string& n) const
{
    for (const Field& f : fields_)
        if (f.name == n) return &f;
    return nullptr;
}

TypeTable::TypeTable()
{
    void_ = addScalar(TypeKind::Void, "void", 0, false);
    bool_ = addScalar(TypeKind::Bool, "bool", 1, false);
    char_ = addScalar(TypeKind::Int, "char", 1, true);
    uchar_ = addScalar(TypeKind::Int, "unsigned char", 1, false);
    short_ = addScalar(TypeKind::Int, "short", 2, true);
    ushort_ = addScalar(TypeKind::Int, "unsigned short", 2, false);
    int_ = addScalar(TypeKind::Int, "int", 4, true);
    uint_ = addScalar(TypeKind::Int, "unsigned int", 4, false);

    names_["void"] = void_;
    names_["bool"] = bool_;
    names_["char"] = char_;
    names_["unsigned char"] = uchar_;
    names_["short"] = short_;
    names_["unsigned short"] = ushort_;
    names_["int"] = int_;
    names_["unsigned int"] = uint_;
    // MIPS32 model: long is 4 bytes.
    names_["long"] = int_;
    names_["unsigned long"] = uint_;
}

const Type* TypeTable::addScalar(TypeKind k, std::string name,
                                 std::size_t size, bool isSigned)
{
    auto t = std::unique_ptr<Type>(new Type());
    t->kind_ = k;
    t->name_ = std::move(name);
    t->size_ = size;
    t->isSigned_ = isSigned;
    owned_.push_back(std::move(t));
    return owned_.back().get();
}

const Type* TypeTable::arrayOf(const Type* elem, std::size_t count)
{
    std::string key = elem->name() + "[" + std::to_string(count) + "]";
    auto it = arrayCache_.find(key);
    if (it != arrayCache_.end()) return it->second;

    auto t = std::unique_ptr<Type>(new Type());
    t->kind_ = TypeKind::Array;
    t->name_ = key;
    t->element_ = elem;
    t->count_ = count;
    t->size_ = elem->size() * count;
    owned_.push_back(std::move(t));
    arrayCache_[key] = owned_.back().get();
    return owned_.back().get();
}

const Type* TypeTable::makeAggregate(
    bool isUnion, std::string name,
    std::vector<std::pair<std::string, const Type*>> fields, SourceLoc loc)
{
    auto t = std::unique_ptr<Type>(new Type());
    t->kind_ = isUnion ? TypeKind::Union : TypeKind::Struct;
    t->name_ = std::move(name);
    std::size_t offset = 0;
    std::size_t maxSize = 0;
    for (auto& [fname, ftype] : fields) {
        for (const Type::Field& existing : t->fields_)
            if (existing.name == fname)
                throw EclError(loc, "duplicate field '" + fname + "' in '" +
                                        t->name_ + "'");
        Type::Field f;
        f.name = fname;
        f.type = ftype;
        f.offset = isUnion ? 0 : offset;
        offset += ftype->size();
        maxSize = std::max(maxSize, ftype->size());
        t->fields_.push_back(std::move(f));
    }
    t->size_ = isUnion ? maxSize : offset;
    owned_.push_back(std::move(t));
    return owned_.back().get();
}

void TypeTable::registerName(const std::string& name, const Type* type,
                             SourceLoc loc)
{
    auto [it, inserted] = names_.emplace(name, type);
    if (!inserted && it->second != type)
        throw EclError(loc, "type name '" + name + "' already defined");
}

const Type* TypeTable::lookup(const std::string& name) const
{
    auto it = names_.find(name);
    return it == names_.end() ? nullptr : it->second;
}

const Type* TypeTable::require(const std::string& name, SourceLoc loc,
                               Diagnostics& diags) const
{
    const Type* t = lookup(name);
    if (!t) {
        diags.error(loc, "unknown type '" + name + "'");
        throw EclError(loc, "unknown type '" + name + "'");
    }
    return t;
}

} // namespace ecl
