// Semantic analysis for ECL programs.
//
// Two levels:
//  * program level: resolve typedefs/aggregates into the TypeTable, collect
//    C helper functions and file-scope constants;
//  * module level: collect signals and (hoisted) variables of a flattened
//    module, resolve every identifier, and type-check every expression.
//
// ECL restriction carried over from the paper (Section 3, footnote on
// Esterel's Pascal-like scoping): file-scope variables must be `const`;
// within one module all declared variable names must be distinct (no block
// shadowing), which makes hoisting to module scope sound.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/frontend/ast.h"
#include "src/sema/types.h"
#include "src/support/diagnostics.h"

namespace ecl {

// ---------------------------------------------------------------------------
// Program level
// ---------------------------------------------------------------------------

struct FunctionInfo {
    const ast::FunctionDecl* decl = nullptr;
    const Type* returnType = nullptr;
    std::vector<std::pair<std::string, const Type*>> params;
};

struct ProgramSema {
    const ast::Program* program = nullptr;
    TypeTable types;
    std::unordered_map<std::string, FunctionInfo> functions;
    std::unordered_map<std::string, std::int64_t> constants;

    [[nodiscard]] const FunctionInfo* findFunction(const std::string& n) const
    {
        auto it = functions.find(n);
        return it == functions.end() ? nullptr : &it->second;
    }
};

/// Builds the type table, function signatures and constant table.
/// Throws EclError (after recording diagnostics) on semantic errors.
ProgramSema analyzeProgramDecls(const ast::Program& program,
                                Diagnostics& diags);

/// Evaluates a compile-time constant expression (array dimensions, constant
/// globals). Supports literals, constant names, arithmetic/bitwise/logical
/// operators and sizeof(type).
std::int64_t evalConstExpr(const ast::Expr& e, const ProgramSema& sema,
                           Diagnostics& diags);

// ---------------------------------------------------------------------------
// Module level
// ---------------------------------------------------------------------------

enum class SignalDir { Input, Output, Local };

struct SignalInfo {
    std::string name;
    SignalDir dir = SignalDir::Local;
    bool pure = false;
    const Type* valueType = nullptr; ///< Null for pure signals.
    int index = -1;
};

struct VarInfo {
    std::string name;
    const Type* type = nullptr;
    int index = -1;
};

/// What an identifier (or call) refers to, as resolved by sema.
enum class RefKind { Var, SignalValue, Constant, FunctionCall, ModuleInst, SizeofBuiltin };

struct ModuleSema {
    std::string name;
    const ast::ModuleDecl* decl = nullptr;

    std::vector<SignalInfo> signals;
    std::unordered_map<std::string, int> signalIndex;
    std::vector<VarInfo> vars;
    std::unordered_map<std::string, int> varIndex;

    std::unordered_map<const ast::Expr*, const Type*> exprType;
    std::unordered_map<const ast::Expr*, RefKind> refKind;

    [[nodiscard]] const SignalInfo* findSignal(const std::string& n) const
    {
        auto it = signalIndex.find(n);
        return it == signalIndex.end() ? nullptr : &signals[static_cast<std::size_t>(it->second)];
    }
    [[nodiscard]] const VarInfo* findVar(const std::string& n) const
    {
        auto it = varIndex.find(n);
        return it == varIndex.end() ? nullptr : &vars[static_cast<std::size_t>(it->second)];
    }
    [[nodiscard]] const Type* typeOf(const ast::Expr& e) const
    {
        auto it = exprType.find(&e);
        return it == exprType.end() ? nullptr : it->second;
    }
};

/// Analyzes a (flattened — see elaborate.h) module. Signals and variables
/// are collected, identifiers resolved, expressions typed and reactive
/// statements validated. Throws EclError on errors.
ModuleSema analyzeModule(const ast::ModuleDecl& module,
                         const ProgramSema& programSema, Diagnostics& diags);

/// Per-function analysis: local variable table and expression types.
struct FunctionSema {
    const ast::FunctionDecl* decl = nullptr;
    std::vector<VarInfo> vars; ///< Params first, then hoisted locals.
    std::unordered_map<std::string, int> varIndex;
    std::unordered_map<const ast::Expr*, const Type*> exprType;
    std::unordered_map<const ast::Expr*, RefKind> refKind;
};

FunctionSema analyzeFunction(const ast::FunctionDecl& fn,
                             const ProgramSema& programSema,
                             Diagnostics& diags);

} // namespace ecl
