// The ECL type system: scalars, arrays, structs and unions with C-like
// byte layout. Types are canonicalized and owned by a TypeTable; all other
// phases hold `const Type*`.
//
// Layout rules (documented in docs/LANGUAGE.md): fields are packed with no padding,
// little-endian scalar encoding. sizeof: bool/char 1, short 2, int/long 4
// (MIPS32 model). A union's fields all start at offset 0 — the packet
// raw/cooked dual view of the paper's Figure 1 relies on this.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/diagnostics.h"

namespace ecl {

enum class TypeKind { Void, Bool, Int, Array, Struct, Union };

class Type {
public:
    struct Field {
        std::string name;
        const Type* type = nullptr;
        std::size_t offset = 0;
    };

    TypeKind kind() const { return kind_; }
    const std::string& name() const { return name_; }
    std::size_t size() const { return size_; }

    // Scalars.
    bool isScalar() const { return kind_ == TypeKind::Bool || kind_ == TypeKind::Int; }
    bool isSigned() const { return isSigned_; }
    bool isBool() const { return kind_ == TypeKind::Bool; }
    bool isVoid() const { return kind_ == TypeKind::Void; }

    // Arrays.
    const Type* element() const { return element_; }
    std::size_t count() const { return count_; }

    // Aggregates.
    bool isAggregate() const
    {
        return kind_ == TypeKind::Struct || kind_ == TypeKind::Union;
    }
    const std::vector<Field>& fields() const { return fields_; }
    const Field* findField(const std::string& n) const;

    /// C-like display name (used by the code generators).
    std::string displayName() const { return name_; }

private:
    friend class TypeTable;
    Type() = default;

    TypeKind kind_ = TypeKind::Void;
    std::string name_;
    std::size_t size_ = 0;
    bool isSigned_ = false;
    const Type* element_ = nullptr;
    std::size_t count_ = 0;
    std::vector<Field> fields_;
};

/// Owns all Type instances for one compilation; canonicalizes arrays.
class TypeTable {
public:
    TypeTable();
    TypeTable(const TypeTable&) = delete;
    TypeTable& operator=(const TypeTable&) = delete;
    TypeTable(TypeTable&&) = default;
    TypeTable& operator=(TypeTable&&) = default;

    const Type* voidType() const { return void_; }
    const Type* boolType() const { return bool_; }
    const Type* charType() const { return char_; }
    const Type* ucharType() const { return uchar_; }
    const Type* shortType() const { return short_; }
    const Type* ushortType() const { return ushort_; }
    const Type* intType() const { return int_; }
    const Type* uintType() const { return uint_; }

    /// Array of `count` elements of `elem` (canonicalized).
    const Type* arrayOf(const Type* elem, std::size_t count);

    /// Creates a struct/union with computed offsets. `name` is the display
    /// name (typedef name or "struct Tag").
    const Type* makeAggregate(bool isUnion, std::string name,
                              std::vector<std::pair<std::string, const Type*>>
                                  fields,
                              SourceLoc loc);

    /// Binds `name` (a typedef name or "struct Tag") to `type`.
    void registerName(const std::string& name, const Type* type,
                      SourceLoc loc);

    /// Resolves a type spelling ("int", "unsigned char", "packet_t",
    /// "struct foo"). Returns nullptr if unknown.
    const Type* lookup(const std::string& name) const;

    /// Like lookup but raises a diagnostic + EclError when unknown.
    const Type* require(const std::string& name, SourceLoc loc,
                        Diagnostics& diags) const;

private:
    const Type* addScalar(TypeKind k, std::string name, std::size_t size,
                          bool isSigned);

    std::vector<std::unique_ptr<Type>> owned_;
    std::unordered_map<std::string, const Type*> names_;
    std::unordered_map<std::string, const Type*> arrayCache_;

    const Type* void_ = nullptr;
    const Type* bool_ = nullptr;
    const Type* char_ = nullptr;
    const Type* uchar_ = nullptr;
    const Type* short_ = nullptr;
    const Type* ushort_ = nullptr;
    const Type* int_ = nullptr;
    const Type* uint_ = nullptr;
};

} // namespace ecl
