#include "src/efsm/optimize.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ecl::efsm {

namespace {

/// Structural signature of a subtree (actions + tests + leaf targets).
std::string signature(const TransNode& t)
{
    std::string sig;
    for (const Action& a : t.prefixActions) {
        if (a.kind == Action::Kind::Emit)
            sig += "e" + std::to_string(a.signal) + "@" +
                   std::to_string(
                       reinterpret_cast<std::uintptr_t>(a.valueExpr)) +
                   ";";
        else
            sig += "d" + std::to_string(a.dataActionId) + ";";
    }
    if (t.isLeaf) {
        sig += "L" + std::to_string(t.nextState) + (t.terminates ? "T" : "") +
               (t.runtimeError ? "E" : "");
        return sig;
    }
    sig += t.testsSignal
               ? "S" + std::to_string(t.signal)
               : "C" + std::to_string(
                           reinterpret_cast<std::uintptr_t>(t.dataCond));
    sig += "(" + signature(*t.onTrue) + "," + signature(*t.onFalse) + ")";
    return sig;
}

struct TestFact {
    bool isSignal;
    int signal;
    const ast::Expr* cond;
    bool value;
};

bool sameAtom(const TransNode& t, const TestFact& f)
{
    return t.testsSignal == f.isSignal && t.signal == f.signal &&
           t.dataCond == f.cond;
}

class Optimizer {
public:
    OptimizeStats stats;

    /// `facts` holds test outcomes established by ancestors with no
    /// intervening actions (actions invalidate data facts).
    std::unique_ptr<TransNode> run(std::unique_ptr<TransNode> t,
                                   std::vector<TestFact> facts)
    {
        if (t->isLeaf) return t;

        // Actions on this edge may change data predicates: drop data facts
        // (signal facts survive, presence is fixed within the instant).
        if (!t->prefixActions.empty()) {
            std::vector<TestFact> kept;
            for (const TestFact& f : facts)
                if (f.isSignal) kept.push_back(f);
            facts = std::move(kept);
        }

        // Repeated test resolved by an ancestor fact?
        for (const TestFact& f : facts) {
            if (!sameAtom(*t, f)) continue;
            ++stats.repeatedTestsResolved;
            std::unique_ptr<TransNode> taken =
                std::move(f.value ? t->onTrue : t->onFalse);
            // This edge's actions run before the (removed) test.
            taken->prefixActions.insert(taken->prefixActions.begin(),
                                        t->prefixActions.begin(),
                                        t->prefixActions.end());
            return run(std::move(taken), std::move(facts));
        }

        // Recurse with the corresponding fact added.
        TestFact self{t->testsSignal, t->signal, t->dataCond, true};
        {
            std::vector<TestFact> f2 = facts;
            self.value = true;
            f2.push_back(self);
            t->onTrue = run(std::move(t->onTrue), std::move(f2));
        }
        {
            std::vector<TestFact> f2 = facts;
            self.value = false;
            f2.push_back(self);
            t->onFalse = run(std::move(t->onFalse), std::move(f2));
        }

        // Redundant test: both branches identical.
        if (signature(*t->onTrue) == signature(*t->onFalse)) {
            ++stats.testsRemoved;
            std::unique_ptr<TransNode> merged = std::move(t->onTrue);
            merged->prefixActions.insert(merged->prefixActions.begin(),
                                         t->prefixActions.begin(),
                                         t->prefixActions.end());
            return merged;
        }
        return t;
    }
};

} // namespace

OptimizeStats optimize(Efsm& machine)
{
    Optimizer opt;
    for (State& s : machine.states)
        if (s.tree) s.tree = opt.run(std::move(s.tree), {});
    return opt.stats;
}

} // namespace ecl::efsm
