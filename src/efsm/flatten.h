// Flattening pass: Efsm decision trees -> dense executable tables.
//
// buildEfsm produces per-state binary decision trees as unique_ptr-linked
// TransNode chains: correct, but the runtime pays a pointer chase per test
// and a vector<Action> indirection per edge. FlatProgram re-lays the whole
// machine into three contiguous arrays — states, nodes (pre-order per
// tree, integer successors), and actions — with PauseSet configurations
// interned into a side pool. The engine hot paths then walk integer
// indices through cache-resident rows — one instance at a time in
// SyncEngine, N instances over the same shared tables in the batch
// runtime (src/runtime/batch_engine.h), which reads FlatProgram strictly
// read-only and so shares one copy across every instance and worker
// thread. Data work (predicates, actions, emit values) is referenced by
// bytecode chunk ids filled in by the driver (src/core/compiler.cpp)
// after compilation with bc::ProgramBuilder; this keeps src/efsm
// independent of src/interp.
#pragma once

#include <cstdint>
#include <vector>

#include "src/efsm/efsm.h"

namespace ecl::efsm {

struct FlatAction {
    enum class Kind : std::uint8_t { Data, Emit };
    Kind kind = Kind::Data;
    bool isOutput = false;   ///< Emit of an output signal (precomputed).
    std::int32_t signal = -1;
    std::int32_t dataActionId = -1;
    /// Emit value or data action payload; consumed by the linker to
    /// compile `chunk`, then unused at runtime.
    const ast::Expr* valueExpr = nullptr;
    /// Bytecode chunk id (-1 = none: pure emit, or an empty data action).
    std::int32_t chunk = -1;
};

struct FlatNode {
    static constexpr std::uint8_t kLeaf = 1;
    static constexpr std::uint8_t kTerminates = 2;
    static constexpr std::uint8_t kRuntimeError = 4;

    std::int32_t actionsBegin = 0; ///< Prefix actions [begin, end).
    std::int32_t actionsEnd = 0;
    std::int32_t testSignal = -1;  ///< >= 0: input presence test.
    std::int32_t predChunk = -1;   ///< Data predicate bytecode (else -1).
    const ast::Expr* dataCond = nullptr; ///< Consumed by the linker.
    std::int32_t onTrue = -1;      ///< Node indices (test nodes).
    std::int32_t onFalse = -1;
    std::int32_t nextState = -1;   ///< Leaves.
    std::uint8_t flags = 0;

    [[nodiscard]] bool isLeaf() const { return flags & kLeaf; }
    [[nodiscard]] bool terminates() const { return flags & kTerminates; }
    [[nodiscard]] bool runtimeError() const { return flags & kRuntimeError; }
};

struct FlatState {
    std::int32_t root = -1;   ///< Root node index of the decision tree.
    std::int32_t config = -1; ///< Index into FlatProgram::configs.
    bool boot = false;
    bool dead = false;
    bool autoResume = false;
};

/// The whole machine in dense arrays. State ids equal the source Efsm's
/// as flattened; the post-flatten minimizer (src/opt) may renumber them
/// through remapStates(), so flat-mode engines read initial state and
/// per-state attributes from these tables, never from the Efsm.
struct FlatProgram {
    std::vector<FlatState> states;
    std::vector<FlatNode> nodes;
    std::vector<FlatAction> actions;
    std::vector<PauseSet> configs; ///< Interned; states reference by index.
    int initialState = 0;
    int deadState = -1;

    [[nodiscard]] std::size_t byteSize() const
    {
        return states.size() * sizeof(FlatState) +
               nodes.size() * sizeof(FlatNode) +
               actions.size() * sizeof(FlatAction);
    }

    /// Index into `configs` of a state's interned pause-set configuration
    /// (every state id maps to exactly one interned config; -1 only for
    /// malformed programs). The verification layer uses these to label
    /// explored states with their control configuration.
    [[nodiscard]] std::int32_t configIndexOf(int state) const
    {
        return states[static_cast<std::size_t>(state)].config;
    }

    /// The interned pause-set configuration a state id stands for.
    [[nodiscard]] const PauseSet& configOf(int state) const
    {
        return configs[static_cast<std::size_t>(configIndexOf(state))];
    }

    /// Renumbers the machine in place: old state id s becomes old2new[s]
    /// (-1 = state dropped; must not be the initial state). Several old
    /// ids may map to one new id — the lowest old id supplies the
    /// surviving row (the remap hook the post-flatten state minimizer in
    /// src/opt drives; after this, state ids no longer equal the source
    /// Efsm's). Leaf successors, initialState and deadState are
    /// rewritten; nodes and actions of dropped rows are compacted away;
    /// and the config pool is re-interned over the surviving states, so
    /// configs that became identical (or unreferenced) after the remap
    /// are deduplicated. New ids must be dense: every id in
    /// [0, max(old2new)+1) must be hit.
    void remapStates(const std::vector<std::int32_t>& old2new);
};

/// Flattens a built (and optionally optimized) Efsm. The Efsm's sema and
/// referenced AST must outlive the result. Throws EclError on malformed
/// trees (missing roots/children).
FlatProgram flatten(const Efsm& machine);

} // namespace ecl::efsm
