// EFSM optimization passes — the PRE-FLATTEN stage of the two-stage
// optimization pipeline.
//
// The paper (Section 3, Key Features): "logic synthesis and optimization
// can be applied to reduce size or improve speed". This module implements
// the decision-tree cleanups that run on the unique_ptr tree
// representation, before flattening; the post-flatten stage (src/opt —
// flat-state minimization, bytecode optimization, chunk dedup) runs on
// the shared executable tables behind CompileOptions::optLevel.
// Decision-tree cleanups implemented here:
//  * redundant-test elimination: a test whose branches are structurally
//    identical is removed (the outcome does not matter);
//  * repeated-test elimination: a test dominated by an identical ancestor
//    test with no intervening actions resolves to the ancestor's outcome.
// Both preserve reaction semantics exactly (validated by differential
// tests against the unoptimized machine).
#pragma once

#include "src/efsm/efsm.h"

namespace ecl::efsm {

struct OptimizeStats {
    std::size_t testsRemoved = 0;
    std::size_t repeatedTestsResolved = 0;
};

/// Optimizes every state's decision tree in place.
OptimizeStats optimize(Efsm& machine);

} // namespace ecl::efsm
