// EFSM optimization passes.
//
// The paper (Section 3, Key Features): "logic synthesis and optimization
// can be applied to reduce size or improve speed". This module implements
// the decision-tree cleanups that matter for automaton code:
//  * redundant-test elimination: a test whose branches are structurally
//    identical is removed (the outcome does not matter);
//  * repeated-test elimination: a test dominated by an identical ancestor
//    test with no intervening actions resolves to the ancestor's outcome.
// Both preserve reaction semantics exactly (validated by differential
// tests against the unoptimized machine).
#pragma once

#include "src/efsm/efsm.h"

namespace ecl::efsm {

struct OptimizeStats {
    std::size_t testsRemoved = 0;
    std::size_t repeatedTestsResolved = 0;
};

/// Optimizes every state's decision tree in place.
OptimizeStats optimize(Efsm& machine);

} // namespace ecl::efsm
