#include "src/efsm/flatten.h"

#include <unordered_map>

namespace ecl::efsm {

namespace {

class Flattener {
public:
    explicit Flattener(const Efsm& machine) : machine_(machine) {}

    FlatProgram run()
    {
        FlatProgram out;
        out.initialState = machine_.initialState;
        out.deadState = machine_.deadState;
        out.states.reserve(machine_.states.size());
        for (const State& st : machine_.states) {
            FlatState fs;
            fs.boot = st.boot;
            fs.dead = st.dead;
            fs.autoResume = st.autoResume;
            fs.config = internConfig(out, st.config);
            if (!st.tree)
                throw EclError("flatten: state " + std::to_string(st.id) +
                               " has no transition tree");
            fs.root = emitNode(out, *st.tree);
            out.states.push_back(fs);
        }
        return out;
    }

private:
    int internConfig(FlatProgram& out, const PauseSet& config)
    {
        auto it = configIndex_.find(config);
        if (it != configIndex_.end()) return it->second;
        int idx = static_cast<int>(out.configs.size());
        out.configs.push_back(config);
        configIndex_.emplace(config, idx);
        return idx;
    }

    /// Pre-order emission: a node precedes its true subtree, which
    /// precedes its false subtree — the common taken path stays
    /// contiguous in memory.
    std::int32_t emitNode(FlatProgram& out, const TransNode& n)
    {
        auto idx = static_cast<std::int32_t>(out.nodes.size());
        out.nodes.emplace_back();
        {
            FlatNode& fn = out.nodes.back();
            fn.actionsBegin = static_cast<std::int32_t>(out.actions.size());
            for (const Action& a : n.prefixActions)
                out.actions.push_back(flattenAction(a));
            fn.actionsEnd = static_cast<std::int32_t>(out.actions.size());
        }
        if (n.isLeaf) {
            FlatNode& fn = out.nodes[static_cast<std::size_t>(idx)];
            fn.flags = FlatNode::kLeaf;
            if (n.terminates) fn.flags |= FlatNode::kTerminates;
            if (n.runtimeError) fn.flags |= FlatNode::kRuntimeError;
            fn.nextState = n.nextState;
            return idx;
        }
        if (!n.onTrue || !n.onFalse)
            throw EclError("flatten: test node missing a successor");
        if (n.testsSignal)
            out.nodes[static_cast<std::size_t>(idx)].testSignal = n.signal;
        else
            out.nodes[static_cast<std::size_t>(idx)].dataCond = n.dataCond;
        // emitNode reallocates out.nodes; re-index instead of holding refs.
        std::int32_t t = emitNode(out, *n.onTrue);
        std::int32_t f = emitNode(out, *n.onFalse);
        out.nodes[static_cast<std::size_t>(idx)].onTrue = t;
        out.nodes[static_cast<std::size_t>(idx)].onFalse = f;
        return idx;
    }

    FlatAction flattenAction(const Action& a) const
    {
        FlatAction fa;
        if (a.kind == Action::Kind::Emit) {
            fa.kind = FlatAction::Kind::Emit;
            fa.signal = a.signal;
            fa.valueExpr = a.valueExpr;
            fa.isOutput =
                machine_.sema->signals[static_cast<std::size_t>(a.signal)]
                    .dir == SignalDir::Output;
        } else {
            fa.kind = FlatAction::Kind::Data;
            fa.dataActionId = a.dataActionId;
        }
        return fa;
    }

    const Efsm& machine_;
    std::unordered_map<PauseSet, int, PauseSetHash> configIndex_;
};

} // namespace

FlatProgram flatten(const Efsm& machine)
{
    return Flattener(machine).run();
}

} // namespace ecl::efsm
