#include "src/efsm/flatten.h"

#include <algorithm>
#include <unordered_map>

namespace ecl::efsm {

namespace {

class Flattener {
public:
    explicit Flattener(const Efsm& machine) : machine_(machine) {}

    FlatProgram run()
    {
        FlatProgram out;
        out.initialState = machine_.initialState;
        out.deadState = machine_.deadState;
        out.states.reserve(machine_.states.size());
        for (const State& st : machine_.states) {
            FlatState fs;
            fs.boot = st.boot;
            fs.dead = st.dead;
            fs.autoResume = st.autoResume;
            fs.config = internConfig(out, st.config);
            if (!st.tree)
                throw EclError("flatten: state " + std::to_string(st.id) +
                               " has no transition tree");
            fs.root = emitNode(out, *st.tree);
            out.states.push_back(fs);
        }
        return out;
    }

private:
    int internConfig(FlatProgram& out, const PauseSet& config)
    {
        auto it = configIndex_.find(config);
        if (it != configIndex_.end()) return it->second;
        int idx = static_cast<int>(out.configs.size());
        out.configs.push_back(config);
        configIndex_.emplace(config, idx);
        return idx;
    }

    /// Pre-order emission: a node precedes its true subtree, which
    /// precedes its false subtree — the common taken path stays
    /// contiguous in memory.
    std::int32_t emitNode(FlatProgram& out, const TransNode& n)
    {
        auto idx = static_cast<std::int32_t>(out.nodes.size());
        out.nodes.emplace_back();
        {
            FlatNode& fn = out.nodes.back();
            fn.actionsBegin = static_cast<std::int32_t>(out.actions.size());
            for (const Action& a : n.prefixActions)
                out.actions.push_back(flattenAction(a));
            fn.actionsEnd = static_cast<std::int32_t>(out.actions.size());
        }
        if (n.isLeaf) {
            FlatNode& fn = out.nodes[static_cast<std::size_t>(idx)];
            fn.flags = FlatNode::kLeaf;
            if (n.terminates) fn.flags |= FlatNode::kTerminates;
            if (n.runtimeError) fn.flags |= FlatNode::kRuntimeError;
            fn.nextState = n.nextState;
            return idx;
        }
        if (!n.onTrue || !n.onFalse)
            throw EclError("flatten: test node missing a successor");
        if (n.testsSignal)
            out.nodes[static_cast<std::size_t>(idx)].testSignal = n.signal;
        else
            out.nodes[static_cast<std::size_t>(idx)].dataCond = n.dataCond;
        // emitNode reallocates out.nodes; re-index instead of holding refs.
        std::int32_t t = emitNode(out, *n.onTrue);
        std::int32_t f = emitNode(out, *n.onFalse);
        out.nodes[static_cast<std::size_t>(idx)].onTrue = t;
        out.nodes[static_cast<std::size_t>(idx)].onFalse = f;
        return idx;
    }

    FlatAction flattenAction(const Action& a) const
    {
        FlatAction fa;
        if (a.kind == Action::Kind::Emit) {
            fa.kind = FlatAction::Kind::Emit;
            fa.signal = a.signal;
            fa.valueExpr = a.valueExpr;
            fa.isOutput =
                machine_.sema->signals[static_cast<std::size_t>(a.signal)]
                    .dir == SignalDir::Output;
        } else {
            fa.kind = FlatAction::Kind::Data;
            fa.dataActionId = a.dataActionId;
        }
        return fa;
    }

    const Efsm& machine_;
    std::unordered_map<PauseSet, int, PauseSetHash> configIndex_;
};

} // namespace

FlatProgram flatten(const Efsm& machine)
{
    return Flattener(machine).run();
}

void FlatProgram::remapStates(const std::vector<std::int32_t>& old2new)
{
    if (old2new.size() != states.size())
        throw EclError("remapStates: map size does not match state count");
    std::int32_t newCount = 0;
    for (std::int32_t n : old2new) newCount = std::max(newCount, n + 1);
    if (initialState < 0 ||
        old2new[static_cast<std::size_t>(initialState)] < 0)
        throw EclError("remapStates: initial state was dropped");

    // Surviving rows: lowest old id per new id wins.
    std::vector<std::int32_t> reps(static_cast<std::size_t>(newCount), -1);
    for (std::size_t s = 0; s < old2new.size(); ++s) {
        std::int32_t n = old2new[s];
        if (n < 0) continue;
        if (reps[static_cast<std::size_t>(n)] < 0)
            reps[static_cast<std::size_t>(n)] = static_cast<std::int32_t>(s);
    }
    for (std::size_t n = 0; n < reps.size(); ++n)
        if (reps[n] < 0)
            throw EclError("remapStates: new id " + std::to_string(n) +
                           " has no representative (map not dense)");

    std::vector<FlatNode> newNodes;
    std::vector<FlatAction> newActions;
    newNodes.reserve(nodes.size());
    newActions.reserve(actions.size());

    // Pre-order copy of one surviving tree with successor rewriting.
    auto copyTree = [&](auto&& self, std::int32_t oldIdx) -> std::int32_t {
        const FlatNode src = nodes[static_cast<std::size_t>(oldIdx)];
        auto idx = static_cast<std::int32_t>(newNodes.size());
        newNodes.push_back(src);
        {
            FlatNode& dst = newNodes.back();
            dst.actionsBegin = static_cast<std::int32_t>(newActions.size());
            for (std::int32_t a = src.actionsBegin; a < src.actionsEnd; ++a)
                newActions.push_back(actions[static_cast<std::size_t>(a)]);
            dst.actionsEnd = static_cast<std::int32_t>(newActions.size());
        }
        if (src.isLeaf()) {
            if (src.nextState >= 0) {
                std::int32_t n =
                    old2new[static_cast<std::size_t>(src.nextState)];
                if (n < 0 && !src.runtimeError())
                    throw EclError("remapStates: live successor dropped");
                newNodes[static_cast<std::size_t>(idx)].nextState = n;
            }
            return idx;
        }
        std::int32_t t = self(self, src.onTrue);
        std::int32_t f = self(self, src.onFalse);
        newNodes[static_cast<std::size_t>(idx)].onTrue = t;
        newNodes[static_cast<std::size_t>(idx)].onFalse = f;
        return idx;
    };

    std::vector<FlatState> newStates(static_cast<std::size_t>(newCount));
    std::vector<PauseSet> newConfigs;
    std::unordered_map<PauseSet, std::int32_t, PauseSetHash> configIndex;
    for (std::size_t n = 0; n < reps.size(); ++n) {
        const FlatState& src = states[static_cast<std::size_t>(reps[n])];
        FlatState& dst = newStates[n];
        dst = src;
        dst.root = copyTree(copyTree, src.root);
        const PauseSet& cfg = configs[static_cast<std::size_t>(src.config)];
        auto it = configIndex.find(cfg);
        if (it == configIndex.end()) {
            it = configIndex
                     .emplace(cfg,
                              static_cast<std::int32_t>(newConfigs.size()))
                     .first;
            newConfigs.push_back(cfg);
        }
        dst.config = it->second;
    }

    states = std::move(newStates);
    nodes = std::move(newNodes);
    actions = std::move(newActions);
    configs = std::move(newConfigs);
    initialState = old2new[static_cast<std::size_t>(initialState)];
    deadState =
        deadState >= 0 ? old2new[static_cast<std::size_t>(deadState)] : -1;
}

} // namespace ecl::efsm
