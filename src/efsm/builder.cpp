#include <algorithm>
#include <climits>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>

#include "src/efsm/efsm.h"

namespace ecl::efsm {

namespace {

using ir::Node;
using ir::NodeKind;

// ---------------------------------------------------------------------------
// Symbolic reaction machinery
// ---------------------------------------------------------------------------

/// One decision literal on the path to a leaf. `actionsBefore` records how
/// many actions had accumulated when the fork happened, so the tree builder
/// can attach the actions between two forks to the right tree edge.
struct GuardLit {
    bool isSignal = false;
    int signal = -1;
    const ast::Expr* cond = nullptr;
    bool value = false;
    std::size_t actionsBefore = 0;

    [[nodiscard]] bool sameAtom(const GuardLit& o) const
    {
        return isSignal == o.isSignal && signal == o.signal &&
               cond == o.cond && actionsBefore == o.actionsBefore;
    }
};

struct SymCtx {
    std::vector<signed char> inputStatus; ///< -1 unknown, 0 absent, 1 present
    std::set<int> emitted;                ///< non-input signals emitted so far
    std::vector<GuardLit> path;
    std::vector<Action> actions;
    std::map<const Node*, int> loopCounts;
};

struct Completion {
    enum Kind { Term, Pause, Exit, Error } kind = Term;
    int trapId = -1;
    int trapDepth = INT_MAX;
};

struct Outcome {
    SymCtx ctx;
    Completion comp;
    PauseSet pauses;
};

Completion combineComp(const Completion& a, const Completion& b)
{
    if (a.kind == Completion::Error || b.kind == Completion::Error)
        return {Completion::Error, -1, INT_MAX};
    if (a.kind == Completion::Exit && b.kind == Completion::Exit)
        return a.trapDepth <= b.trapDepth ? a : b; // outermost trap wins
    if (a.kind == Completion::Exit) return a;
    if (b.kind == Completion::Exit) return b;
    if (a.kind == Completion::Pause || b.kind == Completion::Pause)
        return {Completion::Pause, -1, INT_MAX};
    return {Completion::Term, -1, INT_MAX};
}

enum class Mode { Start, Resume };

class Builder {
public:
    Builder(const ir::ReactiveProgram& program, const ModuleSema& sema,
            Diagnostics& diags, const BuildOptions& options)
        : prog_(program), sema_(sema), diags_(diags), opt_(options)
    {
    }

    Efsm run()
    {
        Efsm m;
        m.sema = &sema_;
        m.program = &prog_;

        // State 0 is the boot state.
        State boot;
        boot.id = 0;
        boot.boot = true;
        m.states.push_back(std::move(boot));
        m.initialState = 0;

        std::deque<int> queue{0};
        while (!queue.empty()) {
            int id = queue.front();
            queue.pop_front();

            // Snapshot what we need (m.states may reallocate on intern).
            bool isBoot = m.states[static_cast<std::size_t>(id)].boot;
            bool isDead = m.states[static_cast<std::size_t>(id)].dead;
            PauseSet config = m.states[static_cast<std::size_t>(id)].config;

            if (isDead) {
                auto leaf = std::make_unique<TransNode>();
                leaf->isLeaf = true;
                leaf->nextState = id;
                m.states[static_cast<std::size_t>(id)].tree = std::move(leaf);
                continue;
            }

            config_ = config;
            SymCtx ctx;
            ctx.inputStatus.assign(sema_.signals.size(), -1);
            std::vector<Outcome> outcomes =
                isBoot ? react(*prog_.root, Mode::Start, std::move(ctx))
                       : react(*prog_.root, Mode::Resume, std::move(ctx));

            // Map outcomes to leaves / next states.
            std::vector<const Outcome*> ptrs;
            ptrs.reserve(outcomes.size());
            for (Outcome& o : outcomes) ptrs.push_back(&o);

            std::unique_ptr<TransNode> tree =
                buildTree(m, queue, ptrs, 0, 0);
            m.states[static_cast<std::size_t>(id)].tree = std::move(tree);
        }

        // Mark auto-resume states (configs holding delta pauses).
        for (State& s : m.states) {
            bool delta = false;
            s.config.forEach([&](std::size_t p) {
                if (p < prog_.pauseDelta.size() && prog_.pauseDelta[p])
                    delta = true;
            });
            s.autoResume = delta;
        }
        return m;
    }

private:
    [[noreturn]] void fail(SourceLoc loc, const std::string& msg)
    {
        diags_.error(loc, msg);
        throw EclError(loc, msg);
    }

    int internState(Efsm& m, std::deque<int>& queue, const PauseSet& config,
                    bool dead)
    {
        if (dead) {
            if (m.deadState >= 0) return m.deadState;
            State s;
            s.id = static_cast<int>(m.states.size());
            s.dead = true;
            m.deadState = s.id;
            m.states.push_back(std::move(s));
            queue.push_back(m.deadState);
            return m.deadState;
        }
        auto it = interned_.find(config);
        if (it != interned_.end()) return it->second;
        if (m.states.size() >= opt_.maxStates)
            fail({}, "EFSM state limit exceeded (" +
                         std::to_string(opt_.maxStates) + ")");
        State s;
        s.id = static_cast<int>(m.states.size());
        s.config = config;
        interned_[config] = s.id;
        m.states.push_back(std::move(s));
        queue.push_back(m.states.back().id);
        return m.states.back().id;
    }

    std::unique_ptr<TransNode> buildTree(Efsm& m, std::deque<int>& queue,
                                         const std::vector<const Outcome*>& outs,
                                         std::size_t depth,
                                         std::size_t actionsConsumed)
    {
        if (outs.empty())
            fail({}, "internal: empty outcome set while building tree");

        // Leaf: a single outcome whose path is fully consumed.
        if (outs.size() == 1 &&
            outs[0]->ctx.path.size() == depth) {
            const Outcome& o = *outs[0];
            auto leaf = std::make_unique<TransNode>();
            leaf->isLeaf = true;
            leaf->prefixActions.assign(
                o.ctx.actions.begin() +
                    static_cast<std::ptrdiff_t>(actionsConsumed),
                o.ctx.actions.end());
            if (o.comp.kind == Completion::Error) {
                leaf->runtimeError = true;
                leaf->prefixActions.clear();
                leaf->nextState = internState(m, queue, {}, true);
                leaf->terminates = true;
            } else if (o.comp.kind == Completion::Pause) {
                leaf->nextState = internState(m, queue, o.pauses, false);
            } else {
                leaf->nextState = internState(m, queue, {}, true);
                leaf->terminates = true;
            }
            return leaf;
        }

        // All remaining outcomes must agree on the atom at `depth`.
        const Outcome* first = nullptr;
        for (const Outcome* o : outs)
            if (o->ctx.path.size() > depth) {
                first = o;
                break;
            }
        if (!first)
            fail({}, "internal: ambiguous reaction (duplicate decision "
                     "paths)");
        const GuardLit& atom = first->ctx.path[depth];

        std::vector<const Outcome*> trues;
        std::vector<const Outcome*> falses;
        for (const Outcome* o : outs) {
            if (o->ctx.path.size() <= depth)
                fail({}, "internal: outcome path shorter than its siblings");
            const GuardLit& lit = o->ctx.path[depth];
            if (!lit.sameAtom(atom))
                fail({}, "internal: decision-path divergence (prefix "
                         "property violated)");
            (lit.value ? trues : falses).push_back(o);
        }
        if (trues.empty() || falses.empty())
            fail({}, "internal: one-sided fork in decision tree");

        auto node = std::make_unique<TransNode>();
        // Actions accumulated since the previous fork run before this test.
        node->prefixActions.assign(
            first->ctx.actions.begin() +
                static_cast<std::ptrdiff_t>(actionsConsumed),
            first->ctx.actions.begin() +
                static_cast<std::ptrdiff_t>(atom.actionsBefore));
        node->testsSignal = atom.isSignal;
        node->signal = atom.signal;
        node->dataCond = atom.cond;
        node->onTrue = buildTree(m, queue, trues, depth + 1,
                                 atom.actionsBefore);
        node->onFalse = buildTree(m, queue, falses, depth + 1,
                                  atom.actionsBefore);
        return node;
    }

    // --- symbolic signal-guard evaluation -----------------------------------

    bool isInput(int sig) const
    {
        return sema_.signals[static_cast<std::size_t>(sig)].dir ==
               ecl::SignalDir::Input;
    }

    std::vector<std::pair<SymCtx, bool>> evalGuard(const ir::SigGuard& g,
                                                   SymCtx ctx)
    {
        switch (g.kind) {
        case ir::SigGuard::Kind::Ref: {
            if (isInput(g.signal)) {
                signed char st =
                    ctx.inputStatus[static_cast<std::size_t>(g.signal)];
                if (st >= 0) {
                    std::vector<std::pair<SymCtx, bool>> out;
                    out.emplace_back(std::move(ctx), st == 1);
                    return out;
                }
                std::size_t nActs = ctx.actions.size();
                SymCtx tctx = ctx;
                tctx.inputStatus[static_cast<std::size_t>(g.signal)] = 1;
                tctx.path.push_back({true, g.signal, nullptr, true, nActs});
                SymCtx fctx = std::move(ctx);
                fctx.inputStatus[static_cast<std::size_t>(g.signal)] = 0;
                fctx.path.push_back({true, g.signal, nullptr, false, nActs});
                std::vector<std::pair<SymCtx, bool>> out;
                out.emplace_back(std::move(tctx), true);
                out.emplace_back(std::move(fctx), false);
                return out;
            }
            // Local/output signal: status is determined by emissions made
            // earlier in this instant (static causality guarantees emitters
            // already ran).
            bool present = ctx.emitted.count(g.signal) > 0;
            std::vector<std::pair<SymCtx, bool>> out;
            out.emplace_back(std::move(ctx), present);
            return out;
        }
        case ir::SigGuard::Kind::Not: {
            auto inner = evalGuard(*g.lhs, std::move(ctx));
            for (auto& [c, v] : inner) v = !v;
            return inner;
        }
        case ir::SigGuard::Kind::And: {
            auto lhs = evalGuard(*g.lhs, std::move(ctx));
            std::vector<std::pair<SymCtx, bool>> out;
            for (auto& [c, v] : lhs) {
                if (!v) {
                    out.emplace_back(std::move(c), false);
                    continue;
                }
                auto rhs = evalGuard(*g.rhs, std::move(c));
                for (auto& r : rhs) out.push_back(std::move(r));
            }
            return out;
        }
        case ir::SigGuard::Kind::Or: {
            auto lhs = evalGuard(*g.lhs, std::move(ctx));
            std::vector<std::pair<SymCtx, bool>> out;
            for (auto& [c, v] : lhs) {
                if (v) {
                    out.emplace_back(std::move(c), true);
                    continue;
                }
                auto rhs = evalGuard(*g.rhs, std::move(c));
                for (auto& r : rhs) out.push_back(std::move(r));
            }
            return out;
        }
        }
        fail({}, "internal: bad guard kind");
    }

    // --- the reaction --------------------------------------------------------

    void checkBudget(std::size_t n)
    {
        if (n > opt_.maxOutcomesPerReaction)
            fail({}, "reaction outcome limit exceeded (too many symbolic "
                     "paths in one instant)");
    }

    [[nodiscard]] bool selectedIn(const Node& n) const
    {
        return n.pausesInSubtree.intersects(config_);
    }

    std::vector<Outcome> react(const Node& n, Mode mode, SymCtx ctx)
    {
        if (mode == Mode::Resume) return resume(n, std::move(ctx));
        return start(n, std::move(ctx));
    }

    /// Threads `outs` (whatever completed) through children [from..) of a
    /// Seq, starting each subsequent child.
    std::vector<Outcome> seqTail(const Node& seq, std::size_t from,
                                 std::vector<Outcome> outs)
    {
        for (std::size_t i = from; i < seq.children.size(); ++i) {
            std::vector<Outcome> next;
            for (Outcome& o : outs) {
                if (o.comp.kind != Completion::Term) {
                    next.push_back(std::move(o));
                    continue;
                }
                std::vector<Outcome> sub =
                    start(*seq.children[i], std::move(o.ctx));
                for (Outcome& s : sub) next.push_back(std::move(s));
            }
            outs = std::move(next);
            checkBudget(outs.size());
        }
        return outs;
    }

    std::vector<Outcome> start(const Node& n, SymCtx ctx)
    {
        switch (n.kind) {
        case NodeKind::Nothing: {
            std::vector<Outcome> out;
            out.push_back({std::move(ctx), {Completion::Term, -1, INT_MAX}, {}});
            return out;
        }
        case NodeKind::Pause: {
            Outcome o;
            o.ctx = std::move(ctx);
            o.comp = {Completion::Pause, -1, INT_MAX};
            o.pauses.set(static_cast<std::size_t>(n.pauseId));
            std::vector<Outcome> out;
            out.push_back(std::move(o));
            return out;
        }
        case NodeKind::Emit: {
            Action a;
            a.kind = Action::Kind::Emit;
            a.signal = n.signal;
            a.valueExpr = n.valueExpr;
            ctx.actions.push_back(a);
            if (!isInput(n.signal)) ctx.emitted.insert(n.signal);
            std::vector<Outcome> out;
            out.push_back({std::move(ctx), {Completion::Term, -1, INT_MAX}, {}});
            return out;
        }
        case NodeKind::DataStmt: {
            Action a;
            a.kind = Action::Kind::Data;
            a.dataActionId = n.dataActionId;
            ctx.actions.push_back(a);
            std::vector<Outcome> out;
            out.push_back({std::move(ctx), {Completion::Term, -1, INT_MAX}, {}});
            return out;
        }
        case NodeKind::If: {
            std::size_t nActs = ctx.actions.size();
            SymCtx tctx = ctx;
            tctx.path.push_back({false, -1, n.condExpr, true, nActs});
            SymCtx fctx = std::move(ctx);
            fctx.path.push_back({false, -1, n.condExpr, false, nActs});
            std::vector<Outcome> out = start(*n.children[0], std::move(tctx));
            std::vector<Outcome> fo = start(*n.children[1], std::move(fctx));
            for (Outcome& o : fo) out.push_back(std::move(o));
            checkBudget(out.size());
            return out;
        }
        case NodeKind::Present: {
            std::vector<Outcome> out;
            for (auto& [c, v] : evalGuard(*n.guard, std::move(ctx))) {
                std::vector<Outcome> sub =
                    start(*n.children[v ? 0 : 1], std::move(c));
                for (Outcome& o : sub) out.push_back(std::move(o));
            }
            checkBudget(out.size());
            return out;
        }
        case NodeKind::Seq: {
            std::vector<Outcome> outs;
            outs.push_back({std::move(ctx), {Completion::Term, -1, INT_MAX}, {}});
            return seqTail(n, 0, std::move(outs));
        }
        case NodeKind::Loop: return loopFrom(n, Mode::Start, std::move(ctx));
        case NodeKind::Par: return parRun(n, Mode::Start, std::move(ctx));
        case NodeKind::Abort:
        case NodeKind::Suspend: {
            // Non-immediate: the guard is not tested in the starting instant.
            std::vector<Outcome> body = start(*n.children[0], std::move(ctx));
            return body;
        }
        case NodeKind::Trap: {
            std::vector<Outcome> body = start(*n.children[0], std::move(ctx));
            return catchTrap(n, std::move(body));
        }
        case NodeKind::Exit: {
            Outcome o;
            o.ctx = std::move(ctx);
            o.comp = {Completion::Exit, n.trapId,
                      prog_.trapDepth[static_cast<std::size_t>(n.trapId)]};
            std::vector<Outcome> out;
            out.push_back(std::move(o));
            return out;
        }
        }
        fail(n.loc, "internal: bad node kind in start");
    }

    std::vector<Outcome> resume(const Node& n, SymCtx ctx)
    {
        switch (n.kind) {
        case NodeKind::Pause: {
            // Control was here; it moves on.
            std::vector<Outcome> out;
            out.push_back({std::move(ctx), {Completion::Term, -1, INT_MAX}, {}});
            return out;
        }
        case NodeKind::Seq: {
            std::size_t idx = n.children.size();
            for (std::size_t i = 0; i < n.children.size(); ++i)
                if (selectedIn(*n.children[i])) {
                    idx = i;
                    break;
                }
            if (idx == n.children.size())
                fail(n.loc, "internal: resume of Seq without selected child");
            std::vector<Outcome> outs =
                resume(*n.children[idx], std::move(ctx));
            return seqTail(n, idx + 1, std::move(outs));
        }
        case NodeKind::Loop: return loopFrom(n, Mode::Resume, std::move(ctx));
        case NodeKind::If:
        case NodeKind::Present: {
            const Node& active =
                selectedIn(*n.children[0]) ? *n.children[0] : *n.children[1];
            return resume(active, std::move(ctx));
        }
        case NodeKind::Par: return parRun(n, Mode::Resume, std::move(ctx));
        case NodeKind::Abort: {
            const Node& body = *n.children[0];
            const Node* handler =
                n.children.size() > 1 ? n.children[1].get() : nullptr;
            // Control may rest inside the handler (preemption happened in an
            // earlier instant): the abort itself is finished then.
            if (handler && selectedIn(*handler) && !selectedIn(body))
                return resume(*handler, std::move(ctx));
            std::vector<Outcome> out;
            if (!n.weak) {
                for (auto& [c, v] : evalGuard(*n.guard, std::move(ctx))) {
                    if (v) {
                        // Strong preemption: the body performs no action.
                        if (handler) {
                            for (Outcome& h : start(*handler, std::move(c)))
                                out.push_back(std::move(h));
                        } else {
                            out.push_back(
                                {std::move(c), {Completion::Term, -1, INT_MAX}, {}});
                        }
                    } else {
                        for (Outcome& b : resume(body, std::move(c)))
                            out.push_back(std::move(b));
                    }
                }
                checkBudget(out.size());
                return out;
            }
            // Weak abort: the body runs this instant, then the guard decides.
            for (Outcome& b : resume(body, std::move(ctx))) {
                Completion bodyComp = b.comp;
                PauseSet bodyPauses = b.pauses;
                for (auto& [c, v] : evalGuard(*n.guard, std::move(b.ctx))) {
                    if (v && bodyComp.kind == Completion::Pause) {
                        // Kill the body at end of instant; run the handler.
                        if (handler) {
                            for (Outcome& h : start(*handler, std::move(c)))
                                out.push_back(std::move(h));
                        } else {
                            out.push_back(
                                {std::move(c), {Completion::Term, -1, INT_MAX}, {}});
                        }
                    } else {
                        out.push_back({std::move(c), bodyComp, bodyPauses});
                    }
                }
            }
            checkBudget(out.size());
            return out;
        }
        case NodeKind::Suspend: {
            const Node& body = *n.children[0];
            std::vector<Outcome> out;
            for (auto& [c, v] : evalGuard(*n.guard, std::move(ctx))) {
                if (v) {
                    Outcome o;
                    o.ctx = std::move(c);
                    o.comp = {Completion::Pause, -1, INT_MAX};
                    o.pauses = n.pausesInSubtree;
                    o.pauses &= config_;
                    out.push_back(std::move(o));
                } else {
                    for (Outcome& b : resume(body, std::move(c)))
                        out.push_back(std::move(b));
                }
            }
            checkBudget(out.size());
            return out;
        }
        case NodeKind::Trap: {
            std::vector<Outcome> body = resume(*n.children[0], std::move(ctx));
            return catchTrap(n, std::move(body));
        }
        default:
            fail(n.loc, "internal: resume of a node without pauses");
        }
    }

    std::vector<Outcome> catchTrap(const Node& n, std::vector<Outcome> body)
    {
        for (Outcome& o : body) {
            if (o.comp.kind == Completion::Exit && o.comp.trapId == n.trapId) {
                o.comp = {Completion::Term, -1, INT_MAX};
                o.pauses = PauseSet{};
            }
        }
        return body;
    }

    std::vector<Outcome> loopFrom(const Node& n, Mode mode, SymCtx ctx)
    {
        const Node& body = *n.children[0];
        std::vector<Outcome> pending;
        if (mode == Mode::Resume)
            pending = resume(body, std::move(ctx));
        else {
            ctx.loopCounts[&n]++;
            if (ctx.loopCounts[&n] > opt_.loopIterationLimit) {
                std::vector<Outcome> out;
                out.push_back(
                    {std::move(ctx), {Completion::Error, -1, INT_MAX}, {}});
                return out;
            }
            pending = start(body, std::move(ctx));
        }
        // Terminated bodies restart the loop within the same instant.
        std::vector<Outcome> out;
        for (Outcome& o : pending) {
            if (o.comp.kind != Completion::Term) {
                out.push_back(std::move(o));
                continue;
            }
            SymCtx c = std::move(o.ctx);
            c.loopCounts[&n]++;
            if (c.loopCounts[&n] > opt_.loopIterationLimit) {
                // Statically-unverifiable instantaneous loop: prune this
                // symbolic path into a runtime-trap leaf (see efsm.h).
                out.push_back(
                    {std::move(c), {Completion::Error, -1, INT_MAX}, {}});
                continue;
            }
            for (Outcome& r : loopRestart(n, std::move(c)))
                out.push_back(std::move(r));
        }
        checkBudget(out.size());
        return out;
    }

    std::vector<Outcome> loopRestart(const Node& n, SymCtx ctx)
    {
        const Node& body = *n.children[0];
        std::vector<Outcome> pending = start(body, std::move(ctx));
        std::vector<Outcome> out;
        for (Outcome& o : pending) {
            if (o.comp.kind != Completion::Term) {
                out.push_back(std::move(o));
                continue;
            }
            SymCtx c = std::move(o.ctx);
            c.loopCounts[&n]++;
            if (c.loopCounts[&n] > opt_.loopIterationLimit) {
                out.push_back(
                    {std::move(c), {Completion::Error, -1, INT_MAX}, {}});
                continue;
            }
            for (Outcome& r : loopRestart(n, std::move(c)))
                out.push_back(std::move(r));
        }
        return out;
    }

    std::vector<Outcome> parRun(const Node& n, Mode mode, SymCtx ctx)
    {
        std::vector<Outcome> acc;
        acc.push_back({std::move(ctx), {Completion::Term, -1, INT_MAX}, {}});
        for (const ir::NodePtr& b : n.children) {
            std::vector<Outcome> next;
            for (Outcome& o : acc) {
                std::vector<Outcome> branchOuts;
                if (mode == Mode::Resume) {
                    if (selectedIn(*b))
                        branchOuts = resume(*b, std::move(o.ctx));
                    else {
                        // This branch finished in an earlier instant.
                        branchOuts.push_back(
                            {std::move(o.ctx), {Completion::Term, -1, INT_MAX}, {}});
                    }
                } else {
                    branchOuts = start(*b, std::move(o.ctx));
                }
                for (Outcome& bo : branchOuts) {
                    Outcome merged;
                    merged.ctx = std::move(bo.ctx);
                    merged.comp = combineComp(o.comp, bo.comp);
                    merged.pauses = o.pauses;
                    merged.pauses |= bo.pauses;
                    next.push_back(std::move(merged));
                }
            }
            acc = std::move(next);
            checkBudget(acc.size());
        }
        // A par that does not pause kills every branch's pauses.
        for (Outcome& o : acc)
            if (o.comp.kind != Completion::Pause) o.pauses = PauseSet{};
        return acc;
    }

    const ir::ReactiveProgram& prog_;
    const ModuleSema& sema_;
    Diagnostics& diags_;
    BuildOptions opt_;
    PauseSet config_;
    std::unordered_map<PauseSet, int, PauseSetHash> interned_;
};

void collectStats(const TransNode& t, EfsmStats& s, std::size_t depth)
{
    s.maxTreeDepth = std::max(s.maxTreeDepth, depth);
    s.actionsTotal += t.prefixActions.size();
    if (t.isLeaf) {
        s.leaves++;
        return;
    }
    s.testNodes++;
    collectStats(*t.onTrue, s, depth + 1);
    collectStats(*t.onFalse, s, depth + 1);
}

} // namespace

EfsmStats Efsm::stats() const
{
    EfsmStats s;
    s.states = states.size();
    for (const State& st : states)
        if (st.tree) collectStats(*st.tree, s, 1);
    return s;
}

namespace {

std::string describeTree(const Efsm& m, const TransNode& t, int depth)
{
    std::string pad(2 * static_cast<std::size_t>(depth), ' ');
    std::string acts;
    if (!t.prefixActions.empty()) {
        acts = " [";
        for (std::size_t i = 0; i < t.prefixActions.size(); ++i) {
            if (i) acts += ", ";
            const Action& a = t.prefixActions[i];
            if (a.kind == Action::Kind::Emit) {
                acts += "emit " +
                        m.sema->signals[static_cast<std::size_t>(a.signal)]
                            .name;
            } else {
                acts += "data#" + std::to_string(a.dataActionId);
            }
        }
        acts += "]";
    }
    if (t.isLeaf) {
        std::string out = pad + "-> s" + std::to_string(t.nextState);
        if (t.terminates) out += " (terminated)";
        if (t.runtimeError) out += " (runtime-trap)";
        out += acts;
        return out + "\n";
    }
    std::string label =
        t.testsSignal
            ? m.sema->signals[static_cast<std::size_t>(t.signal)].name + "?"
            : std::string("<data-cond>?");
    std::string out = pad + label + acts + "\n";
    out += describeTree(m, *t.onTrue, depth + 1);
    out += pad + "else\n";
    out += describeTree(m, *t.onFalse, depth + 1);
    return out;
}

} // namespace

std::string Efsm::describe() const
{
    std::string out;
    for (const State& s : states) {
        out += "state s" + std::to_string(s.id);
        if (s.boot) out += " (boot)";
        if (s.dead) out += " (dead)";
        if (s.autoResume) out += " (auto-resume)";
        out += " config=" + s.config.toString() + "\n";
        if (s.tree) out += describeTree(*this, *s.tree, 1);
    }
    return out;
}

Efsm buildEfsm(const ir::ReactiveProgram& program, const ModuleSema& sema,
               Diagnostics& diags, const BuildOptions& options)
{
    return Builder(program, sema, diags, options).run();
}

} // namespace ecl::efsm
