// Extended finite state machine produced from the reactive kernel IR.
//
// A control state is the set of pause points where control rests (plus a
// distinguished boot state for the first reaction and a dead state after
// the module terminates). Each state owns a binary decision tree over
//  * input-signal presence tests, and
//  * data predicates (C expressions evaluated against the variable store),
// whose leaves carry the ordered list of actions for that reaction (data
// statements and signal emissions) and the successor state.
//
// Local/output signal tests never appear in the tree: static causality
// (emitter-ordered par branches) resolves them at build time — exactly the
// "case analysis done by the Esterel compiler" the paper credits for fast
// reactions (Section 3, Compilation).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/ir/ir.h"
#include "src/sema/sema.h"
#include "src/support/bitset.h"
#include "src/support/diagnostics.h"

namespace ecl::efsm {

struct Action {
    enum class Kind { Data, Emit };
    Kind kind = Kind::Data;
    int dataActionId = -1;                  ///< Kind::Data
    int signal = -1;                        ///< Kind::Emit
    const ast::Expr* valueExpr = nullptr;   ///< Kind::Emit (null when pure)
};

struct TransNode {
    /// Actions executed when control ENTERS this node, before its test (or
    /// before the leaf's transition completes). Reactions interleave data
    /// actions with data-predicate tests, so actions live on tree edges —
    /// `cnt++` must run before `cnt < PKTSIZE` is evaluated.
    std::vector<Action> prefixActions;

    // Test node (isLeaf == false): exactly one of the two is set.
    bool testsSignal = false;
    int signal = -1;                      ///< input signal presence test
    const ast::Expr* dataCond = nullptr;  ///< data predicate
    std::unique_ptr<TransNode> onTrue;
    std::unique_ptr<TransNode> onFalse;

    // Leaf (isLeaf == true). The leaf's own prefixActions are the trailing
    // actions of the reaction (those after the last test).
    bool isLeaf = false;
    int nextState = -1;
    bool terminates = false; ///< Module finished in this reaction.
    /// Statically-unverifiable instantaneous-loop path: the symbolic
    /// unrolling limit was hit, so this leaf traps at runtime if a real
    /// execution ever reaches it (it should not, for data-consistent
    /// programs like the paper's Figure 1).
    bool runtimeError = false;
};

struct State {
    int id = -1;
    PauseSet config;
    bool boot = false;
    bool dead = false;
    /// True when the config holds a delta pause (await()): the module must
    /// react next instant even with no input events.
    bool autoResume = false;
    std::unique_ptr<TransNode> tree;
};

/// EFSM statistics used by the cost model and the benches.
struct EfsmStats {
    std::size_t states = 0;
    std::size_t leaves = 0;
    std::size_t testNodes = 0;
    std::size_t actionsTotal = 0;
    std::size_t maxTreeDepth = 0;
};

class Efsm {
public:
    std::vector<State> states;
    int initialState = 0;
    int deadState = -1;

    /// The signal table of the module (not owned).
    const ModuleSema* sema = nullptr;
    /// The lowered program (not owned) — actions index into it.
    const ir::ReactiveProgram* program = nullptr;

    [[nodiscard]] EfsmStats stats() const;
    [[nodiscard]] std::string describe() const; ///< Human-readable dump.
};

struct BuildOptions {
    std::size_t maxStates = 200000;
    std::size_t maxOutcomesPerReaction = 100000;
    /// Max starts of one loop node within a single instant before the
    /// path becomes a runtime trap. 2 covers the legitimate case (body
    /// exits via abort/trap, loop restarts once, then pauses); anything
    /// deeper is a statically-unverifiable instantaneous loop.
    int loopIterationLimit = 2;
};

/// Builds the EFSM by symbolic reaction exploration. Throws EclError on
/// instantaneous loops, state explosion beyond the limits, and internal
/// inconsistencies. `program` and `sema` must outlive the returned Efsm.
Efsm buildEfsm(const ir::ReactiveProgram& program, const ModuleSema& sema,
               Diagnostics& diags, const BuildOptions& options = {});

} // namespace ecl::efsm
