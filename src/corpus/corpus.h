// The persisted scenario corpus: versioned workload fixtures under
// tests/corpus/.
//
// A scenario names a compilable module (a seeded generator program, a
// deterministic shaped stress program, or an embedded paper source) plus
// a stimulus profile — the real-world traffic shapes the runtime must
// serve: random background traffic, bursty windows with idle gaps,
// sparse keep-alive streams, full-width valued payloads, and dense
// lockstep. Driving any engine with runStimulus() yields a canonical
// trace string; its fnv1a64 digest is pinned in the scenario file, so
// every checked-in scenario is simultaneously
//  * a differential fixture (flat VM vs tree-walk oracle, -O0 vs -O2),
//  * a cross-version behavior pin (digest drift fails test_corpus), and
//  * a generator-stability pin (inline source must equal regeneration).
//
// File format (*.scn, text, one scenario per file):
//   # ecl corpus scenario v1
//   name <slug>                  kind generated|shaped|paper_stack|paper_buffer
//   shape deep_preempt|wide_par|payload   (shaped only)
//   module <module>              seed/depth <generator or shape params>
//   profile <stimulus>           stim_seed <n>      instants <n>
//   oracle_digest <hex16>        source <<< ... >>> (inline ECL text)
//
// tools/corpusgen regenerates/extends the corpus deterministically and
// verifies it for drift (--check); tests/test_corpus.cpp sweeps every
// scenario differentially and enforces the empty-quarantine contract
// (tests/corpus/QUARANTINE).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/engine.h"

namespace ecl {
class CompiledModule;
}

namespace ecl::corpus {

/// Stimulus shapes (see file comment). Deterministic per (profile, seed).
enum class Profile {
    Random,   ///< Pure p=1/2, scalars p=1/4 (the property-suite shape).
    Bursty,   ///< Dense 6-instant bursts separated by idle gaps.
    Sparse,   ///< Keep-alive traffic: pure p=1/16, valued p=1/32.
    Payload,  ///< Every valued input fires every instant, full-width
              ///< random bytes (aggregates included).
    Lockstep, ///< Every input present every instant.
};

const char* profileName(Profile p);
/// Throws EclError on an unknown name.
Profile profileFromName(const std::string& name);

struct Scenario {
    static constexpr int kFormatVersion = 1;

    std::string name;
    std::string kind;  ///< generated | shaped | paper_stack | paper_buffer.
    std::string shape; ///< deep_preempt | wide_par | payload (shaped only).
    std::string module = "m";
    unsigned seed = 0; ///< ProgramGen seed (generated only).
    int depth = 0;     ///< ProgramGen depth / shaped size parameter.
    Profile profile = Profile::Random;
    unsigned stimSeed = 1;
    int instants = 100;
    std::string oracleDigest; ///< hex16 fnv1a64 of the oracle trace.
    std::string source;       ///< Inline ECL text ("" for paper kinds).
};

std::string serializeScenario(const Scenario& s);
/// Throws EclError on malformed text or an unknown format version.
Scenario parseScenario(const std::string& text);

/// All *.scn files in `dir`, sorted by filename. Throws EclError when
/// the directory is missing or a file fails to parse.
std::vector<Scenario> loadCorpusDir(const std::string& dir);

/// Scenario names listed in `dir`/QUARANTINE (comments/# and blank lines
/// skipped). The corpus contract is that this list stays EMPTY — the
/// mechanism exists so a genuinely blocked scenario can be parked
/// without deleting evidence, and test_corpus fails until it is drained.
std::vector<std::string> loadQuarantine(const std::string& dir);

/// The scenario's ECL source: inline text, or the embedded paper source
/// for paper_* kinds.
std::string scenarioSource(const Scenario& s);

/// Regenerates the canonical source for generated/shaped kinds from the
/// scenario's parameters ("" for paper kinds). Inline text differing
/// from this is generator drift.
std::string regenerateSource(const Scenario& s);

/// Compiles the scenario's module at `optLevel`.
std::shared_ptr<CompiledModule> compileScenario(const Scenario& s,
                                                int optLevel = 2);

/// Drives `eng` with the scenario stimulus: one boot reaction, then
/// `instants` instants of profile-shaped inputs, sampling every output
/// (presence + value), termination and auto-resume per instant. Returns
/// the canonical trace string ("TRAP" suffix on a runtime trap).
/// Identical strings mean behavior-identical runs; pin fnv1a64 digests.
std::string runStimulus(rt::ReactiveEngine& eng, Profile profile,
                        unsigned seed, int instants);

/// runStimulus on a fresh tree-walking (-O0) engine — the pinned oracle.
std::string oracleTrace(const Scenario& s);

/// hex16 fnv1a64 of oracleTrace().
std::string computeOracleDigest(const Scenario& s);

} // namespace ecl::corpus
