#include "src/corpus/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "src/corpus/program_gen.h"
#include "src/support/strings.h"

namespace ecl::corpus {

const char* profileName(Profile p)
{
    switch (p) {
    case Profile::Random: return "random";
    case Profile::Bursty: return "bursty";
    case Profile::Sparse: return "sparse";
    case Profile::Payload: return "payload";
    case Profile::Lockstep: return "lockstep";
    }
    return "?";
}

Profile profileFromName(const std::string& name)
{
    for (Profile p : {Profile::Random, Profile::Bursty, Profile::Sparse,
                      Profile::Payload, Profile::Lockstep})
        if (name == profileName(p)) return p;
    throw EclError("corpus: unknown stimulus profile '" + name + "'");
}

std::string serializeScenario(const Scenario& s)
{
    std::ostringstream out;
    out << "# ecl corpus scenario v" << Scenario::kFormatVersion << "\n";
    out << "name " << s.name << "\n";
    out << "kind " << s.kind << "\n";
    if (!s.shape.empty()) out << "shape " << s.shape << "\n";
    out << "module " << s.module << "\n";
    if (s.seed) out << "seed " << s.seed << "\n";
    if (s.depth) out << "depth " << s.depth << "\n";
    out << "profile " << profileName(s.profile) << "\n";
    out << "stim_seed " << s.stimSeed << "\n";
    out << "instants " << s.instants << "\n";
    out << "oracle_digest " << s.oracleDigest << "\n";
    if (!s.source.empty()) {
        out << "source <<<\n" << s.source;
        if (s.source.back() != '\n') out << '\n';
        out << ">>>\n";
    }
    return out.str();
}

Scenario parseScenario(const std::string& text)
{
    Scenario s;
    std::istringstream is(text);
    std::string line;
    bool sawHeader = false;
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        if (line[0] == '#') {
            if (!sawHeader) {
                if (line.find("ecl corpus scenario v" +
                              std::to_string(Scenario::kFormatVersion)) ==
                    std::string::npos)
                    throw EclError("corpus: unsupported scenario header '" +
                                   line + "'");
                sawHeader = true;
            }
            continue;
        }
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "name") {
            ls >> s.name;
        } else if (key == "kind") {
            ls >> s.kind;
        } else if (key == "shape") {
            ls >> s.shape;
        } else if (key == "module") {
            ls >> s.module;
        } else if (key == "seed") {
            ls >> s.seed;
        } else if (key == "depth") {
            ls >> s.depth;
        } else if (key == "profile") {
            std::string p;
            ls >> p;
            s.profile = profileFromName(p);
        } else if (key == "stim_seed") {
            ls >> s.stimSeed;
        } else if (key == "instants") {
            ls >> s.instants;
        } else if (key == "oracle_digest") {
            ls >> s.oracleDigest;
        } else if (key == "source") {
            std::string marker;
            ls >> marker;
            if (marker != "<<<")
                throw EclError("corpus: expected 'source <<<' in scenario");
            std::string body;
            while (std::getline(is, line)) {
                if (line == ">>>") break;
                body += line;
                body += '\n';
            }
            s.source = std::move(body);
        } else {
            throw EclError("corpus: unknown scenario key '" + key + "'");
        }
    }
    if (!sawHeader)
        throw EclError("corpus: missing scenario header comment");
    if (s.name.empty() || s.kind.empty())
        throw EclError("corpus: scenario missing name/kind");
    return s;
}

std::vector<Scenario> loadCorpusDir(const std::string& dir)
{
    namespace fs = std::filesystem;
    if (!fs::is_directory(dir))
        throw EclError("corpus: not a directory: " + dir);
    std::vector<fs::path> files;
    for (const fs::directory_entry& e : fs::directory_iterator(dir))
        if (e.is_regular_file() && e.path().extension() == ".scn")
            files.push_back(e.path());
    std::sort(files.begin(), files.end());
    std::vector<Scenario> out;
    out.reserve(files.size());
    for (const fs::path& p : files) {
        std::ifstream in(p);
        std::stringstream buf;
        buf << in.rdbuf();
        try {
            out.push_back(parseScenario(buf.str()));
        } catch (const EclError& e) {
            throw EclError(std::string(e.what()) + " (in " + p.string() +
                           ")");
        }
    }
    return out;
}

std::vector<std::string> loadQuarantine(const std::string& dir)
{
    std::vector<std::string> out;
    std::ifstream in(dir + "/QUARANTINE");
    std::string line;
    while (std::getline(in, line)) {
        std::size_t hash = line.find('#');
        if (hash != std::string::npos) line.resize(hash);
        std::istringstream ls(line);
        std::string name;
        if (ls >> name) out.push_back(name);
    }
    return out;
}

std::string scenarioSource(const Scenario& s)
{
    if (s.kind == "paper_stack") return paper::protocolStackSource();
    if (s.kind == "paper_buffer") return paper::audioBufferSource();
    if (s.source.empty())
        throw EclError("corpus: scenario '" + s.name +
                       "' has no inline source");
    return s.source;
}

std::string regenerateSource(const Scenario& s)
{
    if (s.kind == "generated") {
        ProgramGen gen(s.seed, s.depth > 0 ? s.depth : 3);
        return gen.generate();
    }
    if (s.kind == "shaped") {
        if (s.shape == "deep_preempt") return deepPreemptProgram(s.depth);
        if (s.shape == "wide_par") return wideParProgram(s.depth);
        if (s.shape == "pure_par") return pureParProgram(s.depth);
        if (s.shape == "payload") return largePayloadProgram(s.depth);
        throw EclError("corpus: unknown shape '" + s.shape + "'");
    }
    return {};
}

std::shared_ptr<CompiledModule> compileScenario(const Scenario& s,
                                                int optLevel)
{
    Compiler compiler(scenarioSource(s));
    CompileOptions opts;
    opts.optLevel = optLevel;
    return compiler.compile(s.module, opts);
}

namespace {

/// One instant of profile-shaped inputs. Deterministic: the rng draw
/// sequence depends only on (profile, seed, sema) — every engine driven
/// with the same triple sees identical inputs.
void applyProfileInputs(std::mt19937& rng, const ModuleSema& sema,
                        rt::ReactiveEngine& eng, Profile profile, int t)
{
    auto randomValue = [&](const SignalInfo& s) {
        Value v(s.valueType);
        for (std::size_t i = 0; i < v.size(); ++i)
            v.data()[i] = static_cast<std::uint8_t>(rng());
        return v;
    };
    const bool inBurst = (t % 16) < 6;
    for (const SignalInfo& s : sema.signals) {
        if (s.dir != SignalDir::Input) continue;
        switch (profile) {
        case Profile::Random:
            if (s.pure) {
                if (rng() & 1u) eng.setInput(s.index);
            } else if ((rng() & 3u) == 0) {
                if (s.valueType->isScalar())
                    eng.setInputScalar(
                        s.index, static_cast<std::int64_t>(rng() % 7));
                else
                    eng.setInputValue(s.index, randomValue(s));
            }
            break;
        case Profile::Bursty:
            if (!inBurst) {
                rng(); // keep the draw sequence aligned across windows
                break;
            }
            if (s.pure) {
                if ((rng() & 3u) != 0) eng.setInput(s.index);
            } else if (rng() & 1u) {
                if (s.valueType->isScalar())
                    eng.setInputScalar(
                        s.index, static_cast<std::int64_t>(rng() % 256));
                else
                    eng.setInputValue(s.index, randomValue(s));
            }
            break;
        case Profile::Sparse:
            if (s.pure) {
                if (rng() % 16 == 0) eng.setInput(s.index);
            } else if (rng() % 32 == 0) {
                if (s.valueType->isScalar())
                    eng.setInputScalar(
                        s.index, static_cast<std::int64_t>(rng() % 7));
                else
                    eng.setInputValue(s.index, randomValue(s));
            }
            break;
        case Profile::Payload:
            if (s.pure) {
                if ((rng() & 3u) == 0) eng.setInput(s.index);
            } else {
                eng.setInputValue(s.index, randomValue(s));
            }
            break;
        case Profile::Lockstep:
            if (s.pure)
                eng.setInput(s.index);
            else if (s.valueType->isScalar())
                eng.setInputScalar(s.index,
                                   static_cast<std::int64_t>(t & 0xff));
            else
                eng.setInputValue(s.index, randomValue(s));
            break;
        }
    }
}

} // namespace

std::string runStimulus(rt::ReactiveEngine& eng, Profile profile,
                        unsigned seed, int instants)
{
    const ModuleSema& sema = eng.moduleSema();
    std::mt19937 rng(seed);
    std::ostringstream trace;
    try {
        eng.react(); // boot
        for (int t = 0; t < instants; ++t) {
            applyProfileInputs(rng, sema, eng, profile, t);
            eng.react();
            for (const SignalInfo& s : sema.signals) {
                if (s.dir != SignalDir::Output) continue;
                bool present = eng.outputPresent(s.index);
                trace << (present ? '1' : '0');
                if (!s.pure && present) {
                    Value v = eng.outputValue(s.index);
                    if (v.type()->isScalar()) {
                        trace << '=' << v.toInt();
                    } else {
                        trace << '=';
                        for (std::size_t i = 0; i < v.size(); ++i)
                            trace << std::hex << int(v.data()[i] >> 4)
                                  << int(v.data()[i] & 0xf) << std::dec;
                    }
                }
            }
            trace << (eng.terminated() ? 'T' : '.')
                  << (eng.needsAutoResume() ? 'a' : ' ');
        }
    } catch (const EclError&) {
        trace << "TRAP";
    }
    return trace.str();
}

std::string oracleTrace(const Scenario& s)
{
    CompileOptions opts;
    opts.optLevel = 0;
    Compiler compiler(scenarioSource(s));
    auto mod = compiler.compile(s.module, opts);
    auto eng = mod->makeEngine(EngineKind::TreeWalk);
    return runStimulus(*eng, s.profile, s.stimSeed, s.instants);
}

std::string computeOracleDigest(const Scenario& s)
{
    return hex64(fnv1a64(oracleTrace(s)));
}

} // namespace ecl::corpus
