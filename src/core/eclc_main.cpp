// eclc — the ECL command-line compiler and verifier.
//
// Usage:
//   eclc [options] file.ecl
//   eclc [options] --paper stack|buffer
//
// Options:
//   --module NAME      top module to compile (default: last module in file)
//   --emit KIND        artifact: c | esterel | verilog | efsm | ir | stats
//                      (default: c). May be repeated.
//   --emit-c           shorthand for --emit c (the AOT translation unit)
//   -O0 | -O1 | -O2    post-flatten optimization level (default -O2):
//                      0 = flat tables/bytecode verbatim, 1 = chunk dedup
//                      + state minimization (counter-exact), 2 = + the
//                      bytecode optimizer (see src/opt/opt.h)
//   --opt-stats        print the optimization pipeline report
//   --async            compile every module separately and report per-task
//                      sizes instead of collapsing into one EFSM
//   -o PREFIX          write artifacts to PREFIX.<ext> instead of stdout
//   --paper NAME       use an embedded paper source (stack | buffer)
//                      instead of a file
//
// Verification (src/verify — explicit-state reachability + monitors):
//   --verify           explore the top module's state space instead of
//                      emitting artifacts
//   --monitor FILE     attach FILE's last module as an assertion monitor
//                      (inputs wired by name; emitting a *violation*
//                      signal flags a counterexample)
//   --depth N          exploration depth bound in instants (default
//                      unbounded)
//   --max-states N     interned-state cap (default 1M)
//   --threads N        worker threads for the BFS frontier (default 1)
//   --dfs              depth-first exploration (lower memory, traces not
//                      minimal)
//   --store KIND       state store: exact | compressed | bitstate
//                      (default exact; --store=KIND also accepted).
//                      bitstate is LOSSY — a clean run prints an explicit
//                      bounded/lossy line and exits 0, meaning "no
//                      violation found", never "verified"
//   --store-mem N      state-store memory budget in bytes (K/M/G suffix
//                      accepted). Sizes the bitstate table; exact and
//                      compressed stores stop at the budget (exit 4)
//   --por              partial-order reduction over independent pure
//                      input letters (sound; see src/verify/explorer.h)
//   --native-succ      compute design successors with the AOT-compiled
//                      reaction when the native backend is available
//                      (bit-exact; silently falls back to the VM)
//
// Trace record/replay (src/runtime/trace.h + the corpus stimulus
// profiles):
//   --record-trace FILE  drive the top module with a stimulus profile and
//                        write the full input/output stream to FILE
//   --trace-text         write the text trace format (default: binary)
//   --stim-profile NAME  random | bursty | sparse | payload | lockstep
//                        (default random)
//   --stim-instants N    instants to record (default 100)
//   --stim-seed N        stimulus seed (default 1)
//   --replay-trace FILE  replay FILE on every representation of the
//                        traced module (flat -O2, flat -O0, tree walk,
//                        batch instance) and check outputs bit-exactly
//                        against the recording; exit 1 on any divergence
//
// AOT native backend (src/runtime/native_module.h):
//   --aot              compile the top module's generated C with the host
//                      C compiler, dlopen it, and differentially check the
//                      native engine against the bytecode VM of the same
//                      compile (trace + packed final state bit-exact over
//                      a stimulus run). Exit 0 on agreement; exit 1 when
//                      the native backend is unavailable or diverges.
//                      Honors --stim-profile / --stim-instants /
//                      --stim-seed and -O0|-O1|-O2.
//
// Exit codes (asserted by tests/test_eclc_cli.cpp):
//   0  success; with --verify: state space exhausted, no violation
//   1  file / parse / semantic errors
//   2  usage errors
//   3  --verify found a violation (counterexample printed + replayed)
//   4  --verify hit an exploration bound (depth/states/alphabet/memory)
//      without finding a violation — the result is inconclusive. The
//      partial ExploreStats always print before this exit. A bitstate
//      run never exits 4: its result is bounded/lossy by construction,
//      so a violation-free run reports that explicitly and exits 0
//
// Mirrors the paper's flow: one ECL file in; Esterel + C (+ glue) out; the
// EFSM and synthesis artifacts derived from them — plus the verification
// workload the synchronous semantics was chosen for.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/codegen/c_gen.h"
#include "src/codegen/esterel_gen.h"
#include "src/codegen/verilog_gen.h"
#include "src/core/compiler.h"
#include "src/core/paper_sources.h"
#include "src/corpus/corpus.h"
#include "src/cost/cost.h"
#include "src/ir/ir.h"
#include "src/runtime/trace.h"
#include "src/verify/replay.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitViolation = 3;
constexpr int kExitBoundReached = 4;

struct Options {
    std::string file;
    std::string paper;
    std::string module;
    std::vector<std::string> emits;
    std::string outPrefix;
    bool asyncMode = false;
    bool optimize = false;
    int optLevel = 2;
    bool optStats = false;
    bool verify = false;
    std::string monitorFile;
    int depth = -1;
    long long maxStates = -1;
    int threads = 1;
    bool dfs = false;
    std::string store;
    ecl::verify::StoreKind storeKind = ecl::verify::StoreKind::Exact;
    long long storeMem = -1;
    bool por = false;
    bool nativeSucc = false;
    bool aot = false;
    std::string recordTrace;
    std::string replayTrace;
    std::string stimProfile = "random";
    int stimInstants = 100;
    unsigned stimSeed = 1;
    bool traceText = false;
};

int usage()
{
    std::fprintf(stderr,
                 "usage: eclc [--module NAME] [--emit c|esterel|verilog|"
                 "efsm|ir|stats]... [--emit-c] [-O0|-O1|-O2] [--opt-stats]\n"
                 "            [--async] [--optimize] [-o PREFIX] [--aot]\n"
                 "            [--verify [--monitor FILE] [--depth N] "
                 "[--max-states N] [--threads N] [--dfs]\n"
                 "                      [--store exact|compressed|bitstate] "
                 "[--store-mem N[K|M|G]] [--por] [--native-succ]]\n"
                 "            [--record-trace FILE [--trace-text] "
                 "[--stim-profile NAME] [--stim-instants N] "
                 "[--stim-seed N]]\n"
                 "            [--replay-trace FILE]\n"
                 "            file.ecl | --paper stack|buffer\n"
                 "exit codes: 0 ok/verified, 1 compile error, 2 usage, "
                 "3 violation found, 4 verify bound reached\n");
    return kExitUsage;
}

void writeArtifact(const Options& opt, const std::string& ext,
                   const std::string& text)
{
    if (opt.outPrefix.empty()) {
        std::printf("%s", text.c_str());
        return;
    }
    std::string path = opt.outPrefix + "." + ext;
    std::ofstream out(path);
    out << text;
    std::fprintf(stderr, "eclc: wrote %s (%zu bytes)\n", path.c_str(),
                 text.size());
}

std::string statsText(const ecl::CompiledModule& mod)
{
    ecl::cost::CostModel cm;
    auto st = mod.machine().stats();
    auto sz = cm.moduleSize(mod.machine());
    std::ostringstream out;
    out << "module " << mod.name() << ":\n"
        << "  EFSM states:        " << st.states << "\n"
        << "  decision nodes:     " << st.testNodes << "\n"
        << "  transition leaves:  " << st.leaves << "\n"
        << "  max tree depth:     " << st.maxTreeDepth << "\n"
        << "  data actions:       " << mod.lowerStats().dataActions << "\n"
        << "  extracted loops:    " << mod.lowerStats().extractedLoops << "\n"
        << "  pause points:       " << mod.lowerStats().pauses << "\n"
        << "  est. code size:     " << sz.codeBytes << " B (R3000 model)\n"
        << "  est. data size:     " << sz.dataBytes << " B\n";
    return out.str();
}

/// "65536", "64K", "4M", "1G" -> bytes; <= 0 on malformed input.
long long parseByteSize(const char* s)
{
    char* end = nullptr;
    long long v = std::strtoll(s, &end, 10);
    if (end == s || v <= 0) return -1;
    switch (*end) {
    case '\0': return v;
    case 'k': case 'K': ++end; v *= 1024; break;
    case 'm': case 'M': ++end; v *= 1024 * 1024; break;
    case 'g': case 'G': ++end; v *= 1024 * 1024 * 1024; break;
    default: return -1;
    }
    return *end == '\0' ? v : -1;
}

bool readFile(const std::string& path, std::string& out)
{
    std::ifstream in(path);
    if (!in) return false;
    std::stringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

const char* violationKindName(ecl::verify::Violation::Kind k)
{
    switch (k) {
    case ecl::verify::Violation::Kind::MonitorSignal:
        return "monitor signal";
    case ecl::verify::Violation::Kind::DesignSignal: return "design signal";
    case ecl::verify::Violation::Kind::Predicate: return "predicate";
    case ecl::verify::Violation::Kind::RuntimeError: return "runtime error";
    }
    return "?";
}

int runVerify(const Options& opt, ecl::Compiler& compiler,
              const std::string& top)
{
    ecl::CompileOptions copts;
    copts.optimizeEfsm = opt.optimize;
    copts.optLevel = opt.optLevel;
    auto mod = compiler.compile(top, copts);
    if (!mod->hasFlatProgram()) {
        std::fprintf(stderr,
                     "eclc: module '%s' has no flat program; cannot verify\n",
                     top.c_str());
        return kExitError;
    }
    if (opt.optStats) std::printf("%s", mod->optStats().report().c_str());

    ecl::verify::ExplorerOptions vopts;
    vopts.threads = opt.threads;
    if (opt.depth > 0) vopts.maxDepth = opt.depth;
    if (opt.maxStates > 0)
        vopts.maxStates = static_cast<std::uint32_t>(opt.maxStates);
    if (opt.dfs) vopts.strategy = ecl::verify::Strategy::Dfs;
    vopts.storeKind = opt.storeKind;
    if (opt.storeMem > 0)
        vopts.storeBudgetBytes = static_cast<std::uint64_t>(opt.storeMem);
    vopts.partialOrder = opt.por;
    vopts.nativeSuccessors = opt.nativeSucc;
    auto explorer = mod->makeExplorer(vopts);

    std::shared_ptr<ecl::CompiledModule> monMod;
    std::unique_ptr<ecl::Compiler> monCompiler;
    if (!opt.monitorFile.empty()) {
        std::string src;
        if (!readFile(opt.monitorFile, src)) {
            std::fprintf(stderr, "eclc: cannot open monitor file %s\n",
                         opt.monitorFile.c_str());
            return kExitError;
        }
        monCompiler = std::make_unique<ecl::Compiler>(src);
        std::vector<std::string> names = monCompiler->moduleNames();
        if (names.empty()) {
            std::fprintf(stderr, "eclc: no modules in monitor file %s\n",
                         opt.monitorFile.c_str());
            return kExitError;
        }
        monMod = monCompiler->compile(names.back());
        if (!monMod->hasFlatProgram()) {
            std::fprintf(stderr,
                         "eclc: monitor module '%s' has no flat program\n",
                         names.back().c_str());
            return kExitError;
        }
        monMod->attachAsMonitor(*explorer);
        std::fprintf(stderr, "eclc: monitor '%s' attached to '%s'\n",
                     names.back().c_str(), top.c_str());
    }

    ecl::verify::ExploreResult res = explorer->run();
    const ecl::verify::ExploreStats& st = res.stats;
    std::printf("verify %s: %llu states (%llu control), %llu transitions, "
                "depth %d, peak frontier %llu, %.0f states/s, %s\n",
                top.c_str(), static_cast<unsigned long long>(st.states),
                static_cast<unsigned long long>(st.controlStates),
                static_cast<unsigned long long>(st.transitions),
                st.depthReached,
                static_cast<unsigned long long>(st.peakFrontier),
                st.statesPerSec,
                st.complete
                    ? "complete"
                    : (res.violated
                           ? "stopped at violation"
                           : (st.alphabetTruncated
                                  ? "incomplete (alphabet truncated)"
                                  : "incomplete (bound reached)")));
    // The stats above print on EVERY path — a bound-reached (exit 4) or
    // violated run still reports its partial exploration.
    std::printf("store %s: %llu bytes%s\n",
                ecl::verify::storeKindName(st.storeKind),
                static_cast<unsigned long long>(st.storeMemoryBytes),
                st.lossyStore ? ", lossy" : "");
    if (opt.por)
        std::printf("por: %llu expansions skipped\n",
                    static_cast<unsigned long long>(st.lettersReduced));
    if (opt.nativeSucc)
        std::printf("native successors: %s\n",
                    st.usedNativeSuccessors ? "yes" : "no (VM fallback)");

    if (!res.violated) {
        if (st.lossyStore) {
            // Honest lossy reporting: bitstate hash collisions may have
            // merged distinct states, so a clean sweep is coverage, not
            // proof — and never exit 4: lossiness IS the bound.
            std::printf("result: no violation found (bounded/lossy "
                        "bitstate search, not a proof)\n");
            return kExitOk;
        }
        return st.complete ? kExitOk : kExitBoundReached;
    }

    const ecl::verify::Violation& v = res.violation;
    std::printf("VIOLATION (%s) '%s' at depth %d\n",
                violationKindName(v.kind), v.what.c_str(), v.depth);
    std::printf("counterexample (%zu instants):\n%s", res.trace.size(),
                ecl::verify::formatTrace(mod->moduleSema(), res.trace)
                    .c_str());

    // Confirm on the production engine before claiming the bug is real.
    auto designEngine = mod->makeSyncEngine();
    std::unique_ptr<ecl::rt::SyncEngine> monitorEngine;
    if (monMod) monitorEngine = monMod->makeSyncEngine();
    ecl::verify::ReplayOutcome rp = ecl::verify::replayCounterexample(
        *designEngine, monitorEngine.get(), res);
    std::printf("replay: %s\n", rp.detail.c_str());
    if (!rp.reproduced)
        std::fprintf(stderr,
                     "eclc: WARNING: counterexample did not replay on "
                     "SyncEngine\n");
    return kExitViolation;
}

int runRecord(const Options& opt, ecl::Compiler& compiler,
              const std::string& top)
{
    ecl::corpus::Profile profile =
        ecl::corpus::profileFromName(opt.stimProfile);
    ecl::CompileOptions copts;
    copts.optimizeEfsm = opt.optimize;
    copts.optLevel = opt.optLevel;
    auto mod = compiler.compile(top, copts);
    auto eng = mod->makeEngine();
    ecl::rt::RecordingEngine rec(*eng, top);
    ecl::corpus::runStimulus(rec, profile, opt.stimSeed, opt.stimInstants);
    ecl::rt::writeTraceFile(rec.trace(), opt.recordTrace,
                            opt.traceText ? ecl::rt::TraceFormat::Text
                                          : ecl::rt::TraceFormat::Binary);
    std::fprintf(stderr,
                 "eclc: recorded %zu instants of '%s' (%s stimulus, seed "
                 "%u) to %s\n",
                 rec.trace().instants.size(), top.c_str(),
                 opt.stimProfile.c_str(), opt.stimSeed,
                 opt.recordTrace.c_str());
    return kExitOk;
}

int runReplay(const Options& opt, ecl::Compiler& compiler)
{
    ecl::rt::InputTrace trace = ecl::rt::readTraceFile(opt.replayTrace);
    const std::string top =
        opt.module.empty() ? trace.module : opt.module;

    ecl::CompileOptions o2opts;
    o2opts.optLevel = 2;
    ecl::CompileOptions o0opts;
    o0opts.optLevel = 0;
    auto mod2 = compiler.compile(top, o2opts);
    auto mod0 = compiler.compile(top, o0opts);

    struct Row {
        const char* name;
        ecl::rt::TraceReplayResult r;
    };
    std::vector<Row> rows;
    {
        auto e = mod2->makeEngine();
        rows.push_back({"flat -O2", ecl::rt::replayTrace(*e, trace)});
    }
    {
        auto e = mod0->makeEngine();
        rows.push_back({"flat -O0", ecl::rt::replayTrace(*e, trace)});
    }
    {
        auto e = mod0->makeEngine(ecl::EngineKind::TreeWalk);
        rows.push_back({"tree-walk", ecl::rt::replayTrace(*e, trace)});
    }
    {
        auto b = mod2->makeBatchEngine(1);
        rows.push_back({"batch[0] -O2",
                        ecl::rt::replayTrace(*b, 0, trace)});
    }

    bool ok = true;
    for (const Row& row : rows) {
        std::printf("replay %-13s %zu instants, output digest %s: %s\n",
                    row.name, row.r.instants, row.r.outputDigest.c_str(),
                    row.r.outputsMatch ? "outputs match recording"
                                       : row.r.mismatch.c_str());
        ok = ok && row.r.outputsMatch;
    }
    // Cross-representation agreement: identical output digests, identical
    // final data bytes (control ids are renumbered at -O1+, so only the
    // same-compile batch comparison checks the full packed state).
    for (std::size_t i = 1; i < rows.size(); ++i) {
        if (rows[i].r.outputDigest != rows[0].r.outputDigest) {
            std::printf("DIVERGENCE: %s output digest differs from %s\n",
                        rows[i].name, rows[0].name);
            ok = false;
        }
        if (rows[i].r.finalData() != rows[0].r.finalData()) {
            std::printf("DIVERGENCE: %s final data state differs from %s\n",
                        rows[i].name, rows[0].name);
            ok = false;
        }
    }
    if (rows.back().r.finalState != rows.front().r.finalState) {
        std::printf("DIVERGENCE: batch packed state differs from flat -O2\n");
        ok = false;
    }
    std::printf("replay: %s\n",
                ok ? "all representations bit-exact" : "DIVERGED");
    return ok ? kExitOk : kExitError;
}

int runAot(const Options& opt, ecl::Compiler& compiler,
           const std::string& top)
{
    ecl::CompileOptions copts;
    copts.optimizeEfsm = opt.optimize;
    copts.optLevel = opt.optLevel;
    auto mod = compiler.compile(top, copts);
    if (!mod->hasFlatProgram()) {
        std::fprintf(stderr,
                     "eclc: module '%s' has no flat program; cannot AOT\n",
                     top.c_str());
        return kExitError;
    }
    if (opt.optStats) std::printf("%s", mod->optStats().report().c_str());

    auto native = mod->makeEngine(ecl::EngineKind::Native);
    if (std::string(native->backendName()) != "native") {
        // Recover the precise failure (no host compiler, dlopen error,
        // ...) that makeEngine's graceful fallback swallowed.
        std::string why = "unknown";
        try {
            mod->nativeModule();
        } catch (const ecl::EclError& e) {
            why = e.what();
        }
        std::fprintf(stderr, "eclc: native backend unavailable for '%s': %s\n",
                     top.c_str(), why.c_str());
        return kExitError;
    }
    std::fprintf(stderr, "eclc: AOT object %s\n",
                 mod->nativeModule()->objectPath().c_str());

    // Differential acceptance run: the dlopened reaction function must be
    // bit-exact — emitted outputs per instant AND packed final state —
    // against the bytecode VM of the very same compile.
    ecl::corpus::Profile profile =
        ecl::corpus::profileFromName(opt.stimProfile);
    std::string nativeTrace = ecl::corpus::runStimulus(
        *native, profile, opt.stimSeed, opt.stimInstants);
    auto vm = mod->makeEngine(ecl::EngineKind::Flat);
    std::string vmTrace = ecl::corpus::runStimulus(*vm, profile,
                                                   opt.stimSeed,
                                                   opt.stimInstants);
    bool tracesOk = nativeTrace == vmTrace;
    bool stateOk = native->packState() == vm->packState();
    std::printf("aot %s: %d instants (%s stimulus, seed %u, -O%d): "
                "traces %s, final state %s\n",
                top.c_str(), opt.stimInstants, opt.stimProfile.c_str(),
                opt.stimSeed, opt.optLevel,
                tracesOk ? "bit-exact" : "DIVERGED",
                stateOk ? "bit-exact" : "DIVERGED");
    if (!tracesOk) {
        std::printf("--- native trace ---\n%s--- vm trace ---\n%s",
                    nativeTrace.c_str(), vmTrace.c_str());
    }
    return tracesOk && stateOk ? kExitOk : kExitError;
}

int emitAll(const Options& opt, const ecl::CompiledModule& mod)
{
    for (const std::string& kind : opt.emits) {
        if (kind == "c") {
            writeArtifact(opt, "c", ecl::codegen::generateC(mod));
        } else if (kind == "esterel") {
            writeArtifact(opt, "strl",
                          ecl::codegen::generateEsterel(
                              mod.reactiveProgram(), mod.moduleSema(),
                              mod.name()));
            writeArtifact(opt, "data.c",
                          ecl::codegen::generateEsterelDataFile(
                              mod.reactiveProgram(), mod.moduleSema(),
                              mod.name()));
        } else if (kind == "verilog") {
            ecl::codegen::HwReport hw = ecl::codegen::generateVerilog(mod);
            if (!hw.synthesizable) {
                std::fprintf(stderr, "eclc: %s\n", hw.reason.c_str());
                return 1;
            }
            writeArtifact(opt, "v", hw.verilog);
        } else if (kind == "efsm") {
            writeArtifact(opt, "efsm", mod.machine().describe());
        } else if (kind == "ir") {
            writeArtifact(opt, "ir",
                          ecl::ir::printIr(*mod.reactiveProgram().root));
        } else if (kind == "stats") {
            writeArtifact(opt, "stats", statsText(mod));
        } else {
            std::fprintf(stderr, "eclc: unknown --emit kind '%s'\n",
                         kind.c_str());
            return 2;
        }
    }
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--module" && i + 1 < argc) {
            opt.module = argv[++i];
        } else if (arg == "--emit" && i + 1 < argc) {
            opt.emits.push_back(argv[++i]);
        } else if (arg == "--emit-c") {
            opt.emits.push_back("c");
        } else if (arg == "--aot") {
            opt.aot = true;
        } else if (arg == "-o" && i + 1 < argc) {
            opt.outPrefix = argv[++i];
        } else if (arg == "--async") {
            opt.asyncMode = true;
        } else if (arg == "--optimize") {
            opt.optimize = true;
        } else if (arg.size() == 3 && arg[0] == '-' && arg[1] == 'O') {
            if (arg[2] < '0' || arg[2] > '2') return usage();
            opt.optLevel = arg[2] - '0';
        } else if (arg == "--opt-stats") {
            opt.optStats = true;
        } else if (arg == "--paper" && i + 1 < argc) {
            opt.paper = argv[++i];
        } else if (arg == "--verify") {
            opt.verify = true;
        } else if (arg == "--monitor" && i + 1 < argc) {
            opt.monitorFile = argv[++i];
        } else if (arg == "--depth" && i + 1 < argc) {
            opt.depth = std::atoi(argv[++i]);
            if (opt.depth <= 0) return usage();
        } else if (arg == "--max-states" && i + 1 < argc) {
            opt.maxStates = std::atoll(argv[++i]);
            if (opt.maxStates <= 0 ||
                opt.maxStates > 0xffffffffll)
                return usage();
        } else if (arg == "--threads" && i + 1 < argc) {
            opt.threads = std::atoi(argv[++i]);
            if (opt.threads <= 0) return usage();
        } else if (arg == "--dfs") {
            opt.dfs = true;
        } else if (arg == "--store" && i + 1 < argc) {
            opt.store = argv[++i];
        } else if (arg.rfind("--store=", 0) == 0) {
            opt.store = arg.substr(8);
        } else if (arg == "--store-mem" && i + 1 < argc) {
            opt.storeMem = parseByteSize(argv[++i]);
            if (opt.storeMem <= 0) return usage();
        } else if (arg == "--por") {
            opt.por = true;
        } else if (arg == "--native-succ") {
            opt.nativeSucc = true;
        } else if (arg == "--record-trace" && i + 1 < argc) {
            opt.recordTrace = argv[++i];
        } else if (arg == "--replay-trace" && i + 1 < argc) {
            opt.replayTrace = argv[++i];
        } else if (arg == "--stim-profile" && i + 1 < argc) {
            opt.stimProfile = argv[++i];
        } else if (arg == "--stim-instants" && i + 1 < argc) {
            opt.stimInstants = std::atoi(argv[++i]);
            if (opt.stimInstants <= 0) return usage();
        } else if (arg == "--stim-seed" && i + 1 < argc) {
            opt.stimSeed =
                static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--trace-text") {
            opt.traceText = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            if (!opt.file.empty()) return usage();
            opt.file = arg;
        }
    }
    if (opt.file.empty() == opt.paper.empty()) return usage();
    if (!opt.paper.empty() && opt.paper != "stack" && opt.paper != "buffer")
        return usage();
    if (opt.verify && opt.asyncMode) return usage();
    // Verify-only flags without --verify would be silently ignored —
    // reject them so exit 0 can never be mistaken for "verified".
    if (!opt.verify && (!opt.monitorFile.empty() || opt.depth > 0 ||
                        opt.maxStates > 0 || opt.threads != 1 || opt.dfs ||
                        !opt.store.empty() || opt.storeMem > 0 || opt.por ||
                        opt.nativeSucc))
        return usage();
    ecl::verify::StoreKind storeKind = ecl::verify::StoreKind::Exact;
    if (!opt.store.empty() &&
        !ecl::verify::parseStoreKind(opt.store, storeKind)) {
        std::fprintf(stderr, "eclc: unknown --store kind '%s'\n",
                     opt.store.c_str());
        return usage();
    }
    opt.storeKind = storeKind;
    // Trace modes are exclusive with each other and with verify/async/aot;
    // stimulus flags only mean something when a stimulus is driven
    // (recording or the AOT differential run).
    if (!opt.recordTrace.empty() && !opt.replayTrace.empty())
        return usage();
    const bool traceMode =
        !opt.recordTrace.empty() || !opt.replayTrace.empty();
    if (traceMode && (opt.verify || opt.asyncMode || opt.aot))
        return usage();
    if (opt.aot && (opt.verify || opt.asyncMode)) return usage();
    if (opt.recordTrace.empty() && !opt.aot &&
        (opt.stimProfile != "random" || opt.stimInstants != 100 ||
         opt.stimSeed != 1))
        return usage();
    if (opt.recordTrace.empty() && opt.traceText) return usage();
    if (opt.emits.empty()) opt.emits.push_back("c");

    std::string source;
    if (!opt.paper.empty()) {
        source = opt.paper == "stack" ? ecl::paper::protocolStackSource()
                                      : ecl::paper::audioBufferSource();
    } else if (!readFile(opt.file, source)) {
        std::fprintf(stderr, "eclc: cannot open %s\n", opt.file.c_str());
        return kExitError;
    }

    try {
        ecl::Compiler compiler(source);
        std::vector<std::string> modules = compiler.moduleNames();
        if (modules.empty()) {
            std::fprintf(stderr, "eclc: no modules in %s\n",
                         opt.file.empty() ? opt.paper.c_str()
                                          : opt.file.c_str());
            return kExitError;
        }

        std::string top = opt.module.empty() ? modules.back() : opt.module;
        if (opt.verify) return runVerify(opt, compiler, top);
        if (opt.aot) return runAot(opt, compiler, top);
        if (!opt.recordTrace.empty()) return runRecord(opt, compiler, top);
        if (!opt.replayTrace.empty()) return runReplay(opt, compiler);

        ecl::CompileOptions copts;
        copts.optimizeEfsm = opt.optimize;
        copts.optLevel = opt.optLevel;

        if (opt.asyncMode) {
            // Per-module compilation (the RTOS/task path).
            int rc = 0;
            for (const std::string& name : modules) {
                auto mod = compiler.compile(name, copts);
                std::printf("--- task %s ---\n", name.c_str());
                if (opt.optStats)
                    std::printf("%s", mod->optStats().report().c_str());
                rc |= emitAll(opt, *mod);
            }
            return rc;
        }

        auto mod = compiler.compile(top, copts);
        if (opt.optStats)
            std::printf("%s", mod->optStats().report().c_str());
        return emitAll(opt, *mod);
    } catch (const ecl::EclError& e) {
        std::fprintf(stderr, "eclc: %s\n", e.what());
        return kExitError;
    }
}
