// eclc — the ECL command-line compiler.
//
// Usage:
//   eclc [options] file.ecl
//
// Options:
//   --module NAME      top module to compile (default: last module in file)
//   --emit KIND        artifact: c | esterel | verilog | efsm | ir | stats
//                      (default: c). May be repeated.
//   --async            compile every module separately and report per-task
//                      sizes instead of collapsing into one EFSM
//   -o PREFIX          write artifacts to PREFIX.<ext> instead of stdout
//
// Mirrors the paper's flow: one ECL file in; Esterel + C (+ glue) out; the
// EFSM and synthesis artifacts derived from them.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/codegen/c_gen.h"
#include "src/codegen/esterel_gen.h"
#include "src/codegen/verilog_gen.h"
#include "src/core/compiler.h"
#include "src/cost/cost.h"
#include "src/ir/ir.h"

namespace {

struct Options {
    std::string file;
    std::string module;
    std::vector<std::string> emits;
    std::string outPrefix;
    bool asyncMode = false;
    bool optimize = false;
};

int usage()
{
    std::fprintf(stderr,
                 "usage: eclc [--module NAME] [--emit c|esterel|verilog|"
                 "efsm|ir|stats]... [--async] [--optimize] [-o PREFIX] "
                 "file.ecl\n");
    return 2;
}

void writeArtifact(const Options& opt, const std::string& ext,
                   const std::string& text)
{
    if (opt.outPrefix.empty()) {
        std::printf("%s", text.c_str());
        return;
    }
    std::string path = opt.outPrefix + "." + ext;
    std::ofstream out(path);
    out << text;
    std::fprintf(stderr, "eclc: wrote %s (%zu bytes)\n", path.c_str(),
                 text.size());
}

std::string statsText(const ecl::CompiledModule& mod)
{
    ecl::cost::CostModel cm;
    auto st = mod.machine().stats();
    auto sz = cm.moduleSize(mod.machine());
    std::ostringstream out;
    out << "module " << mod.name() << ":\n"
        << "  EFSM states:        " << st.states << "\n"
        << "  decision nodes:     " << st.testNodes << "\n"
        << "  transition leaves:  " << st.leaves << "\n"
        << "  max tree depth:     " << st.maxTreeDepth << "\n"
        << "  data actions:       " << mod.lowerStats().dataActions << "\n"
        << "  extracted loops:    " << mod.lowerStats().extractedLoops << "\n"
        << "  pause points:       " << mod.lowerStats().pauses << "\n"
        << "  est. code size:     " << sz.codeBytes << " B (R3000 model)\n"
        << "  est. data size:     " << sz.dataBytes << " B\n";
    return out.str();
}

int emitAll(const Options& opt, const ecl::CompiledModule& mod)
{
    for (const std::string& kind : opt.emits) {
        if (kind == "c") {
            writeArtifact(opt, "c", ecl::codegen::generateC(mod));
        } else if (kind == "esterel") {
            writeArtifact(opt, "strl",
                          ecl::codegen::generateEsterel(
                              mod.reactiveProgram(), mod.moduleSema(),
                              mod.name()));
            writeArtifact(opt, "data.c",
                          ecl::codegen::generateEsterelDataFile(
                              mod.reactiveProgram(), mod.moduleSema(),
                              mod.name()));
        } else if (kind == "verilog") {
            ecl::codegen::HwReport hw = ecl::codegen::generateVerilog(mod);
            if (!hw.synthesizable) {
                std::fprintf(stderr, "eclc: %s\n", hw.reason.c_str());
                return 1;
            }
            writeArtifact(opt, "v", hw.verilog);
        } else if (kind == "efsm") {
            writeArtifact(opt, "efsm", mod.machine().describe());
        } else if (kind == "ir") {
            writeArtifact(opt, "ir",
                          ecl::ir::printIr(*mod.reactiveProgram().root));
        } else if (kind == "stats") {
            writeArtifact(opt, "stats", statsText(mod));
        } else {
            std::fprintf(stderr, "eclc: unknown --emit kind '%s'\n",
                         kind.c_str());
            return 2;
        }
    }
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--module" && i + 1 < argc) {
            opt.module = argv[++i];
        } else if (arg == "--emit" && i + 1 < argc) {
            opt.emits.push_back(argv[++i]);
        } else if (arg == "-o" && i + 1 < argc) {
            opt.outPrefix = argv[++i];
        } else if (arg == "--async") {
            opt.asyncMode = true;
        } else if (arg == "--optimize") {
            opt.optimize = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            if (!opt.file.empty()) return usage();
            opt.file = arg;
        }
    }
    if (opt.file.empty()) return usage();
    if (opt.emits.empty()) opt.emits.push_back("c");

    std::ifstream in(opt.file);
    if (!in) {
        std::fprintf(stderr, "eclc: cannot open %s\n", opt.file.c_str());
        return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    try {
        ecl::Compiler compiler(buffer.str());
        std::vector<std::string> modules = compiler.moduleNames();
        if (modules.empty()) {
            std::fprintf(stderr, "eclc: no modules in %s\n",
                         opt.file.c_str());
            return 1;
        }

        ecl::CompileOptions copts;
        copts.optimizeEfsm = opt.optimize;

        if (opt.asyncMode) {
            // Per-module compilation (the RTOS/task path).
            int rc = 0;
            for (const std::string& name : modules) {
                auto mod = compiler.compile(name, copts);
                std::printf("--- task %s ---\n", name.c_str());
                rc |= emitAll(opt, *mod);
            }
            return rc;
        }

        std::string top = opt.module.empty() ? modules.back() : opt.module;
        auto mod = compiler.compile(top, copts);
        return emitAll(opt, *mod);
    } catch (const ecl::EclError& e) {
        std::fprintf(stderr, "eclc: %s\n", e.what());
        return 1;
    }
}
