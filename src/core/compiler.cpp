#include "src/core/compiler.h"

#include "src/codegen/c_gen.h"
#include "src/frontend/parser.h"
#include "src/efsm/optimize.h"
#include "src/sema/elaborate.h"

namespace ecl {

CompiledModule::CompiledModule(std::shared_ptr<const SharedProgram> shared,
                               std::unique_ptr<ast::ModuleDecl> flat,
                               const CompileOptions& options,
                               Diagnostics& diags)
    : shared_(std::move(shared)), flat_(std::move(flat))
{
    sema_ = std::make_unique<ModuleSema>(
        analyzeModule(*flat_, shared_->sema, diags));
    reactive_ = std::make_unique<ir::ReactiveProgram>(
        lowerModule(*flat_, *sema_, diags, &lowerStats_));
    machine_ = std::make_unique<efsm::Efsm>(
        buildEfsm(*reactive_, *sema_, diags, options.efsm));
    if (options.optimizeEfsm) efsm::optimize(*machine_);

    if (!options.flatten) return;
    // Flatten the decision trees and compile every data predicate, data
    // action and emit-value expression to bytecode, then run the
    // post-flatten optimization pipeline (src/opt) at options.optLevel.
    // Any failure degrades to the tree-walking representation (recorded
    // as a note) rather than failing the compile — the flat path is an
    // optimization.
    try {
        auto fp = std::make_unique<efsm::FlatProgram>(
            efsm::flatten(*machine_));
        bc::ProgramBuilder builder(shared_->sema, shared_->functions,
                                   *sema_);
        for (efsm::FlatNode& n : fp->nodes)
            if (n.dataCond) n.predChunk = builder.compileExpr(*n.dataCond);
        for (efsm::FlatAction& a : fp->actions) {
            if (a.kind == efsm::FlatAction::Kind::Emit) {
                if (a.valueExpr) a.chunk = builder.compileExpr(*a.valueExpr);
                continue;
            }
            const ir::DataAction& da =
                reactive_->actions[static_cast<std::size_t>(a.dataActionId)];
            if (da.stmt)
                a.chunk = builder.compileStmt(*da.stmt);
            else if (da.expr)
                a.chunk = builder.compileExpr(*da.expr);
        }
        std::shared_ptr<bc::Program> code = builder.finish();
        optStats_ = opt::optimize(*fp, *code, options.optLevel);
        byteCode_ = std::move(code);
        flatProgram_ = std::move(fp);
    } catch (const EclError& e) {
        diags.note({}, "flat execution disabled for module '" + flat_->name +
                           "': " + e.what());
        flatProgram_.reset();
        byteCode_.reset();
        optStats_ = {};
    }
}

std::unique_ptr<rt::SyncEngine>
CompiledModule::makeSyncEngine(EngineKind kind) const
{
    if (kind == EngineKind::Native)
        throw EclError("makeSyncEngine: the native backend is not a "
                       "SyncEngine; use makeEngine(EngineKind::Native)");
    bool flat = kind == EngineKind::Flat && hasFlatProgram();
    auto engine = std::make_unique<rt::SyncEngine>(
        *machine_, *sema_, shared_->sema, shared_->functions,
        flat ? flatProgram_.get() : nullptr, flat ? byteCode_ : nullptr);
    // Keep this module alive while the engine exists (compile() hands out
    // shared_ptrs; stack-constructed modules simply skip the retain).
    if (auto self = weak_from_this().lock()) engine->retain(self);
    return engine;
}

std::shared_ptr<const rt::NativeModule> CompiledModule::nativeModule() const
{
    std::lock_guard<std::mutex> lock(nativeMutex_);
    if (!nativeTried_) {
        nativeTried_ = true;
        try {
            nativeModule_ =
                rt::NativeModule::build(codegen::generateC(*this), name());
        } catch (const EclError& e) {
            nativeError_ = e.what();
        }
    }
    if (!nativeModule_) throw EclError(nativeError_);
    return nativeModule_;
}

std::unique_ptr<rt::ReactiveEngine>
CompiledModule::makeEngine(EngineKind kind) const
{
    if (kind == EngineKind::Native) {
        try {
            // nativeModule() throws before flatProgram_ is touched when
            // the module has no flat tables.
            auto native = nativeModule();
            auto engine = std::make_unique<rt::NativeEngine>(
                *sema_, *flatProgram_, std::move(native));
            if (auto self = weak_from_this().lock()) engine->retain(self);
            return engine;
        } catch (const EclError&) {
            // Native backend unavailable (no flat program, untypeable
            // chunk, no host compiler, dlopen failure): run the same
            // semantics on the VM.
            return makeSyncEngine(EngineKind::Flat);
        }
    }
    return makeSyncEngine(kind);
}

std::unique_ptr<rt::BatchEngine>
CompiledModule::makeBatchEngine(std::size_t instances,
                                rt::BatchOptions options,
                                EngineKind kind) const
{
    if (!hasFlatProgram())
        throw EclError("makeBatchEngine: module '" + flat_->name +
                       "' has no flat program (compiled with flatten=false "
                       "or flattening was disabled by a note)");
    if (kind == EngineKind::TreeWalk)
        throw EclError("makeBatchEngine: the batch runtime is arena-based; "
                       "EngineKind::TreeWalk has no batch backend");
    std::shared_ptr<const rt::NativeModule> native;
    if (kind == EngineKind::Native) {
        try {
            native = nativeModule();
            rt::validateNativeShape(native->info(), *sema_, *flatProgram_,
                                    rt::computeInstanceLayout(*sema_));
        } catch (const EclError&) {
            // Native backend unavailable: run the same semantics on the
            // VM (makeEngine's fallback contract; backendName() tells).
            native.reset();
        }
    }
    auto engine = std::make_unique<rt::BatchEngine>(
        *flatProgram_, byteCode_, *sema_, instances, options,
        std::move(native));
    if (auto self = weak_from_this().lock()) engine->retain(self);
    return engine;
}

std::unique_ptr<verify::Explorer>
CompiledModule::makeExplorer(verify::ExplorerOptions options) const
{
    if (!hasFlatProgram())
        throw EclError("makeExplorer: module '" + flat_->name +
                       "' has no flat program (compiled with flatten=false "
                       "or flattening was disabled by a note)");
    const bool wantNative = options.nativeSuccessors;
    auto explorer = std::make_unique<verify::Explorer>(
        *flatProgram_, byteCode_, *sema_, std::move(options));
    if (wantNative) {
        try {
            explorer->attachNative(nativeModule());
        } catch (const EclError&) {
            // Native backend unavailable: explore on the VM (the same
            // fallback contract as makeEngine/makeBatchEngine;
            // ExploreStats::usedNativeSuccessors reports which ran).
        }
    }
    if (auto self = weak_from_this().lock()) explorer->retain(self);
    return explorer;
}

void CompiledModule::attachAsMonitor(verify::Explorer& explorer) const
{
    if (!hasFlatProgram())
        throw EclError("attachAsMonitor: module '" + flat_->name +
                       "' has no flat program");
    explorer.attachMonitor(*flatProgram_, byteCode_, *sema_,
                           weak_from_this().lock());
}

std::unique_ptr<rt::RcEngine> CompiledModule::makeBaselineEngine() const
{
    auto engine = std::make_unique<rt::RcEngine>(
        *reactive_, *sema_, shared_->sema, shared_->functions);
    if (auto self = weak_from_this().lock()) engine->retain(self);
    return engine;
}

Compiler::Compiler(const std::string& source)
{
    shared_ = std::make_shared<SharedProgram>();
    shared_->program = parseEcl(source, diags_);
    shared_->sema = analyzeProgramDecls(shared_->program, diags_);
    // ProgramSema::program points at the pre-move AST; fix it up to the
    // final location inside the shared struct.
    shared_->sema.program = &shared_->program;
    for (const ast::TopDeclPtr& d : shared_->program.decls) {
        if (d->kind != ast::DeclKind::Function) continue;
        const auto& fn = static_cast<const ast::FunctionDecl&>(*d);
        shared_->functions.emplace(
            fn.name, analyzeFunction(fn, shared_->sema, diags_));
    }
}

std::shared_ptr<CompiledModule> Compiler::compile(const std::string& topName,
                                                  const CompileOptions& options)
{
    std::unique_ptr<ast::ModuleDecl> flat =
        elaborate(shared_->program, shared_->sema, topName, diags_);
    return std::make_shared<CompiledModule>(shared_, std::move(flat), options,
                                            diags_);
}

std::vector<std::string> Compiler::moduleNames() const
{
    std::vector<std::string> out;
    for (const ast::TopDeclPtr& d : shared_->program.decls)
        if (d->kind == ast::DeclKind::Module)
            out.push_back(static_cast<const ast::ModuleDecl&>(*d).name);
    return out;
}

} // namespace ecl
