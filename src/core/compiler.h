// The ECL compiler driver — the library's primary public API.
//
// Pipeline (paper Section 1, "ECL Overview"):
//   source --lex/parse--> AST --sema--> typed program
//          --elaborate--> flat module (sync composition by inlining)
//          --partition/lower--> reactive IR + data actions (the split)
//          --build--> EFSM
//          --codegen--> Esterel / C / Verilog artifacts (src/codegen)
//
// Usage:
//   ecl::Compiler compiler(sourceText);
//   auto mod = compiler.compile("toplevel");
//   auto engine = mod->makeEngine();
//   engine->setInputScalar("in_byte", 0x5a);
//   engine->react();
//
// A CompiledModule owns every structure the engines reference; keep the
// shared_ptr alive as long as any engine created from it runs.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "src/efsm/efsm.h"
#include "src/efsm/flatten.h"
#include "src/frontend/ast.h"
#include "src/interp/bytecode.h"
#include "src/ir/ir.h"
#include "src/opt/opt.h"
#include "src/partition/lower.h"
#include "src/runtime/batch_engine.h"
#include "src/runtime/engine.h"
#include "src/runtime/native_module.h"
#include "src/sema/sema.h"
#include "src/support/diagnostics.h"
#include "src/verify/explorer.h"

namespace ecl {

struct CompileOptions {
    efsm::BuildOptions efsm;
    /// Run the decision-tree optimizer (redundant/repeated test
    /// elimination) after the build. Off by default so size studies see
    /// the raw automaton; see src/efsm/optimize.h.
    bool optimizeEfsm = false;
    /// Flatten the EFSM and compile data code to bytecode (the
    /// SyncEngine fast path). On by default; the tree-walking
    /// representation is always built and kept as the oracle.
    bool flatten = true;
    /// Post-flatten optimization level (eclc -O{0,1,2}; see
    /// src/opt/opt.h). 0 = tables and bytecode verbatim; 1 = chunk dedup
    /// + flat-state minimization + config dedup (behavior AND
    /// instruction-level ExecCounters bit-exact); 2 = + the bytecode
    /// optimizer (constant folding, copy propagation, DCE, peephole
    /// fusion) — behavior bit-exact, but eliminated instructions no
    /// longer bump ExecCounters, so exact counter equality with the
    /// tree-walking oracle is only defined at levels 0 and 1.
    /// After minimization (>= 1), flat state ids no longer equal the
    /// source Efsm's.
    int optLevel = 2;
};

/// Which execution backend makeEngine() wires up.
enum class EngineKind {
    Flat,     ///< Dense tables + bytecode VM (default fast path).
    TreeWalk, ///< unique_ptr decision trees + tree-walking Evaluator
              ///< (differential-testing oracle, perf baseline).
    Native,   ///< AOT: generated C compiled + dlopened (rt::NativeEngine);
              ///< falls back to Flat when the native backend is
              ///< unavailable — check backendName() == "native".
};

/// Parsed + program-analyzed source, shared by all modules compiled from it.
struct SharedProgram {
    ast::Program program;
    ProgramSema sema;
    rt::FunctionSemaMap functions;
};

class CompiledModule : public std::enable_shared_from_this<CompiledModule> {
public:
    CompiledModule(std::shared_ptr<const SharedProgram> shared,
                   std::unique_ptr<ast::ModuleDecl> flat,
                   const CompileOptions& options, Diagnostics& diags);

    [[nodiscard]] const std::string& name() const { return flat_->name; }
    [[nodiscard]] const ast::ModuleDecl& flatModule() const { return *flat_; }
    [[nodiscard]] const ModuleSema& moduleSema() const { return *sema_; }
    [[nodiscard]] const ir::ReactiveProgram& reactiveProgram() const
    {
        return *reactive_;
    }
    [[nodiscard]] const efsm::Efsm& machine() const { return *machine_; }
    [[nodiscard]] const ProgramSema& programSema() const
    {
        return shared_->sema;
    }
    [[nodiscard]] const rt::FunctionSemaMap& functions() const
    {
        return shared_->functions;
    }
    [[nodiscard]] const LowerStats& lowerStats() const { return lowerStats_; }
    /// What the post-flatten pipeline did at CompileOptions::optLevel
    /// (all-zero when optLevel = 0 or the flat representation was not
    /// built); surfaced by `eclc --opt-stats`.
    [[nodiscard]] const opt::PipelineStats& optStats() const
    {
        return optStats_;
    }

    /// True when the flattened tables + bytecode were built (the fast
    /// path makeEngine() wires up by default).
    [[nodiscard]] bool hasFlatProgram() const
    {
        return flatProgram_ != nullptr && byteCode_ != nullptr;
    }
    /// The flattened machine; requires hasFlatProgram().
    [[nodiscard]] const efsm::FlatProgram& flatProgram() const
    {
        return *flatProgram_;
    }
    /// The compiled data bytecode; requires hasFlatProgram().
    [[nodiscard]] const bc::Program& byteCode() const { return *byteCode_; }
    /// Shared ownership of the bytecode (engines/explorers built by
    /// hand); null when the flat representation was not built.
    [[nodiscard]] std::shared_ptr<const bc::Program> byteCodePtr() const
    {
        return byteCode_;
    }

    /// Creates a synchronous engine of the requested backend. The
    /// CompiledModule must outlive it. EngineKind::Flat silently degrades
    /// to the tree walk when the flat representation was not built
    /// (flatten=false); EngineKind::Native falls back to Flat when C
    /// generation, the host compiler, or dlopen is unavailable (the
    /// returned engine's backendName() tells which one you got).
    [[nodiscard]] std::unique_ptr<rt::ReactiveEngine>
    makeEngine(EngineKind kind = EngineKind::Flat) const;

    /// Like makeEngine() but statically typed to the VM engine, for
    /// callers that need SyncEngine internals (verifier replay, RTOS
    /// scheduler, state packing tests). Rejects EngineKind::Native.
    [[nodiscard]] std::unique_ptr<rt::SyncEngine>
    makeSyncEngine(EngineKind kind = EngineKind::Flat) const;

    /// The generated-C source and compiled shared object behind
    /// EngineKind::Native, built on demand and memoized per module
    /// (every Native engine of this module shares one dlopened object).
    /// Throws EclError when the native backend is unavailable.
    [[nodiscard]] std::shared_ptr<const rt::NativeModule>
    nativeModule() const;

    /// Creates the Reactive-C-style baseline engine (related-work
    /// comparison and differential-testing oracle).
    [[nodiscard]] std::unique_ptr<rt::RcEngine> makeBaselineEngine() const;

    /// Creates a batch engine running `instances` independent instances of
    /// this module over the shared flat tables + bytecode (see
    /// src/runtime/batch_engine.h). Requires hasFlatProgram(); throws
    /// EclError when the flat representation was not built.
    /// EngineKind::Native makes every batch worker call the AOT-compiled
    /// reaction function on the shared arenas, with the same silent
    /// fall-back-to-VM policy as makeEngine (check backendName());
    /// EngineKind::TreeWalk is rejected — the batch runtime is
    /// arena-based by construction.
    [[nodiscard]] std::unique_ptr<rt::BatchEngine>
    makeBatchEngine(std::size_t instances, rt::BatchOptions options = {},
                    EngineKind kind = EngineKind::Flat) const;

    /// Creates an explicit-state verification explorer over this module's
    /// shared flat tables + bytecode (see src/verify/explorer.h).
    /// Requires hasFlatProgram(); throws EclError otherwise.
    [[nodiscard]] std::unique_ptr<verify::Explorer>
    makeExplorer(verify::ExplorerOptions options = {}) const;

    /// Attaches this module to `explorer` as an observer/assertion
    /// monitor: its inputs are wired by name to the explored design's
    /// signals and any violation signal it emits flags a counterexample.
    /// Requires hasFlatProgram().
    void attachAsMonitor(verify::Explorer& explorer) const;

private:
    std::shared_ptr<const SharedProgram> shared_;
    std::unique_ptr<ast::ModuleDecl> flat_;
    std::unique_ptr<ModuleSema> sema_;
    std::unique_ptr<ir::ReactiveProgram> reactive_;
    std::unique_ptr<efsm::Efsm> machine_;
    std::unique_ptr<efsm::FlatProgram> flatProgram_;
    std::shared_ptr<const bc::Program> byteCode_;
    LowerStats lowerStats_;
    opt::PipelineStats optStats_;
    /// Memoized AOT artifact (built on first Native engine request).
    mutable std::mutex nativeMutex_;
    mutable std::shared_ptr<const rt::NativeModule> nativeModule_;
    mutable bool nativeTried_ = false;
    mutable std::string nativeError_;
};

class Compiler {
public:
    /// Parses and analyzes `source`. Throws EclError with diagnostics on
    /// lexical, syntax or program-level semantic errors.
    explicit Compiler(const std::string& source);

    /// Compiles module `topName` synchronously: every instantiation inlined
    /// into one EFSM (the paper's single-task implementation).
    std::shared_ptr<CompiledModule> compile(const std::string& topName,
                                            const CompileOptions& options = {});

    [[nodiscard]] const ast::Program& program() const
    {
        return shared_->program;
    }
    [[nodiscard]] const ProgramSema& programSema() const
    {
        return shared_->sema;
    }
    [[nodiscard]] const Diagnostics& diagnostics() const { return diags_; }

    /// Names of all modules in the program (for async composition).
    [[nodiscard]] std::vector<std::string> moduleNames() const;

private:
    std::shared_ptr<SharedProgram> shared_;
    Diagnostics diags_;
};

} // namespace ecl
