#include "src/core/paper_sources.h"

namespace ecl::paper {

std::string protocolStackSource()
{
    return R"ECL(
/* Protocol stack fragment -- DAC'99 ECL paper, Figures 1-4. */

#define HDRSIZE 6
#define DATASIZE 56
#define CRCSIZE 2
#define PKTSIZE HDRSIZE+DATASIZE+CRCSIZE
#define ADDR_BYTE 165

typedef unsigned char byte;

typedef struct {
    byte packet[PKTSIZE];
} packet_view_1_t;

typedef struct {
    byte header[HDRSIZE];
    byte data[DATASIZE];
    byte crc[CRCSIZE];
} packet_view_2_t;

typedef union {
    packet_view_1_t raw;
    packet_view_2_t cooked;
} packet_t;

/* Figure 1: an ECL module assembling bytes into packets. */
module assemble (input pure reset,
                 input byte in_byte, output packet_t outpkt)
{
    int cnt;
    packet_t buffer;

    /* outermost reactive loop */
    while (1) {
        do {
            /* get PKTSIZE bytes */
            for (cnt = 0; cnt < PKTSIZE; cnt++) {
                await (in_byte);
                buffer.raw.packet[cnt] = in_byte;
            }
            /* assemble them and emit the output */
            emit_v (outpkt, buffer);
        } abort (reset);
    }
}

/* Figure 2: an ECL module checking a Cyclic Redundancy Code.
   The CRC fold is a data loop (no halting statement): the compiler
   extracts it as a C function. The verdict is published after one delta
   cycle so the synchronous composition can await it (docs/LANGUAGE.md). */
module checkcrc (input pure reset,
                 input packet_t inpkt, output bool crc_ok)
{
    int i;
    unsigned int crc;

    while (1) {
        do {
            await (inpkt);
            for (i = 0, crc = 0; i < PKTSIZE; i++) {
                crc = (crc ^ inpkt.raw.packet[i]) << 1;
            }
            await ();
            emit_v (crc_ok, crc == (int) inpkt.cooked.crc);
        } abort (reset);
    }
}

/* Figure 3: an ECL module performing a computation on the packet header.
   The "lengthy computation" runs one header byte per instant; the parallel
   watcher kills it via kill_check when the CRC fails. */
module prochdr (input pure reset, input bool crc_ok,
                input packet_t inpkt, output pure addr_match)
{
    signal pure kill_check; /* local signal */
    bool match_ok;
    int hidx;

    while (1) {
        do {
            await (inpkt);
            par {
                do {
                    /* lengthy multi-instant address match */
                    match_ok = true;
                    for (hidx = 0; hidx < HDRSIZE; hidx++) {
                        await ();
                        if (inpkt.cooked.header[hidx] != ADDR_BYTE)
                            match_ok = false;
                    }
                } abort (kill_check);
                {
                    await (crc_ok);
                    if (~crc_ok) emit (kill_check);
                    /* else just wait for both to complete */
                }
            }
            /* now both branches have terminated */
            if (crc_ok && match_ok) emit (addr_match);
        } abort (reset);
    }
}

/* Figure 4: the ECL top-level module for the simple protocol stack. */
module toplevel (input pure reset,
                 input byte in_byte, output pure addr_match)
{
    signal packet_t packet;
    signal bool crc_ok;

    par {
        assemble (reset, in_byte, packet);
        checkcrc (reset, packet, crc_ok);
        prochdr (reset, crc_ok, packet, addr_match);
    }
}
)ECL";
}

std::string audioBufferSource()
{
    return R"ECL(
/* Voice-mail pager audio buffer controller (reconstruction of the paper's
   second Table 1 design). Three loosely coupled, control-heavy modules:
   their pause points are driven by independent inputs (sample / play,
   stop / tick), so the collapsed synchronous product automaton is much
   larger than the sum of the three task automata -- the paper's Buffer
   row shape. Control-encoded counting (await chains instead of data
   counters) is idiomatic Esterel and keeps reactions test-free. */

/* Producer: assembles 4 microphone samples into one audio frame. */
module producer (input pure reset, input pure sample,
                 output pure frame_ready)
{
    while (1) {
        do {
            await (sample);
            await (sample);
            await (sample);
            await (sample);
            emit (frame_ready);
        } abort (reset);
    }
}

/* Playback control: prefill two frames, then play until stop. */
module playback (input pure reset, input pure play, input pure stop,
                 input pure frame_ready,
                 output pure speaker_on, output pure speaker_off)
{
    while (1) {
        do {
            await (play);
            await (frame_ready);
            await (frame_ready);
            emit (speaker_on);
            do {
                halt ();
            } abort (stop);
            emit (speaker_off);
        } abort (reset);
    }
}

/* Status LED blinker: 1 tick on, 2 ticks off, period 5. */
module blinker (input pure reset, input pure tick,
                output pure led_on, output pure led_off)
{
    while (1) {
        do {
            await (tick);
            emit (led_on);
            await (tick);
            await (tick);
            emit (led_off);
            await (tick);
            await (tick);
        } abort (reset);
    }
}

module buffer_top (input pure reset, input pure sample, input pure play,
                   input pure stop, input pure tick,
                   output pure speaker_on, output pure speaker_off,
                   output pure led_on, output pure led_off)
{
    signal pure frame_ready;

    par {
        producer (reset, sample, frame_ready);
        playback (reset, play, stop, frame_ready, speaker_on, speaker_off);
        blinker (reset, tick, led_on, led_off);
    }
}
)ECL";
}

} // namespace ecl::paper
