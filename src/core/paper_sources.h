// Canonical ECL sources from the paper (Figures 1-4) plus the reconstructed
// audio buffer controller of the Table 1 "Buffer" row.
//
// The protocol stack follows the paper's listings with two documented
// adaptations (see docs/LANGUAGE.md):
//  * `checkcrc` publishes its verdict after one delta cycle (`await ();`)
//    so that the *synchronous* composition can await crc_ok — Esterel's
//    await is non-immediate, and in a single-EFSM composition crc_ok would
//    otherwise be emitted in the very instant prochdr starts awaiting it
//    (the paper itself notes sync/async behaviours can differ here).
//  * `prochdr`'s "lengthy computation" placeholder is implemented as a
//    multi-instant header/address match using await() delta cycles.
#pragma once

#include <string>

namespace ecl::paper {

/// Figures 1-4: types + assemble + checkcrc + prochdr + toplevel.
std::string protocolStackSource();

/// Reconstructed voice-mail-pager audio buffer controller: three loosely
/// coupled control-heavy modules (producer burst control, playback FSM,
/// status blinker) under one toplevel. Loose coupling makes the collapsed
/// single-EFSM implementation large (Table 1's Buffer row shape).
std::string audioBufferSource();

/// Packet constants matching the protocol stack source.
inline constexpr int kHdrSize = 6;
inline constexpr int kDataSize = 56;
inline constexpr int kCrcSize = 2;
inline constexpr int kPktSize = kHdrSize + kDataSize + kCrcSize;
inline constexpr int kAddrByte = 0xA5;

} // namespace ecl::paper
