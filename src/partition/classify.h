// Loop classification — the heart of the paper's reactive/data split.
//
// Section 4 of the paper defines exactly two legal loop classes:
//  1. *Reactive loops* contain at least one halting statement (await/halt)
//     on each path that repeats the loop — they compile to Esterel loops
//     (EFSM transitions).
//  2. *Data loops* contain no halting statement on any path — they appear
//     instantaneous and are extracted as C functions.
// A loop that halts on some repeating paths but not others is rejected with
// a diagnostic suggesting `await()` (delta cycle) or extraction.
#pragma once

#include <unordered_map>

#include "src/frontend/ast.h"
#include "src/support/diagnostics.h"

namespace ecl {

enum class LoopClass { Data, Reactive };

struct ClassifyResult {
    std::unordered_map<const ast::Stmt*, LoopClass> loops;
    int dataLoops = 0;
    int reactiveLoops = 0;
};

/// True if `s` contains any reactive construct (await, halt, emit, present,
/// abort, suspend, par, signal declaration).
bool containsReactive(const ast::Stmt& s);

/// True if `s` contains a halting statement (await or halt).
bool containsHalting(const ast::Stmt& s);

/// Control-flow facts about paths through a statement that have NOT passed
/// a halting statement.
struct HaltFlow {
    bool fallNoHalt = false;  ///< May complete normally without halting.
    bool contNoHalt = false;  ///< May reach `continue` without halting.
    bool breakNoHalt = false; ///< May reach `break` without halting.
};

HaltFlow analyzeHaltFlow(const ast::Stmt& s);

/// True for `break`/`continue` that would escape out of `s` itself
/// (i.e., not enclosed in a loop within `s`).
bool hasFreeLoopEscape(const ast::Stmt& s);

/// True for integer/bool literals with a non-zero value ("while (1)").
bool isConstTrue(const ast::Expr& e);

/// Classifies every loop in the module body. Throws EclError on mixed
/// loops (halting on some repeating paths only) and on data-looking loops
/// that contain emits but never halt.
ClassifyResult classifyLoops(const ast::ModuleDecl& m, Diagnostics& diags);

} // namespace ecl
