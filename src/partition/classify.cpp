#include "src/partition/classify.h"

namespace ecl {

using namespace ast;

namespace {

template <typename Pred>
bool anyStmt(const Stmt& s, Pred&& pred)
{
    if (pred(s)) return true;
    switch (s.kind) {
    case StmtKind::Block: {
        const auto& x = static_cast<const BlockStmt&>(s);
        for (const StmtPtr& st : x.body)
            if (anyStmt(*st, pred)) return true;
        return false;
    }
    case StmtKind::If: {
        const auto& x = static_cast<const IfStmt&>(s);
        if (anyStmt(*x.thenStmt, pred)) return true;
        return x.elseStmt && anyStmt(*x.elseStmt, pred);
    }
    case StmtKind::While:
        return anyStmt(*static_cast<const WhileStmt&>(s).body, pred);
    case StmtKind::DoWhile:
        return anyStmt(*static_cast<const DoWhileStmt&>(s).body, pred);
    case StmtKind::For: {
        const auto& x = static_cast<const ForStmt&>(s);
        if (x.init && anyStmt(*x.init, pred)) return true;
        return anyStmt(*x.body, pred);
    }
    case StmtKind::Present: {
        const auto& x = static_cast<const PresentStmt&>(s);
        if (anyStmt(*x.thenStmt, pred)) return true;
        return x.elseStmt && anyStmt(*x.elseStmt, pred);
    }
    case StmtKind::Abort: {
        const auto& x = static_cast<const AbortStmt&>(s);
        if (anyStmt(*x.body, pred)) return true;
        return x.handler && anyStmt(*x.handler, pred);
    }
    case StmtKind::Suspend:
        return anyStmt(*static_cast<const SuspendStmt&>(s).body, pred);
    case StmtKind::Par: {
        const auto& x = static_cast<const ParStmt&>(s);
        for (const StmtPtr& b : x.branches)
            if (anyStmt(*b, pred)) return true;
        return false;
    }
    default: return false;
    }
}

} // namespace

bool containsReactive(const Stmt& s)
{
    return anyStmt(s, [](const Stmt& st) {
        switch (st.kind) {
        case StmtKind::Await:
        case StmtKind::Halt:
        case StmtKind::Emit:
        case StmtKind::Present:
        case StmtKind::Abort:
        case StmtKind::Suspend:
        case StmtKind::Par:
        case StmtKind::SignalDecl: return true;
        default: return false;
        }
    });
}

bool containsHalting(const Stmt& s)
{
    return anyStmt(s, [](const Stmt& st) {
        return st.kind == StmtKind::Await || st.kind == StmtKind::Halt;
    });
}

bool isConstTrue(const Expr& e)
{
    if (e.kind == ExprKind::IntLit)
        return static_cast<const IntLitExpr&>(e).value != 0;
    if (e.kind == ExprKind::BoolLit)
        return static_cast<const BoolLitExpr&>(e).value;
    return false;
}

HaltFlow analyzeHaltFlow(const Stmt& s)
{
    switch (s.kind) {
    case StmtKind::Await:
    case StmtKind::Halt: return {false, false, false};
    case StmtKind::Break: return {false, false, true};
    case StmtKind::Continue: return {false, true, false};
    case StmtKind::Block: {
        const auto& x = static_cast<const BlockStmt&>(s);
        HaltFlow out;
        bool entryNoHalt = true; // a no-halt path reaches the next child
        for (const StmtPtr& st : x.body) {
            HaltFlow f = analyzeHaltFlow(*st);
            if (entryNoHalt) {
                out.contNoHalt |= f.contNoHalt;
                out.breakNoHalt |= f.breakNoHalt;
            }
            entryNoHalt = entryNoHalt && f.fallNoHalt;
        }
        out.fallNoHalt = entryNoHalt;
        return out;
    }
    case StmtKind::If: {
        const auto& x = static_cast<const IfStmt&>(s);
        HaltFlow a = analyzeHaltFlow(*x.thenStmt);
        HaltFlow b =
            x.elseStmt ? analyzeHaltFlow(*x.elseStmt) : HaltFlow{true, false, false};
        return {a.fallNoHalt || b.fallNoHalt, a.contNoHalt || b.contNoHalt,
                a.breakNoHalt || b.breakNoHalt};
    }
    case StmtKind::Present: {
        const auto& x = static_cast<const PresentStmt&>(s);
        HaltFlow a = analyzeHaltFlow(*x.thenStmt);
        HaltFlow b =
            x.elseStmt ? analyzeHaltFlow(*x.elseStmt) : HaltFlow{true, false, false};
        return {a.fallNoHalt || b.fallNoHalt, a.contNoHalt || b.contNoHalt,
                a.breakNoHalt || b.breakNoHalt};
    }
    case StmtKind::While: {
        const auto& x = static_cast<const WhileStmt&>(s);
        HaltFlow b = analyzeHaltFlow(*x.body);
        // Optimistic rule (matches the paper accepting Figure 1): a nested
        // loop that halts inside counts as halting even though a
        // zero-iteration entry is statically conceivable — the EFSM builder
        // turns such unverifiable paths into runtime traps.
        bool halting = containsHalting(*x.body);
        bool fall = halting ? b.breakNoHalt
                            : (!isConstTrue(*x.cond) || b.breakNoHalt);
        return {fall, false, false};
    }
    case StmtKind::DoWhile: {
        const auto& x = static_cast<const DoWhileStmt&>(s);
        HaltFlow b = analyzeHaltFlow(*x.body);
        bool fall = b.breakNoHalt ||
                    ((b.fallNoHalt || b.contNoHalt) && !isConstTrue(*x.cond));
        return {fall, false, false};
    }
    case StmtKind::For: {
        const auto& x = static_cast<const ForStmt&>(s);
        HaltFlow b = analyzeHaltFlow(*x.body);
        bool constTrue = !x.cond || isConstTrue(*x.cond);
        bool halting = containsHalting(*x.body);
        bool fall =
            halting ? b.breakNoHalt : (!constTrue || b.breakNoHalt);
        return {fall, false, false};
    }
    case StmtKind::Par: {
        const auto& x = static_cast<const ParStmt&>(s);
        bool fall = true;
        for (const StmtPtr& b : x.branches)
            fall = fall && analyzeHaltFlow(*b).fallNoHalt;
        return {fall, false, false};
    }
    case StmtKind::Abort: {
        const auto& x = static_cast<const AbortStmt&>(s);
        // Preempted exits happen in later instants (after a halt), so only
        // the body's first-instant flow matters.
        HaltFlow b = analyzeHaltFlow(*x.body);
        return b;
    }
    case StmtKind::Suspend:
        return analyzeHaltFlow(*static_cast<const SuspendStmt&>(s).body);
    default:
        // Data statements, declarations, emits, empty: instantaneous.
        return {true, false, false};
    }
}

bool hasFreeLoopEscape(const Stmt& s)
{
    // Walk without descending into nested loops (their escapes are bound).
    switch (s.kind) {
    case StmtKind::Break:
    case StmtKind::Continue: return true;
    case StmtKind::Block: {
        const auto& x = static_cast<const BlockStmt&>(s);
        for (const StmtPtr& st : x.body)
            if (hasFreeLoopEscape(*st)) return true;
        return false;
    }
    case StmtKind::If: {
        const auto& x = static_cast<const IfStmt&>(s);
        if (hasFreeLoopEscape(*x.thenStmt)) return true;
        return x.elseStmt && hasFreeLoopEscape(*x.elseStmt);
    }
    case StmtKind::Present: {
        const auto& x = static_cast<const PresentStmt&>(s);
        if (hasFreeLoopEscape(*x.thenStmt)) return true;
        return x.elseStmt && hasFreeLoopEscape(*x.elseStmt);
    }
    case StmtKind::Abort: {
        const auto& x = static_cast<const AbortStmt&>(s);
        if (hasFreeLoopEscape(*x.body)) return true;
        return x.handler && hasFreeLoopEscape(*x.handler);
    }
    case StmtKind::Suspend:
        return hasFreeLoopEscape(*static_cast<const SuspendStmt&>(s).body);
    case StmtKind::Par: {
        // break/continue may not cross par (sema enforces); nothing inside
        // a par can escape a loop around `s`.
        return false;
    }
    case StmtKind::While:
    case StmtKind::DoWhile:
    case StmtKind::For: return false; // escapes bound by the nested loop
    default: return false;
    }
}

namespace {

void classifyIn(const Stmt& s, ClassifyResult& out, Diagnostics& diags)
{
    auto classifyLoop = [&](const Stmt& loop, const Stmt& body,
                            const Expr* cond) {
        bool reactiveInside = containsReactive(body);
        bool haltingInside = containsHalting(body);
        (void)cond;
        if (!reactiveInside) {
            out.loops[&loop] = LoopClass::Data;
            out.dataLoops++;
            return;
        }
        if (!haltingInside) {
            diags.error(loop.loc,
                        "loop emits or tests signals but never halts: it "
                        "would iterate instantaneously; add 'await();' to "
                        "split iterations across instants or make the loop "
                        "pure data");
            throw EclError(loop.loc, "instantaneous reactive loop");
        }
        HaltFlow f = analyzeHaltFlow(body);
        if (f.fallNoHalt || f.contNoHalt) {
            diags.error(loop.loc,
                        "loop halts on some repeating paths but not all "
                        "(paper Section 4 requires a halting statement in "
                        "each path); add 'await();' on the instantaneous "
                        "paths or split the loop");
            throw EclError(loop.loc, "mixed reactive/data loop");
        }
        out.loops[&loop] = LoopClass::Reactive;
        out.reactiveLoops++;
    };

    switch (s.kind) {
    case StmtKind::Block:
        for (const StmtPtr& st : static_cast<const BlockStmt&>(s).body)
            classifyIn(*st, out, diags);
        return;
    case StmtKind::If: {
        const auto& x = static_cast<const IfStmt&>(s);
        classifyIn(*x.thenStmt, out, diags);
        if (x.elseStmt) classifyIn(*x.elseStmt, out, diags);
        return;
    }
    case StmtKind::While: {
        const auto& x = static_cast<const WhileStmt&>(s);
        classifyLoop(s, *x.body, x.cond.get());
        classifyIn(*x.body, out, diags);
        return;
    }
    case StmtKind::DoWhile: {
        const auto& x = static_cast<const DoWhileStmt&>(s);
        classifyLoop(s, *x.body, x.cond.get());
        classifyIn(*x.body, out, diags);
        return;
    }
    case StmtKind::For: {
        const auto& x = static_cast<const ForStmt&>(s);
        classifyLoop(s, *x.body, x.cond.get());
        classifyIn(*x.body, out, diags);
        return;
    }
    case StmtKind::Present: {
        const auto& x = static_cast<const PresentStmt&>(s);
        classifyIn(*x.thenStmt, out, diags);
        if (x.elseStmt) classifyIn(*x.elseStmt, out, diags);
        return;
    }
    case StmtKind::Abort: {
        const auto& x = static_cast<const AbortStmt&>(s);
        classifyIn(*x.body, out, diags);
        if (x.handler) classifyIn(*x.handler, out, diags);
        return;
    }
    case StmtKind::Suspend:
        classifyIn(*static_cast<const SuspendStmt&>(s).body, out, diags);
        return;
    case StmtKind::Par:
        for (const StmtPtr& b : static_cast<const ParStmt&>(s).branches)
            classifyIn(*b, out, diags);
        return;
    default: return;
    }
}

} // namespace

ClassifyResult classifyLoops(const ModuleDecl& m, Diagnostics& diags)
{
    ClassifyResult out;
    classifyIn(*m.body, out, diags);
    return out;
}

} // namespace ecl
