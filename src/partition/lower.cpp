#include "src/partition/lower.h"

#include <algorithm>
#include <functional>

namespace ecl {

using namespace ast;
using ir::Node;
using ir::NodeKind;
using ir::NodePtr;

namespace {

// --- signal value reads (glue analysis) ------------------------------------

void collectReadsExpr(const Expr& e, const ModuleSema& sema,
                      std::vector<int>& out)
{
    auto add = [&](int idx) {
        if (std::find(out.begin(), out.end(), idx) == out.end())
            out.push_back(idx);
    };
    switch (e.kind) {
    case ExprKind::Ident: {
        auto it = sema.refKind.find(&e);
        if (it != sema.refKind.end() && it->second == RefKind::SignalValue) {
            const auto& x = static_cast<const IdentExpr&>(e);
            if (const SignalInfo* s = sema.findSignal(x.name)) add(s->index);
        }
        return;
    }
    case ExprKind::Unary:
        collectReadsExpr(*static_cast<const UnaryExpr&>(e).operand, sema, out);
        return;
    case ExprKind::Binary: {
        const auto& x = static_cast<const BinaryExpr&>(e);
        collectReadsExpr(*x.lhs, sema, out);
        collectReadsExpr(*x.rhs, sema, out);
        return;
    }
    case ExprKind::Assign: {
        const auto& x = static_cast<const AssignExpr&>(e);
        collectReadsExpr(*x.lhs, sema, out);
        collectReadsExpr(*x.rhs, sema, out);
        return;
    }
    case ExprKind::Cond: {
        const auto& x = static_cast<const CondExpr&>(e);
        collectReadsExpr(*x.cond, sema, out);
        collectReadsExpr(*x.thenExpr, sema, out);
        collectReadsExpr(*x.elseExpr, sema, out);
        return;
    }
    case ExprKind::Index: {
        const auto& x = static_cast<const IndexExpr&>(e);
        collectReadsExpr(*x.base, sema, out);
        collectReadsExpr(*x.index, sema, out);
        return;
    }
    case ExprKind::Member:
        collectReadsExpr(*static_cast<const MemberExpr&>(e).base, sema, out);
        return;
    case ExprKind::Call:
        for (const ExprPtr& a : static_cast<const CallExpr&>(e).args)
            collectReadsExpr(*a, sema, out);
        return;
    case ExprKind::Cast:
        collectReadsExpr(*static_cast<const CastExpr&>(e).operand, sema, out);
        return;
    default: return;
    }
}

void collectReadsStmt(const Stmt& s, const ModuleSema& sema,
                      std::vector<int>& out)
{
    switch (s.kind) {
    case StmtKind::Block:
        for (const StmtPtr& st : static_cast<const BlockStmt&>(s).body)
            collectReadsStmt(*st, sema, out);
        return;
    case StmtKind::Decl:
        for (const Declarator& d : static_cast<const DeclStmt&>(s).decls)
            if (d.init) collectReadsExpr(*d.init, sema, out);
        return;
    case StmtKind::ExprStmt:
        collectReadsExpr(*static_cast<const ExprStmt&>(s).expr, sema, out);
        return;
    case StmtKind::If: {
        const auto& x = static_cast<const IfStmt&>(s);
        collectReadsExpr(*x.cond, sema, out);
        collectReadsStmt(*x.thenStmt, sema, out);
        if (x.elseStmt) collectReadsStmt(*x.elseStmt, sema, out);
        return;
    }
    case StmtKind::While: {
        const auto& x = static_cast<const WhileStmt&>(s);
        collectReadsExpr(*x.cond, sema, out);
        collectReadsStmt(*x.body, sema, out);
        return;
    }
    case StmtKind::DoWhile: {
        const auto& x = static_cast<const DoWhileStmt&>(s);
        collectReadsStmt(*x.body, sema, out);
        collectReadsExpr(*x.cond, sema, out);
        return;
    }
    case StmtKind::For: {
        const auto& x = static_cast<const ForStmt&>(s);
        if (x.init) collectReadsStmt(*x.init, sema, out);
        if (x.cond) collectReadsExpr(*x.cond, sema, out);
        if (x.step) collectReadsExpr(*x.step, sema, out);
        collectReadsStmt(*x.body, sema, out);
        return;
    }
    case StmtKind::Return: {
        const auto& x = static_cast<const ReturnStmt&>(s);
        if (x.value) collectReadsExpr(*x.value, sema, out);
        return;
    }
    case StmtKind::Emit: {
        const auto& x = static_cast<const EmitStmt&>(s);
        if (x.value) collectReadsExpr(*x.value, sema, out);
        return;
    }
    case StmtKind::Present: {
        const auto& x = static_cast<const PresentStmt&>(s);
        collectReadsStmt(*x.thenStmt, sema, out);
        if (x.elseStmt) collectReadsStmt(*x.elseStmt, sema, out);
        return;
    }
    case StmtKind::Abort: {
        const auto& x = static_cast<const AbortStmt&>(s);
        collectReadsStmt(*x.body, sema, out);
        if (x.handler) collectReadsStmt(*x.handler, sema, out);
        return;
    }
    case StmtKind::Suspend:
        collectReadsStmt(*static_cast<const SuspendStmt&>(s).body, sema, out);
        return;
    case StmtKind::Par:
        for (const StmtPtr& b : static_cast<const ParStmt&>(s).branches)
            collectReadsStmt(*b, sema, out);
        return;
    default: return;
    }
}

// --- the lowerer ------------------------------------------------------------

class Lowerer {
public:
    Lowerer(const ModuleSema& sema, const ClassifyResult& classes,
            Diagnostics& diags)
        : sema_(sema), classes_(classes), diags_(diags)
    {
    }

    ir::ReactiveProgram run(const ModuleDecl& m)
    {
        ir::ReactiveProgram prog;
        prog.root = lowerStmt(*m.body);
        prog.pauseCount = pauseCount_;
        prog.trapCount = trapCount_;
        prog.actions = std::move(actions_);
        prog.trapDepth = std::move(trapDepth_);
        prog.pauseDelta = std::move(pauseDelta_);
        prog.analyze();
        return prog;
    }

private:
    [[noreturn]] void fail(SourceLoc loc, const std::string& msg)
    {
        diags_.error(loc, msg);
        throw EclError(loc, msg);
    }

    int newPause(bool delta)
    {
        pauseDelta_.push_back(delta);
        return pauseCount_++;
    }

    int newTrap()
    {
        trapDepth_.push_back(curTrapDepth_);
        return trapCount_++;
    }

    NodePtr mk(NodeKind k, SourceLoc loc)
    {
        NodePtr n = ir::makeNode(k);
        n->loc = loc;
        return n;
    }

    NodePtr mkData(const Stmt* stmt, const Expr* expr, bool extracted,
                   SourceLoc loc)
    {
        ir::DataAction a;
        a.id = static_cast<int>(actions_.size());
        a.stmt = stmt;
        a.expr = expr;
        a.extractedLoop = extracted;
        actions_.push_back(a);
        NodePtr n = mk(NodeKind::DataStmt, loc);
        n->dataActionId = a.id;
        if (stmt) n->valueReads = collectSignalValueReads(*stmt, sema_);
        if (expr) n->valueReads = collectSignalValueReadsExpr(*expr, sema_);
        return n;
    }

    ir::SigGuardPtr lowerGuard(const SigExpr& se)
    {
        auto g = std::make_unique<ir::SigGuard>();
        switch (se.kind) {
        case SigExprKind::Ref: {
            g->kind = ir::SigGuard::Kind::Ref;
            const SignalInfo* sig = sema_.findSignal(se.name);
            if (!sig) fail(se.loc, "unknown signal '" + se.name + "'");
            g->signal = sig->index;
            return g;
        }
        case SigExprKind::Not:
            g->kind = ir::SigGuard::Kind::Not;
            g->lhs = lowerGuard(*se.lhs);
            return g;
        case SigExprKind::And:
            g->kind = ir::SigGuard::Kind::And;
            g->lhs = lowerGuard(*se.lhs);
            g->rhs = lowerGuard(*se.rhs);
            return g;
        case SigExprKind::Or:
            g->kind = ir::SigGuard::Kind::Or;
            g->lhs = lowerGuard(*se.lhs);
            g->rhs = lowerGuard(*se.rhs);
            return g;
        }
        fail(se.loc, "bad signal expression");
    }

    /// True if `s` can be emitted as one atomic data action.
    bool isPureData(const Stmt& s)
    {
        switch (s.kind) {
        case StmtKind::Empty:
        case StmtKind::SignalDecl:
        case StmtKind::Await:
        case StmtKind::Emit:
        case StmtKind::Halt:
        case StmtKind::Present:
        case StmtKind::Abort:
        case StmtKind::Suspend:
        case StmtKind::Par:
        case StmtKind::Break:
        case StmtKind::Continue:
        case StmtKind::Return: return false;
        default:
            return !containsReactive(s) && !hasFreeLoopEscape(s);
        }
    }

    NodePtr lowerStmt(const Stmt& s)
    {
        if (isPureData(s)) {
            bool extractedLoop =
                (s.kind == StmtKind::While || s.kind == StmtKind::For ||
                 s.kind == StmtKind::DoWhile);
            return mkData(&s, nullptr, extractedLoop, s.loc);
        }

        switch (s.kind) {
        case StmtKind::Empty:
        case StmtKind::SignalDecl: return mk(NodeKind::Nothing, s.loc);

        case StmtKind::Block: {
            const auto& x = static_cast<const BlockStmt&>(s);
            NodePtr seq = mk(NodeKind::Seq, s.loc);
            for (const StmtPtr& st : x.body) {
                if (st->kind == StmtKind::Empty ||
                    st->kind == StmtKind::SignalDecl)
                    continue;
                seq->children.push_back(lowerStmt(*st));
            }
            if (seq->children.empty()) return mk(NodeKind::Nothing, s.loc);
            if (seq->children.size() == 1)
                return std::move(seq->children.front());
            return seq;
        }

        case StmtKind::If: {
            const auto& x = static_cast<const IfStmt&>(s);
            NodePtr n = mk(NodeKind::If, s.loc);
            n->condExpr = x.cond.get();
            n->valueReads = collectSignalValueReadsExpr(*x.cond, sema_);
            n->children.push_back(lowerStmt(*x.thenStmt));
            n->children.push_back(x.elseStmt ? lowerStmt(*x.elseStmt)
                                             : mk(NodeKind::Nothing, s.loc));
            return n;
        }

        case StmtKind::Present: {
            const auto& x = static_cast<const PresentStmt&>(s);
            NodePtr n = mk(NodeKind::Present, s.loc);
            n->guard = lowerGuard(*x.cond);
            n->children.push_back(lowerStmt(*x.thenStmt));
            n->children.push_back(x.elseStmt ? lowerStmt(*x.elseStmt)
                                             : mk(NodeKind::Nothing, s.loc));
            return n;
        }

        case StmtKind::While: return lowerWhile(static_cast<const WhileStmt&>(s));
        case StmtKind::DoWhile:
            return lowerDoWhile(static_cast<const DoWhileStmt&>(s));
        case StmtKind::For: return lowerFor(static_cast<const ForStmt&>(s));

        case StmtKind::Break: {
            if (loopStack_.empty()) fail(s.loc, "break outside loop");
            NodePtr n = mk(NodeKind::Exit, s.loc);
            n->trapId = loopStack_.back().breakTrap;
            return n;
        }
        case StmtKind::Continue: {
            if (loopStack_.empty()) fail(s.loc, "continue outside loop");
            NodePtr n = mk(NodeKind::Exit, s.loc);
            n->trapId = loopStack_.back().continueTrap;
            return n;
        }

        case StmtKind::Await: {
            const auto& x = static_cast<const AwaitStmt&>(s);
            if (!x.cond) {
                NodePtr p = mk(NodeKind::Pause, s.loc);
                p->pauseId = newPause(/*delta=*/true);
                p->delta = true;
                return p;
            }
            // trap T { loop { pause; present (e) exit T; } }
            NodePtr trap = mk(NodeKind::Trap, s.loc);
            trap->trapId = newTrap();
            ++curTrapDepth_;
            NodePtr loop = mk(NodeKind::Loop, s.loc);
            NodePtr seq = mk(NodeKind::Seq, s.loc);
            NodePtr pause = mk(NodeKind::Pause, s.loc);
            pause->pauseId = newPause(false);
            NodePtr present = mk(NodeKind::Present, s.loc);
            present->guard = lowerGuard(*x.cond);
            NodePtr exit = mk(NodeKind::Exit, s.loc);
            exit->trapId = trap->trapId;
            present->children.push_back(std::move(exit));
            present->children.push_back(mk(NodeKind::Nothing, s.loc));
            seq->children.push_back(std::move(pause));
            seq->children.push_back(std::move(present));
            loop->children.push_back(std::move(seq));
            trap->children.push_back(std::move(loop));
            --curTrapDepth_;
            return trap;
        }

        case StmtKind::Halt: {
            NodePtr loop = mk(NodeKind::Loop, s.loc);
            NodePtr pause = mk(NodeKind::Pause, s.loc);
            pause->pauseId = newPause(false);
            loop->children.push_back(std::move(pause));
            return loop;
        }

        case StmtKind::Emit: {
            const auto& x = static_cast<const EmitStmt&>(s);
            const SignalInfo* sig = sema_.findSignal(x.signal);
            if (!sig) fail(s.loc, "unknown signal '" + x.signal + "'");
            NodePtr n = mk(NodeKind::Emit, s.loc);
            n->signal = sig->index;
            n->valueExpr = x.value.get();
            if (x.value)
                n->valueReads = collectSignalValueReadsExpr(*x.value, sema_);
            return n;
        }

        case StmtKind::Abort: {
            const auto& x = static_cast<const AbortStmt&>(s);
            NodePtr n = mk(NodeKind::Abort, s.loc);
            n->guard = lowerGuard(*x.cond);
            n->weak = x.weak;
            n->children.push_back(lowerStmt(*x.body));
            if (x.handler) n->children.push_back(lowerStmt(*x.handler));
            return n;
        }

        case StmtKind::Suspend: {
            const auto& x = static_cast<const SuspendStmt&>(s);
            NodePtr n = mk(NodeKind::Suspend, s.loc);
            n->guard = lowerGuard(*x.cond);
            n->children.push_back(lowerStmt(*x.body));
            return n;
        }

        case StmtKind::Par: {
            const auto& x = static_cast<const ParStmt&>(s);
            NodePtr n = mk(NodeKind::Par, s.loc);
            // break/continue may not cross par boundaries.
            std::vector<LoopCtx> saved;
            saved.swap(loopStack_);
            for (const StmtPtr& b : x.branches)
                n->children.push_back(lowerStmt(*b));
            loopStack_.swap(saved);
            if (n->children.empty()) return mk(NodeKind::Nothing, s.loc);
            return n;
        }

        case StmtKind::Decl:
        case StmtKind::ExprStmt:
            // Reach here only when containing loop escapes: treat as data.
            return mkData(&s, nullptr, false, s.loc);

        case StmtKind::Return:
            fail(s.loc, "'return' cannot appear in a module body");

        default: fail(s.loc, "cannot lower statement");
        }
    }

    struct LoopCtx {
        int breakTrap;
        int continueTrap;
    };

    /// Shared tail for all three reactive loop forms.
    /// while(c) B:
    ///   trap Tb { loop { if (c) { trap Tc { B } } else exit Tb } }
    NodePtr lowerWhile(const WhileStmt& x)
    {
        requireReactiveLoop(x);
        NodePtr trapB = mk(NodeKind::Trap, x.loc);
        trapB->trapId = newTrap();
        ++curTrapDepth_;

        NodePtr loop = mk(NodeKind::Loop, x.loc);
        int trapCId = newTrap();
        ++curTrapDepth_;
        loopStack_.push_back({trapB->trapId, trapCId});
        NodePtr trapC = mk(NodeKind::Trap, x.loc);
        trapC->trapId = trapCId;
        trapC->children.push_back(lowerStmt(*x.body));
        loopStack_.pop_back();
        --curTrapDepth_;

        if (isConstTrue(*x.cond)) {
            loop->children.push_back(std::move(trapC));
        } else {
            NodePtr iff = mk(NodeKind::If, x.loc);
            iff->condExpr = x.cond.get();
            iff->valueReads = collectSignalValueReadsExpr(*x.cond, sema_);
            iff->children.push_back(std::move(trapC));
            NodePtr exitB = mk(NodeKind::Exit, x.loc);
            exitB->trapId = trapB->trapId;
            iff->children.push_back(std::move(exitB));
            loop->children.push_back(std::move(iff));
        }
        trapB->children.push_back(std::move(loop));
        --curTrapDepth_;
        return trapB;
    }

    NodePtr lowerDoWhile(const DoWhileStmt& x)
    {
        requireReactiveLoop(x);
        NodePtr trapB = mk(NodeKind::Trap, x.loc);
        trapB->trapId = newTrap();
        ++curTrapDepth_;
        NodePtr loop = mk(NodeKind::Loop, x.loc);
        NodePtr seq = mk(NodeKind::Seq, x.loc);

        int trapCId = newTrap();
        ++curTrapDepth_;
        loopStack_.push_back({trapB->trapId, trapCId});
        NodePtr trapC = mk(NodeKind::Trap, x.loc);
        trapC->trapId = trapCId;
        trapC->children.push_back(lowerStmt(*x.body));
        loopStack_.pop_back();
        --curTrapDepth_;
        seq->children.push_back(std::move(trapC));

        if (!isConstTrue(*x.cond)) {
            NodePtr iff = mk(NodeKind::If, x.loc);
            iff->condExpr = x.cond.get();
            iff->valueReads = collectSignalValueReadsExpr(*x.cond, sema_);
            iff->children.push_back(mk(NodeKind::Nothing, x.loc));
            NodePtr exitB = mk(NodeKind::Exit, x.loc);
            exitB->trapId = trapB->trapId;
            iff->children.push_back(std::move(exitB));
            seq->children.push_back(std::move(iff));
        }
        loop->children.push_back(std::move(seq));
        trapB->children.push_back(std::move(loop));
        --curTrapDepth_;
        return trapB;
    }

    NodePtr lowerFor(const ForStmt& x)
    {
        requireReactiveLoop(x);
        NodePtr outer = mk(NodeKind::Seq, x.loc);
        if (x.init) outer->children.push_back(lowerStmt(*x.init));

        NodePtr trapB = mk(NodeKind::Trap, x.loc);
        trapB->trapId = newTrap();
        ++curTrapDepth_;
        NodePtr loop = mk(NodeKind::Loop, x.loc);

        NodePtr iterSeq = mk(NodeKind::Seq, x.loc);
        int trapCId = newTrap();
        ++curTrapDepth_;
        loopStack_.push_back({trapB->trapId, trapCId});
        NodePtr trapC = mk(NodeKind::Trap, x.loc);
        trapC->trapId = trapCId;
        trapC->children.push_back(lowerStmt(*x.body));
        loopStack_.pop_back();
        --curTrapDepth_;
        iterSeq->children.push_back(std::move(trapC));
        if (x.step)
            iterSeq->children.push_back(
                mkData(nullptr, x.step.get(), false, x.loc));

        if (x.cond && !isConstTrue(*x.cond)) {
            NodePtr iff = mk(NodeKind::If, x.loc);
            iff->condExpr = x.cond.get();
            iff->valueReads = collectSignalValueReadsExpr(*x.cond, sema_);
            iff->children.push_back(std::move(iterSeq));
            NodePtr exitB = mk(NodeKind::Exit, x.loc);
            exitB->trapId = trapB->trapId;
            iff->children.push_back(std::move(exitB));
            loop->children.push_back(std::move(iff));
        } else {
            loop->children.push_back(std::move(iterSeq));
        }
        trapB->children.push_back(std::move(loop));
        --curTrapDepth_;
        outer->children.push_back(std::move(trapB));
        if (outer->children.size() == 1)
            return std::move(outer->children.front());
        return outer;
    }

    void requireReactiveLoop(const Stmt& s)
    {
        auto it = classes_.loops.find(&s);
        if (it == classes_.loops.end() || it->second != LoopClass::Reactive)
            fail(s.loc, "internal: loop reached reactive lowering without "
                        "Reactive classification");
    }

    const ModuleSema& sema_;
    const ClassifyResult& classes_;
    Diagnostics& diags_;
    int pauseCount_ = 0;
    int trapCount_ = 0;
    int curTrapDepth_ = 0;
    std::vector<int> trapDepth_;
    std::vector<bool> pauseDelta_;
    std::vector<ir::DataAction> actions_;
    std::vector<LoopCtx> loopStack_;
};

} // namespace

std::vector<int> collectSignalValueReads(const Stmt& s, const ModuleSema& sema)
{
    std::vector<int> out;
    collectReadsStmt(s, sema, out);
    return out;
}

std::vector<int> collectSignalValueReadsExpr(const Expr& e,
                                             const ModuleSema& sema)
{
    std::vector<int> out;
    collectReadsExpr(e, sema, out);
    return out;
}

ir::ReactiveProgram lowerModule(const ModuleDecl& module,
                                const ModuleSema& sema, Diagnostics& diags,
                                LowerStats* stats)
{
    ClassifyResult classes = classifyLoops(module, diags);
    Lowerer lowerer(sema, classes, diags);
    ir::ReactiveProgram prog = lowerer.run(module);
    scheduleParBranches(prog, sema, diags);
    if (stats) {
        stats->dataActions = static_cast<int>(prog.actions.size());
        stats->extractedLoops = 0;
        for (const ir::DataAction& a : prog.actions)
            if (a.extractedLoop) stats->extractedLoops++;
        stats->pauses = prog.pauseCount;
        stats->traps = prog.trapCount;
    }
    return prog;
}

// ---------------------------------------------------------------------------
// Static causality: order par branches emitter-before-tester.
// ---------------------------------------------------------------------------

namespace {

bool readsOrTests(const ir::Node& n, int sig)
{
    return std::find(n.testedSigs.begin(), n.testedSigs.end(), sig) !=
               n.testedSigs.end() ||
           std::find(n.valueReads.begin(), n.valueReads.end(), sig) !=
               n.valueReads.end();
}

void schedulePar(ir::Node& n, const ModuleSema& sema, Diagnostics& diags)
{
    for (ir::NodePtr& c : n.children) schedulePar(*c, sema, diags);
    if (n.kind != NodeKind::Par) return;

    const std::size_t k = n.children.size();
    // edge[i][j]: branch i must run before branch j (i may emit a non-input
    // signal that j tests or reads).
    std::vector<std::vector<bool>> edge(k, std::vector<bool>(k, false));
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
            if (i == j) continue;
            for (int sig : n.children[i]->mayEmit) {
                const SignalInfo& info =
                    sema.signals[static_cast<std::size_t>(sig)];
                if (info.dir == ecl::SignalDir::Input) continue;
                if (readsOrTests(*n.children[j], sig)) {
                    edge[i][j] = true;
                    break;
                }
            }
        }
    }

    // Stable topological sort (Kahn, preferring original order).
    std::vector<std::size_t> order;
    std::vector<bool> placed(k, false);
    for (std::size_t round = 0; round < k; ++round) {
        bool progress = false;
        for (std::size_t j = 0; j < k && !progress; ++j) {
            if (placed[j]) continue;
            bool ready = true;
            for (std::size_t i = 0; i < k; ++i)
                if (!placed[i] && i != j && edge[i][j]) ready = false;
            if (ready) {
                order.push_back(j);
                placed[j] = true;
                progress = true;
            }
        }
        if (!progress) {
            // Collect the signals involved for the diagnostic.
            std::string sigs;
            for (std::size_t i = 0; i < k; ++i) {
                if (placed[i]) continue;
                for (int sig : n.children[i]->mayEmit) {
                    const SignalInfo& info =
                        sema.signals[static_cast<std::size_t>(sig)];
                    if (info.dir == ecl::SignalDir::Input) continue;
                    for (std::size_t j = 0; j < k; ++j) {
                        if (placed[j] || i == j) continue;
                        if (readsOrTests(*n.children[j], sig)) {
                            if (!sigs.empty()) sigs += ", ";
                            sigs += info.name;
                        }
                    }
                }
            }
            diags.error(n.loc,
                        "causality cycle between par branches (signals: " +
                            sigs +
                            "); ECL requires a static emitter-before-tester "
                            "order (docs/LANGUAGE.md: static causality)");
            throw EclError(n.loc, "causality cycle");
        }
    }

    std::vector<ir::NodePtr> reordered;
    reordered.reserve(k);
    for (std::size_t idx : order)
        reordered.push_back(std::move(n.children[idx]));
    n.children = std::move(reordered);
}

} // namespace

void scheduleParBranches(ir::ReactiveProgram& program, const ModuleSema& sema,
                         Diagnostics& diags)
{
    if (program.root) schedulePar(*program.root, sema, diags);
}

} // namespace ecl
