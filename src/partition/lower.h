// AST -> reactive kernel IR lowering, applying the reactive/data partition.
//
// This is the paper's compilation phase 1: the ECL program is split into a
// reactive skeleton (IR nodes, later compiled to an EFSM) and data actions
// (C statements executed atomically by a reaction — the extracted data
// loops plus inline assignments). Glue information (which signals' values
// data code reads) is recorded on IR nodes for the causality scheduler.
#pragma once

#include "src/frontend/ast.h"
#include "src/ir/ir.h"
#include "src/partition/classify.h"
#include "src/sema/sema.h"
#include "src/support/diagnostics.h"

namespace ecl {

struct LowerStats {
    int dataActions = 0;
    int extractedLoops = 0;
    int pauses = 0;
    int traps = 0;
};

/// Lowers a flattened, sema-checked module. Throws EclError on
/// classification errors (mixed loops) and malformed reactive code.
ir::ReactiveProgram lowerModule(const ast::ModuleDecl& module,
                                const ModuleSema& sema, Diagnostics& diags,
                                LowerStats* stats = nullptr);

/// Collects indices of signals whose *values* are read inside `s`
/// (expressions resolved by sema as SignalValue references).
std::vector<int> collectSignalValueReads(const ast::Stmt& s,
                                         const ModuleSema& sema);
std::vector<int> collectSignalValueReadsExpr(const ast::Expr& e,
                                             const ModuleSema& sema);

/// Orders every Par node's branches so that potential emitters of a local
/// or output signal run before its testers/readers (static causality).
/// Throws EclError on causality cycles. Must run after program.analyze().
void scheduleParBranches(ir::ReactiveProgram& program, const ModuleSema& sema,
                         Diagnostics& diags);

} // namespace ecl
