#include "src/cost/cost.h"

#include <cstdint>
#include <set>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>

namespace ecl::cost {

using namespace ast;

std::size_t countExprNodes(const Expr& e)
{
    switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::Ident:
    case ExprKind::SizeofType: return 1;
    case ExprKind::Unary:
        return 1 + countExprNodes(*static_cast<const UnaryExpr&>(e).operand);
    case ExprKind::Binary: {
        const auto& x = static_cast<const BinaryExpr&>(e);
        return 1 + countExprNodes(*x.lhs) + countExprNodes(*x.rhs);
    }
    case ExprKind::Assign: {
        const auto& x = static_cast<const AssignExpr&>(e);
        return 1 + countExprNodes(*x.lhs) + countExprNodes(*x.rhs);
    }
    case ExprKind::Cond: {
        const auto& x = static_cast<const CondExpr&>(e);
        return 1 + countExprNodes(*x.cond) + countExprNodes(*x.thenExpr) +
               countExprNodes(*x.elseExpr);
    }
    case ExprKind::Index: {
        const auto& x = static_cast<const IndexExpr&>(e);
        return 1 + countExprNodes(*x.base) + countExprNodes(*x.index);
    }
    case ExprKind::Member:
        return 1 + countExprNodes(*static_cast<const MemberExpr&>(e).base);
    case ExprKind::Call: {
        const auto& x = static_cast<const CallExpr&>(e);
        std::size_t n = 2; // call overhead
        for (const ExprPtr& a : x.args) n += countExprNodes(*a);
        return n;
    }
    case ExprKind::Cast:
        return 1 + countExprNodes(*static_cast<const CastExpr&>(e).operand);
    }
    return 1;
}

std::size_t countStmtNodes(const Stmt& s)
{
    switch (s.kind) {
    case StmtKind::Block: {
        std::size_t n = 0;
        for (const StmtPtr& st : static_cast<const BlockStmt&>(s).body)
            n += countStmtNodes(*st);
        return n;
    }
    case StmtKind::Decl: {
        const auto& x = static_cast<const DeclStmt&>(s);
        std::size_t n = 0;
        for (const Declarator& d : x.decls) {
            n += 1;
            if (d.init) n += countExprNodes(*d.init);
        }
        return n;
    }
    case StmtKind::ExprStmt:
        return countExprNodes(*static_cast<const ExprStmt&>(s).expr);
    case StmtKind::If: {
        const auto& x = static_cast<const IfStmt&>(s);
        std::size_t n = 1 + countExprNodes(*x.cond) +
                        countStmtNodes(*x.thenStmt);
        if (x.elseStmt) n += countStmtNodes(*x.elseStmt);
        return n;
    }
    case StmtKind::While: {
        const auto& x = static_cast<const WhileStmt&>(s);
        return 2 + countExprNodes(*x.cond) + countStmtNodes(*x.body);
    }
    case StmtKind::DoWhile: {
        const auto& x = static_cast<const DoWhileStmt&>(s);
        return 2 + countExprNodes(*x.cond) + countStmtNodes(*x.body);
    }
    case StmtKind::For: {
        const auto& x = static_cast<const ForStmt&>(s);
        std::size_t n = 2;
        if (x.init) n += countStmtNodes(*x.init);
        if (x.cond) n += countExprNodes(*x.cond);
        if (x.step) n += countExprNodes(*x.step);
        return n + countStmtNodes(*x.body);
    }
    case StmtKind::Return: {
        const auto& x = static_cast<const ReturnStmt&>(s);
        return 1 + (x.value ? countExprNodes(*x.value) : 0);
    }
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Empty: return 1;
    default: return 1; // reactive statements never reach data sizing
    }
}

std::uint64_t CostModel::reactionCycles(const rt::ReactionResult& r) const
{
    const ExecCounters& c = r.dataCounters;
    std::uint64_t cycles = p_.cycReactionEntry;
    cycles += r.treeTests * p_.cycTest;
    cycles += c.exprOps * p_.cycExprOp;
    cycles += c.loads * p_.cycLoad;
    cycles += c.stores * p_.cycStore;
    cycles += c.branches * p_.cycBranch;
    cycles += c.calls * p_.cycCall;
    cycles += c.aggBytes * p_.cycPerAggByte;
    cycles += r.emitsRun * p_.cycEmit;
    return cycles;
}

namespace {

struct SizeAcc {
    std::size_t tests = 0;
    std::size_t leaves = 0;
    std::size_t emits = 0;            ///< distinct emit actions
    std::size_t emitValueNodes = 0;   ///< AST nodes of distinct emit values
    std::size_t inlineActionNodes = 0;///< AST nodes of distinct data bodies
    std::size_t extractedCallSites = 0;
    std::size_t actionInvokes = 0;    ///< per-run references to action blocks
};

/// Counts *unique* code blocks across the whole machine: automaton code
/// generators (Esterel v3, POLIS) merge identical continuations via gotos,
/// so repeated blocks cost code bytes only once. Two sharing levels:
///  * decision nodes (test or leaf, WITHOUT the action run that reaches
///    them) — shared whenever the remaining decision structure coincides,
///    which collapses the cross product of independent par components;
///  * action runs (the straight-line data/emit code on one edge plus its
///    jump target) — shared when the same actions lead to the same block.
/// Action identity is the AST node pointer (same node ⇒ same generated
/// text).
class DagCounter {
public:
    explicit DagCounter(const ir::ReactiveProgram& prog) : prog_(prog) {}

    void internTree(const efsm::TransNode& t) { internRun(t); }

    [[nodiscard]] const SizeAcc& acc() const { return acc_; }

private:
    int internNode(const efsm::TransNode& t)
    {
        std::string sig;
        if (t.isLeaf) {
            sig = "L" + std::to_string(t.nextState) +
                  (t.terminates ? "T" : "") + (t.runtimeError ? "E" : "");
        } else {
            int a = internRun(*t.onTrue);
            int b = internRun(*t.onFalse);
            sig = t.testsSignal
                      ? "S" + std::to_string(t.signal)
                      : "C" + std::to_string(reinterpret_cast<std::uintptr_t>(
                                  t.dataCond));
            sig += "(" + std::to_string(a) + "," + std::to_string(b) + ")";
        }
        auto it = nodeIds_.find(sig);
        if (it != nodeIds_.end()) return it->second;
        int id = static_cast<int>(nodeIds_.size());
        nodeIds_.emplace(std::move(sig), id);
        if (t.isLeaf)
            acc_.leaves++;
        else
            acc_.tests++;
        return id;
    }

    int internRun(const efsm::TransNode& t)
    {
        int target = internNode(t);
        std::string sig;
        for (const efsm::Action& a : t.prefixActions) {
            if (a.kind == efsm::Action::Kind::Emit) {
                sig += "e" + std::to_string(a.signal) + "@" +
                       std::to_string(
                           reinterpret_cast<std::uintptr_t>(a.valueExpr)) +
                       ";";
            } else {
                sig += "d" + std::to_string(a.dataActionId) + ";";
            }
        }
        sig += "->" + std::to_string(target);
        auto it = runIds_.find(sig);
        if (it != runIds_.end()) return it->second;
        int id = static_cast<int>(runIds_.size());
        runIds_.emplace(std::move(sig), id);
        chargeActions(t);
        return id;
    }

    void chargeActions(const efsm::TransNode& t)
    {
        // Distinct action bodies are generated once (shared helper blocks);
        // each occurrence in a unique run pays only an invoke.
        for (const efsm::Action& a : t.prefixActions) {
            acc_.actionInvokes++;
            std::string key =
                a.kind == efsm::Action::Kind::Emit
                    ? "e" + std::to_string(a.signal) + "@" +
                          std::to_string(
                              reinterpret_cast<std::uintptr_t>(a.valueExpr))
                    : "d" + std::to_string(a.dataActionId);
            if (!seenActions_.insert(std::move(key)).second) continue;
            if (a.kind == efsm::Action::Kind::Emit) {
                acc_.emits++;
                if (a.valueExpr)
                    acc_.emitValueNodes += countExprNodes(*a.valueExpr);
            } else {
                const ir::DataAction& da =
                    prog_.actions[static_cast<std::size_t>(a.dataActionId)];
                if (da.extractedLoop) {
                    acc_.extractedCallSites++;
                } else if (da.stmt) {
                    acc_.inlineActionNodes += countStmtNodes(*da.stmt);
                } else if (da.expr) {
                    acc_.inlineActionNodes += countExprNodes(*da.expr);
                }
            }
        }
    }

    const ir::ReactiveProgram& prog_;
    std::unordered_map<std::string, int> nodeIds_;
    std::unordered_map<std::string, int> runIds_;
    std::set<std::string> seenActions_;
    SizeAcc acc_;
};

} // namespace

CodeSize CostModel::moduleSize(const efsm::Efsm& machine) const
{
    DagCounter counter(*machine.program);
    for (const efsm::State& s : machine.states)
        if (s.tree) counter.internTree(*s.tree);
    const SizeAcc& acc = counter.acc();
    if (std::getenv("ECL_COST_DEBUG"))
        std::fprintf(stderr,
                     "[cost] states=%zu uniqTests=%zu uniqLeaves=%zu "
                     "emits=%zu emitValNodes=%zu inlineNodes=%zu calls=%zu\n",
                     machine.states.size(), acc.tests, acc.leaves, acc.emits,
                     acc.emitValueNodes, acc.inlineActionNodes,
                     acc.extractedCallSites);

    CodeSize out;
    out.codeBytes = p_.bytesModuleOverhead;
    out.codeBytes += machine.states.size() * p_.bytesPerStateEntry;
    out.codeBytes += acc.tests * p_.bytesPerTestNode;
    out.codeBytes += acc.leaves * p_.bytesPerLeaf;
    out.codeBytes += acc.emits * p_.bytesPerEmit;
    out.codeBytes += (acc.emitValueNodes + acc.inlineActionNodes) *
                     p_.bytesPerAstNode;
    out.codeBytes += acc.extractedCallSites * p_.bytesPerCallSite;
    out.codeBytes += acc.actionInvokes * p_.bytesPerActionInvoke;

    // Extracted data-loop functions generated once each.
    for (const ir::DataAction& da : machine.program->actions) {
        if (!da.extractedLoop) continue;
        std::size_t nodes = da.stmt ? countStmtNodes(*da.stmt)
                                    : (da.expr ? countExprNodes(*da.expr) : 0);
        out.codeBytes += p_.bytesPerExtractedFn + nodes * p_.bytesPerAstNode;
    }

    // Glue: presence-flag handling per signal.
    out.codeBytes += machine.sema->signals.size() * p_.bytesPerSignalGlue;

    // Data: variables + signal values + presence flags + the state word.
    out.dataBytes = p_.bytesStateVar;
    for (const VarInfo& v : machine.sema->vars) out.dataBytes += v.type->size();
    for (const SignalInfo& s : machine.sema->signals) {
        out.dataBytes += p_.bytesPerSignalFlag;
        if (!s.pure) out.dataBytes += s.valueType->size();
    }
    return out;
}

namespace {

std::size_t irNodeCount(const ir::Node& n)
{
    std::size_t c = 1;
    for (const ir::NodePtr& ch : n.children) c += irNodeCount(*ch);
    return c;
}

} // namespace

CodeSize CostModel::baselineSize(const ir::ReactiveProgram& program,
                                 const ModuleSema& sema) const
{
    CodeSize out;
    // Interpreter core (fixed) + one node record per IR node + the data
    // statements once each (they are not duplicated in the baseline).
    constexpr std::size_t kInterpreterBytes = 2600;
    constexpr std::size_t kBytesPerIrNodeRecord = 16;
    out.codeBytes = kInterpreterBytes;
    if (program.root)
        out.dataBytes += irNodeCount(*program.root) * kBytesPerIrNodeRecord;
    for (const ir::DataAction& da : program.actions) {
        std::size_t nodes = da.stmt ? countStmtNodes(*da.stmt)
                                    : (da.expr ? countExprNodes(*da.expr) : 0);
        out.codeBytes += nodes * p_.bytesPerAstNode;
    }
    out.dataBytes += p_.bytesStateVar;
    for (const VarInfo& v : sema.vars) out.dataBytes += v.type->size();
    for (const SignalInfo& s : sema.signals) {
        out.dataBytes += p_.bytesPerSignalFlag;
        if (!s.pure) out.dataBytes += s.valueType->size();
    }
    return out;
}

} // namespace ecl::cost
